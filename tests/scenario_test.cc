// Tests for the synthetic case-study generators: shape, validity,
// determinism, and the engineered heterogeneities.

#include <gtest/gtest.h>

#include "efes/scenario/bibliographic.h"
#include "efes/scenario/music.h"
#include "efes/scenario/paper_example.h"

namespace efes {
namespace {

// --- Paper example (Figure 2) ------------------------------------------------

TEST(PaperExampleTest, SchemasMatchFigure2) {
  Schema target = MakePaperTargetSchema();
  EXPECT_TRUE(target.Validate().ok());
  EXPECT_TRUE(target.HasRelation("records"));
  EXPECT_TRUE(target.HasRelation("tracks"));
  EXPECT_TRUE(target.IsNotNullable("records", "artist"));
  EXPECT_TRUE(target.IsNotNullable("tracks", "record"));
  EXPECT_EQ(target.PrimaryKeyOf("records"),
            (std::vector<std::string>{"id"}));

  Schema source = MakePaperSourceSchema();
  EXPECT_TRUE(source.Validate().ok());
  EXPECT_TRUE(source.HasRelation("albums"));
  EXPECT_TRUE(source.HasRelation("artist_lists"));
  EXPECT_TRUE(source.HasRelation("artist_credits"));
  // songs.album is an FK but *nullable* (Figure 2a shows FK only).
  EXPECT_FALSE(source.IsNotNullable("songs", "album"));
}

TEST(PaperExampleTest, ScenarioValidatesAndHasConfiguredSizes) {
  PaperExampleOptions options;
  options.album_count = 300;
  options.multi_artist_albums = 50;
  options.orphan_artists = 20;
  options.song_count = 400;
  auto scenario = MakePaperExample(options);
  ASSERT_TRUE(scenario.ok());
  EXPECT_TRUE(scenario->Validate().ok());
  ASSERT_EQ(scenario->sources.size(), 1u);
  const Database& source = scenario->sources[0].database;
  EXPECT_EQ((*source.table("albums"))->row_count(), 300u);
  EXPECT_EQ((*source.table("songs"))->row_count(), 400u);
}

TEST(PaperExampleTest, SourceInstanceIsValidWrtItsOwnSchema) {
  // The paper's standing assumption: every instance is valid wrt. its
  // schema; problems only arise upon integration.
  auto scenario = MakePaperExample();
  ASSERT_TRUE(scenario.ok());
  EXPECT_TRUE(scenario->sources[0].database.SatisfiesConstraints());
  EXPECT_TRUE(scenario->target.SatisfiesConstraints());
}

TEST(PaperExampleTest, Deterministic) {
  auto a = MakePaperExample();
  auto b = MakePaperExample();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const Table* albums_a = *a->sources[0].database.table("albums");
  const Table* albums_b = *b->sources[0].database.table("albums");
  ASSERT_EQ(albums_a->row_count(), albums_b->row_count());
  for (size_t r = 0; r < albums_a->row_count(); ++r) {
    EXPECT_EQ(albums_a->at(r, 1), albums_b->at(r, 1));
  }
}

// --- Bibliographic domain ---------------------------------------------------

TEST(BiblioTest, SchemasValidate) {
  for (BiblioSchemaId id : {BiblioSchemaId::kS1, BiblioSchemaId::kS2,
                            BiblioSchemaId::kS3, BiblioSchemaId::kS4}) {
    Schema schema = MakeBiblioSchema(id);
    EXPECT_TRUE(schema.Validate().ok())
        << BiblioSchemaIdToString(id);
  }
}

TEST(BiblioTest, ShapesDiffer) {
  // s1 and s3 are flat; s2 and s4 normalized.
  EXPECT_EQ(MakeBiblioSchema(BiblioSchemaId::kS1).relations().size(), 1u);
  EXPECT_EQ(MakeBiblioSchema(BiblioSchemaId::kS2).relations().size(), 4u);
  EXPECT_EQ(MakeBiblioSchema(BiblioSchemaId::kS3).relations().size(), 1u);
  EXPECT_EQ(MakeBiblioSchema(BiblioSchemaId::kS4).relations().size(), 4u);
}

TEST(BiblioTest, DatabasesAreValidInstances) {
  BiblioOptions options;
  options.publication_count = 120;
  for (BiblioSchemaId id : {BiblioSchemaId::kS1, BiblioSchemaId::kS2,
                            BiblioSchemaId::kS3, BiblioSchemaId::kS4}) {
    auto db = MakeBiblioDatabase(id, options);
    ASSERT_TRUE(db.ok());
    EXPECT_TRUE(db->SatisfiesConstraints())
        << BiblioSchemaIdToString(id);
    EXPECT_GT(db->TotalRowCount(), 0u);
  }
}

TEST(BiblioTest, S1HasSloppyYearsAndMixedSeparators) {
  BiblioOptions options;
  options.publication_count = 200;
  auto db = MakeBiblioDatabase(BiblioSchemaId::kS1, options);
  ASSERT_TRUE(db.ok());
  const Table* pubs = *db->table("pubs");
  size_t sloppy = 0;
  size_t with_and = 0;
  size_t with_semicolon = 0;
  auto year_column = *pubs->ColumnByName("year");
  auto authors_column = *pubs->ColumnByName("authors");
  for (size_t r = 0; r < pubs->row_count(); ++r) {
    if ((*year_column)[r].AsText()[0] == '\'') ++sloppy;
    const std::string& authors = (*authors_column)[r].AsText();
    if (authors.find(" and ") != std::string::npos) ++with_and;
    if (authors.find("; ") != std::string::npos) ++with_semicolon;
  }
  EXPECT_GT(sloppy, 10u);
  EXPECT_GT(with_and, 0u);
  EXPECT_GT(with_semicolon, 0u);
}

TEST(BiblioTest, S3HasMissingEndPages) {
  BiblioOptions options;
  options.publication_count = 200;
  auto db = MakeBiblioDatabase(BiblioSchemaId::kS3, options);
  ASSERT_TRUE(db.ok());
  const Table* entries = *db->table("entries");
  size_t end_page_index = *entries->def().AttributeIndex("end_page");
  EXPECT_GT(entries->NullCount(end_page_index), 40u);
}

TEST(BiblioTest, AllFourScenariosBuildAndValidate) {
  BiblioOptions options;
  options.publication_count = 100;
  auto scenarios = MakeAllBiblioScenarios(options);
  ASSERT_TRUE(scenarios.ok());
  ASSERT_EQ(scenarios->size(), 4u);
  EXPECT_EQ((*scenarios)[0].name, "s1-s2");
  EXPECT_EQ((*scenarios)[3].name, "s4-s4");
  for (const IntegrationScenario& scenario : *scenarios) {
    EXPECT_TRUE(scenario.Validate().ok()) << scenario.name;
  }
}

TEST(BiblioTest, UncuratedPairRejected) {
  BiblioOptions options;
  options.publication_count = 50;
  auto scenario =
      MakeBiblioScenario(BiblioSchemaId::kS2, BiblioSchemaId::kS1, options);
  EXPECT_FALSE(scenario.ok());
  EXPECT_EQ(scenario.status().code(), StatusCode::kInvalidArgument);
}

// --- Music domain -------------------------------------------------------------

TEST(MusicTest, SchemasValidateAndShapesDiffer) {
  EXPECT_TRUE(MakeMusicSchema(MusicSchemaId::kFreedb).Validate().ok());
  EXPECT_TRUE(MakeMusicSchema(MusicSchemaId::kMusicbrainz).Validate().ok());
  EXPECT_TRUE(MakeMusicSchema(MusicSchemaId::kDiscogs).Validate().ok());
  EXPECT_EQ(MakeMusicSchema(MusicSchemaId::kFreedb).relations().size(), 2u);
  EXPECT_EQ(MakeMusicSchema(MusicSchemaId::kMusicbrainz).relations().size(),
            12u);
  EXPECT_EQ(MakeMusicSchema(MusicSchemaId::kDiscogs).relations().size(), 4u);
}

TEST(MusicTest, DatabasesAreValidInstances) {
  MusicOptions options;
  options.disc_count = 60;
  for (MusicSchemaId id : {MusicSchemaId::kFreedb,
                           MusicSchemaId::kMusicbrainz,
                           MusicSchemaId::kDiscogs}) {
    auto db = MakeMusicDatabase(id, options);
    ASSERT_TRUE(db.ok());
    EXPECT_TRUE(db->SatisfiesConstraints()) << MusicSchemaIdToString(id);
  }
}

TEST(MusicTest, AllFourScenariosBuildAndValidate) {
  MusicOptions options;
  options.disc_count = 50;
  auto scenarios = MakeAllMusicScenarios(options);
  ASSERT_TRUE(scenarios.ok());
  ASSERT_EQ(scenarios->size(), 4u);
  EXPECT_EQ((*scenarios)[0].name, "f1-m2");
  EXPECT_EQ((*scenarios)[1].name, "m1-d2");
  EXPECT_EQ((*scenarios)[2].name, "m1-f2");
  EXPECT_EQ((*scenarios)[3].name, "d1-d2");
  for (const IntegrationScenario& scenario : *scenarios) {
    EXPECT_TRUE(scenario.Validate().ok()) << scenario.name;
  }
}

TEST(MusicTest, SharedVocabularyAcrossInstances) {
  // The artist vocabulary is a domain fact: two differently seeded
  // instances must share it (this keeps identity scenarios clean).
  MusicOptions a;
  a.disc_count = 40;
  a.seed = 1;
  MusicOptions b = a;
  b.seed = 2;
  auto db_a = MakeMusicDatabase(MusicSchemaId::kMusicbrainz, a);
  auto db_b = MakeMusicDatabase(MusicSchemaId::kMusicbrainz, b);
  ASSERT_TRUE(db_a.ok());
  ASSERT_TRUE(db_b.ok());
  const Table* artists_a = *db_a->table("artist");
  const Table* artists_b = *db_b->table("artist");
  ASSERT_EQ(artists_a->row_count(), artists_b->row_count());
  EXPECT_EQ(artists_a->at(0, 1), artists_b->at(0, 1));
  // But the disc titles differ.
  const Table* releases_a = *db_a->table("release");
  const Table* releases_b = *db_b->table("release");
  EXPECT_NE(releases_a->at(0, 2), releases_b->at(0, 2));
}

TEST(MusicTest, DurationFormatsDifferAcrossSchemas) {
  MusicOptions options;
  options.disc_count = 20;
  auto m = MakeMusicDatabase(MusicSchemaId::kMusicbrainz, options);
  auto d = MakeMusicDatabase(MusicSchemaId::kDiscogs, options);
  ASSERT_TRUE(m.ok());
  ASSERT_TRUE(d.ok());
  // m stores milliseconds as integers...
  const Table* track = *m->table("track");
  EXPECT_EQ(track->def().attributes()[4].name, "length");
  EXPECT_EQ(track->at(0, 4).type(), DataType::kInteger);
  EXPECT_GT(track->at(0, 4).AsInteger(), 10000);
  // ...d stores "m:ss" strings.
  const Table* release_tracks = *d->table("release_tracks");
  const Value& duration = release_tracks->at(0, 3);
  EXPECT_EQ(duration.type(), DataType::kText);
  EXPECT_NE(duration.AsText().find(':'), std::string::npos);
}

}  // namespace
}  // namespace efes
