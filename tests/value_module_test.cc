// Tests for the value-heterogeneity module: the Algorithm 1 decision
// rules and the Table 7 task planning.

#include "efes/values/value_module.h"

#include <gtest/gtest.h>

#include "efes/profiling/profiler.h"
#include "efes/scenario/paper_example.h"

namespace efes {
namespace {

std::vector<Value> Texts(const std::vector<std::string>& texts) {
  std::vector<Value> values;
  for (const std::string& text : texts) values.push_back(Value::Text(text));
  return values;
}

AttributeStatistics StatsOf(const std::vector<Value>& column,
                            DataType target) {
  auto profiled = ProfileColumn(column, target);
  EXPECT_TRUE(profiled.ok()) << profiled.status().ToString();
  return profiled.ok() ? *std::move(profiled) : AttributeStatistics{};
}

bool Has(const std::vector<ValueHeterogeneityType>& detected,
         ValueHeterogeneityType type) {
  for (ValueHeterogeneityType t : detected) {
    if (t == type) return true;
  }
  return false;
}

TEST(Algorithm1Test, Rule1TooFewSourceElements) {
  std::vector<Value> sparse;
  std::vector<Value> dense;
  for (int i = 0; i < 100; ++i) {
    sparse.push_back(i < 40 ? Value::Text("v" + std::to_string(i))
                            : Value::Null());
    dense.push_back(Value::Text("w" + std::to_string(i)));
  }
  ValueFitOptions options;
  auto detected = DetectValueHeterogeneities(
      StatsOf(sparse, DataType::kText), StatsOf(dense, DataType::kText),
      /*has_target_data=*/true, options);
  EXPECT_TRUE(
      Has(detected, ValueHeterogeneityType::kTooFewSourceElements));
}

TEST(Algorithm1Test, Rule1UsesNullsNotUncastables) {
  // Fully present but uncastable values are a representation problem,
  // never "too few elements".
  std::vector<Value> source;
  std::vector<Value> target;
  for (int i = 0; i < 100; ++i) {
    source.push_back(Value::Text("12--34"));
    target.push_back(Value::Integer(i));
  }
  ValueFitOptions options;
  auto detected = DetectValueHeterogeneities(
      StatsOf(source, DataType::kInteger),
      StatsOf(target, DataType::kInteger),
      /*has_target_data=*/true, options);
  EXPECT_FALSE(
      Has(detected, ValueHeterogeneityType::kTooFewSourceElements));
  EXPECT_TRUE(Has(
      detected, ValueHeterogeneityType::kDifferentRepresentationsCritical));
}

TEST(Algorithm1Test, Rule2CriticalRepresentations) {
  std::vector<Value> source = Texts({"'98", "1998", "'99", "2001"});
  std::vector<Value> target = {Value::Integer(1998), Value::Integer(2001)};
  ValueFitOptions options;
  auto detected = DetectValueHeterogeneities(
      StatsOf(source, DataType::kInteger),
      StatsOf(target, DataType::kInteger),
      /*has_target_data=*/true, options);
  EXPECT_TRUE(Has(
      detected, ValueHeterogeneityType::kDifferentRepresentationsCritical));
  // Once critical fired, no duplicate uncritical finding.
  EXPECT_FALSE(
      Has(detected, ValueHeterogeneityType::kDifferentRepresentations));
}

TEST(Algorithm1Test, GranularityRules) {
  // Source: small discrete domain; target: free text -> too coarse.
  std::vector<Value> restricted;
  std::vector<Value> freeform;
  for (int i = 0; i < 120; ++i) {
    restricted.push_back(Value::Text(i % 3 == 0 ? "Rock"
                                     : i % 3 == 1 ? "Pop"
                                                  : "Jazz"));
    freeform.push_back(Value::Text("detailed genre nr " +
                                   std::to_string(i) + " with notes"));
  }
  ValueFitOptions options;
  auto coarse = DetectValueHeterogeneities(
      StatsOf(restricted, DataType::kText), StatsOf(freeform, DataType::kText),
      /*has_target_data=*/true, options);
  EXPECT_TRUE(Has(
      coarse, ValueHeterogeneityType::kTooCoarseGrainedSourceValues));

  auto fine = DetectValueHeterogeneities(
      StatsOf(freeform, DataType::kText), StatsOf(restricted, DataType::kText),
      /*has_target_data=*/true, options);
  EXPECT_TRUE(
      Has(fine, ValueHeterogeneityType::kTooFineGrainedSourceValues));
}

TEST(Algorithm1Test, DomainSpecificDifferencesBelowThreshold) {
  // ms integers (as text) vs m:ss strings: both unrestricted, fit << 0.9.
  std::vector<Value> source;
  std::vector<Value> target;
  for (int i = 0; i < 200; ++i) {
    source.push_back(Value::Integer(100000 + i * 997));
    target.push_back(Value::Text(std::to_string(2 + i % 6) + ":" +
                                 std::to_string(10 + i % 49)));
  }
  ValueFitOptions options;
  double fit = 1.0;
  auto detected = DetectValueHeterogeneities(
      StatsOf(source, DataType::kText), StatsOf(target, DataType::kText),
      /*has_target_data=*/true, options, &fit);
  EXPECT_TRUE(
      Has(detected, ValueHeterogeneityType::kDifferentRepresentations));
  EXPECT_LT(fit, options.fit_threshold);
}

TEST(Algorithm1Test, MatchingPairYieldsNothing) {
  std::vector<Value> a;
  std::vector<Value> b;
  for (int i = 0; i < 200; ++i) {
    a.push_back(Value::Text("word" + std::to_string(i * 7 % 300)));
    b.push_back(Value::Text("word" + std::to_string(i * 11 % 300)));
  }
  ValueFitOptions options;
  auto detected = DetectValueHeterogeneities(
      StatsOf(a, DataType::kText), StatsOf(b, DataType::kText),
      /*has_target_data=*/true, options);
  EXPECT_TRUE(detected.empty());
}

TEST(Algorithm1Test, NoTargetDataSkipsComparativeRules) {
  std::vector<Value> source = Texts({"a", "b", "c"});
  ValueFitOptions options;
  auto detected = DetectValueHeterogeneities(
      StatsOf(source, DataType::kText), StatsOf({}, DataType::kText),
      /*has_target_data=*/false, options);
  EXPECT_TRUE(detected.empty());
}

TEST(IsDomainRestrictedTest, ByDistinctCountAndConstancy) {
  ValueFitOptions options;
  std::vector<Value> few = Texts({"a", "b", "a", "b", "a"});
  EXPECT_TRUE(IsDomainRestricted(StatsOf(few, DataType::kText), options));
  std::vector<Value> many;
  for (int i = 0; i < 200; ++i) {
    many.push_back(Value::Text("v" + std::to_string(i)));
  }
  EXPECT_FALSE(IsDomainRestricted(StatsOf(many, DataType::kText), options));
  EXPECT_FALSE(IsDomainRestricted(StatsOf({}, DataType::kText), options));
}

// --- Module-level tests on the paper example -------------------------------

class PaperExampleValueTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto scenario = MakePaperExample();
    ASSERT_TRUE(scenario.ok());
    scenario_ = std::make_unique<IntegrationScenario>(std::move(*scenario));
    auto report = module_.AssessComplexity(*scenario_);
    ASSERT_TRUE(report.ok());
    report_ = std::move(*report);
  }

  ValueModule module_;
  std::unique_ptr<IntegrationScenario> scenario_;
  std::unique_ptr<ComplexityReport> report_;
};

TEST_F(PaperExampleValueTest, Table6LengthDurationHeterogeneity) {
  const auto& report = static_cast<const ValueComplexityReport&>(*report_);
  ASSERT_EQ(report.heterogeneities().size(), 1u);
  const ValueHeterogeneity& h = report.heterogeneities()[0];
  EXPECT_EQ(h.type, ValueHeterogeneityType::kDifferentRepresentations);
  EXPECT_EQ(h.source_attribute, "songs.length");
  EXPECT_EQ(h.target_attribute, "tracks.duration");
  EXPECT_GT(h.source_values, 0u);
  EXPECT_GT(h.source_distinct_values, 0u);
  EXPECT_LT(h.overall_fit, 0.9);
  // ms integers all share one text pattern -> systematic conversion.
  EXPECT_TRUE(h.systematic);
  EXPECT_EQ(h.source_pattern_count, 1u);
}

TEST_F(PaperExampleValueTest, FkRemapAttributesAreSkipped) {
  const auto& report = static_cast<const ValueComplexityReport&>(*report_);
  for (const ValueHeterogeneity& h : report.heterogeneities()) {
    EXPECT_NE(h.target_attribute, "tracks.record");
  }
}

TEST_F(PaperExampleValueTest, Table8HighQualityConvertTask) {
  auto tasks =
      module_.PlanTasks(*report_, ExpectedQuality::kHighQuality, {});
  ASSERT_TRUE(tasks.ok());
  ASSERT_EQ(tasks->size(), 1u);
  EXPECT_EQ((*tasks)[0].type, TaskType::kConvertValues);
  EXPECT_EQ((*tasks)[0].category, TaskCategory::kCleaningValues);
  // Systematic: the Table 9 function sees the format count, not the
  // distinct-value count -> 30 minutes branch.
  EXPECT_DOUBLE_EQ((*tasks)[0].Param(task_params::kDistinctValues), 1.0);
}

TEST_F(PaperExampleValueTest, LowEffortIgnoresUncriticalHeterogeneity) {
  auto tasks = module_.PlanTasks(*report_, ExpectedQuality::kLowEffort, {});
  ASSERT_TRUE(tasks.ok());
  // Table 7: uncritical representations need no low-effort action.
  EXPECT_TRUE(tasks->empty());
}

TEST_F(PaperExampleValueTest, ReportRendersTable6) {
  std::string text = report_->ToText();
  EXPECT_NE(text.find("Value heterogeneity"), std::string::npos);
  EXPECT_NE(text.find("songs.length -> tracks.duration"),
            std::string::npos);
  EXPECT_NE(text.find("distinct source values"), std::string::npos);
}

TEST(ValueHeterogeneityNamesTest, MatchAlgorithm1) {
  EXPECT_EQ(ValueHeterogeneityTypeToString(
                ValueHeterogeneityType::kTooFewSourceElements),
            "Too few source elements");
  EXPECT_EQ(ValueHeterogeneityTypeToString(
                ValueHeterogeneityType::kDifferentRepresentationsCritical),
            "Different value representations (critical)");
  EXPECT_EQ(ValueHeterogeneityTypeToString(
                ValueHeterogeneityType::kTooCoarseGrainedSourceValues),
            "Too coarse-grained source values");
}

TEST(ValueModulePlannerTest, Table7TaskMatrix) {
  auto plan_one = [](ValueHeterogeneityType type, ExpectedQuality quality,
                     bool systematic = true) {
    ValueHeterogeneity h;
    h.type = type;
    h.source_values = 500;
    h.source_distinct_values = 400;
    h.source_pattern_count = systematic ? 2 : 20;
    h.systematic = systematic;
    h.affected_values = 100;
    ValueComplexityReport report({h});
    ValueModule module;
    auto tasks = module.PlanTasks(report, quality, {});
    EXPECT_TRUE(tasks.ok());
    return *tasks;
  };

  using T = ValueHeterogeneityType;
  using Q = ExpectedQuality;

  // Too few elements: high -> Add values, low -> nothing.
  auto tasks = plan_one(T::kTooFewSourceElements, Q::kHighQuality);
  ASSERT_EQ(tasks.size(), 1u);
  EXPECT_EQ(tasks[0].type, TaskType::kAddValues);
  EXPECT_DOUBLE_EQ(tasks[0].Param(task_params::kValues), 100.0);
  EXPECT_TRUE(plan_one(T::kTooFewSourceElements, Q::kLowEffort).empty());

  // Critical representations: low -> Drop values, high -> Convert values.
  tasks = plan_one(T::kDifferentRepresentationsCritical, Q::kLowEffort);
  ASSERT_EQ(tasks.size(), 1u);
  EXPECT_EQ(tasks[0].type, TaskType::kDropValues);
  tasks = plan_one(T::kDifferentRepresentationsCritical, Q::kHighQuality);
  ASSERT_EQ(tasks.size(), 1u);
  EXPECT_EQ(tasks[0].type, TaskType::kConvertValues);

  // Irregular conversion keeps the per-distinct parameter.
  tasks = plan_one(T::kDifferentRepresentations, Q::kHighQuality,
                   /*systematic=*/false);
  ASSERT_EQ(tasks.size(), 1u);
  EXPECT_DOUBLE_EQ(tasks[0].Param(task_params::kDistinctValues), 400.0);

  // Granularity rules.
  tasks = plan_one(T::kTooFineGrainedSourceValues, Q::kHighQuality);
  ASSERT_EQ(tasks.size(), 1u);
  EXPECT_EQ(tasks[0].type, TaskType::kGeneralizeValues);
  tasks = plan_one(T::kTooCoarseGrainedSourceValues, Q::kHighQuality);
  ASSERT_EQ(tasks.size(), 1u);
  EXPECT_EQ(tasks[0].type, TaskType::kRefineValues);
  EXPECT_TRUE(
      plan_one(T::kTooFineGrainedSourceValues, Q::kLowEffort).empty());
}

}  // namespace
}  // namespace efes
