// Tests for the relational-to-CSG conversion.

#include "efes/csg/builder.h"

#include <gtest/gtest.h>

namespace efes {
namespace {

/// Figure 2's target schema (records / tracks) with a little data.
Database MakeTargetDatabase() {
  Schema schema("target");
  (void)schema.AddRelation(RelationDef(
      "records", {{"id", DataType::kInteger},
                  {"title", DataType::kText},
                  {"artist", DataType::kText}}));
  (void)schema.AddRelation(RelationDef(
      "tracks", {{"record", DataType::kInteger},
                 {"title", DataType::kText},
                 {"duration", DataType::kText}}));
  schema.AddConstraint(Constraint::PrimaryKey("records", {"id"}));
  schema.AddConstraint(Constraint::NotNull("records", "title"));
  schema.AddConstraint(
      Constraint::ForeignKey("tracks", {"record"}, "records", {"id"}));
  schema.AddConstraint(Constraint::NotNull("tracks", "record"));
  auto db = Database::Create(std::move(schema));
  EXPECT_TRUE(db.ok());
  Table* records = *db->mutable_table("records");
  EXPECT_TRUE(records
                  ->AppendRow({Value::Integer(1), Value::Text("Album A"),
                               Value::Text("Artist X")})
                  .ok());
  Table* tracks = *db->mutable_table("tracks");
  EXPECT_TRUE(tracks
                  ->AppendRow({Value::Integer(1),
                               Value::Text("Sweet Home Alabama"),
                               Value::Text("4:43")})
                  .ok());
  EXPECT_TRUE(tracks
                  ->AppendRow({Value::Integer(1), Value::Text("I Need You"),
                               Value::Null()})
                  .ok());
  return std::move(*db);
}

TEST(CsgBuilderTest, CreatesNodePerRelationAndAttribute) {
  Database db = MakeTargetDatabase();
  CsgGraph graph = BuildCsgGraph(db);
  // 2 table nodes + 6 attribute nodes.
  EXPECT_EQ(graph.nodes().size(), 8u);
  EXPECT_TRUE(graph.FindTableNode("records").ok());
  EXPECT_TRUE(graph.FindAttributeNode("tracks", "duration").ok());
}

TEST(CsgBuilderTest, NotNullTightensForwardCardinality) {
  Database db = MakeTargetDatabase();
  CsgGraph graph = BuildCsgGraph(db);
  // tracks.record is NOT NULL: κ(tracks -> record) = 1.
  NodeId tracks = *graph.FindTableNode("tracks");
  NodeId record = *graph.FindAttributeNode("tracks", "record");
  NodeId duration = *graph.FindAttributeNode("tracks", "duration");
  for (RelationshipId id : graph.OutgoingOf(tracks)) {
    const CsgRelationship& rel = graph.relationship(id);
    if (rel.to == record) {
      EXPECT_EQ(rel.prescribed, Cardinality::Exactly(1));
    }
    if (rel.to == duration) {
      // duration is nullable: 0..1.
      EXPECT_EQ(rel.prescribed, Cardinality::Optional());
    }
  }
}

TEST(CsgBuilderTest, UniqueTightensBackwardCardinality) {
  Database db = MakeTargetDatabase();
  CsgGraph graph = BuildCsgGraph(db);
  NodeId id_node = *graph.FindAttributeNode("records", "id");
  NodeId title_node = *graph.FindAttributeNode("records", "title");
  NodeId records = *graph.FindTableNode("records");
  for (RelationshipId rel_id : graph.OutgoingOf(id_node)) {
    const CsgRelationship& rel = graph.relationship(rel_id);
    if (rel.to == records) {
      // records.id is the PK: each value in exactly one tuple.
      EXPECT_EQ(rel.prescribed, Cardinality::Exactly(1));
    }
  }
  for (RelationshipId rel_id : graph.OutgoingOf(title_node)) {
    const CsgRelationship& rel = graph.relationship(rel_id);
    if (rel.to == records) {
      // titles are not unique: 1..*.
      EXPECT_EQ(rel.prescribed, Cardinality::AtLeast(1));
    }
  }
}

TEST(CsgBuilderTest, ForeignKeyBecomesEqualityRelationship) {
  Database db = MakeTargetDatabase();
  CsgGraph graph = BuildCsgGraph(db);
  NodeId record_attr = *graph.FindAttributeNode("tracks", "record");
  NodeId id_attr = *graph.FindAttributeNode("records", "id");
  bool found = false;
  for (RelationshipId rel_id : graph.OutgoingOf(record_attr)) {
    const CsgRelationship& rel = graph.relationship(rel_id);
    if (rel.kind == CsgEdgeKind::kEquality && rel.to == id_attr) {
      found = true;
      EXPECT_EQ(rel.prescribed, Cardinality::Exactly(1));
      EXPECT_EQ(graph.relationship(rel.inverse).prescribed,
                Cardinality::Optional());
    }
  }
  EXPECT_TRUE(found);
}

TEST(CsgBuilderTest, InstanceHoldsTuplesAndDistinctValues) {
  Database db = MakeTargetDatabase();
  Csg csg = BuildCsg(db);
  NodeId tracks = *csg.graph.FindTableNode("tracks");
  NodeId record_attr = *csg.graph.FindAttributeNode("tracks", "record");
  EXPECT_EQ(csg.instance.ElementCount(tracks), 2u);
  // Both tracks share record value 1 -> one distinct element.
  EXPECT_EQ(csg.instance.ElementCount(record_attr), 1u);
}

TEST(CsgBuilderTest, NullCellsProduceNoLink) {
  Database db = MakeTargetDatabase();
  Csg csg = BuildCsg(db);
  NodeId tracks = *csg.graph.FindTableNode("tracks");
  NodeId duration = *csg.graph.FindAttributeNode("tracks", "duration");
  RelationshipId tracks_to_duration = 0;
  for (RelationshipId rel_id : csg.graph.OutgoingOf(tracks)) {
    if (csg.graph.relationship(rel_id).to == duration) {
      tracks_to_duration = rel_id;
    }
  }
  // Second track has NULL duration -> only one link.
  EXPECT_EQ(csg.instance.LinkCount(tracks_to_duration), 1u);
  EXPECT_EQ(csg.instance.CountViolations(csg.graph, tracks_to_duration,
                                         Cardinality::Optional()),
            0u);
}

TEST(CsgBuilderTest, EqualityLinksConnectMatchingValues) {
  Database db = MakeTargetDatabase();
  Csg csg = BuildCsg(db);
  NodeId record_attr = *csg.graph.FindAttributeNode("tracks", "record");
  RelationshipId equality = 0;
  bool found = false;
  for (RelationshipId rel_id : csg.graph.OutgoingOf(record_attr)) {
    if (csg.graph.relationship(rel_id).kind == CsgEdgeKind::kEquality) {
      equality = rel_id;
      found = true;
    }
  }
  ASSERT_TRUE(found);
  // Value 1 exists on both sides -> one equality link, no violations of
  // κ = 1.
  EXPECT_EQ(csg.instance.LinkCount(equality), 1u);
  EXPECT_EQ(csg.instance.CountViolations(csg.graph, equality,
                                         Cardinality::Exactly(1)),
            0u);
}

TEST(CsgBuilderTest, DanglingForeignKeySurfacesAsMissingEqualityLink) {
  Database db = MakeTargetDatabase();
  Table* tracks = *db.mutable_table("tracks");
  ASSERT_TRUE(tracks
                  ->AppendRow({Value::Integer(99), Value::Text("dangling"),
                               Value::Null()})
                  .ok());
  Csg csg = BuildCsg(db);
  NodeId record_attr = *csg.graph.FindAttributeNode("tracks", "record");
  for (RelationshipId rel_id : csg.graph.OutgoingOf(record_attr)) {
    const CsgRelationship& rel = csg.graph.relationship(rel_id);
    if (rel.kind == CsgEdgeKind::kEquality) {
      // Value 99 has no equal records.id element -> one violation.
      EXPECT_EQ(csg.instance.CountViolations(csg.graph, rel_id,
                                             Cardinality::Exactly(1)),
                1u);
    }
  }
}

}  // namespace
}  // namespace efes
