// Tests for the telemetry subsystem: metrics registry semantics
// (including concurrent updates), FakeClock-driven span nesting and
// durations, Chrome trace-event JSON export (golden + parse check),
// leveled logging, and the report renderers.

#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <thread>
#include <vector>

#include "efes/common/json_writer.h"
#include "efes/profiling/profiler.h"
#include "efes/profiling/statistics.h"
#include "efes/relational/value.h"
#include "efes/common/clock.h"
#include "efes/telemetry/log.h"
#include "efes/common/metrics.h"
#include "efes/telemetry/report.h"
#include "efes/telemetry/trace.h"

namespace efes {
namespace {

// --- A minimal JSON validity checker ---------------------------------------
// Enough of RFC 8259 to assert that exported documents are loadable:
// parses one value and reports whether the whole input was consumed.

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool Valid() {
    SkipSpace();
    if (!ParseValue()) return false;
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  bool ParseString() {
    if (!Consume('"')) return false;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;  // skip the escaped character
      ++pos_;
    }
    return Consume('"');
  }

  bool ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool ParseObject() {
    SkipSpace();
    if (Consume('}')) return true;
    while (true) {
      SkipSpace();
      if (!ParseString()) return false;
      SkipSpace();
      if (!Consume(':')) return false;
      SkipSpace();
      if (!ParseValue()) return false;
      SkipSpace();
      if (Consume('}')) return true;
      if (!Consume(',')) return false;
    }
  }

  bool ParseArray() {
    SkipSpace();
    if (Consume(']')) return true;
    while (true) {
      SkipSpace();
      if (!ParseValue()) return false;
      SkipSpace();
      if (Consume(']')) return true;
      if (!Consume(',')) return false;
    }
  }

  bool ParseValue() {
    if (Consume('{')) return ParseObject();
    if (Consume('[')) return ParseArray();
    if (pos_ < text_.size() && text_[pos_] == '"') return ParseString();
    if (ParseLiteral("true") || ParseLiteral("false") ||
        ParseLiteral("null")) {
      return true;
    }
    return ParseNumber();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

// --- Metrics ---------------------------------------------------------------

TEST(MetricsTest, CounterIncrementsAndResets) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("test.phase.count");
  EXPECT_EQ(counter.Value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.Value(), 42u);
  registry.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(MetricsTest, SameNameYieldsSameMetric) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("x.y.z");
  Counter& b = registry.GetCounter("x.y.z");
  EXPECT_EQ(&a, &b);
  a.Increment();
  EXPECT_EQ(b.Value(), 1u);
  // Distinct metric kinds live in distinct namespaces.
  registry.GetGauge("x.y.z").Set(7.0);
  EXPECT_EQ(a.Value(), 1u);
}

TEST(MetricsTest, GaugeHoldsLastValue) {
  MetricsRegistry registry;
  Gauge& gauge = registry.GetGauge("test.gauge");
  gauge.Set(3.5);
  gauge.Set(-2.0);
  EXPECT_DOUBLE_EQ(gauge.Value(), -2.0);
}

TEST(MetricsTest, HistogramBucketsAndMoments) {
  MetricsRegistry registry;
  Histogram& histogram =
      registry.GetHistogram("test.latency.ms", {1.0, 10.0, 100.0});
  histogram.Observe(0.5);    // bucket 0 (<= 1)
  histogram.Observe(1.0);    // bucket 0 (inclusive upper bound)
  histogram.Observe(5.0);    // bucket 1
  histogram.Observe(1000.0); // overflow bucket
  EXPECT_EQ(histogram.TotalCount(), 4u);
  EXPECT_DOUBLE_EQ(histogram.Sum(), 1006.5);
  std::vector<uint64_t> buckets = histogram.BucketCounts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 0u);
  EXPECT_EQ(buckets[3], 1u);
}

TEST(MetricsTest, SnapshotIsSortedByName) {
  MetricsRegistry registry;
  registry.GetCounter("b.second");
  registry.GetCounter("a.first");
  registry.GetGauge("z.gauge").Set(1.0);
  registry.GetHistogram("m.hist").Observe(2.0);
  MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].name, "a.first");
  EXPECT_EQ(snapshot.counters[1].name, "b.second");
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].count, 1u);
  EXPECT_EQ(snapshot.CounterValue("b.second"), 0u);
  EXPECT_EQ(snapshot.CounterValue("missing"), 0u);
}

TEST(MetricsTest, ConcurrentIncrementsAreLossless) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("concurrent.counter");
  Histogram& histogram = registry.GetHistogram("concurrent.hist", {0.5});
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        counter.Increment();
        histogram.Observe(1.0);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(),
            static_cast<uint64_t>(kThreads) * kIncrements);
  EXPECT_EQ(histogram.TotalCount(),
            static_cast<uint64_t>(kThreads) * kIncrements);
  EXPECT_DOUBLE_EQ(histogram.Sum(), 1.0 * kThreads * kIncrements);
}

TEST(MetricsTest, ConcurrentRegistrationIsSafe) {
  MetricsRegistry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        registry.GetCounter("shared." + std::to_string(i)).Increment();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 100u);
  for (const auto& sample : snapshot.counters) {
    EXPECT_EQ(sample.value, 8u);
  }
}

// --- Spans and tracing -----------------------------------------------------

TEST(TraceTest, FakeClockDrivesSpanDurations) {
  FakeClock clock;
  TraceRecorder recorder;
  recorder.set_clock(&clock);
  recorder.set_enabled(true);
  {
    TraceSpan outer("test.outer", &recorder);
    clock.AdvanceMicros(10);
    {
      TraceSpan inner("test.inner", &recorder);
      clock.AdvanceMicros(5);
    }
    clock.AdvanceMicros(1);
  }
  std::vector<TraceEvent> events = recorder.events();
  ASSERT_EQ(events.size(), 2u);  // recorded at span end: inner first
  EXPECT_EQ(events[0].name, "test.inner");
  EXPECT_EQ(events[0].start_nanos, 10000);
  EXPECT_EQ(events[0].duration_nanos, 5000);
  EXPECT_EQ(events[0].depth, 1);
  EXPECT_EQ(events[1].name, "test.outer");
  EXPECT_EQ(events[1].start_nanos, 0);
  EXPECT_EQ(events[1].duration_nanos, 16000);
  EXPECT_EQ(events[1].depth, 0);
  // Parent/child linkage.
  EXPECT_EQ(events[0].parent_id, events[1].id);
  EXPECT_EQ(events[1].parent_id, 0);
}

TEST(TraceTest, SiblingsShareTheParent) {
  FakeClock clock;
  TraceRecorder recorder;
  recorder.set_clock(&clock);
  recorder.set_enabled(true);
  {
    TraceSpan root("test.root", &recorder);
    { TraceSpan a("test.a", &recorder); clock.AdvanceMicros(1); }
    { TraceSpan b("test.b", &recorder); clock.AdvanceMicros(2); }
  }
  std::vector<TraceEvent> events = recorder.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, "test.a");
  EXPECT_EQ(events[1].name, "test.b");
  EXPECT_EQ(events[2].name, "test.root");
  EXPECT_EQ(events[0].parent_id, events[2].id);
  EXPECT_EQ(events[1].parent_id, events[2].id);
  EXPECT_NE(events[0].id, events[1].id);
}

TEST(TraceTest, DisabledRecorderRecordsNothing) {
  TraceRecorder recorder;
  { TraceSpan span("test.ignored", &recorder); }
  EXPECT_TRUE(recorder.events().empty());
}

TEST(TraceTest, SpanFeedsLatencyHistogramEvenWhenDisabled) {
  FakeClock clock;
  TraceRecorder recorder;
  recorder.set_clock(&clock);  // disabled
  MetricsRegistry registry;
  Histogram& latency = registry.GetHistogram("span.ms");
  {
    TraceSpan span("test.timed", &recorder, &latency);
    clock.AdvanceMillis(3);
  }
  EXPECT_TRUE(recorder.events().empty());
  EXPECT_EQ(latency.TotalCount(), 1u);
  EXPECT_DOUBLE_EQ(latency.Sum(), 3.0);
}

TEST(TraceTest, ClearDiscardsEvents) {
  FakeClock clock;
  TraceRecorder recorder;
  recorder.set_clock(&clock);
  recorder.set_enabled(true);
  { TraceSpan span("test.x", &recorder); }
  ASSERT_EQ(recorder.events().size(), 1u);
  recorder.Clear();
  EXPECT_TRUE(recorder.events().empty());
}

TEST(TraceTest, ChromeTraceJsonGolden) {
  FakeClock clock;
  TraceRecorder recorder;
  recorder.set_clock(&clock);
  recorder.set_enabled(true);
  {
    TraceSpan outer("test.outer", &recorder);
    clock.AdvanceMicros(10);
    {
      TraceSpan inner("test.inner", &recorder);
      clock.AdvanceMicros(5);
    }
    clock.AdvanceMicros(1);
  }
  // The golden rendering: complete ("X") events with microsecond ts/dur,
  // children recorded before their parents (spans record at end).
  EXPECT_EQ(
      recorder.ToChromeTraceJson(),
      "{\"traceEvents\":["
      "{\"name\":\"test.inner\",\"cat\":\"efes\",\"ph\":\"X\",\"ts\":10,"
      "\"dur\":5,\"pid\":1,\"tid\":0,"
      "\"args\":{\"depth\":1,\"id\":2,\"parent\":1}},"
      "{\"name\":\"test.outer\",\"cat\":\"efes\",\"ph\":\"X\",\"ts\":0,"
      "\"dur\":16,\"pid\":1,\"tid\":0,"
      "\"args\":{\"depth\":0,\"id\":1,\"parent\":0}}"
      "],\"displayTimeUnit\":\"ms\"}");
}

TEST(TraceTest, ChromeTraceJsonIsLoadable) {
  FakeClock clock;
  TraceRecorder recorder;
  recorder.set_clock(&clock);
  recorder.set_enabled(true);
  {
    // EFES_LINT_ALLOW(metric-name): exercises escape rendering, not naming
    TraceSpan a("outer \"quoted\" name", &recorder);
    clock.AdvanceMicros(3);
    // EFES_LINT_ALLOW(metric-name): exercises escape rendering, not naming
    TraceSpan b("inner\nline", &recorder);
    clock.AdvanceMicros(2);
  }
  std::string json = recorder.ToChromeTraceJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

// --- Logging ---------------------------------------------------------------

TEST(LogTest, LevelsFilterAndSinkCaptures) {
  Logger logger;
  CaptureSink sink;
  logger.set_sink(&sink);
  logger.set_level(LogLevel::kWarn);
  EXPECT_FALSE(logger.ShouldLog(LogLevel::kInfo));
  EXPECT_TRUE(logger.ShouldLog(LogLevel::kError));
  logger.Log(LogLevel::kInfo, "dropped");
  logger.Log(LogLevel::kWarn, "kept");
  logger.Log(LogLevel::kError, "also kept");
  std::vector<CaptureSink::Entry> entries = sink.entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].message, "kept");
  EXPECT_EQ(entries[1].level, LogLevel::kError);
}

TEST(LogTest, DisabledMacroDoesNotEvaluateMessage) {
  // The global logger defaults to kOff, so the message expression (which
  // would flip `evaluated`) must not run.
  ASSERT_EQ(Logger::Global().level(), LogLevel::kOff);
  bool evaluated = false;
  auto expensive = [&evaluated] {
    evaluated = true;
    return std::string("never built");
  };
  EFES_LOG(LogLevel::kError, expensive());
  EXPECT_FALSE(evaluated);
}

TEST(LogTest, ParseLogLevelRoundTrips) {
  LogLevel level = LogLevel::kOff;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("error", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_FALSE(ParseLogLevel("verbose", &level));
  EXPECT_EQ(LogLevelToString(LogLevel::kWarn), "warn");
}

// --- Reports ---------------------------------------------------------------

TEST(ReportTest, RendersMetricsTable) {
  MetricsRegistry registry;
  registry.GetCounter("engine.run.count").Increment(2);
  registry.GetGauge("csg.build.nodes").Set(17.0);
  registry.GetHistogram("engine.run.ms").Observe(4.0);
  std::string report = RenderMetricsReport(registry.Snapshot());
  EXPECT_NE(report.find("engine.run.count"), std::string::npos);
  EXPECT_NE(report.find("counter"), std::string::npos);
  EXPECT_NE(report.find("17"), std::string::npos);
  EXPECT_NE(report.find("histogram"), std::string::npos);
  EXPECT_EQ(RenderMetricsReport(MetricsSnapshot{}), "");
}

TEST(ReportTest, WriteMetricsJsonIsLoadable) {
  MetricsRegistry registry;
  registry.GetCounter("a.b.c").Increment(3);
  // EFES_LINT_ALLOW(metric-name): exercises escape rendering, not naming
  registry.GetGauge("g\"quoted\"").Set(0.5);
  registry.GetHistogram("h.ms").Observe(1.5);
  JsonWriter json;
  WriteMetricsJson(registry.Snapshot(), json);
  std::string text = json.ToString();
  EXPECT_TRUE(JsonChecker(text).Valid()) << text;
  EXPECT_NE(text.find("\"a.b.c\":3"), std::string::npos);
}

TEST(ReportTest, BenchJsonLineGolden) {
  MetricsRegistry registry;
  registry.GetCounter("profiling.statistics.cells").Increment(100);
  std::string line =
      BenchJsonLine("perf_test", 12.5, 4, registry.Snapshot());
  EXPECT_EQ(line,
            "{\"bench\":\"perf_test\",\"wall_ms\":12.5,\"threads\":4,"
            "\"counters\":{\"profiling.statistics.cells\":100}}");
  EXPECT_TRUE(JsonChecker(line).Valid());
}

// --- Instrumented library code --------------------------------------------

TEST(InstrumentationTest, ProfilingBumpsStatisticsCounters) {
  MetricsSnapshot before = MetricsRegistry::Global().Snapshot();
  std::vector<Value> column = {Value::Integer(1), Value::Integer(2),
                               Value::Null()};
  ASSERT_TRUE(ProfileColumn(column, DataType::kInteger).ok());
  MetricsSnapshot after = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(after.CounterValue("profiling.statistics.columns"),
            before.CounterValue("profiling.statistics.columns") + 1);
  EXPECT_EQ(after.CounterValue("profiling.statistics.cells"),
            before.CounterValue("profiling.statistics.cells") + 3);
}

}  // namespace
}  // namespace efes
