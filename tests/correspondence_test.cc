// Tests for correspondences between schemas.

#include "efes/relational/correspondence.h"

#include <gtest/gtest.h>

namespace efes {
namespace {

Schema MakeSource() {
  Schema schema("source");
  (void)schema.AddRelation(RelationDef(
      "albums", {{"id", DataType::kInteger}, {"name", DataType::kText}}));
  (void)schema.AddRelation(RelationDef(
      "songs", {{"album", DataType::kInteger}, {"name", DataType::kText}}));
  return schema;
}

Schema MakeTarget() {
  Schema schema("target");
  (void)schema.AddRelation(RelationDef(
      "records", {{"id", DataType::kInteger}, {"title", DataType::kText}}));
  (void)schema.AddRelation(RelationDef(
      "tracks", {{"record", DataType::kInteger}, {"title", DataType::kText}}));
  return schema;
}

CorrespondenceSet MakeSet() {
  CorrespondenceSet set;
  set.AddRelation("albums", "records");
  set.AddAttribute("albums", "name", "records", "title");
  set.AddRelation("songs", "tracks");
  set.AddAttribute("songs", "name", "tracks", "title");
  set.AddAttribute("songs", "album", "tracks", "record");
  return set;
}

TEST(CorrespondenceTest, Granularity) {
  CorrespondenceSet set = MakeSet();
  EXPECT_TRUE(set.all()[0].is_relation_level());
  EXPECT_TRUE(set.all()[1].is_attribute_level());
  EXPECT_EQ(set.size(), 5u);
  EXPECT_FALSE(set.empty());
}

TEST(CorrespondenceTest, ToStringFormats) {
  CorrespondenceSet set = MakeSet();
  EXPECT_EQ(set.all()[0].ToString(), "albums -> records");
  EXPECT_EQ(set.all()[1].ToString(), "albums.name -> records.title");
}

TEST(CorrespondenceTest, AttributesInto) {
  CorrespondenceSet set = MakeSet();
  EXPECT_EQ(set.AttributesInto("tracks").size(), 2u);
  EXPECT_EQ(set.AttributesInto("records").size(), 1u);
  EXPECT_EQ(set.AttributesInto("tracks", "title").size(), 1u);
  EXPECT_TRUE(set.AttributesInto("tracks", "ghost").empty());
}

TEST(CorrespondenceTest, SourceRelationsForDeduplicates) {
  CorrespondenceSet set = MakeSet();
  EXPECT_EQ(set.SourceRelationsFor("tracks"),
            (std::vector<std::string>{"songs"}));
  EXPECT_EQ(set.SourceRelationsFor("records"),
            (std::vector<std::string>{"albums"}));
}

TEST(CorrespondenceTest, TargetRelations) {
  CorrespondenceSet set = MakeSet();
  EXPECT_EQ(set.TargetRelations(),
            (std::vector<std::string>{"records", "tracks"}));
}

TEST(CorrespondenceTest, RelationCorrespondenceFor) {
  CorrespondenceSet set = MakeSet();
  auto corr = set.RelationCorrespondenceFor("records");
  ASSERT_TRUE(corr.ok());
  EXPECT_EQ(corr->source_relation, "albums");
  EXPECT_FALSE(set.RelationCorrespondenceFor("ghost").ok());
}

TEST(CorrespondenceTest, ValidateAcceptsWellFormed) {
  EXPECT_TRUE(MakeSet().Validate(MakeSource(), MakeTarget()).ok());
}

TEST(CorrespondenceTest, ValidateRejectsUnknownSourceRelation) {
  CorrespondenceSet set;
  set.AddRelation("ghost", "records");
  EXPECT_FALSE(set.Validate(MakeSource(), MakeTarget()).ok());
}

TEST(CorrespondenceTest, ValidateRejectsUnknownAttribute) {
  CorrespondenceSet set;
  set.AddAttribute("albums", "ghost", "records", "title");
  EXPECT_FALSE(set.Validate(MakeSource(), MakeTarget()).ok());
  CorrespondenceSet set2;
  set2.AddAttribute("albums", "name", "records", "ghost");
  EXPECT_FALSE(set2.Validate(MakeSource(), MakeTarget()).ok());
}

TEST(CorrespondenceTest, ValidateRejectsMixedGranularity) {
  CorrespondenceSet set;
  Correspondence corr;
  corr.source_relation = "albums";
  corr.source_attribute = "name";
  corr.target_relation = "records";
  // target_attribute left empty -> mixed granularity.
  set.Add(std::move(corr));
  EXPECT_FALSE(set.Validate(MakeSource(), MakeTarget()).ok());
}

TEST(CorrespondenceTest, ValidateRejectsBadConfidence) {
  CorrespondenceSet set;
  Correspondence corr;
  corr.source_relation = "albums";
  corr.target_relation = "records";
  corr.confidence = 1.5;
  set.Add(std::move(corr));
  EXPECT_FALSE(set.Validate(MakeSource(), MakeTarget()).ok());
}

}  // namespace
}  // namespace efes
