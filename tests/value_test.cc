// Tests for the dynamically typed Value.

#include "efes/relational/value.h"

#include <gtest/gtest.h>

namespace efes {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Boolean(true).type(), DataType::kBoolean);
  EXPECT_EQ(Value::Integer(7).type(), DataType::kInteger);
  EXPECT_EQ(Value::Real(1.5).type(), DataType::kReal);
  EXPECT_EQ(Value::Text("x").type(), DataType::kText);
  EXPECT_TRUE(Value::Boolean(true).AsBoolean());
  EXPECT_EQ(Value::Integer(7).AsInteger(), 7);
  EXPECT_DOUBLE_EQ(Value::Real(1.5).AsReal(), 1.5);
  EXPECT_EQ(Value::Text("x").AsText(), "x");
}

TEST(ValueTest, NumericValueBridgesIntAndReal) {
  EXPECT_DOUBLE_EQ(Value::Integer(3).NumericValue(), 3.0);
  EXPECT_DOUBLE_EQ(Value::Real(2.5).NumericValue(), 2.5);
}

TEST(ValueTest, NullCastsToAnything) {
  for (DataType type : {DataType::kBoolean, DataType::kInteger,
                        DataType::kReal, DataType::kText}) {
    EXPECT_TRUE(Value::Null().CanCastTo(type));
    auto cast = Value::Null().CastTo(type);
    ASSERT_TRUE(cast.ok());
    EXPECT_TRUE(cast->is_null());
  }
}

TEST(ValueTest, IntegerCasts) {
  EXPECT_TRUE(Value::Integer(5).CanCastTo(DataType::kReal));
  EXPECT_TRUE(Value::Integer(5).CanCastTo(DataType::kText));
  EXPECT_FALSE(Value::Integer(5).CanCastTo(DataType::kBoolean));
  EXPECT_EQ(Value::Integer(5).CastTo(DataType::kText)->AsText(), "5");
  EXPECT_DOUBLE_EQ(Value::Integer(5).CastTo(DataType::kReal)->AsReal(), 5.0);
}

TEST(ValueTest, RealToIntegerOnlyWhenIntegral) {
  EXPECT_TRUE(Value::Real(4.0).CanCastTo(DataType::kInteger));
  EXPECT_FALSE(Value::Real(4.5).CanCastTo(DataType::kInteger));
  EXPECT_EQ(Value::Real(4.0).CastTo(DataType::kInteger)->AsInteger(), 4);
}

TEST(ValueTest, TextToNumericParsesCompletely) {
  EXPECT_TRUE(Value::Text("42").CanCastTo(DataType::kInteger));
  EXPECT_FALSE(Value::Text("4:43").CanCastTo(DataType::kInteger));
  EXPECT_FALSE(Value::Text("'98").CanCastTo(DataType::kInteger));
  EXPECT_TRUE(Value::Text("1.25").CanCastTo(DataType::kReal));
  EXPECT_FALSE(Value::Text("12--34").CanCastTo(DataType::kReal));
  EXPECT_EQ(Value::Text("42").CastTo(DataType::kInteger)->AsInteger(), 42);
}

TEST(ValueTest, TextToBoolean) {
  EXPECT_TRUE(Value::Text("true").CanCastTo(DataType::kBoolean));
  EXPECT_TRUE(Value::Text("FALSE").CanCastTo(DataType::kBoolean));
  EXPECT_TRUE(Value::Text("1").CanCastTo(DataType::kBoolean));
  EXPECT_FALSE(Value::Text("yes").CanCastTo(DataType::kBoolean));
  EXPECT_TRUE(Value::Text("true").CastTo(DataType::kBoolean)->AsBoolean());
  EXPECT_FALSE(
      Value::Text("false").CastTo(DataType::kBoolean)->AsBoolean());
}

TEST(ValueTest, BooleanCasts) {
  EXPECT_EQ(Value::Boolean(true).CastTo(DataType::kText)->AsText(), "true");
  EXPECT_EQ(Value::Boolean(false).CastTo(DataType::kInteger)->AsInteger(),
            0);
}

TEST(ValueTest, FailedCastReturnsTypeMismatch) {
  auto result = Value::Text("oops").CastTo(DataType::kInteger);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTypeMismatch);
}

TEST(ValueTest, IdentityCastIsNoOp) {
  auto result = Value::Text("same").CastTo(DataType::kText);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->AsText(), "same");
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Integer(-3).ToString(), "-3");
  EXPECT_EQ(Value::Boolean(true).ToString(), "true");
  EXPECT_EQ(Value::Text("as is").ToString(), "as is");
}

TEST(ValueTest, EqualityAcrossNumericTypes) {
  EXPECT_EQ(Value::Integer(3), Value::Real(3.0));
  EXPECT_NE(Value::Integer(3), Value::Real(3.5));
  EXPECT_NE(Value::Integer(3), Value::Text("3"));
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_NE(Value::Null(), Value::Integer(0));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Integer(3).Hash(), Value::Real(3.0).Hash());
  EXPECT_EQ(Value::Text("x").Hash(), Value::Text("x").Hash());
}

TEST(ValueTest, OrderingNullFirstTextLast) {
  EXPECT_LT(Value::Null(), Value::Boolean(false));
  EXPECT_LT(Value::Boolean(true), Value::Integer(0));
  EXPECT_LT(Value::Integer(5), Value::Text(""));
  EXPECT_LT(Value::Integer(2), Value::Integer(3));
  EXPECT_LT(Value::Text("a"), Value::Text("b"));
  EXPECT_FALSE(Value::Null() < Value::Null());
}

TEST(ValueTest, DataTypeNames) {
  EXPECT_EQ(DataTypeToString(DataType::kInteger), "integer");
  EXPECT_EQ(DataTypeToString(DataType::kText), "text");
  EXPECT_EQ(DataTypeToString(DataType::kNull), "null");
}

}  // namespace
}  // namespace efes
