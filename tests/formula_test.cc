// Tests for the effort-formula language and the configuration parser.

#include "efes/core/formula.h"

#include <gtest/gtest.h>

#include "efes/common/file_io.h"
#include "efes/core/effort_config.h"

#include "test_paths.h"

namespace efes {
namespace {

double Eval(const std::string& text,
            std::map<std::string, double> parameters = {}) {
  auto formula = Formula::Parse(text);
  EXPECT_TRUE(formula.ok()) << formula.status().ToString();
  Task task;
  task.parameters = std::move(parameters);
  return formula->Evaluate(task);
}

TEST(FormulaTest, Numbers) {
  EXPECT_DOUBLE_EQ(Eval("42"), 42.0);
  EXPECT_DOUBLE_EQ(Eval("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(Eval("-7"), -7.0);
}

TEST(FormulaTest, ArithmeticPrecedence) {
  EXPECT_DOUBLE_EQ(Eval("2 + 3 * 4"), 14.0);
  EXPECT_DOUBLE_EQ(Eval("(2 + 3) * 4"), 20.0);
  EXPECT_DOUBLE_EQ(Eval("10 - 4 - 3"), 3.0);  // left-associative
  EXPECT_DOUBLE_EQ(Eval("12 / 4 / 3"), 1.0);
  EXPECT_DOUBLE_EQ(Eval("2 * -3"), -6.0);
}

TEST(FormulaTest, DivisionByZeroYieldsZero) {
  EXPECT_DOUBLE_EQ(Eval("5 / 0"), 0.0);
  EXPECT_DOUBLE_EQ(Eval("5 / values"), 0.0);  // missing parameter = 0
}

TEST(FormulaTest, ParametersResolve) {
  EXPECT_DOUBLE_EQ(Eval("2 * values", {{"values", 102}}), 204.0);
  EXPECT_DOUBLE_EQ(Eval("unknown_param"), 0.0);
}

TEST(FormulaTest, PaperHashNotationAccepted) {
  // "#dist-vals" from Table 9 normalizes to the dist_vals parameter.
  EXPECT_DOUBLE_EQ(Eval("0.25 * #dist-vals", {{"dist_vals", 400}}), 100.0);
}

TEST(FormulaTest, Table9WriteMappingFormula) {
  EXPECT_DOUBLE_EQ(
      Eval("3*fks + 3*pks + attributes + 3*tables",
           {{"fks", 0}, {"pks", 1}, {"attributes", 2}, {"tables", 3}}),
      14.0);
}

TEST(FormulaTest, Conditionals) {
  std::string convert = "if dist_vals < 120 then 30 else 0.25 * dist_vals";
  EXPECT_DOUBLE_EQ(Eval(convert, {{"dist_vals", 50}}), 30.0);
  EXPECT_DOUBLE_EQ(Eval(convert, {{"dist_vals", 400}}), 100.0);
}

TEST(FormulaTest, ComparisonOperators) {
  EXPECT_DOUBLE_EQ(Eval("if values <= 5 then 1 else 2", {{"values", 5}}),
                   1.0);
  EXPECT_DOUBLE_EQ(Eval("if values >= 5 then 1 else 2", {{"values", 4}}),
                   2.0);
  EXPECT_DOUBLE_EQ(Eval("if values == 5 then 1 else 2", {{"values", 5}}),
                   1.0);
  EXPECT_DOUBLE_EQ(Eval("if values > 5 then 1 else 2", {{"values", 6}}),
                   1.0);
}

TEST(FormulaTest, ChainedConditionals) {
  std::string tiers =
      "if values < 10 then 1 else if values < 100 then 2 else 3";
  EXPECT_DOUBLE_EQ(Eval(tiers, {{"values", 5}}), 1.0);
  EXPECT_DOUBLE_EQ(Eval(tiers, {{"values", 50}}), 2.0);
  EXPECT_DOUBLE_EQ(Eval(tiers, {{"values", 500}}), 3.0);
}

TEST(FormulaTest, ParseErrors) {
  EXPECT_FALSE(Formula::Parse("").ok());
  EXPECT_FALSE(Formula::Parse("2 +").ok());
  EXPECT_FALSE(Formula::Parse("(2 + 3").ok());
  EXPECT_FALSE(Formula::Parse("2 3").ok());
  EXPECT_FALSE(Formula::Parse("if x then 1").ok());     // missing else
  EXPECT_FALSE(Formula::Parse("if x 1 else 2").ok());   // missing cmp/then
  EXPECT_FALSE(Formula::Parse("1 ** 2").ok());
  EXPECT_EQ(Formula::Parse("2 +").status().code(), StatusCode::kParseError);
}

TEST(FormulaTest, KeepsSourceText) {
  auto formula = Formula::Parse("1 + 2");
  ASSERT_TRUE(formula.ok());
  EXPECT_EQ(formula->text(), "1 + 2");
}

// --- Config parser ----------------------------------------------------------

TEST(EffortConfigTest, ParsesSettings) {
  auto config = ParseEffortConfig(R"(
# comment line
[settings]
practitioner_skill = 0.8
criticality = 1.5          # trailing comment
mapping_tool_available = true
mapping_tool_minutes = 3
)");
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  EXPECT_DOUBLE_EQ(config->settings.practitioner_skill, 0.8);
  EXPECT_DOUBLE_EQ(config->settings.criticality, 1.5);
  EXPECT_TRUE(config->settings.mapping_tool_available);
  EXPECT_DOUBLE_EQ(config->settings.mapping_tool_minutes, 3.0);
}

TEST(EffortConfigTest, OverridesEffortFunctions) {
  auto config = ParseEffortConfig(R"(
[efforts]
Reject tuples = 9
Convert values = if dist_vals < 10 then 1 else dist_vals
global_scale = 2
)");
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  Task reject;
  reject.type = TaskType::kRejectTuples;
  // 9 * global scale 2.
  EXPECT_DOUBLE_EQ(config->model.EstimateMinutes(reject, config->settings),
                   18.0);
  Task convert;
  convert.type = TaskType::kConvertValues;
  convert.parameters["dist_vals"] = 50;
  EXPECT_DOUBLE_EQ(config->model.EstimateMinutes(convert, config->settings),
                   100.0);
  // Unlisted tasks keep Table 9 defaults (Add tuples = 5, scaled by 2).
  Task add_tuples;
  add_tuples.type = TaskType::kAddTuples;
  EXPECT_DOUBLE_EQ(
      config->model.EstimateMinutes(add_tuples, config->settings), 10.0);
}

TEST(EffortConfigTest, RejectsUnknownSection) {
  EXPECT_FALSE(ParseEffortConfig("[nope]\nx = 1\n").ok());
}

TEST(EffortConfigTest, RejectsUnknownSettingKey) {
  EXPECT_FALSE(ParseEffortConfig("[settings]\nwarp_speed = 9\n").ok());
}

TEST(EffortConfigTest, RejectsUnknownTaskName) {
  auto config = ParseEffortConfig("[efforts]\nFrobnicate values = 5\n");
  EXPECT_FALSE(config.ok());
  EXPECT_NE(config.status().message().find("Frobnicate"),
            std::string::npos);
}

TEST(EffortConfigTest, RejectsMalformedFormula) {
  EXPECT_FALSE(ParseEffortConfig("[efforts]\nReject tuples = 2 +\n").ok());
}

TEST(EffortConfigTest, RejectsKeyOutsideSection) {
  EXPECT_FALSE(ParseEffortConfig("orphan = 1\n").ok());
}

TEST(EffortConfigTest, TaskTypeFromNameRoundTrips) {
  for (const char* name : {"Write mapping", "Convert values",
                           "Add missing values", "Aggregate tuples"}) {
    auto type = TaskTypeFromName(name);
    ASSERT_TRUE(type.ok()) << name;
    EXPECT_EQ(TaskTypeToString(*type), name);
  }
  EXPECT_FALSE(TaskTypeFromName("No such task").ok());
}

TEST(EffortConfigTest, EmptyConfigIsPaperDefault) {
  auto config = ParseEffortConfig("");
  ASSERT_TRUE(config.ok());
  Task reject;
  reject.type = TaskType::kRejectTuples;
  EXPECT_DOUBLE_EQ(config->model.EstimateMinutes(reject, config->settings),
                   5.0);
}

TEST(EffortConfigTest, LoadFromFile) {
  std::string path = TestScratchPath("efes_config_test") + ".conf";
  ASSERT_TRUE(
      WriteFileAtomic(path, "[settings]\ncriticality = 2\n").ok());
  auto config = LoadEffortConfig(path);
  ASSERT_TRUE(config.ok());
  EXPECT_DOUBLE_EQ(config->settings.criticality, 2.0);
  EXPECT_FALSE(LoadEffortConfig("/no/such/file.conf").ok());
}

}  // namespace
}  // namespace efes
