// Tests for the deterministic fault-injection registry, plus the
// end-to-end fault matrix: every registered fault point, when armed,
// degrades the pipeline into a structured error or partial report —
// never a crash — and with nothing armed the pipeline output is
// identical to a run without the harness.

#include "efes/common/fault.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "efes/common/csv.h"
#include "efes/common/file_io.h"
#include "efes/common/parallel.h"
#include "efes/core/engine.h"
#include "efes/execute/integration_executor.h"
#include "efes/experiment/default_pipeline.h"
#include "efes/scenario/paper_example.h"
#include "efes/scenario/scenario_io.h"
#include "efes/common/metrics.h"

#include "test_paths.h"

namespace efes {
namespace {

/// Every test disarms on both ends: the registry is process-global, and
/// a leaked arming would poison unrelated tests in this binary.
class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultRegistry::Global().DisarmAll(); }
  void TearDown() override { FaultRegistry::Global().DisarmAll(); }
};

TEST_F(FaultTest, DisarmedPointsAlwaysPass) {
  EXPECT_FALSE(FaultRegistry::Global().AnyArmed());
  EXPECT_TRUE(CheckFaultPoint("nowhere.special").ok());
  EXPECT_TRUE(CheckFaultPoint("csv.read").ok());
  EXPECT_EQ(FaultRegistry::Global().HitCount("csv.read"), 0u);
}

TEST_F(FaultTest, DefaultSpecFiresEveryHit) {
  ASSERT_TRUE(FaultRegistry::Global().ArmFromString("test.point").ok());
  EXPECT_TRUE(FaultRegistry::Global().AnyArmed());
  for (int i = 0; i < 3; ++i) {
    Status status = CheckFaultPoint("test.point");
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kUnavailable);
    EXPECT_NE(status.message().find("test.point"), std::string::npos);
  }
  EXPECT_EQ(FaultRegistry::Global().HitCount("test.point"), 3u);
  // Other points stay untouched.
  EXPECT_TRUE(CheckFaultPoint("other.point").ok());
}

TEST_F(FaultTest, OnceFiresOnFirstHitOnly) {
  ASSERT_TRUE(FaultRegistry::Global().ArmFromString("test.point:once").ok());
  EXPECT_FALSE(CheckFaultPoint("test.point").ok());
  EXPECT_TRUE(CheckFaultPoint("test.point").ok());
  EXPECT_TRUE(CheckFaultPoint("test.point").ok());
}

TEST_F(FaultTest, NthHitTriggersExactlyOnce) {
  ASSERT_TRUE(FaultRegistry::Global().ArmFromString("test.point:n=3").ok());
  EXPECT_TRUE(CheckFaultPoint("test.point").ok());
  EXPECT_TRUE(CheckFaultPoint("test.point").ok());
  EXPECT_FALSE(CheckFaultPoint("test.point").ok());
  EXPECT_TRUE(CheckFaultPoint("test.point").ok());
}

TEST_F(FaultTest, CountFiresLeadingHitsThenRecovers) {
  ASSERT_TRUE(
      FaultRegistry::Global().ArmFromString("test.point:count=2").ok());
  EXPECT_FALSE(CheckFaultPoint("test.point").ok());
  EXPECT_FALSE(CheckFaultPoint("test.point").ok());
  EXPECT_TRUE(CheckFaultPoint("test.point").ok());
  EXPECT_TRUE(CheckFaultPoint("test.point").ok());
}

TEST_F(FaultTest, ProbabilityIsSeededAndDeterministic) {
  auto run_sequence = [] {
    FaultRegistry::Global().DisarmAll();
    EXPECT_TRUE(FaultRegistry::Global()
                    .ArmFromString("test.point:p=0.5,seed=42")
                    .ok());
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(!CheckFaultPoint("test.point").ok());
    }
    return fired;
  };
  std::vector<bool> first = run_sequence();
  std::vector<bool> second = run_sequence();
  EXPECT_EQ(first, second);
  // p=0.5 over 64 draws fires at least once and passes at least once.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), false), 0);
}

TEST_F(FaultTest, ThrowSpecThrows) {
  ASSERT_TRUE(
      FaultRegistry::Global().ArmFromString("test.point:throw").ok());
  EXPECT_THROW((void)CheckFaultPoint("test.point"), std::runtime_error);
}

TEST_F(FaultTest, CodeOptionSelectsStatusCode) {
  ASSERT_TRUE(FaultRegistry::Global()
                  .ArmFromString("test.point:code=notfound")
                  .ok());
  EXPECT_EQ(CheckFaultPoint("test.point").code(), StatusCode::kNotFound);
  FaultRegistry::Global().DisarmAll();
  ASSERT_TRUE(FaultRegistry::Global()
                  .ArmFromString("test.point:code=resource")
                  .ok());
  EXPECT_EQ(CheckFaultPoint("test.point").code(),
            StatusCode::kResourceExhausted);
}

TEST_F(FaultTest, ArmFromListArmsEverySpec) {
  ASSERT_TRUE(
      FaultRegistry::Global().ArmFromList("a.one:once;b.two:n=2").ok());
  std::vector<std::string> points = FaultRegistry::Global().ArmedPoints();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0], "a.one");
  EXPECT_EQ(points[1], "b.two");
}

TEST_F(FaultTest, MalformedSpecsAreRejected) {
  FaultRegistry& registry = FaultRegistry::Global();
  EXPECT_FALSE(registry.ArmFromString("").ok());
  EXPECT_FALSE(registry.ArmFromString(":once").ok());
  EXPECT_FALSE(registry.ArmFromString("p:bogus-option").ok());
  EXPECT_FALSE(registry.ArmFromString("p:n=zero").ok());
  EXPECT_FALSE(registry.ArmFromString("p:p=2.5").ok());
  EXPECT_FALSE(registry.ArmFromString("p:code=enoent").ok());
}

TEST_F(FaultTest, CountersTrackHitsAndFires) {
  ASSERT_TRUE(
      FaultRegistry::Global().ArmFromString("test.metrics:n=2").ok());
  MetricsRegistry& metrics = MetricsRegistry::Global();
  uint64_t hits_before =
      metrics.GetCounter("fault.test.metrics.hits").Value();
  uint64_t fired_before =
      metrics.GetCounter("fault.test.metrics.fired").Value();
  uint64_t global_before = metrics.GetCounter("fault.fired").Value();
  (void)CheckFaultPoint("test.metrics");
  (void)CheckFaultPoint("test.metrics");
  (void)CheckFaultPoint("test.metrics");
  EXPECT_EQ(metrics.GetCounter("fault.test.metrics.hits").Value(),
            hits_before + 3);
  EXPECT_EQ(metrics.GetCounter("fault.test.metrics.fired").Value(),
            fired_before + 1);
  EXPECT_EQ(metrics.GetCounter("fault.fired").Value(), global_before + 1);
}

TEST_F(FaultTest, DisarmAllResetsEverything) {
  ASSERT_TRUE(FaultRegistry::Global().ArmFromString("test.point").ok());
  EXPECT_FALSE(CheckFaultPoint("test.point").ok());
  FaultRegistry::Global().DisarmAll();
  EXPECT_FALSE(FaultRegistry::Global().AnyArmed());
  EXPECT_TRUE(CheckFaultPoint("test.point").ok());
  EXPECT_EQ(FaultRegistry::Global().HitCount("test.point"), 0u);
}

// --- End-to-end fault matrix ------------------------------------------

/// Pipeline fixture: a scenario saved to disk once, reloaded and
/// estimated under each armed fault point.
class FaultMatrixTest : public FaultTest {
 protected:
  void SetUp() override {
    FaultTest::SetUp();
    directory_ = TestScratchPath("efes_fault_matrix");
    std::filesystem::remove_all(directory_);
    PaperExampleOptions options;
    options.album_count = 40;
    options.song_count = 50;
    auto scenario = MakePaperExample(options);
    ASSERT_TRUE(scenario.ok());
    ASSERT_TRUE(SaveScenario(*scenario, directory_).ok());
  }
  void TearDown() override {
    std::filesystem::remove_all(directory_);
    FaultTest::TearDown();
  }

  /// Loads + estimates, returning the engine status (a structured
  /// failure is fine; a crash or hang is what the matrix rules out).
  Result<EstimationResult> RunPipeline() {
    auto scenario = LoadScenario(directory_);
    if (!scenario.ok()) return scenario.status();
    EfesEngine engine = MakeDefaultEngine();
    return engine.Run(*scenario, ExpectedQuality::kHighQuality);
  }

  std::string directory_;
};

TEST_F(FaultMatrixTest, EveryIoAndLoadPointDegradesCleanly) {
  // I/O-layer points: each must surface as a clean non-OK status from
  // either the load or the run, never an exception or crash.
  const char* points[] = {"io.read", "csv.read", "scenario.load"};
  for (const char* point : points) {
    SCOPED_TRACE(point);
    FaultRegistry::Global().DisarmAll();
    ASSERT_TRUE(FaultRegistry::Global().ArmFromString(point).ok());
    auto result = RunPipeline();
    EXPECT_FALSE(result.ok());
    EXPECT_FALSE(result.status().message().empty());
  }
}

TEST_F(FaultMatrixTest, EnginePointsProduceDegradedPartialReport) {
  // Module-boundary points fire inside the engine, which contains them:
  // the run succeeds, marked degraded, with per-module failure status.
  for (const char* point : {"engine.assess", "engine.plan"}) {
    SCOPED_TRACE(point);
    FaultRegistry::Global().DisarmAll();
    ASSERT_TRUE(FaultRegistry::Global().ArmFromString(point).ok());
    auto result = RunPipeline();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result->degraded);
    size_t failed = 0;
    for (const ModuleRun& run : result->module_runs) {
      if (!run.ok()) ++failed;
    }
    EXPECT_GT(failed, 0u);
  }
}

TEST_F(FaultMatrixTest, ThrowingEnginePointIsContainedToo) {
  ASSERT_TRUE(
      FaultRegistry::Global().ArmFromString("engine.assess:throw").ok());
  auto result = RunPipeline();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->degraded);
  ASSERT_FALSE(result->module_runs.empty());
  bool saw_exception_status = false;
  for (const ModuleRun& run : result->module_runs) {
    if (!run.status.ok() &&
        run.status.message().find("exception") != std::string::npos) {
      saw_exception_status = true;
    }
  }
  EXPECT_TRUE(saw_exception_status);
}

TEST_F(FaultMatrixTest, WritePointsFailSavesCleanly) {
  auto scenario = LoadScenario(directory_);
  ASSERT_TRUE(scenario.ok());
  const std::string out = TestScratchPath("efes_fault_matrix_out");
  for (const char* point :
       {"io.write.open", "io.write.write", "io.write.commit"}) {
    SCOPED_TRACE(point);
    FaultRegistry::Global().DisarmAll();
    ASSERT_TRUE(FaultRegistry::Global().ArmFromString(point).ok());
    std::filesystem::remove_all(out);
    Status status = SaveScenario(*scenario, out);
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  }
  FaultRegistry::Global().DisarmAll();
  std::filesystem::remove_all(out);
}

TEST_F(FaultMatrixTest, ParallelTaskPointSurfacesLowestIndexError) {
  ASSERT_TRUE(FaultRegistry::Global().ArmFromString("parallel.task").ok());
  Status status = ParallelFor(8, [](size_t) { return Status::OK(); });
  EXPECT_FALSE(status.ok());
  FaultRegistry::Global().DisarmAll();
  // Throwing tasks are converted to Status by the pool, not propagated.
  ASSERT_TRUE(
      FaultRegistry::Global().ArmFromString("parallel.task:throw").ok());
  status = ParallelFor(8, [](size_t) { return Status::OK(); });
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("exception"), std::string::npos);
}

TEST_F(FaultMatrixTest, ExecutePointAbortsExecutionCleanly) {
  ASSERT_TRUE(FaultRegistry::Global().ArmFromString("execute.run").ok());
  auto scenario = LoadScenario(directory_);
  ASSERT_TRUE(scenario.ok());
  IntegrationExecutor executor;
  auto executed = executor.Execute(*scenario, nullptr);
  EXPECT_FALSE(executed.ok());
  EXPECT_EQ(executed.status().code(), StatusCode::kUnavailable);
}

TEST_F(FaultMatrixTest, DisabledFaultsLeaveOutputIdentical) {
  auto baseline = RunPipeline();
  ASSERT_TRUE(baseline.ok());
  // Arm, fire once against an unrelated point, disarm — then re-run.
  ASSERT_TRUE(FaultRegistry::Global().ArmFromString("test.point").ok());
  (void)CheckFaultPoint("test.point");
  FaultRegistry::Global().DisarmAll();
  auto rerun = RunPipeline();
  ASSERT_TRUE(rerun.ok());
  EXPECT_FALSE(baseline->degraded);
  EXPECT_FALSE(rerun->degraded);
  EXPECT_EQ(rerun->ToText(), baseline->ToText());
  EXPECT_DOUBLE_EQ(rerun->estimate.TotalMinutes(),
                   baseline->estimate.TotalMinutes());
}

}  // namespace
}  // namespace efes
