// Tests for the DDL-subset schema parser/writer.

#include "efes/relational/schema_text.h"

#include <gtest/gtest.h>

namespace efes {
namespace {

constexpr char kRecordsDdl[] = R"(
-- the Figure 2 target
CREATE TABLE records (
  id INTEGER PRIMARY KEY,
  title TEXT NOT NULL,
  artist TEXT NOT NULL,
  genre TEXT
);
CREATE TABLE tracks (
  record INTEGER NOT NULL REFERENCES records(id),
  title TEXT NOT NULL,
  duration TEXT
);
)";

TEST(SchemaTextTest, ParsesRelationsAndTypes) {
  auto schema = ParseSchemaText(kRecordsDdl, "target");
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  EXPECT_EQ(schema->relations().size(), 2u);
  auto records = schema->relation("records");
  ASSERT_TRUE(records.ok());
  EXPECT_EQ((*records)->attribute_count(), 4u);
  EXPECT_EQ((*(*records)->Attribute("id")).type, DataType::kInteger);
  EXPECT_EQ((*(*records)->Attribute("title")).type, DataType::kText);
}

TEST(SchemaTextTest, ParsesColumnConstraints) {
  auto schema = ParseSchemaText(kRecordsDdl, "target");
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->PrimaryKeyOf("records"),
            (std::vector<std::string>{"id"}));
  EXPECT_TRUE(schema->IsNotNullable("records", "title"));
  EXPECT_FALSE(schema->IsNotNullable("records", "genre"));
  EXPECT_TRUE(schema->IsNotNullable("tracks", "record"));
  bool fk_found = false;
  for (const Constraint& c : schema->constraints()) {
    if (c.kind == ConstraintKind::kForeignKey) {
      fk_found = true;
      EXPECT_EQ(c.relation, "tracks");
      EXPECT_EQ(c.referenced_relation, "records");
    }
  }
  EXPECT_TRUE(fk_found);
}

TEST(SchemaTextTest, ParsesTableLevelConstraints) {
  auto schema = ParseSchemaText(R"(
CREATE TABLE artist_credits (
  artist_list INTEGER,
  position INTEGER,
  artist TEXT NOT NULL,
  PRIMARY KEY (artist_list, position),
  UNIQUE (artist),
  FOREIGN KEY (artist_list) REFERENCES artist_lists(id)
);
CREATE TABLE artist_lists ( id INTEGER PRIMARY KEY );
)",
                                "source");
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  EXPECT_EQ(schema->PrimaryKeyOf("artist_credits"),
            (std::vector<std::string>{"artist_list", "position"}));
  EXPECT_TRUE(schema->IsUniqueAttribute("artist_credits", "artist"));
}

TEST(SchemaTextTest, TypeAliases) {
  auto schema = ParseSchemaText(R"(
CREATE TABLE t (
  a INT, b BIGINT, c FLOAT, d DOUBLE, e VARCHAR(255), f STRING,
  g BOOL, h NUMERIC
);
)",
                                "s");
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  auto t = *schema->relation("t");
  EXPECT_EQ(t->Attribute("a")->type, DataType::kInteger);
  EXPECT_EQ(t->Attribute("b")->type, DataType::kInteger);
  EXPECT_EQ(t->Attribute("c")->type, DataType::kReal);
  EXPECT_EQ(t->Attribute("d")->type, DataType::kReal);
  EXPECT_EQ(t->Attribute("e")->type, DataType::kText);
  EXPECT_EQ(t->Attribute("f")->type, DataType::kText);
  EXPECT_EQ(t->Attribute("g")->type, DataType::kBoolean);
  EXPECT_EQ(t->Attribute("h")->type, DataType::kReal);
}

TEST(SchemaTextTest, CaseInsensitiveKeywords) {
  auto schema = ParseSchemaText(
      "create table T ( x integer not null, primary key (x) );", "s");
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  EXPECT_TRUE(schema->IsNotNullable("T", "x"));
}

TEST(SchemaTextTest, ParseErrors) {
  EXPECT_FALSE(ParseSchemaText("CREATE INDEX foo;", "s").ok());
  EXPECT_FALSE(ParseSchemaText("CREATE TABLE t ( x WIBBLE );", "s").ok());
  EXPECT_FALSE(ParseSchemaText("CREATE TABLE t ( x INT", "s").ok());
  EXPECT_FALSE(ParseSchemaText("CREATE TABLE t ( x INT )", "s").ok());
  EXPECT_FALSE(ParseSchemaText("DROP TABLE t;", "s").ok());
  // Validation errors propagate (FK to a missing table).
  EXPECT_FALSE(
      ParseSchemaText("CREATE TABLE t ( x INT REFERENCES ghost(id) );", "s")
          .ok());
}

TEST(SchemaTextTest, RoundTrip) {
  auto original = ParseSchemaText(kRecordsDdl, "target");
  ASSERT_TRUE(original.ok());
  std::string rendered = WriteSchemaText(*original);
  auto reparsed = ParseSchemaText(rendered, "target");
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n"
                             << rendered;
  EXPECT_EQ(reparsed->relations().size(), original->relations().size());
  EXPECT_EQ(reparsed->constraints().size(), original->constraints().size());
  EXPECT_EQ(reparsed->PrimaryKeyOf("records"),
            original->PrimaryKeyOf("records"));
  EXPECT_TRUE(reparsed->IsNotNullable("tracks", "record"));
}

TEST(SchemaTextTest, EmptyInputIsEmptySchema) {
  auto schema = ParseSchemaText("  -- nothing here\n", "empty");
  ASSERT_TRUE(schema.ok());
  EXPECT_TRUE(schema->relations().empty());
}

}  // namespace
}  // namespace efes
