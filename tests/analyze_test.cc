// Tests for efes_analyze: every whole-program check gets a positive
// case (the violation is found), a negative case (idiomatic code stays
// clean), and a suppression case. Fixture sources live in raw strings
// so analyzing this file itself stays clean. The meta-test at the
// bottom runs the analyzer — with the checked-in registry manifests —
// over the real tree and is the executable form of the project rule
// "the tree ships analyze-clean".

#include "efes/analyze/analyze.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "efes/analyze/registry.h"
#include "efes/common/file_io.h"
#include "efes/lint/sarif.h"

namespace efes::analyze {
namespace {

using File = std::pair<std::string, std::string>;
using lint::Finding;

std::vector<Finding> Analyze(const std::vector<File>& files) {
  Analyzer analyzer;
  return analyzer.RunFiles(files);
}

/// Unsuppressed findings of one check id.
std::vector<Finding> FindingsOf(const std::vector<Finding>& all,
                                const std::string& check) {
  std::vector<Finding> out;
  for (const Finding& f : all) {
    if (f.check == check && !f.suppressed) out.push_back(f);
  }
  return out;
}

// ------------------------------------------------------- lock-discipline

// A guarded member, one locked accessor, one unlocked accessor. The
// annotation lives in the header and the violation in the .cc — the
// check only works across the merged index.
constexpr char kGuardedHeader[] = R"(
#pragma once
class Counter {
 public:
  void Add(int n);
  int Total() const;
 private:
  mutable std::mutex mutex_;
  int total_ EFES_GUARDED_BY(mutex_) = 0;
};
)";

TEST(LockDisciplineTest, FlagsUnlockedAccessAcrossFiles) {
  auto findings =
      Analyze({{"src/efes/x/counter.h", kGuardedHeader},
               {"src/efes/x/counter.cc",
                "void Counter::Add(int n) {\n"
                "  std::lock_guard<std::mutex> lock(mutex_);\n"
                "  total_ += n;\n"
                "}\n"
                "int Counter::Total() const {\n"
                "  return total_;\n"
                "}\n"}});
  auto hits = FindingsOf(findings, "lock-discipline");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].file, "src/efes/x/counter.cc");
  EXPECT_EQ(hits[0].line, 6);
  EXPECT_NE(hits[0].message.find("Counter::total_"), std::string::npos);
}

TEST(LockDisciplineTest, LockedAccessesAreClean) {
  auto findings =
      Analyze({{"src/efes/x/counter.h", kGuardedHeader},
               {"src/efes/x/counter.cc",
                "void Counter::Add(int n) {\n"
                "  std::lock_guard<std::mutex> lock(mutex_);\n"
                "  total_ += n;\n"
                "}\n"
                "int Counter::Total() const {\n"
                "  std::unique_lock<std::mutex> lock(mutex_);\n"
                "  return total_;\n"
                "}\n"}});
  EXPECT_TRUE(FindingsOf(findings, "lock-discipline").empty());
}

TEST(LockDisciplineTest, ConstructorsAndLockedHelpersAreExempt) {
  auto findings =
      Analyze({{"src/efes/x/counter.h", kGuardedHeader},
               {"src/efes/x/counter.cc",
                "Counter::Counter() {\n"
                "  total_ = 0;\n"
                "}\n"
                "void Counter::AddLocked(int n) {\n"
                "  total_ += n;\n"
                "}\n"
                "void Counter::Add(int n) {\n"
                "  std::lock_guard<std::mutex> lock(mutex_);\n"
                "  total_ += n;\n"
                "}\n"}});
  EXPECT_TRUE(FindingsOf(findings, "lock-discipline").empty());
}

TEST(LockDisciplineTest, ManualUnlockSuspendsTheRegion) {
  auto findings =
      Analyze({{"src/efes/x/counter.h", kGuardedHeader},
               {"src/efes/x/counter.cc",
                "void Counter::Add(int n) {\n"
                "  std::unique_lock<std::mutex> lock(mutex_);\n"
                "  total_ += n;\n"
                "  lock.unlock();\n"
                "  total_ += n;\n"
                "}\n"}});
  auto hits = FindingsOf(findings, "lock-discipline");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 5);
}

TEST(LockDisciplineTest, DeletedAnnotationIsInferredBack) {
  // Same class without the annotation: every access still happens under
  // mutex_, so the analyzer demands the annotation be restored.
  auto findings =
      Analyze({{"src/efes/x/counter.h",
                "#pragma once\n"
                "class Counter {\n"
                " public:\n"
                "  void Add(int n);\n"
                "  int Total() const;\n"
                " private:\n"
                "  mutable std::mutex mutex_;\n"
                "  int total_ = 0;\n"
                "};\n"},
               {"src/efes/x/counter.cc",
                "void Counter::Add(int n) {\n"
                "  std::lock_guard<std::mutex> lock(mutex_);\n"
                "  total_ += n;\n"
                "}\n"
                "int Counter::Total() const {\n"
                "  std::lock_guard<std::mutex> lock(mutex_);\n"
                "  return total_;\n"
                "}\n"}});
  auto hits = FindingsOf(findings, "lock-discipline");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].message.find("not annotated"), std::string::npos);
}

TEST(LockDisciplineTest, MixedLockedAndUnlockedMemberIsNotInferred) {
  // An unannotated member read outside any lock somewhere is not
  // "consistently locked" — no inference finding (that pattern needs a
  // human, not a lint rule).
  auto findings =
      Analyze({{"src/efes/x/counter.cc",
                "void Counter::Add(int n) {\n"
                "  std::lock_guard<std::mutex> lock(mutex_);\n"
                "  total_ += n;\n"
                "}\n"
                "int Counter::Total() const {\n"
                "  return total_;\n"
                "}\n"}});
  EXPECT_TRUE(FindingsOf(findings, "lock-discipline").empty());
}

TEST(LockDisciplineTest, SuppressionWithReasonSilences) {
  auto findings =
      Analyze({{"src/efes/x/counter.h", kGuardedHeader},
               {"src/efes/x/counter.cc",
                "int Counter::Total() const {\n"
                "  // EFES_ANALYZE_ALLOW(lock-discipline): racy read is "
                "a documented estimate\n"
                "  return total_;\n"
                "}\n"}});
  EXPECT_TRUE(FindingsOf(findings, "lock-discipline").empty());
  // Still reported, as suppressed.
  bool saw_suppressed = false;
  for (const Finding& f : findings) {
    if (f.check == "lock-discipline") {
      EXPECT_TRUE(f.suppressed);
      saw_suppressed = true;
    }
  }
  EXPECT_TRUE(saw_suppressed);
}

// ---------------------------------------------------------- cancellation

TEST(CancellationTest, FlagsRootThatNeverReachesCheckpoint) {
  auto findings = Analyze(
      {{"src/efes/mapping/m.cc",
        "Result<int> MappingModule::AssessComplexity(const Scenario& s) "
        "const {\n"
        "  return Walk(s);\n"
        "}\n"
        "Result<int> Walk(const Scenario& s) {\n"
        "  return 1;\n"
        "}\n"}});
  auto hits = FindingsOf(findings, "cancellation");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 1);
  EXPECT_NE(hits[0].message.find("AssessComplexity"), std::string::npos);
}

TEST(CancellationTest, CheckpointThroughCalleeIsClean) {
  // The root reaches CheckCancellation two hops away, across files.
  auto findings = Analyze(
      {{"src/efes/mapping/m.cc",
        "Result<int> MappingModule::AssessComplexity(const Scenario& s) "
        "const {\n"
        "  return Walk(s);\n"
        "}\n"},
       {"src/efes/mapping/walk.cc",
        "Result<int> Walk(const Scenario& s) {\n"
        "  EFES_RETURN_IF_ERROR(CheckCancellation());\n"
        "  return 1;\n"
        "}\n"}});
  EXPECT_TRUE(FindingsOf(findings, "cancellation").empty());
}

TEST(CancellationTest, ParallelFanOutIsARoot) {
  auto findings = Analyze(
      {{"src/efes/core/fan.cc",
        "Status FanOut(std::vector<int>& items) {\n"
        "  return ParallelFor(items, [](int i) { return Use(i); });\n"
        "}\n"}});
  auto hits = FindingsOf(findings, "cancellation");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].message.find("FanOut"), std::string::npos);
}

TEST(CancellationTest, RootsOutsideCheckpointDirsAreClean) {
  // Run() in a directory outside the checkpoint set is not a root.
  auto findings = Analyze(
      {{"src/efes/matching/m.cc",
        "Status Matcher::Run() {\n"
        "  return Status::Ok();\n"
        "}\n"}});
  EXPECT_TRUE(FindingsOf(findings, "cancellation").empty());
}

TEST(CancellationTest, SuppressionWithReasonSilences) {
  auto findings = Analyze(
      {{"src/efes/mapping/m.cc",
        "// EFES_ANALYZE_ALLOW(cancellation): trivially O(1) body\n"
        "Result<int> MappingModule::AssessComplexity(const Scenario& s) "
        "const {\n"
        "  return 1;\n"
        "}\n"}});
  EXPECT_TRUE(FindingsOf(findings, "cancellation").empty());
}

// -------------------------------------------------------------- layering

TEST(LayeringTest, FlagsBackEdge) {
  auto findings = Analyze(
      {{"src/efes/common/helper.h",
        "#pragma once\n"
        "#include \"efes/serve/server.h\"\n"},
       {"src/efes/serve/server.h", "#pragma once\n"}});
  auto hits = FindingsOf(findings, "layering");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].file, "src/efes/common/helper.h");
  EXPECT_EQ(hits[0].line, 2);
}

TEST(LayeringTest, DownwardAndSameRankEdgesAreClean) {
  auto findings = Analyze(
      {{"src/efes/serve/server.h",
        "#pragma once\n"
        "#include \"efes/common/status.h\"\n"},
       {"src/efes/cache/cache.h",
        "#pragma once\n"
        "#include \"efes/profiling/stats.h\"\n"},
       {"src/efes/common/status.h", "#pragma once\n"},
       {"src/efes/profiling/stats.h", "#pragma once\n"}});
  EXPECT_TRUE(FindingsOf(findings, "layering").empty());
}

TEST(LayeringTest, FlagsIncludeCycle) {
  auto findings = Analyze(
      {{"src/efes/core/a.h",
        "#pragma once\n#include \"efes/core/b.h\"\n"},
       {"src/efes/core/b.h",
        "#pragma once\n#include \"efes/core/a.h\"\n"}});
  auto hits = FindingsOf(findings, "layering");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].message.find("cycle"), std::string::npos);
}

TEST(LayeringTest, FlagsDirectoryMissingFromDeclaredOrder) {
  auto findings =
      Analyze({{"src/efes/mystery/new_thing.h", "#pragma once\n"}});
  auto hits = FindingsOf(findings, "layering");
  ASSERT_EQ(hits.size(), 1u);
}

TEST(LayeringTest, ToolsAndTestsMayIncludeAnything) {
  auto findings = Analyze(
      {{"tools/efes_cli.cc", "#include \"efes/serve/server.h\"\n"},
       {"src/efes/serve/server.h", "#pragma once\n"}});
  EXPECT_TRUE(FindingsOf(findings, "layering").empty());
}

// -------------------------------------------------------------- registry

RegistryManifests TestManifests() {
  RegistryManifests m;
  m.metrics_path = "docs/registry/metrics.md";
  m.faults_path = "docs/registry/faults.md";
  m.flags_path = "docs/registry/flags.md";
  m.metrics = {{"core.run.tuples", 1}};
  m.faults = {{"io.read", 1}};
  m.flags = {{"threads", 1}};
  return m;
}

TEST(RegistryTest, UnlistedCallSiteIsAFinding) {
  Analyzer analyzer;
  // Uses every registered name (so nothing is stale) plus one unknown.
  analyzer.AddFile("src/efes/core/x.cc",
                   "Status F(MetricsRegistry& m, FlagSet& flags) {\n"
                   "  m.GetCounter(\"core.run.unknown\").Increment(1);\n"
                   "  m.GetCounter(\"core.run.tuples\").Increment(1);\n"
                   "  EFES_RETURN_IF_ERROR(CheckFaultPoint(\"io.read\"));\n"
                   "  flags.AddUint(\"threads\", \"N\", \"workers\", &n);\n"
                   "  return Status::Ok();\n"
                   "}\n");
  analyzer.SetRegistry(TestManifests());
  auto hits = FindingsOf(analyzer.Run(), "registry");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 2);
  EXPECT_NE(hits[0].message.find("core.run.unknown"), std::string::npos);
}

TEST(RegistryTest, StaleManifestEntryIsAFinding) {
  Analyzer analyzer;
  analyzer.AddFile("src/efes/core/x.cc",
                   "void F(MetricsRegistry& m) {\n"
                   "  m.GetCounter(\"core.run.tuples\").Increment(1);\n"
                   "}\n");
  RegistryManifests manifests = TestManifests();
  manifests.metrics.push_back({"core.run.ghost", 7});
  analyzer.SetRegistry(std::move(manifests));
  auto hits = FindingsOf(analyzer.Run(), "registry");
  ASSERT_EQ(hits.size(), 3u);  // ghost metric + unused fault + flag
  EXPECT_EQ(hits[0].file, "docs/registry/faults.md");
  EXPECT_EQ(hits[1].file, "docs/registry/flags.md");
  EXPECT_EQ(hits[2].file, "docs/registry/metrics.md");
  EXPECT_EQ(hits[2].line, 7);
}

TEST(RegistryTest, ListedNamesInAllThreeKindsAreClean) {
  Analyzer analyzer;
  analyzer.AddFile("src/efes/core/x.cc",
                   "Status F(MetricsRegistry& m, FlagSet& flags) {\n"
                   "  m.GetCounter(\"core.run.tuples\").Increment(1);\n"
                   "  EFES_RETURN_IF_ERROR(CheckFaultPoint(\"io.read\"));\n"
                   "  flags.AddUint(\"threads\", \"N\", \"workers\", &n);\n"
                   "  return Status::Ok();\n"
                   "}\n");
  analyzer.SetRegistry(TestManifests());
  EXPECT_TRUE(FindingsOf(analyzer.Run(), "registry").empty());
}

TEST(RegistryTest, ConcatenatedNamesAreSkipped) {
  // Runtime-built families never match the complete-dotted-literal rule
  // and are documented as (dynamic) manifest lines instead.
  Analyzer analyzer;
  analyzer.AddFile("src/efes/core/x.cc",
                   "void F(MetricsRegistry& m, std::string p) {\n"
                   "  m.GetCounter(\"fault.\" + p + \".hits\")"
                   ".Increment(1);\n"
                   "}\n");
  // Empty manifests: the concatenation fragments must not register as
  // unlisted call sites.
  analyzer.SetRegistry(RegistryManifests());
  EXPECT_TRUE(FindingsOf(analyzer.Run(), "registry").empty());
}

TEST(RegistryTest, WithoutManifestsTheCheckIsSkipped) {
  auto findings =
      Analyze({{"src/efes/core/x.cc",
                "void F(MetricsRegistry& m) {\n"
                "  m.GetCounter(\"core.run.unknown\").Increment(1);\n"
                "}\n"}});
  EXPECT_TRUE(FindingsOf(findings, "registry").empty());
}

// -------------------------------------------------------- manifest parser

TEST(ManifestParserTest, ParsesBacktickedListLines) {
  auto entries = ParseManifest(
      "# Registry\n"
      "\n"
      "Prose about `inline.code` is not an entry.\n"
      "- `core.run.tuples` — tuples integrated\n"
      "  - `serve.request.ms` — indented is fine\n"
      "- `fault.<point>.hits` (dynamic) — excluded family\n"
      "- not backticked\n");
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].name, "core.run.tuples");
  EXPECT_EQ(entries[0].line, 4);
  EXPECT_EQ(entries[1].name, "serve.request.ms");
  EXPECT_EQ(entries[1].line, 5);
}

TEST(ManifestParserTest, MissingManifestFileIsAnError) {
  auto result = LoadRegistryDir("does/not/exist");
  EXPECT_FALSE(result.ok());
}

// ------------------------------------------------------- bad-suppression

TEST(BadSuppressionTest, MissingReasonIsAFinding) {
  auto findings =
      Analyze({{"src/efes/x/counter.h", kGuardedHeader},
               {"src/efes/x/counter.cc",
                "int Counter::Total() const {\n"
                "  // EFES_ANALYZE_ALLOW(lock-discipline)\n"
                "  return total_;\n"
                "}\n"}});
  // The reasonless suppression does not silence, and is itself flagged.
  EXPECT_EQ(FindingsOf(findings, "lock-discipline").size(), 1u);
  EXPECT_EQ(FindingsOf(findings, "bad-suppression").size(), 1u);
}

TEST(BadSuppressionTest, UnknownCheckIsAFinding) {
  auto findings = Analyze(
      {{"src/efes/core/x.cc",
        "// EFES_ANALYZE_ALLOW(made-up-check): whatever\nvoid F();\n"}});
  EXPECT_EQ(FindingsOf(findings, "bad-suppression").size(), 1u);
}

// ------------------------------------------------------------- rendering

TEST(RenderTest, TextCarriesFindingsAndSummary) {
  auto findings =
      Analyze({{"src/efes/common/h.h",
                "#pragma once\n#include \"efes/serve/s.h\"\n"},
               {"src/efes/serve/s.h", "#pragma once\n"}});
  ASSERT_EQ(findings.size(), 1u);
  std::string text = analyze::RenderText(findings);
  EXPECT_NE(text.find("src/efes/common/h.h:2:"), std::string::npos);
  EXPECT_NE(text.find("[layering]"), std::string::npos);
  EXPECT_NE(text.find("efes_analyze: 1 unsuppressed"), std::string::npos);
}

TEST(RenderTest, CheckCatalogIsStable) {
  const auto& ids = AllCheckIds();
  EXPECT_EQ(ids.size(), 5u);
  for (const char* id : {"lock-discipline", "cancellation", "layering",
                         "registry", "bad-suppression"}) {
    EXPECT_NE(std::find(ids.begin(), ids.end(), id), ids.end()) << id;
  }
}

TEST(SarifTest, RendersValidMinimalDocument) {
  auto findings =
      Analyze({{"src/efes/common/h.h",
                "#pragma once\n#include \"efes/serve/s.h\"\n"},
               {"src/efes/serve/s.h", "#pragma once\n"}});
  ASSERT_EQ(findings.size(), 1u);
  std::string sarif = lint::RenderSarif("efes_analyze", findings);
  EXPECT_NE(sarif.find("\"version\":\"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\":\"efes_analyze\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\":\"layering\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\":2"), std::string::npos);
  EXPECT_EQ(sarif.find("\"suppressions\""), std::string::npos);
}

TEST(SarifTest, SuppressedFindingsAreMarkedInSource) {
  std::vector<Finding> findings = {
      {"a.cc", 3, "layering", "msg", true}};
  std::string sarif = lint::RenderSarif("efes_analyze", findings);
  EXPECT_NE(sarif.find("\"level\":\"note\""), std::string::npos);
  EXPECT_NE(sarif.find("\"kind\":\"inSource\""), std::string::npos);
}

// -------------------------------------------------------------- meta-test

#ifdef EFES_SOURCE_DIR
TEST(AnalyzeTreeMetaTest, RealTreeIsAnalyzeClean) {
  namespace fs = std::filesystem;
  const fs::path root(EFES_SOURCE_DIR);
  Analyzer analyzer;
  size_t file_count = 0;
  // Same scope as the analyze_tree ctest: the shipped tree, not tests
  // or bench (their fakes are not estimation roots and their literals
  // do not belong in the registry).
  for (const char* dir : {"src", "tools"}) {
    for (const auto& entry :
         fs::recursive_directory_iterator(root / dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".hh" && ext != ".hpp" && ext != ".cc" &&
          ext != ".cpp") {
        continue;
      }
      auto content = ReadFileToString(entry.path().string());
      ASSERT_TRUE(content.ok()) << entry.path();
      analyzer.AddFile(entry.path().generic_string(), content.value());
      ++file_count;
    }
  }
  ASSERT_GT(file_count, 100u);  // sanity: the walk found the tree
  auto manifests =
      LoadRegistryDir((root / "docs" / "registry").string());
  ASSERT_TRUE(manifests.ok()) << manifests.status().ToString();
  analyzer.SetRegistry(std::move(manifests).value());
  std::vector<Finding> bad;
  for (const Finding& f : analyzer.Run()) {
    if (!f.suppressed) bad.push_back(f);
  }
  EXPECT_TRUE(bad.empty()) << analyze::RenderText(bad);
}
#endif  // EFES_SOURCE_DIR

}  // namespace
}  // namespace efes::analyze
