// Tests for common/deadline.h: CancelToken semantics (latching, deadline
// expiry against a FakeClock, bounded waiting), the ambient
// ScopedCancelToken, the CheckCancellation checkpoint (including its
// serve.cancel fault hook), and the abort-not-tear contract of
// cancellation through ParallelFor and the engine.

#include "efes/common/deadline.h"

#include <gtest/gtest.h>

#include <thread>

#include "efes/common/fault.h"
#include "efes/common/parallel.h"
#include "efes/experiment/default_pipeline.h"
#include "efes/scenario/paper_example.h"
#include "efes/common/clock.h"

namespace efes {
namespace {

class DeadlineTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultRegistry::Global().DisarmAll(); }
};

TEST_F(DeadlineTest, FreshTokenIsLive) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(token.has_deadline());
  EXPECT_TRUE(token.Check().ok());
  EXPECT_TRUE(token.status().ok());
}

TEST_F(DeadlineTest, FirstCancelWinsAndLatches) {
  CancelToken token;
  token.Cancel(Status::Cancelled("first"));
  token.Cancel(Status::DeadlineExceeded("second"));
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.Check().code(), StatusCode::kCancelled);
  EXPECT_EQ(token.status().message(), "first");
}

TEST_F(DeadlineTest, DeadlineTripsAgainstTheClock) {
  FakeClock clock;
  CancelToken token;
  token.SetDeadline(50, &clock);
  EXPECT_TRUE(token.has_deadline());
  EXPECT_TRUE(token.Check().ok());
  clock.AdvanceMillis(49);
  EXPECT_TRUE(token.Check().ok());
  clock.AdvanceMillis(1);
  EXPECT_EQ(token.Check().code(), StatusCode::kDeadlineExceeded);
  // Expiry latched: the token stays cancelled even if time went backwards.
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(DeadlineTest, ZeroDeadlineIsAlreadyExpired) {
  FakeClock clock;
  CancelToken token;
  token.SetDeadline(0, &clock);
  EXPECT_EQ(token.Check().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(DeadlineTest, WaitCancelledReturnsOnCancelAndOnTimeout) {
  CancelToken token;
  // Not cancelled, bounded wait: returns false quickly.
  EXPECT_FALSE(token.WaitCancelled(/*max_wait_ms=*/10));
  // A concurrent cancel wakes the waiter.
  std::thread canceller([&token] { token.Cancel(Status::Cancelled("bye")); });
  EXPECT_TRUE(token.WaitCancelled(/*max_wait_ms=*/10000));
  canceller.join();
}

TEST_F(DeadlineTest, ScopedTokenInstallsAndRestores) {
  EXPECT_EQ(ActiveCancelToken(), nullptr);
  CancelToken outer_token;
  {
    ScopedCancelToken outer(&outer_token);
    EXPECT_EQ(ActiveCancelToken(), &outer_token);
    CancelToken inner_token;
    {
      ScopedCancelToken inner(&inner_token);
      EXPECT_EQ(ActiveCancelToken(), &inner_token);
    }
    EXPECT_EQ(ActiveCancelToken(), &outer_token);
  }
  EXPECT_EQ(ActiveCancelToken(), nullptr);
}

TEST_F(DeadlineTest, CheckpointIsFreeWithoutTokenOrFault) {
  EXPECT_TRUE(CheckCancellation().ok());
}

TEST_F(DeadlineTest, CheckpointSeesTheActiveToken) {
  CancelToken token;
  ScopedCancelToken scoped(&token);
  EXPECT_TRUE(CheckCancellation().ok());
  token.Cancel(Status::Cancelled("stop"));
  EXPECT_EQ(CheckCancellation().code(), StatusCode::kCancelled);
}

TEST_F(DeadlineTest, ServeCancelFaultFiresAsCancellationAndLatches) {
  ASSERT_TRUE(
      FaultRegistry::Global().ArmFromString("serve.cancel:once").ok());
  CancelToken token;
  ScopedCancelToken scoped(&token);
  EXPECT_EQ(CheckCancellation().code(), StatusCode::kCancelled);
  // Latched into the token: later checkpoints stay tripped even though
  // the fault was once-only.
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(CheckCancellation().code(), StatusCode::kCancelled);
}

TEST_F(DeadlineTest, ParallelForAbortsAtEntryWhenCancelled) {
  FakeClock clock;
  CancelToken token;
  token.SetDeadline(0, &clock);
  ScopedCancelToken scoped(&token);
  bool ran = false;
  Status status = ParallelFor(8, [&ran](size_t) {
    ran = true;
    return Status::OK();
  });
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(ran);
}

TEST_F(DeadlineTest, EngineRunAbortsWholeNotTorn) {
  auto scenario = MakePaperExample();
  ASSERT_TRUE(scenario.ok());
  FakeClock clock;
  CancelToken token;
  token.SetDeadline(0, &clock);
  ScopedCancelToken scoped(&token);
  EfesEngine engine = MakeDefaultEngine();
  auto result = engine.Run(*scenario);
  // Cancellation is an abort, not a degraded partial report.
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(DeadlineTest, EngineRunWithLiveTokenMatchesUntokenedRun) {
  auto scenario = MakePaperExample();
  ASSERT_TRUE(scenario.ok());
  EfesEngine engine = MakeDefaultEngine();
  auto baseline = engine.Run(*scenario);
  ASSERT_TRUE(baseline.ok());
  CancelToken token;
  token.SetDeadline(1000000);  // far future, real clock
  ScopedCancelToken scoped(&token);
  auto bounded = engine.Run(*scenario);
  ASSERT_TRUE(bounded.ok());
  EXPECT_EQ(bounded->estimate.ToText(), baseline->estimate.ToText());
  EXPECT_EQ(bounded->degraded, baseline->degraded);
}

}  // namespace
}  // namespace efes
