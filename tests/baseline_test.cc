// Tests for the attribute-counting baseline (Harden [14], Table 1).

#include "efes/baseline/counting_estimator.h"

#include <gtest/gtest.h>

namespace efes {
namespace {

TEST(HardenWeightsTest, Table1SumsToEightPointZeroFiveHours) {
  double hours = 0.0;
  for (const HardenTaskWeight& weight : HardenTaskWeights()) {
    hours += weight.hours_per_attribute;
  }
  EXPECT_NEAR(hours, 8.05, 1e-9);
  EXPECT_NEAR(HardenMinutesPerAttribute(), 483.0, 1e-9);
  EXPECT_EQ(HardenTaskWeights().size(), 13u);
}

TEST(HardenWeightsTest, Table1RowValues) {
  const auto& weights = HardenTaskWeights();
  EXPECT_EQ(weights[0].task, "Requirements and Mapping");
  EXPECT_DOUBLE_EQ(weights[0].hours_per_attribute, 2.0);
  EXPECT_EQ(weights[12].task, "Data Steward Support");
  EXPECT_DOUBLE_EQ(weights[12].hours_per_attribute, 0.5);
}

TEST(CountingEstimatorTest, DefaultsToHardenRate) {
  CountingEstimator estimator;
  EXPECT_NEAR(estimator.minutes_per_attribute(), 483.0, 1e-9);
  auto estimate = estimator.EstimateFromAttributeCount(10);
  EXPECT_NEAR(estimate.total_minutes, 4830.0, 1e-9);
  EXPECT_EQ(estimate.source_attributes, 10u);
}

TEST(CountingEstimatorTest, SplitsMappingAndCleaning) {
  CountingEstimator estimator(100.0);
  auto estimate = estimator.EstimateFromAttributeCount(1);
  EXPECT_NEAR(estimate.total_minutes, 100.0, 1e-9);
  EXPECT_NEAR(estimate.mapping_minutes + estimate.cleaning_minutes, 100.0,
              1e-9);
  // Mapping share of Table 1: (2.0 + 0.1 + 0.5 + 1.0) / 8.05.
  EXPECT_NEAR(estimate.mapping_minutes, 100.0 * 3.6 / 8.05, 1e-9);
}

TEST(CountingEstimatorTest, CalibratableRate) {
  CountingEstimator estimator;
  estimator.set_minutes_per_attribute(5.0);
  EXPECT_NEAR(estimator.EstimateFromAttributeCount(8).total_minutes, 40.0,
              1e-9);
}

TEST(CountingEstimatorTest, UsesScenarioSourceAttributes) {
  Schema target_schema("t");
  (void)target_schema.AddRelation(RelationDef("t", {{"a", DataType::kText}}));
  Schema source_schema("s");
  (void)source_schema.AddRelation(RelationDef(
      "s1", {{"a", DataType::kText}, {"b", DataType::kText}}));
  (void)source_schema.AddRelation(RelationDef("s2", {{"c", DataType::kText}}));
  IntegrationScenario scenario(
      "x", std::move(*Database::Create(std::move(target_schema))));
  scenario.AddSource(std::move(*Database::Create(std::move(source_schema))),
                     CorrespondenceSet());
  CountingEstimator estimator(10.0);
  auto estimate = estimator.EstimateEffort(scenario);
  EXPECT_EQ(estimate.source_attributes, 3u);
  EXPECT_NEAR(estimate.total_minutes, 30.0, 1e-9);
}

TEST(CountingEstimatorTest, ZeroAttributesZeroEffort) {
  CountingEstimator estimator;
  auto estimate = estimator.EstimateFromAttributeCount(0);
  EXPECT_DOUBLE_EQ(estimate.total_minutes, 0.0);
}

}  // namespace
}  // namespace efes
