// Tests for the problem heatmap (data visualization support) and
// progress monitoring.

#include "efes/experiment/visualization.h"

#include <gtest/gtest.h>
#include <memory>

#include "efes/experiment/default_pipeline.h"
#include "efes/experiment/progress.h"
#include "efes/scenario/paper_example.h"

namespace efes {
namespace {

class VisualizationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto scenario = MakePaperExample();
    ASSERT_TRUE(scenario.ok());
    scenario_ = std::make_unique<IntegrationScenario>(std::move(*scenario));
    EfesEngine engine = MakeDefaultEngine();
    auto result =
        engine.Run(*scenario_, ExpectedQuality::kHighQuality);
    ASSERT_TRUE(result.ok());
    result_ = std::make_unique<EstimationResult>(std::move(*result));
  }
  static void TearDownTestSuite() {
    result_.reset();
    scenario_.reset();
  }
  static std::unique_ptr<IntegrationScenario> scenario_;
  static std::unique_ptr<EstimationResult> result_;
};

std::unique_ptr<IntegrationScenario> VisualizationTest::scenario_;
std::unique_ptr<EstimationResult> VisualizationTest::result_;

TEST_F(VisualizationTest, CollectsProblemCountsPerElement) {
  ProblemCounts problems = CollectProblemCounts(*result_);
  // The 503 multi-artist + 102 detached-artist violations anchor at
  // records.artist.
  EXPECT_EQ(problems["records.artist"], 605u);
  // The value heterogeneity anchors at tracks.duration.
  EXPECT_GE(problems["tracks.duration"], 1u);
  // Mapping connections touch both target relations.
  EXPECT_EQ(problems["records"], 1u);
  EXPECT_EQ(problems["tracks"], 1u);
}

TEST_F(VisualizationTest, DotContainsSchemaAndHighlights) {
  ProblemCounts problems = CollectProblemCounts(*result_);
  std::string dot = RenderProblemHeatmapDot(*scenario_, problems);
  EXPECT_NE(dot.find("digraph efes_problems"), std::string::npos);
  // All target relations and attributes appear.
  for (const char* token : {"records", "tracks", "artist", "duration"}) {
    EXPECT_NE(dot.find(token), std::string::npos) << token;
  }
  // The hottest element carries its count and a heat color.
  EXPECT_NE(dot.find("artist (605)"), std::string::npos);
  EXPECT_NE(dot.find("0.000 0.6 1.0"), std::string::npos);  // pure red
  // FK edge rendered dashed.
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
}

TEST_F(VisualizationTest, NoProblemsRendersWhiteSchema) {
  std::string dot = RenderProblemHeatmapDot(*scenario_, {});
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_EQ(dot.find("(605)"), std::string::npos);
}

// --- Progress ----------------------------------------------------------------

TEST(ProgressTest, EmptyEstimateIsDone) {
  ProgressReport report = TrackProgress(EffortEstimate{}, {});
  EXPECT_DOUBLE_EQ(report.Fraction(), 1.0);
  EXPECT_DOUBLE_EQ(report.remaining_minutes, 0.0);
}

TEST(ProgressTest, TracksCompletionByIndex) {
  EffortEstimate estimate;
  auto add = [&](TaskCategory category, double minutes) {
    Task task;
    task.category = category;
    estimate.tasks.push_back(TaskEstimate{std::move(task), minutes});
  };
  add(TaskCategory::kMapping, 25);
  add(TaskCategory::kCleaningStructure, 100);
  add(TaskCategory::kCleaningValues, 75);

  ProgressReport report = TrackProgress(estimate, {0});
  EXPECT_EQ(report.completed_tasks, 1u);
  EXPECT_DOUBLE_EQ(report.completed_minutes, 25.0);
  EXPECT_DOUBLE_EQ(report.remaining_minutes, 175.0);
  EXPECT_DOUBLE_EQ(report.remaining_mapping, 0.0);
  EXPECT_DOUBLE_EQ(report.remaining_structure, 100.0);
  EXPECT_DOUBLE_EQ(report.remaining_values, 75.0);
  EXPECT_NEAR(report.Fraction(), 0.125, 1e-12);
  EXPECT_NE(report.ToString().find("1/3 tasks done"), std::string::npos);
}

TEST(ProgressTest, OutOfRangeIndicesIgnored) {
  EffortEstimate estimate;
  Task task;
  task.category = TaskCategory::kMapping;
  estimate.tasks.push_back(TaskEstimate{std::move(task), 10});
  ProgressReport report = TrackProgress(estimate, {0, 5, 99});
  EXPECT_EQ(report.completed_tasks, 1u);
  EXPECT_DOUBLE_EQ(report.remaining_minutes, 0.0);
  EXPECT_DOUBLE_EQ(report.Fraction(), 1.0);
}

}  // namespace
}  // namespace efes
