// Tests for the detector extensions: composite-key (n-ary) conflicts via
// Lemma 3 and cross-source/pre-existing-data conflicts via Lemma 2.

#include <gtest/gtest.h>

#include "efes/structure/repair_planner.h"
#include "efes/structure/structure_module.h"

namespace efes {
namespace {

/// Target: events(day, room) with a composite PK; source: bookings with
/// the same attributes but no key — and duplicated (day, room) pairs.
IntegrationScenario MakeCompositeScenario(size_t duplicate_pairs) {
  Schema target_schema("t");
  (void)target_schema.AddRelation(RelationDef(
      "events", {{"day", DataType::kInteger},
                 {"room", DataType::kText},
                 {"note", DataType::kText}}));
  target_schema.AddConstraint(
      Constraint::PrimaryKey("events", {"day", "room"}));

  Schema source_schema("s");
  (void)source_schema.AddRelation(RelationDef(
      "bookings", {{"day", DataType::kInteger},
                   {"room", DataType::kText},
                   {"note", DataType::kText}}));
  auto source = Database::Create(std::move(source_schema));
  Table* bookings = *source->mutable_table("bookings");
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_TRUE(bookings
                    ->AppendRow({Value::Integer(static_cast<int64_t>(i)),
                                 Value::Text("r" + std::to_string(i % 7)),
                                 Value::Text("n")})
                    .ok());
  }
  // Duplicated (day, room) combinations.
  for (size_t i = 0; i < duplicate_pairs; ++i) {
    EXPECT_TRUE(bookings
                    ->AppendRow({Value::Integer(static_cast<int64_t>(i)),
                                 Value::Text("r" + std::to_string(i % 7)),
                                 Value::Text("dup")})
                    .ok());
  }

  CorrespondenceSet correspondences;
  correspondences.AddRelation("bookings", "events");
  correspondences.AddAttribute("bookings", "day", "events", "day");
  correspondences.AddAttribute("bookings", "room", "events", "room");
  correspondences.AddAttribute("bookings", "note", "events", "note");

  IntegrationScenario scenario(
      "composite", std::move(*Database::Create(std::move(target_schema))));
  scenario.AddSource(std::move(*source), std::move(correspondences));
  return scenario;
}

TEST(CompositeKeyTest, DetectsDuplicateKeyCombinations) {
  IntegrationScenario scenario = MakeCompositeScenario(3);
  CsgGraph graph;
  auto assessments = DetectStructureConflicts(scenario, &graph);
  ASSERT_TRUE(assessments.ok());
  bool found = false;
  for (const StructureConflict& conflict : (*assessments)[0].conflicts) {
    if (conflict.kind == StructuralConflictKind::kUniqueViolated) {
      found = true;
      // 3 duplicated pairs -> 6 rows in duplicated groups.
      EXPECT_EQ(conflict.violation_count, 6u);
      EXPECT_TRUE(conflict.excess);
      EXPECT_EQ(conflict.prescribed, Cardinality::Exactly(1));
      // Lemma 3 inverse over two 1..* attributes: 1..*.
      EXPECT_EQ(conflict.inferred, Cardinality::AtLeast(1));
      EXPECT_NE(conflict.source_path.find("Lemma 3"), std::string::npos);
      EXPECT_NE(conflict.target_constraint.find("PRIMARY KEY"),
                std::string::npos);
    }
  }
  EXPECT_TRUE(found);
}

TEST(CompositeKeyTest, CleanCompositeDataYieldsNoConflict) {
  IntegrationScenario scenario = MakeCompositeScenario(0);
  CsgGraph graph;
  auto assessments = DetectStructureConflicts(scenario, &graph);
  ASSERT_TRUE(assessments.ok());
  for (const StructureConflict& conflict : (*assessments)[0].conflicts) {
    EXPECT_NE(conflict.kind, StructuralConflictKind::kUniqueViolated);
  }
}

TEST(CompositeKeyTest, CanBeDisabled) {
  IntegrationScenario scenario = MakeCompositeScenario(3);
  CsgGraph graph;
  ConflictDetectorOptions options;
  options.detect_composite_keys = false;
  auto assessments = DetectStructureConflicts(scenario, &graph, options);
  ASSERT_TRUE(assessments.ok());
  for (const StructureConflict& conflict : (*assessments)[0].conflicts) {
    EXPECT_NE(conflict.kind, StructuralConflictKind::kUniqueViolated);
  }
}

TEST(CompositeKeyTest, PlannerRepairsWithAggregateTuples) {
  IntegrationScenario scenario = MakeCompositeScenario(4);
  CsgGraph graph;
  auto assessments = DetectStructureConflicts(scenario, &graph);
  ASSERT_TRUE(assessments.ok());
  auto tasks = PlanStructureRepairs(graph, (*assessments)[0].conflicts,
                                    ExpectedQuality::kHighQuality);
  ASSERT_TRUE(tasks.ok());
  bool aggregates = false;
  for (const Task& task : *tasks) {
    if (task.type == TaskType::kAggregateTuples) {
      aggregates = true;
      EXPECT_DOUBLE_EQ(task.Param(task_params::kRepetitions), 8.0);
    }
  }
  EXPECT_TRUE(aggregates);
}

/// Two sources both feeding the unique target attribute labels.name with
/// overlapping values, plus pre-existing target rows.
IntegrationScenario MakeCrossSourceScenario() {
  Schema target_schema("t");
  (void)target_schema.AddRelation(RelationDef(
      "labels", {{"id", DataType::kInteger}, {"name", DataType::kText}}));
  target_schema.AddConstraint(Constraint::PrimaryKey("labels", {"id"}));
  target_schema.AddConstraint(Constraint::Unique("labels", {"name"}));
  auto target = Database::Create(std::move(target_schema));
  Table* labels = *target->mutable_table("labels");
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(labels
                    ->AppendRow({Value::Integer(i),
                                 Value::Text("shared" + std::to_string(i))})
                    .ok());
  }

  auto make_source = [&](const std::string& name, int offset) {
    Schema schema(name);
    (void)schema.AddRelation(
        RelationDef("imprints", {{"title", DataType::kText}}));
    auto db = Database::Create(std::move(schema));
    Table* imprints = *db->mutable_table("imprints");
    for (int i = 0; i < 6; ++i) {
      // Values sharedX overlap across sources and with the target.
      std::string value = i < 3 ? "shared" + std::to_string(i)
                                : name + std::to_string(i + offset);
      EXPECT_TRUE(imprints->AppendRow({Value::Text(value)}).ok());
    }
    CorrespondenceSet correspondences;
    correspondences.AddRelation("imprints", "labels");
    correspondences.AddAttribute("imprints", "title", "labels", "name");
    return std::make_pair(std::move(*db), std::move(correspondences));
  };

  IntegrationScenario scenario("cross", std::move(*target));
  auto [a_db, a_corr] = make_source("alpha", 0);
  scenario.AddSource(std::move(a_db), std::move(a_corr));
  auto [b_db, b_corr] = make_source("beta", 10);
  scenario.AddSource(std::move(b_db), std::move(b_corr));
  return scenario;
}

TEST(CrossSourceTest, OffByDefault) {
  IntegrationScenario scenario = MakeCrossSourceScenario();
  CsgGraph graph;
  auto assessments = DetectStructureConflicts(scenario, &graph);
  ASSERT_TRUE(assessments.ok());
  for (const SourceStructureAssessment& assessment : *assessments) {
    EXPECT_NE(assessment.source_database, "(combined)");
  }
}

TEST(CrossSourceTest, DetectsOverlapAcrossContributions) {
  IntegrationScenario scenario = MakeCrossSourceScenario();
  CsgGraph graph;
  ConflictDetectorOptions options;
  options.detect_cross_source_conflicts = true;
  auto assessments = DetectStructureConflicts(scenario, &graph, options);
  ASSERT_TRUE(assessments.ok());
  const SourceStructureAssessment* combined = nullptr;
  for (const SourceStructureAssessment& assessment : *assessments) {
    if (assessment.source_database == "(combined)") combined = &assessment;
  }
  ASSERT_NE(combined, nullptr);
  ASSERT_EQ(combined->conflicts.size(), 1u);
  const StructureConflict& conflict = combined->conflicts[0];
  EXPECT_EQ(conflict.kind, StructuralConflictKind::kUniqueViolated);
  // shared0..shared2 appear in all three contributions; shared3/shared4
  // only in the target -> 3 overlapping values.
  EXPECT_EQ(conflict.violation_count, 3u);
  // Lemma 2's overlapping union over three 1-contributions: 1..3.
  EXPECT_EQ(conflict.inferred, Cardinality::Between(1, 3));
  EXPECT_NE(conflict.source_path.find("Lemma 2"), std::string::npos);
}

TEST(CrossSourceTest, NoOverlapNoConflict) {
  // Distinct value spaces: no combined conflict even when enabled.
  Schema target_schema("t");
  (void)target_schema.AddRelation(
      RelationDef("u", {{"k", DataType::kText}}));
  target_schema.AddConstraint(Constraint::Unique("u", {"k"}));
  Schema source_schema("s");
  (void)source_schema.AddRelation(
      RelationDef("v", {{"k", DataType::kText}}));
  auto source = Database::Create(std::move(source_schema));
  Table* v = *source->mutable_table("v");
  ASSERT_TRUE(v->AppendRow({Value::Text("only-here")}).ok());
  CorrespondenceSet correspondences;
  correspondences.AddRelation("v", "u");
  correspondences.AddAttribute("v", "k", "u", "k");
  IntegrationScenario scenario(
      "disjoint", std::move(*Database::Create(std::move(target_schema))));
  scenario.AddSource(std::move(*source), std::move(correspondences));

  CsgGraph graph;
  ConflictDetectorOptions options;
  options.detect_cross_source_conflicts = true;
  auto assessments = DetectStructureConflicts(scenario, &graph, options);
  ASSERT_TRUE(assessments.ok());
  for (const SourceStructureAssessment& assessment : *assessments) {
    EXPECT_NE(assessment.source_database, "(combined)");
  }
}

TEST(CrossSourceTest, FullModulePlansCombinedRepair) {
  IntegrationScenario scenario = MakeCrossSourceScenario();
  StructureModule::Options options;
  options.detector.detect_cross_source_conflicts = true;
  StructureModule module(options);
  auto report = module.AssessComplexity(scenario);
  ASSERT_TRUE(report.ok());
  auto tasks =
      module.PlanTasks(**report, ExpectedQuality::kHighQuality, {});
  ASSERT_TRUE(tasks.ok());
  bool combined_repair = false;
  for (const Task& task : *tasks) {
    if (task.subject.find("(combined)") != std::string::npos &&
        task.type == TaskType::kAggregateTuples) {
      combined_repair = true;
    }
  }
  EXPECT_TRUE(combined_repair);
}

}  // namespace
}  // namespace efes
