// Tests for the content-addressed profile cache: fingerprint
// sensitivity (any value/constraint/column-name mutation changes the
// key), bit-exact serialization roundtrips (hexfloat doubles), cache-hit
// identity, the invalidation property (a mutated source recomputes and
// matches a cold run byte for byte), disk persistence, corrupt-snapshot
// recovery (seeded byte-mangler, never an error), version-mismatch
// handling, fault injection on the load/save paths, and byte-identical
// pipeline output cached vs uncached at any thread count.

#include "efes/cache/profile_cache.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "efes/cache/fingerprint.h"
#include "efes/common/fault.h"
#include "efes/common/file_io.h"
#include "efes/common/metrics.h"
#include "efes/common/parallel.h"
#include "efes/common/random.h"
#include "efes/core/engine.h"
#include "efes/experiment/default_pipeline.h"
#include "efes/experiment/json_export.h"
#include "efes/profiling/constraint_discovery.h"
#include "efes/profiling/profiler.h"
#include "efes/profiling/statistics.h"
#include "efes/scenario/bibliographic.h"

namespace efes {
namespace {

/// Cache tests drive the production chunked profiler; under default
/// options ProfileColumn cannot fail, so the helper unwraps in place.
AttributeStatistics Stats(const std::vector<Value>& column, DataType type) {
  auto profiled = ProfileColumn(column, type);
  EXPECT_TRUE(profiled.ok()) << profiled.status().ToString();
  return profiled.ok() ? *std::move(profiled) : AttributeStatistics{};
}

std::vector<Value> MixedColumn() {
  return {Value::Text("Sweet Home Alabama"), Value::Null(),
          Value::Text("4:43"),  Value::Integer(1974),
          Value::Real(0.5),     Value::Boolean(true),
          Value::Text(""),      Value::Text("with space % and = signs")};
}

std::vector<Value> NumericColumn() {
  std::vector<Value> column;
  Random rng(4242);
  for (size_t i = 0; i < 200; ++i) {
    column.push_back(Value::Real(rng.UniformInt(-1000, 1000) / 7.0));
  }
  column.push_back(Value::Null());
  return column;
}

/// A two-relation database small enough to mutate precisely. The knobs
/// isolate the three invalidation triggers the cache must react to: a
/// cell value, a declared constraint, a column name.
struct TinyOptions {
  std::string title_column = "title";
  bool declare_title_not_null = false;
  std::string first_title = "Second Coming";
};

Database MakeTinyDatabase(const TinyOptions& options = {}) {
  Schema schema("tiny");
  EXPECT_TRUE(schema
                  .AddRelation(RelationDef(
                      "albums", {{"id", DataType::kInteger},
                                 {options.title_column, DataType::kText}}))
                  .ok());
  EXPECT_TRUE(schema
                  .AddRelation(RelationDef(
                      "songs", {{"album", DataType::kInteger},
                                {"name", DataType::kText},
                                {"length", DataType::kReal}}))
                  .ok());
  schema.AddConstraint(Constraint::PrimaryKey("albums", {"id"}));
  schema.AddConstraint(
      Constraint::ForeignKey("songs", {"album"}, "albums", {"id"}));
  if (options.declare_title_not_null) {
    schema.AddConstraint(
        Constraint::NotNull("albums", options.title_column));
  }
  auto database = Database::Create(std::move(schema));
  EXPECT_TRUE(database.ok()) << database.status();
  auto albums = database->mutable_table("albums");
  EXPECT_TRUE(albums.ok());
  EXPECT_TRUE((*albums)
                  ->AppendRow({Value::Integer(1),
                               Value::Text(options.first_title)})
                  .ok());
  EXPECT_TRUE(
      (*albums)->AppendRow({Value::Integer(2), Value::Text("Argus")}).ok());
  auto songs = database->mutable_table("songs");
  EXPECT_TRUE(songs.ok());
  EXPECT_TRUE((*songs)
                  ->AppendRow({Value::Integer(1), Value::Text("Dreamer"),
                               Value::Real(4.55)})
                  .ok());
  EXPECT_TRUE((*songs)
                  ->AppendRow({Value::Integer(2), Value::Text("Throw Down"),
                               Value::Null()})
                  .ok());
  return *std::move(database);
}

// --- Fingerprints ---------------------------------------------------------

TEST(FingerprintTest, ColumnFingerprintIsDeterministic) {
  EXPECT_EQ(FingerprintColumn(MixedColumn(), DataType::kText),
            FingerprintColumn(MixedColumn(), DataType::kText));
}

TEST(FingerprintTest, TargetTypeIsPartOfTheKey) {
  EXPECT_NE(FingerprintColumn(MixedColumn(), DataType::kText),
            FingerprintColumn(MixedColumn(), DataType::kInteger));
}

TEST(FingerprintTest, AnySingleValueMutationChangesTheFingerprint) {
  const std::vector<Value> column = MixedColumn();
  const uint64_t base = FingerprintColumn(column, DataType::kText);
  for (size_t i = 0; i < column.size(); ++i) {
    std::vector<Value> mutated = column;
    mutated[i] = mutated[i].is_null() ? Value::Integer(7) : Value::Null();
    EXPECT_NE(FingerprintColumn(mutated, DataType::kText), base)
        << "mutating value " << i << " did not change the fingerprint";
  }
}

TEST(FingerprintTest, AdjacentStringsDoNotShiftIntoEachOther) {
  // Length prefixes keep ("ab","c") and ("a","bc") apart.
  std::vector<Value> a = {Value::Text("ab"), Value::Text("c")};
  std::vector<Value> b = {Value::Text("a"), Value::Text("bc")};
  EXPECT_NE(FingerprintColumn(a, DataType::kText),
            FingerprintColumn(b, DataType::kText));
}

TEST(FingerprintTest, NullAndEmptyTextDiffer) {
  std::vector<Value> with_null = {Value::Null()};
  std::vector<Value> with_empty = {Value::Text("")};
  EXPECT_NE(FingerprintColumn(with_null, DataType::kText),
            FingerprintColumn(with_empty, DataType::kText));
}

TEST(FingerprintTest, DatabaseFingerprintIsDeterministic) {
  EXPECT_EQ(FingerprintDatabase(MakeTinyDatabase()),
            FingerprintDatabase(MakeTinyDatabase()));
}

TEST(FingerprintTest, DatabaseFingerprintSeesValueEdits) {
  TinyOptions edited;
  edited.first_title = "Second Coming!";
  EXPECT_NE(FingerprintDatabase(MakeTinyDatabase(edited)),
            FingerprintDatabase(MakeTinyDatabase()));
}

TEST(FingerprintTest, DatabaseFingerprintSeesConstraintChanges) {
  TinyOptions constrained;
  constrained.declare_title_not_null = true;
  EXPECT_NE(FingerprintDatabase(MakeTinyDatabase(constrained)),
            FingerprintDatabase(MakeTinyDatabase()));
}

TEST(FingerprintTest, DatabaseFingerprintSeesColumnRenames) {
  TinyOptions renamed;
  renamed.title_column = "album_title";
  EXPECT_NE(FingerprintDatabase(MakeTinyDatabase(renamed)),
            FingerprintDatabase(MakeTinyDatabase()));
}

TEST(FingerprintTest, HexRenderingIsSixteenLowercaseDigits) {
  EXPECT_EQ(FingerprintToHex(0), "0000000000000000");
  EXPECT_EQ(FingerprintToHex(0xdeadbeef01234567ull), "deadbeef01234567");
}

// --- Serialization --------------------------------------------------------

void ExpectStatisticsEqual(const AttributeStatistics& a,
                           const AttributeStatistics& b) {
  // The cache contract is bit-exactness, which the serialized form
  // captures completely; spot-check the interesting fields directly too.
  EXPECT_EQ(SerializeStatistics(a), SerializeStatistics(b));
  EXPECT_EQ(a.evaluated_against, b.evaluated_against);
  EXPECT_EQ(a.fill_status.total_count, b.fill_status.total_count);
  EXPECT_EQ(a.fill_status.null_count, b.fill_status.null_count);
  EXPECT_EQ(a.fill_status.uncastable_count, b.fill_status.uncastable_count);
  EXPECT_EQ(a.constancy.constancy, b.constancy.constancy);
  EXPECT_EQ(a.constancy.distinct_count, b.constancy.distinct_count);
  EXPECT_EQ(a.text_pattern.has_value(), b.text_pattern.has_value());
  if (a.text_pattern && b.text_pattern) {
    EXPECT_EQ(a.text_pattern->patterns, b.text_pattern->patterns);
  }
  EXPECT_EQ(a.char_histogram.has_value(), b.char_histogram.has_value());
  if (a.char_histogram && b.char_histogram) {
    EXPECT_EQ(a.char_histogram->frequencies, b.char_histogram->frequencies);
  }
  EXPECT_EQ(a.histogram.has_value(), b.histogram.has_value());
  if (a.histogram && b.histogram) {
    EXPECT_EQ(a.histogram->min, b.histogram->min);
    EXPECT_EQ(a.histogram->max, b.histogram->max);
    EXPECT_EQ(a.histogram->bucket_fractions, b.histogram->bucket_fractions);
  }
  EXPECT_EQ(a.top_k.coverage, b.top_k.coverage);
  ASSERT_EQ(a.top_k.top_values.size(), b.top_k.top_values.size());
  for (size_t i = 0; i < a.top_k.top_values.size(); ++i) {
    EXPECT_TRUE(a.top_k.top_values[i].first == b.top_k.top_values[i].first);
    EXPECT_EQ(a.top_k.top_values[i].second, b.top_k.top_values[i].second);
  }
}

TEST(CacheSerializationTest, TextStatisticsRoundtripBitExact) {
  AttributeStatistics stats =
      Stats(MixedColumn(), DataType::kText);
  auto parsed = ParseStatistics(SerializeStatistics(stats));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ExpectStatisticsEqual(stats, *parsed);
}

TEST(CacheSerializationTest, NumericStatisticsRoundtripBitExact) {
  AttributeStatistics stats =
      Stats(NumericColumn(), DataType::kReal);
  auto parsed = ParseStatistics(SerializeStatistics(stats));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ExpectStatisticsEqual(stats, *parsed);
}

TEST(CacheSerializationTest, ConstraintsRoundtrip) {
  std::vector<DiscoveredConstraint> constraints = {
      {Constraint::NotNull("albums", "title"), 42},
      {Constraint::Unique("albums", {"id"}), 42},
      {Constraint::ForeignKey("songs", {"album"}, "albums", {"id"}), 17},
      {Constraint::FunctionalDependency("songs", {"a b"}, {"c%d"}), 9},
  };
  auto parsed = ParseConstraints(SerializeConstraints(constraints));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->size(), constraints.size());
  for (size_t i = 0; i < constraints.size(); ++i) {
    EXPECT_EQ((*parsed)[i].constraint, constraints[i].constraint);
    EXPECT_EQ((*parsed)[i].support, constraints[i].support);
  }
}

TEST(CacheSerializationTest, MalformedLinesAreParseErrors) {
  for (const char* bad :
       {"", "x", "5 1 2", "not numbers at all", "3 0 =r %zz 1"}) {
    EXPECT_FALSE(ParseStatistics(bad).ok()) << "accepted: " << bad;
  }
  EXPECT_FALSE(ParseConstraints("banana").ok());
  EXPECT_FALSE(ParseConstraints("1 0 =r").ok());
}

// --- In-memory cache behavior ---------------------------------------------

TEST(ProfileCacheTest, ProfilingHitsTheActiveCache) {
  ProfileCache cache;
  ScopedProfileCache scoped(&cache);
  AttributeStatistics cold = Stats(MixedColumn(), DataType::kText);
  EXPECT_EQ(cache.entry_count(), 1u);
  AttributeStatistics warm = Stats(MixedColumn(), DataType::kText);
  ExpectStatisticsEqual(cold, warm);
}

TEST(ProfileCacheTest, NoActiveCacheMeansNoCaching) {
  ProfileCache cache;
  {
    ScopedProfileCache scoped(&cache);
    (void)Stats(MixedColumn(), DataType::kText);
  }
  EXPECT_EQ(ProfileCache::Active(), nullptr);
  EXPECT_EQ(cache.entry_count(), 1u);
  (void)Stats(NumericColumn(), DataType::kReal);
  EXPECT_EQ(cache.entry_count(), 1u);  // unchanged: cache no longer active
}

TEST(ProfileCacheTest, ScopedActivationNestsAndRestores) {
  ProfileCache outer_cache;
  ProfileCache inner_cache;
  EXPECT_EQ(ProfileCache::Active(), nullptr);
  {
    ScopedProfileCache outer(&outer_cache);
    EXPECT_EQ(ProfileCache::Active(), &outer_cache);
    {
      ScopedProfileCache inner(&inner_cache);
      EXPECT_EQ(ProfileCache::Active(), &inner_cache);
    }
    EXPECT_EQ(ProfileCache::Active(), &outer_cache);
  }
  EXPECT_EQ(ProfileCache::Active(), nullptr);
}

TEST(ProfileCacheTest, DiscoverConstraintsUsesTheCache) {
  const Database database = MakeTinyDatabase();
  std::vector<DiscoveredConstraint> uncached = DiscoverConstraints(database);
  ProfileCache cache;
  ScopedProfileCache scoped(&cache);
  std::vector<DiscoveredConstraint> cold = DiscoverConstraints(database);
  EXPECT_EQ(cache.entry_count(), 1u);
  std::vector<DiscoveredConstraint> warm = DiscoverConstraints(database);
  ASSERT_EQ(cold.size(), uncached.size());
  ASSERT_EQ(warm.size(), uncached.size());
  for (size_t i = 0; i < uncached.size(); ++i) {
    EXPECT_EQ(cold[i].constraint, uncached[i].constraint);
    EXPECT_EQ(warm[i].constraint, uncached[i].constraint);
    EXPECT_EQ(warm[i].support, uncached[i].support);
  }
}

TEST(ProfileCacheTest, DiscoveryOptionsArePartOfTheKey) {
  const Database database = MakeTinyDatabase();
  ProfileCache cache;
  ScopedProfileCache scoped(&cache);
  (void)DiscoverConstraints(database);
  DiscoveryOptions no_fds;
  no_fds.discover_functional_dependencies = false;
  (void)DiscoverConstraints(database, no_fds);
  EXPECT_EQ(cache.entry_count(), 2u);  // distinct keys, no false sharing
}

// --- Invalidation property -------------------------------------------------

Result<IntegrationScenario> MakeScenario() {
  BiblioOptions options;
  options.publication_count = 60;
  return MakeBiblioScenario(BiblioSchemaId::kS1, BiblioSchemaId::kS2,
                            options);
}

/// The core incremental-re-estimation property: estimate, mutate one
/// cell of one source, estimate again against the same (now stale for
/// that column) cache — the result must be byte-identical to a cold,
/// cache-free run over the mutated scenario.
TEST(CacheInvalidationPropertyTest, MutatedSourceRecomputesExactly) {
  Random rng(20260805);
  for (int round = 0; round < 3; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    auto scenario = MakeScenario();
    ASSERT_TRUE(scenario.ok());

    ProfileCache cache;
    EfesEngine engine = MakeDefaultEngine();
    RunOptions cached_run;
    cached_run.cache = &cache;
    auto before = engine.Run(*scenario, cached_run);
    ASSERT_TRUE(before.ok()) << before.status();

    // Mutate one random cell of one source table, respecting the
    // column's declared type so the instance stays canonical.
    Database& database = scenario->sources[0].database;
    ASSERT_GT(database.tables().size(), 0u);
    const size_t t = rng.UniformUint64(database.tables().size());
    auto table = database.mutable_table(database.tables()[t].name());
    ASSERT_TRUE(table.ok());
    ASSERT_GT((*table)->row_count(), 0u);
    const size_t row = rng.UniformUint64((*table)->row_count());
    const size_t col = rng.UniformUint64((*table)->column_count());
    const DataType type = (*table)->def().attributes()[col].type;
    Value replacement = Value::Text("mutated-" + std::to_string(round));
    if (type == DataType::kInteger) {
      replacement = Value::Integer(900000 + round);
    } else if (type == DataType::kReal) {
      replacement = Value::Real(0.125 + round);
    } else if (type == DataType::kBoolean) {
      replacement = Value::Boolean(round % 2 == 0);
    }
    (*table)->at(row, col) = replacement;

    auto warm = engine.Run(*scenario, cached_run);
    ASSERT_TRUE(warm.ok()) << warm.status();
    EfesEngine cold_engine = MakeDefaultEngine();
    auto cold = cold_engine.Run(*scenario);  // no cache at all
    ASSERT_TRUE(cold.ok()) << cold.status();
    EXPECT_EQ(warm->ToText(), cold->ToText());
    EXPECT_EQ(EstimationResultToJson(*warm), EstimationResultToJson(*cold));
  }
}

// --- Disk persistence ------------------------------------------------------

std::string TempCachePath(const std::string& tag) {
  return testing::TempDir() + "/efes_cache_" + tag + ".efes";
}

TEST(CachePersistenceTest, SaveLoadRoundtripServesIdenticalEntries) {
  // Exercise the create_directories path with a nested file location.
  const std::string path =
      testing::TempDir() + "/efes_cache_nested/profile_cache.efes";
  ProfileCache cache;
  {
    ScopedProfileCache scoped(&cache);
    (void)Stats(MixedColumn(), DataType::kText);
    (void)Stats(NumericColumn(), DataType::kReal);
    (void)DiscoverConstraints(MakeTinyDatabase());
  }
  ASSERT_TRUE(cache.SaveToFile(path).ok());

  ProfileCache reloaded;
  ASSERT_TRUE(reloaded.LoadFromFile(path).ok());
  EXPECT_EQ(reloaded.entry_count(), cache.entry_count());

  const uint64_t key = FingerprintColumn(MixedColumn(), DataType::kText);
  auto original = cache.LookupStatistics(key);
  auto restored = reloaded.LookupStatistics(key);
  ASSERT_TRUE(original.has_value());
  ASSERT_TRUE(restored.has_value());
  ExpectStatisticsEqual(*original, *restored);

  // A reloaded cache saved again is byte-identical: the format is
  // canonical (ordered keys, hexfloat doubles).
  const std::string resaved = TempCachePath("resave");
  ASSERT_TRUE(reloaded.SaveToFile(resaved).ok());
  auto first = ReadFileToString(path);
  auto second = ReadFileToString(resaved);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);
}

TEST(CachePersistenceTest, MissingFileIsAColdStartNotAnError) {
  ProfileCache cache;
  EXPECT_TRUE(cache.LoadFromFile(TempCachePath("does-not-exist")).ok());
  EXPECT_EQ(cache.entry_count(), 0u);
}

TEST(CachePersistenceTest, VersionMismatchIsIgnoredWholesale) {
  const std::string path = TempCachePath("version");
  ASSERT_TRUE(WriteFileAtomic(path,
                              "EFESCACHE 999\nS 0000000000000000 3 1 0 0\n")
                  .ok());
  ProfileCache cache;
  EXPECT_TRUE(cache.LoadFromFile(path).ok());
  EXPECT_EQ(cache.entry_count(), 0u);
}

TEST(CachePersistenceTest, PreSketchV1SnapshotDegradesToAMiss) {
  // The sketch-spill entries forced the EFESCACHE 2 bump; a v1 snapshot
  // from an older build must load as empty (a cold start), never crash
  // or resurrect stale statistics under the new key scheme.
  const std::string path = TempCachePath("v1");
  ASSERT_TRUE(WriteFileAtomic(path,
                              "EFESCACHE 1\n"
                              "S 00000000deadbeef 3 1 0 0\n"
                              "C 00000000deadbeef 0\n")
                  .ok());
  ProfileCache cache;
  EXPECT_TRUE(cache.LoadFromFile(path).ok());
  EXPECT_EQ(cache.entry_count(), 0u);
}

TEST(CachePersistenceTest, SpilledSketchChunksRoundtripThroughDisk) {
  // Multi-chunk profiling spills per-chunk partial sketches ('K'
  // entries) into the active cache; a reloaded snapshot must serve them
  // so a resumed run re-reads absorbed chunks instead of recomputing.
  Random rng(31337);
  std::vector<Value> column;
  for (size_t i = 0; i < 400; ++i) {
    column.push_back(Value::Text("cell-" + std::to_string(rng.UniformUint64(
                                     90))));
  }
  ProfileOptions options;
  options.chunk_rows = 64;  // 400 rows -> 7 chunks -> 7 spilled sketches

  ProfileCache cache;
  std::string expected;
  {
    ScopedProfileCache scoped(&cache);
    auto cold = ProfileColumn(column, DataType::kText, options);
    ASSERT_TRUE(cold.ok()) << cold.status().ToString();
    expected = cold->ToString();
  }
  const std::string path = TempCachePath("sketch_spill");
  ASSERT_TRUE(cache.SaveToFile(path).ok());
  auto snapshot = ReadFileToString(path);
  ASSERT_TRUE(snapshot.ok());
  EXPECT_NE(snapshot->find("\nK "), std::string::npos)
      << "no spilled sketch entries in the snapshot";

  ProfileCache reloaded;
  ASSERT_TRUE(reloaded.LoadFromFile(path).ok());
  EXPECT_EQ(reloaded.entry_count(), cache.entry_count());
  {
    ScopedProfileCache scoped(&reloaded);
    MetricsRegistry::Global().Reset();
    auto warm = ProfileColumn(column, DataType::kText, options);
    ASSERT_TRUE(warm.ok());
    EXPECT_EQ(warm->ToString(), expected);
    const MetricsSnapshot metrics = MetricsRegistry::Global().Snapshot();
    EXPECT_GT(metrics.CounterValue("cache.hits"), 0u);
    EXPECT_EQ(metrics.CounterValue("cache.misses"), 0u);
  }
}

/// Seeded byte-mangler in the corruption_property_test style: truncate,
/// flip a byte, splice a hostile fragment, duplicate a slice.
std::string Corrupt(std::string text, Random& rng) {
  const size_t edits = 1 + rng.UniformUint64(4);
  for (size_t e = 0; e < edits; ++e) {
    if (text.empty()) break;
    switch (rng.UniformUint64(4)) {
      case 0:
        text.resize(rng.UniformUint64(text.size() + 1));
        break;
      case 1: {
        const size_t at = rng.UniformUint64(text.size());
        text[at] = static_cast<char>(rng.UniformUint64(256));
        break;
      }
      case 2: {
        static const char* kFragments[] = {
            "S ",   "C ",  "K ",      "EFESCACHE 1", "EFESCACHE 2",
            "\n\n", "=%%", "\xff\xfe",
            " ",    "r0x1p+1", "999999999999999999999999",
        };
        const size_t at = rng.UniformUint64(text.size() + 1);
        text.insert(at, kFragments[rng.UniformUint64(
                            sizeof(kFragments) / sizeof(kFragments[0]))]);
        break;
      }
      default: {
        const size_t from = rng.UniformUint64(text.size());
        const size_t len = rng.UniformUint64(text.size() - from + 1);
        const std::string slice = text.substr(from, len);
        text.insert(rng.UniformUint64(text.size() + 1), slice);
        break;
      }
    }
  }
  return text;
}

TEST(CachePersistenceTest, CorruptSnapshotsDegradeToRecomputationNotError) {
  ProfileCache cache;
  {
    ScopedProfileCache scoped(&cache);
    (void)Stats(MixedColumn(), DataType::kText);
    (void)Stats(NumericColumn(), DataType::kReal);
    (void)DiscoverConstraints(MakeTinyDatabase());
    // A multi-chunk profile spills 'K' sketch entries, so the mangler
    // also exercises the sketch-state parser.
    Random spill_rng(808);
    std::vector<Value> wide;
    for (size_t i = 0; i < 300; ++i) {
      wide.push_back(
          Value::Text("w" + std::to_string(spill_rng.UniformUint64(70))));
    }
    ProfileOptions chunked;
    chunked.chunk_rows = 64;
    (void)ProfileColumn(wide, DataType::kText, chunked);
  }
  const std::string path = TempCachePath("corrupt");
  ASSERT_TRUE(cache.SaveToFile(path).ok());
  auto pristine = ReadFileToString(path);
  ASSERT_TRUE(pristine.ok());

  const std::vector<Value> column = NumericColumn();
  Random rng(777);
  for (int round = 0; round < 200; ++round) {
    SCOPED_TRACE("corruption round " + std::to_string(round));
    ASSERT_TRUE(WriteFileAtomic(path, Corrupt(*pristine, rng)).ok());
    ProfileCache recovered;
    // The contract: corruption is a miss, never an error or a crash.
    EXPECT_TRUE(recovered.LoadFromFile(path).ok());
    // Whatever survived, profiling through the cache still works.
    ScopedProfileCache scoped(&recovered);
    AttributeStatistics stats = Stats(column, DataType::kReal);
    EXPECT_EQ(stats.fill_status.total_count, column.size());
  }
}

class CacheFaultTest : public testing::Test {
 protected:
  void SetUp() override { FaultRegistry::Global().DisarmAll(); }
  void TearDown() override { FaultRegistry::Global().DisarmAll(); }
};

TEST_F(CacheFaultTest, LoadAndSaveFaultPointsAreInjectable) {
  const std::string path = TempCachePath("faults");
  ProfileCache cache;
  {
    ScopedProfileCache scoped(&cache);
    (void)Stats(MixedColumn(), DataType::kText);
  }
  ASSERT_TRUE(cache.SaveToFile(path).ok());

  ASSERT_TRUE(FaultRegistry::Global().ArmFromString("cache.load").ok());
  ProfileCache blocked;
  EXPECT_FALSE(blocked.LoadFromFile(path).ok());
  FaultRegistry::Global().DisarmAll();
  EXPECT_TRUE(blocked.LoadFromFile(path).ok());

  ASSERT_TRUE(FaultRegistry::Global().ArmFromString("cache.save").ok());
  EXPECT_FALSE(cache.SaveToFile(path).ok());
  FaultRegistry::Global().DisarmAll();
  EXPECT_TRUE(cache.SaveToFile(path).ok());
}

// --- Threads × cache byte-identity ----------------------------------------

TEST(CacheDeterminismTest, CachedAndUncachedRunsMatchAtAnyThreadCount) {
  auto scenario = MakeScenario();
  ASSERT_TRUE(scenario.ok());

  std::vector<std::string> renderings;
  for (size_t threads : {size_t{1}, size_t{4}}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    SetThreadCountOverride(threads);
    // Uncached baseline.
    EfesEngine engine = MakeDefaultEngine();
    auto uncached = engine.Run(*scenario);
    ASSERT_TRUE(uncached.ok()) << uncached.status();
    renderings.push_back(EstimationResultToJson(*uncached));
    // Cold through a fresh cache, then warm through the same cache.
    ProfileCache cache;
    RunOptions cached_run;
    cached_run.cache = &cache;
    auto cold = engine.Run(*scenario, cached_run);
    ASSERT_TRUE(cold.ok()) << cold.status();
    renderings.push_back(EstimationResultToJson(*cold));
    auto warm = engine.Run(*scenario, cached_run);
    ASSERT_TRUE(warm.ok()) << warm.status();
    renderings.push_back(EstimationResultToJson(*warm));
  }
  SetThreadCountOverride(0);
  for (size_t i = 1; i < renderings.size(); ++i) {
    EXPECT_EQ(renderings[0], renderings[i]) << "rendering " << i;
  }
}

}  // namespace
}  // namespace efes
