// Tests for the JSON writer and the report/study exports.

#include "efes/experiment/json_export.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>
#include <memory>

#include "efes/common/json_writer.h"
#include "efes/experiment/default_pipeline.h"
#include "efes/experiment/study.h"
#include "efes/scenario/paper_example.h"

namespace efes {
namespace {

TEST(JsonWriterTest, ObjectsArraysAndValues) {
  JsonWriter json;
  json.BeginObject()
      .Key("name")
      .String("efes")
      .Key("count")
      .Number(static_cast<int64_t>(42))
      .Key("ratio")
      .Number(0.5)
      .Key("ok")
      .Bool(true)
      .Key("none")
      .Null()
      .Key("items")
      .BeginArray()
      .Number(static_cast<int64_t>(1))
      .Number(static_cast<int64_t>(2))
      .EndArray()
      .EndObject();
  EXPECT_EQ(json.ToString(),
            "{\"name\":\"efes\",\"count\":42,\"ratio\":0.5,\"ok\":true,"
            "\"none\":null,\"items\":[1,2]}");
}

TEST(JsonWriterTest, EscapesSpecialCharacters) {
  EXPECT_EQ(JsonWriter::Escape("a\"b\\c\nd\te"),
            "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(JsonWriter::Escape(std::string("\x01", 1)), "\\u0001");
}

TEST(JsonWriterTest, NestedStructures) {
  JsonWriter json;
  json.BeginArray()
      .BeginObject()
      .Key("x")
      .BeginArray()
      .EndArray()
      .EndObject()
      .BeginObject()
      .EndObject()
      .EndArray();
  EXPECT_EQ(json.ToString(), "[{\"x\":[]},{}]");
}

TEST(JsonWriterTest, NonFiniteNumbersBecomeNull) {
  JsonWriter json;
  json.BeginArray()
      .Number(std::numeric_limits<double>::infinity())
      .Number(std::nan(""))
      .EndArray();
  EXPECT_EQ(json.ToString(), "[null,null]");
}

class JsonExportTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto scenario = MakePaperExample();
    ASSERT_TRUE(scenario.ok());
    EfesEngine engine = MakeDefaultEngine();
    auto result =
        engine.Run(*scenario, ExpectedQuality::kHighQuality);
    ASSERT_TRUE(result.ok());
    json_ = std::make_unique<std::string>(EstimationResultToJson(*result));
  }
  static void TearDownTestSuite() {
    json_.reset();
  }
  static std::unique_ptr<std::string> json_;
};

std::unique_ptr<std::string> JsonExportTest::json_;

TEST_F(JsonExportTest, ContainsModulesTasksAndTotals) {
  EXPECT_NE(json_->find("\"modules\":["), std::string::npos);
  EXPECT_NE(json_->find("\"name\":\"mapping\""), std::string::npos);
  EXPECT_NE(json_->find("\"name\":\"structure\""), std::string::npos);
  EXPECT_NE(json_->find("\"name\":\"values\""), std::string::npos);
  EXPECT_NE(json_->find("\"tasks\":["), std::string::npos);
  EXPECT_NE(json_->find("\"totals\":{"), std::string::npos);
  EXPECT_NE(json_->find("\"cleaning_structure\":224"), std::string::npos);
}

TEST_F(JsonExportTest, ContainsPaperNumbers) {
  EXPECT_NE(json_->find("\"violations\":503"), std::string::npos);
  EXPECT_NE(json_->find("\"violations\":102"), std::string::npos);
  EXPECT_NE(json_->find("\"type\":\"Merge values\""), std::string::npos);
  EXPECT_NE(json_->find("\"systematic\":true"), std::string::npos);
}

TEST_F(JsonExportTest, BalancedBracesAndQuotes) {
  // A light well-formedness check without a parser: balanced braces and
  // brackets, even number of unescaped quotes.
  int braces = 0;
  int brackets = 0;
  size_t quotes = 0;
  for (size_t i = 0; i < json_->size(); ++i) {
    char c = (*json_)[i];
    bool escaped = i > 0 && (*json_)[i - 1] == '\\';
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    if (c == '"' && !escaped) ++quotes;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_EQ(quotes % 2, 0u);
}

TEST(StudyJsonTest, ExportsOutcomesAndRmse) {
  StudyResult study;
  study.domain = "Test";
  study.efes_rmse = 0.25;
  study.counting_rmse = 0.5;
  ScenarioOutcome outcome;
  outcome.scenario = "a-b";
  outcome.quality = ExpectedQuality::kHighQuality;
  outcome.efes_total = 100;
  outcome.measured_total = 90;
  outcome.counting_total = 50;
  study.outcomes.push_back(outcome);
  std::string json = StudyResultToJson(study);
  EXPECT_NE(json.find("\"domain\":\"Test\""), std::string::npos);
  EXPECT_NE(json.find("\"scenario\":\"a-b\""), std::string::npos);
  EXPECT_NE(json.find("\"efes_rmse\":0.25"), std::string::npos);
  EXPECT_NE(json.find("\"measured\":{\"total\":90"), std::string::npos);
}

}  // namespace
}  // namespace efes
