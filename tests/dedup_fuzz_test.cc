// Property tests for the seeded scenario fuzzer (scenario/fuzzer.h)
// driving the dedup module: every seed in 1..100 runs cleanly through
// the default engine, the injected duplicate clusters are recovered at
// recall >= 0.8 in aggregate, and the full output (report text, JSON
// export, provenance tree) is byte-identical across thread counts and
// cache states.

#include "efes/scenario/fuzzer.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "efes/cache/profile_cache.h"
#include "efes/common/json_writer.h"
#include "efes/common/parallel.h"
#include "efes/dedup/dedup_module.h"
#include "efes/experiment/default_pipeline.h"
#include "efes/experiment/json_export.h"
#include "efes/provenance/provenance.h"
#include "efes/provenance/render.h"

namespace efes {
namespace {

class DedupFuzzTest : public ::testing::Test {
 protected:
  void TearDown() override { SetThreadCountOverride(0); }
};

const DedupComplexityReport* FindDedupReport(const EstimationResult& result) {
  for (const ModuleRun& run : result.module_runs) {
    if (run.module != "dedup" || run.report == nullptr) continue;
    return dynamic_cast<const DedupComplexityReport*>(run.report.get());
  }
  return nullptr;
}

// ----------------------------------------------------- option validation

TEST_F(DedupFuzzTest, OptionsValidateRejectsInvertedRangesAndBadRates) {
  FuzzOptions inverted;
  inverted.min_entities = 50;
  inverted.max_entities = 10;
  EXPECT_EQ(inverted.Validate().code(), StatusCode::kInvalidArgument);

  FuzzOptions negative_rate;
  negative_rate.duplicate_entity_rate = -0.1;
  EXPECT_EQ(negative_rate.Validate().code(), StatusCode::kInvalidArgument);

  FuzzOptions rate_above_one;
  rate_above_one.key_dirt_rate = 1.5;
  EXPECT_EQ(rate_above_one.Validate().code(), StatusCode::kInvalidArgument);

  FuzzOptions too_few_sources;
  too_few_sources.min_sources = 1;
  EXPECT_EQ(too_few_sources.Validate().code(), StatusCode::kInvalidArgument);

  EXPECT_TRUE(FuzzOptions().Validate().ok());
}

// -------------------------------------------------- generator properties

TEST_F(DedupFuzzTest, SameSeedReproducesTheSameScenario) {
  auto first = FuzzScenario(42);
  auto second = FuzzScenario(42);
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE(second.ok()) << second.status();

  EXPECT_EQ(first->scenario.name, second->scenario.name);
  ASSERT_EQ(first->scenario.sources.size(), second->scenario.sources.size());
  for (size_t i = 0; i < first->scenario.sources.size(); ++i) {
    EXPECT_EQ(first->scenario.sources[i].database.TotalRowCount(),
              second->scenario.sources[i].database.TotalRowCount());
  }
  ASSERT_EQ(first->injected_clusters.size(), second->injected_clusters.size());
  for (size_t i = 0; i < first->injected_clusters.size(); ++i) {
    EXPECT_EQ(first->injected_clusters[i].key,
              second->injected_clusters[i].key);
    EXPECT_EQ(first->injected_clusters[i].occurrences,
              second->injected_clusters[i].occurrences);
  }
  EXPECT_EQ(first->injected_nulls, second->injected_nulls);
}

TEST_F(DedupFuzzTest, DifferentSeedsProduceDifferentScenarios) {
  auto a = FuzzScenario(1);
  auto b = FuzzScenario(2);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  // Names always differ; the data should too (row counts or clusters).
  EXPECT_NE(a->scenario.name, b->scenario.name);
  size_t rows_a = 0;
  size_t rows_b = 0;
  for (const SourceBinding& s : a->scenario.sources) {
    rows_a += s.database.TotalRowCount();
  }
  for (const SourceBinding& s : b->scenario.sources) {
    rows_b += s.database.TotalRowCount();
  }
  EXPECT_TRUE(rows_a != rows_b ||
              a->injected_clusters.size() != b->injected_clusters.size());
}

TEST_F(DedupFuzzTest, GeneratedScenariosSatisfyTheirOwnConstraints) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    auto fuzzed = FuzzScenario(seed);
    ASSERT_TRUE(fuzzed.ok()) << "seed " << seed << ": " << fuzzed.status();
    EXPECT_TRUE(fuzzed->scenario.Validate().ok()) << "seed " << seed;
    for (const SourceBinding& source : fuzzed->scenario.sources) {
      EXPECT_TRUE(source.database.SatisfiesConstraints()) << "seed " << seed;
    }
    for (const InjectedCluster& cluster : fuzzed->injected_clusters) {
      EXPECT_GE(cluster.occurrences, 2u) << "seed " << seed;
      EXPECT_EQ(cluster.key, NormalizeEntityKey(cluster.key))
          << "seed " << seed << ": injected keys are stored normalized";
    }
  }
}

TEST_F(DedupFuzzTest, RecallIsOneWhenNothingIsInjected) {
  FuzzOptions options;
  options.duplicate_entity_rate = 0.0;
  auto fuzzed = FuzzScenario(5, options);
  ASSERT_TRUE(fuzzed.ok()) << fuzzed.status();
  EXPECT_TRUE(fuzzed->injected_clusters.empty());
  DedupComplexityReport empty_report({});
  EXPECT_DOUBLE_EQ(InjectedClusterRecall(*fuzzed, empty_report), 1.0);
}

// ------------------------------------------- the 100-seed recall property

TEST_F(DedupFuzzTest, HundredSeedsRunCleanlyWithAggregateRecallFloor) {
  EfesEngine engine = MakeDefaultEngine();
  size_t recovered = 0;
  size_t injected = 0;
  size_t seeds_with_injection = 0;
  for (uint64_t seed = 1; seed <= 100; ++seed) {
    auto fuzzed = FuzzScenario(seed);
    ASSERT_TRUE(fuzzed.ok()) << "seed " << seed << ": " << fuzzed.status();
    auto result = engine.Run(fuzzed->scenario, ExpectedQuality::kHighQuality);
    ASSERT_TRUE(result.ok()) << "seed " << seed << ": " << result.status();
    EXPECT_FALSE(result->degraded) << "seed " << seed;
    for (const ModuleRun& run : result->module_runs) {
      EXPECT_TRUE(run.ok()) << "seed " << seed << " module " << run.module
                            << ": " << run.status;
    }
    const DedupComplexityReport* report = FindDedupReport(*result);
    ASSERT_NE(report, nullptr) << "seed " << seed;
    if (fuzzed->injected_clusters.empty()) continue;
    ++seeds_with_injection;
    double recall = InjectedClusterRecall(*fuzzed, *report);
    size_t total = fuzzed->injected_clusters.size();
    injected += total;
    recovered += static_cast<size_t>(recall * static_cast<double>(total) +
                                     0.5);
  }
  // The fuzzer injects duplicates at rate 0.2 over 24..80 entities, so
  // a hundred seeds cannot plausibly all come up empty.
  ASSERT_GT(seeds_with_injection, 50u);
  ASSERT_GT(injected, 0u);
  double aggregate_recall =
      static_cast<double>(recovered) / static_cast<double>(injected);
  EXPECT_GE(aggregate_recall, 0.8)
      << "recovered " << recovered << " of " << injected
      << " injected clusters";
}

// --------------------------------- byte-identity across threads × caches

struct FuzzRunOutput {
  std::string report_text;
  std::string json;
  std::string tree;
};

FuzzRunOutput RunSeedWithProvenance(uint64_t seed, ProfileCache* cache) {
  auto fuzzed = FuzzScenario(seed);
  EXPECT_TRUE(fuzzed.ok()) << fuzzed.status();
  ProvenanceRecorder recorder;
  EstimationResult result;
  {
    ScopedProvenanceRecorder scoped(&recorder);
    EfesEngine engine = MakeDefaultEngine();
    RunOptions options;
    options.cache = cache;
    auto run = engine.Run(fuzzed->scenario, options);
    EXPECT_TRUE(run.ok()) << run.status();
    result = std::move(*run);
  }
  FuzzRunOutput out;
  for (const ModuleRun& run : result.module_runs) {
    if (run.report != nullptr) out.report_text += run.report->ToText();
  }
  ProvenanceSnapshot snapshot = recorder.Snapshot();
  out.json = EstimationResultToJson(result, nullptr, &snapshot);
  auto tree = RenderProvenanceTree(snapshot);
  EXPECT_TRUE(tree.ok()) << tree.status();
  if (tree.ok()) out.tree = std::move(*tree);
  return out;
}

TEST_F(DedupFuzzTest, OutputIsByteIdenticalAcrossThreadsAndCacheStates) {
  for (uint64_t seed : {3u, 11u, 27u}) {
    // Baseline: default threads, no cache.
    FuzzRunOutput baseline = RunSeedWithProvenance(seed, nullptr);
    ASSERT_FALSE(baseline.json.empty());
    EXPECT_NE(baseline.json.find("\"dedup\""), std::string::npos)
        << "seed " << seed;

    for (size_t threads : {1, 4, 8}) {
      SetThreadCountOverride(threads);
      FuzzRunOutput variant = RunSeedWithProvenance(seed, nullptr);
      EXPECT_EQ(baseline.report_text, variant.report_text)
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(baseline.json, variant.json)
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(baseline.tree, variant.tree)
          << "seed " << seed << " threads " << threads;
    }
    SetThreadCountOverride(0);

    ProfileCache cache;
    FuzzRunOutput cold = RunSeedWithProvenance(seed, &cache);
    FuzzRunOutput warm = RunSeedWithProvenance(seed, &cache);
    EXPECT_EQ(baseline.json, cold.json) << "seed " << seed << " cold cache";
    EXPECT_EQ(baseline.json, warm.json) << "seed " << seed << " warm cache";
    EXPECT_EQ(baseline.tree, cold.tree) << "seed " << seed << " cold cache";
    EXPECT_EQ(baseline.tree, warm.tree) << "seed " << seed << " warm cache";
  }
}

// ------------------------------------------------ dedup tasks in exports

TEST_F(DedupFuzzTest, DedupTasksSurfaceInJsonExportAndTotals) {
  // Seed 1 is known (and pinned by data/fuzz_corpus.txt) to inject
  // clusters; any regression that stops surfacing dedup tasks fails here.
  auto fuzzed = FuzzScenario(1);
  ASSERT_TRUE(fuzzed.ok()) << fuzzed.status();
  ASSERT_FALSE(fuzzed->injected_clusters.empty());

  EfesEngine engine = MakeDefaultEngine();
  auto result = engine.Run(fuzzed->scenario, ExpectedQuality::kHighQuality);
  ASSERT_TRUE(result.ok()) << result.status();

  bool has_dedup_task = false;
  for (const TaskEstimate& estimate : result->estimate.tasks) {
    if (estimate.task.category == TaskCategory::kDeduplication) {
      has_dedup_task = true;
      EXPECT_GT(estimate.minutes, 0.0);
    }
  }
  EXPECT_TRUE(has_dedup_task);

  std::string json = EstimationResultToJson(*result);
  EXPECT_NE(json.find("\"deduplication\""), std::string::npos);
  EXPECT_NE(json.find("Resolve duplicate clusters"), std::string::npos);
}

}  // namespace
}  // namespace efes
