// Tests for the source-selection ranking API.

#include "efes/experiment/source_selection.h"

#include <gtest/gtest.h>

#include "efes/experiment/default_pipeline.h"
#include "efes/scenario/paper_example.h"

namespace efes {
namespace {

IntegrationScenario Candidate(const std::string& name, size_t multi_artist,
                              size_t orphans) {
  PaperExampleOptions options;
  options.album_count = 300;
  options.song_count = 400;
  options.multi_artist_albums = multi_artist;
  options.orphan_artists = orphans;
  auto scenario = MakePaperExample(options);
  scenario->name = name;
  return std::move(*scenario);
}

TEST(SourceSelectionTest, RanksCheapestFirst) {
  std::vector<IntegrationScenario> candidates;
  candidates.push_back(Candidate("messy", 150, 60));
  candidates.push_back(Candidate("clean", 0, 0));
  candidates.push_back(Candidate("medium", 50, 20));

  EfesEngine engine = MakeDefaultEngine();
  auto rankings = RankSources(engine, candidates,
                              ExpectedQuality::kHighQuality, {});
  ASSERT_TRUE(rankings.ok());
  ASSERT_EQ(rankings->size(), 3u);
  EXPECT_EQ((*rankings)[0].scenario, "clean");
  EXPECT_EQ((*rankings)[1].scenario, "medium");
  EXPECT_EQ((*rankings)[2].scenario, "messy");
  EXPECT_LT((*rankings)[0].estimated_minutes,
            (*rankings)[2].estimated_minutes);
  // The clean candidate has no structural conflicts to report.
  EXPECT_EQ((*rankings)[0].structural_conflicts, 0u);
  EXPECT_GT((*rankings)[2].structural_conflicts, 0u);
}

TEST(SourceSelectionTest, BreakdownFieldsPopulated) {
  std::vector<IntegrationScenario> candidates;
  candidates.push_back(Candidate("one", 50, 20));
  EfesEngine engine = MakeDefaultEngine();
  auto rankings = RankSources(engine, candidates,
                              ExpectedQuality::kHighQuality, {});
  ASSERT_TRUE(rankings.ok());
  const SourceRanking& ranking = (*rankings)[0];
  EXPECT_EQ(ranking.mapping_connections, 2u);
  EXPECT_EQ(ranking.value_heterogeneities, 1u);
  EXPECT_EQ(ranking.TotalProblems(), ranking.mapping_connections +
                                         ranking.structural_conflicts +
                                         ranking.value_heterogeneities);
}

TEST(SourceSelectionTest, EmptyCandidateList) {
  EfesEngine engine = MakeDefaultEngine();
  auto rankings =
      RankSources(engine, {}, ExpectedQuality::kLowEffort, {});
  ASSERT_TRUE(rankings.ok());
  EXPECT_TRUE(rankings->empty());
  EXPECT_NE(RenderRanking(*rankings).find("Rank"), std::string::npos);
}

TEST(SourceSelectionTest, RenderContainsAllCandidates) {
  std::vector<IntegrationScenario> candidates;
  candidates.push_back(Candidate("alpha", 10, 5));
  candidates.push_back(Candidate("beta", 80, 40));
  EfesEngine engine = MakeDefaultEngine();
  auto rankings = RankSources(engine, candidates,
                              ExpectedQuality::kHighQuality, {});
  ASSERT_TRUE(rankings.ok());
  std::string text = RenderRanking(*rankings);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("beta"), std::string::npos);
  EXPECT_NE(text.find("Estimated effort"), std::string::npos);
}

}  // namespace
}  // namespace efes
