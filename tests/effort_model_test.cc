// Tests for the effort calculation functions: the default model must
// reproduce Table 9 of the paper exactly.

#include "efes/core/effort_model.h"

#include <gtest/gtest.h>

namespace efes {
namespace {

Task MakeTask(TaskType type, std::map<std::string, double> parameters) {
  Task task;
  task.type = type;
  task.parameters = std::move(parameters);
  return task;
}

class Table9Test : public ::testing::Test {
 protected:
  EffortModel model_ = EffortModel::PaperDefault();
  ExecutionSettings settings_;

  double Minutes(TaskType type, std::map<std::string, double> parameters) {
    return model_.EstimateMinutes(MakeTask(type, std::move(parameters)),
                                  settings_);
  }
};

TEST_F(Table9Test, AggregateValues) {
  EXPECT_DOUBLE_EQ(Minutes(TaskType::kAggregateValues, {{"repetitions", 7}}),
                   21.0);
}

TEST_F(Table9Test, ConvertValuesBranches) {
  // (if #dist-vals < 120) 30, (else) 0.25 * #dist-vals.
  EXPECT_DOUBLE_EQ(Minutes(TaskType::kConvertValues, {{"dist_vals", 50}}),
                   30.0);
  EXPECT_DOUBLE_EQ(Minutes(TaskType::kConvertValues, {{"dist_vals", 119}}),
                   30.0);
  EXPECT_DOUBLE_EQ(Minutes(TaskType::kConvertValues, {{"dist_vals", 120}}),
                   30.0);
  EXPECT_DOUBLE_EQ(Minutes(TaskType::kConvertValues, {{"dist_vals", 200}}),
                   50.0);
}

TEST_F(Table9Test, GeneralizeAndRefine) {
  EXPECT_DOUBLE_EQ(
      Minutes(TaskType::kGeneralizeValues, {{"dist_vals", 100}}), 50.0);
  EXPECT_DOUBLE_EQ(Minutes(TaskType::kRefineValues, {{"values", 100}}),
                   50.0);
}

TEST_F(Table9Test, ConstantTasks) {
  EXPECT_DOUBLE_EQ(Minutes(TaskType::kDropValues, {}), 10.0);
  EXPECT_DOUBLE_EQ(Minutes(TaskType::kCreateEnclosingTuples, {}), 10.0);
  EXPECT_DOUBLE_EQ(Minutes(TaskType::kDropDetachedValues, {}), 0.0);
  EXPECT_DOUBLE_EQ(Minutes(TaskType::kRejectTuples, {}), 5.0);
  EXPECT_DOUBLE_EQ(Minutes(TaskType::kKeepAnyValue, {}), 5.0);
  EXPECT_DOUBLE_EQ(Minutes(TaskType::kAddTuples, {}), 5.0);
  EXPECT_DOUBLE_EQ(Minutes(TaskType::kAggregateTuples, {}), 5.0);
  EXPECT_DOUBLE_EQ(Minutes(TaskType::kDeleteDanglingValues, {}), 5.0);
  EXPECT_DOUBLE_EQ(Minutes(TaskType::kAddReferencedValues, {}), 5.0);
  EXPECT_DOUBLE_EQ(Minutes(TaskType::kDeleteDanglingTuples, {}), 5.0);
  EXPECT_DOUBLE_EQ(Minutes(TaskType::kUnlinkAllButOneTuple, {}), 5.0);
  EXPECT_DOUBLE_EQ(Minutes(TaskType::kSetValuesToNull, {}), 5.0);
  EXPECT_DOUBLE_EQ(Minutes(TaskType::kMergeValues, {{"repetitions", 503}}),
                   15.0);
}

TEST_F(Table9Test, AddValues) {
  // "it takes a practitioner two minutes to investigate and provide a
  // single missing value" (Section 6.1).
  EXPECT_DOUBLE_EQ(Minutes(TaskType::kAddValues, {{"values", 102}}), 204.0);
  EXPECT_DOUBLE_EQ(Minutes(TaskType::kAddMissingValues, {{"values", 102}}),
                   204.0);
}

TEST_F(Table9Test, WriteMappingFormula) {
  // 3*FKs + 3*PKs + atts + 3*tables; Example 3.8: 3 tables, 2 attrs, 1 PK
  // -> 14 minutes.
  EXPECT_DOUBLE_EQ(
      Minutes(TaskType::kWriteMapping,
              {{"tables", 3}, {"attributes", 2}, {"pks", 1}, {"fks", 0}}),
      14.0);
  EXPECT_DOUBLE_EQ(
      Minutes(TaskType::kWriteMapping,
              {{"tables", 2}, {"attributes", 2}, {"pks", 0}, {"fks", 1}}),
      11.0);
}

TEST_F(Table9Test, MappingToolShortCircuitsToConstant) {
  // Example 3.8: "if a tool can generate this mapping automatically [...]
  // effort = 2 mins".
  settings_.mapping_tool_available = true;
  EXPECT_DOUBLE_EQ(
      Minutes(TaskType::kWriteMapping,
              {{"tables", 3}, {"attributes", 2}, {"pks", 1}}),
      2.0);
}

TEST_F(Table9Test, SettingsMultipliersScaleEstimates) {
  settings_.practitioner_skill = 2.0;
  settings_.criticality = 1.5;
  EXPECT_DOUBLE_EQ(Minutes(TaskType::kRejectTuples, {}), 15.0);
}

TEST_F(Table9Test, GlobalScaleAppliesToEverything) {
  model_.set_global_scale(0.5);
  EXPECT_DOUBLE_EQ(Minutes(TaskType::kRejectTuples, {}), 2.5);
  EXPECT_DOUBLE_EQ(model_.global_scale(), 0.5);
}

TEST(EffortModelTest, EmptyModelEstimatesZero) {
  EffortModel model;
  ExecutionSettings settings;
  Task task = MakeTask(TaskType::kRejectTuples, {});
  EXPECT_DOUBLE_EQ(model.EstimateMinutes(task, settings), 0.0);
  EXPECT_FALSE(model.HasFunction(TaskType::kRejectTuples));
}

TEST(EffortModelTest, SetFunctionOverrides) {
  EffortModel model = EffortModel::PaperDefault();
  model.SetFunction(TaskType::kRejectTuples,
                    [](const Task&, const ExecutionSettings&) {
                      return 99.0;
                    });
  ExecutionSettings settings;
  EXPECT_DOUBLE_EQ(
      model.EstimateMinutes(MakeTask(TaskType::kRejectTuples, {}), settings),
      99.0);
}

TEST(EffortModelTest, DescribeDefaultFunctions) {
  EXPECT_EQ(EffortModel::DescribeDefaultFunction(TaskType::kWriteMapping),
            "3 * #FKs + 3 * #PKs + #atts + 3 * #tables");
  EXPECT_EQ(EffortModel::DescribeDefaultFunction(TaskType::kAggregateValues),
            "3 * #repetitions");
  EXPECT_EQ(
      EffortModel::DescribeDefaultFunction(TaskType::kDropDetachedValues),
      "0");
}

}  // namespace
}  // namespace efes
