// Tests for the CSG cardinality algebra, including exhaustive checks of
// the inference lemmas against brute-force enumeration over small
// concrete relation instances.

#include "efes/csg/cardinality.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>
#include <vector>

namespace efes {
namespace {

TEST(CardinalityTest, FactoriesAndAccessors) {
  EXPECT_EQ(Cardinality::Exactly(1).ToString(), "1");
  EXPECT_EQ(Cardinality::Optional().ToString(), "0..1");
  EXPECT_EQ(Cardinality::AtLeast(1).ToString(), "1..*");
  EXPECT_EQ(Cardinality::Any().ToString(), "0..*");
  EXPECT_EQ(Cardinality::Between(2, 5).ToString(), "2..5");
  EXPECT_EQ(Cardinality::Empty().ToString(), "empty");
  EXPECT_TRUE(Cardinality::Empty().is_empty());
  EXPECT_TRUE(Cardinality::Any().is_unbounded());
  EXPECT_FALSE(Cardinality::Exactly(3).is_unbounded());
}

TEST(CardinalityTest, Contains) {
  Cardinality c = Cardinality::Between(1, 3);
  EXPECT_FALSE(c.Contains(0));
  EXPECT_TRUE(c.Contains(1));
  EXPECT_TRUE(c.Contains(3));
  EXPECT_FALSE(c.Contains(4));
  EXPECT_TRUE(Cardinality::Any().Contains(1000000));
  EXPECT_FALSE(Cardinality::Empty().Contains(0));
}

TEST(CardinalityTest, SubsetRelation) {
  EXPECT_TRUE(Cardinality::Exactly(1).IsSubsetOf(Cardinality::Optional()));
  EXPECT_TRUE(Cardinality::Exactly(1).IsSubsetOf(Cardinality::AtLeast(1)));
  EXPECT_TRUE(Cardinality::Optional().IsSubsetOf(Cardinality::Any()));
  EXPECT_FALSE(Cardinality::Any().IsSubsetOf(Cardinality::Optional()));
  EXPECT_FALSE(
      Cardinality::AtLeast(1).IsSubsetOf(Cardinality::Between(1, 10)));
  EXPECT_TRUE(Cardinality::Empty().IsSubsetOf(Cardinality::Exactly(0)));
  EXPECT_FALSE(Cardinality::Exactly(0).IsSubsetOf(Cardinality::Empty()));
  EXPECT_TRUE(Cardinality::Any().IsSubsetOf(Cardinality::Any()));
}

TEST(CardinalityTest, ProperSubsetIsStrict) {
  EXPECT_TRUE(
      Cardinality::Exactly(1).IsProperSubsetOf(Cardinality::Optional()));
  EXPECT_FALSE(
      Cardinality::Optional().IsProperSubsetOf(Cardinality::Optional()));
}

TEST(CardinalityTest, Intersect) {
  EXPECT_EQ(Cardinality::Between(1, 5).Intersect(Cardinality::Between(3, 9)),
            Cardinality::Between(3, 5));
  EXPECT_TRUE(Cardinality::Exactly(1)
                  .Intersect(Cardinality::Exactly(2))
                  .is_empty());
  EXPECT_EQ(Cardinality::Any().Intersect(Cardinality::Exactly(7)),
            Cardinality::Exactly(7));
}

TEST(CardinalityTest, Hull) {
  EXPECT_EQ(Cardinality::Exactly(1).Hull(Cardinality::Exactly(4)),
            Cardinality::Between(1, 4));
  EXPECT_EQ(Cardinality::Empty().Hull(Cardinality::Exactly(2)),
            Cardinality::Exactly(2));
}

// --- Lemma 1: composition -------------------------------------------------

TEST(Lemma1Test, PaperExamples) {
  // 1 ∘ 1 = 1.
  EXPECT_EQ(Cardinality::Compose(Cardinality::Exactly(1),
                                 Cardinality::Exactly(1)),
            Cardinality::Exactly(1));
  // 1 ∘ 0..1 = 0..1.
  EXPECT_EQ(Cardinality::Compose(Cardinality::Exactly(1),
                                 Cardinality::Optional()),
            Cardinality::Optional());
  // 0..1 ∘ 1..* = 0..* (sgn 0 · 1 = 0).
  EXPECT_EQ(Cardinality::Compose(Cardinality::Optional(),
                                 Cardinality::AtLeast(1)),
            Cardinality::Any());
  // 1..* ∘ 1..* = 1..*.
  EXPECT_EQ(Cardinality::Compose(Cardinality::AtLeast(1),
                                 Cardinality::AtLeast(1)),
            Cardinality::AtLeast(1));
  // 2..3 ∘ 2..3 = 2..9.
  EXPECT_EQ(Cardinality::Compose(Cardinality::Between(2, 3),
                                 Cardinality::Between(2, 3)),
            Cardinality::Between(2, 9));
}

TEST(Lemma1Test, EmptyAbsorbs) {
  EXPECT_TRUE(Cardinality::Compose(Cardinality::Empty(),
                                   Cardinality::Exactly(1))
                  .is_empty());
  EXPECT_TRUE(Cardinality::Compose(Cardinality::Exactly(1),
                                   Cardinality::Empty())
                  .is_empty());
}

TEST(Lemma1Test, ZeroUpperBound) {
  // 0 ∘ anything = 0.
  EXPECT_EQ(Cardinality::Compose(Cardinality::Exactly(0),
                                 Cardinality::AtLeast(5)),
            Cardinality::Exactly(0));
}

// --- Lemma 2: unions --------------------------------------------------------

TEST(Lemma2Test, DisjointDomainsIsHull) {
  EXPECT_EQ(Cardinality::UnionDisjointDomains(Cardinality::Exactly(1),
                                              Cardinality::Between(3, 4)),
            Cardinality::Between(1, 4));
}

TEST(Lemma2Test, DisjointCodomainsAddBounds) {
  EXPECT_EQ(Cardinality::UnionDisjointCodomains(Cardinality::Between(1, 2),
                                                Cardinality::Between(3, 4)),
            Cardinality::Between(4, 6));
  EXPECT_EQ(Cardinality::UnionDisjointCodomains(Cardinality::Exactly(1),
                                                Cardinality::Any()),
            Cardinality::AtLeast(1));
}

TEST(Lemma2Test, OverlappingCodomains) {
  // max(a1,a2) .. b1+b2.
  EXPECT_EQ(Cardinality::UnionOverlapping(Cardinality::Between(1, 2),
                                          Cardinality::Between(3, 4)),
            Cardinality::Between(3, 6));
}

// --- Lemma 3: join -----------------------------------------------------------

TEST(Lemma3Test, JoinBounds) {
  EXPECT_EQ(Cardinality::Join(Cardinality::Between(1, 3),
                              Cardinality::Between(2, 5)),
            Cardinality::Between(1, 3));
  EXPECT_EQ(Cardinality::Join(Cardinality::Any(), Cardinality::Any()),
            Cardinality::AtLeast(1));
}

TEST(Lemma3Test, JoinEmptyWhenMaxZero) {
  EXPECT_TRUE(Cardinality::Join(Cardinality::Exactly(0),
                                Cardinality::AtLeast(1))
                  .is_empty());
}

TEST(Lemma3Test, JoinInverseMultipliesBounds) {
  EXPECT_EQ(Cardinality::JoinInverse(Cardinality::Between(1, 3),
                                     Cardinality::Between(2, 5)),
            Cardinality::Between(2, 15));
  EXPECT_EQ(Cardinality::JoinInverse(Cardinality::Exactly(0),
                                     Cardinality::Any()),
            Cardinality::Exactly(0));
}

// --- Lemma 4: collateral -------------------------------------------------------

TEST(Lemma4Test, CollateralBounds) {
  EXPECT_EQ(Cardinality::Collateral(Cardinality::Between(1, 3),
                                    Cardinality::Between(2, 5)),
            Cardinality::Between(0, 15));
  EXPECT_EQ(Cardinality::Collateral(Cardinality::Any(),
                                    Cardinality::Exactly(1)),
            Cardinality::Any());
}

// --- Brute-force verification of Lemma 1 -------------------------------------
//
// We enumerate all small bipartite link structures A->B->C whose per-
// element out-degrees satisfy κ1 and κ2 and check that the composed
// relation's out-degrees always satisfy Compose(κ1, κ2). This validates
// the *soundness* of the interval inference.

struct SmallWorld {
  // links1[a] = set of b's; links2[b] = set of c's.
  std::vector<std::set<int>> links1;
  std::vector<std::set<int>> links2;
};

/// All subsets of {0..n-1} with size within [lo, hi].
std::vector<std::set<int>> SubsetsWithin(int n, uint64_t lo, uint64_t hi) {
  std::vector<std::set<int>> result;
  for (int mask = 0; mask < (1 << n); ++mask) {
    std::set<int> subset;
    for (int i = 0; i < n; ++i) {
      if (mask & (1 << i)) subset.insert(i);
    }
    if (subset.size() >= lo && subset.size() <= hi) {
      result.push_back(std::move(subset));
    }
  }
  return result;
}

class ComposeSoundnessTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ComposeSoundnessTest, ComposedDegreesWithinInferredBounds) {
  auto [k1_index, k2_index] = GetParam();
  const Cardinality kChoices[] = {
      Cardinality::Exactly(0),   Cardinality::Exactly(1),
      Cardinality::Optional(),   Cardinality::Between(1, 2),
      Cardinality::Between(0, 2)};
  Cardinality k1 = kChoices[k1_index];
  Cardinality k2 = kChoices[k2_index];
  Cardinality composed = Cardinality::Compose(k1, k2);

  constexpr int kB = 2;
  constexpr int kC = 2;
  // One element in A; every element of B gets links to C satisfying κ2.
  uint64_t k2_hi = std::min<uint64_t>(k2.max(), kC);
  for (const std::set<int>& a_links : SubsetsWithin(kB, k1.min(),
                                                    std::min<uint64_t>(
                                                        k1.max(), kB))) {
    std::vector<std::vector<std::set<int>>> b_options(kB);
    for (int b = 0; b < kB; ++b) {
      b_options[b] = SubsetsWithin(kC, k2.min(), k2_hi);
      ASSERT_FALSE(b_options[b].empty());
    }
    // Enumerate the cross product of B-side choices.
    size_t combos = b_options[0].size() * b_options[1].size();
    for (size_t combo = 0; combo < combos; ++combo) {
      const std::set<int>& b0 = b_options[0][combo % b_options[0].size()];
      const std::set<int>& b1 = b_options[1][combo / b_options[0].size()];
      std::set<int> reachable;
      if (a_links.count(0)) reachable.insert(b0.begin(), b0.end());
      if (a_links.count(1)) reachable.insert(b1.begin(), b1.end());
      EXPECT_TRUE(composed.Contains(reachable.size()))
          << "k1=" << k1.ToString() << " k2=" << k2.ToString()
          << " composed=" << composed.ToString()
          << " observed=" << reachable.size();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, ComposeSoundnessTest,
    ::testing::Combine(::testing::Range(0, 5), ::testing::Range(0, 5)));

}  // namespace
}  // namespace efes
