// Tests for the shared string helpers.

#include "efes/common/string_util.h"

#include <gtest/gtest.h>

namespace efes {
namespace {

TEST(SplitTest, BasicSplit) {
  EXPECT_EQ(Split("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, KeepsEmptyPieces) {
  EXPECT_EQ(Split(",a,", ','), (std::vector<std::string>{"", "a", ""}));
}

TEST(SplitTest, NoDelimiterYieldsWholeInput) {
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"solo"}, ", "), "solo");
}

TEST(TrimTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("inner space kept"), "inner space kept");
}

TEST(ToLowerTest, LowersAscii) {
  EXPECT_EQ(ToLower("MiXeD123"), "mixed123");
}

TEST(PrefixSuffixTest, StartsAndEnds) {
  EXPECT_TRUE(StartsWith("prefix_rest", "prefix"));
  EXPECT_FALSE(StartsWith("pre", "prefix"));
  EXPECT_TRUE(EndsWith("file.csv", ".csv"));
  EXPECT_FALSE(EndsWith("csv", ".csv"));
}

TEST(ParseInt64Test, ParsesValidIntegers) {
  EXPECT_EQ(ParseInt64("42"), 42);
  EXPECT_EQ(ParseInt64("-17"), -17);
  EXPECT_EQ(ParseInt64("  99  "), 99);
}

TEST(ParseInt64Test, RejectsGarbage) {
  EXPECT_FALSE(ParseInt64("").has_value());
  EXPECT_FALSE(ParseInt64("12abc").has_value());
  EXPECT_FALSE(ParseInt64("1.5").has_value());
  EXPECT_FALSE(ParseInt64("'98").has_value());
  EXPECT_FALSE(ParseInt64("999999999999999999999999").has_value());
}

TEST(ParseDoubleTest, ParsesValidDoubles) {
  EXPECT_DOUBLE_EQ(*ParseDouble("1.5"), 1.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("-2e3"), -2000.0);
  EXPECT_DOUBLE_EQ(*ParseDouble("7"), 7.0);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  EXPECT_FALSE(ParseDouble("").has_value());
  EXPECT_FALSE(ParseDouble("1.5x").has_value());
  EXPECT_FALSE(ParseDouble("12--34").has_value());
}

TEST(FormatDoubleTest, FormatsCompactly) {
  EXPECT_EQ(FormatDouble(3.0), "3");
  EXPECT_EQ(FormatDouble(2.5), "2.5");
}

TEST(EditDistanceTest, KnownDistances) {
  EXPECT_EQ(EditDistance("", ""), 0u);
  EXPECT_EQ(EditDistance("abc", "abc"), 0u);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("abc", ""), 3u);
  EXPECT_EQ(EditDistance("", "xyz"), 3u);
}

TEST(EditDistanceTest, Symmetric) {
  EXPECT_EQ(EditDistance("flaw", "lawn"), EditDistance("lawn", "flaw"));
}

TEST(NameSimilarityTest, IdenticalIsOne) {
  EXPECT_DOUBLE_EQ(NameSimilarity("title", "title"), 1.0);
  EXPECT_DOUBLE_EQ(NameSimilarity("", ""), 1.0);
}

TEST(NameSimilarityTest, CaseInsensitive) {
  EXPECT_DOUBLE_EQ(NameSimilarity("Title", "title"), 1.0);
}

TEST(NameSimilarityTest, DisjointIsLow) {
  EXPECT_LT(NameSimilarity("abc", "xyz"), 0.01);
}

TEST(TokenizeIdentifierTest, SplitsSeparatorsAndCamelCase) {
  EXPECT_EQ(TokenizeIdentifier("artist_list"),
            (std::vector<std::string>{"artist", "list"}));
  EXPECT_EQ(TokenizeIdentifier("artistList"),
            (std::vector<std::string>{"artist", "list"}));
  EXPECT_EQ(TokenizeIdentifier("release-group.id"),
            (std::vector<std::string>{"release", "group", "id"}));
}

TEST(TokenJaccardTest, OverlapScores) {
  EXPECT_DOUBLE_EQ(TokenJaccard("artist_list", "list_artist"), 1.0);
  EXPECT_DOUBLE_EQ(TokenJaccard("artist_list", "artist_name"), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(TokenJaccard("abc", "xyz"), 0.0);
}

}  // namespace
}  // namespace efes
