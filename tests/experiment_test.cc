// Tests for the experiment machinery: the RMSE formula, calibration
// fitting, and the cross-validated reproduction of Section 6.2.

#include <cmath>

#include <gtest/gtest.h>
#include <memory>

#include "efes/common/string_util.h"
#include "efes/experiment/default_pipeline.h"
#include "efes/experiment/metrics.h"
#include "efes/experiment/study.h"

namespace efes {
namespace {

TEST(RelativeRmseTest, PerfectEstimatesZeroError) {
  EXPECT_DOUBLE_EQ(RelativeRmse({10, 20}, {10, 20}), 0.0);
}

TEST(RelativeRmseTest, PaperFormula) {
  // Two scenarios, relative errors 0.5 and -1.0:
  // sqrt((0.25 + 1.0) / 2).
  EXPECT_NEAR(RelativeRmse({10, 10}, {5, 20}),
              std::sqrt((0.25 + 1.0) / 2.0), 1e-12);
}

TEST(RelativeRmseTest, SkipsZeroMeasurements) {
  EXPECT_NEAR(RelativeRmse({0, 10}, {999, 5}), 0.5, 1e-12);
}

TEST(RelativeRmseTest, EmptyInputIsZero) {
  EXPECT_DOUBLE_EQ(RelativeRmse({}, {}), 0.0);
}

TEST(FitCalibrationScaleTest, RecoversExactScale) {
  // measured = 3 * raw for all points -> scale must be 3.
  EXPECT_NEAR(FitCalibrationScale({30, 60, 90}, {10, 20, 30}), 3.0, 1e-12);
}

TEST(FitCalibrationScaleTest, DegenerateInputsGiveUnitScale) {
  EXPECT_DOUBLE_EQ(FitCalibrationScale({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(FitCalibrationScale({10}, {0}), 1.0);
}

TEST(FitCalibrationScaleTest, MinimizesRelativeError) {
  std::vector<double> measured = {100, 200};
  std::vector<double> raw = {50, 150};
  double best = FitCalibrationScale(measured, raw);
  double best_error = RelativeRmse(measured, {best * 50, best * 150});
  for (double s : {best * 0.9, best * 1.1, best * 0.5, best * 2.0}) {
    EXPECT_LE(best_error, RelativeRmse(measured, {s * 50, s * 150}));
  }
}

TEST(DefaultPipelineTest, HasFourModules) {
  EfesEngine engine = MakeDefaultEngine();
  EXPECT_EQ(engine.module_count(), 4u);
}

TEST(DefaultPipelineTest, ModuleSubsetsAreValidatedAndCanonicallyOrdered) {
  auto subset = MakeEngineForModules("values,mapping");
  ASSERT_TRUE(subset.ok()) << subset.status();
  EXPECT_EQ(subset->module_count(), 2u);

  auto unknown = MakeEngineForModules("mapping,entities");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kInvalidArgument);

  auto duplicate = MakeEngineForModules("dedup,dedup");
  ASSERT_FALSE(duplicate.ok());
  EXPECT_EQ(duplicate.status().code(), StatusCode::kInvalidArgument);
}

class CrossValidationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto studies = RunCrossValidatedStudies();
    ASSERT_TRUE(studies.ok());
    studies_ = std::make_unique<CrossValidatedStudies>(std::move(*studies));
  }
  static void TearDownTestSuite() {
    studies_.reset();
  }
  static std::unique_ptr<CrossValidatedStudies> studies_;
};

std::unique_ptr<CrossValidatedStudies> CrossValidationTest::studies_;

TEST_F(CrossValidationTest, EightOutcomesPerDomain) {
  EXPECT_EQ(studies_->bibliographic.outcomes.size(), 8u);
  EXPECT_EQ(studies_->music.outcomes.size(), 8u);
}

TEST_F(CrossValidationTest, EfesBeatsCountingInBothDomains) {
  // The paper's headline: EFES outperforms attribute counting, with the
  // larger margin in the value-heavy bibliographic domain.
  EXPECT_LT(studies_->bibliographic.efes_rmse,
            studies_->bibliographic.counting_rmse);
  EXPECT_LT(studies_->music.efes_rmse, studies_->music.counting_rmse);
  EXPECT_LT(studies_->overall_efes_rmse, studies_->overall_counting_rmse);
}

TEST_F(CrossValidationTest, OverallImprovementAtLeastFactor1Point5) {
  EXPECT_GT(studies_->overall_counting_rmse / studies_->overall_efes_rmse,
            1.5);
}

TEST_F(CrossValidationTest, IdentityScenarioHasNoEfesCleaningEffort) {
  // "source and target database have the same schema and similar data, so
  // there are no heterogeneities to deal with. While we can detect this,
  // the counting approach estimates considerable cleaning effort."
  for (const StudyResult* study :
       {&studies_->bibliographic, &studies_->music}) {
    for (const ScenarioOutcome& outcome : study->outcomes) {
      if (outcome.scenario == "s4-s4" || outcome.scenario == "d1-d2") {
        EXPECT_NEAR(outcome.efes_structure, 0.0, 1e-9) << outcome.scenario;
        EXPECT_NEAR(outcome.efes_values, 0.0, 1e-9) << outcome.scenario;
        EXPECT_GT(outcome.counting_cleaning, 0.0) << outcome.scenario;
      }
    }
  }
}

TEST_F(CrossValidationTest, MusicIsMappingDominatedForEfes) {
  // Section 6.2: "in this domain, there are fewer problems at the data
  // level and the effort is dominated by the mapping".
  double mapping = 0.0;
  double cleaning = 0.0;
  for (const ScenarioOutcome& outcome : studies_->music.outcomes) {
    if (outcome.quality != ExpectedQuality::kLowEffort) continue;
    mapping += outcome.efes_mapping;
    cleaning += outcome.efes_structure + outcome.efes_values;
  }
  EXPECT_GT(mapping, cleaning);
}

TEST_F(CrossValidationTest, BibliographicCleaningDominatesAtHighQuality) {
  double mapping = 0.0;
  double cleaning = 0.0;
  for (const ScenarioOutcome& outcome : studies_->bibliographic.outcomes) {
    if (outcome.quality != ExpectedQuality::kHighQuality) continue;
    mapping += outcome.efes_mapping;
    cleaning += outcome.efes_structure + outcome.efes_values;
  }
  EXPECT_GT(cleaning, mapping);
}

TEST_F(CrossValidationTest, StudyTextRendersFigureTables) {
  std::string text = studies_->bibliographic.ToText();
  EXPECT_NE(text.find("Bibliographic"), std::string::npos);
  EXPECT_NE(text.find("s1-s2"), std::string::npos);
  EXPECT_NE(text.find("rmse(Efes)"), std::string::npos);
  EXPECT_NE(text.find("Measured"), std::string::npos);
}

TEST_F(CrossValidationTest, BarChartRendersSegmentedBars) {
  std::string chart = studies_->bibliographic.ToBarChart(40);
  EXPECT_NE(chart.find("Bibliographic"), std::string::npos);
  EXPECT_NE(chart.find("Efes     |"), std::string::npos);
  EXPECT_NE(chart.find("Measured |"), std::string::npos);
  EXPECT_NE(chart.find("Counting |"), std::string::npos);
  // At least one segmented bar contains mapping and value segments.
  EXPECT_NE(chart.find('M'), std::string::npos);
  EXPECT_NE(chart.find('V'), std::string::npos);
  EXPECT_NE(chart.find('#'), std::string::npos);
  // No bar exceeds the requested width (label + "  " + total allowed).
  for (const std::string& line : Split(chart, '\n')) {
    size_t bar_start = line.find('|');
    if (bar_start == std::string::npos) continue;
    size_t bar_end = line.find("  ", bar_start);
    ASSERT_NE(bar_end, std::string::npos) << line;
    EXPECT_LE(bar_end - bar_start - 1, 40u + 2) << line;
  }
}

TEST_F(CrossValidationTest, DeterministicAcrossRuns) {
  auto again = RunCrossValidatedStudies();
  ASSERT_TRUE(again.ok());
  EXPECT_DOUBLE_EQ(again->overall_efes_rmse, studies_->overall_efes_rmse);
  EXPECT_DOUBLE_EQ(again->overall_counting_rmse,
                   studies_->overall_counting_rmse);
}

}  // namespace
}  // namespace efes
