// Tests for functional-dependency support across the stack: constraint
// model, instance checking, DDL round trip, profiling discovery,
// structure-conflict detection, repair planning, and execution.

#include <gtest/gtest.h>

#include "efes/execute/integration_executor.h"
#include "efes/profiling/constraint_discovery.h"
#include "efes/relational/schema_text.h"
#include "efes/structure/repair_planner.h"
#include "efes/structure/structure_module.h"

namespace efes {
namespace {

TEST(FdConstraintTest, FactoryAndToString) {
  Constraint fd = Constraint::FunctionalDependency(
      "cities", {"zip"}, {"city", "state"});
  EXPECT_EQ(fd.kind, ConstraintKind::kFunctionalDependency);
  EXPECT_EQ(fd.ToString(),
            "FUNCTIONAL DEPENDENCY cities(zip) DETERMINES (city, state)");
}

TEST(FdConstraintTest, ValidateChecksBothSides) {
  Schema schema("s");
  (void)schema.AddRelation(RelationDef(
      "cities", {{"zip", DataType::kText}, {"city", DataType::kText}}));
  schema.AddConstraint(
      Constraint::FunctionalDependency("cities", {"zip"}, {"city"}));
  EXPECT_TRUE(schema.Validate().ok());

  Schema bad("b");
  (void)bad.AddRelation(RelationDef("cities", {{"zip", DataType::kText}}));
  bad.AddConstraint(
      Constraint::FunctionalDependency("cities", {"zip"}, {"ghost"}));
  EXPECT_FALSE(bad.Validate().ok());
}

Database MakeCitiesDatabase(bool with_violation) {
  Schema schema("db");
  (void)schema.AddRelation(RelationDef(
      "cities", {{"zip", DataType::kText}, {"city", DataType::kText}}));
  schema.AddConstraint(
      Constraint::FunctionalDependency("cities", {"zip"}, {"city"}));
  auto db = Database::Create(std::move(schema));
  Table* cities = *db->mutable_table("cities");
  EXPECT_TRUE(
      cities->AppendRow({Value::Text("10115"), Value::Text("Berlin")}).ok());
  EXPECT_TRUE(
      cities->AppendRow({Value::Text("10115"), Value::Text("Berlin")}).ok());
  EXPECT_TRUE(
      cities->AppendRow({Value::Text("80331"), Value::Text("Munich")}).ok());
  if (with_violation) {
    EXPECT_TRUE(
        cities->AppendRow({Value::Text("10115"), Value::Text("Brelin")})
            .ok());
  }
  return std::move(*db);
}

TEST(FdInstanceTest, ViolationCounting) {
  EXPECT_TRUE(MakeCitiesDatabase(false).SatisfiesConstraints());
  Database db = MakeCitiesDatabase(true);
  auto violations = db.FindConstraintViolations();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].constraint.kind,
            ConstraintKind::kFunctionalDependency);
  // All three rows of the 10115 group are in a violating group.
  EXPECT_EQ(violations[0].violating_rows, 3u);
}

TEST(FdDdlTest, RoundTrip) {
  auto schema = ParseSchemaText(R"(
CREATE TABLE cities (
  zip TEXT NOT NULL,
  city TEXT,
  state TEXT,
  FUNCTIONAL DEPENDENCY (zip) DETERMINES (city, state)
);
)",
                                "s");
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  ASSERT_EQ(schema->constraints().size(), 2u);
  const Constraint& fd = schema->constraints()[1];
  EXPECT_EQ(fd.kind, ConstraintKind::kFunctionalDependency);
  EXPECT_EQ(fd.attributes, (std::vector<std::string>{"zip"}));
  EXPECT_EQ(fd.referenced_attributes,
            (std::vector<std::string>{"city", "state"}));

  auto reparsed = ParseSchemaText(WriteSchemaText(*schema), "s");
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->constraints().size(), schema->constraints().size());
  EXPECT_EQ(reparsed->constraints()[1], fd);
}

TEST(FdDiscoveryTest, MinesExactUnaryFds) {
  Schema schema("raw");
  (void)schema.AddRelation(RelationDef(
      "orders", {{"zip", DataType::kText},
                 {"city", DataType::kText},
                 {"amount", DataType::kInteger}}));
  auto db = Database::Create(std::move(schema));
  Table* orders = *db->mutable_table("orders");
  const char* kZips[] = {"10115", "80331", "50667", "20095"};
  const char* kCities[] = {"Berlin", "Munich", "Cologne", "Hamburg"};
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(orders
                    ->AppendRow({Value::Text(kZips[i % 4]),
                                 Value::Text(kCities[i % 4]),
                                 Value::Integer(i)})
                    .ok());
  }
  auto discovered = DiscoverConstraints(*db);
  bool zip_to_city = false;
  bool city_to_amount = false;
  for (const DiscoveredConstraint& d : discovered) {
    if (d.constraint.kind != ConstraintKind::kFunctionalDependency) {
      continue;
    }
    if (d.constraint.attributes == std::vector<std::string>{"zip"} &&
        d.constraint.referenced_attributes ==
            std::vector<std::string>{"city"}) {
      zip_to_city = true;
    }
    if (d.constraint.attributes == std::vector<std::string>{"city"} &&
        d.constraint.referenced_attributes ==
            std::vector<std::string>{"amount"}) {
      city_to_amount = true;  // must NOT hold: amounts vary per city
    }
  }
  EXPECT_TRUE(zip_to_city);
  EXPECT_FALSE(city_to_amount);
}

TEST(FdDiscoveryTest, CanBeDisabled) {
  Database db = MakeCitiesDatabase(false);
  DiscoveryOptions options;
  options.min_row_count = 2;
  options.discover_functional_dependencies = false;
  for (const DiscoveredConstraint& d : DiscoverConstraints(db, options)) {
    EXPECT_NE(d.constraint.kind, ConstraintKind::kFunctionalDependency);
  }
}

/// Target declares zip -> city; the source's data disagrees for some
/// zips.
IntegrationScenario MakeFdScenario(size_t conflicting_groups) {
  Schema target_schema("t");
  (void)target_schema.AddRelation(RelationDef(
      "addresses", {{"zip", DataType::kText}, {"city", DataType::kText}}));
  target_schema.AddConstraint(
      Constraint::FunctionalDependency("addresses", {"zip"}, {"city"}));

  Schema source_schema("s");
  (void)source_schema.AddRelation(RelationDef(
      "contacts", {{"postcode", DataType::kText},
                   {"town", DataType::kText}}));
  auto source = Database::Create(std::move(source_schema));
  Table* contacts = *source->mutable_table("contacts");
  for (size_t i = 0; i < 30; ++i) {
    std::string zip = "Z" + std::to_string(i % 10);
    // The first `conflicting_groups` zips get inconsistent town spellings.
    std::string town = (i % 10) < conflicting_groups && i >= 10
                           ? "Town" + std::to_string(i % 10) + "-variant"
                           : "Town" + std::to_string(i % 10);
    EXPECT_TRUE(
        contacts->AppendRow({Value::Text(zip), Value::Text(town)}).ok());
  }

  CorrespondenceSet correspondences;
  correspondences.AddRelation("contacts", "addresses");
  correspondences.AddAttribute("contacts", "postcode", "addresses", "zip");
  correspondences.AddAttribute("contacts", "town", "addresses", "city");

  IntegrationScenario scenario(
      "fd", std::move(*Database::Create(std::move(target_schema))));
  scenario.AddSource(std::move(*source), std::move(correspondences));
  return scenario;
}

TEST(FdDetectorTest, CountsDisagreeingDeterminantGroups) {
  IntegrationScenario scenario = MakeFdScenario(3);
  CsgGraph graph;
  auto assessments = DetectStructureConflicts(scenario, &graph);
  ASSERT_TRUE(assessments.ok());
  bool found = false;
  for (const StructureConflict& conflict : (*assessments)[0].conflicts) {
    if (conflict.target_constraint.find("FUNCTIONAL DEPENDENCY") !=
        std::string::npos) {
      found = true;
      EXPECT_EQ(conflict.kind,
                StructuralConflictKind::kMultipleAttributeValues);
      // 3 zips x 3 rows each are in disagreeing groups.
      EXPECT_EQ(conflict.violation_count, 9u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(FdDetectorTest, CleanDataNoConflict) {
  IntegrationScenario scenario = MakeFdScenario(0);
  CsgGraph graph;
  auto assessments = DetectStructureConflicts(scenario, &graph);
  ASSERT_TRUE(assessments.ok());
  for (const StructureConflict& conflict : (*assessments)[0].conflicts) {
    EXPECT_EQ(conflict.target_constraint.find("FUNCTIONAL DEPENDENCY"),
              std::string::npos);
  }
}

TEST(FdDetectorTest, SourceFdShortCircuits) {
  IntegrationScenario scenario = MakeFdScenario(3);
  // Declaring the FD on the source makes the conflict statically
  // impossible — even though the data would disagree, the detector must
  // trust the declared constraint and skip the scan (the paper's
  // assumption: instances are valid wrt. their schemas).
  Schema patched = scenario.sources[0].database.schema();
  patched.AddConstraint(Constraint::FunctionalDependency(
      "contacts", {"postcode"}, {"town"}));
  // Rebuild the source database under the patched schema.
  auto rebuilt = Database::Create(patched);
  ASSERT_TRUE(rebuilt.ok());
  const Table* contacts = *scenario.sources[0].database.table("contacts");
  Table* destination = *rebuilt->mutable_table("contacts");
  for (size_t r = 0; r < contacts->row_count(); ++r) {
    ASSERT_TRUE(destination->AppendRow(contacts->Row(r)).ok());
  }
  scenario.sources[0].database = std::move(*rebuilt);

  CsgGraph graph;
  auto assessments = DetectStructureConflicts(scenario, &graph);
  ASSERT_TRUE(assessments.ok());
  for (const StructureConflict& conflict : (*assessments)[0].conflicts) {
    EXPECT_EQ(conflict.target_constraint.find("FUNCTIONAL DEPENDENCY"),
              std::string::npos);
  }
}

TEST(FdPlannerTest, PlansMergeValuesForFdConflicts) {
  IntegrationScenario scenario = MakeFdScenario(3);
  StructureModule module;
  auto report = module.AssessComplexity(scenario);
  ASSERT_TRUE(report.ok());
  auto tasks =
      module.PlanTasks(**report, ExpectedQuality::kHighQuality, {});
  ASSERT_TRUE(tasks.ok());
  bool merge = false;
  for (const Task& task : *tasks) {
    if (task.type == TaskType::kMergeValues &&
        task.subject == "addresses.city") {
      merge = true;
      EXPECT_DOUBLE_EQ(task.Param(task_params::kRepetitions), 9.0);
    }
  }
  EXPECT_TRUE(merge);
}

TEST(FdExecutorTest, RepairReconcilesDependents) {
  IntegrationScenario scenario = MakeFdScenario(3);
  for (ExpectedQuality quality :
       {ExpectedQuality::kLowEffort, ExpectedQuality::kHighQuality}) {
    IntegrationExecutor::Options options;
    options.quality = quality;
    IntegrationExecutor executor(options);
    ExecutionReport report;
    auto result = executor.Execute(scenario, &report);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result->SatisfiesConstraints());
    if (quality == ExpectedQuality::kHighQuality) {
      EXPECT_GT(report.values_merged, 0u);
    } else {
      EXPECT_GT(report.tuples_rejected, 0u);
    }
  }
}

}  // namespace
}  // namespace efes
