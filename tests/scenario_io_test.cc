// Tests for scenario directory persistence.

#include "efes/scenario/scenario_io.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "efes/common/file_io.h"
#include "efes/experiment/default_pipeline.h"
#include "efes/scenario/paper_example.h"

#include "test_paths.h"

namespace efes {
namespace {

TEST(CorrespondenceLineTest, ParsesBothGranularities) {
  auto relation = ParseCorrespondenceLine("albums -> records");
  ASSERT_TRUE(relation.ok());
  EXPECT_TRUE(relation->is_relation_level());
  EXPECT_EQ(relation->source_relation, "albums");
  EXPECT_EQ(relation->target_relation, "records");

  auto attribute = ParseCorrespondenceLine("albums.name -> records.title");
  ASSERT_TRUE(attribute.ok());
  EXPECT_TRUE(attribute->is_attribute_level());
  EXPECT_EQ(attribute->source_attribute, "name");
  EXPECT_EQ(attribute->target_attribute, "title");
}

TEST(CorrespondenceLineTest, RejectsMalformedLines) {
  EXPECT_FALSE(ParseCorrespondenceLine("no arrow here").ok());
  EXPECT_FALSE(ParseCorrespondenceLine(" -> records").ok());
  EXPECT_FALSE(ParseCorrespondenceLine("albums -> ").ok());
  EXPECT_FALSE(ParseCorrespondenceLine("albums.name -> records").ok());
}

TEST(CorrespondenceLineTest, ToleratesWhitespaceEverywhere) {
  auto packed = ParseCorrespondenceLine("albums.name->records.title");
  ASSERT_TRUE(packed.ok());
  EXPECT_EQ(packed->source_attribute, "name");

  auto spread =
      ParseCorrespondenceLine("  albums .  name  ->  records . title  ");
  ASSERT_TRUE(spread.ok()) << spread.status().ToString();
  EXPECT_EQ(spread->source_relation, "albums");
  EXPECT_EQ(spread->source_attribute, "name");
  EXPECT_EQ(spread->target_relation, "records");
  EXPECT_EQ(spread->target_attribute, "title");

  auto relation = ParseCorrespondenceLine("\talbums\t->\trecords\t");
  ASSERT_TRUE(relation.ok());
  EXPECT_TRUE(relation->is_relation_level());
}

TEST(CorrespondenceLineTest, RejectsEmptyNames) {
  auto no_relation = ParseCorrespondenceLine(".name -> records.title");
  ASSERT_FALSE(no_relation.ok());
  EXPECT_NE(no_relation.status().message().find("empty relation name"),
            std::string::npos);

  auto no_attribute = ParseCorrespondenceLine("albums. -> records.title");
  ASSERT_FALSE(no_attribute.ok());
  EXPECT_NE(no_attribute.status().message().find("empty attribute name"),
            std::string::npos);

  EXPECT_FALSE(ParseCorrespondenceLine("albums.name -> .title").ok());
  EXPECT_FALSE(ParseCorrespondenceLine("albums.name -> records.").ok());
  EXPECT_FALSE(ParseCorrespondenceLine(" . -> . ").ok());
}

TEST(CorrespondencesDocTest, RoundTrip) {
  CorrespondenceSet set;
  set.AddRelation("albums", "records");
  set.AddAttribute("albums", "name", "records", "title");
  set.AddAttribute("songs", "length", "tracks", "duration");
  auto reparsed = ParseCorrespondences(WriteCorrespondences(set));
  ASSERT_TRUE(reparsed.ok());
  ASSERT_EQ(reparsed->size(), 3u);
  EXPECT_EQ(reparsed->all()[0].ToString(), "albums -> records");
  EXPECT_EQ(reparsed->all()[2].ToString(),
            "songs.length -> tracks.duration");
}

TEST(CorrespondencesDocTest, CommentsAndBlanksIgnored) {
  auto set = ParseCorrespondences(R"(
# curated by hand
albums -> records

albums.name -> records.title   # the title feed
)");
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set->size(), 2u);
}

class ScenarioIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    directory_ = TestScratchPath("efes_scenario_io_test");
    std::filesystem::remove_all(directory_);
  }
  void TearDown() override { std::filesystem::remove_all(directory_); }

  std::string directory_;
};

TEST_F(ScenarioIoTest, SaveLoadRoundTripPreservesEverything) {
  PaperExampleOptions options;
  options.album_count = 120;
  options.multi_artist_albums = 30;
  options.orphan_artists = 10;
  options.song_count = 150;
  auto original = MakePaperExample(options);
  ASSERT_TRUE(original.ok());

  ASSERT_TRUE(SaveScenario(*original, directory_).ok());
  auto loaded = LoadScenario(directory_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  // Schemas.
  EXPECT_EQ(loaded->target.schema().relations().size(),
            original->target.schema().relations().size());
  EXPECT_EQ(loaded->target.schema().constraints().size(),
            original->target.schema().constraints().size());
  ASSERT_EQ(loaded->sources.size(), 1u);
  EXPECT_EQ(loaded->sources[0].correspondences.size(),
            original->sources[0].correspondences.size());

  // Data, cell by cell for one table.
  const Table* original_albums = *original->sources[0].database.table(
      "albums");
  const Table* loaded_albums = *loaded->sources[0].database.table("albums");
  ASSERT_EQ(loaded_albums->row_count(), original_albums->row_count());
  for (size_t r = 0; r < original_albums->row_count(); ++r) {
    for (size_t c = 0; c < original_albums->column_count(); ++c) {
      EXPECT_EQ(loaded_albums->at(r, c), original_albums->at(r, c));
    }
  }
}

TEST_F(ScenarioIoTest, LoadedScenarioEstimatesIdentically) {
  PaperExampleOptions options;
  options.album_count = 150;
  options.multi_artist_albums = 40;
  options.orphan_artists = 12;
  options.song_count = 200;
  auto original = MakePaperExample(options);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(SaveScenario(*original, directory_).ok());
  auto loaded = LoadScenario(directory_);
  ASSERT_TRUE(loaded.ok());

  EfesEngine engine = MakeDefaultEngine();
  auto original_estimate =
      engine.Run(*original, ExpectedQuality::kHighQuality);
  auto loaded_estimate =
      engine.Run(*loaded, ExpectedQuality::kHighQuality);
  ASSERT_TRUE(original_estimate.ok());
  ASSERT_TRUE(loaded_estimate.ok());
  EXPECT_DOUBLE_EQ(loaded_estimate->estimate.TotalMinutes(),
                   original_estimate->estimate.TotalMinutes());
}

TEST_F(ScenarioIoTest, LoadMissingDirectoryFails) {
  auto loaded = LoadScenario(directory_ + "/does_not_exist");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

/// Lenient loads of damaged scenario directories: strict keeps the
/// historical fail-fast contract, recover salvages what it can and
/// reports the rest as DataIssues.
class LenientLoadTest : public ScenarioIoTest {
 protected:
  void SetUp() override {
    ScenarioIoTest::SetUp();
    PaperExampleOptions options;
    options.album_count = 30;
    options.song_count = 40;
    auto scenario = MakePaperExample(options);
    ASSERT_TRUE(scenario.ok());
    ASSERT_TRUE(SaveScenario(*scenario, directory_).ok());
    // The scenario has exactly one source; find its directory.
    for (const auto& entry : std::filesystem::directory_iterator(
             directory_ + "/sources")) {
      source_dir_ = entry.path().string();
    }
    ASSERT_FALSE(source_dir_.empty());
  }

  static void Append(const std::string& path, const std::string& text) {
    // EFES_LINT_ALLOW(raw-file-write): deliberately corrupts a file in place to exercise recovery
    std::ofstream out(path, std::ios::app);
    out << text;
  }

  static LoadOptions Recover() {
    LoadOptions options;
    options.mode = LoadOptions::Mode::kRecover;
    return options;
  }

  std::string source_dir_;
};

TEST_F(LenientLoadTest, RecoversFromCorruptCorrespondences) {
  Append(source_dir_ + "/correspondences.txt",
         "no arrow here\nghost_rel -> no_such_target\n");

  // Strict: the unparseable line aborts the load.
  EXPECT_FALSE(LoadScenario(directory_).ok());

  ScenarioLoadReport report;
  auto loaded = LoadScenario(directory_, Recover(), &report);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(report.degraded);
  ASSERT_GE(report.issues.size(), 2u);
  EXPECT_EQ(loaded->sources.size(), 1u);
  // The salvaged scenario still validates and estimates.
  EXPECT_TRUE(loaded->Validate().ok());
  bool saw_skipped = false;
  bool saw_dropped = false;
  for (const DataIssue& issue : report.issues) {
    if (issue.message.find("line skipped") != std::string::npos) {
      saw_skipped = true;
    }
    if (issue.message.find("correspondence dropped") != std::string::npos) {
      saw_dropped = true;
    }
  }
  EXPECT_TRUE(saw_skipped);
  EXPECT_TRUE(saw_dropped);
}

TEST_F(LenientLoadTest, SkipsSourceWithBrokenSchema) {
  ASSERT_TRUE(
      WriteFileAtomic(source_dir_ + "/schema.sql", "NOT DDL AT ALL(((")
          .ok());

  EXPECT_FALSE(LoadScenario(directory_).ok());

  ScenarioLoadReport report;
  auto loaded = LoadScenario(directory_, Recover(), &report);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(report.degraded);
  EXPECT_TRUE(loaded->sources.empty());
  bool saw_source_skipped = false;
  for (const DataIssue& issue : report.issues) {
    if (issue.message.find("source skipped") != std::string::npos) {
      saw_source_skipped = true;
    }
  }
  EXPECT_TRUE(saw_source_skipped);
}

TEST_F(LenientLoadTest, RepairsMalformedTableCsv) {
  // A trailing short row: strict rejects the arity mismatch, recover
  // pads it and reports what happened.
  Append(source_dir_ + "/data/albums.csv", "zz\n");

  EXPECT_FALSE(LoadScenario(directory_).ok());

  ScenarioLoadReport report;
  auto loaded = LoadScenario(directory_, Recover(), &report);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(report.degraded);
  EXPECT_FALSE(report.issues.empty());
}

TEST_F(LenientLoadTest, CleanDirectoryIsNotDegraded) {
  ScenarioLoadReport report;
  auto loaded = LoadScenario(directory_, Recover(), &report);
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(report.degraded);
  EXPECT_TRUE(report.issues.empty());

  // Recover mode on a clean directory loads the same scenario as strict.
  auto strict = LoadScenario(directory_);
  ASSERT_TRUE(strict.ok());
  EXPECT_EQ(loaded->sources.size(), strict->sources.size());
  EXPECT_EQ(loaded->sources[0].correspondences.size(),
            strict->sources[0].correspondences.size());
  EXPECT_EQ(loaded->sources[0].database.TotalRowCount(),
            strict->sources[0].database.TotalRowCount());
}

TEST_F(ScenarioIoTest, EmptyTablesNeedNoCsvFiles) {
  // A scenario whose source tables are empty saves without data files and
  // loads back.
  Schema target_schema("t");
  (void)target_schema.AddRelation(
      RelationDef("t", {{"a", DataType::kText}}));
  Schema source_schema("s");
  (void)source_schema.AddRelation(
      RelationDef("s", {{"a", DataType::kText}}));
  IntegrationScenario scenario(
      "empty", std::move(*Database::Create(std::move(target_schema))));
  scenario.AddSource(std::move(*Database::Create(std::move(source_schema))),
                     CorrespondenceSet());
  ASSERT_TRUE(SaveScenario(scenario, directory_).ok());
  auto loaded = LoadScenario(directory_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->sources[0].database.TotalRowCount(), 0u);
}

}  // namespace
}  // namespace efes
