// Tests for scenario directory persistence.

#include "efes/scenario/scenario_io.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "efes/experiment/default_pipeline.h"
#include "efes/scenario/paper_example.h"

namespace efes {
namespace {

TEST(CorrespondenceLineTest, ParsesBothGranularities) {
  auto relation = ParseCorrespondenceLine("albums -> records");
  ASSERT_TRUE(relation.ok());
  EXPECT_TRUE(relation->is_relation_level());
  EXPECT_EQ(relation->source_relation, "albums");
  EXPECT_EQ(relation->target_relation, "records");

  auto attribute = ParseCorrespondenceLine("albums.name -> records.title");
  ASSERT_TRUE(attribute.ok());
  EXPECT_TRUE(attribute->is_attribute_level());
  EXPECT_EQ(attribute->source_attribute, "name");
  EXPECT_EQ(attribute->target_attribute, "title");
}

TEST(CorrespondenceLineTest, RejectsMalformedLines) {
  EXPECT_FALSE(ParseCorrespondenceLine("no arrow here").ok());
  EXPECT_FALSE(ParseCorrespondenceLine(" -> records").ok());
  EXPECT_FALSE(ParseCorrespondenceLine("albums -> ").ok());
  EXPECT_FALSE(ParseCorrespondenceLine("albums.name -> records").ok());
}

TEST(CorrespondencesDocTest, RoundTrip) {
  CorrespondenceSet set;
  set.AddRelation("albums", "records");
  set.AddAttribute("albums", "name", "records", "title");
  set.AddAttribute("songs", "length", "tracks", "duration");
  auto reparsed = ParseCorrespondences(WriteCorrespondences(set));
  ASSERT_TRUE(reparsed.ok());
  ASSERT_EQ(reparsed->size(), 3u);
  EXPECT_EQ(reparsed->all()[0].ToString(), "albums -> records");
  EXPECT_EQ(reparsed->all()[2].ToString(),
            "songs.length -> tracks.duration");
}

TEST(CorrespondencesDocTest, CommentsAndBlanksIgnored) {
  auto set = ParseCorrespondences(R"(
# curated by hand
albums -> records

albums.name -> records.title   # the title feed
)");
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set->size(), 2u);
}

class ScenarioIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    directory_ = testing::TempDir() + "/efes_scenario_io_test";
    std::filesystem::remove_all(directory_);
  }
  void TearDown() override { std::filesystem::remove_all(directory_); }

  std::string directory_;
};

TEST_F(ScenarioIoTest, SaveLoadRoundTripPreservesEverything) {
  PaperExampleOptions options;
  options.album_count = 120;
  options.multi_artist_albums = 30;
  options.orphan_artists = 10;
  options.song_count = 150;
  auto original = MakePaperExample(options);
  ASSERT_TRUE(original.ok());

  ASSERT_TRUE(SaveScenario(*original, directory_).ok());
  auto loaded = LoadScenario(directory_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  // Schemas.
  EXPECT_EQ(loaded->target.schema().relations().size(),
            original->target.schema().relations().size());
  EXPECT_EQ(loaded->target.schema().constraints().size(),
            original->target.schema().constraints().size());
  ASSERT_EQ(loaded->sources.size(), 1u);
  EXPECT_EQ(loaded->sources[0].correspondences.size(),
            original->sources[0].correspondences.size());

  // Data, cell by cell for one table.
  const Table* original_albums = *original->sources[0].database.table(
      "albums");
  const Table* loaded_albums = *loaded->sources[0].database.table("albums");
  ASSERT_EQ(loaded_albums->row_count(), original_albums->row_count());
  for (size_t r = 0; r < original_albums->row_count(); ++r) {
    for (size_t c = 0; c < original_albums->column_count(); ++c) {
      EXPECT_EQ(loaded_albums->at(r, c), original_albums->at(r, c));
    }
  }
}

TEST_F(ScenarioIoTest, LoadedScenarioEstimatesIdentically) {
  PaperExampleOptions options;
  options.album_count = 150;
  options.multi_artist_albums = 40;
  options.orphan_artists = 12;
  options.song_count = 200;
  auto original = MakePaperExample(options);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(SaveScenario(*original, directory_).ok());
  auto loaded = LoadScenario(directory_);
  ASSERT_TRUE(loaded.ok());

  EfesEngine engine = MakeDefaultEngine();
  auto original_estimate =
      engine.Run(*original, ExpectedQuality::kHighQuality, {});
  auto loaded_estimate =
      engine.Run(*loaded, ExpectedQuality::kHighQuality, {});
  ASSERT_TRUE(original_estimate.ok());
  ASSERT_TRUE(loaded_estimate.ok());
  EXPECT_DOUBLE_EQ(loaded_estimate->estimate.TotalMinutes(),
                   original_estimate->estimate.TotalMinutes());
}

TEST_F(ScenarioIoTest, LoadMissingDirectoryFails) {
  auto loaded = LoadScenario(directory_ + "/does_not_exist");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(ScenarioIoTest, EmptyTablesNeedNoCsvFiles) {
  // A scenario whose source tables are empty saves without data files and
  // loads back.
  Schema target_schema("t");
  (void)target_schema.AddRelation(
      RelationDef("t", {{"a", DataType::kText}}));
  Schema source_schema("s");
  (void)source_schema.AddRelation(
      RelationDef("s", {{"a", DataType::kText}}));
  IntegrationScenario scenario(
      "empty", std::move(*Database::Create(std::move(target_schema))));
  scenario.AddSource(std::move(*Database::Create(std::move(source_schema))),
                     CorrespondenceSet());
  ASSERT_TRUE(SaveScenario(scenario, directory_).ok());
  auto loaded = LoadScenario(directory_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->sources[0].database.TotalRowCount(), 0u);
}

}  // namespace
}  // namespace efes
