// Randomized round-trip property tests: random schemas survive
// DDL-render/parse, random databases survive scenario save/load, and
// random well-formed formulas evaluate consistently after re-parsing
// their own source text.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "efes/common/random.h"
#include "efes/core/formula.h"
#include "efes/relational/schema_text.h"
#include "efes/scenario/scenario_io.h"

namespace efes {
namespace {

DataType RandomType(Random& rng) {
  const DataType kTypes[] = {DataType::kInteger, DataType::kReal,
                             DataType::kText, DataType::kBoolean};
  return kTypes[rng.UniformUint64(4)];
}

/// A random schema: 1-5 relations, 1-6 attributes, random constraints
/// (PK on the first attribute, NOT NULLs, single/composite UNIQUEs, FKs
/// to earlier relations).
Schema RandomSchema(Random& rng) {
  Schema schema("random");
  size_t relation_count = 1 + rng.UniformUint64(5);
  std::vector<std::string> relation_names;
  for (size_t r = 0; r < relation_count; ++r) {
    std::string relation = "rel_" + rng.Word(3, 6) + std::to_string(r);
    std::vector<AttributeDef> attributes;
    size_t attribute_count = 1 + rng.UniformUint64(6);
    for (size_t a = 0; a < attribute_count; ++a) {
      attributes.push_back(AttributeDef{
          "col_" + rng.Word(2, 5) + std::to_string(a), RandomType(rng)});
    }
    EXPECT_TRUE(
        schema.AddRelation(RelationDef(relation, attributes)).ok());
    if (rng.Bernoulli(0.7)) {
      schema.AddConstraint(
          Constraint::PrimaryKey(relation, {attributes[0].name}));
    }
    for (size_t a = 1; a < attribute_count; ++a) {
      if (rng.Bernoulli(0.3)) {
        schema.AddConstraint(
            Constraint::NotNull(relation, attributes[a].name));
      }
      if (rng.Bernoulli(0.15)) {
        schema.AddConstraint(
            Constraint::Unique(relation, {attributes[a].name}));
      }
    }
    if (attribute_count >= 2 && rng.Bernoulli(0.2)) {
      schema.AddConstraint(Constraint::Unique(
          relation, {attributes[0].name, attributes[1].name}));
    }
    // FK from this relation's last attribute to an earlier relation's
    // first attribute (types must match; force integer on both ends).
    if (!relation_names.empty() && rng.Bernoulli(0.4)) {
      const std::string& parent =
          relation_names[rng.UniformUint64(relation_names.size())];
      const RelationDef* parent_def = *schema.relation(parent);
      schema.AddConstraint(Constraint::ForeignKey(
          relation, {attributes.back().name}, parent,
          {parent_def->attributes()[0].name}));
    }
    relation_names.push_back(relation);
  }
  return schema;
}

class SchemaRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SchemaRoundTripTest, DdlRoundTripPreservesSchema) {
  Random rng(GetParam());
  for (int round = 0; round < 15; ++round) {
    Schema original = RandomSchema(rng);
    ASSERT_TRUE(original.Validate().ok());
    std::string ddl = WriteSchemaText(original);
    auto reparsed = ParseSchemaText(ddl, "random");
    ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n"
                               << ddl;
    ASSERT_EQ(reparsed->relations().size(), original.relations().size());
    for (size_t r = 0; r < original.relations().size(); ++r) {
      const RelationDef& original_rel = original.relations()[r];
      const RelationDef& reparsed_rel = reparsed->relations()[r];
      EXPECT_EQ(reparsed_rel.name(), original_rel.name());
      ASSERT_EQ(reparsed_rel.attribute_count(),
                original_rel.attribute_count());
      for (size_t a = 0; a < original_rel.attribute_count(); ++a) {
        EXPECT_EQ(reparsed_rel.attributes()[a].name,
                  original_rel.attributes()[a].name);
        EXPECT_EQ(reparsed_rel.attributes()[a].type,
                  original_rel.attributes()[a].type);
      }
      // Constraint semantics preserved for every attribute.
      for (const AttributeDef& attribute : original_rel.attributes()) {
        EXPECT_EQ(reparsed->IsNotNullable(original_rel.name(),
                                          attribute.name),
                  original.IsNotNullable(original_rel.name(),
                                         attribute.name));
        EXPECT_EQ(reparsed->IsUniqueAttribute(original_rel.name(),
                                              attribute.name),
                  original.IsUniqueAttribute(original_rel.name(),
                                             attribute.name));
      }
      EXPECT_EQ(reparsed->PrimaryKeyOf(original_rel.name()),
                original.PrimaryKeyOf(original_rel.name()));
    }
    EXPECT_EQ(reparsed->constraints().size(),
              original.constraints().size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchemaRoundTripTest,
                         ::testing::Values(3, 33, 333));

Value RandomValue(Random& rng, DataType type) {
  if (rng.Bernoulli(0.1)) return Value::Null();
  switch (type) {
    case DataType::kInteger:
      return Value::Integer(rng.UniformInt(-1000, 1000));
    case DataType::kReal:
      // Stick to halves so text rendering round-trips exactly.
      return Value::Real(static_cast<double>(rng.UniformInt(-100, 100)) /
                         2.0);
    case DataType::kBoolean:
      return Value::Boolean(rng.Bernoulli(0.5));
    default:
      return Value::Text(rng.Word(1, 12));
  }
}

class ScenarioRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ScenarioRoundTripTest, RandomDatabaseSurvivesSaveLoad) {
  Random rng(GetParam());
  std::string directory = testing::TempDir() + "/efes_roundtrip_" +
                          std::to_string(GetParam());
  std::filesystem::remove_all(directory);

  // Constraint-free schemas so arbitrary random data is a valid instance.
  Schema target_schema("target");
  (void)target_schema.AddRelation(
      RelationDef("sink", {{"x", DataType::kText}}));
  Schema source_schema("src");
  std::vector<AttributeDef> attributes;
  size_t attribute_count = 1 + rng.UniformUint64(5);
  for (size_t a = 0; a < attribute_count; ++a) {
    attributes.push_back(
        AttributeDef{"c" + std::to_string(a), RandomType(rng)});
  }
  (void)source_schema.AddRelation(RelationDef("facts", attributes));
  auto source = Database::Create(std::move(source_schema));
  Table* facts = *source->mutable_table("facts");
  size_t row_count = rng.UniformUint64(60);
  for (size_t r = 0; r < row_count; ++r) {
    std::vector<Value> row;
    for (size_t a = 0; a < attribute_count; ++a) {
      Value value = RandomValue(rng, attributes[a].type);
      // Empty text cells are indistinguishable from NULL in CSV; avoid.
      if (value.type() == DataType::kText && value.AsText().empty()) {
        value = Value::Null();
      }
      row.push_back(std::move(value));
    }
    ASSERT_TRUE(facts->AppendRow(std::move(row)).ok());
  }

  IntegrationScenario scenario(
      "roundtrip", std::move(*Database::Create(std::move(target_schema))));
  CorrespondenceSet correspondences;
  correspondences.AddRelation("facts", "sink");
  scenario.AddSource(std::move(*source), std::move(correspondences));

  ASSERT_TRUE(SaveScenario(scenario, directory).ok());
  auto loaded = LoadScenario(directory);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Table* reloaded = *loaded->sources[0].database.table("facts");
  const Table* original = *scenario.sources[0].database.table("facts");
  ASSERT_EQ(reloaded->row_count(), original->row_count());
  for (size_t r = 0; r < original->row_count(); ++r) {
    for (size_t c = 0; c < original->column_count(); ++c) {
      EXPECT_EQ(reloaded->at(r, c), original->at(r, c))
          << "row " << r << " col " << c;
    }
  }
  std::filesystem::remove_all(directory);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScenarioRoundTripTest,
                         ::testing::Values(17, 171, 1717));

/// Random well-formed formulas: build an expression string bottom-up and
/// check (a) it parses, (b) re-parsing its own text() yields the same
/// value on random tasks.
class FormulaFuzzTest : public ::testing::TestWithParam<uint64_t> {};

std::string RandomExpression(Random& rng, int depth) {
  if (depth <= 0 || rng.Bernoulli(0.35)) {
    if (rng.Bernoulli(0.5)) {
      return std::to_string(rng.UniformInt(0, 99));
    }
    const char* kParams[] = {"values", "dist_vals", "tables", "pks"};
    return kParams[rng.UniformUint64(4)];
  }
  const char* kOps[] = {" + ", " - ", " * ", " / "};
  std::string left = RandomExpression(rng, depth - 1);
  std::string right = RandomExpression(rng, depth - 1);
  std::string combined =
      left + kOps[rng.UniformUint64(4)] + right;
  return rng.Bernoulli(0.4) ? "(" + combined + ")" : combined;
}

TEST_P(FormulaFuzzTest, RandomFormulasParseAndReEvaluateStably) {
  Random rng(GetParam());
  for (int round = 0; round < 100; ++round) {
    std::string text = RandomExpression(rng, 4);
    if (rng.Bernoulli(0.3)) {
      text = "if " + RandomExpression(rng, 2) + " < " +
             RandomExpression(rng, 2) + " then " + text + " else " +
             RandomExpression(rng, 3);
    }
    auto formula = Formula::Parse(text);
    ASSERT_TRUE(formula.ok()) << text << ": "
                              << formula.status().ToString();
    auto reparsed = Formula::Parse(formula->text());
    ASSERT_TRUE(reparsed.ok());
    Task task;
    task.parameters["values"] = static_cast<double>(rng.UniformInt(0, 50));
    task.parameters["dist_vals"] =
        static_cast<double>(rng.UniformInt(0, 50));
    task.parameters["tables"] = static_cast<double>(rng.UniformInt(0, 9));
    double a = formula->Evaluate(task);
    double b = reparsed->Evaluate(task);
    if (std::isfinite(a) && std::isfinite(b)) {
      EXPECT_DOUBLE_EQ(a, b) << text;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FormulaFuzzTest,
                         ::testing::Values(71, 72, 73));

}  // namespace
}  // namespace efes
