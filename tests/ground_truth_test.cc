// Tests for the ground-truth practitioner simulator.

#include "efes/scenario/ground_truth.h"

#include <gtest/gtest.h>
#include <memory>

#include "efes/scenario/paper_example.h"

namespace efes {
namespace {

class GroundTruthTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto scenario = MakePaperExample();
    ASSERT_TRUE(scenario.ok());
    scenario_ = std::make_unique<IntegrationScenario>(std::move(*scenario));
  }
  static void TearDownTestSuite() {
    scenario_.reset();
  }
  static std::unique_ptr<IntegrationScenario> scenario_;
};

std::unique_ptr<IntegrationScenario> GroundTruthTest::scenario_;

TEST_F(GroundTruthTest, DeterministicPerSeedAndQuality) {
  auto a = SimulateMeasuredEffort(*scenario_,
                                  ExpectedQuality::kHighQuality, 42);
  auto b = SimulateMeasuredEffort(*scenario_,
                                  ExpectedQuality::kHighQuality, 42);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->total(), b->total());
  EXPECT_DOUBLE_EQ(a->mapping_minutes, b->mapping_minutes);
}

TEST_F(GroundTruthTest, DifferentSeedsVary) {
  auto a = SimulateMeasuredEffort(*scenario_,
                                  ExpectedQuality::kHighQuality, 1);
  auto b = SimulateMeasuredEffort(*scenario_,
                                  ExpectedQuality::kHighQuality, 2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->total(), b->total());
  // ...but only by the human-variance noise, not wildly.
  EXPECT_NEAR(a->total() / b->total(), 1.0, 0.5);
}

TEST_F(GroundTruthTest, HighQualityCostsMoreThanLowEffort) {
  auto low = SimulateMeasuredEffort(*scenario_,
                                    ExpectedQuality::kLowEffort, 42);
  auto high = SimulateMeasuredEffort(*scenario_,
                                     ExpectedQuality::kHighQuality, 42);
  ASSERT_TRUE(low.ok());
  ASSERT_TRUE(high.ok());
  EXPECT_GT(high->total(), low->total());
}

TEST_F(GroundTruthTest, BreakdownSumsToTotal) {
  auto measured = SimulateMeasuredEffort(
      *scenario_, ExpectedQuality::kHighQuality, 42);
  ASSERT_TRUE(measured.ok());
  EXPECT_DOUBLE_EQ(measured->total(),
                   measured->mapping_minutes +
                       measured->structure_minutes +
                       measured->value_minutes);
  EXPECT_GT(measured->mapping_minutes, 0.0);
  EXPECT_GT(measured->structure_minutes, 0.0);
  EXPECT_GT(measured->value_minutes, 0.0);
}

TEST_F(GroundTruthTest, MoreViolationsCostMore) {
  PaperExampleOptions small;
  small.album_count = 400;
  small.multi_artist_albums = 20;
  small.orphan_artists = 5;
  small.song_count = 500;
  PaperExampleOptions big = small;
  big.multi_artist_albums = 200;
  big.orphan_artists = 100;
  auto small_scenario = MakePaperExample(small);
  auto big_scenario = MakePaperExample(big);
  ASSERT_TRUE(small_scenario.ok());
  ASSERT_TRUE(big_scenario.ok());
  auto small_measured = SimulateMeasuredEffort(
      *small_scenario, ExpectedQuality::kHighQuality, 42);
  auto big_measured = SimulateMeasuredEffort(
      *big_scenario, ExpectedQuality::kHighQuality, 42);
  ASSERT_TRUE(small_measured.ok());
  ASSERT_TRUE(big_measured.ok());
  EXPECT_GT(big_measured->structure_minutes,
            small_measured->structure_minutes);
}

TEST_F(GroundTruthTest, CustomModelScalesCosts) {
  GroundTruthModel cheap;
  cheap.missing_value_each = 0.1;
  cheap.merge_script = 1.0;
  cheap.convert_script = 1.0;
  cheap.noise_sigma = 0.0;
  GroundTruthModel expensive = cheap;
  expensive.missing_value_each = 10.0;
  expensive.merge_script = 100.0;
  auto a = SimulateMeasuredEffort(*scenario_,
                                  ExpectedQuality::kHighQuality, 42, cheap);
  auto b = SimulateMeasuredEffort(
      *scenario_, ExpectedQuality::kHighQuality, 42, expensive);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GT(b->structure_minutes, a->structure_minutes);
}

TEST_F(GroundTruthTest, ZeroNoiseIsExactlyReproducible) {
  GroundTruthModel model;
  model.noise_sigma = 0.0;
  auto a = SimulateMeasuredEffort(*scenario_, ExpectedQuality::kLowEffort,
                                  1, model);
  auto b = SimulateMeasuredEffort(*scenario_, ExpectedQuality::kLowEffort,
                                  999, model);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Without noise the seed must not matter.
  EXPECT_DOUBLE_EQ(a->total(), b->total());
}

}  // namespace
}  // namespace efes
