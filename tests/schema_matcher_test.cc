// Tests for the schema matcher that bootstraps correspondences.

#include "efes/matching/schema_matcher.h"

#include <gtest/gtest.h>

namespace efes {
namespace {

Database MakeSource() {
  Schema schema("source");
  (void)schema.AddRelation(RelationDef(
      "albums", {{"album_id", DataType::kInteger},
                 {"album_title", DataType::kText},
                 {"artist_name", DataType::kText}}));
  (void)schema.AddRelation(RelationDef(
      "reviews", {{"review_id", DataType::kInteger},
                  {"score", DataType::kInteger}}));
  auto db = Database::Create(std::move(schema));
  EXPECT_TRUE(db.ok());
  Table* albums = *db->mutable_table("albums");
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(albums
                    ->AppendRow({Value::Integer(i),
                                 Value::Text("Title " + std::to_string(i)),
                                 Value::Text("Artist " + std::to_string(i))})
                    .ok());
  }
  return std::move(*db);
}

Database MakeTarget() {
  Schema schema("target");
  (void)schema.AddRelation(RelationDef(
      "records", {{"record_id", DataType::kInteger},
                  {"title", DataType::kText},
                  {"artist", DataType::kText}}));
  auto db = Database::Create(std::move(schema));
  EXPECT_TRUE(db.ok());
  Table* records = *db->mutable_table("records");
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(records
                    ->AppendRow({Value::Integer(i),
                                 Value::Text("Title " + std::to_string(i)),
                                 Value::Text("Artist " + std::to_string(i))})
                    .ok());
  }
  return std::move(*db);
}

TEST(SchemaMatcherTest, IdenticalNamesScoreHigh) {
  SchemaMatcher matcher;
  Database source = MakeSource();
  Database target = MakeTarget();
  auto score = matcher.ScoreAttributePair(
      source, "albums", {"artist_name", DataType::kText}, target, "records",
      {"artist", DataType::kText});
  ASSERT_TRUE(score.ok());
  EXPECT_GT(*score, 0.6);
}

TEST(SchemaMatcherTest, UnrelatedNamesScoreLow) {
  SchemaMatcher matcher;
  Database source = MakeSource();
  Database target = MakeTarget();
  auto score = matcher.ScoreAttributePair(
      source, "reviews", {"score", DataType::kInteger}, target, "records",
      {"title", DataType::kText});
  ASSERT_TRUE(score.ok());
  EXPECT_LT(*score, 0.5);
}

TEST(SchemaMatcherTest, MatchFindsRelationAndAttributes) {
  SchemaMatcher matcher;
  Database source = MakeSource();
  Database target = MakeTarget();
  auto matched = matcher.Match(source, target);
  ASSERT_TRUE(matched.ok());
  CorrespondenceSet& correspondences = *matched;

  auto relation = correspondences.RelationCorrespondenceFor("records");
  ASSERT_TRUE(relation.ok());
  EXPECT_EQ(relation->source_relation, "albums");

  std::vector<Correspondence> attrs =
      correspondences.AttributesInto("records");
  bool title_matched = false;
  bool artist_matched = false;
  for (const Correspondence& corr : attrs) {
    if (corr.source_attribute == "album_title" &&
        corr.target_attribute == "title") {
      title_matched = true;
    }
    if (corr.source_attribute == "artist_name" &&
        corr.target_attribute == "artist") {
      artist_matched = true;
    }
  }
  EXPECT_TRUE(title_matched);
  EXPECT_TRUE(artist_matched);
}

TEST(SchemaMatcherTest, MatchIsOneToOne) {
  SchemaMatcher matcher;
  Database source = MakeSource();
  Database target = MakeTarget();
  auto matched = matcher.Match(source, target);
  ASSERT_TRUE(matched.ok());
  CorrespondenceSet& correspondences = *matched;
  std::set<std::string> used_targets;
  for (const Correspondence& corr : correspondences.all()) {
    if (!corr.is_attribute_level()) continue;
    std::string key = corr.target_relation + "." + corr.target_attribute;
    EXPECT_TRUE(used_targets.insert(key).second)
        << "target attribute matched twice: " << key;
  }
}

TEST(SchemaMatcherTest, ProducedCorrespondencesValidate) {
  SchemaMatcher matcher;
  Database source = MakeSource();
  Database target = MakeTarget();
  auto matched = matcher.Match(source, target);
  ASSERT_TRUE(matched.ok());
  CorrespondenceSet& correspondences = *matched;
  EXPECT_TRUE(
      correspondences.Validate(source.schema(), target.schema()).ok());
  for (const Correspondence& corr : correspondences.all()) {
    EXPECT_GE(corr.confidence, 0.0);
    EXPECT_LE(corr.confidence, 1.0);
  }
}

TEST(SchemaMatcherTest, ScoreRelationsSortedDescending) {
  SchemaMatcher matcher;
  Database source = MakeSource();
  Database target = MakeTarget();
  auto scored = matcher.ScoreRelations(source, target);
  ASSERT_TRUE(scored.ok());
  std::vector<MatchCandidate>& candidates = *scored;
  ASSERT_EQ(candidates.size(), 2u);  // {albums, reviews} x {records}
  EXPECT_GE(candidates[0].score, candidates[1].score);
  EXPECT_EQ(candidates[0].source_relation, "albums");
}

TEST(SchemaMatcherTest, InstanceEvidenceBreaksNameTies) {
  // Two source attributes with equally dissimilar names; only one has
  // data matching the target's value distribution.
  Schema source_schema("s");
  (void)source_schema.AddRelation(RelationDef(
      "t", {{"colx", DataType::kText}, {"coly", DataType::kText}}));
  auto source = Database::Create(std::move(source_schema));
  Table* table = *source->mutable_table("t");
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(table
                    ->AppendRow({Value::Text("4:4" + std::to_string(i % 10)),
                                 Value::Text("plain words here")})
                    .ok());
  }
  Schema target_schema("g");
  (void)target_schema.AddRelation(
      RelationDef("u", {{"dur", DataType::kText}}));
  auto target = Database::Create(std::move(target_schema));
  Table* target_table = *target->mutable_table("u");
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(
        target_table->AppendRow({Value::Text("3:1" + std::to_string(i % 10))})
            .ok());
  }
  SchemaMatcher matcher;
  auto fitting = matcher.ScoreAttributePair(
      *source, "t", {"colx", DataType::kText}, *target, "u",
      {"dur", DataType::kText});
  auto misfitting = matcher.ScoreAttributePair(
      *source, "t", {"coly", DataType::kText}, *target, "u",
      {"dur", DataType::kText});
  ASSERT_TRUE(fitting.ok());
  ASSERT_TRUE(misfitting.ok());
  EXPECT_GT(*fitting, *misfitting);
}

TEST(SchemaMatcherTest, ThresholdsFilterWeakMatches) {
  MatcherOptions options;
  options.min_relation_confidence = 0.99;
  options.min_attribute_confidence = 0.99;
  SchemaMatcher matcher(options);
  Database source = MakeSource();
  Database target = MakeTarget();
  auto matched = matcher.Match(source, target);
  ASSERT_TRUE(matched.ok());
  // With an impossible threshold nothing should match.
  EXPECT_TRUE(matched->empty());
}

}  // namespace
}  // namespace efes
