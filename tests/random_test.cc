// Tests for the deterministic PRNG.

#include "efes/common/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace efes {
namespace {

TEST(RandomTest, DeterministicPerSeed) {
  Random a(123);
  Random b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1);
  Random b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RandomTest, UniformUint64StaysInBounds) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformUint64(17), 17u);
  }
}

TEST(RandomTest, UniformIntCoversRangeInclusive) {
  Random rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RandomTest, UniformDoubleInUnitInterval) {
  Random rng(11);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RandomTest, GaussianMomentsRoughlyStandard) {
  Random rng(13);
  double sum = 0.0;
  double sum_squares = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    double g = rng.Gaussian();
    sum += g;
    sum_squares += g * g;
  }
  double mean = sum / kN;
  double variance = sum_squares / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(variance, 1.0, 0.05);
}

TEST(RandomTest, BernoulliExtremes) {
  Random rng(17);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RandomTest, BernoulliFrequency) {
  Random rng(19);
  int hits = 0;
  constexpr int kN = 10000;
  for (int i = 0; i < kN; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.03);
}

TEST(RandomTest, ZipfPrefersLowRanks) {
  Random rng(23);
  int rank0 = 0;
  int rank9 = 0;
  for (int i = 0; i < 5000; ++i) {
    size_t rank = rng.Zipf(10, 1.0);
    EXPECT_LT(rank, 10u);
    if (rank == 0) ++rank0;
    if (rank == 9) ++rank9;
  }
  EXPECT_GT(rank0, rank9 * 3);
}

TEST(RandomTest, ShuffleIsPermutation) {
  Random rng(29);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = items;
  rng.Shuffle(shuffled);
  std::multiset<int> a(items.begin(), items.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(RandomTest, WordRespectsLengthBounds) {
  Random rng(31);
  for (int i = 0; i < 200; ++i) {
    std::string word = rng.Word(3, 8);
    EXPECT_GE(word.size(), 3u);
    EXPECT_LE(word.size(), 8u);
    for (char c : word) {
      EXPECT_GE(c, 'a');
      EXPECT_LE(c, 'z');
    }
  }
}

}  // namespace
}  // namespace efes
