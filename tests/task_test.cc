// Tests for Task and its enums.

#include "efes/core/task.h"

#include <gtest/gtest.h>

namespace efes {
namespace {

TEST(TaskTest, QualityNames) {
  EXPECT_EQ(ExpectedQualityToString(ExpectedQuality::kLowEffort),
            "low effort");
  EXPECT_EQ(ExpectedQualityToString(ExpectedQuality::kHighQuality),
            "high quality");
}

TEST(TaskTest, CategoryNames) {
  EXPECT_EQ(TaskCategoryToString(TaskCategory::kMapping), "Mapping");
  EXPECT_EQ(TaskCategoryToString(TaskCategory::kCleaningStructure),
            "Cleaning (Structure)");
  EXPECT_EQ(TaskCategoryToString(TaskCategory::kCleaningValues),
            "Cleaning (Values)");
}

TEST(TaskTest, TypeNamesMatchPaperTables) {
  // Table 4 names.
  EXPECT_EQ(TaskTypeToString(TaskType::kRejectTuples), "Reject tuples");
  EXPECT_EQ(TaskTypeToString(TaskType::kAddMissingValues),
            "Add missing values");
  EXPECT_EQ(TaskTypeToString(TaskType::kSetValuesToNull),
            "Set values to null");
  EXPECT_EQ(TaskTypeToString(TaskType::kAggregateTuples),
            "Aggregate tuples");
  EXPECT_EQ(TaskTypeToString(TaskType::kKeepAnyValue), "Keep any value");
  EXPECT_EQ(TaskTypeToString(TaskType::kMergeValues), "Merge values");
  // Table 7 names.
  EXPECT_EQ(TaskTypeToString(TaskType::kAddValues), "Add values");
  EXPECT_EQ(TaskTypeToString(TaskType::kDropValues), "Drop values");
  EXPECT_EQ(TaskTypeToString(TaskType::kConvertValues), "Convert values");
  EXPECT_EQ(TaskTypeToString(TaskType::kGeneralizeValues),
            "Generalize values");
  EXPECT_EQ(TaskTypeToString(TaskType::kRefineValues), "Refine values");
  // Table 9 names.
  EXPECT_EQ(TaskTypeToString(TaskType::kWriteMapping), "Write mapping");
  EXPECT_EQ(TaskTypeToString(TaskType::kAddTuples), "Add tuples");
  EXPECT_EQ(TaskTypeToString(TaskType::kCreateEnclosingTuples),
            "Create enclosing tuples");
  EXPECT_EQ(TaskTypeToString(TaskType::kDropDetachedValues),
            "Delete detached values");
  EXPECT_EQ(TaskTypeToString(TaskType::kUnlinkAllButOneTuple),
            "Unlink all but one tuple");
}

TEST(TaskTest, ParamLookupWithFallback) {
  Task task;
  task.parameters["values"] = 102.0;
  EXPECT_DOUBLE_EQ(task.Param("values"), 102.0);
  EXPECT_DOUBLE_EQ(task.Param("missing"), 0.0);
  EXPECT_DOUBLE_EQ(task.Param("missing", 7.0), 7.0);
}

TEST(TaskTest, ToStringIncludesSubjectAndParameters) {
  Task task;
  task.type = TaskType::kAddMissingValues;
  task.subject = "records.title";
  task.parameters["values"] = 102.0;
  EXPECT_EQ(task.ToString(),
            "Add missing values (records.title) [values=102]");
}

TEST(TaskTest, ToStringWithoutSubjectOrParams) {
  Task task;
  task.type = TaskType::kDropValues;
  EXPECT_EQ(task.ToString(), "Drop values");
}

}  // namespace
}  // namespace efes
