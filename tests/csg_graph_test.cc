// Tests for CSG graphs and instances.

#include "efes/csg/graph.h"

#include <gtest/gtest.h>

namespace efes {
namespace {

/// A tiny CSG: one table node with one attribute node,
/// κ(table→attr) = 1, κ(attr→table) = 1..*.
struct TinyCsg {
  CsgGraph graph;
  NodeId table;
  NodeId attribute;
  RelationshipId forward;  // table -> attribute

  TinyCsg() {
    table = graph.AddTableNode("records");
    attribute = graph.AddAttributeNode("records", "artist", DataType::kText);
    forward = graph.AddRelationshipPair(
        table, attribute, CsgEdgeKind::kAttribute, Cardinality::Exactly(1),
        Cardinality::AtLeast(1));
  }
};

TEST(CsgGraphTest, NodesAndQualifiedNames) {
  TinyCsg csg;
  EXPECT_EQ(csg.graph.nodes().size(), 2u);
  EXPECT_EQ(csg.graph.node(csg.table).QualifiedName(), "records");
  EXPECT_EQ(csg.graph.node(csg.attribute).QualifiedName(), "records.artist");
  EXPECT_EQ(csg.graph.node(csg.attribute).kind, CsgNodeKind::kAttribute);
}

TEST(CsgGraphTest, RelationshipPairIsMutuallyInverse) {
  TinyCsg csg;
  const CsgRelationship& forward = csg.graph.relationship(csg.forward);
  const CsgRelationship& backward =
      csg.graph.relationship(forward.inverse);
  EXPECT_EQ(backward.inverse, forward.id);
  EXPECT_EQ(forward.from, csg.table);
  EXPECT_EQ(forward.to, csg.attribute);
  EXPECT_EQ(backward.from, csg.attribute);
  EXPECT_EQ(backward.to, csg.table);
  EXPECT_EQ(forward.prescribed, Cardinality::Exactly(1));
  EXPECT_EQ(backward.prescribed, Cardinality::AtLeast(1));
}

TEST(CsgGraphTest, AdjacencyListsBothDirections) {
  TinyCsg csg;
  ASSERT_EQ(csg.graph.OutgoingOf(csg.table).size(), 1u);
  ASSERT_EQ(csg.graph.OutgoingOf(csg.attribute).size(), 1u);
  EXPECT_EQ(csg.graph.OutgoingOf(csg.table)[0], csg.forward);
}

TEST(CsgGraphTest, FindNodes) {
  TinyCsg csg;
  EXPECT_EQ(*csg.graph.FindTableNode("records"), csg.table);
  EXPECT_FALSE(csg.graph.FindTableNode("ghost").ok());
  EXPECT_EQ(*csg.graph.FindAttributeNode("records", "artist"),
            csg.attribute);
  EXPECT_FALSE(csg.graph.FindAttributeNode("records", "ghost").ok());
}

TEST(CsgGraphTest, SetPrescribedReplacesCardinality) {
  TinyCsg csg;
  csg.graph.SetPrescribed(csg.forward, Cardinality::Optional());
  EXPECT_EQ(csg.graph.relationship(csg.forward).prescribed,
            Cardinality::Optional());
}

TEST(CsgGraphTest, DescribeAndToText) {
  TinyCsg csg;
  EXPECT_EQ(csg.graph.DescribeRelationship(csg.forward),
            "records -> records.artist [1]");
  std::string text = csg.graph.ToText();
  EXPECT_NE(text.find("[table] records"), std::string::npos);
  EXPECT_NE(text.find("(attr)  records.artist : text"), std::string::npos);
}

TEST(CsgInstanceTest, ElementsDeduplicate) {
  TinyCsg csg;
  CsgInstance instance(csg.graph.nodes().size(),
                       csg.graph.relationships().size());
  instance.AddElement(csg.attribute, Value::Text("x"));
  instance.AddElement(csg.attribute, Value::Text("x"));
  instance.AddElement(csg.attribute, Value::Text("y"));
  EXPECT_EQ(instance.ElementCount(csg.attribute), 2u);
}

TEST(CsgInstanceTest, LinksMirrorOnInverse) {
  TinyCsg csg;
  CsgInstance instance(csg.graph.nodes().size(),
                       csg.graph.relationships().size());
  Value tuple = Value::Integer(0);
  Value value = Value::Text("x");
  instance.AddElement(csg.table, tuple);
  instance.AddElement(csg.attribute, value);
  instance.AddLink(csg.graph, csg.forward, tuple, value);
  EXPECT_EQ(instance.LinkCount(csg.forward), 1u);
  RelationshipId inverse = csg.graph.relationship(csg.forward).inverse;
  EXPECT_EQ(instance.LinkCount(inverse), 1u);
}

TEST(CsgInstanceTest, OutDegreesIncludeZeroDegreeElements) {
  TinyCsg csg;
  CsgInstance instance(csg.graph.nodes().size(),
                       csg.graph.relationships().size());
  instance.AddElement(csg.table, Value::Integer(0));
  instance.AddElement(csg.table, Value::Integer(1));
  instance.AddElement(csg.attribute, Value::Text("x"));
  instance.AddLink(csg.graph, csg.forward, Value::Integer(0),
                   Value::Text("x"));
  auto degrees = instance.OutDegrees(csg.graph, csg.forward);
  EXPECT_EQ(degrees[Value::Integer(0)], 1u);
  EXPECT_EQ(degrees[Value::Integer(1)], 0u);  // tuple without value
}

TEST(CsgInstanceTest, ActualCardinalityAndViolations) {
  TinyCsg csg;
  CsgInstance instance(csg.graph.nodes().size(),
                       csg.graph.relationships().size());
  // Tuple 0 has two artist values, tuple 1 has one, tuple 2 none.
  for (int t = 0; t < 3; ++t) {
    instance.AddElement(csg.table, Value::Integer(t));
  }
  for (const char* name : {"a", "b"}) {
    instance.AddElement(csg.attribute, Value::Text(name));
    instance.AddLink(csg.graph, csg.forward, Value::Integer(0),
                     Value::Text(name));
  }
  instance.AddLink(csg.graph, csg.forward, Value::Integer(1),
                   Value::Text("a"));

  EXPECT_EQ(instance.ActualCardinality(csg.graph, csg.forward),
            Cardinality::Between(0, 2));
  // κ = 1 -> tuples 0 (two values) and 2 (none) violate.
  EXPECT_EQ(
      instance.CountViolations(csg.graph, csg.forward,
                               Cardinality::Exactly(1)),
      2u);
  EXPECT_EQ(instance.CountViolations(csg.graph, csg.forward,
                                     Cardinality::Any()),
            0u);
}

TEST(CsgInstanceTest, EmptyNodeActualCardinalityIsZero) {
  TinyCsg csg;
  CsgInstance instance(csg.graph.nodes().size(),
                       csg.graph.relationships().size());
  EXPECT_EQ(instance.ActualCardinality(csg.graph, csg.forward),
            Cardinality::Exactly(0));
}

/// A three-hop chain A -> B -> C to exercise path walks.
struct ChainCsg {
  CsgGraph graph;
  NodeId a, b, c;
  RelationshipId ab, bc;

  ChainCsg() {
    a = graph.AddTableNode("a");
    b = graph.AddAttributeNode("a", "x", DataType::kText);
    c = graph.AddAttributeNode("p", "y", DataType::kText);
    ab = graph.AddRelationshipPair(a, b, CsgEdgeKind::kAttribute,
                                   Cardinality::Exactly(1),
                                   Cardinality::AtLeast(1));
    bc = graph.AddRelationshipPair(b, c, CsgEdgeKind::kEquality,
                                   Cardinality::Exactly(1),
                                   Cardinality::Optional());
  }
};

TEST(CsgInstanceTest, PathOutDegreesDeduplicateTargets) {
  ChainCsg csg;
  CsgInstance instance(csg.graph.nodes().size(),
                       csg.graph.relationships().size());
  instance.AddElement(csg.a, Value::Integer(0));
  instance.AddElement(csg.b, Value::Text("b1"));
  instance.AddElement(csg.b, Value::Text("b2"));
  instance.AddElement(csg.c, Value::Text("c1"));
  // Tuple 0 reaches c1 via both b1 and b2: degree must still be 1.
  instance.AddLink(csg.graph, csg.ab, Value::Integer(0), Value::Text("b1"));
  instance.AddLink(csg.graph, csg.ab, Value::Integer(0), Value::Text("b2"));
  instance.AddLink(csg.graph, csg.bc, Value::Text("b1"), Value::Text("c1"));
  instance.AddLink(csg.graph, csg.bc, Value::Text("b2"), Value::Text("c1"));

  auto degrees = instance.PathOutDegrees(csg.graph, {csg.ab, csg.bc});
  EXPECT_EQ(degrees[Value::Integer(0)], 1u);
  EXPECT_EQ(instance.ActualPathCardinality(csg.graph, {csg.ab, csg.bc}),
            Cardinality::Exactly(1));
  EXPECT_EQ(instance.CountPathViolations(csg.graph, {csg.ab, csg.bc},
                                         Cardinality::Exactly(1)),
            0u);
}

TEST(CsgInstanceTest, PathViolationsCountBrokenChains) {
  ChainCsg csg;
  CsgInstance instance(csg.graph.nodes().size(),
                       csg.graph.relationships().size());
  instance.AddElement(csg.a, Value::Integer(0));
  instance.AddElement(csg.a, Value::Integer(1));
  instance.AddElement(csg.b, Value::Text("b1"));
  instance.AddElement(csg.c, Value::Text("c1"));
  instance.AddLink(csg.graph, csg.ab, Value::Integer(0), Value::Text("b1"));
  instance.AddLink(csg.graph, csg.bc, Value::Text("b1"), Value::Text("c1"));
  // Tuple 1 has no b link at all -> path degree 0.
  EXPECT_EQ(instance.CountPathViolations(csg.graph, {csg.ab, csg.bc},
                                         Cardinality::Exactly(1)),
            1u);
}

}  // namespace
}  // namespace efes
