// Tests for the graph search that matches target relationships to source
// relationships (Section 4.1).

#include "efes/csg/path_search.h"

#include <gtest/gtest.h>

namespace efes {
namespace {

/// A diamond graph with two routes from `start` to `end`:
///   short route: start -> end           (configurable κ)
///   long route:  start -> mid -> end    (configurable κs)
struct Diamond {
  CsgGraph graph;
  NodeId start, mid, end;
  RelationshipId direct, to_mid, from_mid;

  Diamond(const Cardinality& direct_k, const Cardinality& to_mid_k,
          const Cardinality& from_mid_k) {
    start = graph.AddTableNode("start");
    mid = graph.AddAttributeNode("start", "mid", DataType::kText);
    end = graph.AddAttributeNode("other", "end", DataType::kText);
    direct = graph.AddRelationshipPair(start, end, CsgEdgeKind::kAttribute,
                                       direct_k, Cardinality::Any());
    to_mid = graph.AddRelationshipPair(start, mid, CsgEdgeKind::kAttribute,
                                       to_mid_k, Cardinality::Any());
    from_mid = graph.AddRelationshipPair(mid, end, CsgEdgeKind::kEquality,
                                         from_mid_k, Cardinality::Any());
  }
};

TEST(PathSearchTest, EnumeratesAllSimplePaths) {
  Diamond diamond(Cardinality::Any(), Cardinality::Any(),
                  Cardinality::Any());
  std::vector<PathMatch> paths =
      EnumeratePaths(diamond.graph, diamond.start, diamond.end);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0].length(), 1u);  // shortest first
  EXPECT_EQ(paths[1].length(), 2u);
}

TEST(PathSearchTest, StartEqualsEndYieldsNothing) {
  Diamond diamond(Cardinality::Any(), Cardinality::Any(),
                  Cardinality::Any());
  EXPECT_TRUE(
      EnumeratePaths(diamond.graph, diamond.start, diamond.start).empty());
}

TEST(PathSearchTest, ComposesCardinalitiesAlongPath) {
  Diamond diamond(Cardinality::Exactly(1), Cardinality::Optional(),
                  Cardinality::AtLeast(1));
  std::vector<PathMatch> paths =
      EnumeratePaths(diamond.graph, diamond.start, diamond.end);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0].inferred, Cardinality::Exactly(1));
  // 0..1 ∘ 1..* = 0..*.
  EXPECT_EQ(paths[1].inferred, Cardinality::Any());
}

TEST(PathSearchTest, MaxLengthBoundsSearch) {
  Diamond diamond(Cardinality::Any(), Cardinality::Any(),
                  Cardinality::Any());
  PathSearchOptions options;
  options.max_length = 1;
  EXPECT_EQ(
      EnumeratePaths(diamond.graph, diamond.start, diamond.end, options)
          .size(),
      1u);
}

TEST(PathSearchTest, SelectsMoreConciseCardinality) {
  // Long route infers 1 (most concise), direct infers 0..*.
  Diamond diamond(Cardinality::Any(), Cardinality::Exactly(1),
                  Cardinality::Exactly(1));
  auto best = FindBestPath(diamond.graph, diamond.start, diamond.end);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->length(), 2u);
  EXPECT_EQ(best->inferred, Cardinality::Exactly(1));
}

TEST(PathSearchTest, EqualCardinalityPrefersShorterPath) {
  // Both routes infer 0..* -> Occam's razor picks the direct one.
  Diamond diamond(Cardinality::Any(), Cardinality::Any(),
                  Cardinality::Any());
  auto best = FindBestPath(diamond.graph, diamond.start, diamond.end);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->length(), 1u);
}

TEST(PathSearchTest, IncomparableCardinalitiesPickTighterInterval) {
  // Direct: 0..1 (width 1); long: 1..3 (width 2). Neither subset of the
  // other -> tighter interval wins.
  Diamond diamond(Cardinality::Optional(), Cardinality::Exactly(1),
                  Cardinality::Between(1, 3));
  auto best = FindBestPath(diamond.graph, diamond.start, diamond.end);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->inferred, Cardinality::Optional());
}

TEST(PathSearchTest, NoPathReturnsNullopt) {
  CsgGraph graph;
  NodeId a = graph.AddTableNode("a");
  NodeId b = graph.AddTableNode("b");
  EXPECT_FALSE(FindBestPath(graph, a, b).has_value());
}

TEST(PathSearchTest, IsMoreConciseIsStrict) {
  PathMatch narrow{{0}, Cardinality::Exactly(1)};
  PathMatch wide{{1}, Cardinality::Any()};
  EXPECT_TRUE(IsMoreConcise(narrow, wide));
  EXPECT_FALSE(IsMoreConcise(wide, narrow));
  EXPECT_FALSE(IsMoreConcise(narrow, narrow));
}

TEST(PathSearchTest, SelectEmptyCandidates) {
  EXPECT_FALSE(SelectMostConcise({}).has_value());
}

TEST(PathSearchTest, DescribePathRendersChain) {
  Diamond diamond(Cardinality::Any(), Cardinality::Any(),
                  Cardinality::Any());
  std::vector<PathMatch> paths =
      EnumeratePaths(diamond.graph, diamond.start, diamond.end);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(DescribePath(diamond.graph, paths[1].path),
            "start -> start.mid ==> other.end");
  EXPECT_EQ(DescribePath(diamond.graph, {}), "(empty path)");
}

TEST(PathSearchTest, CandidateCapRespected) {
  // A ladder graph with exponentially many paths; the cap must hold.
  CsgGraph graph;
  constexpr int kRungs = 12;
  std::vector<NodeId> left(kRungs);
  std::vector<NodeId> right(kRungs);
  for (int i = 0; i < kRungs; ++i) {
    left[i] = graph.AddTableNode("l" + std::to_string(i));
    right[i] = graph.AddTableNode("r" + std::to_string(i));
    if (i > 0) {
      graph.AddRelationshipPair(left[i - 1], left[i],
                                CsgEdgeKind::kAttribute, Cardinality::Any(),
                                Cardinality::Any());
      graph.AddRelationshipPair(right[i - 1], right[i],
                                CsgEdgeKind::kAttribute, Cardinality::Any(),
                                Cardinality::Any());
    }
    graph.AddRelationshipPair(left[i], right[i], CsgEdgeKind::kAttribute,
                              Cardinality::Any(), Cardinality::Any());
  }
  PathSearchOptions options;
  options.max_length = 24;
  options.max_candidates = 50;
  std::vector<PathMatch> paths =
      EnumeratePaths(graph, left[0], right[kRungs - 1], options);
  EXPECT_LE(paths.size(), 50u);
  EXPECT_FALSE(paths.empty());
}

}  // namespace
}  // namespace efes
