// Tests for the Completeness pipeline step (profiling-completed sources),
// value-detector sampling, and the CSG DOT renderer.

#include <gtest/gtest.h>

#include "efes/csg/builder.h"
#include "efes/csg/render_dot.h"
#include "efes/profiling/constraint_discovery.h"
#include "efes/scenario/paper_example.h"
#include "efes/values/value_module.h"

namespace efes {
namespace {

TEST(CompletenessTest, DatabaseRebuildKeepsDataAddsConstraints) {
  auto scenario = MakePaperExample();
  ASSERT_TRUE(scenario.ok());
  const Database& original = scenario->sources[0].database;
  auto completed = DatabaseWithDiscoveredConstraints(original);
  ASSERT_TRUE(completed.ok()) << completed.status().ToString();
  EXPECT_GT(completed->schema().constraints().size(),
            original.schema().constraints().size());
  EXPECT_EQ(completed->TotalRowCount(), original.TotalRowCount());
  // Mined constraints hold exactly, so the instance stays valid.
  EXPECT_TRUE(completed->SatisfiesConstraints());
  // The data is bit-identical.
  const Table* original_albums = *original.table("albums");
  const Table* completed_albums = *completed->table("albums");
  for (size_t r = 0; r < original_albums->row_count(); ++r) {
    EXPECT_EQ(completed_albums->at(r, 1), original_albums->at(r, 1));
  }
}

TEST(CompletenessTest, DiscoveredNotNullTightensCsgCardinality) {
  auto scenario = MakePaperExample();
  ASSERT_TRUE(scenario.ok());
  // songs.album is nullable in the declared schema but fully filled in
  // the data: profiling discovers NOT NULL, which tightens
  // κ(songs -> album) from 0..1 to 1 in the CSG.
  auto completed =
      DatabaseWithDiscoveredConstraints(scenario->sources[0].database);
  ASSERT_TRUE(completed.ok());
  EXPECT_TRUE(completed->schema().IsNotNullable("songs", "album"));

  CsgGraph before = BuildCsgGraph(scenario->sources[0].database);
  CsgGraph after = BuildCsgGraph(*completed);
  auto find_forward = [](const CsgGraph& graph) {
    NodeId songs = *graph.FindTableNode("songs");
    NodeId album = *graph.FindAttributeNode("songs", "album");
    for (RelationshipId rel_id : graph.OutgoingOf(songs)) {
      if (graph.relationship(rel_id).to == album) {
        return graph.relationship(rel_id).prescribed;
      }
    }
    return Cardinality::Any();
  };
  EXPECT_EQ(find_forward(before), Cardinality::Optional());
  EXPECT_EQ(find_forward(after), Cardinality::Exactly(1));
}

TEST(SamplingTest, SampledDetectorFindsTheSameHeterogeneity) {
  auto scenario = MakePaperExample();
  ASSERT_TRUE(scenario.ok());
  ValueFitOptions options;
  options.sample_limit = 200;  // instead of 3000 song rows
  ValueModule sampled(options);
  auto report = sampled.AssessComplexity(*scenario);
  ASSERT_TRUE(report.ok());
  const auto& value_report =
      static_cast<const ValueComplexityReport&>(**report);
  ASSERT_EQ(value_report.heterogeneities().size(), 1u);
  const ValueHeterogeneity& h = value_report.heterogeneities()[0];
  EXPECT_EQ(h.type, ValueHeterogeneityType::kDifferentRepresentations);
  EXPECT_EQ(h.target_attribute, "tracks.duration");
  // The sample caps the counted values.
  EXPECT_LE(h.source_values, 200u);
}

TEST(SamplingTest, ZeroLimitMeansFullScan) {
  auto scenario = MakePaperExample();
  ASSERT_TRUE(scenario.ok());
  ValueModule full{ValueFitOptions{}};
  auto report = full.AssessComplexity(*scenario);
  ASSERT_TRUE(report.ok());
  const auto& value_report =
      static_cast<const ValueComplexityReport&>(**report);
  ASSERT_EQ(value_report.heterogeneities().size(), 1u);
  EXPECT_EQ(value_report.heterogeneities()[0].source_values, 3000u);
}

TEST(RenderDotTest, EmitsNodesAndEdges) {
  auto scenario = MakePaperExample();
  ASSERT_TRUE(scenario.ok());
  CsgGraph graph = BuildCsgGraph(scenario->target);
  std::string dot = RenderCsgDot(graph, "Target CSG");
  EXPECT_NE(dot.find("graph csg {"), std::string::npos);
  EXPECT_NE(dot.find("label=\"Target CSG\""), std::string::npos);
  EXPECT_NE(dot.find("records.artist"), std::string::npos);
  EXPECT_NE(dot.find("shape=box"), std::string::npos);
  EXPECT_NE(dot.find("shape=ellipse"), std::string::npos);
  // FK equality edge dashed, labelled with both cardinalities.
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
  EXPECT_NE(dot.find("1 / 0..1"), std::string::npos);
  // Each conceptual relationship appears exactly once: 8 attribute edges
  // + 1 equality edge.
  size_t edges = 0;
  for (size_t pos = dot.find(" -- "); pos != std::string::npos;
       pos = dot.find(" -- ", pos + 1)) {
    ++edges;
  }
  EXPECT_EQ(edges, 8u);
}

}  // namespace
}  // namespace efes
