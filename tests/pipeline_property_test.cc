// Pipeline-level property tests: turning the generator knobs must move
// the detector outputs in the expected direction (monotonicity of the
// whole estimation chain with respect to data complexity).

#include <gtest/gtest.h>

#include "efes/common/parallel.h"
#include "efes/experiment/default_pipeline.h"
#include "efes/experiment/json_export.h"
#include "efes/values/value_module.h"
#include "efes/scenario/bibliographic.h"
#include "efes/scenario/music.h"
#include "efes/scenario/paper_example.h"

namespace efes {
namespace {

double HighQualityMinutes(const IntegrationScenario& scenario) {
  EfesEngine engine = MakeDefaultEngine();
  auto result = engine.Run(scenario, ExpectedQuality::kHighQuality);
  EXPECT_TRUE(result.ok());
  return result->estimate.TotalMinutes();
}

double StructureMinutes(const IntegrationScenario& scenario) {
  EfesEngine engine = MakeDefaultEngine();
  auto result = engine.Run(scenario, ExpectedQuality::kHighQuality);
  EXPECT_TRUE(result.ok());
  return result->estimate.CategoryMinutes(TaskCategory::kCleaningStructure);
}

class OrphanSweepTest : public ::testing::TestWithParam<size_t> {};

TEST_P(OrphanSweepTest, MoreOrphanArtistsMoreStructureEffort) {
  PaperExampleOptions base;
  base.album_count = 300;
  base.song_count = 300;
  base.multi_artist_albums = 20;
  base.orphan_artists = GetParam();
  auto scenario = MakePaperExample(base);
  ASSERT_TRUE(scenario.ok());
  // Add missing values scales at 2 min per orphan plus constants.
  double structure = StructureMinutes(*scenario);
  EXPECT_GE(structure, 2.0 * static_cast<double>(GetParam()));
  EXPECT_LE(structure, 2.0 * static_cast<double>(GetParam()) + 40.0);
}

INSTANTIATE_TEST_SUITE_P(Counts, OrphanSweepTest,
                         ::testing::Values(10, 40, 120));

TEST(GeneratorKnobTest, MultiArtistCountDrivesMergeRepetitions) {
  EfesEngine engine = MakeDefaultEngine();
  for (size_t multi : {15u, 60u, 150u}) {
    PaperExampleOptions options;
    options.album_count = 300;
    options.song_count = 300;
    options.multi_artist_albums = multi;
    options.orphan_artists = 0;
    auto scenario = MakePaperExample(options);
    ASSERT_TRUE(scenario.ok());
    auto result = engine.Run(*scenario, ExpectedQuality::kHighQuality);
    ASSERT_TRUE(result.ok());
    bool found = false;
    for (const TaskEstimate& task : result->estimate.tasks) {
      if (task.task.type == TaskType::kMergeValues) {
        found = true;
        EXPECT_DOUBLE_EQ(task.task.Param(task_params::kRepetitions),
                         static_cast<double>(multi));
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(GeneratorKnobTest, MissingVenueRateDrivesNotNullConflicts) {
  double previous = -1.0;
  for (double rate : {0.05, 0.15, 0.3}) {
    BiblioOptions options;
    options.publication_count = 400;
    options.missing_venue_rate = rate;
    auto scenario =
        MakeBiblioScenario(BiblioSchemaId::kS1, BiblioSchemaId::kS2, options);
    ASSERT_TRUE(scenario.ok());
    double structure = StructureMinutes(*scenario);
    EXPECT_GT(structure, previous);
    previous = structure;
  }
}

TEST(GeneratorKnobTest, SloppyYearRateDrivesValueEffortMonotonically) {
  // More sloppy years -> more uncastable values; the conversion stays one
  // script (systematic) but the low-effort drop decision stays constant
  // too — so assert on detected affected values instead.
  size_t previous = 0;
  for (double rate : {0.1, 0.3, 0.6}) {
    BiblioOptions options;
    options.publication_count = 400;
    options.sloppy_year_rate = rate;
    auto scenario =
        MakeBiblioScenario(BiblioSchemaId::kS1, BiblioSchemaId::kS2, options);
    ASSERT_TRUE(scenario.ok());
    EfesEngine engine = MakeDefaultEngine();
    auto reports = engine.AssessComplexity(*scenario);
    ASSERT_TRUE(reports.ok());
    size_t affected = 0;
    for (const auto& report : *reports) {
      if (report->module_name() != "values") continue;
      const auto& value_report =
          static_cast<const ValueComplexityReport&>(*report);
      for (const ValueHeterogeneity& h : value_report.heterogeneities()) {
        if (h.type ==
            ValueHeterogeneityType::kDifferentRepresentationsCritical) {
          affected += h.affected_values;
        }
      }
    }
    EXPECT_GT(affected, previous);
    previous = affected;
  }
}

TEST(GeneratorKnobTest, ScenarioSizeScalesButIdentityStaysClean) {
  for (size_t discs : {50u, 200u}) {
    MusicOptions options;
    options.disc_count = discs;
    auto scenario = MakeMusicScenario(MusicSchemaId::kDiscogs,
                                      MusicSchemaId::kDiscogs, options);
    ASSERT_TRUE(scenario.ok());
    EfesEngine engine = MakeDefaultEngine();
    auto result = engine.Run(*scenario, ExpectedQuality::kHighQuality);
    ASSERT_TRUE(result.ok());
    EXPECT_DOUBLE_EQ(
        result->estimate.CategoryMinutes(TaskCategory::kCleaningStructure),
        0.0);
    EXPECT_DOUBLE_EQ(
        result->estimate.CategoryMinutes(TaskCategory::kCleaningValues),
        0.0);
  }
}

TEST(GeneratorKnobTest, ThreadCountKnobNeverChangesEstimate) {
  // The execution knob (unlike the data knobs above) must be invisible
  // in the output: the whole pipeline is required to be bit-identical
  // for any thread count.
  BiblioOptions options;
  options.publication_count = 300;
  options.missing_venue_rate = 0.1;
  options.sloppy_year_rate = 0.25;
  auto scenario =
      MakeBiblioScenario(BiblioSchemaId::kS1, BiblioSchemaId::kS2, options);
  ASSERT_TRUE(scenario.ok());
  std::string baseline;
  for (size_t threads : {1u, 2u, 3u, 8u}) {
    SetThreadCountOverride(threads);
    EfesEngine engine = MakeDefaultEngine();
    auto result = engine.Run(*scenario, ExpectedQuality::kHighQuality);
    ASSERT_TRUE(result.ok()) << result.status();
    std::string json = EstimationResultToJson(*result);
    if (baseline.empty()) {
      baseline = std::move(json);
    } else {
      EXPECT_EQ(json, baseline) << "threads=" << threads;
    }
  }
  SetThreadCountOverride(0);
  EXPECT_FALSE(baseline.empty());
}

TEST(GeneratorKnobTest, ExtendedLookupsDoNotChangeEfesEstimate) {
  MusicOptions base;
  base.disc_count = 100;
  MusicOptions extended = base;
  extended.extended_lookups = true;
  auto base_scenario = MakeMusicScenario(MusicSchemaId::kMusicbrainz,
                                         MusicSchemaId::kDiscogs, base);
  auto extended_scenario = MakeMusicScenario(
      MusicSchemaId::kMusicbrainz, MusicSchemaId::kDiscogs, extended);
  ASSERT_TRUE(base_scenario.ok());
  ASSERT_TRUE(extended_scenario.ok());
  EXPECT_GT(extended_scenario->TotalSourceAttributeCount(),
            base_scenario->TotalSourceAttributeCount() + 40);
  EXPECT_DOUBLE_EQ(HighQualityMinutes(*extended_scenario),
                   HighQualityMinutes(*base_scenario));
}

}  // namespace
}  // namespace efes
