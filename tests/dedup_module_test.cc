// Unit tests of the deduplication estimation module: blocking-key
// selection, cluster formation and pair math, task pricing, config
// validation, provenance linkage, and fault containment.

#include "efes/dedup/dedup_module.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "efes/common/fault.h"
#include "efes/core/effort_config.h"
#include "efes/core/effort_model.h"
#include "efes/experiment/default_pipeline.h"
#include "efes/provenance/provenance.h"

namespace efes {
namespace {

Database MustCreate(Schema schema) {
  auto database = Database::Create(std::move(schema));
  EXPECT_TRUE(database.ok()) << database.status();
  return std::move(*database);
}

void MustAppend(Database& database, std::string_view relation,
                std::vector<Value> row) {
  auto table = database.mutable_table(relation);
  ASSERT_TRUE(table.ok()) << table.status();
  Status appended = (*table)->AppendRow(std::move(row));
  ASSERT_TRUE(appended.ok()) << appended;
}

Schema PersonSchema(const std::string& name, const std::string& relation) {
  Schema schema(name);
  Status added = schema.AddRelation(
      RelationDef(relation, {{"id", DataType::kInteger},
                             {"name", DataType::kText},
                             {"city", DataType::kText}}));
  EXPECT_TRUE(added.ok()) << added;
  schema.AddConstraint(Constraint::PrimaryKey(relation, {"id"}));
  return schema;
}

CorrespondenceSet PersonCorrespondences(const std::string& relation) {
  CorrespondenceSet correspondences;
  correspondences.AddAttribute(relation, "id", "person", "id");
  correspondences.AddAttribute(relation, "name", "person", "name");
  correspondences.AddAttribute(relation, "city", "person", "city");
  return correspondences;
}

/// Two sources sharing two entities ("Ada Lovelace", "Alan Turing", the
/// names dirtied in source 2) plus unique filler rows. The surrogate ids
/// collide across sources on purpose — the blocking key must skip them.
IntegrationScenario MakeTwoSourceScenario() {
  IntegrationScenario scenario("dedup_unit",
                               MustCreate(PersonSchema("target", "person")));

  Database s1 = MustCreate(PersonSchema("s1", "people_a"));
  MustAppend(s1, "people_a",
             {Value::Integer(1), Value::Text("Ada Lovelace"),
              Value::Text("london")});
  MustAppend(s1, "people_a",
             {Value::Integer(2), Value::Text("Alan Turing"),
              Value::Text("london")});
  MustAppend(s1, "people_a",
             {Value::Integer(3), Value::Text("Grace Hopper"),
              Value::Text("new york")});
  scenario.AddSource(std::move(s1), PersonCorrespondences("people_a"));

  Database s2 = MustCreate(PersonSchema("s2", "people_b"));
  MustAppend(s2, "people_b",
             {Value::Integer(1), Value::Text("  ADA  Lovelace "),
              Value::Text("london")});
  MustAppend(s2, "people_b",
             {Value::Integer(2), Value::Text("alan turing"),
              Value::Text("london")});
  MustAppend(s2, "people_b",
             {Value::Integer(3), Value::Text("Edsger Dijkstra"),
              Value::Text("austin")});
  scenario.AddSource(std::move(s2), PersonCorrespondences("people_b"));
  return scenario;
}

const DedupComplexityReport& AsDedupReport(const ComplexityReport& report) {
  const auto* dedup = dynamic_cast<const DedupComplexityReport*>(&report);
  EXPECT_NE(dedup, nullptr);
  return *dedup;
}

TEST(NormalizeEntityKeyTest, LowercasesTrimsAndCollapsesWhitespace) {
  EXPECT_EQ(NormalizeEntityKey("  Alpha  CORP "), "alpha corp");
  EXPECT_EQ(NormalizeEntityKey("alpha corp"), "alpha corp");
  EXPECT_EQ(NormalizeEntityKey("\tA\n B\t"), "a b");
  EXPECT_EQ(NormalizeEntityKey("   "), "");
  EXPECT_EQ(NormalizeEntityKey(""), "");
}

TEST(DedupModuleTest, DetectsCrossSourceClustersViaTheNaturalKey) {
  IntegrationScenario scenario = MakeTwoSourceScenario();
  DedupModule module;
  auto report = module.AssessComplexity(scenario);
  ASSERT_TRUE(report.ok()) << report.status();
  const DedupComplexityReport& dedup = AsDedupReport(**report);
  ASSERT_EQ(dedup.findings().size(), 1u);
  const DuplicateClusterFinding& finding = dedup.findings()[0];
  EXPECT_EQ(finding.target_relation, "person");
  // The colliding surrogate ids (1, 2, 3 in both sources) are target-PK
  // attributes and must not be chosen as the blocking key.
  EXPECT_EQ(finding.blocking_key, "name");
  EXPECT_EQ(finding.cluster_count, 2u);
  EXPECT_EQ(finding.duplicate_records, 2u);   // one extra record per pair
  EXPECT_EQ(finding.verification_pairs, 2u);  // C(2,2) per cluster
  EXPECT_EQ(finding.max_cluster_size, 2u);
  ASSERT_EQ(finding.feeds.size(), 2u);
  EXPECT_EQ(finding.feeds[0], "s1:people_a");
  EXPECT_EQ(finding.feeds[1], "s2:people_b");
  // The normalized keys of the dirtied names.
  ASSERT_EQ(finding.clusters.size(), 2u);
  EXPECT_EQ(finding.clusters[0].key, "ada lovelace");
  EXPECT_EQ(finding.clusters[0].size, 2u);
  EXPECT_EQ(finding.clusters[0].pair_count, 1u);
  EXPECT_EQ(finding.clusters[1].key, "alan turing");
}

TEST(DedupModuleTest, SingleSourceScenarioHasNoFindings) {
  IntegrationScenario scenario("single",
                               MustCreate(PersonSchema("target", "person")));
  Database s1 = MustCreate(PersonSchema("s1", "people_a"));
  MustAppend(s1, "people_a",
             {Value::Integer(1), Value::Text("Ada Lovelace"),
              Value::Text("london")});
  MustAppend(s1, "people_a",
             {Value::Integer(2), Value::Text("Ada Lovelace"),
              Value::Text("london")});
  scenario.AddSource(std::move(s1), PersonCorrespondences("people_a"));
  DedupModule module;
  auto report = module.AssessComplexity(scenario);
  ASSERT_TRUE(report.ok()) << report.status();
  // Duplicates within one feed are that source's own UNIQUE problem, not
  // cross-source deduplication work.
  EXPECT_EQ(AsDedupReport(**report).findings().size(), 0u);
  EXPECT_EQ((*report)->ProblemCount(), 0u);
}

TEST(DedupModuleTest, OversizeBlocksAreSkippedNotPriced) {
  IntegrationScenario scenario = MakeTwoSourceScenario();
  DedupOptions options;
  options.max_block_size = 1;  // every cross-feed block (size 2) is over
  DedupModule module(options);
  auto report = module.AssessComplexity(scenario);
  ASSERT_TRUE(report.ok()) << report.status();
  // All candidate blocks oversize -> no clusters -> no finding at all.
  EXPECT_EQ(AsDedupReport(**report).findings().size(), 0u);
}

TEST(DedupModuleTest, InvalidOptionsAreRejectedNotClamped) {
  IntegrationScenario scenario = MakeTwoSourceScenario();
  DedupOptions negative_cost;
  negative_cost.pair_review_minutes = -0.5;
  auto rejected = DedupModule(negative_cost).AssessComplexity(scenario);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);

  DedupOptions zero_block;
  zero_block.max_block_size = 0;
  rejected = DedupModule(zero_block).AssessComplexity(scenario);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);

  DedupOptions bad_fraction;
  bad_fraction.min_key_fill = 1.5;
  rejected = DedupModule(bad_fraction).AssessComplexity(scenario);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
}

TEST(DedupModuleTest, HighQualityPlansResolutionPricedPerClusterAndPair) {
  IntegrationScenario scenario = MakeTwoSourceScenario();
  DedupModule module;
  auto report = module.AssessComplexity(scenario);
  ASSERT_TRUE(report.ok()) << report.status();
  auto tasks = module.PlanTasks(**report, ExpectedQuality::kHighQuality,
                                ExecutionSettings{});
  ASSERT_TRUE(tasks.ok()) << tasks.status();
  ASSERT_EQ(tasks->size(), 1u);
  const Task& task = (*tasks)[0];
  EXPECT_EQ(task.type, TaskType::kResolveDuplicateClusters);
  EXPECT_EQ(task.category, TaskCategory::kDeduplication);
  EXPECT_EQ(task.subject, "person via name");
  EXPECT_EQ(task.Param(task_params::kClusters), 2.0);
  EXPECT_EQ(task.Param(task_params::kPairs), 2.0);
  // Table 9 extension default: 2 * #clusters + 0.5 * #pairs.
  EffortExplanation explained =
      EffortModel::PaperDefault().Explain(task, ExecutionSettings{});
  EXPECT_DOUBLE_EQ(explained.minutes, 2.0 * 2.0 + 0.5 * 2.0);
}

TEST(DedupModuleTest, LowEffortPlansOneDropScript) {
  IntegrationScenario scenario = MakeTwoSourceScenario();
  DedupModule module;
  auto report = module.AssessComplexity(scenario);
  ASSERT_TRUE(report.ok()) << report.status();
  auto tasks = module.PlanTasks(**report, ExpectedQuality::kLowEffort,
                                ExecutionSettings{});
  ASSERT_TRUE(tasks.ok()) << tasks.status();
  ASSERT_EQ(tasks->size(), 1u);
  EXPECT_EQ((*tasks)[0].type, TaskType::kDropDuplicateRecords);
  EffortExplanation explained =
      EffortModel::PaperDefault().Explain((*tasks)[0], ExecutionSettings{});
  EXPECT_DOUBLE_EQ(explained.minutes, 8.0);
}

TEST(DedupModuleTest, ForeignReportIsRejected) {
  class OtherReport : public ComplexityReport {
   public:
    std::string module_name() const override { return "other"; }
    std::string ToText() const override { return ""; }
    size_t ProblemCount() const override { return 0; }
  };
  OtherReport foreign;
  DedupModule module;
  auto tasks = module.PlanTasks(foreign, ExpectedQuality::kHighQuality,
                                ExecutionSettings{});
  ASSERT_FALSE(tasks.ok());
  EXPECT_EQ(tasks.status().code(), StatusCode::kInvalidArgument);
}

TEST(DedupModuleTest, ConfigSectionRepricesTheResolutionFunction) {
  auto config = ParseEffortConfig(
      "[dedup]\n"
      "pair_review_minutes = 1\n"
      "cluster_resolution_minutes = 4\n"
      "drop_script_minutes = 5\n");
  ASSERT_TRUE(config.ok()) << config.status();
  EXPECT_DOUBLE_EQ(config->dedup.pair_review_minutes, 1.0);
  Task resolve;
  resolve.type = TaskType::kResolveDuplicateClusters;
  resolve.parameters[task_params::kClusters] = 2.0;
  resolve.parameters[task_params::kPairs] = 10.0;
  EXPECT_DOUBLE_EQ(
      config->model.Explain(resolve, ExecutionSettings{}).minutes,
      4.0 * 2.0 + 1.0 * 10.0);
  Task drop;
  drop.type = TaskType::kDropDuplicateRecords;
  EXPECT_DOUBLE_EQ(config->model.Explain(drop, ExecutionSettings{}).minutes,
                   5.0);
}

TEST(DedupModuleTest, ConfigRejectsInvalidValuesWithInvalidArgument) {
  auto negative = ParseEffortConfig("[dedup]\npair_review_minutes = -1\n");
  ASSERT_FALSE(negative.ok());
  EXPECT_EQ(negative.status().code(), StatusCode::kInvalidArgument);

  auto zero_block = ParseEffortConfig("[dedup]\nmax_block_size = 0\n");
  ASSERT_FALSE(zero_block.ok());
  EXPECT_EQ(zero_block.status().code(), StatusCode::kInvalidArgument);

  auto malformed = ParseEffortConfig("[dedup]\nmax_block_size = many\n");
  ASSERT_FALSE(malformed.ok());
  EXPECT_EQ(malformed.status().code(), StatusCode::kParseError);

  auto unknown = ParseEffortConfig("[dedup]\nno_such_knob = 1\n");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kParseError);
}

TEST(DedupModuleTest, AssessmentRecordsFindingProvenance) {
  IntegrationScenario scenario = MakeTwoSourceScenario();
  ProvenanceRecorder recorder;
  ScopedProvenanceRecorder scoped(&recorder);
  DedupModule module;
  auto report = module.AssessComplexity(scenario);
  ASSERT_TRUE(report.ok()) << report.status();
  const DedupComplexityReport& dedup = AsDedupReport(**report);
  EXPECT_NE((*report)->provenance_node(), 0u);
  ASSERT_EQ(dedup.findings().size(), 1u);
  EXPECT_NE(dedup.findings()[0].provenance, 0u);
  auto tasks = module.PlanTasks(**report, ExpectedQuality::kHighQuality,
                                ExecutionSettings{});
  ASSERT_TRUE(tasks.ok()) << tasks.status();
  ASSERT_EQ(tasks->size(), 1u);
  ASSERT_EQ((*tasks)[0].provenance.size(), 1u);
  EXPECT_EQ((*tasks)[0].provenance[0], dedup.findings()[0].provenance);
}

TEST(DedupModuleTest, DetectFaultIsContainedByTheEngine) {
  IntegrationScenario scenario = MakeTwoSourceScenario();
  ASSERT_TRUE(
      FaultRegistry::Global().ArmFromString("dedup.detect:once").ok());
  EfesEngine engine = MakeDefaultEngine();
  auto result = engine.Run(scenario, ExpectedQuality::kHighQuality);
  FaultRegistry::Global().DisarmAll();
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->degraded);
  ASSERT_EQ(result->module_runs.size(), 4u);
  bool saw_dedup = false;
  for (const ModuleRun& run : result->module_runs) {
    if (run.module == "dedup") {
      saw_dedup = true;
      EXPECT_FALSE(run.status.ok());
      EXPECT_TRUE(run.tasks.empty());
    } else {
      EXPECT_TRUE(run.status.ok()) << run.module << ": " << run.status;
    }
  }
  EXPECT_TRUE(saw_dedup);
}

}  // namespace
}  // namespace efes
