// Randomized property tests over the core invariants:
//   * cardinality algebra laws on random intervals;
//   * CSG construction vs. direct recounting on random databases;
//   * repair-planner termination and virtual-instance validity on random
//     conflict sets;
//   * statistics vs. naive reference implementations on random columns.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <unordered_set>

#include "efes/common/random.h"
#include "efes/csg/builder.h"
#include "efes/csg/cardinality.h"
#include "efes/profiling/profiler.h"
#include "efes/profiling/statistics.h"
#include "efes/structure/repair_planner.h"

namespace efes {
namespace {

Cardinality RandomCardinality(Random& rng) {
  uint64_t lo = rng.UniformUint64(4);
  if (rng.Bernoulli(0.3)) return Cardinality::AtLeast(lo);
  uint64_t hi = lo + rng.UniformUint64(4);
  return Cardinality::Between(lo, hi);
}

class AlgebraPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AlgebraPropertyTest, IntersectIsSubsetOfBoth) {
  Random rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    Cardinality a = RandomCardinality(rng);
    Cardinality b = RandomCardinality(rng);
    Cardinality intersection = a.Intersect(b);
    EXPECT_TRUE(intersection.IsSubsetOf(a));
    EXPECT_TRUE(intersection.IsSubsetOf(b));
    // Hull contains both.
    Cardinality hull = a.Hull(b);
    EXPECT_TRUE(a.IsSubsetOf(hull));
    EXPECT_TRUE(b.IsSubsetOf(hull));
  }
}

TEST_P(AlgebraPropertyTest, SubsetIsPartialOrder) {
  Random rng(GetParam() + 1);
  for (int i = 0; i < 200; ++i) {
    Cardinality a = RandomCardinality(rng);
    Cardinality b = RandomCardinality(rng);
    Cardinality c = RandomCardinality(rng);
    EXPECT_TRUE(a.IsSubsetOf(a));  // reflexive
    if (a.IsSubsetOf(b) && b.IsSubsetOf(a)) {
      EXPECT_EQ(a, b);  // antisymmetric
    }
    if (a.IsSubsetOf(b) && b.IsSubsetOf(c)) {
      EXPECT_TRUE(a.IsSubsetOf(c));  // transitive
    }
  }
}

TEST_P(AlgebraPropertyTest, ComposeIsMonotone) {
  // Tighter inputs never widen the composition.
  Random rng(GetParam() + 2);
  for (int i = 0; i < 200; ++i) {
    Cardinality a = RandomCardinality(rng);
    Cardinality b = RandomCardinality(rng);
    Cardinality a_sub = a.Intersect(RandomCardinality(rng));
    if (a_sub.is_empty()) continue;
    EXPECT_TRUE(Cardinality::Compose(a_sub, b)
                    .IsSubsetOf(Cardinality::Compose(a, b)))
        << a.ToString() << " " << a_sub.ToString() << " " << b.ToString();
  }
}

TEST_P(AlgebraPropertyTest, ComposeWithExactlyOneIsIdentity) {
  Random rng(GetParam() + 3);
  for (int i = 0; i < 100; ++i) {
    Cardinality a = RandomCardinality(rng);
    EXPECT_EQ(Cardinality::Compose(Cardinality::Exactly(1), a), a);
  }
}

TEST_P(AlgebraPropertyTest, UnionBoundsAreSound) {
  Random rng(GetParam() + 4);
  for (int i = 0; i < 200; ++i) {
    Cardinality a = RandomCardinality(rng);
    Cardinality b = RandomCardinality(rng);
    // Sample x ∈ a and y ∈ b; then x + y must lie in the disjoint-
    // codomain union and max(x,y)..x+y within the overlapping union.
    uint64_t x = a.min() + rng.UniformUint64(3);
    if (!a.Contains(x)) x = a.min();
    uint64_t y = b.min() + rng.UniformUint64(3);
    if (!b.Contains(y)) y = b.min();
    EXPECT_TRUE(Cardinality::UnionDisjointCodomains(a, b).Contains(x + y));
    Cardinality overlapping = Cardinality::UnionOverlapping(a, b);
    EXPECT_TRUE(overlapping.Contains(std::max(x, y)));
    EXPECT_TRUE(overlapping.Contains(x + y));
    EXPECT_TRUE(Cardinality::UnionDisjointDomains(a, b).Contains(x));
    EXPECT_TRUE(Cardinality::UnionDisjointDomains(a, b).Contains(y));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlgebraPropertyTest,
                         ::testing::Values(11, 22, 33, 44));

// --- CSG construction vs direct recounting ---------------------------------

/// Builds a random two-relation database (parent with unique ids, child
/// with an optionally dangling FK and nullable payload).
Database RandomDatabase(Random& rng) {
  Schema schema("random");
  (void)schema.AddRelation(RelationDef(
      "parent", {{"id", DataType::kInteger}, {"name", DataType::kText}}));
  (void)schema.AddRelation(RelationDef(
      "child", {{"pid", DataType::kInteger}, {"note", DataType::kText}}));
  schema.AddConstraint(Constraint::PrimaryKey("parent", {"id"}));
  schema.AddConstraint(
      Constraint::ForeignKey("child", {"pid"}, "parent", {"id"}));
  auto db = Database::Create(std::move(schema));
  size_t parents = 3 + rng.UniformUint64(8);
  Table* parent = *db->mutable_table("parent");
  for (size_t i = 0; i < parents; ++i) {
    EXPECT_TRUE(parent
                    ->AppendRow({Value::Integer(static_cast<int64_t>(i)),
                                 Value::Text(rng.Word(3, 6))})
                    .ok());
  }
  Table* child = *db->mutable_table("child");
  size_t children = rng.UniformUint64(20);
  for (size_t i = 0; i < children; ++i) {
    // 15% dangling references, 20% null notes.
    int64_t pid = rng.Bernoulli(0.15)
                      ? static_cast<int64_t>(parents + 100)
                      : static_cast<int64_t>(rng.UniformUint64(parents));
    EXPECT_TRUE(child
                    ->AppendRow({Value::Integer(pid),
                                 rng.Bernoulli(0.2)
                                     ? Value::Null()
                                     : Value::Text(rng.Word(3, 6))})
                    .ok());
  }
  return std::move(*db);
}

class CsgPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsgPropertyTest, EqualityViolationsMatchDanglingFkCount) {
  Random rng(GetParam());
  for (int round = 0; round < 10; ++round) {
    Database db = RandomDatabase(rng);
    Csg csg = BuildCsg(db);

    // Count dangling child pids directly.
    const Table* child = *db.table("child");
    const Table* parent = *db.table("parent");
    std::unordered_set<Value, ValueHash> parent_ids;
    for (const Value& v : parent->column(0)) parent_ids.insert(v);
    std::set<std::string> dangling;
    for (const Value& v : child->column(0)) {
      if (!v.is_null() && parent_ids.count(v) == 0) {
        dangling.insert(v.ToString());
      }
    }

    // Find the equality relationship child.pid ==> parent.id.
    NodeId pid_node = *csg.graph.FindAttributeNode("child", "pid");
    size_t violations = 0;
    for (RelationshipId rel_id : csg.graph.OutgoingOf(pid_node)) {
      const CsgRelationship& rel = csg.graph.relationship(rel_id);
      if (rel.kind == CsgEdgeKind::kEquality) {
        violations = csg.instance.CountViolations(csg.graph, rel_id,
                                                  Cardinality::Exactly(1));
      }
    }
    EXPECT_EQ(violations, dangling.size());
  }
}

TEST_P(CsgPropertyTest, TableToAttributeDegreesNeverExceedOne) {
  // Relational conformity: each tuple has at most one value per attribute
  // — must hold for every converted database by construction.
  Random rng(GetParam() + 50);
  Database db = RandomDatabase(rng);
  Csg csg = BuildCsg(db);
  for (const CsgRelationship& rel : csg.graph.relationships()) {
    if (rel.kind != CsgEdgeKind::kAttribute) continue;
    if (csg.graph.node(rel.from).kind != CsgNodeKind::kTable) continue;
    for (const auto& [element, degree] :
         csg.instance.OutDegrees(csg.graph, rel.id)) {
      EXPECT_LE(degree, 1u);
    }
  }
}

TEST_P(CsgPropertyTest, AttributeToTableDegreesAtLeastOne) {
  // Every attribute value is contained in a tuple.
  Random rng(GetParam() + 100);
  Database db = RandomDatabase(rng);
  Csg csg = BuildCsg(db);
  for (const CsgRelationship& rel : csg.graph.relationships()) {
    if (rel.kind != CsgEdgeKind::kAttribute) continue;
    if (csg.graph.node(rel.from).kind != CsgNodeKind::kAttribute) continue;
    for (const auto& [element, degree] :
         csg.instance.OutDegrees(csg.graph, rel.id)) {
      EXPECT_GE(degree, 1u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsgPropertyTest,
                         ::testing::Values(101, 202, 303));

// --- Repair planner termination ------------------------------------------------

class PlannerPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PlannerPropertyTest, RandomConflictSetsAlwaysConvergeOrFailCleanly) {
  Random rng(GetParam());
  // A star schema: one table, several attributes with random constraints.
  for (int round = 0; round < 20; ++round) {
    CsgGraph graph;
    NodeId table = graph.AddTableNode("t");
    size_t attribute_count = 2 + rng.UniformUint64(5);
    std::vector<RelationshipId> forwards;
    for (size_t a = 0; a < attribute_count; ++a) {
      NodeId attr = graph.AddAttributeNode("t", "a" + std::to_string(a),
                                           DataType::kText);
      Cardinality forward = rng.Bernoulli(0.5) ? Cardinality::Exactly(1)
                                               : Cardinality::Optional();
      Cardinality backward = rng.Bernoulli(0.3)
                                 ? Cardinality::Exactly(1)
                                 : Cardinality::AtLeast(1);
      forwards.push_back(graph.AddRelationshipPair(
          table, attr, CsgEdgeKind::kAttribute, forward, backward));
    }
    std::vector<StructureConflict> conflicts;
    size_t conflict_count = rng.UniformUint64(4);
    for (size_t c = 0; c < conflict_count; ++c) {
      RelationshipId forward =
          forwards[rng.UniformUint64(forwards.size())];
      bool inverse_side = rng.Bernoulli(0.5);
      RelationshipId rel =
          inverse_side ? graph.relationship(forward).inverse : forward;
      bool excess = rng.Bernoulli(0.5);
      const Cardinality& prescribed = graph.relationship(rel).prescribed;
      // Only create satisfiable defect descriptions.
      if (excess && prescribed.is_unbounded()) continue;
      if (!excess && prescribed.min() == 0) continue;
      StructureConflict conflict;
      conflict.target_relationship = rel;
      conflict.kind =
          ClassifyConflict(graph, graph.relationship(rel), excess);
      conflict.excess = excess;
      conflict.prescribed = prescribed;
      conflict.inferred = Cardinality::Any();
      conflict.violation_count = 1 + rng.UniformUint64(50);
      conflicts.push_back(std::move(conflict));
    }
    for (ExpectedQuality quality :
         {ExpectedQuality::kLowEffort, ExpectedQuality::kHighQuality}) {
      auto tasks = PlanStructureRepairs(graph, conflicts, quality);
      // Default strategies never contradict: the plan must exist.
      ASSERT_TRUE(tasks.ok()) << tasks.status().ToString();
      // Every task must carry a positive repetition count.
      for (const Task& task : *tasks) {
        EXPECT_GT(task.Param(task_params::kRepetitions), 0.0);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlannerPropertyTest,
                         ::testing::Values(7, 77, 777));

// --- Statistics vs naive reference ------------------------------------------

class StatisticsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StatisticsPropertyTest, MomentsMatchNaiveComputation) {
  Random rng(GetParam());
  std::vector<Value> column;
  std::vector<double> numbers;
  size_t n = 10 + rng.UniformUint64(200);
  for (size_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.1)) {
      column.push_back(Value::Null());
    } else {
      double v = rng.UniformDouble(-100, 100);
      column.push_back(Value::Real(v));
      numbers.push_back(v);
    }
  }
  auto profiled = ProfileColumn(column, DataType::kReal);
  ASSERT_TRUE(profiled.ok());
  AttributeStatistics stats = *std::move(profiled);
  ASSERT_TRUE(stats.mean.has_value());
  double mean = 0.0;
  for (double v : numbers) mean += v;
  mean /= static_cast<double>(numbers.size());
  double variance = 0.0;
  for (double v : numbers) variance += (v - mean) * (v - mean);
  variance /= static_cast<double>(numbers.size());
  EXPECT_NEAR(stats.mean->mean, mean, 1e-9);
  EXPECT_NEAR(stats.mean->stddev, std::sqrt(variance), 1e-9);
  EXPECT_EQ(stats.fill_status.null_count, n - numbers.size());
  double lo = *std::min_element(numbers.begin(), numbers.end());
  double hi = *std::max_element(numbers.begin(), numbers.end());
  EXPECT_DOUBLE_EQ(stats.value_range->min, lo);
  EXPECT_DOUBLE_EQ(stats.value_range->max, hi);
}

TEST_P(StatisticsPropertyTest, TopKFrequenciesSumToCoverage) {
  Random rng(GetParam() + 9);
  std::vector<Value> column;
  size_t n = 20 + rng.UniformUint64(200);
  for (size_t i = 0; i < n; ++i) {
    column.push_back(
        Value::Integer(static_cast<int64_t>(rng.Zipf(30, 1.1))));
  }
  auto profiled = ProfileColumn(column, DataType::kInteger);
  ASSERT_TRUE(profiled.ok());
  AttributeStatistics stats = *std::move(profiled);
  double sum = 0.0;
  double previous = 1.0;
  for (const auto& [value, freq] : stats.top_k.top_values) {
    EXPECT_LE(freq, previous + 1e-12);  // descending
    previous = freq;
    sum += freq;
  }
  EXPECT_NEAR(sum, stats.top_k.coverage, 1e-9);
  EXPECT_LE(stats.top_k.coverage, 1.0 + 1e-12);
}

TEST_P(StatisticsPropertyTest, SelfFitIsAlwaysPerfect) {
  Random rng(GetParam() + 21);
  std::vector<Value> column;
  size_t n = 20 + rng.UniformUint64(100);
  for (size_t i = 0; i < n; ++i) {
    column.push_back(Value::Text(rng.Word(2, 10)));
  }
  auto profiled = ProfileColumn(column, DataType::kText);
  ASSERT_TRUE(profiled.ok());
  AttributeStatistics stats = *std::move(profiled);
  EXPECT_NEAR(OverallFit(stats, stats), 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatisticsPropertyTest,
                         ::testing::Values(5, 55, 555, 5555));

}  // namespace
}  // namespace efes
