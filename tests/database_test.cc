// Tests for Database: constraint checking and CSV import/export.

#include "efes/relational/database.h"

#include <gtest/gtest.h>

namespace efes {
namespace {

Schema MakeSchema() {
  Schema schema("db");
  (void)schema.AddRelation(RelationDef(
      "parent", {{"id", DataType::kInteger}, {"name", DataType::kText}}));
  (void)schema.AddRelation(RelationDef(
      "child", {{"pid", DataType::kInteger}, {"label", DataType::kText}}));
  schema.AddConstraint(Constraint::PrimaryKey("parent", {"id"}));
  schema.AddConstraint(Constraint::NotNull("parent", "name"));
  schema.AddConstraint(
      Constraint::ForeignKey("child", {"pid"}, "parent", {"id"}));
  return schema;
}

TEST(DatabaseTest, CreateValidatesSchema) {
  Schema bad("bad");
  bad.AddConstraint(Constraint::NotNull("ghost", "x"));
  EXPECT_FALSE(Database::Create(std::move(bad)).ok());
  EXPECT_TRUE(Database::Create(MakeSchema()).ok());
}

TEST(DatabaseTest, TableLookup) {
  auto db = Database::Create(MakeSchema());
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE(db->table("parent").ok());
  EXPECT_FALSE(db->table("ghost").ok());
  EXPECT_TRUE(db->mutable_table("child").ok());
}

TEST(DatabaseTest, CleanInstanceSatisfiesConstraints) {
  auto db = Database::Create(MakeSchema());
  ASSERT_TRUE(db.ok());
  Table* parent = *db->mutable_table("parent");
  ASSERT_TRUE(
      parent->AppendRow({Value::Integer(1), Value::Text("p1")}).ok());
  Table* child = *db->mutable_table("child");
  ASSERT_TRUE(
      child->AppendRow({Value::Integer(1), Value::Text("c1")}).ok());
  EXPECT_TRUE(db->SatisfiesConstraints());
  EXPECT_EQ(db->TotalRowCount(), 2u);
}

TEST(DatabaseTest, DetectsNotNullViolation) {
  auto db = Database::Create(MakeSchema());
  Table* parent = *db->mutable_table("parent");
  ASSERT_TRUE(parent->AppendRow({Value::Integer(1), Value::Null()}).ok());
  auto violations = db->FindConstraintViolations();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].constraint.kind, ConstraintKind::kNotNull);
  EXPECT_EQ(violations[0].violating_rows, 1u);
}

TEST(DatabaseTest, DetectsPrimaryKeyDuplicates) {
  auto db = Database::Create(MakeSchema());
  Table* parent = *db->mutable_table("parent");
  ASSERT_TRUE(
      parent->AppendRow({Value::Integer(1), Value::Text("a")}).ok());
  ASSERT_TRUE(
      parent->AppendRow({Value::Integer(1), Value::Text("b")}).ok());
  auto violations = db->FindConstraintViolations();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].constraint.kind, ConstraintKind::kPrimaryKey);
  EXPECT_EQ(violations[0].violating_rows, 2u);
}

TEST(DatabaseTest, DetectsNullInPrimaryKey) {
  auto db = Database::Create(MakeSchema());
  Table* parent = *db->mutable_table("parent");
  ASSERT_TRUE(parent->AppendRow({Value::Null(), Value::Text("a")}).ok());
  auto violations = db->FindConstraintViolations();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].constraint.kind, ConstraintKind::kPrimaryKey);
}

TEST(DatabaseTest, DetectsDanglingForeignKey) {
  auto db = Database::Create(MakeSchema());
  Table* parent = *db->mutable_table("parent");
  ASSERT_TRUE(
      parent->AppendRow({Value::Integer(1), Value::Text("a")}).ok());
  Table* child = *db->mutable_table("child");
  ASSERT_TRUE(
      child->AppendRow({Value::Integer(99), Value::Text("dangling")}).ok());
  ASSERT_TRUE(
      child->AppendRow({Value::Null(), Value::Text("null is fine")}).ok());
  auto violations = db->FindConstraintViolations();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].constraint.kind, ConstraintKind::kForeignKey);
  EXPECT_EQ(violations[0].violating_rows, 1u);
}

TEST(DatabaseTest, UniqueConstraintChecked) {
  Schema schema("s");
  (void)schema.AddRelation(RelationDef("r", {{"u", DataType::kText}}));
  schema.AddConstraint(Constraint::Unique("r", {"u"}));
  auto db = Database::Create(std::move(schema));
  Table* table = *db->mutable_table("r");
  ASSERT_TRUE(table->AppendRow({Value::Text("x")}).ok());
  ASSERT_TRUE(table->AppendRow({Value::Text("x")}).ok());
  ASSERT_TRUE(table->AppendRow({Value::Null()}).ok());
  ASSERT_TRUE(table->AppendRow({Value::Null()}).ok());  // nulls exempt
  auto violations = db->FindConstraintViolations();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].violating_rows, 2u);
}

TEST(DatabaseTest, ViolationToStringMentionsConstraint) {
  auto db = Database::Create(MakeSchema());
  Table* parent = *db->mutable_table("parent");
  ASSERT_TRUE(parent->AppendRow({Value::Integer(1), Value::Null()}).ok());
  auto violations = db->FindConstraintViolations();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].ToString().find("NOT NULL parent(name)"),
            std::string::npos);
}

TEST(DatabaseTest, LoadCsvTypedAndNulls) {
  auto db = Database::Create(MakeSchema());
  CsvDocument doc;
  doc.header = {"id", "name"};
  doc.rows = {{"1", "alpha"}, {"2", ""}};
  ASSERT_TRUE(db->LoadCsv("parent", doc).ok());
  const Table* parent = *db->table("parent");
  EXPECT_EQ(parent->row_count(), 2u);
  EXPECT_EQ(parent->at(0, 0).AsInteger(), 1);
  EXPECT_TRUE(parent->at(1, 1).is_null());
}

TEST(DatabaseTest, LoadCsvRejectsHeaderMismatch) {
  auto db = Database::Create(MakeSchema());
  CsvDocument doc;
  doc.header = {"wrong", "name"};
  doc.rows = {};
  EXPECT_FALSE(db->LoadCsv("parent", doc).ok());
}

TEST(DatabaseTest, CsvRoundTrip) {
  auto db = Database::Create(MakeSchema());
  Table* parent = *db->mutable_table("parent");
  ASSERT_TRUE(
      parent->AppendRow({Value::Integer(3), Value::Text("x, y")}).ok());
  ASSERT_TRUE(parent->AppendRow({Value::Integer(4), Value::Null()}).ok());

  auto exported = db->ExportCsv("parent");
  ASSERT_TRUE(exported.ok());

  auto db2 = Database::Create(MakeSchema());
  ASSERT_TRUE(db2->LoadCsv("parent", *exported).ok());
  const Table* reloaded = *db2->table("parent");
  EXPECT_EQ(reloaded->at(0, 1).AsText(), "x, y");
  EXPECT_TRUE(reloaded->at(1, 1).is_null());
}

}  // namespace
}  // namespace efes
