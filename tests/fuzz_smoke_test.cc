// Tier-1 smoke over the checked-in fuzz corpus (data/fuzz_corpus.txt):
// every listed seed regenerates deterministically, passes scenario
// validation, and runs through the full default engine without
// degradation. The corpus is the same manifest `efes_fuzz corpus`
// consumes, so a seed that breaks here also breaks the CLI gate.

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "efes/common/file_io.h"
#include "efes/common/string_util.h"
#include "efes/core/engine.h"
#include "efes/dedup/dedup_module.h"
#include "efes/experiment/default_pipeline.h"
#include "efes/scenario/fuzzer.h"

#ifndef EFES_SOURCE_DIR
#error "fuzz_smoke_test requires EFES_SOURCE_DIR (see tests/CMakeLists.txt)"
#endif

namespace efes {
namespace {

std::vector<uint64_t> LoadCorpusSeeds() {
  auto text =
      ReadFileToString(std::string(EFES_SOURCE_DIR) + "/data/fuzz_corpus.txt");
  EXPECT_TRUE(text.ok()) << text.status();
  std::vector<uint64_t> seeds;
  if (!text.ok()) return seeds;
  for (const std::string& raw_line : Split(*text, '\n')) {
    std::string_view line = Trim(raw_line);
    size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = Trim(line.substr(0, hash));
    if (line.empty()) continue;
    uint64_t seed = 0;
    for (char c : line) {
      EXPECT_TRUE(c >= '0' && c <= '9') << "bad corpus line: " << raw_line;
      seed = seed * 10 + static_cast<uint64_t>(c - '0');
    }
    seeds.push_back(seed);
  }
  return seeds;
}

TEST(FuzzSmokeTest, CorpusListsAtLeastFiftyDistinctSeeds) {
  std::vector<uint64_t> seeds = LoadCorpusSeeds();
  EXPECT_GE(seeds.size(), 50u);
  std::set<uint64_t> distinct(seeds.begin(), seeds.end());
  EXPECT_EQ(distinct.size(), seeds.size()) << "corpus repeats a seed";
}

TEST(FuzzSmokeTest, EveryCorpusSeedRunsCleanlyThroughTheDefaultEngine) {
  std::vector<uint64_t> seeds = LoadCorpusSeeds();
  ASSERT_FALSE(seeds.empty());
  EfesEngine engine = MakeDefaultEngine();
  size_t recovered = 0;
  size_t injected = 0;
  for (uint64_t seed : seeds) {
    auto fuzzed = FuzzScenario(seed);
    ASSERT_TRUE(fuzzed.ok()) << "seed " << seed << ": " << fuzzed.status();
    ASSERT_TRUE(fuzzed->scenario.Validate().ok()) << "seed " << seed;
    auto result = engine.Run(fuzzed->scenario, ExpectedQuality::kHighQuality);
    ASSERT_TRUE(result.ok()) << "seed " << seed << ": " << result.status();
    EXPECT_FALSE(result->degraded) << "seed " << seed;
    EXPECT_GT(result->estimate.TotalMinutes(), 0.0) << "seed " << seed;
    for (const ModuleRun& run : result->module_runs) {
      EXPECT_TRUE(run.ok()) << "seed " << seed << " module " << run.module;
      if (run.module != "dedup" || run.report == nullptr) continue;
      const auto* report =
          dynamic_cast<const DedupComplexityReport*>(run.report.get());
      ASSERT_NE(report, nullptr) << "seed " << seed;
      size_t total = fuzzed->injected_clusters.size();
      if (total == 0) continue;
      double recall = InjectedClusterRecall(*fuzzed, *report);
      injected += total;
      recovered += static_cast<size_t>(
          recall * static_cast<double>(total) + 0.5);
    }
  }
  ASSERT_GT(injected, 0u);
  EXPECT_GE(static_cast<double>(recovered) / static_cast<double>(injected),
            0.8);
}

}  // namespace
}  // namespace efes
