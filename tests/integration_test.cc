// End-to-end tests: the full EFES pipeline on the paper's running example
// must reproduce the numbers of Tables 2, 3, 5, and Example 3.8.

#include <gtest/gtest.h>
#include <memory>

#include "efes/experiment/default_pipeline.h"
#include "efes/scenario/paper_example.h"

namespace efes {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto scenario = MakePaperExample();
    ASSERT_TRUE(scenario.ok());
    scenario_ = std::make_unique<IntegrationScenario>(std::move(*scenario));
    EfesEngine engine = MakeDefaultEngine();
    auto high = engine.Run(*scenario_, ExpectedQuality::kHighQuality);
    ASSERT_TRUE(high.ok());
    high_ = std::make_unique<EstimationResult>(std::move(*high));
    auto low = engine.Run(*scenario_, ExpectedQuality::kLowEffort);
    ASSERT_TRUE(low.ok());
    low_ = std::make_unique<EstimationResult>(std::move(*low));
  }
  static void TearDownTestSuite() {
    high_.reset();
    low_.reset();
    scenario_.reset();
  }

  static std::unique_ptr<IntegrationScenario> scenario_;
  static std::unique_ptr<EstimationResult> high_;
  static std::unique_ptr<EstimationResult> low_;
};

std::unique_ptr<IntegrationScenario> PipelineTest::scenario_;
std::unique_ptr<EstimationResult> PipelineTest::high_;
std::unique_ptr<EstimationResult> PipelineTest::low_;

TEST_F(PipelineTest, FourModuleReports) {
  ASSERT_EQ(high_->module_runs.size(), 4u);
  EXPECT_EQ(high_->module_runs[0].module, "mapping");
  EXPECT_EQ(high_->module_runs[1].module, "structure");
  EXPECT_EQ(high_->module_runs[2].module, "values");
  EXPECT_EQ(high_->module_runs[3].module, "dedup");
}

TEST_F(PipelineTest, Example38MappingIs25Minutes) {
  EXPECT_DOUBLE_EQ(high_->estimate.CategoryMinutes(TaskCategory::kMapping),
                   25.0);
  // Mapping effort is quality-independent.
  EXPECT_DOUBLE_EQ(low_->estimate.CategoryMinutes(TaskCategory::kMapping),
                   25.0);
}

TEST_F(PipelineTest, Table5StructureCleaningIs224Minutes) {
  // Add tuples (5) + Add missing values title (204) + Merge values (15).
  EXPECT_DOUBLE_EQ(
      high_->estimate.CategoryMinutes(TaskCategory::kCleaningStructure),
      224.0);
}

TEST_F(PipelineTest, Table5TaskListShape) {
  std::vector<std::pair<std::string, double>> structure_tasks;
  for (const TaskEstimate& estimate : high_->estimate.tasks) {
    if (estimate.task.category == TaskCategory::kCleaningStructure) {
      structure_tasks.emplace_back(
          std::string(TaskTypeToString(estimate.task.type)),
          estimate.minutes);
    }
  }
  ASSERT_EQ(structure_tasks.size(), 3u);
  std::map<std::string, double> by_name(structure_tasks.begin(),
                                        structure_tasks.end());
  EXPECT_DOUBLE_EQ(by_name["Add tuples"], 5.0);
  EXPECT_DOUBLE_EQ(by_name["Add missing values"], 204.0);
  EXPECT_DOUBLE_EQ(by_name["Merge values"], 15.0);
}

TEST_F(PipelineTest, LowEffortIsCheaperThanHighQuality) {
  EXPECT_LT(low_->estimate.TotalMinutes(), high_->estimate.TotalMinutes());
}

TEST_F(PipelineTest, LowEffortStructurePlanUsesRemovals) {
  for (const TaskEstimate& estimate : low_->estimate.tasks) {
    if (estimate.task.category != TaskCategory::kCleaningStructure) {
      continue;
    }
    EXPECT_TRUE(estimate.task.type == TaskType::kKeepAnyValue ||
                estimate.task.type == TaskType::kDropDetachedValues ||
                estimate.task.type == TaskType::kRejectTuples ||
                estimate.task.type == TaskType::kSetValuesToNull ||
                estimate.task.type == TaskType::kDeleteDanglingValues)
        << TaskTypeToString(estimate.task.type);
    EXPECT_EQ(estimate.task.quality, ExpectedQuality::kLowEffort);
  }
}

TEST_F(PipelineTest, ValueCleaningPresentOnlyAtHighQuality) {
  EXPECT_GT(
      high_->estimate.CategoryMinutes(TaskCategory::kCleaningValues), 0.0);
  EXPECT_DOUBLE_EQ(
      low_->estimate.CategoryMinutes(TaskCategory::kCleaningValues), 0.0);
}

TEST_F(PipelineTest, ReportTextContainsPaperCounts) {
  std::string text = high_->ToText();
  EXPECT_NE(text.find("503"), std::string::npos);
  EXPECT_NE(text.find("102"), std::string::npos);
  EXPECT_NE(text.find("records"), std::string::npos);
}

TEST_F(PipelineTest, ComplexityAssessmentAloneWorks) {
  EfesEngine engine = MakeDefaultEngine();
  auto reports = engine.AssessComplexity(*scenario_);
  ASSERT_TRUE(reports.ok());
  ASSERT_EQ(reports->size(), 4u);
  // Source selection application: the problem counts summarize fit.
  EXPECT_EQ((*reports)[0]->ProblemCount(), 2u);  // two connections
  EXPECT_GT((*reports)[1]->ProblemCount(), 0u);  // structural conflicts
  EXPECT_EQ((*reports)[2]->ProblemCount(), 1u);  // length -> duration
}

TEST_F(PipelineTest, ExecutionSettingsScaleTheEstimate) {
  EfesEngine engine = MakeDefaultEngine();
  ExecutionSettings stressed;
  stressed.criticality = 2.0;
  auto result =
      engine.Run(*scenario_, ExpectedQuality::kHighQuality, stressed);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->estimate.TotalMinutes(),
              2.0 * high_->estimate.TotalMinutes(), 1e-6);
}

}  // namespace
}  // namespace efes
