// Tests for the estimate-provenance layer: recorder/fragment id
// assignment, the ambient ScopedProvenanceRecorder, byte-identical
// --explain output across thread counts and cache states, the property
// that every reported effort number resolves to at least one provenance
// node, and graceful degradation at the `provenance.record` /
// `provenance.export` fault points.

#include "efes/provenance/provenance.h"

#include <gtest/gtest.h>

#include <map>
#include <queue>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "efes/common/fault.h"
#include "efes/common/json_writer.h"
#include "efes/common/parallel.h"
#include "efes/experiment/default_pipeline.h"
#include "efes/cache/profile_cache.h"
#include "efes/provenance/render.h"
#include "efes/scenario/bibliographic.h"
#include "efes/scenario/fuzzer.h"

namespace efes {
namespace {

class ProvenanceTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultRegistry::Global().DisarmAll(); }
  void TearDown() override {
    FaultRegistry::Global().DisarmAll();
    SetThreadCountOverride(0);
  }
};

// ------------------------------------------------------ recorder basics

TEST_F(ProvenanceTest, RecordAssignsOneBasedIdsInOrder) {
  ProvenanceRecorder recorder;
  uint64_t a = recorder.Record(ProvenanceKind::kStatistic,
                               "statistic source.rows", "freedb:albums");
  uint64_t b = recorder.RecordValue(ProvenanceKind::kThreshold,
                                    "threshold fit_cutoff", "", 0.9);
  uint64_t c = recorder.RecordValue(ProvenanceKind::kFinding, "finding", "x",
                                    2.0, {a, b, 0});  // 0 = unset, dropped
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  EXPECT_EQ(c, 3u);

  ProvenanceSnapshot snapshot = recorder.Snapshot();
  ASSERT_EQ(snapshot.nodes.size(), 3u);
  EXPECT_FALSE(snapshot.degraded);
  EXPECT_EQ(snapshot.nodes[0].id, 1u);
  EXPECT_FALSE(snapshot.nodes[0].has_value);
  EXPECT_TRUE(snapshot.nodes[1].has_value);
  EXPECT_DOUBLE_EQ(snapshot.nodes[1].value, 0.9);
  // The sentinel 0 input was dropped; real inputs kept in order.
  EXPECT_EQ(snapshot.nodes[2].inputs, (std::vector<uint64_t>{a, b}));
}

TEST_F(ProvenanceTest, SetRefAttachesLookupHandle) {
  ProvenanceRecorder recorder;
  uint64_t id = recorder.Record(ProvenanceKind::kTask, "task", "t");
  recorder.SetRef(id, "t7");
  ProvenanceSnapshot snapshot = recorder.Snapshot();
  ASSERT_EQ(snapshot.nodes.size(), 1u);
  EXPECT_EQ(snapshot.nodes[0].ref, "t7");
}

TEST_F(ProvenanceTest, AbsorbRemapsLocalInputsToGlobalIds) {
  ProvenanceRecorder recorder;
  uint64_t threshold = recorder.RecordValue(ProvenanceKind::kThreshold,
                                            "threshold", "", 0.9);
  ProvenanceFragment fragment;
  size_t stat = fragment.AddValue(ProvenanceKind::kStatistic, "statistic",
                                  "col", 0.25);
  size_t finding = fragment.Add(ProvenanceKind::kFinding, "finding", "col",
                                /*inputs=*/{threshold},
                                /*local_inputs=*/{stat});
  EXPECT_EQ(fragment.size(), 2u);

  std::vector<uint64_t> ids = recorder.Absorb(fragment);
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[stat], 2u);
  EXPECT_EQ(ids[finding], 3u);

  ProvenanceSnapshot snapshot = recorder.Snapshot();
  ASSERT_EQ(snapshot.nodes.size(), 3u);
  // Global input (the threshold) first, then the remapped local input.
  EXPECT_EQ(snapshot.nodes[2].inputs,
            (std::vector<uint64_t>{threshold, ids[stat]}));
}

TEST_F(ProvenanceTest, ActiveIsNullUnlessScopedRecorderInstalled) {
  EXPECT_EQ(ProvenanceRecorder::Active(), nullptr);
  ProvenanceRecorder outer;
  {
    ScopedProvenanceRecorder scoped_outer(&outer);
    EXPECT_EQ(ProvenanceRecorder::Active(), &outer);
    ProvenanceRecorder inner;
    {
      ScopedProvenanceRecorder scoped_inner(&inner);
      EXPECT_EQ(ProvenanceRecorder::Active(), &inner);
    }
    EXPECT_EQ(ProvenanceRecorder::Active(), &outer);
  }
  EXPECT_EQ(ProvenanceRecorder::Active(), nullptr);
}

// ------------------------------------------------ end-to-end determinism

IntegrationScenario MakeScenario() {
  BiblioOptions options;
  options.publication_count = 120;
  options.missing_venue_rate = 0.15;
  options.sloppy_year_rate = 0.2;
  auto scenario =
      MakeBiblioScenario(BiblioSchemaId::kS1, BiblioSchemaId::kS2, options);
  EXPECT_TRUE(scenario.ok());
  return std::move(*scenario);
}

/// One recorded run: installs a recorder, runs the default engine, and
/// returns {explain tree, provenance JSON, estimation result}.
struct RecordedRun {
  std::string tree;
  std::string json;
  EstimationResult result;
  ProvenanceSnapshot snapshot;
};

RecordedRun RunWithProvenance(const IntegrationScenario& scenario,
                              ProfileCache* cache = nullptr) {
  ProvenanceRecorder recorder;
  EstimationResult result;
  {
    ScopedProvenanceRecorder scoped(&recorder);
    EfesEngine engine = MakeDefaultEngine();
    RunOptions options;
    options.cache = cache;
    auto run = engine.Run(scenario, options);
    EXPECT_TRUE(run.ok()) << run.status();
    result = std::move(*run);
  }
  RecordedRun out;
  out.snapshot = recorder.Snapshot();
  auto tree = RenderProvenanceTree(out.snapshot);
  EXPECT_TRUE(tree.ok()) << tree.status();
  out.tree = std::move(*tree);
  JsonWriter json;
  WriteProvenanceJson(out.snapshot, json);
  out.json = json.ToString();
  out.result = std::move(result);
  return out;
}

TEST_F(ProvenanceTest, ExplainIsByteIdenticalAcrossThreadCounts) {
  IntegrationScenario scenario = MakeScenario();
  std::vector<RecordedRun> runs;
  for (size_t threads : {1, 4, 8}) {
    SetThreadCountOverride(threads);
    runs.push_back(RunWithProvenance(scenario));
  }
  SetThreadCountOverride(0);
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_FALSE(runs[0].tree.empty());
  for (size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[0].tree, runs[i].tree) << "thread variant " << i;
    EXPECT_EQ(runs[0].json, runs[i].json) << "thread variant " << i;
  }
}

TEST_F(ProvenanceTest, ExplainIsByteIdenticalAcrossCacheStates) {
  IntegrationScenario scenario = MakeScenario();
  RecordedRun uncached = RunWithProvenance(scenario);
  ProfileCache cache;
  RecordedRun cold = RunWithProvenance(scenario, &cache);
  RecordedRun warm = RunWithProvenance(scenario, &cache);
  EXPECT_EQ(uncached.tree, cold.tree);
  EXPECT_EQ(uncached.tree, warm.tree);
  EXPECT_EQ(uncached.json, cold.json);
  EXPECT_EQ(uncached.json, warm.json);
}

TEST_F(ProvenanceTest, FuzzedDedupExplainIsByteIdenticalAcrossThreads) {
  // Seed 1 injects duplicate clusters, so the provenance DAG contains
  // dedup evidence (key statistics, thresholds, cluster findings); the
  // rendered tree must still not depend on the thread count.
  auto fuzzed = FuzzScenario(1);
  ASSERT_TRUE(fuzzed.ok()) << fuzzed.status();
  std::vector<RecordedRun> runs;
  for (size_t threads : {1, 4, 8}) {
    SetThreadCountOverride(threads);
    runs.push_back(RunWithProvenance(fuzzed->scenario));
  }
  SetThreadCountOverride(0);
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_NE(runs[0].tree.find("dedup assessment"), std::string::npos);
  for (size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[0].tree, runs[i].tree) << "thread variant " << i;
    EXPECT_EQ(runs[0].json, runs[i].json) << "thread variant " << i;
  }

  // Every dedup task's provenance chain terminates in its finding node.
  bool saw_dedup_task = false;
  for (const TaskEstimate& estimate : runs[0].result.estimate.tasks) {
    if (estimate.task.category != TaskCategory::kDeduplication) continue;
    saw_dedup_task = true;
    EXPECT_FALSE(estimate.task.provenance.empty());
  }
  EXPECT_TRUE(saw_dedup_task);
}

// ------------------------------------------------- traceability property

TEST_F(ProvenanceTest, EveryEffortNumberResolvesToProvenance) {
  IntegrationScenario scenario = MakeScenario();
  RecordedRun run = RunWithProvenance(scenario);
  const ProvenanceSnapshot& snapshot = run.snapshot;
  ASSERT_FALSE(snapshot.nodes.empty());

  std::map<uint64_t, const ProvenanceNode*> by_id;
  for (const ProvenanceNode& node : snapshot.nodes) by_id[node.id] = &node;

  // Every planned task's minutes appear as a kTaskEffort node value, and
  // each of those nodes resolves (transitively) to at least one evidence
  // leaf: a statistic, constraint, correspondence, threshold, parameter,
  // or detector finding.
  std::vector<const ProvenanceNode*> task_efforts;
  const ProvenanceNode* total = nullptr;
  for (const ProvenanceNode& node : snapshot.nodes) {
    if (node.kind == ProvenanceKind::kTaskEffort) task_efforts.push_back(&node);
    if (node.kind == ProvenanceKind::kTotalEffort) total = &node;
  }
  ASSERT_FALSE(run.result.estimate.tasks.empty());
  ASSERT_EQ(task_efforts.size(), run.result.estimate.tasks.size());
  for (size_t i = 0; i < run.result.estimate.tasks.size(); ++i) {
    EXPECT_TRUE(task_efforts[i]->has_value);
    EXPECT_DOUBLE_EQ(task_efforts[i]->value,
                     run.result.estimate.tasks[i].minutes)
        << "task " << i;
  }

  for (const ProvenanceNode* effort : task_efforts) {
    ASSERT_FALSE(effort->inputs.empty()) << "task-effort node " << effort->id;
    bool reached_evidence = false;
    std::set<uint64_t> seen;
    std::queue<uint64_t> frontier;
    for (uint64_t input : effort->inputs) frontier.push(input);
    while (!frontier.empty()) {
      uint64_t id = frontier.front();
      frontier.pop();
      if (!seen.insert(id).second) continue;
      auto it = by_id.find(id);
      ASSERT_NE(it, by_id.end()) << "dangling input id " << id;
      switch (it->second->kind) {
        case ProvenanceKind::kStatistic:
        case ProvenanceKind::kConstraint:
        case ProvenanceKind::kCorrespondence:
        case ProvenanceKind::kThreshold:
        case ProvenanceKind::kParameter:
        case ProvenanceKind::kFinding:
          reached_evidence = true;
          break;
        default:
          break;
      }
      for (uint64_t input : it->second->inputs) frontier.push(input);
    }
    EXPECT_TRUE(reached_evidence)
        << "task-effort node " << effort->id << " resolves to no evidence";
  }

  // The bottom line is itself a node whose value matches the estimate.
  ASSERT_NE(total, nullptr);
  EXPECT_TRUE(total->has_value);
  EXPECT_DOUBLE_EQ(total->value, run.result.estimate.TotalMinutes());
}

TEST_F(ProvenanceTest, TaskFilterSelectsOneTaskAndRejectsUnknownIds) {
  IntegrationScenario scenario = MakeScenario();
  RecordedRun run = RunWithProvenance(scenario);

  auto by_ref = RenderProvenanceTree(run.snapshot, "t1");
  ASSERT_TRUE(by_ref.ok()) << by_ref.status();
  auto by_number = RenderProvenanceTree(run.snapshot, "1");
  ASSERT_TRUE(by_number.ok()) << by_number.status();
  EXPECT_EQ(*by_ref, *by_number);
  // The filtered tree is a strict subset of the run's provenance.
  EXPECT_LT(by_ref->size(), run.tree.size());

  auto unknown = RenderProvenanceTree(run.snapshot, "999");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);
}

// ---------------------------------------------------- fault containment

TEST_F(ProvenanceTest, RecordFaultLatchesDegradedAndReturnsZeroIds) {
  ASSERT_TRUE(
      FaultRegistry::Global().ArmFromString("provenance.record:once").ok());
  ProvenanceRecorder recorder;
  EXPECT_EQ(recorder.Record(ProvenanceKind::kStatistic, "s", ""), 0u);
  // Degradation latches: later records also return the sentinel even
  // though the fault fired only once.
  EXPECT_EQ(recorder.Record(ProvenanceKind::kStatistic, "s2", ""), 0u);
  ProvenanceFragment fragment;
  fragment.Add(ProvenanceKind::kFinding, "f", "");
  std::vector<uint64_t> ids = recorder.Absorb(fragment);
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0], 0u);
  EXPECT_TRUE(recorder.degraded());

  ProvenanceSnapshot snapshot = recorder.Snapshot();
  EXPECT_TRUE(snapshot.degraded);
  auto tree = RenderProvenanceTree(snapshot);
  ASSERT_FALSE(tree.ok());
  EXPECT_EQ(tree.status().code(), StatusCode::kUnavailable);
  JsonWriter json;
  WriteProvenanceJson(snapshot, json);
  EXPECT_EQ(json.ToString(), "{\"degraded\":true}");
}

TEST_F(ProvenanceTest, ExportFaultDegradesRenderersNotTheRun) {
  ProvenanceRecorder recorder;
  recorder.RecordValue(ProvenanceKind::kTotalEffort, "total effort", "", 5.0);
  ProvenanceSnapshot snapshot = recorder.Snapshot();
  ASSERT_FALSE(snapshot.degraded);

  ASSERT_TRUE(
      FaultRegistry::Global().ArmFromString("provenance.export").ok());
  auto tree = RenderProvenanceTree(snapshot);
  ASSERT_FALSE(tree.ok());
  EXPECT_EQ(tree.status().code(), StatusCode::kUnavailable);
  JsonWriter json;
  WriteProvenanceJson(snapshot, json);
  EXPECT_EQ(json.ToString(), "{\"degraded\":true}");

  FaultRegistry::Global().DisarmAll();
  auto healthy = RenderProvenanceTree(snapshot);
  ASSERT_TRUE(healthy.ok()) << healthy.status();
  EXPECT_NE(healthy->find("total effort"), std::string::npos);
}

}  // namespace
}  // namespace efes
