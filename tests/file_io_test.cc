// Tests for atomic file writes with bounded retry, driven by injected
// transient faults instead of real disk errors.

#include "efes/common/file_io.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "efes/common/fault.h"
#include "efes/common/metrics.h"

#include "test_paths.h"

namespace efes {
namespace {

class FileIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultRegistry::Global().DisarmAll();
    directory_ = TestScratchPath("efes_file_io_test");
    std::filesystem::remove_all(directory_);
    std::filesystem::create_directories(directory_);
  }
  void TearDown() override {
    FaultRegistry::Global().DisarmAll();
    std::filesystem::remove_all(directory_);
  }

  std::string Path(const std::string& name) const {
    return directory_ + "/" + name;
  }

  static std::string Slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  }

  std::string directory_;
};

TEST_F(FileIoTest, WritesAndReadsBack) {
  const std::string path = Path("out.txt");
  ASSERT_TRUE(WriteFileAtomic(path, "hello\nworld\n").ok());
  auto text = ReadFileToString(path);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "hello\nworld\n");
  // No temp file is left behind.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST_F(FileIoTest, ReplacesExistingContent) {
  const std::string path = Path("out.txt");
  ASSERT_TRUE(WriteFileAtomic(path, "old").ok());
  ASSERT_TRUE(WriteFileAtomic(path, "new").ok());
  EXPECT_EQ(Slurp(path), "new");
}

TEST_F(FileIoTest, ReadMissingFileIsNotFound) {
  auto text = ReadFileToString(Path("absent.txt"));
  ASSERT_FALSE(text.ok());
  EXPECT_EQ(text.status().code(), StatusCode::kNotFound);
}

TEST_F(FileIoTest, RetriesPastTransientFaults) {
  // The first two commit attempts fail, the third succeeds; with three
  // attempts allowed the write must come through intact.
  ASSERT_TRUE(
      FaultRegistry::Global().ArmFromString("io.write.commit:count=2").ok());
  uint64_t retries_before =
      MetricsRegistry::Global().GetCounter("file_io.retries").Value();
  WriteFileOptions options;
  options.max_attempts = 3;
  options.initial_backoff_ms = 0;
  const std::string path = Path("retried.txt");
  Status status = WriteFileAtomic(path, "payload", options);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(Slurp(path), "payload");
  EXPECT_EQ(MetricsRegistry::Global().GetCounter("file_io.retries").Value(),
            retries_before + 2);
}

TEST_F(FileIoTest, RetryBackoffIsSeededAndBounded) {
  // Deterministic: the same (attempt, seed) always yields the same
  // backoff, and different seeds decorrelate the jitter.
  for (int attempt = 1; attempt <= 5; ++attempt) {
    int a = RetryBackoffMs(8, attempt, 42);
    int b = RetryBackoffMs(8, attempt, 42);
    EXPECT_EQ(a, b);
    // base * 2^(attempt-1) <= backoff < 2 * base * 2^(attempt-1)
    int base = 8 << (attempt - 1);
    EXPECT_GE(a, base);
    EXPECT_LT(a, 2 * base);
  }
  // Zero base means no sleeping at all (the test-suite configuration).
  EXPECT_EQ(RetryBackoffMs(0, 3, 42), 0);
  EXPECT_EQ(RetryBackoffMs(8, 0, 42), 0);
  // Distinct seeds must produce some distinct jitter (with base 1024
  // the jitter range is wide enough that 8 collisions in a row would
  // mean the seed is ignored).
  bool differs = false;
  for (uint64_t seed = 0; seed < 8; ++seed) {
    if (RetryBackoffMs(1024, 1, seed) != RetryBackoffMs(1024, 1, seed + 100)) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

TEST_F(FileIoTest, CleanWritesLeaveRetryCounterUntouched) {
  uint64_t retries_before =
      MetricsRegistry::Global().GetCounter("file_io.retries").Value();
  ASSERT_TRUE(WriteFileAtomic(Path("clean.txt"), "payload").ok());
  EXPECT_EQ(MetricsRegistry::Global().GetCounter("file_io.retries").Value(),
            retries_before);
}

TEST_F(FileIoTest, GivesUpAfterMaxAttempts) {
  ASSERT_TRUE(FaultRegistry::Global().ArmFromString("io.write.commit").ok());
  WriteFileOptions options;
  options.max_attempts = 2;
  options.initial_backoff_ms = 0;
  const std::string path = Path("doomed.txt");
  Status status = WriteFileAtomic(path, "payload", options);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  // Neither the destination nor the temp file exists after failure.
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  EXPECT_EQ(FaultRegistry::Global().HitCount("io.write.commit"), 2u);
}

TEST_F(FileIoTest, FailedRewriteKeepsOldContent) {
  // Atomicity: when the new write fails, the previous content survives
  // untouched — a reader never sees a torn file.
  const std::string path = Path("stable.txt");
  ASSERT_TRUE(WriteFileAtomic(path, "original").ok());
  ASSERT_TRUE(FaultRegistry::Global().ArmFromString("io.write.write").ok());
  WriteFileOptions options;
  options.initial_backoff_ms = 0;
  EXPECT_FALSE(WriteFileAtomic(path, "replacement", options).ok());
  FaultRegistry::Global().DisarmAll();
  EXPECT_EQ(Slurp(path), "original");
}

TEST_F(FileIoTest, OpenFaultIsRetriedIndependently) {
  ASSERT_TRUE(
      FaultRegistry::Global().ArmFromString("io.write.open:count=1").ok());
  WriteFileOptions options;
  options.initial_backoff_ms = 0;
  const std::string path = Path("opened.txt");
  ASSERT_TRUE(WriteFileAtomic(path, "x", options).ok());
  EXPECT_EQ(Slurp(path), "x");
}

TEST_F(FileIoTest, WriteIntoMissingDirectoryFails) {
  Status status =
      WriteFileAtomic(directory_ + "/no/such/dir/out.txt", "x");
  EXPECT_FALSE(status.ok());
}

}  // namespace
}  // namespace efes
