// End-to-end tests for the efes_serve subsystem: the line protocol
// (parse/serialize/recover), and EfesServer::ServeLines driven through
// string streams — session lifecycle, per-request fault containment,
// deadlines, overload shedding, graceful shutdown, and byte-determinism
// of responses across runs.

#include "efes/serve/server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "efes/common/fault.h"
#include "efes/scenario/paper_example.h"
#include "efes/scenario/scenario_io.h"
#include "efes/serve/protocol.h"

namespace efes {
namespace {

// --------------------------------------------------------------- protocol

TEST(ServeProtocolTest, ParsesAFullRequest) {
  auto request = ParseServeRequest(
      R"({"id":"r1","op":"estimate","session":"s","quality":"low",)"
      R"("modules":"mapping,dedup","format":"text","faults":"engine.assess:once",)"
      R"("lenient":true,"explain":true,"deadline_ms":250})");
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_EQ(request->id, "r1");
  EXPECT_EQ(request->op, "estimate");
  EXPECT_EQ(request->session, "s");
  EXPECT_EQ(request->quality, "low");
  EXPECT_EQ(request->modules, "mapping,dedup");
  EXPECT_EQ(request->format, "text");
  EXPECT_EQ(request->faults, "engine.assess:once");
  EXPECT_TRUE(request->lenient);
  EXPECT_TRUE(request->explain);
  EXPECT_TRUE(request->has_deadline);
  EXPECT_EQ(request->deadline_ms, 250u);
}

TEST(ServeProtocolTest, RejectsGarbageNestedValuesAndUnknownKeys) {
  EXPECT_FALSE(ParseServeRequest("not json at all").ok());
  EXPECT_FALSE(ParseServeRequest("").ok());
  EXPECT_FALSE(ParseServeRequest("{\"id\":\"x\",\"op\":\"ping\"").ok());
  EXPECT_FALSE(
      ParseServeRequest(R"({"id":"x","op":"ping","extra":{"a":1}})").ok());
  EXPECT_FALSE(
      ParseServeRequest(R"({"id":"x","op":"ping","bogus_key":"v"})").ok());
  EXPECT_FALSE(ParseServeRequest(R"({"id":"x","op":"frobnicate"})").ok());
  EXPECT_FALSE(ParseServeRequest(R"({"op":"ping"})").ok());  // id required
}

TEST(ServeProtocolTest, RecoversTheIdFromMalformedLines) {
  EXPECT_EQ(RecoverRequestId(R"({"id":"r9","op":"ping",)"), "r9");
  EXPECT_EQ(RecoverRequestId("no id here"), "");
}

TEST(ServeProtocolTest, SerializesTheResponseEnvelope) {
  ServeResponse ok;
  ok.id = "a";
  ok.result_json = "{\"pong\":true}";
  EXPECT_EQ(SerializeServeResponse(ok),
            R"({"id":"a","ok":true,"degraded":false,"result":{"pong":true}})");
  ServeResponse error;
  error.id = "b";
  error.status = Status::ResourceExhausted("queue full");
  error.retry_after_ms = 50;
  EXPECT_EQ(
      SerializeServeResponse(error),
      R"({"id":"b","ok":false,"code":"resource exhausted","error":"queue full",)"
      R"("degraded":false,"retry_after_ms":50})");
}

// ----------------------------------------------------------- server fixture

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test *process*: ctest runs each test in parallel, and a
    // shared directory would let one SetUp's remove_all race a sibling's
    // scenario load.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    directory_ = std::filesystem::temp_directory_path() /
                 (std::string("efes_serve_test_") + info->name());
    std::filesystem::remove_all(directory_);
    std::filesystem::create_directories(directory_);
    auto scenario = MakePaperExample();
    ASSERT_TRUE(scenario.ok());
    scenario_dir_ = (directory_ / "scenario").string();
    ASSERT_TRUE(SaveScenario(*scenario, scenario_dir_).ok());
  }

  void TearDown() override {
    FaultRegistry::Global().DisarmAll();
    std::filesystem::remove_all(directory_);
  }

  /// Feeds `requests` to a fresh server and returns the response lines
  /// indexed by request id.
  std::map<std::string, std::string> Run(
      const std::vector<std::string>& requests, ServeOptions options = {}) {
    std::stringstream in;
    for (const std::string& request : requests) in << request << "\n";
    std::stringstream out;
    {
      EfesServer server(std::move(options));
      Status served = server.ServeLines(in, out);
      EXPECT_TRUE(served.ok()) << served.ToString();
    }
    std::map<std::string, std::string> by_id;
    std::string line;
    while (std::getline(out, line)) {
      if (line.empty()) continue;
      auto parsed = ParseResponseId(line);
      by_id[parsed] = line;
      ++response_count_;
    }
    return by_id;
  }

  /// Extracts the "id" value a response line leads with.
  static std::string ParseResponseId(const std::string& line) {
    constexpr char kPrefix[] = "{\"id\":\"";
    if (line.rfind(kPrefix, 0) != 0) return "<null>";
    size_t end = line.find('"', sizeof(kPrefix) - 1);
    if (end == std::string::npos) return "<null>";
    return line.substr(sizeof(kPrefix) - 1, end - (sizeof(kPrefix) - 1));
  }

  std::string OpenLine(const std::string& id, const std::string& session) {
    return "{\"id\":\"" + id + "\",\"op\":\"open\",\"session\":\"" + session +
           "\",\"dir\":\"" + scenario_dir_ + "\"}";
  }

  std::filesystem::path directory_;
  std::string scenario_dir_;
  size_t response_count_ = 0;
};

// ---------------------------------------------------------------- lifecycle

TEST_F(ServeTest, PingIsByteStable) {
  auto responses = Run({R"({"id":"p","op":"ping"})"});
  EXPECT_EQ(responses["p"],
            R"({"id":"p","ok":true,"degraded":false,"result":{"pong":true}})");
}

TEST_F(ServeTest, OpenEstimateAssessCloseHappyPath) {
  auto responses = Run({
      OpenLine("o", "movies"),
      R"({"id":"e","op":"estimate","session":"movies","quality":"low"})",
      R"({"id":"a","op":"assess","session":"movies","modules":"mapping"})",
      R"({"id":"c","op":"close","session":"movies"})",
  });
  ASSERT_EQ(responses.size(), 4u);
  EXPECT_NE(responses["o"].find("\"ok\":true"), std::string::npos);
  EXPECT_NE(responses["o"].find("\"sources\":"), std::string::npos);
  EXPECT_NE(responses["e"].find("\"ok\":true"), std::string::npos);
  EXPECT_NE(responses["e"].find("\"totals\""), std::string::npos);
  EXPECT_NE(responses["a"].find("\"reports\""), std::string::npos);
  EXPECT_NE(responses["c"].find("\"closed\":true"), std::string::npos);
}

TEST_F(ServeTest, UnknownSessionAndDoubleOpenAreErrors) {
  auto responses = Run({
      R"({"id":"e","op":"estimate","session":"ghost"})",
      OpenLine("o1", "dup"),
      OpenLine("o2", "dup"),
  });
  EXPECT_NE(responses["e"].find("\"code\":\"not found\""), std::string::npos);
  EXPECT_NE(responses["o1"].find("\"ok\":true"), std::string::npos);
  EXPECT_NE(responses["o2"].find("\"code\":\"already exists\""),
            std::string::npos);
}

TEST_F(ServeTest, SessionTableIsBounded) {
  ServeOptions options;
  options.max_sessions = 1;
  auto responses = Run({OpenLine("o1", "a"), OpenLine("o2", "b")}, options);
  EXPECT_NE(responses["o1"].find("\"ok\":true"), std::string::npos);
  EXPECT_NE(responses["o2"].find("\"code\":\"resource exhausted\""),
            std::string::npos);
}

// -------------------------------------------------------------- containment

TEST_F(ServeTest, MalformedLineDegradesOnlyItsResponse) {
  auto responses = Run({
      R"({"id":"bad","op":"ping",)",  // truncated JSON
      "complete garbage",
      R"({"id":"p","op":"ping"})",
  });
  EXPECT_NE(responses["bad"].find("\"ok\":false"), std::string::npos);
  EXPECT_NE(responses["<null>"].find("\"id\":null"), std::string::npos);
  EXPECT_NE(responses["p"].find("\"ok\":true"), std::string::npos);
}

TEST_F(ServeTest, RequestFaultIsContainedToItsRequest) {
  // The faulted estimate degrades (module failure contained by the
  // engine); the session, the cache, and the follow-up estimate on the
  // same server are untouched — its response is byte-identical to one
  // from a server that never saw a fault.
  auto with_fault = Run({
      OpenLine("o", "movies"),
      R"({"id":"bad","op":"estimate","session":"movies",)"
      R"("faults":"engine.assess:once"})",
      R"({"id":"good","op":"estimate","session":"movies"})",
  });
  auto clean = Run({
      OpenLine("o", "movies"),
      R"({"id":"good","op":"estimate","session":"movies"})",
  });
  EXPECT_NE(with_fault["bad"].find("\"degraded\":true"), std::string::npos);
  EXPECT_NE(with_fault["good"].find("\"degraded\":false"),
            std::string::npos);
  EXPECT_EQ(with_fault["good"], clean["good"]);
}

TEST_F(ServeTest, BadFaultSpecIsAnErrorNotACrash) {
  auto responses = Run({
      OpenLine("o", "movies"),
      R"({"id":"e","op":"estimate","session":"movies",)"
      R"("faults":"serve.cancel:n=notanumber"})",
  });
  EXPECT_NE(responses["e"].find("\"ok\":false"), std::string::npos);
}

TEST_F(ServeTest, FaultedLoadFailsTheOpenOnly) {
  std::string broken_dir = (directory_ / "missing").string();
  auto responses = Run({
      "{\"id\":\"bad\",\"op\":\"open\",\"session\":\"broken\",\"dir\":\"" +
          broken_dir + "\"}",
      OpenLine("o", "movies"),
      R"({"id":"e","op":"estimate","session":"movies"})",
  });
  EXPECT_NE(responses["bad"].find("\"ok\":false"), std::string::npos);
  EXPECT_NE(responses["o"].find("\"ok\":true"), std::string::npos);
  EXPECT_NE(responses["e"].find("\"ok\":true"), std::string::npos);
}

// ----------------------------------------------------------------- deadlines

TEST_F(ServeTest, ExpiredDeadlineFailsWholeNeverTorn) {
  auto responses = Run({
      OpenLine("o", "movies"),
      R"({"id":"late","op":"estimate","session":"movies","deadline_ms":0})",
      R"({"id":"ok","op":"estimate","session":"movies"})",
  });
  EXPECT_NE(responses["late"].find("\"code\":\"deadline exceeded\""),
            std::string::npos);
  // No partial result rides along with the failure.
  EXPECT_EQ(responses["late"].find("\"result\""), std::string::npos);
  // The session survives its request's deadline.
  EXPECT_NE(responses["ok"].find("\"ok\":true"), std::string::npos);
}

TEST_F(ServeTest, ExpiredDeadlineOnOpenLeavesNoSessionBehind) {
  auto responses = Run({
      "{\"id\":\"o\",\"op\":\"open\",\"session\":\"movies\",\"dir\":\"" +
          scenario_dir_ + "\",\"deadline_ms\":0}",
      R"({"id":"e","op":"estimate","session":"movies"})",
  });
  EXPECT_NE(responses["o"].find("\"code\":\"deadline exceeded\""),
            std::string::npos);
  EXPECT_NE(responses["e"].find("\"code\":\"not found\""), std::string::npos);
}

TEST_F(ServeTest, WatchdogForceFailsAStalledRequest) {
  ServeOptions options;
  options.watchdog_grace_ms = 20;
  auto responses = Run(
      {
          OpenLine("o", "movies"),
          R"({"id":"stuck","op":"estimate","session":"movies",)"
          R"("faults":"serve.stall:once","deadline_ms":1})",
      },
      options);
  EXPECT_EQ(responses["stuck"],
            R"({"id":"stuck","ok":false,"code":"deadline exceeded",)"
            R"("error":"deadline expired mid-module; the watchdog discarded )"
            R"(the result","degraded":false})");
}

// ------------------------------------------------- overload + graceful drain

TEST_F(ServeTest, OverloadIsShedWithRetryAfter) {
  ServeOptions options;
  options.max_queue = 0;  // everything sheds, deterministically
  auto responses = Run({OpenLine("o", "movies")}, options);
  EXPECT_NE(responses["o"].find("\"code\":\"resource exhausted\""),
            std::string::npos);
  EXPECT_NE(responses["o"].find("\"retry_after_ms\":50"), std::string::npos);
}

TEST_F(ServeTest, ShutdownDrainsAndRefusesNewWork) {
  auto responses = Run({
      OpenLine("o", "movies"),
      R"({"id":"e","op":"estimate","session":"movies"})",
      R"({"id":"s","op":"shutdown"})",
      R"({"id":"after","op":"ping"})",
  });
  // Work admitted before shutdown still completes (drained, not dropped).
  EXPECT_NE(responses["e"].find("\"ok\":true"), std::string::npos);
  EXPECT_NE(responses["s"].find("\"draining\":true"), std::string::npos);
  EXPECT_NE(responses["after"].find("\"code\":\"unavailable\""),
            std::string::npos);
}

// -------------------------------------------------------------- determinism

TEST_F(ServeTest, ResponsesAreByteIdenticalAcrossRuns) {
  const std::vector<std::string> requests = {
      OpenLine("o", "movies"),
      R"({"id":"e1","op":"estimate","session":"movies","quality":"low"})",
      R"({"id":"e2","op":"estimate","session":"movies","format":"text"})",
      R"({"id":"bad","op":"estimate","session":"movies",)"
      R"("faults":"engine.plan:once"})",
      R"({"id":"late","op":"estimate","session":"movies","deadline_ms":0})",
      R"({"id":"c","op":"close","session":"movies"})",
  };
  // A huge watchdog grace keeps the already-expired request on its
  // deterministic cooperative-checkpoint path (the watchdog's force-fail
  // is a liveness backstop, raced on purpose only in the stall test).
  ServeOptions options;
  options.watchdog_grace_ms = 600000;
  auto first = Run(requests, options);
  options = ServeOptions{};
  options.watchdog_grace_ms = 600000;
  auto second = Run(requests, options);
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace efes
