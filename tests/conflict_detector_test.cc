// Tests for the structure conflict detector (Section 4.1 / Table 3).

#include "efes/structure/conflict_detector.h"

#include <gtest/gtest.h>
#include <memory>

#include "efes/scenario/paper_example.h"

namespace efes {
namespace {

TEST(ConflictClassificationTest, AllFiveTable4Rows) {
  CsgGraph graph;
  NodeId table = graph.AddTableNode("t");
  NodeId attr = graph.AddAttributeNode("t", "a", DataType::kText);
  NodeId other = graph.AddAttributeNode("p", "k", DataType::kInteger);
  RelationshipId forward = graph.AddRelationshipPair(
      table, attr, CsgEdgeKind::kAttribute, Cardinality::Exactly(1),
      Cardinality::AtLeast(1));
  RelationshipId equality = graph.AddRelationshipPair(
      attr, other, CsgEdgeKind::kEquality, Cardinality::Exactly(1),
      Cardinality::Optional());

  const CsgRelationship& table_to_attr = graph.relationship(forward);
  const CsgRelationship& attr_to_table =
      graph.relationship(table_to_attr.inverse);
  const CsgRelationship& fk = graph.relationship(equality);

  EXPECT_EQ(ClassifyConflict(graph, table_to_attr, /*excess=*/false),
            StructuralConflictKind::kNotNullViolated);
  EXPECT_EQ(ClassifyConflict(graph, table_to_attr, /*excess=*/true),
            StructuralConflictKind::kMultipleAttributeValues);
  EXPECT_EQ(ClassifyConflict(graph, attr_to_table, /*excess=*/false),
            StructuralConflictKind::kValueWithoutTuple);
  EXPECT_EQ(ClassifyConflict(graph, attr_to_table, /*excess=*/true),
            StructuralConflictKind::kUniqueViolated);
  EXPECT_EQ(ClassifyConflict(graph, fk, /*excess=*/false),
            StructuralConflictKind::kForeignKeyViolated);
}

TEST(ConflictKindNamesTest, MatchTable4) {
  EXPECT_EQ(StructuralConflictKindToString(
                StructuralConflictKind::kNotNullViolated),
            "Not null violated");
  EXPECT_EQ(StructuralConflictKindToString(
                StructuralConflictKind::kValueWithoutTuple),
            "Value w/o enclosing tuple");
  EXPECT_EQ(StructuralConflictKindToString(
                StructuralConflictKind::kForeignKeyViolated),
            "FK violated");
}

class PaperExampleDetectorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto scenario = MakePaperExample();
    ASSERT_TRUE(scenario.ok());
    scenario_ = std::make_unique<IntegrationScenario>(std::move(*scenario));
    target_graph_ = std::make_unique<CsgGraph>();
    auto assessments =
        DetectStructureConflicts(*scenario_, target_graph_.get());
    ASSERT_TRUE(assessments.ok());
    assessments_ = std::make_unique<std::vector<SourceStructureAssessment>>(
        std::move(*assessments));
  }

  static void TearDownTestSuite() {
    assessments_.reset();
    target_graph_.reset();
    scenario_.reset();
  }

  static std::unique_ptr<IntegrationScenario> scenario_;
  static std::unique_ptr<CsgGraph> target_graph_;
  static std::unique_ptr<std::vector<SourceStructureAssessment>> assessments_;
};

std::unique_ptr<IntegrationScenario> PaperExampleDetectorTest::scenario_;
std::unique_ptr<CsgGraph> PaperExampleDetectorTest::target_graph_;
std::unique_ptr<std::vector<SourceStructureAssessment>>
    PaperExampleDetectorTest::assessments_;

TEST_F(PaperExampleDetectorTest, OneAssessmentPerSource) {
  ASSERT_EQ(assessments_->size(), 1u);
  EXPECT_EQ((*assessments_)[0].source_database, "music_source");
}

TEST_F(PaperExampleDetectorTest, Table3MultiArtistViolations) {
  // "κ(records → artist) = 1 | 503" — albums associated with more than
  // one artist.
  size_t excess_count = 0;
  for (const StructureConflict& conflict : (*assessments_)[0].conflicts) {
    if (conflict.kind == StructuralConflictKind::kMultipleAttributeValues) {
      excess_count += conflict.violation_count;
      EXPECT_TRUE(conflict.excess);
      EXPECT_EQ(conflict.prescribed, Cardinality::Exactly(1));
      // Lemma 1 over the matched path gives 0..* (Section 4.1).
      EXPECT_EQ(conflict.inferred, Cardinality::Any());
    }
  }
  EXPECT_EQ(excess_count, 503u);
}

TEST_F(PaperExampleDetectorTest, Table3DetachedArtistViolations) {
  // "κ(artist → records) = 1..* | 102" — artists without albums.
  size_t detached_count = 0;
  for (const StructureConflict& conflict : (*assessments_)[0].conflicts) {
    if (conflict.kind == StructuralConflictKind::kValueWithoutTuple) {
      detached_count += conflict.violation_count;
      EXPECT_FALSE(conflict.excess);
    }
  }
  EXPECT_EQ(detached_count, 102u);
}

TEST_F(PaperExampleDetectorTest, NoSpuriousConflicts) {
  // The example scenario contains exactly the two Table 3 conflicts:
  // no NOT NULL, unique, or FK violations exist in the data (e.g. all
  // songs reference an album even though the schema would allow NULL).
  for (const StructureConflict& conflict : (*assessments_)[0].conflicts) {
    EXPECT_TRUE(
        conflict.kind == StructuralConflictKind::kMultipleAttributeValues ||
        conflict.kind == StructuralConflictKind::kValueWithoutTuple)
        << conflict.target_constraint << " ("
        << StructuralConflictKindToString(conflict.kind) << ", "
        << conflict.violation_count << ")";
  }
}

TEST_F(PaperExampleDetectorTest, MatchedPathGoesThroughArtistCredits) {
  for (const StructureConflict& conflict : (*assessments_)[0].conflicts) {
    if (conflict.kind == StructuralConflictKind::kMultipleAttributeValues) {
      EXPECT_NE(conflict.source_path.find("artist_credits"),
                std::string::npos)
          << conflict.source_path;
      EXPECT_NE(conflict.source_path.find("artist_lists"),
                std::string::npos);
    }
  }
}

TEST(DetectorEdgeCasesTest, RequiresOutputGraph) {
  auto scenario = MakePaperExample();
  ASSERT_TRUE(scenario.ok());
  auto result = DetectStructureConflicts(*scenario, nullptr);
  EXPECT_FALSE(result.ok());
}

TEST(DetectorEdgeCasesTest, UnmappedRelationshipsAreSkipped) {
  // A target with constraints but no correspondences at all: the detector
  // has no information and must report nothing.
  Schema target_schema("t");
  (void)target_schema.AddRelation(RelationDef(
      "t", {{"id", DataType::kInteger}, {"v", DataType::kText}}));
  target_schema.AddConstraint(Constraint::PrimaryKey("t", {"id"}));
  target_schema.AddConstraint(Constraint::NotNull("t", "v"));
  Schema source_schema("s");
  (void)source_schema.AddRelation(RelationDef("s", {{"x", DataType::kText}}));
  IntegrationScenario scenario(
      "unmapped", std::move(*Database::Create(std::move(target_schema))));
  scenario.AddSource(std::move(*Database::Create(std::move(source_schema))),
                     CorrespondenceSet());
  CsgGraph graph;
  auto assessments = DetectStructureConflicts(scenario, &graph);
  ASSERT_TRUE(assessments.ok());
  EXPECT_TRUE((*assessments)[0].conflicts.empty());
}

TEST(DetectorEdgeCasesTest, MissingSourcePathCountsAllElements) {
  // Target: table with a mandatory attribute; source: corresponding
  // relation + attribute exist but live in disconnected relations, so no
  // path realizes the relationship.
  Schema target_schema("t");
  (void)target_schema.AddRelation(
      RelationDef("t", {{"v", DataType::kText}}));
  target_schema.AddConstraint(Constraint::NotNull("t", "v"));
  Schema source_schema("s");
  (void)source_schema.AddRelation(RelationDef("s", {{"x", DataType::kText}}));
  (void)source_schema.AddRelation(
      RelationDef("island", {{"y", DataType::kText}}));
  auto source_db = Database::Create(std::move(source_schema));
  Table* s = *source_db->mutable_table("s");
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(s->AppendRow({Value::Text("x" + std::to_string(i))}).ok());
  }
  Table* island = *source_db->mutable_table("island");
  ASSERT_TRUE(island->AppendRow({Value::Text("y0")}).ok());

  CorrespondenceSet correspondences;
  correspondences.AddRelation("s", "t");
  correspondences.AddAttribute("island", "y", "t", "v");

  IntegrationScenario scenario(
      "disconnected", std::move(*Database::Create(std::move(target_schema))));
  scenario.AddSource(std::move(*source_db), std::move(correspondences));

  CsgGraph graph;
  auto assessments = DetectStructureConflicts(scenario, &graph);
  ASSERT_TRUE(assessments.ok());
  bool found = false;
  for (const StructureConflict& conflict : (*assessments)[0].conflicts) {
    if (conflict.kind == StructuralConflictKind::kNotNullViolated) {
      found = true;
      // Every s tuple lacks the mandatory value.
      EXPECT_EQ(conflict.violation_count, 5u);
      EXPECT_EQ(conflict.source_path, "(no source path)");
    }
  }
  EXPECT_TRUE(found);
}

TEST(DetectorEdgeCasesTest, InferredSubsetSkipsCounting) {
  // Source NOT NULL guarantees the target NOT NULL statically: even if
  // counting would be expensive, no conflict may be reported.
  Schema target_schema("t");
  (void)target_schema.AddRelation(
      RelationDef("t", {{"v", DataType::kText}}));
  target_schema.AddConstraint(Constraint::NotNull("t", "v"));
  Schema source_schema("s");
  (void)source_schema.AddRelation(RelationDef("s", {{"x", DataType::kText}}));
  source_schema.AddConstraint(Constraint::NotNull("s", "x"));
  auto source_db = Database::Create(std::move(source_schema));
  Table* s = *source_db->mutable_table("s");
  ASSERT_TRUE(s->AppendRow({Value::Text("present")}).ok());

  CorrespondenceSet correspondences;
  correspondences.AddRelation("s", "t");
  correspondences.AddAttribute("s", "x", "t", "v");

  IntegrationScenario scenario(
      "static-fit", std::move(*Database::Create(std::move(target_schema))));
  scenario.AddSource(std::move(*source_db), std::move(correspondences));

  CsgGraph graph;
  auto assessments = DetectStructureConflicts(scenario, &graph);
  ASSERT_TRUE(assessments.ok());
  EXPECT_TRUE((*assessments)[0].conflicts.empty());
}

}  // namespace
}  // namespace efes
