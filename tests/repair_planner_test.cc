// Tests for the structure repair planner: Table 4 task selection, the
// virtual-CSG side-effect simulation of Figure 5, task ordering, count
// propagation, and cleaning-loop detection.

#include "efes/structure/repair_planner.h"

#include <gtest/gtest.h>

namespace efes {
namespace {

/// The records-side of the paper's target: records(id PK, title NN,
/// artist NN, genre).
struct RecordsGraph {
  CsgGraph graph;
  NodeId records, id, title, artist, genre;
  RelationshipId to_id, to_title, to_artist, to_genre;

  RecordsGraph() {
    records = graph.AddTableNode("records");
    id = graph.AddAttributeNode("records", "id", DataType::kInteger);
    title = graph.AddAttributeNode("records", "title", DataType::kText);
    artist = graph.AddAttributeNode("records", "artist", DataType::kText);
    genre = graph.AddAttributeNode("records", "genre", DataType::kText);
    // id: PK -> exactly 1 both ways.
    to_id = graph.AddRelationshipPair(records, id, CsgEdgeKind::kAttribute,
                                      Cardinality::Exactly(1),
                                      Cardinality::Exactly(1));
    to_title = graph.AddRelationshipPair(
        records, title, CsgEdgeKind::kAttribute, Cardinality::Exactly(1),
        Cardinality::AtLeast(1));
    to_artist = graph.AddRelationshipPair(
        records, artist, CsgEdgeKind::kAttribute, Cardinality::Exactly(1),
        Cardinality::AtLeast(1));
    to_genre = graph.AddRelationshipPair(
        records, genre, CsgEdgeKind::kAttribute, Cardinality::Optional(),
        Cardinality::AtLeast(1));
  }

  StructureConflict Conflict(RelationshipId rel, bool excess, size_t count,
                             const Cardinality& inferred) const {
    StructureConflict conflict;
    conflict.target_relationship = rel;
    conflict.kind =
        ClassifyConflict(graph, graph.relationship(rel), excess);
    conflict.excess = excess;
    conflict.prescribed = graph.relationship(rel).prescribed;
    conflict.inferred = inferred;
    conflict.violation_count = count;
    return conflict;
  }
};

const Task* FindTask(const std::vector<Task>& tasks, TaskType type) {
  for (const Task& task : tasks) {
    if (task.type == type) return &task;
  }
  return nullptr;
}

TEST(DefaultRepairTaskTest, Table4Matrix) {
  using K = StructuralConflictKind;
  using Q = ExpectedQuality;
  EXPECT_EQ(DefaultRepairTask(K::kNotNullViolated, Q::kLowEffort),
            TaskType::kRejectTuples);
  EXPECT_EQ(DefaultRepairTask(K::kNotNullViolated, Q::kHighQuality),
            TaskType::kAddMissingValues);
  EXPECT_EQ(DefaultRepairTask(K::kUniqueViolated, Q::kLowEffort),
            TaskType::kSetValuesToNull);
  EXPECT_EQ(DefaultRepairTask(K::kUniqueViolated, Q::kHighQuality),
            TaskType::kAggregateTuples);
  EXPECT_EQ(DefaultRepairTask(K::kMultipleAttributeValues, Q::kLowEffort),
            TaskType::kKeepAnyValue);
  EXPECT_EQ(DefaultRepairTask(K::kMultipleAttributeValues, Q::kHighQuality),
            TaskType::kMergeValues);
  EXPECT_EQ(DefaultRepairTask(K::kValueWithoutTuple, Q::kLowEffort),
            TaskType::kDropDetachedValues);
  EXPECT_EQ(DefaultRepairTask(K::kValueWithoutTuple, Q::kHighQuality),
            TaskType::kAddTuples);
  EXPECT_EQ(DefaultRepairTask(K::kForeignKeyViolated, Q::kLowEffort),
            TaskType::kDeleteDanglingValues);
  EXPECT_EQ(DefaultRepairTask(K::kForeignKeyViolated, Q::kHighQuality),
            TaskType::kAddReferencedValues);
}

TEST(RepairPlannerTest, NoConflictsNoTasks) {
  RecordsGraph setup;
  auto tasks = PlanStructureRepairs(setup.graph, {},
                                    ExpectedQuality::kHighQuality);
  ASSERT_TRUE(tasks.ok());
  EXPECT_TRUE(tasks->empty());
}

TEST(RepairPlannerTest, Figure5AddTuplesTriggersAddMissingValues) {
  RecordsGraph setup;
  // 102 artists without records (value w/o enclosing tuple on
  // artist -> records).
  RelationshipId artist_to_records =
      setup.graph.relationship(setup.to_artist).inverse;
  std::vector<StructureConflict> conflicts = {setup.Conflict(
      artist_to_records, /*excess=*/false, 102, Cardinality::Any())};

  std::vector<std::string> trace;
  auto tasks = PlanStructureRepairs(setup.graph, conflicts,
                                    ExpectedQuality::kHighQuality, {},
                                    &trace);
  ASSERT_TRUE(tasks.ok());

  const Task* add_tuples = FindTask(*tasks, TaskType::kAddTuples);
  ASSERT_NE(add_tuples, nullptr);
  EXPECT_DOUBLE_EQ(add_tuples->Param(task_params::kRepetitions), 102.0);

  // Side effect: the created records lack titles (Figure 5b/5c).
  const Task* add_missing = FindTask(*tasks, TaskType::kAddMissingValues);
  ASSERT_NE(add_missing, nullptr);
  EXPECT_EQ(add_missing->subject, "records.title");
  EXPECT_DOUBLE_EQ(add_missing->Param(task_params::kValues), 102.0);

  // Surrogate key and nullable genre are exempt.
  for (const Task& task : *tasks) {
    EXPECT_NE(task.subject, "records.id");
    EXPECT_NE(task.subject, "records.genre");
  }

  // The cause precedes the fix.
  size_t add_tuples_pos = 0;
  size_t add_missing_pos = 0;
  for (size_t i = 0; i < tasks->size(); ++i) {
    if ((*tasks)[i].type == TaskType::kAddTuples) add_tuples_pos = i;
    if ((*tasks)[i].type == TaskType::kAddMissingValues) {
      add_missing_pos = i;
    }
  }
  EXPECT_LT(add_tuples_pos, add_missing_pos);

  // The trace narrates the simulation (Figure 5 analogue).
  EXPECT_FALSE(trace.empty());
  bool mentions_side_effect = false;
  for (const std::string& line : trace) {
    if (line.find("side effect") != std::string::npos) {
      mentions_side_effect = true;
    }
  }
  EXPECT_TRUE(mentions_side_effect);
}

TEST(RepairPlannerTest, Table5FullHighQualityPlan) {
  RecordsGraph setup;
  RelationshipId artist_to_records =
      setup.graph.relationship(setup.to_artist).inverse;
  std::vector<StructureConflict> conflicts = {
      setup.Conflict(setup.to_artist, /*excess=*/true, 503,
                     Cardinality::Any()),
      setup.Conflict(artist_to_records, /*excess=*/false, 102,
                     Cardinality::Any())};
  auto tasks = PlanStructureRepairs(setup.graph, conflicts,
                                    ExpectedQuality::kHighQuality);
  ASSERT_TRUE(tasks.ok());
  // Table 5: Add tuples (102), Add missing values (title, 102),
  // Merge values (503).
  ASSERT_EQ(tasks->size(), 3u);
  const Task* merge = FindTask(*tasks, TaskType::kMergeValues);
  ASSERT_NE(merge, nullptr);
  EXPECT_DOUBLE_EQ(merge->Param(task_params::kRepetitions), 503.0);
  EXPECT_NE(FindTask(*tasks, TaskType::kAddTuples), nullptr);
  EXPECT_NE(FindTask(*tasks, TaskType::kAddMissingValues), nullptr);
}

TEST(RepairPlannerTest, LowQualityDropsDetachedValues) {
  RecordsGraph setup;
  RelationshipId artist_to_records =
      setup.graph.relationship(setup.to_artist).inverse;
  std::vector<StructureConflict> conflicts = {setup.Conflict(
      artist_to_records, /*excess=*/false, 102, Cardinality::Any())};
  auto tasks = PlanStructureRepairs(setup.graph, conflicts,
                                    ExpectedQuality::kLowEffort);
  ASSERT_TRUE(tasks.ok());
  // Drop detached values has no side effects -> single task.
  ASSERT_EQ(tasks->size(), 1u);
  EXPECT_EQ((*tasks)[0].type, TaskType::kDropDetachedValues);
}

TEST(RepairPlannerTest, RejectTuplesOrphansSiblingValues) {
  RecordsGraph setup;
  std::vector<StructureConflict> conflicts = {setup.Conflict(
      setup.to_title, /*excess=*/false, 10, Cardinality::Any())};
  auto tasks = PlanStructureRepairs(setup.graph, conflicts,
                                    ExpectedQuality::kLowEffort);
  ASSERT_TRUE(tasks.ok());
  EXPECT_NE(FindTask(*tasks, TaskType::kRejectTuples), nullptr);
  // Rejecting tuples detaches values of the table's attributes, which the
  // low-effort plan then drops (0-minute scripts).
  EXPECT_NE(FindTask(*tasks, TaskType::kDropDetachedValues), nullptr);
}

TEST(RepairPlannerTest, AggregateTuplesCausesMergeValuesOnSiblings) {
  RecordsGraph setup;
  // Unique violated on title -> records (excess on attribute -> table).
  RelationshipId title_to_records =
      setup.graph.relationship(setup.to_title).inverse;
  setup.graph.SetPrescribed(title_to_records, Cardinality::Exactly(1));
  std::vector<StructureConflict> conflicts = {setup.Conflict(
      title_to_records, /*excess=*/true, 30, Cardinality::AtLeast(1))};
  auto tasks = PlanStructureRepairs(setup.graph, conflicts,
                                    ExpectedQuality::kHighQuality);
  ASSERT_TRUE(tasks.ok());
  EXPECT_NE(FindTask(*tasks, TaskType::kAggregateTuples), nullptr);
  // Merged tuples have several artist values to reconcile.
  const Task* merge = FindTask(*tasks, TaskType::kMergeValues);
  ASSERT_NE(merge, nullptr);
  EXPECT_EQ(merge->subject, "records.artist");
}

TEST(RepairPlannerTest, TaskOverridesRespected) {
  RecordsGraph setup;
  RelationshipId artist_to_records =
      setup.graph.relationship(setup.to_artist).inverse;
  std::vector<StructureConflict> conflicts = {setup.Conflict(
      artist_to_records, /*excess=*/false, 10, Cardinality::Any())};
  RepairPlannerOptions options;
  options.task_overrides[{StructuralConflictKind::kValueWithoutTuple,
                          ExpectedQuality::kHighQuality}] =
      TaskType::kDropDetachedValues;
  auto tasks = PlanStructureRepairs(setup.graph, conflicts,
                                    ExpectedQuality::kHighQuality, options);
  ASSERT_TRUE(tasks.ok());
  ASSERT_EQ(tasks->size(), 1u);
  EXPECT_EQ((*tasks)[0].type, TaskType::kDropDetachedValues);
}

TEST(RepairPlannerTest, ContradictingStrategyDetectedAsCleaningLoop) {
  RecordsGraph setup;
  // Contradiction: repair missing titles by *rejecting* tuples, but
  // repair detached values by *creating* tuples. Creating tuples breaks
  // titles again; rejecting detaches values again — an infinite loop.
  RepairPlannerOptions options;
  options.task_overrides[{StructuralConflictKind::kValueWithoutTuple,
                          ExpectedQuality::kLowEffort}] =
      TaskType::kAddTuples;
  // NotNull low-effort default is already kRejectTuples.
  std::vector<StructureConflict> conflicts = {setup.Conflict(
      setup.to_title, /*excess=*/false, 10, Cardinality::Any())};
  auto tasks = PlanStructureRepairs(setup.graph, conflicts,
                                    ExpectedQuality::kLowEffort, options);
  ASSERT_FALSE(tasks.ok());
  EXPECT_EQ(tasks.status().code(), StatusCode::kUnsatisfiable);
}

TEST(RepairPlannerTest, RecurringFixMergesCounts) {
  RecordsGraph setup;
  // Initial missing titles (20) plus detached artists (5) whose repair
  // re-breaks titles: Add missing values must end with 25 repetitions and
  // be ordered after Add tuples.
  RelationshipId artist_to_records =
      setup.graph.relationship(setup.to_artist).inverse;
  std::vector<StructureConflict> conflicts = {
      setup.Conflict(setup.to_title, /*excess=*/false, 20,
                     Cardinality::Any()),
      setup.Conflict(artist_to_records, /*excess=*/false, 5,
                     Cardinality::Any())};
  auto tasks = PlanStructureRepairs(setup.graph, conflicts,
                                    ExpectedQuality::kHighQuality);
  ASSERT_TRUE(tasks.ok());
  const Task* add_missing = FindTask(*tasks, TaskType::kAddMissingValues);
  ASSERT_NE(add_missing, nullptr);
  EXPECT_DOUBLE_EQ(add_missing->Param(task_params::kValues), 25.0);
  // Only one Add missing values task in the list (merged, not repeated).
  size_t count = 0;
  for (const Task& task : *tasks) {
    if (task.type == TaskType::kAddMissingValues) ++count;
  }
  EXPECT_EQ(count, 1u);
}

}  // namespace
}  // namespace efes
