// Tests for the integration executor — and, through it, a validation of
// the whole estimation pipeline: the work the executor actually performs
// must equal what the detectors predicted without integrating.

#include "efes/execute/integration_executor.h"

#include <gtest/gtest.h>
#include <memory>

#include "efes/scenario/bibliographic.h"
#include "efes/scenario/music.h"
#include "efes/scenario/paper_example.h"

namespace efes {
namespace {

class ExecutorPaperExampleTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    options_small_ = std::make_unique<PaperExampleOptions>();
    options_small_->album_count = 400;
    options_small_->multi_artist_albums = 90;
    options_small_->orphan_artists = 25;
    options_small_->song_count = 500;
    auto scenario = MakePaperExample(*options_small_);
    ASSERT_TRUE(scenario.ok());
    scenario_ = std::make_unique<IntegrationScenario>(std::move(*scenario));
  }
  static void TearDownTestSuite() {
    scenario_.reset();
    options_small_.reset();
  }
  static std::unique_ptr<PaperExampleOptions> options_small_;
  static std::unique_ptr<IntegrationScenario> scenario_;
};

std::unique_ptr<PaperExampleOptions> ExecutorPaperExampleTest::options_small_;
std::unique_ptr<IntegrationScenario> ExecutorPaperExampleTest::scenario_;

TEST_F(ExecutorPaperExampleTest, HighQualityResultSatisfiesConstraints) {
  IntegrationExecutor executor;
  ExecutionReport report;
  auto result = executor.Execute(*scenario_, &report);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->SatisfiesConstraints());
}

TEST_F(ExecutorPaperExampleTest, ExecutedWorkMatchesDetectorPredictions) {
  IntegrationExecutor executor;
  ExecutionReport report;
  auto result = executor.Execute(*scenario_, &report);
  ASSERT_TRUE(result.ok());
  // The detector predicted: `multi_artist_albums` records need their
  // artists merged, `orphan_artists` detached artists need enclosing
  // tuples, whose titles then need inventing.
  EXPECT_EQ(report.values_merged, options_small_->multi_artist_albums);
  EXPECT_EQ(report.tuples_added, options_small_->orphan_artists);
  EXPECT_EQ(report.values_added, options_small_->orphan_artists);
  EXPECT_EQ(report.tuples_rejected, 0u);
  std::string text = report.ToString();
  EXPECT_NE(text.find("tuples integrated"), std::string::npos);
}

TEST_F(ExecutorPaperExampleTest, RowCountsAddUp) {
  IntegrationExecutor executor;
  ExecutionReport report;
  auto result = executor.Execute(*scenario_, &report);
  ASSERT_TRUE(result.ok());
  const Table* records = *result->table("records");
  const Table* tracks = *result->table("tracks");
  PaperExampleOptions& options = *options_small_;
  // records: pre-existing target + one per album + one per orphan artist.
  EXPECT_EQ(records->row_count(), options.target_records +
                                      options.album_count +
                                      options.orphan_artists);
  // tracks: pre-existing + one per song.
  EXPECT_EQ(tracks->row_count(),
            options.target_tracks + options.song_count);
}

TEST_F(ExecutorPaperExampleTest, SurrogateKeysAreUniqueAndRemapped) {
  IntegrationExecutor executor;
  auto result = executor.Execute(*scenario_, nullptr);
  ASSERT_TRUE(result.ok());
  const Table* records = *result->table("records");
  size_t id_column = *records->def().AttributeIndex("id");
  EXPECT_EQ(records->DistinctCount(id_column), records->row_count());
  // Every track references an existing record (FK satisfied is already
  // asserted by SatisfiesConstraints; spot-check the remap produced
  // non-null values).
  const Table* tracks = *result->table("tracks");
  size_t record_column = *tracks->def().AttributeIndex("record");
  EXPECT_EQ(tracks->NullCount(record_column), 0u);
}

TEST_F(ExecutorPaperExampleTest, MergedArtistsAreCombinedText) {
  IntegrationExecutor executor;
  auto result = executor.Execute(*scenario_, nullptr);
  ASSERT_TRUE(result.ok());
  const Table* records = *result->table("records");
  size_t artist_column = *records->def().AttributeIndex("artist");
  size_t combined = 0;
  for (const Value& value : records->column(artist_column)) {
    if (!value.is_null() &&
        value.AsText().find("; ") != std::string::npos) {
      ++combined;
    }
  }
  EXPECT_EQ(combined, options_small_->multi_artist_albums);
}

TEST_F(ExecutorPaperExampleTest, LowEffortAlsoReachesValidity) {
  IntegrationExecutor::Options options;
  options.quality = ExpectedQuality::kLowEffort;
  IntegrationExecutor executor(options);
  ExecutionReport report;
  auto result = executor.Execute(*scenario_, &report);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->SatisfiesConstraints());
  // Low effort keeps one artist per album and drops the orphans.
  EXPECT_EQ(report.values_kept_any, options_small_->multi_artist_albums);
  EXPECT_EQ(report.values_dropped_detached,
            options_small_->orphan_artists);
  EXPECT_EQ(report.tuples_added, 0u);
  const Table* records = *result->table("records");
  // No detached-artist tuples: records = target + albums.
  EXPECT_EQ(records->row_count(), options_small_->target_records +
                                      options_small_->album_count);
}

TEST(ExecutorCaseStudyTest, BibliographicScenarioReachesValidity) {
  BiblioOptions options;
  options.publication_count = 150;
  auto scenario =
      MakeBiblioScenario(BiblioSchemaId::kS1, BiblioSchemaId::kS2, options);
  ASSERT_TRUE(scenario.ok());
  for (ExpectedQuality quality :
       {ExpectedQuality::kLowEffort, ExpectedQuality::kHighQuality}) {
    IntegrationExecutor::Options executor_options;
    executor_options.quality = quality;
    IntegrationExecutor executor(executor_options);
    ExecutionReport report;
    auto result = executor.Execute(*scenario, &report);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result->SatisfiesConstraints());
    EXPECT_GT(report.tuples_integrated, 0u);
  }
}

TEST(ExecutorCaseStudyTest, UncastableYearsAreConvertedAtHighQuality) {
  BiblioOptions options;
  options.publication_count = 150;
  options.sloppy_year_rate = 0.5;
  auto scenario =
      MakeBiblioScenario(BiblioSchemaId::kS1, BiblioSchemaId::kS2, options);
  ASSERT_TRUE(scenario.ok());
  IntegrationExecutor executor;
  ExecutionReport report;
  auto result = executor.Execute(*scenario, &report);
  ASSERT_TRUE(result.ok());
  // Roughly half of the 150 years were "'98"-style and needed the
  // conversion script.
  EXPECT_GT(report.values_converted, 40u);
  // And they ended up as integers in the target.
  const Table* publications = *result->table("publications");
  size_t year_column = *publications->def().AttributeIndex("year");
  EXPECT_EQ(publications->CountCastableTo(year_column, DataType::kInteger),
            publications->row_count() - publications->NullCount(year_column));
}

TEST(ExecutorCaseStudyTest, IdentityScenarioIsCleanPassThrough) {
  MusicOptions options;
  options.disc_count = 60;
  auto scenario = MakeMusicScenario(MusicSchemaId::kDiscogs,
                                    MusicSchemaId::kDiscogs, options);
  ASSERT_TRUE(scenario.ok());
  IntegrationExecutor executor;
  ExecutionReport report;
  auto result = executor.Execute(*scenario, &report);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->SatisfiesConstraints());
  // No cleaning events of any kind.
  EXPECT_EQ(report.values_merged, 0u);
  EXPECT_EQ(report.tuples_added, 0u);
  EXPECT_EQ(report.tuples_rejected, 0u);
  EXPECT_EQ(report.values_converted, 0u);
}

TEST(ExecutorEdgeCaseTest, EmptyScenarioIntegratesNothing) {
  Schema target_schema("t");
  (void)target_schema.AddRelation(RelationDef("t", {{"a", DataType::kText}}));
  Schema source_schema("s");
  (void)source_schema.AddRelation(RelationDef("s", {{"a", DataType::kText}}));
  IntegrationScenario scenario(
      "empty", std::move(*Database::Create(std::move(target_schema))));
  scenario.AddSource(std::move(*Database::Create(std::move(source_schema))),
                     CorrespondenceSet());
  IntegrationExecutor executor;
  ExecutionReport report;
  auto result = executor.Execute(scenario, &report);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(report.tuples_integrated, 0u);
  EXPECT_EQ((*result->table("t"))->row_count(), 0u);
}

TEST(TableRemoveRowsTest, RemovesByIndex) {
  Table table(RelationDef("r", {{"x", DataType::kInteger}}));
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(table.AppendRow({Value::Integer(i)}).ok());
  }
  table.RemoveRows({1, 3, 99, 3});
  ASSERT_EQ(table.row_count(), 3u);
  EXPECT_EQ(table.at(0, 0).AsInteger(), 0);
  EXPECT_EQ(table.at(1, 0).AsInteger(), 2);
  EXPECT_EQ(table.at(2, 0).AsInteger(), 4);
  table.RemoveRows({});
  EXPECT_EQ(table.row_count(), 3u);
}

}  // namespace
}  // namespace efes
