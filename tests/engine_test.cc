// Tests for the EFES engine: module orchestration, aggregation, and the
// extensibility contract (a custom module plugs in unchanged).

#include "efes/core/engine.h"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

namespace efes {
namespace {

IntegrationScenario MakeTrivialScenario() {
  Schema target_schema("target");
  (void)target_schema.AddRelation(
      RelationDef("t", {{"a", DataType::kText}}));
  Schema source_schema("source");
  (void)source_schema.AddRelation(
      RelationDef("s", {{"a", DataType::kText}}));
  auto target = Database::Create(std::move(target_schema));
  auto source = Database::Create(std::move(source_schema));
  CorrespondenceSet correspondences;
  correspondences.AddRelation("s", "t");
  IntegrationScenario scenario("trivial", std::move(*target));
  scenario.AddSource(std::move(*source), std::move(correspondences));
  return scenario;
}

/// A stub module reporting one fixed problem and planning one task per
/// report, used to test the engine contract.
class FakeReport : public ComplexityReport {
 public:
  explicit FakeReport(size_t problems) : problems_(problems) {}
  std::string module_name() const override { return "fake"; }
  std::string ToText() const override { return "fake report\n"; }
  size_t ProblemCount() const override { return problems_; }

 private:
  size_t problems_;
};

class FakeModule : public EstimationModule {
 public:
  explicit FakeModule(size_t problems = 1) : problems_(problems) {}

  std::string name() const override { return "fake"; }

  Result<std::unique_ptr<ComplexityReport>> AssessComplexity(
      const IntegrationScenario&) const override {
    return std::unique_ptr<ComplexityReport>(
        std::make_unique<FakeReport>(problems_));
  }

  Result<std::vector<Task>> PlanTasks(
      const ComplexityReport& report, ExpectedQuality quality,
      const ExecutionSettings&) const override {
    std::vector<Task> tasks;
    for (size_t i = 0; i < report.ProblemCount(); ++i) {
      Task task;
      task.type = TaskType::kRejectTuples;  // 5 minutes in Table 9
      task.category = TaskCategory::kCleaningStructure;
      task.quality = quality;
      tasks.push_back(std::move(task));
    }
    return tasks;
  }

 private:
  size_t problems_;
};

TEST(EngineTest, RunsModulesAndPricesTasks) {
  EfesEngine engine;
  engine.AddModule(std::make_unique<FakeModule>(3));
  EXPECT_EQ(engine.module_count(), 1u);
  IntegrationScenario scenario = MakeTrivialScenario();
  auto result = engine.Run(scenario, ExpectedQuality::kLowEffort);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->estimate.tasks.size(), 3u);
  EXPECT_DOUBLE_EQ(result->estimate.TotalMinutes(), 15.0);
  EXPECT_DOUBLE_EQ(
      result->estimate.CategoryMinutes(TaskCategory::kCleaningStructure),
      15.0);
  EXPECT_DOUBLE_EQ(result->estimate.CategoryMinutes(TaskCategory::kMapping),
                   0.0);
  ASSERT_EQ(result->module_runs.size(), 1u);
  EXPECT_EQ(result->module_runs[0].module, "fake");
  EXPECT_EQ(result->module_runs[0].report->ProblemCount(), 3u);
}

TEST(EngineTest, MultipleModulesAggregate) {
  EfesEngine engine;
  engine.AddModule(std::make_unique<FakeModule>(1));
  engine.AddModule(std::make_unique<FakeModule>(2));
  IntegrationScenario scenario = MakeTrivialScenario();
  auto result = engine.Run(scenario, ExpectedQuality::kHighQuality);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->estimate.tasks.size(), 3u);
  EXPECT_EQ(result->module_runs.size(), 2u);
}

TEST(EngineTest, RunValidatesScenario) {
  EfesEngine engine;
  engine.AddModule(std::make_unique<FakeModule>());
  // A scenario with a broken correspondence must be rejected.
  Schema target_schema("t");
  (void)target_schema.AddRelation(RelationDef("t", {}));
  Schema source_schema("s");
  (void)source_schema.AddRelation(RelationDef("s", {}));
  auto target = Database::Create(std::move(target_schema));
  auto source = Database::Create(std::move(source_schema));
  CorrespondenceSet broken;
  broken.AddRelation("ghost", "t");
  IntegrationScenario scenario("broken", std::move(*target));
  scenario.AddSource(std::move(*source), std::move(broken));
  auto result = engine.Run(scenario, ExpectedQuality::kLowEffort);
  EXPECT_FALSE(result.ok());
}

TEST(EngineTest, AssessComplexityRunsPhaseOneOnly) {
  EfesEngine engine;
  engine.AddModule(std::make_unique<FakeModule>(4));
  IntegrationScenario scenario = MakeTrivialScenario();
  auto reports = engine.AssessComplexity(scenario);
  ASSERT_TRUE(reports.ok());
  ASSERT_EQ(reports->size(), 1u);
  EXPECT_EQ((*reports)[0]->ProblemCount(), 4u);
}

TEST(EngineTest, CustomEffortModelIsUsed) {
  EffortModel model;  // empty: everything is free
  EfesEngine engine(std::move(model));
  engine.AddModule(std::make_unique<FakeModule>(2));
  IntegrationScenario scenario = MakeTrivialScenario();
  auto result = engine.Run(scenario, ExpectedQuality::kLowEffort);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->estimate.TotalMinutes(), 0.0);
}

TEST(EngineTest, EstimateToTextContainsBreakdown) {
  EfesEngine engine;
  engine.AddModule(std::make_unique<FakeModule>(1));
  IntegrationScenario scenario = MakeTrivialScenario();
  auto result = engine.Run(scenario, ExpectedQuality::kLowEffort);
  ASSERT_TRUE(result.ok());
  std::string text = result->ToText();
  EXPECT_NE(text.find("fake report"), std::string::npos);
  EXPECT_NE(text.find("Total"), std::string::npos);
  EXPECT_NE(text.find("Cleaning (Structure)"), std::string::npos);
}

/// A module whose assessment fails outright — the engine must contain
/// it and keep estimating with the remaining modules.
class BrokenAssessModule : public EstimationModule {
 public:
  std::string name() const override { return "broken-assess"; }
  Result<std::unique_ptr<ComplexityReport>> AssessComplexity(
      const IntegrationScenario&) const override {
    return Status::Internal("detector blew up");
  }
  Result<std::vector<Task>> PlanTasks(const ComplexityReport&,
                                      ExpectedQuality,
                                      const ExecutionSettings&) const
      override {
    return Status::Internal("unreachable");
  }
};

/// A module that throws from planning — extension code is not bound to
/// the exception-free convention, so the engine converts the throw.
class ThrowingPlanModule : public FakeModule {
 public:
  std::string name() const override { return "throwing-plan"; }
  Result<std::vector<Task>> PlanTasks(const ComplexityReport&,
                                      ExpectedQuality,
                                      const ExecutionSettings&) const
      override {
    throw std::runtime_error("planner bug");
  }
};

TEST(EngineDegradedTest, FailingModuleDegradesInsteadOfAborting) {
  EfesEngine engine;
  engine.AddModule(std::make_unique<FakeModule>(3));
  engine.AddModule(std::make_unique<BrokenAssessModule>());
  IntegrationScenario scenario = MakeTrivialScenario();
  auto result = engine.Run(scenario, ExpectedQuality::kLowEffort);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->degraded);
  ASSERT_EQ(result->module_runs.size(), 2u);

  // The healthy module's estimate is intact.
  EXPECT_EQ(result->module_runs[0].module, "fake");
  EXPECT_TRUE(result->module_runs[0].ok());
  EXPECT_DOUBLE_EQ(result->estimate.TotalMinutes(), 15.0);

  // The broken module is present, marked failed, with no report.
  const ModuleRun& broken = result->module_runs[1];
  EXPECT_EQ(broken.module, "broken-assess");
  EXPECT_FALSE(broken.ok());
  EXPECT_EQ(broken.report, nullptr);
  EXPECT_TRUE(broken.tasks.empty());
  EXPECT_NE(broken.status.message().find("detector blew up"),
            std::string::npos);
}

TEST(EngineDegradedTest, ThrowingModuleIsConvertedToStatus) {
  EfesEngine engine;
  engine.AddModule(std::make_unique<ThrowingPlanModule>());
  IntegrationScenario scenario = MakeTrivialScenario();
  auto result = engine.Run(scenario, ExpectedQuality::kLowEffort);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->degraded);
  ASSERT_EQ(result->module_runs.size(), 1u);
  const ModuleRun& run = result->module_runs[0];
  EXPECT_FALSE(run.ok());
  EXPECT_EQ(run.status.code(), StatusCode::kInternal);
  EXPECT_NE(run.status.message().find("planner bug"), std::string::npos);
  // Assessment succeeded before the planner threw; the report survives
  // in the partial result even though its tasks do not.
  EXPECT_NE(run.report, nullptr);
  EXPECT_DOUBLE_EQ(result->estimate.TotalMinutes(), 0.0);
}

TEST(EngineDegradedTest, DegradedTextCallsOutTheFailure) {
  EfesEngine engine;
  engine.AddModule(std::make_unique<BrokenAssessModule>());
  IntegrationScenario scenario = MakeTrivialScenario();
  auto result = engine.Run(scenario, ExpectedQuality::kLowEffort);
  ASSERT_TRUE(result.ok());
  std::string text = result->ToText();
  EXPECT_NE(text.find("DEGRADED RUN"), std::string::npos);
  EXPECT_NE(text.find("module failed"), std::string::npos);
}

TEST(EngineDegradedTest, CleanRunTextHasNoDegradedMarkers) {
  EfesEngine engine;
  engine.AddModule(std::make_unique<FakeModule>(1));
  IntegrationScenario scenario = MakeTrivialScenario();
  auto result = engine.Run(scenario, ExpectedQuality::kLowEffort);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->degraded);
  EXPECT_EQ(result->ToText().find("DEGRADED"), std::string::npos);
  EXPECT_EQ(result->ToText().find("module failed"), std::string::npos);
}

TEST(EffortEstimateTest, EmptyEstimate) {
  EffortEstimate estimate;
  EXPECT_DOUBLE_EQ(estimate.TotalMinutes(), 0.0);
  EXPECT_NE(estimate.ToText().find("Total"), std::string::npos);
}

TEST(SetEffortModelTest, AcceptsValidModelAndInstallsIt) {
  EfesEngine engine;
  EffortModel model = EffortModel::PaperDefault();
  model.set_global_scale(2.0);
  ASSERT_TRUE(engine.set_effort_model(std::move(model)).ok());
  EXPECT_DOUBLE_EQ(engine.effort_model().global_scale(), 2.0);
}

TEST(SetEffortModelTest, RejectsBadScaleAndKeepsTheOldModel) {
  EfesEngine engine;
  EffortModel good = EffortModel::PaperDefault();
  good.set_global_scale(3.0);
  ASSERT_TRUE(engine.set_effort_model(std::move(good)).ok());

  EffortModel zero;
  zero.set_global_scale(0.0);
  EXPECT_FALSE(engine.set_effort_model(std::move(zero)).ok());
  EffortModel negative;
  negative.set_global_scale(-1.0);
  EXPECT_FALSE(engine.set_effort_model(std::move(negative)).ok());
  EffortModel not_a_number;
  not_a_number.set_global_scale(std::numeric_limits<double>::quiet_NaN());
  EXPECT_FALSE(engine.set_effort_model(std::move(not_a_number)).ok());
  EffortModel infinite;
  infinite.set_global_scale(std::numeric_limits<double>::infinity());
  EXPECT_FALSE(engine.set_effort_model(std::move(infinite)).ok());

  EXPECT_DOUBLE_EQ(engine.effort_model().global_scale(), 3.0);
}

TEST(SetEffortModelTest, InstalledModelPricesTasks) {
  EfesEngine engine;
  engine.AddModule(std::make_unique<FakeModule>(3));
  EffortModel doubled = EffortModel::PaperDefault();
  doubled.set_global_scale(2.0);
  ASSERT_TRUE(engine.set_effort_model(std::move(doubled)).ok());
  IntegrationScenario scenario = MakeTrivialScenario();
  auto result = engine.Run(scenario, ExpectedQuality::kLowEffort);
  ASSERT_TRUE(result.ok());
  // 3 reject-tuples tasks at 5 min each, doubled by the global scale.
  EXPECT_DOUBLE_EQ(result->estimate.TotalMinutes(), 30.0);
}

}  // namespace
}  // namespace efes
