// Tests for the Section 5.1 attribute statistics and the importance/fit
// scoring.

#include "efes/profiling/statistics.h"

#include <gtest/gtest.h>

#include <cmath>

#include "efes/common/parallel.h"
#include "efes/profiling/profiler.h"

namespace efes {
namespace {

std::vector<Value> Texts(const std::vector<std::string>& texts) {
  std::vector<Value> values;
  for (const std::string& text : texts) values.push_back(Value::Text(text));
  return values;
}

std::vector<Value> Integers(const std::vector<int64_t>& numbers) {
  std::vector<Value> values;
  for (int64_t n : numbers) values.push_back(Value::Integer(n));
  return values;
}

/// Content tests profile through the production chunked API; only the
/// dedicated wrapper tests below name the deprecated one-shot entry
/// points. ProfileColumn fails only under an unsatisfiable exact
/// --max-memory budget, which no test here configures.
AttributeStatistics Stats(const std::vector<Value>& column, DataType type) {
  auto result = ProfileColumn(column, type);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? *std::move(result) : AttributeStatistics{};
}

TEST(GeneralizeToPatternTest, PaperDurationExample) {
  EXPECT_EQ(GeneralizeToPattern("4:43"), "9:9");
  EXPECT_EQ(GeneralizeToPattern("215900"), "9");
  EXPECT_EQ(GeneralizeToPattern("Sweet Home"), "a a");
  EXPECT_EQ(GeneralizeToPattern("1998-01-02"), "9-9-9");
  EXPECT_EQ(GeneralizeToPattern("'98"), "'9");
  EXPECT_EQ(GeneralizeToPattern(""), "");
  EXPECT_EQ(GeneralizeToPattern("pp. 12--34"), "a. 9--9");
}

TEST(FillStatusTest, CountsNullsAndUncastables) {
  std::vector<Value> column = {Value::Text("42"), Value::Text("4:43"),
                               Value::Null()};
  AttributeStatistics stats = Stats(column, DataType::kInteger);
  EXPECT_EQ(stats.fill_status.total_count, 3u);
  EXPECT_EQ(stats.fill_status.null_count, 1u);
  EXPECT_EQ(stats.fill_status.uncastable_count, 1u);
  EXPECT_NEAR(stats.fill_status.FillFraction(), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(stats.fill_status.NonNullFraction(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(stats.fill_status.CastableFraction(), 0.5, 1e-12);
}

TEST(FillStatusTest, EmptyColumnIsFullyFilled) {
  AttributeStatistics stats = Stats({}, DataType::kText);
  EXPECT_DOUBLE_EQ(stats.fill_status.FillFraction(), 1.0);
  EXPECT_DOUBLE_EQ(stats.fill_status.CastableFraction(), 1.0);
}

TEST(ConstancyTest, SingleValueIsFullyConstant) {
  AttributeStatistics stats = Stats(
      Texts({"x", "x", "x", "x"}), DataType::kText);
  EXPECT_DOUBLE_EQ(stats.constancy.constancy, 1.0);
  EXPECT_EQ(stats.constancy.distinct_count, 1u);
}

TEST(ConstancyTest, AllDistinctIsZeroConstancy) {
  AttributeStatistics stats = Stats(
      Texts({"a", "b", "c", "d", "e", "f", "g", "h"}), DataType::kText);
  EXPECT_NEAR(stats.constancy.constancy, 0.0, 1e-9);
}

TEST(ConstancyTest, SkewIncreasesConstancy) {
  AttributeStatistics skewed = Stats(
      Texts({"a", "a", "a", "a", "a", "a", "b", "c"}), DataType::kText);
  AttributeStatistics uniform = Stats(
      Texts({"a", "a", "a", "b", "b", "b", "c", "c"}), DataType::kText);
  EXPECT_GT(skewed.constancy.constancy, uniform.constancy.constancy);
}

TEST(TextPatternTest, CollectsFrequentPatterns) {
  AttributeStatistics stats = Stats(
      Texts({"4:43", "6:55", "3:26", "hello"}), DataType::kText);
  ASSERT_TRUE(stats.text_pattern.has_value());
  ASSERT_FALSE(stats.text_pattern->patterns.empty());
  EXPECT_EQ(stats.text_pattern->patterns[0].first, "9:9");
  EXPECT_NEAR(stats.text_pattern->patterns[0].second, 0.75, 1e-12);
}

TEST(TextPatternTest, NotComputedForNumericTarget) {
  AttributeStatistics stats =
      Stats(Integers({1, 2, 3}), DataType::kInteger);
  EXPECT_FALSE(stats.text_pattern.has_value());
}

TEST(CharHistogramTest, RelativeFrequencies) {
  AttributeStatistics stats =
      Stats(Texts({"aab"}), DataType::kText);
  ASSERT_TRUE(stats.char_histogram.has_value());
  EXPECT_NEAR(stats.char_histogram->frequencies.at('a'), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(stats.char_histogram->frequencies.at('b'), 1.0 / 3.0, 1e-12);
}

TEST(StringLengthTest, MeanAndStddev) {
  AttributeStatistics stats =
      Stats(Texts({"ab", "abcd"}), DataType::kText);
  ASSERT_TRUE(stats.string_length.has_value());
  EXPECT_DOUBLE_EQ(stats.string_length->mean, 3.0);
  EXPECT_DOUBLE_EQ(stats.string_length->stddev, 1.0);
}

TEST(MeanStatsTest, NumericMoments) {
  AttributeStatistics stats =
      Stats(Integers({2, 4, 6}), DataType::kInteger);
  ASSERT_TRUE(stats.mean.has_value());
  EXPECT_DOUBLE_EQ(stats.mean->mean, 4.0);
  EXPECT_NEAR(stats.mean->stddev, std::sqrt(8.0 / 3.0), 1e-12);
}

TEST(MeanStatsTest, CastableTextCountsTowardsNumericStats) {
  AttributeStatistics stats = Stats(
      Texts({"10", "20", "not a number"}), DataType::kInteger);
  ASSERT_TRUE(stats.mean.has_value());
  EXPECT_DOUBLE_EQ(stats.mean->mean, 15.0);
}

TEST(ValueRangeTest, MinMax) {
  AttributeStatistics stats =
      Stats(Integers({5, -2, 9}), DataType::kReal);
  ASSERT_TRUE(stats.value_range.has_value());
  EXPECT_DOUBLE_EQ(stats.value_range->min, -2.0);
  EXPECT_DOUBLE_EQ(stats.value_range->max, 9.0);
}

TEST(HistogramTest, BucketsSumToOne) {
  std::vector<Value> column;
  for (int i = 0; i < 100; ++i) column.push_back(Value::Integer(i));
  AttributeStatistics stats = Stats(column, DataType::kInteger);
  ASSERT_TRUE(stats.histogram.has_value());
  double sum = 0.0;
  for (double fraction : stats.histogram->bucket_fractions) sum += fraction;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(TopKTest, RanksByFrequency) {
  AttributeStatistics stats = Stats(
      Texts({"x", "x", "x", "y", "y", "z"}), DataType::kText);
  ASSERT_GE(stats.top_k.top_values.size(), 3u);
  EXPECT_EQ(stats.top_k.top_values[0].first, Value::Text("x"));
  EXPECT_NEAR(stats.top_k.top_values[0].second, 0.5, 1e-12);
  EXPECT_NEAR(stats.top_k.coverage, 1.0, 1e-12);
}

TEST(TopKTest, CapsAtK) {
  std::vector<Value> column;
  for (int i = 0; i < 50; ++i) {
    column.push_back(Value::Integer(i));
  }
  AttributeStatistics stats = Stats(column, DataType::kInteger);
  EXPECT_EQ(stats.top_k.top_values.size(), TopKStats::kK);
  EXPECT_LT(stats.top_k.coverage, 0.5);
}

// --- Importance / fit -------------------------------------------------------

TEST(ImportanceTest, UniformPatternIsHighlyImportant) {
  AttributeStatistics uniform = Stats(
      Texts({"1:23", "4:56", "7:89"}), DataType::kText);
  AttributeStatistics mixed = Stats(
      Texts({"1:23", "abc", "a-b", "x y z"}), DataType::kText);
  EXPECT_GT(ImportanceScore(StatisticType::kTextPattern, uniform), 0.9);
  EXPECT_LT(ImportanceScore(StatisticType::kTextPattern, mixed), 0.5);
}

TEST(ImportanceTest, TightLengthsAreImportant) {
  AttributeStatistics tight = Stats(
      Texts({"abcd", "efgh", "ijkl"}), DataType::kText);
  EXPECT_GT(ImportanceScore(StatisticType::kStringLength, tight), 0.95);
}

TEST(FitTest, IdenticalDistributionsFitPerfectly) {
  std::vector<Value> column = Texts({"4:43", "6:55", "3:26"});
  AttributeStatistics stats = Stats(column, DataType::kText);
  EXPECT_NEAR(FitValue(StatisticType::kTextPattern, stats, stats), 1.0,
              1e-9);
  EXPECT_NEAR(FitValue(StatisticType::kCharHistogram, stats, stats), 1.0,
              1e-9);
  EXPECT_NEAR(FitValue(StatisticType::kStringLength, stats, stats), 1.0,
              1e-9);
  EXPECT_NEAR(OverallFit(stats, stats), 1.0, 1e-9);
}

TEST(FitTest, PaperLengthVsDurationMismatch) {
  // Source: millisecond integers rendered as text; target: m:ss strings.
  std::vector<Value> source;
  std::vector<Value> target;
  for (int i = 0; i < 50; ++i) {
    source.push_back(Value::Integer(100000 + i * 1357));
    target.push_back(
        Value::Text(std::to_string(2 + i % 5) + ":" +
                    std::to_string(10 + i % 45)));
  }
  AttributeStatistics source_stats =
      Stats(source, DataType::kText);
  AttributeStatistics target_stats =
      Stats(target, DataType::kText);
  // The paper's threshold separates these: fit well below 0.9.
  EXPECT_LT(OverallFit(source_stats, target_stats), 0.9);
}

TEST(FitTest, NumericScaleMismatchDetected) {
  // Seconds vs milliseconds.
  std::vector<Value> seconds;
  std::vector<Value> milliseconds;
  for (int i = 0; i < 60; ++i) {
    seconds.push_back(Value::Integer(120 + i * 3));
    milliseconds.push_back(Value::Integer((120 + i * 3) * 1000));
  }
  AttributeStatistics source_stats =
      Stats(seconds, DataType::kInteger);
  AttributeStatistics target_stats =
      Stats(milliseconds, DataType::kInteger);
  EXPECT_LT(OverallFit(source_stats, target_stats), 0.9);
}

TEST(FitTest, SameNumericPopulationFits) {
  std::vector<Value> a;
  std::vector<Value> b;
  for (int i = 0; i < 200; ++i) {
    a.push_back(Value::Integer(1970 + (i * 37) % 45));
    b.push_back(Value::Integer(1970 + (i * 53) % 45));
  }
  AttributeStatistics source_stats = Stats(a, DataType::kInteger);
  AttributeStatistics target_stats = Stats(b, DataType::kInteger);
  EXPECT_GE(OverallFit(source_stats, target_stats), 0.9);
}

TEST(FitTest, ValueRangeContainment) {
  std::vector<Value> narrow = Integers({10, 20, 30});
  std::vector<Value> wide = Integers({0, 50, 100});
  AttributeStatistics narrow_stats =
      Stats(narrow, DataType::kInteger);
  AttributeStatistics wide_stats =
      Stats(wide, DataType::kInteger);
  EXPECT_DOUBLE_EQ(
      FitValue(StatisticType::kValueRange, narrow_stats, wide_stats), 1.0);
  EXPECT_LT(FitValue(StatisticType::kValueRange, wide_stats, narrow_stats),
            1.0);
}

TEST(FitTest, MissingStatisticsFitPerfectly) {
  AttributeStatistics empty = Stats({}, DataType::kText);
  EXPECT_DOUBLE_EQ(OverallFit(empty, empty), 1.0);
}

TEST(ApplicableStatisticsTest, PerTargetType) {
  EXPECT_EQ(ApplicableStatistics(DataType::kText).size(), 4u);
  EXPECT_EQ(ApplicableStatistics(DataType::kInteger).size(), 4u);
  EXPECT_EQ(ApplicableStatistics(DataType::kBoolean).size(), 1u);
}

TEST(StatisticsTest, BatchMatchesSequentialForAnyThreadCount) {
  std::vector<std::vector<Value>> columns = {
      Texts({"4:43", "6:55", "1:02", "4:43"}),
      Integers({1, 2, 3, 4, 5, 6, 7, 8}),
      {Value::Null(), Value::Text("x"), Value::Null()},
      {},
  };
  // EFES_LINT_ALLOW(whole-column-profile): deprecated-wrapper coverage
  std::vector<ColumnStatisticsRequest> requests;
  std::vector<DataType> types = {DataType::kText, DataType::kInteger,
                                 DataType::kText, DataType::kReal};
  for (size_t i = 0; i < columns.size(); ++i) {
    // EFES_LINT_ALLOW(whole-column-profile): deprecated-wrapper coverage
    requests.push_back(ColumnStatisticsRequest{&columns[i], types[i]});
  }
  for (size_t threads : {1u, 4u}) {
    SetThreadCountOverride(threads);
    // EFES_LINT_ALLOW(whole-column-profile): deprecated-wrapper coverage
    auto batch = ComputeStatisticsBatch(requests);
    ASSERT_TRUE(batch.ok());
    ASSERT_EQ(batch->size(), requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
      AttributeStatistics sequential = Stats(columns[i], types[i]);
      EXPECT_EQ((*batch)[i].ToString(), sequential.ToString()) << i;
      EXPECT_EQ((*batch)[i].evaluated_against, types[i]);
    }
  }
  SetThreadCountOverride(0);
}

TEST(StatisticsTest, ToStringMentionsKeyFacts) {
  AttributeStatistics stats = Stats(
      Texts({"4:43", "6:55"}), DataType::kText);
  std::string text = stats.ToString();
  EXPECT_NE(text.find("patterns:"), std::string::npos);
  EXPECT_NE(text.find("9:9"), std::string::npos);
}

TEST(StatisticsTest, DeprecatedWrapperMatchesProfileColumn) {
  // The one-shot wrapper is a shim over the sketch path, so its output
  // must stay bit-identical to ProfileColumn under default options.
  std::vector<Value> column = Texts({"4:43", "6:55", "1:02", "4:43", "x"});
  // EFES_LINT_ALLOW(whole-column-profile): deprecated-wrapper coverage
  AttributeStatistics wrapper = ComputeStatistics(column, DataType::kText);
  auto profiled = ProfileColumn(column, DataType::kText);
  ASSERT_TRUE(profiled.ok());
  EXPECT_EQ(wrapper.ToString(), profiled->ToString());
}

TEST(StatisticTypeTest, Names) {
  EXPECT_EQ(StatisticTypeToString(StatisticType::kFillStatus),
            "fill status");
  EXPECT_EQ(StatisticTypeToString(StatisticType::kTopK), "top-k values");
}

}  // namespace
}  // namespace efes
