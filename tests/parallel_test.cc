// Unit tests for the parallel-execution layer (common/parallel.h):
// thread-count resolution, edge-case ranges, ordered results, error and
// exception semantics, nesting, and queue draining on pool destruction.

#include "efes/common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

namespace efes {
namespace {

/// Restores the default thread count when a test returns.
struct ThreadOverrideGuard {
  explicit ThreadOverrideGuard(size_t threads) {
    SetThreadCountOverride(threads);
  }
  ~ThreadOverrideGuard() { SetThreadCountOverride(0); }
};

TEST(ThreadCountTest, OverrideWinsAndClears) {
  {
    ThreadOverrideGuard guard(3);
    EXPECT_EQ(ConfiguredThreadCount(), 3u);
  }
  EXPECT_GE(ConfiguredThreadCount(), 1u);
}

TEST(ThreadCountTest, HardwareConcurrencyIsPositive) {
  EXPECT_GE(HardwareConcurrency(), 1u);
}

TEST(ParallelForTest, EmptyRangeRunsNothing) {
  ThreadOverrideGuard guard(4);
  std::atomic<size_t> calls{0};
  Status status = ParallelFor(0, [&](size_t) -> Status {
    calls.fetch_add(1);
    return Status::OK();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls.load(), 0u);
}

TEST(ParallelForTest, SingleItemRunsOnce) {
  ThreadOverrideGuard guard(8);
  std::atomic<size_t> calls{0};
  Status status = ParallelFor(1, [&](size_t i) -> Status {
    EXPECT_EQ(i, 0u);
    calls.fetch_add(1);
    return Status::OK();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls.load(), 1u);
}

TEST(ParallelForTest, FewerItemsThanWorkersVisitsEveryIndexOnce) {
  ThreadOverrideGuard guard(8);
  std::vector<std::atomic<int>> visits(3);
  Status status = ParallelFor(3, [&](size_t i) -> Status {
    visits[i].fetch_add(1);
    return Status::OK();
  });
  EXPECT_TRUE(status.ok());
  for (const std::atomic<int>& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelForTest, ReportsLowestFailingIndex) {
  ThreadOverrideGuard guard(4);
  Status status = ParallelFor(64, [&](size_t i) -> Status {
    if (i == 7 || i == 3 || i == 50) {
      return Status::InvalidArgument("failed at " + std::to_string(i));
    }
    return Status::OK();
  });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "failed at 3");
}

TEST(ParallelForTest, SequentialPathReportsFirstError) {
  ThreadOverrideGuard guard(1);
  size_t calls = 0;
  Status status = ParallelFor(10, [&](size_t i) -> Status {
    ++calls;
    if (i == 2) return Status::NotFound("stop");
    return Status::OK();
  });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  // Sequential execution stops at the first error.
  EXPECT_EQ(calls, 3u);
}

TEST(ParallelForTest, ExceptionsBecomeInternalStatus) {
  ThreadOverrideGuard guard(4);
  Status status = ParallelFor(16, [&](size_t i) -> Status {
    if (i == 5) throw std::runtime_error("boom");
    return Status::OK();
  });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("exception in parallel task"),
            std::string::npos);
  EXPECT_NE(status.message().find("boom"), std::string::npos);
}

TEST(ParallelForTest, NonStdExceptionsBecomeInternalStatus) {
  ThreadOverrideGuard guard(2);
  Status status = ParallelFor(4, [&](size_t i) -> Status {
    if (i == 1) throw 42;
    return Status::OK();
  });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
}

TEST(ParallelForTest, NestedRegionsCompleteWithoutDeadlock) {
  ThreadOverrideGuard guard(2);
  std::atomic<size_t> inner_calls{0};
  Status status = ParallelFor(8, [&](size_t) -> Status {
    EXPECT_TRUE(InParallelRegion());
    return ParallelFor(8, [&](size_t) -> Status {
      inner_calls.fetch_add(1);
      return Status::OK();
    });
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(inner_calls.load(), 64u);
}

TEST(ParallelForTest, NotInRegionOutsideBatch) {
  EXPECT_FALSE(InParallelRegion());
}

TEST(ParallelMapTest, ResultsArriveInIndexOrder) {
  ThreadOverrideGuard guard(8);
  auto result = ParallelMap(1000, [](size_t i) { return i * i; });
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1000u);
  for (size_t i = 0; i < result->size(); ++i) {
    EXPECT_EQ((*result)[i], i * i);
  }
}

TEST(ParallelMapTest, IdenticalForAnyThreadCount) {
  std::vector<std::vector<size_t>> runs;
  for (size_t threads : {1, 2, 8}) {
    ThreadOverrideGuard guard(threads);
    auto result = ParallelMap(257, [](size_t i) { return i * 31 + 7; });
    ASSERT_TRUE(result.ok());
    runs.push_back(std::move(*result));
  }
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
}

TEST(ParallelMapTest, PropagatesTaskException) {
  ThreadOverrideGuard guard(4);
  auto result = ParallelMap(8, [](size_t i) -> int {
    if (i == 2) throw std::runtime_error("map boom");
    return static_cast<int>(i);
  });
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST(ThreadPoolTest, DrainsQueueOnDestruction) {
  std::atomic<size_t> executed{0};
  {
    ThreadPool pool(2);
    for (size_t i = 0; i < 100; ++i) {
      pool.Submit([&] { executed.fetch_add(1); });
    }
  }  // ~ThreadPool joins after draining.
  EXPECT_EQ(executed.load(), 100u);
}

TEST(ThreadPoolTest, WorkerCountIsAsRequested) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.worker_count(), 3u);
}

TEST(ThreadPoolTest, WorkersAreInParallelRegion) {
  std::atomic<bool> in_region{false};
  {
    ThreadPool pool(1);
    pool.Submit([&] { in_region.store(InParallelRegion()); });
  }
  EXPECT_TRUE(in_region.load());
}

}  // namespace
}  // namespace efes
