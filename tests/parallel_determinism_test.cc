// End-to-end determinism of the parallel pipeline: running the same
// estimation with 1, 2, and 8 threads must produce byte-identical JSON
// reports and identical scheduling-independent telemetry counters.
// Only metrics under the `parallel.pool.` prefix (and the timing
// histograms) may differ between runs — they describe how the work was
// distributed, not what was computed.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "efes/common/parallel.h"
#include "efes/experiment/default_pipeline.h"
#include "efes/experiment/json_export.h"
#include "efes/matching/schema_matcher.h"
#include "efes/profiling/constraint_discovery.h"
#include "efes/cache/profile_cache.h"
#include "efes/scenario/bibliographic.h"
#include "efes/scenario/fuzzer.h"
#include "efes/scenario/scenario_io.h"
#include "efes/common/metrics.h"

namespace efes {
namespace {

const size_t kThreadCounts[] = {1, 2, 8};

IntegrationScenario MakeScenario() {
  BiblioOptions options;
  options.publication_count = 200;
  options.missing_venue_rate = 0.15;
  options.sloppy_year_rate = 0.2;
  auto scenario =
      MakeBiblioScenario(BiblioSchemaId::kS1, BiblioSchemaId::kS2, options);
  EXPECT_TRUE(scenario.ok());
  return std::move(*scenario);
}

/// Counters that must be identical for any thread count: everything
/// except the `parallel.pool.` distribution metrics.
std::map<std::string, uint64_t> DeterministicCounters(
    const MetricsSnapshot& snapshot) {
  std::map<std::string, uint64_t> counters;
  for (const auto& counter : snapshot.counters) {
    if (counter.name.rfind("parallel.pool.", 0) == 0) continue;
    counters[counter.name] = counter.value;
  }
  return counters;
}

TEST(ParallelDeterminismTest, EstimateJsonIsByteIdenticalAcrossThreadCounts) {
  IntegrationScenario scenario = MakeScenario();
  std::vector<std::string> reports;
  std::vector<std::map<std::string, uint64_t>> counters;
  for (size_t threads : kThreadCounts) {
    SetThreadCountOverride(threads);
    MetricsRegistry::Global().Reset();
    EfesEngine engine = MakeDefaultEngine();
    auto result = engine.Run(scenario, ExpectedQuality::kHighQuality);
    ASSERT_TRUE(result.ok()) << result.status();
    reports.push_back(EstimationResultToJson(*result));
    counters.push_back(
        DeterministicCounters(MetricsRegistry::Global().Snapshot()));
  }
  SetThreadCountOverride(0);
  ASSERT_EQ(reports.size(), 3u);
  EXPECT_EQ(reports[0], reports[1]);
  EXPECT_EQ(reports[0], reports[2]);
  EXPECT_EQ(counters[0], counters[1]);
  EXPECT_EQ(counters[0], counters[2]);
}

TEST(ParallelDeterminismTest, ConstraintDiscoveryIsThreadCountInvariant) {
  IntegrationScenario scenario = MakeScenario();
  ASSERT_FALSE(scenario.sources.empty());
  const Database& database = scenario.sources[0].database;
  std::vector<std::vector<std::string>> runs;
  for (size_t threads : kThreadCounts) {
    SetThreadCountOverride(threads);
    std::vector<std::string> rendered;
    for (const DiscoveredConstraint& d :
         DiscoverConstraints(database, DiscoveryOptions{})) {
      rendered.push_back(d.ToString());
    }
    runs.push_back(std::move(rendered));
  }
  SetThreadCountOverride(0);
  EXPECT_FALSE(runs[0].empty());
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
}

TEST(ParallelDeterminismTest, SchemaMatchingIsThreadCountInvariant) {
  IntegrationScenario scenario = MakeScenario();
  ASSERT_FALSE(scenario.sources.empty());
  SchemaMatcher matcher;
  std::vector<std::string> runs;
  for (size_t threads : kThreadCounts) {
    SetThreadCountOverride(threads);
    auto matched =
        matcher.Match(scenario.sources[0].database, scenario.target);
    ASSERT_TRUE(matched.ok());
    runs.push_back(WriteCorrespondences(*matched));
  }
  SetThreadCountOverride(0);
  EXPECT_FALSE(runs[0].empty());
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
}

TEST(ParallelDeterminismTest, FuzzedScenarioIsThreadAndCacheInvariant) {
  // A fuzzed scenario exercises the dedup module's blocking scan, the
  // heaviest new parallel section; the JSON must not depend on the
  // thread count or on whether profiling statistics come from a cache.
  auto fuzzed = FuzzScenario(42);
  ASSERT_TRUE(fuzzed.ok()) << fuzzed.status();
  std::vector<std::string> reports;
  for (size_t threads : kThreadCounts) {
    SetThreadCountOverride(threads);
    EfesEngine engine = MakeDefaultEngine();
    auto result = engine.Run(fuzzed->scenario, ExpectedQuality::kHighQuality);
    ASSERT_TRUE(result.ok()) << result.status();
    reports.push_back(EstimationResultToJson(*result));
  }
  SetThreadCountOverride(0);
  ASSERT_EQ(reports.size(), 3u);
  EXPECT_NE(reports[0].find("\"dedup\""), std::string::npos);
  EXPECT_EQ(reports[0], reports[1]);
  EXPECT_EQ(reports[0], reports[2]);

  ProfileCache cache;
  for (int pass = 0; pass < 2; ++pass) {
    EfesEngine engine = MakeDefaultEngine();
    RunOptions options;
    options.cache = &cache;
    auto result = engine.Run(fuzzed->scenario, options);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(reports[0], EstimationResultToJson(*result))
        << (pass == 0 ? "cold" : "warm") << " cache";
  }
}

TEST(ParallelDeterminismTest, ParallelItemCountersMatchAcrossThreadCounts) {
  IntegrationScenario scenario = MakeScenario();
  std::vector<std::pair<uint64_t, uint64_t>> batch_items;
  for (size_t threads : kThreadCounts) {
    SetThreadCountOverride(threads);
    MetricsRegistry::Global().Reset();
    EfesEngine engine = MakeDefaultEngine();
    auto reports = engine.AssessComplexity(scenario);
    ASSERT_TRUE(reports.ok()) << reports.status();
    MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
    batch_items.emplace_back(snapshot.CounterValue("parallel.batches"),
                             snapshot.CounterValue("parallel.items"));
  }
  SetThreadCountOverride(0);
  EXPECT_EQ(batch_items[0], batch_items[1]);
  EXPECT_EQ(batch_items[0], batch_items[2]);
}

}  // namespace
}  // namespace efes
