// Cancellation-correctness property test (the `serve.cancel` fault
// point): for EVERY batch-boundary checkpoint k an engine run crosses,
// cancelling exactly at checkpoint k must yield a clean cancellation
// error (kCancelled/kDeadlineExceeded) — and cancelling after the last
// checkpoint must yield a report byte-identical to the uncancelled run.
// There is no third outcome: never a torn, partially-estimated,
// non-degraded report.
//
// At --threads=1 every checkpoint executes on the driver thread, so the
// global fault registry's n-th-hit trigger walks the boundaries
// deterministically. At higher thread counts nested parallel regions
// check in on pool threads, so hit *order* is scheduling-dependent; the
// property weakens to the same disjunction (error XOR identical bytes),
// which the multithreaded section verifies per seed.

#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "efes/common/deadline.h"
#include "efes/common/fault.h"
#include "efes/common/parallel.h"
#include "efes/core/engine.h"
#include "efes/experiment/default_pipeline.h"
#include "efes/experiment/json_export.h"
#include "efes/scenario/paper_example.h"

namespace efes {
namespace {

class CancellationPropertyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto scenario = MakePaperExample();
    ASSERT_TRUE(scenario.ok());
    scenario_ = std::move(*scenario);
  }

  void TearDown() override {
    FaultRegistry::Global().DisarmAll();
    SetThreadCountOverride(0);
  }

  /// Runs the full pipeline and renders the bytes an `estimate` response
  /// would carry.
  Result<std::string> RunToBytes() {
    EfesEngine engine = MakeDefaultEngine();
    EFES_ASSIGN_OR_RETURN(EstimationResult result, engine.Run(*scenario_));
    return EstimationResultToJson(result);
  }

  std::optional<IntegrationScenario> scenario_;
};

TEST_F(CancellationPropertyTest, EveryCheckpointAbortsCleanlyAtOneThread) {
  SetThreadCountOverride(1);
  // Baseline: no fault, and count the checkpoints with a trigger that
  // never fires (hit counting starts once a point is armed).
  ASSERT_TRUE(
      FaultRegistry::Global().ArmFromString("serve.cancel:n=1000000").ok());
  auto baseline = RunToBytes();
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  const uint64_t checkpoints =
      FaultRegistry::Global().HitCount("serve.cancel");
  ASSERT_GT(checkpoints, 0u) << "no checkpoint was crossed; the fault "
                                "point is dead and the property vacuous";

  for (uint64_t k = 1; k <= checkpoints; ++k) {
    FaultRegistry::Global().DisarmAll();
    ASSERT_TRUE(FaultRegistry::Global()
                    .ArmFromString("serve.cancel:n=" + std::to_string(k))
                    .ok());
    auto result = RunToBytes();
    ASSERT_FALSE(result.ok())
        << "checkpoint " << k << " of " << checkpoints
        << " fired but the run completed — the cancellation was lost";
    EXPECT_TRUE(IsCancellation(result.status().code()))
        << "checkpoint " << k << " surfaced " << result.status().ToString()
        << " instead of a cancellation code";
  }

  // One past the last checkpoint: the run must complete byte-identically
  // to the baseline — cancellation machinery armed-but-unfired is free.
  FaultRegistry::Global().DisarmAll();
  ASSERT_TRUE(FaultRegistry::Global()
                  .ArmFromString("serve.cancel:n=" +
                                 std::to_string(checkpoints + 1))
                  .ok());
  auto complete = RunToBytes();
  ASSERT_TRUE(complete.ok()) << complete.status().ToString();
  EXPECT_EQ(*complete, *baseline);
}

TEST_F(CancellationPropertyTest, ErrorOrIdenticalAcrossThreadCounts) {
  SetThreadCountOverride(1);
  auto baseline = RunToBytes();
  ASSERT_TRUE(baseline.ok());

  SetThreadCountOverride(4);
  auto parallel_baseline = RunToBytes();
  ASSERT_TRUE(parallel_baseline.ok());
  ASSERT_EQ(*parallel_baseline, *baseline)
      << "determinism precondition broken before any cancellation";

  for (uint64_t k = 1; k <= 12; ++k) {
    FaultRegistry::Global().DisarmAll();
    ASSERT_TRUE(FaultRegistry::Global()
                    .ArmFromString("serve.cancel:n=" + std::to_string(k))
                    .ok());
    auto result = RunToBytes();
    if (result.ok()) {
      // The k-th hit never happened (or happened after the work was
      // done): the report must be exactly the uncancelled bytes.
      EXPECT_EQ(*result, *baseline)
          << "k=" << k << ": completed run differs from baseline";
    } else {
      EXPECT_TRUE(IsCancellation(result.status().code()))
          << "k=" << k << ": " << result.status().ToString();
    }
  }
}

TEST_F(CancellationPropertyTest, FirstCheckpointCancelIsDeterministic) {
  // `once` fires at the very first checkpoint, which always executes on
  // the driver thread — deterministic at any thread count.
  for (size_t threads : {size_t{1}, size_t{4}}) {
    SetThreadCountOverride(threads);
    FaultRegistry::Global().DisarmAll();
    ASSERT_TRUE(
        FaultRegistry::Global().ArmFromString("serve.cancel:once").ok());
    auto result = RunToBytes();
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  }
}

}  // namespace
}  // namespace efes
