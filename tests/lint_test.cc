// Tests for efes_lint: every check gets a positive case (the violation
// is found), a negative case (idiomatic code stays clean), and a
// suppression case (EFES_LINT_ALLOW with a reason silences it, without
// one it doesn't). Fixture sources live in raw strings, so linting this
// file itself stays clean. The meta-test at the bottom runs the linter
// over the real tree and is the executable form of the project rule
// "the tree ships lint-clean".

#include "efes/lint/lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "efes/common/file_io.h"
#include "efes/lint/token.h"

namespace efes::lint {
namespace {

using File = std::pair<std::string, std::string>;

std::vector<Finding> Lint(const std::vector<File>& files) {
  Linter linter;
  return linter.Run(files);
}

/// Unsuppressed findings of one check id.
std::vector<Finding> FindingsOf(const std::vector<Finding>& all,
                                const std::string& check) {
  std::vector<Finding> out;
  for (const Finding& f : all) {
    if (f.check == check && !f.suppressed) out.push_back(f);
  }
  return out;
}

// ---------------------------------------------------------------- lexer

TEST(TokenizerTest, SkipsCommentsAndStrings) {
  auto tokens = Tokenize(R"cpp(
// rand() in a line comment
/* rand() in a block
   comment */
const char* s = "rand()";
const char* r = R"x(rand())x";
int n = 42;
)cpp");
  int identifiers = 0;
  for (const Token& t : tokens) {
    if (t.kind == TokenKind::kIdentifier) {
      EXPECT_NE(t.text, "rand");
      ++identifiers;
    }
  }
  // const, char, s, const, char, r, int, n
  EXPECT_EQ(identifiers, 8);
}

TEST(TokenizerTest, TracksLineNumbers) {
  auto tokens = Tokenize("a\nbb\n\ncc dd\n");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[2].line, 4);
  EXPECT_EQ(tokens[3].line, 4);
}

TEST(TokenizerTest, MultiCharPunctuatorsAreSingleTokens) {
  auto tokens = Tokenize("a::b->c >> d");
  ASSERT_EQ(tokens.size(), 7u);
  EXPECT_EQ(tokens[1].text, "::");
  EXPECT_EQ(tokens[3].text, "->");
  EXPECT_EQ(tokens[5].text, ">>");
}

TEST(TokenizerTest, SurvivesUnterminatedLiterals) {
  EXPECT_FALSE(Tokenize("const char* s = \"never closed").empty());
  EXPECT_FALSE(Tokenize("/* never closed").empty());
  EXPECT_FALSE(Tokenize("R\"tag(never closed").empty());
}

// ------------------------------------------------------ discarded-status

constexpr char kStatusDecls[] = R"(
#pragma once
Status Save(int x);
Result<int> Load(int x);
)";

TEST(DiscardedStatusTest, FlagsBareStatementCall) {
  auto findings = Lint({{"a/decl.h", kStatusDecls},
                        {"a/use.cc", "void F() {\n  Save(1);\n}\n"}});
  auto hits = FindingsOf(findings, "discarded-status");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].file, "a/use.cc");
  EXPECT_EQ(hits[0].line, 2);
}

TEST(DiscardedStatusTest, FlagsResultAndMemberCalls) {
  auto findings =
      Lint({{"a/decl.h", kStatusDecls},
            {"a/use.cc", "void F(Db& db) {\n  Load(2);\n  db.Save(3);\n}\n"}});
  EXPECT_EQ(FindingsOf(findings, "discarded-status").size(), 2u);
}

TEST(DiscardedStatusTest, ConsumedResultsAreClean) {
  auto findings = Lint(
      {{"a/decl.h", kStatusDecls},
       {"a/use.cc",
        "Status G();\n"
        "Status F() {\n"
        "  Status s = Save(1);\n"
        "  if (!Save(2).ok()) return G();\n"
        "  EFES_RETURN_IF_ERROR(Save(3));\n"
        "  (void)Save(4);\n"
        "  return Save(5);\n"
        "}\n"}});
  EXPECT_TRUE(FindingsOf(findings, "discarded-status").empty());
}

TEST(DiscardedStatusTest, NameOverloadedWithOtherReturnTypeIsSkipped) {
  // A second declaration `void Save(...)` makes the name ambiguous; the
  // check backs off and leaves it to the compiler's [[nodiscard]].
  auto findings = Lint({{"a/decl.h", kStatusDecls},
                        {"a/other.h", "#pragma once\nvoid Save(double x);\n"},
                        {"a/use.cc", "void F() {\n  Save(1);\n}\n"}});
  EXPECT_TRUE(FindingsOf(findings, "discarded-status").empty());
}

TEST(DiscardedStatusTest, SuppressionWithReasonSilences) {
  auto findings = Lint(
      {{"a/decl.h", kStatusDecls},
       {"a/use.cc",
        "void F() {\n"
        "  // EFES_LINT_ALLOW(discarded-status): best-effort cleanup\n"
        "  Save(1);\n"
        "}\n"}});
  EXPECT_TRUE(FindingsOf(findings, "discarded-status").empty());
  ASSERT_EQ(findings.size(), 1u);  // still reported, as suppressed
  EXPECT_TRUE(findings[0].suppressed);
}

// -------------------------------------------------------- nondeterminism

TEST(NondeterminismTest, FlagsEntropyAndWallClock) {
  auto findings = Lint({{"src/efes/core/x.cc",
                         "void F() {\n"
                         "  int a = rand();\n"
                         "  srand(7);\n"
                         "  std::random_device rd;\n"
                         "  auto t = time(nullptr);\n"
                         "  auto n = std::chrono::system_clock::now();\n"
                         "}\n"}});
  EXPECT_EQ(FindingsOf(findings, "nondeterminism").size(), 5u);
}

TEST(NondeterminismTest, AllowlistedPathsAreClean) {
  const std::string body = "void F() {\n  std::random_device rd;\n}\n";
  EXPECT_TRUE(FindingsOf(Lint({{"src/efes/common/random.cc", body}}),
                         "nondeterminism")
                  .empty());
  EXPECT_TRUE(FindingsOf(Lint({{"src/efes/common/clock.cc", body}}),
                         "nondeterminism")
                  .empty());
}

TEST(NondeterminismTest, MemberNamedTimeIsClean) {
  auto findings =
      Lint({{"src/efes/core/x.cc", "void F(Span s) {\n  s.time(1);\n}\n"}});
  EXPECT_TRUE(FindingsOf(findings, "nondeterminism").empty());
}

TEST(NondeterminismTest, SuppressionWithReasonSilences) {
  auto findings = Lint(
      {{"src/efes/core/x.cc",
        "void F() {\n"
        "  srand(7);  // EFES_LINT_ALLOW(nondeterminism): seeding a demo\n"
        "}\n"}});
  EXPECT_TRUE(FindingsOf(findings, "nondeterminism").empty());
}

// --------------------------------------------------- unordered-iteration

constexpr char kUnorderedLoop[] =
    "void Render() {\n"
    "  std::unordered_map<std::string, int> counts;\n"
    "  for (const auto& [key, value] : counts) {\n"
    "  }\n"
    "}\n";

TEST(UnorderedIterationTest, FlagsRangeForInReportPath) {
  auto findings = Lint({{"src/efes/telemetry/report.cc", kUnorderedLoop}});
  auto hits = FindingsOf(findings, "unordered-iteration");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 3);
}

TEST(UnorderedIterationTest, NonOutputPathsAreClean) {
  auto findings = Lint({{"src/efes/profiling/stats.cc", kUnorderedLoop}});
  EXPECT_TRUE(FindingsOf(findings, "unordered-iteration").empty());
}

TEST(UnorderedIterationTest, IteratingSortedCopyIsClean) {
  auto findings = Lint(
      {{"src/efes/telemetry/report.cc",
        "void Render() {\n"
        "  std::unordered_map<std::string, int> counts;\n"
        "  std::map<std::string, int> sorted(counts.begin(), counts.end());\n"
        "  for (const auto& [key, value] : sorted) {\n"
        "  }\n"
        "}\n"}});
  EXPECT_TRUE(FindingsOf(findings, "unordered-iteration").empty());
}

TEST(UnorderedIterationTest, SuppressionWithReasonSilences) {
  std::string body = kUnorderedLoop;
  body.insert(body.find("  for"),
              "  // EFES_LINT_ALLOW(unordered-iteration): keys re-sorted "
              "downstream\n");
  auto findings = Lint({{"src/efes/telemetry/report.cc", body}});
  EXPECT_TRUE(FindingsOf(findings, "unordered-iteration").empty());
}

// -------------------------------------------------------- raw-file-write

TEST(RawFileWriteTest, FlagsOfstreamFopenRename) {
  auto findings = Lint({{"src/efes/core/x.cc",
                         "void F() {\n"
                         "  std::ofstream out(\"f\");\n"
                         "  FILE* fp = fopen(\"f\", \"w\");\n"
                         "  std::filesystem::rename(\"a\", \"b\");\n"
                         "}\n"}});
  EXPECT_EQ(FindingsOf(findings, "raw-file-write").size(), 3u);
}

TEST(RawFileWriteTest, FileIoAndReadsAreClean) {
  EXPECT_TRUE(
      FindingsOf(Lint({{"src/efes/common/file_io.cc",
                        "void F() {\n  std::ofstream out(\"f\");\n}\n"}}),
                 "raw-file-write")
          .empty());
  EXPECT_TRUE(
      FindingsOf(Lint({{"src/efes/core/x.cc",
                        "void F() {\n  std::ifstream in(\"f\");\n}\n"}}),
                 "raw-file-write")
          .empty());
}

TEST(RawFileWriteTest, SuppressionWithReasonSilences) {
  auto findings = Lint(
      {{"src/efes/core/x.cc",
        "void F() {\n"
        "  // EFES_LINT_ALLOW(raw-file-write): corrupting a fixture file\n"
        "  std::ofstream out(\"f\");\n"
        "}\n"}});
  EXPECT_TRUE(FindingsOf(findings, "raw-file-write").empty());
}

// -------------------------------------------------------- header-hygiene

TEST(HeaderHygieneTest, FlagsMissingGuardAndUsingNamespace) {
  auto findings = Lint({{"src/efes/core/bad.h",
                         "using namespace std;\n"
                         "int F();\n"}});
  auto hits = FindingsOf(findings, "header-hygiene");
  EXPECT_EQ(hits.size(), 2u);
}

TEST(HeaderHygieneTest, GuardedHeadersAreClean) {
  EXPECT_TRUE(FindingsOf(Lint({{"a/p.h", "#pragma once\nint F();\n"}}),
                         "header-hygiene")
                  .empty());
  EXPECT_TRUE(FindingsOf(Lint({{"a/g.h",
                                "#ifndef A_G_H_\n#define A_G_H_\n"
                                "int F();\n#endif\n"}}),
                         "header-hygiene")
                  .empty());
}

TEST(HeaderHygieneTest, SourceFilesNeedNoGuard) {
  EXPECT_TRUE(
      FindingsOf(Lint({{"a/x.cc", "int F() { return 1; }\n"}}),
                 "header-hygiene")
          .empty());
}

TEST(HeaderHygieneTest, SuppressionWithReasonSilences) {
  auto findings = Lint(
      {{"a/bad.h",
        "// EFES_LINT_ALLOW(header-hygiene): generated shim, guard upstream\n"
        "int F();\n"}});
  EXPECT_TRUE(FindingsOf(findings, "header-hygiene").empty());
}

// ------------------------------------------------------- banned-function

TEST(BannedFunctionTest, FlagsCFootgunsAndNakedNewDelete) {
  auto findings = Lint({{"src/efes/core/x.cc",
                         "void F(char* d, const char* s, Thing* t) {\n"
                         "  strcpy(d, s);\n"
                         "  sprintf(d, \"%d\", 1);\n"
                         "  int n = atoi(s);\n"
                         "  Thing* u = new Thing();\n"
                         "  delete t;\n"
                         "}\n"}});
  EXPECT_EQ(FindingsOf(findings, "banned-function").size(), 5u);
}

TEST(BannedFunctionTest, FlagsRemovedMutableEffortModelAccessor) {
  auto findings = Lint({{"src/efes/core/x.cc",
                         "void F(EfesEngine& engine) {\n"
                         "  engine.mutable_effort_model().set_global_scale("
                         "2.0);\n"
                         "}\n"}});
  EXPECT_EQ(FindingsOf(findings, "banned-function").size(), 1u);
}

TEST(BannedFunctionTest, MentionInStringLiteralIsClean) {
  auto findings = Lint({{"src/efes/core/x.cc",
                         "const char* kHint =\n"
                         "    \"mutable_effort_model was replaced by "
                         "set_effort_model\";\n"}});
  EXPECT_TRUE(FindingsOf(findings, "banned-function").empty());
}

TEST(BannedFunctionTest, DeletedFunctionsAndOperatorsAreClean) {
  auto findings = Lint({{"src/efes/core/x.h",
                         "#pragma once\n"
                         "struct S {\n"
                         "  S(const S&) = delete;\n"
                         "  S& operator=(const S&) = delete;\n"
                         "};\n"}});
  EXPECT_TRUE(FindingsOf(findings, "banned-function").empty());
}

TEST(BannedFunctionTest, SuppressionWithReasonSilences) {
  auto findings = Lint(
      {{"src/efes/core/x.cc",
        "Thing* F() {\n"
        "  // EFES_LINT_ALLOW(banned-function): leaked singleton\n"
        "  return new Thing();\n"
        "}\n"}});
  EXPECT_TRUE(FindingsOf(findings, "banned-function").empty());
}

// -------------------------------------------------------- unbounded-wait

TEST(UnboundedWaitTest, FlagsSleepsAndPredicatelessWaits) {
  auto findings = Lint({{"src/efes/serve/x.cc",
                         "void F(std::condition_variable& cv,\n"
                         "       std::unique_lock<std::mutex>& lock,\n"
                         "       std::future<int>& f) {\n"
                         "  std::this_thread::sleep_for(\n"
                         "      std::chrono::milliseconds(10));\n"
                         "  cv.wait(lock);\n"
                         "  f.wait();\n"
                         "}\n"}});
  EXPECT_EQ(FindingsOf(findings, "unbounded-wait").size(), 3u);
}

TEST(UnboundedWaitTest, PredicateAndDeadlineOverloadsAreClean) {
  auto findings = Lint({{"src/efes/serve/x.cc",
                         "void F(std::condition_variable& cv,\n"
                         "       std::unique_lock<std::mutex>& lock) {\n"
                         "  cv.wait(lock, [&] { return done(); });\n"
                         "  cv.wait_for(lock, std::chrono::seconds(1));\n"
                         "  cv.wait_until(lock, deadline);\n"
                         "}\n"}});
  EXPECT_TRUE(FindingsOf(findings, "unbounded-wait").empty());
}

TEST(UnboundedWaitTest, CommonImplementationFilesAreAllowlisted) {
  auto findings = Lint({{"src/efes/common/file_io.cc",
                         "void F() {\n"
                         "  std::this_thread::sleep_for(\n"
                         "      std::chrono::milliseconds(10));\n"
                         "}\n"}});
  EXPECT_TRUE(FindingsOf(findings, "unbounded-wait").empty());
}

TEST(UnboundedWaitTest, SuppressionWithReasonSilences) {
  auto findings = Lint(
      {{"src/efes/serve/x.cc",
        "void F(std::future<int>& f) {\n"
        "  // EFES_LINT_ALLOW(unbounded-wait): result is already ready\n"
        "  f.wait();\n"
        "}\n"}});
  EXPECT_TRUE(FindingsOf(findings, "unbounded-wait").empty());
}

// ----------------------------------------------------------- metric-name

TEST(MetricNameTest, FlagsUndottedAndUppercaseNames) {
  auto findings = Lint(
      {{"src/efes/core/x.cc",
        "void F(MetricsRegistry& m, TraceRecorder* r) {\n"
        "  m.GetCounter(\"tuples\").Increment(1);\n"
        "  m.GetGauge(\"Core.Size\").Set(2.0);\n"
        "  m.GetHistogram(\"core..ms\").Observe(3.0);\n"
        "  TraceSpan span(\"run\", r);\n"
        "}\n"}});
  EXPECT_EQ(FindingsOf(findings, "metric-name").size(), 4u);
}

TEST(MetricNameTest, DottedLowercaseNamesAreClean) {
  auto findings = Lint(
      {{"src/efes/core/x.cc",
        "void F(MetricsRegistry& m, TraceRecorder* r) {\n"
        "  m.GetCounter(\"core.run.tuples\").Increment(1);\n"
        "  m.GetHistogram(\"values.assess.ms\").Observe(3.0);\n"
        "  TraceSpan span(\"execute.run\", r);\n"
        "}\n"}});
  EXPECT_TRUE(FindingsOf(findings, "metric-name").empty());
}

TEST(MetricNameTest, ConcatenatedOrComputedNamesAreSkipped) {
  // Only complete single-literal names are checkable; adjacent-literal
  // concatenation and runtime-built names are out of scope.
  auto findings = Lint(
      {{"src/efes/core/x.cc",
        "void F(MetricsRegistry& m, std::string n) {\n"
        "  m.GetCounter(\"core\" \".tuples\").Increment(1);\n"
        "  m.GetCounter(n).Increment(1);\n"
        "}\n"}});
  EXPECT_TRUE(FindingsOf(findings, "metric-name").empty());
}

TEST(MetricNameTest, SuppressionWithReasonSilences) {
  auto findings = Lint(
      {{"src/efes/core/x.cc",
        "void F(MetricsRegistry& m) {\n"
        "  // EFES_LINT_ALLOW(metric-name): exercises escape rendering\n"
        "  m.GetGauge(\"g\\\"quoted\\\"\").Set(0.5);\n"
        "}\n"}});
  EXPECT_TRUE(FindingsOf(findings, "metric-name").empty());
}

// -------------------------------------------------- whole-column-profile

TEST(WholeColumnProfileTest, FlagsDeprecatedApiOutsideProfiling) {
  auto findings = Lint(
      {{"src/efes/matching/x.cc",
        "void F(const std::vector<Value>& column) {\n"
        "  AttributeStatistics s = ComputeStatistics(column, "
        "DataType::kText);\n"
        "  std::vector<ColumnStatisticsRequest> requests;\n"
        "  auto batch = ComputeStatisticsBatch(requests);\n"
        "}\n"}});
  EXPECT_EQ(FindingsOf(findings, "whole-column-profile").size(), 3u);
}

TEST(WholeColumnProfileTest, ProfilingModuleAndSketchApiAreClean) {
  // The declaring module keeps the deprecated wrapper; everyone else is
  // clean when using the chunked ProfileColumn path.
  EXPECT_TRUE(
      FindingsOf(
          Lint({{"src/efes/profiling/statistics.cc",
                 "AttributeStatistics ComputeStatistics(\n"
                 "    const std::vector<Value>& column, DataType t) {\n"
                 "  return {};\n"
                 "}\n"}}),
          "whole-column-profile")
          .empty());
  EXPECT_TRUE(
      FindingsOf(
          Lint({{"src/efes/matching/x.cc",
                 "void F(const std::vector<Value>& column) {\n"
                 "  auto s = ProfileColumn(column, DataType::kText);\n"
                 "}\n"}}),
          "whole-column-profile")
          .empty());
}

TEST(WholeColumnProfileTest, SuppressionWithReasonSilences) {
  auto findings = Lint(
      {{"tests/statistics_test.cc",
        "void F(const std::vector<Value>& column) {\n"
        "  // EFES_LINT_ALLOW(whole-column-profile): wrapper coverage\n"
        "  auto s = ComputeStatistics(column, DataType::kText);\n"
        "}\n"}});
  EXPECT_TRUE(FindingsOf(findings, "whole-column-profile").empty());
}

// ------------------------------------------------------- bad-suppression

TEST(BadSuppressionTest, MissingReasonIsAFinding) {
  auto findings = Lint(
      {{"src/efes/core/x.cc",
        "void F() {\n"
        "  srand(7);  // EFES_LINT_ALLOW(nondeterminism)\n"
        "}\n"}});
  // The reasonless suppression does not silence, and is itself flagged.
  EXPECT_EQ(FindingsOf(findings, "nondeterminism").size(), 1u);
  EXPECT_EQ(FindingsOf(findings, "bad-suppression").size(), 1u);
}

TEST(BadSuppressionTest, UnknownCheckIsAFinding) {
  auto findings = Lint(
      {{"src/efes/core/x.cc",
        "// EFES_LINT_ALLOW(made-up-check): whatever\nvoid F();\n"}});
  EXPECT_EQ(FindingsOf(findings, "bad-suppression").size(), 1u);
}

TEST(BadSuppressionTest, ProseMentionIsIgnored) {
  auto findings = Lint(
      {{"src/efes/core/x.cc",
        "// Write EFES_LINT_ALLOW(<check-id>): <reason> to suppress.\n"
        "void F();\n"}});
  EXPECT_TRUE(findings.empty());
}

// ------------------------------------------------------------- rendering

TEST(RenderTest, TextAndJsonCarryFindings) {
  auto findings = Lint({{"src/efes/core/x.cc", "void F() {\n  srand(7);\n}\n"}});
  ASSERT_EQ(findings.size(), 1u);
  std::string text = RenderText(findings);
  EXPECT_NE(text.find("src/efes/core/x.cc:2:"), std::string::npos);
  EXPECT_NE(text.find("[nondeterminism]"), std::string::npos);
  EXPECT_NE(text.find("1 unsuppressed"), std::string::npos);
  std::string json = RenderJson(findings);
  EXPECT_NE(json.find("\"check\":\"nondeterminism\""), std::string::npos);
  EXPECT_NE(json.find("\"unsuppressed\":1"), std::string::npos);
  EXPECT_EQ(CountUnsuppressed(findings), 1u);
}

TEST(RenderTest, CheckCatalogIsStable) {
  const auto& ids = AllCheckIds();
  EXPECT_EQ(ids.size(), 10u);
  EXPECT_NE(std::find(ids.begin(), ids.end(), "metric-name"), ids.end());
  EXPECT_NE(std::find(ids.begin(), ids.end(), "whole-column-profile"),
            ids.end());
  EXPECT_NE(std::find(ids.begin(), ids.end(), "unbounded-wait"), ids.end());
  EXPECT_NE(std::find(ids.begin(), ids.end(), "discarded-status"),
            ids.end());
  EXPECT_NE(std::find(ids.begin(), ids.end(), "bad-suppression"),
            ids.end());
}

// -------------------------------------------------------------- meta-test

#ifdef EFES_SOURCE_DIR
TEST(LintTreeMetaTest, RealTreeIsLintClean) {
  namespace fs = std::filesystem;
  const fs::path root(EFES_SOURCE_DIR);
  std::vector<File> sources;
  for (const char* dir : {"src", "tools", "tests", "bench"}) {
    for (const auto& entry :
         fs::recursive_directory_iterator(root / dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".hh" && ext != ".hpp" && ext != ".cc" &&
          ext != ".cpp") {
        continue;
      }
      auto content = ReadFileToString(entry.path().string());
      ASSERT_TRUE(content.ok()) << entry.path();
      sources.emplace_back(entry.path().generic_string(),
                           std::move(content).value());
    }
  }
  ASSERT_GT(sources.size(), 100u);  // sanity: the walk found the tree
  auto findings = Lint(sources);
  std::vector<Finding> bad;
  for (const Finding& f : findings) {
    if (!f.suppressed) bad.push_back(f);
  }
  EXPECT_TRUE(bad.empty()) << RenderText(bad);
}
#endif  // EFES_SOURCE_DIR

}  // namespace
}  // namespace efes::lint
