// Tests for the CSV reader/writer.

#include "efes/common/csv.h"

#include <gtest/gtest.h>

#include "efes/common/file_io.h"
#include "test_paths.h"

namespace efes {
namespace {

TEST(CsvTest, ParsesSimpleDocument) {
  auto doc = ParseCsv("a,b,c\n1,2,3\n4,5,6\n");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->header, (std::vector<std::string>{"a", "b", "c"}));
  ASSERT_EQ(doc->rows.size(), 2u);
  EXPECT_EQ(doc->rows[0], (std::vector<std::string>{"1", "2", "3"}));
  EXPECT_EQ(doc->rows[1], (std::vector<std::string>{"4", "5", "6"}));
}

TEST(CsvTest, HandlesMissingTrailingNewline) {
  auto doc = ParseCsv("a,b\n1,2");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->rows.size(), 1u);
  EXPECT_EQ(doc->rows[0][1], "2");
}

TEST(CsvTest, HandlesCrLf) {
  auto doc = ParseCsv("a,b\r\n1,2\r\n");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->rows.size(), 1u);
  EXPECT_EQ(doc->rows[0][0], "1");
}

TEST(CsvTest, ParsesQuotedFields) {
  auto doc = ParseCsv("a,b\n\"hello, world\",\"say \"\"hi\"\"\"\n");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->rows[0][0], "hello, world");
  EXPECT_EQ(doc->rows[0][1], "say \"hi\"");
}

TEST(CsvTest, ParsesEmbeddedNewlineInQuotes) {
  auto doc = ParseCsv("a\n\"line1\nline2\"\n");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->rows[0][0], "line1\nline2");
}

TEST(CsvTest, EmptyCellsPreserved) {
  auto doc = ParseCsv("a,b,c\n,,\n");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->rows[0], (std::vector<std::string>{"", "", ""}));
}

TEST(CsvTest, RejectsArityMismatch) {
  auto doc = ParseCsv("a,b\n1,2,3\n");
  EXPECT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kParseError);
}

TEST(CsvTest, RejectsUnterminatedQuote) {
  auto doc = ParseCsv("a\n\"oops\n");
  EXPECT_FALSE(doc.ok());
}

TEST(CsvTest, MixedCrLfAndLfLineEndings) {
  auto doc = ParseCsv("a,b\r\n1,2\n3,4\r\n5,6");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->rows.size(), 3u);
  EXPECT_EQ(doc->rows[0], (std::vector<std::string>{"1", "2"}));
  EXPECT_EQ(doc->rows[1], (std::vector<std::string>{"3", "4"}));
  EXPECT_EQ(doc->rows[2], (std::vector<std::string>{"5", "6"}));
}

TEST(CsvTest, LoneCrEndsRecord) {
  auto doc = ParseCsv("a,b\r1,2\r");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->rows.size(), 1u);
  EXPECT_EQ(doc->rows[0], (std::vector<std::string>{"1", "2"}));
}

TEST(CsvTest, CrLfInsideQuotesIsPreserved) {
  auto doc = ParseCsv("a\n\"x\r\ny\"\n");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->rows.size(), 1u);
  EXPECT_EQ(doc->rows[0][0], "x\r\ny");
}

TEST(CsvTest, RejectsUnterminatedQuoteAtEof) {
  EXPECT_FALSE(ParseCsv("a\n\"oops").ok());
  EXPECT_FALSE(ParseCsv("a\n\"").ok());
  auto doc = ParseCsv("a\n\"trailing quote");
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kParseError);
}

TEST(CsvTest, EmptyTrailingFieldBeforeNewline) {
  auto doc = ParseCsv("a,b\n1,\n");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->rows.size(), 1u);
  EXPECT_EQ(doc->rows[0], (std::vector<std::string>{"1", ""}));
}

TEST(CsvTest, EmptyTrailingFieldAtEof) {
  auto doc = ParseCsv("a,b\n1,");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->rows.size(), 1u);
  EXPECT_EQ(doc->rows[0], (std::vector<std::string>{"1", ""}));
}

TEST(CsvTest, EmptyTrailingFieldWithCrLf) {
  auto doc = ParseCsv("a,b\r\n1,\r\n");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->rows.size(), 1u);
  EXPECT_EQ(doc->rows[0], (std::vector<std::string>{"1", ""}));
}

TEST(CsvTest, QuotedEmptyTrailingField) {
  auto doc = ParseCsv("a,b\n1,\"\"\n");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->rows.size(), 1u);
  EXPECT_EQ(doc->rows[0], (std::vector<std::string>{"1", ""}));
}

TEST(CsvTest, RejectsEmptyInput) {
  EXPECT_FALSE(ParseCsv("").ok());
}

TEST(CsvTest, CustomDelimiter) {
  auto doc = ParseCsv("a;b\n1;2\n", ';');
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->rows[0][1], "2");
}

TEST(CsvTest, WriteQuotesOnlyWhenNeeded) {
  CsvDocument doc;
  doc.header = {"plain", "with,comma", "with\"quote"};
  doc.rows = {{"v", "a,b", "x\"y"}};
  std::string text = WriteCsv(doc);
  EXPECT_EQ(text,
            "plain,\"with,comma\",\"with\"\"quote\"\n"
            "v,\"a,b\",\"x\"\"y\"\n");
}

TEST(CsvTest, RoundTripPreservesContent) {
  CsvDocument doc;
  doc.header = {"title", "notes"};
  doc.rows = {{"Sweet Home Alabama", "4:43"},
              {"contains, comma", "multi\nline"},
              {"", "\"quoted\""}};
  auto parsed = ParseCsv(WriteCsv(doc));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->header, doc.header);
  EXPECT_EQ(parsed->rows, doc.rows);
}

TEST(CsvTest, FileRoundTrip) {
  CsvDocument doc;
  doc.header = {"a", "b"};
  doc.rows = {{"1", "2"}, {"3", ""}};
  std::string path = TestScratchPath("efes_csv_test") + ".csv";
  ASSERT_TRUE(WriteCsvFile(doc, path).ok());
  auto read = ReadCsvFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->rows, doc.rows);
}

TEST(CsvTest, ReadMissingFileFails) {
  auto result = ReadCsvFile("/nonexistent/path/data.csv");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

CsvReadOptions RecoverOptions() {
  CsvReadOptions options;
  options.mode = CsvReadOptions::Mode::kRecover;
  return options;
}

TEST(CsvRecoverTest, PadsShortRows) {
  std::vector<DataIssue> issues;
  auto doc = ParseCsv("a,b,c\n1,2\n4,5,6\n", RecoverOptions(), &issues);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  ASSERT_EQ(doc->rows.size(), 2u);
  EXPECT_EQ(doc->rows[0], (std::vector<std::string>{"1", "2", ""}));
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].location, "row 1");
}

TEST(CsvRecoverTest, TruncatesLongRows) {
  std::vector<DataIssue> issues;
  auto doc = ParseCsv("a,b\n1,2,3,4\n", RecoverOptions(), &issues);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->rows[0], (std::vector<std::string>{"1", "2"}));
  ASSERT_EQ(issues.size(), 1u);
}

TEST(CsvRecoverTest, ClosesUnterminatedQuoteAtEof) {
  std::vector<DataIssue> issues;
  auto doc = ParseCsv("a\n\"oops", RecoverOptions(), &issues);
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->rows.size(), 1u);
  EXPECT_EQ(doc->rows[0][0], "oops");
  EXPECT_FALSE(issues.empty());
}

TEST(CsvRecoverTest, NullIssueListIsAccepted) {
  auto doc = ParseCsv("a,b\n1\n", RecoverOptions(), nullptr);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->rows[0], (std::vector<std::string>{"1", ""}));
}

TEST(CsvRecoverTest, CleanInputYieldsNoIssues) {
  std::vector<DataIssue> issues;
  auto doc = ParseCsv("a,b\n1,2\n", RecoverOptions(), &issues);
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(issues.empty());
}

TEST(CsvGuardTest, OversizedFieldIsResourceExhausted) {
  CsvReadOptions options;
  options.max_field_bytes = 8;
  std::string text = "a\nthis-cell-is-longer-than-eight-bytes\n";
  auto strict = ParseCsv(text, options);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kResourceExhausted);
  // The guard is not repairable: recover mode fails identically.
  options.mode = CsvReadOptions::Mode::kRecover;
  auto recover = ParseCsv(text, options);
  ASSERT_FALSE(recover.ok());
  EXPECT_EQ(recover.status().code(), StatusCode::kResourceExhausted);
}

TEST(CsvGuardTest, TooManyRowsIsResourceExhausted) {
  CsvReadOptions options;
  options.max_rows = 3;  // header + two data rows
  EXPECT_TRUE(ParseCsv("a\n1\n2\n", options).ok());
  auto over = ParseCsv("a\n1\n2\n3\n", options);
  ASSERT_FALSE(over.ok());
  EXPECT_EQ(over.status().code(), StatusCode::kResourceExhausted);
}

TEST(CsvGuardTest, DefaultLimitsAcceptNormalDocuments) {
  auto doc = ParseCsv("a,b\n1,2\n", CsvReadOptions{});
  EXPECT_TRUE(doc.ok());
}

// --- Chunked streaming reader ---------------------------------------------

std::string ChunkedScratchFile(const std::string& tag, std::string_view text) {
  std::string path = TestScratchPath("efes_csv_chunked_" + tag) + ".csv";
  EXPECT_TRUE(WriteFileAtomic(path, text).ok());
  return path;
}

/// Drains the reader and returns every delivered row, in order.
Result<std::vector<std::vector<std::string>>> DrainChunks(
    ChunkedCsvReader& reader, std::vector<DataIssue>* issues = nullptr) {
  std::vector<std::vector<std::string>> rows;
  while (!reader.done()) {
    EFES_ASSIGN_OR_RETURN(std::vector<std::vector<std::string>> chunk,
                          reader.NextChunk(issues));
    rows.insert(rows.end(), chunk.begin(), chunk.end());
  }
  return rows;
}

TEST(ChunkedCsvTest, DeliversAllRowsInOrderForAnyChunkSize) {
  std::string text = "id,name\n";
  for (int i = 0; i < 100; ++i) {
    text += std::to_string(i) + ",row-" + std::to_string(i) + "\n";
  }
  const std::string path = ChunkedScratchFile("sizes", text);
  auto whole = ParseCsv(text);
  ASSERT_TRUE(whole.ok());
  for (size_t chunk_rows : {size_t{1}, size_t{3}, size_t{7}, size_t{100},
                            size_t{1000}, size_t{0}}) {
    SCOPED_TRACE("chunk_rows=" + std::to_string(chunk_rows));
    auto reader = ChunkedCsvReader::Open(path, CsvReadOptions{}, chunk_rows);
    ASSERT_TRUE(reader.ok()) << reader.status().ToString();
    EXPECT_EQ(reader->header(), whole->header);
    auto rows = DrainChunks(*reader);
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    EXPECT_EQ(*rows, whole->rows);
    EXPECT_TRUE(reader->done());
    EXPECT_EQ(reader->rows_delivered(), whole->rows.size());
  }
}

TEST(ChunkedCsvTest, QuotedNewlinesAndCrLfStraddleChunkBoundaries) {
  // Embedded newlines, CRLF terminators, doubled quotes, and embedded
  // delimiters — every feature that makes "one row" span raw-byte
  // boundaries the block reader cannot see.
  const std::string text =
      "title,notes\r\n"
      "\"multi\nline\",\"a,b\"\r\n"
      "\"he said \"\"hi\"\"\",plain\r\n"
      "last,\"trailing\r\nbreak\"\r\n";
  const std::string path = ChunkedScratchFile("straddle", text);
  auto whole = ParseCsv(text);
  ASSERT_TRUE(whole.ok());
  for (size_t chunk_rows : {size_t{1}, size_t{2}}) {
    SCOPED_TRACE("chunk_rows=" + std::to_string(chunk_rows));
    auto reader = ChunkedCsvReader::Open(path, CsvReadOptions{}, chunk_rows);
    ASSERT_TRUE(reader.ok());
    auto rows = DrainChunks(*reader);
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    EXPECT_EQ(*rows, whole->rows);
  }
}

TEST(ChunkedCsvTest, StrictShapeErrorIsSticky) {
  const std::string path =
      ChunkedScratchFile("sticky", "a,b\n1,2\n3,4\nonly-one-cell\n5,6\n");
  auto reader = ChunkedCsvReader::Open(path, CsvReadOptions{}, 1);
  ASSERT_TRUE(reader.ok());
  auto first = reader->NextChunk();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, (std::vector<std::vector<std::string>>{{"1", "2"}}));
  (void)reader->NextChunk();  // {"3", "4"}
  auto bad = reader->NextChunk();
  ASSERT_FALSE(bad.ok());
  // Sticky: the reader never recovers past a strict-mode failure.
  auto again = reader->NextChunk();
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(bad.status().code(), again.status().code());
}

TEST(ChunkedCsvTest, RecoverModeRepairsAcrossChunks) {
  const std::string path =
      ChunkedScratchFile("recover", "a,b\n1\n2,3,4\n5,6\n");
  auto reader = ChunkedCsvReader::Open(path, RecoverOptions(), 2);
  ASSERT_TRUE(reader.ok());
  std::vector<DataIssue> issues;
  auto rows = DrainChunks(*reader, &issues);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(*rows, (std::vector<std::vector<std::string>>{
                       {"1", ""}, {"2", "3"}, {"5", "6"}}));
  EXPECT_EQ(issues.size(), 2u);
}

TEST(ChunkedCsvTest, MissingFileFailsAtOpen) {
  auto reader = ChunkedCsvReader::Open("/nonexistent/stream.csv",
                                       CsvReadOptions{}, 8);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kNotFound);
}

TEST(ChunkedCsvTest, RowLimitIsEnforced) {
  CsvReadOptions options;
  options.max_rows = 3;  // header + two data rows
  const std::string path =
      ChunkedScratchFile("limit", "a\n1\n2\n3\n4\n");
  // The guard trips wherever the scanner first sees the excess row —
  // here inside Open, since the whole file fits the first block.
  auto reader = ChunkedCsvReader::Open(path, options, 1);
  if (reader.ok()) {
    auto rows = DrainChunks(*reader);
    ASSERT_FALSE(rows.ok());
    EXPECT_EQ(rows.status().code(), StatusCode::kResourceExhausted);
  } else {
    EXPECT_EQ(reader.status().code(), StatusCode::kResourceExhausted);
  }
}

}  // namespace
}  // namespace efes
