// Tests for the CSV reader/writer.

#include "efes/common/csv.h"

#include <gtest/gtest.h>

#include "test_paths.h"

namespace efes {
namespace {

TEST(CsvTest, ParsesSimpleDocument) {
  auto doc = ParseCsv("a,b,c\n1,2,3\n4,5,6\n");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->header, (std::vector<std::string>{"a", "b", "c"}));
  ASSERT_EQ(doc->rows.size(), 2u);
  EXPECT_EQ(doc->rows[0], (std::vector<std::string>{"1", "2", "3"}));
  EXPECT_EQ(doc->rows[1], (std::vector<std::string>{"4", "5", "6"}));
}

TEST(CsvTest, HandlesMissingTrailingNewline) {
  auto doc = ParseCsv("a,b\n1,2");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->rows.size(), 1u);
  EXPECT_EQ(doc->rows[0][1], "2");
}

TEST(CsvTest, HandlesCrLf) {
  auto doc = ParseCsv("a,b\r\n1,2\r\n");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->rows.size(), 1u);
  EXPECT_EQ(doc->rows[0][0], "1");
}

TEST(CsvTest, ParsesQuotedFields) {
  auto doc = ParseCsv("a,b\n\"hello, world\",\"say \"\"hi\"\"\"\n");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->rows[0][0], "hello, world");
  EXPECT_EQ(doc->rows[0][1], "say \"hi\"");
}

TEST(CsvTest, ParsesEmbeddedNewlineInQuotes) {
  auto doc = ParseCsv("a\n\"line1\nline2\"\n");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->rows[0][0], "line1\nline2");
}

TEST(CsvTest, EmptyCellsPreserved) {
  auto doc = ParseCsv("a,b,c\n,,\n");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->rows[0], (std::vector<std::string>{"", "", ""}));
}

TEST(CsvTest, RejectsArityMismatch) {
  auto doc = ParseCsv("a,b\n1,2,3\n");
  EXPECT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kParseError);
}

TEST(CsvTest, RejectsUnterminatedQuote) {
  auto doc = ParseCsv("a\n\"oops\n");
  EXPECT_FALSE(doc.ok());
}

TEST(CsvTest, MixedCrLfAndLfLineEndings) {
  auto doc = ParseCsv("a,b\r\n1,2\n3,4\r\n5,6");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->rows.size(), 3u);
  EXPECT_EQ(doc->rows[0], (std::vector<std::string>{"1", "2"}));
  EXPECT_EQ(doc->rows[1], (std::vector<std::string>{"3", "4"}));
  EXPECT_EQ(doc->rows[2], (std::vector<std::string>{"5", "6"}));
}

TEST(CsvTest, LoneCrEndsRecord) {
  auto doc = ParseCsv("a,b\r1,2\r");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->rows.size(), 1u);
  EXPECT_EQ(doc->rows[0], (std::vector<std::string>{"1", "2"}));
}

TEST(CsvTest, CrLfInsideQuotesIsPreserved) {
  auto doc = ParseCsv("a\n\"x\r\ny\"\n");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->rows.size(), 1u);
  EXPECT_EQ(doc->rows[0][0], "x\r\ny");
}

TEST(CsvTest, RejectsUnterminatedQuoteAtEof) {
  EXPECT_FALSE(ParseCsv("a\n\"oops").ok());
  EXPECT_FALSE(ParseCsv("a\n\"").ok());
  auto doc = ParseCsv("a\n\"trailing quote");
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kParseError);
}

TEST(CsvTest, EmptyTrailingFieldBeforeNewline) {
  auto doc = ParseCsv("a,b\n1,\n");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->rows.size(), 1u);
  EXPECT_EQ(doc->rows[0], (std::vector<std::string>{"1", ""}));
}

TEST(CsvTest, EmptyTrailingFieldAtEof) {
  auto doc = ParseCsv("a,b\n1,");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->rows.size(), 1u);
  EXPECT_EQ(doc->rows[0], (std::vector<std::string>{"1", ""}));
}

TEST(CsvTest, EmptyTrailingFieldWithCrLf) {
  auto doc = ParseCsv("a,b\r\n1,\r\n");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->rows.size(), 1u);
  EXPECT_EQ(doc->rows[0], (std::vector<std::string>{"1", ""}));
}

TEST(CsvTest, QuotedEmptyTrailingField) {
  auto doc = ParseCsv("a,b\n1,\"\"\n");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->rows.size(), 1u);
  EXPECT_EQ(doc->rows[0], (std::vector<std::string>{"1", ""}));
}

TEST(CsvTest, RejectsEmptyInput) {
  EXPECT_FALSE(ParseCsv("").ok());
}

TEST(CsvTest, CustomDelimiter) {
  auto doc = ParseCsv("a;b\n1;2\n", ';');
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->rows[0][1], "2");
}

TEST(CsvTest, WriteQuotesOnlyWhenNeeded) {
  CsvDocument doc;
  doc.header = {"plain", "with,comma", "with\"quote"};
  doc.rows = {{"v", "a,b", "x\"y"}};
  std::string text = WriteCsv(doc);
  EXPECT_EQ(text,
            "plain,\"with,comma\",\"with\"\"quote\"\n"
            "v,\"a,b\",\"x\"\"y\"\n");
}

TEST(CsvTest, RoundTripPreservesContent) {
  CsvDocument doc;
  doc.header = {"title", "notes"};
  doc.rows = {{"Sweet Home Alabama", "4:43"},
              {"contains, comma", "multi\nline"},
              {"", "\"quoted\""}};
  auto parsed = ParseCsv(WriteCsv(doc));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->header, doc.header);
  EXPECT_EQ(parsed->rows, doc.rows);
}

TEST(CsvTest, FileRoundTrip) {
  CsvDocument doc;
  doc.header = {"a", "b"};
  doc.rows = {{"1", "2"}, {"3", ""}};
  std::string path = TestScratchPath("efes_csv_test") + ".csv";
  ASSERT_TRUE(WriteCsvFile(doc, path).ok());
  auto read = ReadCsvFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->rows, doc.rows);
}

TEST(CsvTest, ReadMissingFileFails) {
  auto result = ReadCsvFile("/nonexistent/path/data.csv");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

CsvReadOptions RecoverOptions() {
  CsvReadOptions options;
  options.mode = CsvReadOptions::Mode::kRecover;
  return options;
}

TEST(CsvRecoverTest, PadsShortRows) {
  std::vector<DataIssue> issues;
  auto doc = ParseCsv("a,b,c\n1,2\n4,5,6\n", RecoverOptions(), &issues);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  ASSERT_EQ(doc->rows.size(), 2u);
  EXPECT_EQ(doc->rows[0], (std::vector<std::string>{"1", "2", ""}));
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].location, "row 1");
}

TEST(CsvRecoverTest, TruncatesLongRows) {
  std::vector<DataIssue> issues;
  auto doc = ParseCsv("a,b\n1,2,3,4\n", RecoverOptions(), &issues);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->rows[0], (std::vector<std::string>{"1", "2"}));
  ASSERT_EQ(issues.size(), 1u);
}

TEST(CsvRecoverTest, ClosesUnterminatedQuoteAtEof) {
  std::vector<DataIssue> issues;
  auto doc = ParseCsv("a\n\"oops", RecoverOptions(), &issues);
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->rows.size(), 1u);
  EXPECT_EQ(doc->rows[0][0], "oops");
  EXPECT_FALSE(issues.empty());
}

TEST(CsvRecoverTest, NullIssueListIsAccepted) {
  auto doc = ParseCsv("a,b\n1\n", RecoverOptions(), nullptr);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->rows[0], (std::vector<std::string>{"1", ""}));
}

TEST(CsvRecoverTest, CleanInputYieldsNoIssues) {
  std::vector<DataIssue> issues;
  auto doc = ParseCsv("a,b\n1,2\n", RecoverOptions(), &issues);
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(issues.empty());
}

TEST(CsvGuardTest, OversizedFieldIsResourceExhausted) {
  CsvReadOptions options;
  options.max_field_bytes = 8;
  std::string text = "a\nthis-cell-is-longer-than-eight-bytes\n";
  auto strict = ParseCsv(text, options);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kResourceExhausted);
  // The guard is not repairable: recover mode fails identically.
  options.mode = CsvReadOptions::Mode::kRecover;
  auto recover = ParseCsv(text, options);
  ASSERT_FALSE(recover.ok());
  EXPECT_EQ(recover.status().code(), StatusCode::kResourceExhausted);
}

TEST(CsvGuardTest, TooManyRowsIsResourceExhausted) {
  CsvReadOptions options;
  options.max_rows = 3;  // header + two data rows
  EXPECT_TRUE(ParseCsv("a\n1\n2\n", options).ok());
  auto over = ParseCsv("a\n1\n2\n3\n", options);
  ASSERT_FALSE(over.ok());
  EXPECT_EQ(over.status().code(), StatusCode::kResourceExhausted);
}

TEST(CsvGuardTest, DefaultLimitsAcceptNormalDocuments) {
  auto doc = ParseCsv("a,b\n1,2\n", CsvReadOptions{});
  EXPECT_TRUE(doc.ok());
}

}  // namespace
}  // namespace efes
