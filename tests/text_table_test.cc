// Tests for the plain-text table renderer.

#include "efes/common/text_table.h"

#include <gtest/gtest.h>

namespace efes {
namespace {

TEST(TextTableTest, EmptyTableRendersEmpty) {
  TextTable table;
  EXPECT_EQ(table.ToString(), "");
}

TEST(TextTableTest, AlignsColumns) {
  TextTable table;
  table.SetHeader({"Target table", "Attrs"});
  table.AddRow({"records", "2"});
  table.AddRow({"tracks", "2"});
  EXPECT_EQ(table.ToString(),
            "Target table | Attrs\n"
            "-------------+------\n"
            "records      | 2\n"
            "tracks       | 2\n");
}

TEST(TextTableTest, WideCellGrowsColumn) {
  TextTable table;
  table.SetHeader({"a", "b"});
  table.AddRow({"very wide cell", "x"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("very wide cell | x"), std::string::npos);
}

TEST(TextTableTest, SeparatorRows) {
  TextTable table;
  table.SetHeader({"x"});
  table.AddRow({"1"});
  table.AddSeparator();
  table.AddRow({"2"});
  std::string out = table.ToString();
  // Header separator plus explicit one.
  size_t first = out.find("-\n");
  ASSERT_NE(first, std::string::npos);
  EXPECT_NE(out.find("-\n", first + 1), std::string::npos);
}

TEST(TextTableTest, ShortRowsPadWithEmptyCells) {
  TextTable table;
  table.SetHeader({"a", "b", "c"});
  table.AddRow({"only"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("only"), std::string::npos);
}

TEST(TextTableTest, NoHeaderStillRenders) {
  TextTable table;
  table.AddRow({"a", "b"});
  EXPECT_EQ(table.ToString(), "a | b\n");
}

TEST(TextTableTest, RowCount) {
  TextTable table;
  EXPECT_EQ(table.row_count(), 0u);
  table.AddRow({"x"});
  table.AddSeparator();
  EXPECT_EQ(table.row_count(), 2u);
}

}  // namespace
}  // namespace efes
