// Tests for relational schemas and constraints.

#include "efes/relational/schema.h"

#include <gtest/gtest.h>

namespace efes {
namespace {

Schema MakeMusicTarget() {
  Schema schema("target");
  (void)schema.AddRelation(RelationDef(
      "records", {{"id", DataType::kInteger},
                  {"title", DataType::kText},
                  {"artist", DataType::kText}}));
  (void)schema.AddRelation(RelationDef(
      "tracks", {{"record", DataType::kInteger},
                 {"title", DataType::kText}}));
  schema.AddConstraint(Constraint::PrimaryKey("records", {"id"}));
  schema.AddConstraint(Constraint::NotNull("records", "title"));
  schema.AddConstraint(
      Constraint::ForeignKey("tracks", {"record"}, "records", {"id"}));
  return schema;
}

TEST(RelationDefTest, AttributeLookup) {
  RelationDef rel("r", {{"a", DataType::kText}, {"b", DataType::kInteger}});
  EXPECT_EQ(rel.AttributeIndex("a"), 0u);
  EXPECT_EQ(rel.AttributeIndex("b"), 1u);
  EXPECT_FALSE(rel.AttributeIndex("c").has_value());
  auto attr = rel.Attribute("b");
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->type, DataType::kInteger);
  EXPECT_FALSE(rel.Attribute("zzz").ok());
}

TEST(SchemaTest, AddAndFindRelations) {
  Schema schema = MakeMusicTarget();
  EXPECT_TRUE(schema.HasRelation("records"));
  EXPECT_FALSE(schema.HasRelation("albums"));
  auto rel = schema.relation("tracks");
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ((*rel)->attribute_count(), 2u);
  EXPECT_FALSE(schema.relation("nope").ok());
}

TEST(SchemaTest, DuplicateRelationRejected) {
  Schema schema("s");
  ASSERT_TRUE(schema.AddRelation(RelationDef("r", {})).ok());
  Status status = schema.AddRelation(RelationDef("r", {}));
  EXPECT_EQ(status.code(), StatusCode::kAlreadyExists);
}

TEST(SchemaTest, ConstraintToString) {
  EXPECT_EQ(Constraint::PrimaryKey("records", {"id"}).ToString(),
            "PRIMARY KEY records(id)");
  EXPECT_EQ(Constraint::NotNull("records", "title").ToString(),
            "NOT NULL records(title)");
  EXPECT_EQ(Constraint::ForeignKey("tracks", {"record"}, "records", {"id"})
                .ToString(),
            "FOREIGN KEY tracks(record) REFERENCES records(id)");
  EXPECT_EQ(Constraint::Unique("r", {"a", "b"}).ToString(),
            "UNIQUE r(a, b)");
}

TEST(SchemaTest, IsNotNullableFromDeclAndPk) {
  Schema schema = MakeMusicTarget();
  EXPECT_TRUE(schema.IsNotNullable("records", "title"));
  EXPECT_TRUE(schema.IsNotNullable("records", "id"));  // via PK
  EXPECT_FALSE(schema.IsNotNullable("records", "artist"));
  EXPECT_FALSE(schema.IsNotNullable("tracks", "record"));
}

TEST(SchemaTest, IsUniqueAttribute) {
  Schema schema = MakeMusicTarget();
  EXPECT_TRUE(schema.IsUniqueAttribute("records", "id"));
  EXPECT_FALSE(schema.IsUniqueAttribute("records", "title"));

  schema.AddConstraint(Constraint::Unique("records", {"title"}));
  EXPECT_TRUE(schema.IsUniqueAttribute("records", "title"));
}

TEST(SchemaTest, CompositeKeyIsNotSingleAttributeUnique) {
  Schema schema("s");
  (void)schema.AddRelation(RelationDef(
      "r", {{"a", DataType::kInteger}, {"b", DataType::kInteger}}));
  schema.AddConstraint(Constraint::PrimaryKey("r", {"a", "b"}));
  EXPECT_FALSE(schema.IsUniqueAttribute("r", "a"));
  EXPECT_TRUE(schema.IsNotNullable("r", "a"));
}

TEST(SchemaTest, PrimaryKeyOf) {
  Schema schema = MakeMusicTarget();
  EXPECT_EQ(schema.PrimaryKeyOf("records"),
            (std::vector<std::string>{"id"}));
  EXPECT_TRUE(schema.PrimaryKeyOf("tracks").empty());
}

TEST(SchemaTest, TotalAttributeCount) {
  EXPECT_EQ(MakeMusicTarget().TotalAttributeCount(), 5u);
}

TEST(SchemaTest, ValidateAcceptsWellFormed) {
  EXPECT_TRUE(MakeMusicTarget().Validate().ok());
}

TEST(SchemaTest, ValidateRejectsUnknownRelation) {
  Schema schema("s");
  schema.AddConstraint(Constraint::NotNull("ghost", "x"));
  EXPECT_FALSE(schema.Validate().ok());
}

TEST(SchemaTest, ValidateRejectsUnknownAttribute) {
  Schema schema("s");
  (void)schema.AddRelation(RelationDef("r", {{"a", DataType::kText}}));
  schema.AddConstraint(Constraint::NotNull("r", "ghost"));
  EXPECT_FALSE(schema.Validate().ok());
}

TEST(SchemaTest, ValidateRejectsFkArityMismatch) {
  Schema schema("s");
  (void)schema.AddRelation(RelationDef(
      "child", {{"x", DataType::kInteger}, {"y", DataType::kInteger}}));
  (void)schema.AddRelation(
      RelationDef("parent", {{"p", DataType::kInteger}}));
  schema.AddConstraint(
      Constraint::ForeignKey("child", {"x", "y"}, "parent", {"p"}));
  EXPECT_FALSE(schema.Validate().ok());
}

TEST(SchemaTest, ValidateRejectsTwoPrimaryKeys) {
  Schema schema("s");
  (void)schema.AddRelation(RelationDef(
      "r", {{"a", DataType::kInteger}, {"b", DataType::kInteger}}));
  schema.AddConstraint(Constraint::PrimaryKey("r", {"a"}));
  schema.AddConstraint(Constraint::PrimaryKey("r", {"b"}));
  EXPECT_FALSE(schema.Validate().ok());
}

TEST(SchemaTest, ValidateRejectsFkToMissingParentAttribute) {
  Schema schema("s");
  (void)schema.AddRelation(
      RelationDef("child", {{"x", DataType::kInteger}}));
  (void)schema.AddRelation(
      RelationDef("parent", {{"p", DataType::kInteger}}));
  schema.AddConstraint(
      Constraint::ForeignKey("child", {"x"}, "parent", {"ghost"}));
  EXPECT_FALSE(schema.Validate().ok());
}

TEST(SchemaTest, ConstraintsFor) {
  Schema schema = MakeMusicTarget();
  EXPECT_EQ(schema.ConstraintsFor("records").size(), 2u);
  EXPECT_EQ(schema.ConstraintsFor("tracks").size(), 1u);
  EXPECT_TRUE(schema.ConstraintsFor("ghost").empty());
}

}  // namespace
}  // namespace efes
