// Corruption property test: every text parser in the ingestion path must
// survive arbitrarily mangled input — truncated mid-token, bytes flipped,
// garbage spliced in — by returning a clean non-OK Status. No parser may
// crash, throw, or hang, whatever the bytes. The mutations are drawn from
// the repo's seeded PRNG, so a failure reproduces exactly from the seed
// logged by SCOPED_TRACE.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "efes/common/csv.h"
#include "efes/common/random.h"
#include "efes/relational/schema_text.h"
#include "efes/scenario/scenario_io.h"

namespace efes {
namespace {

constexpr char kValidCsv[] =
    "id,title,artist,notes\n"
    "1,\"Abbey Road\",\"The Beatles\",\"quoted, with comma\"\n"
    "2,Kind of Blue,Miles Davis,\n"
    "3,\"multi\nline\",\"doubled \"\"quotes\"\"\",plain\n";

constexpr char kValidCorrespondences[] =
    "# curated\n"
    "albums -> records\n"
    "albums.name -> records.title\n"
    "songs.length -> tracks.duration\n";

constexpr char kValidDdl[] =
    "CREATE TABLE records (\n"
    "  id INTEGER PRIMARY KEY,\n"
    "  title TEXT NOT NULL,\n"
    "  genre TEXT\n"
    ");\n"
    "CREATE TABLE tracks (\n"
    "  record INTEGER NOT NULL REFERENCES records(id),\n"
    "  title TEXT NOT NULL\n"
    ");\n";

/// Applies one seeded corruption to `text`: a truncation, a byte
/// mutation, an insertion of hostile bytes, or a combination. The result
/// intentionally includes NUL bytes, stray quotes, lone separators, and
/// cut-off tokens.
std::string Corrupt(std::string text, Random& rng) {
  const size_t edits = 1 + rng.UniformUint64(4);
  for (size_t e = 0; e < edits; ++e) {
    if (text.empty()) break;
    switch (rng.UniformUint64(4)) {
      case 0:  // truncate at an arbitrary byte
        text.resize(rng.UniformUint64(text.size() + 1));
        break;
      case 1: {  // flip one byte to an arbitrary value
        size_t at = rng.UniformUint64(text.size());
        text[at] = static_cast<char>(rng.UniformUint64(256));
        break;
      }
      case 2: {  // splice in a hostile fragment
        static const char* kFragments[] = {
            "\"",   ",,,,",      "\r",          "\n\"unterminated",
            "\t",   "->",        ".",           "CREATE TABLE",
            "(",    "REFERENCES", "\xff\xfe",   "--",
        };
        size_t at = rng.UniformUint64(text.size() + 1);
        text.insert(at, kFragments[rng.UniformUint64(
                            sizeof(kFragments) / sizeof(kFragments[0]))]);
        break;
      }
      default: {  // duplicate a random slice (repeated headers/rows)
        size_t from = rng.UniformUint64(text.size());
        size_t len = rng.UniformUint64(text.size() - from + 1);
        text.insert(rng.UniformUint64(text.size() + 1),
                    text.substr(from, len));
        break;
      }
    }
  }
  return text;
}

/// A parse outcome is acceptable when it is OK or a non-OK status with a
/// message — anything else (a throw reaching here fails the test via
/// gtest's unhandled-exception handling).
template <typename ResultType>
void ExpectCleanOutcome(const ResultType& result) {
  if (!result.ok()) {
    EXPECT_FALSE(result.status().message().empty());
  }
}

TEST(CorruptionPropertyTest, ParseCsvSurvivesMangledBytes) {
  Random rng(20260805);
  for (int iteration = 0; iteration < 400; ++iteration) {
    SCOPED_TRACE("iteration " + std::to_string(iteration));
    std::string corrupted = Corrupt(kValidCsv, rng);
    ExpectCleanOutcome(ParseCsv(corrupted));

    // Recover mode must also never throw, and any repairs it makes are
    // described as issues.
    CsvReadOptions options;
    options.mode = CsvReadOptions::Mode::kRecover;
    std::vector<DataIssue> issues;
    auto recovered = ParseCsv(corrupted, options, &issues);
    ExpectCleanOutcome(recovered);
    for (const DataIssue& issue : issues) {
      EXPECT_FALSE(issue.message.empty());
    }
  }
}

TEST(CorruptionPropertyTest, ParseCorrespondencesSurvivesMangledBytes) {
  Random rng(7041776);
  for (int iteration = 0; iteration < 400; ++iteration) {
    SCOPED_TRACE("iteration " + std::to_string(iteration));
    std::string corrupted = Corrupt(kValidCorrespondences, rng);
    ExpectCleanOutcome(ParseCorrespondences(corrupted));

    LoadOptions lenient;
    lenient.mode = LoadOptions::Mode::kRecover;
    std::vector<DataIssue> issues;
    ExpectCleanOutcome(ParseCorrespondences(corrupted, lenient, &issues));
  }
}

TEST(CorruptionPropertyTest, ParseSchemaTextSurvivesMangledBytes) {
  Random rng(1812);
  for (int iteration = 0; iteration < 400; ++iteration) {
    SCOPED_TRACE("iteration " + std::to_string(iteration));
    ExpectCleanOutcome(ParseSchemaText(Corrupt(kValidDdl, rng), "target"));
  }
}

TEST(CorruptionPropertyTest, PureGarbageNeverCrashesAnyParser) {
  Random rng(424242);
  for (int iteration = 0; iteration < 200; ++iteration) {
    SCOPED_TRACE("iteration " + std::to_string(iteration));
    std::string garbage(rng.UniformUint64(512), '\0');
    for (char& byte : garbage) {
      byte = static_cast<char>(rng.UniformUint64(256));
    }
    ExpectCleanOutcome(ParseCsv(garbage));
    ExpectCleanOutcome(ParseCorrespondences(garbage));
    ExpectCleanOutcome(ParseSchemaText(garbage, "garbage"));
  }
}

}  // namespace
}  // namespace efes
