// Tests for the column-oriented table and its analytics.

#include "efes/relational/table.h"

#include <gtest/gtest.h>

namespace efes {
namespace {

Table MakeSongsTable() {
  Table table(RelationDef("songs", {{"album", DataType::kInteger},
                                    {"name", DataType::kText},
                                    {"length", DataType::kInteger}}));
  EXPECT_TRUE(
      table.AppendRow({Value::Integer(1), Value::Text("a"),
                       Value::Integer(100)})
          .ok());
  EXPECT_TRUE(
      table.AppendRow({Value::Integer(1), Value::Text("b"), Value::Null()})
          .ok());
  EXPECT_TRUE(
      table.AppendRow({Value::Integer(2), Value::Text("a"),
                       Value::Integer(100)})
          .ok());
  EXPECT_TRUE(
      table.AppendRow({Value::Null(), Value::Text("c"),
                       Value::Integer(200)})
          .ok());
  return table;
}

TEST(TableTest, AppendAndAccess) {
  Table table = MakeSongsTable();
  EXPECT_EQ(table.row_count(), 4u);
  EXPECT_EQ(table.column_count(), 3u);
  EXPECT_EQ(table.at(0, 1).AsText(), "a");
  EXPECT_TRUE(table.at(3, 0).is_null());
}

TEST(TableTest, RejectsArityMismatch) {
  Table table(RelationDef("r", {{"a", DataType::kText}}));
  Status status = table.AppendRow({Value::Text("x"), Value::Text("y")});
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(table.row_count(), 0u);
}

TEST(TableTest, CanonicalizesOnAppend) {
  Table table(RelationDef("r", {{"n", DataType::kInteger}}));
  ASSERT_TRUE(table.AppendRow({Value::Text("42")}).ok());
  EXPECT_EQ(table.at(0, 0).type(), DataType::kInteger);
  EXPECT_EQ(table.at(0, 0).AsInteger(), 42);
}

TEST(TableTest, RejectsUncastableValue) {
  Table table(RelationDef("r", {{"n", DataType::kInteger}}));
  Status status = table.AppendRow({Value::Text("not a number")});
  EXPECT_EQ(status.code(), StatusCode::kTypeMismatch);
  EXPECT_EQ(table.row_count(), 0u);
}

TEST(TableTest, FailedAppendLeavesTableUnchanged) {
  Table table(RelationDef(
      "r", {{"a", DataType::kText}, {"n", DataType::kInteger}}));
  ASSERT_FALSE(
      table.AppendRow({Value::Text("ok"), Value::Text("bad")}).ok());
  EXPECT_EQ(table.row_count(), 0u);
  EXPECT_TRUE(table.column(0).empty());
  EXPECT_TRUE(table.column(1).empty());
}

TEST(TableTest, ColumnByName) {
  Table table = MakeSongsTable();
  auto column = table.ColumnByName("name");
  ASSERT_TRUE(column.ok());
  EXPECT_EQ((*column)->size(), 4u);
  EXPECT_FALSE(table.ColumnByName("ghost").ok());
}

TEST(TableTest, RowMaterialization) {
  Table table = MakeSongsTable();
  std::vector<Value> row = table.Row(2);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0].AsInteger(), 2);
  EXPECT_EQ(row[1].AsText(), "a");
}

TEST(TableTest, NullCount) {
  Table table = MakeSongsTable();
  EXPECT_EQ(table.NullCount(0), 1u);
  EXPECT_EQ(table.NullCount(1), 0u);
  EXPECT_EQ(table.NullCount(2), 1u);
}

TEST(TableTest, DistinctCountIgnoresNulls) {
  Table table = MakeSongsTable();
  EXPECT_EQ(table.DistinctCount(0), 2u);  // 1, 2
  EXPECT_EQ(table.DistinctCount(1), 3u);  // a, b, c
  EXPECT_EQ(table.DistinctCount(2), 2u);  // 100, 200
}

TEST(TableTest, DistinctValues) {
  Table table = MakeSongsTable();
  std::vector<Value> distinct = table.DistinctValues(1);
  EXPECT_EQ(distinct.size(), 3u);
}

TEST(TableTest, CountCastableTo) {
  Table table(RelationDef("r", {{"t", DataType::kText}}));
  ASSERT_TRUE(table.AppendRow({Value::Text("42")}).ok());
  ASSERT_TRUE(table.AppendRow({Value::Text("4:43")}).ok());
  ASSERT_TRUE(table.AppendRow({Value::Null()}).ok());
  EXPECT_EQ(table.CountCastableTo(0, DataType::kInteger), 1u);
  EXPECT_EQ(table.CountCastableTo(0, DataType::kText), 2u);
}

TEST(TableTest, ValueFrequencies) {
  Table table = MakeSongsTable();
  auto frequencies = table.ValueFrequencies(1);
  EXPECT_EQ(frequencies[Value::Text("a")], 2u);
  EXPECT_EQ(frequencies[Value::Text("b")], 1u);
}

TEST(TableTest, DuplicateProjectionsSingleColumn) {
  Table table = MakeSongsTable();
  // Column 1 ("name"): "a" appears twice -> both rows count as violating.
  EXPECT_EQ(table.CountDuplicateProjections({1}), 2u);
  EXPECT_FALSE(table.IsUnique({1}));
}

TEST(TableTest, DuplicateProjectionsMultiColumnNullExempt) {
  Table table = MakeSongsTable();
  // (album, length): (1,100), (1,NULL exempt), (2,100), (NULL exempt).
  EXPECT_EQ(table.CountDuplicateProjections({0, 2}), 0u);
  EXPECT_TRUE(table.IsUnique({0, 2}));
}

TEST(TableTest, DuplicateProjectionsDetectsComposites) {
  Table table(RelationDef(
      "r", {{"a", DataType::kInteger}, {"b", DataType::kInteger}}));
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(
        table.AppendRow({Value::Integer(1), Value::Integer(2)}).ok());
  }
  ASSERT_TRUE(
      table.AppendRow({Value::Integer(1), Value::Integer(3)}).ok());
  EXPECT_EQ(table.CountDuplicateProjections({0, 1}), 2u);
}

}  // namespace
}  // namespace efes
