// Property tests for the mergeable statistic sketches (DESIGN.md §16):
// the canonical-merge contract (any chunking, any merge order, any
// thread count — one Finalize() output), accuracy bounds of the
// budget-degraded sketches against exact answers, the --max-memory
// semantics per approximation mode, bloom-pruning soundness, and the
// cache-persistence state roundtrip.

#include "efes/profiling/sketch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include "efes/common/parallel.h"
#include "efes/common/random.h"
#include "efes/profiling/profiler.h"
#include "efes/profiling/statistics.h"
#include "efes/relational/value.h"

namespace efes {
namespace {

/// A text column drawing from `domain` distinct values, ~5% null.
std::vector<Value> TextColumn(Random& rng, size_t n, size_t domain) {
  std::vector<Value> column;
  column.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.05)) {
      column.push_back(Value::Null());
    } else {
      column.push_back(
          Value::Text("v" + std::to_string(rng.UniformUint64(domain))));
    }
  }
  return column;
}

/// Random chunk boundaries over [0, n): between 1 and ~12 chunks.
std::vector<std::pair<size_t, size_t>> RandomChunking(Random& rng, size_t n) {
  std::set<size_t> cuts = {0, n};
  const size_t extra = rng.UniformUint64(12);
  for (size_t i = 0; i < extra; ++i) cuts.insert(rng.UniformUint64(n));
  std::vector<std::pair<size_t, size_t>> chunks;
  for (auto it = cuts.begin(); std::next(it) != cuts.end(); ++it) {
    chunks.emplace_back(*it, *std::next(it));
  }
  return chunks;
}

ProfileOptions SketchOptions(size_t budget) {
  ProfileOptions options;
  options.mode = ApproximationMode::kSketch;
  options.max_memory_bytes = budget;
  return options;
}

TEST(SketchMergeProperty, AnyChunkingAndMergeOrderFinalizesIdentically) {
  // The canonical-merge contract, stated adversarially: split the column
  // anywhere, build per-chunk partials, fold them in a *random* order —
  // Finalize() must still equal the single-pass absorb, exact mode and
  // budget-degraded sketch mode alike.
  const ProfileOptions kModes[] = {ProfileOptions{}, SketchOptions(16384)};
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Random data_rng(seed);
    const std::vector<Value> column = TextColumn(data_rng, 5000, 1500);
    for (const ProfileOptions& options : kModes) {
      SCOPED_TRACE(std::string("mode ") +
                   std::string(ApproximationModeToString(options.mode)));
      StatisticsSketch reference(DataType::kText, options);
      ASSERT_TRUE(reference.AbsorbRange(column, 0, column.size()).ok());
      const std::string expected = reference.Finalize().ToString();

      Random shape_rng(seed * 1000 + 7);
      for (int round = 0; round < 8; ++round) {
        SCOPED_TRACE("round " + std::to_string(round));
        auto chunks = RandomChunking(shape_rng, column.size());
        std::vector<StatisticsSketch> partials;
        for (const auto& [lo, hi] : chunks) {
          StatisticsSketch partial(DataType::kText, options);
          ASSERT_TRUE(partial.AbsorbRange(column, lo, hi).ok());
          partials.push_back(std::move(partial));
        }
        std::vector<size_t> order(partials.size());
        std::iota(order.begin(), order.end(), size_t{0});
        shape_rng.Shuffle(order);
        StatisticsSketch merged(DataType::kText, options);
        for (size_t index : order) {
          ASSERT_TRUE(merged.Merge(partials[index]).ok());
        }
        EXPECT_EQ(merged.Finalize().ToString(), expected);
      }
    }
  }
}

TEST(SketchMergeProperty, ProfileColumnIsChunkAndThreadInvariant) {
  Random rng(42);
  const std::vector<Value> column = TextColumn(rng, 20000, 6000);
  for (const ProfileOptions& base :
       {ProfileOptions{}, SketchOptions(16384)}) {
    SCOPED_TRACE(std::string("mode ") +
                 std::string(ApproximationModeToString(base.mode)));
    std::string expected;
    for (size_t chunk_rows : {size_t{0}, size_t{37}, size_t{512},
                              size_t{4096}}) {
      for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
        SCOPED_TRACE("chunk_rows=" + std::to_string(chunk_rows) +
                     " threads=" + std::to_string(threads));
        SetThreadCountOverride(threads);
        ProfileOptions options = base;
        options.chunk_rows = chunk_rows;
        auto profiled = ProfileColumn(column, DataType::kText, options);
        SetThreadCountOverride(0);
        ASSERT_TRUE(profiled.ok()) << profiled.status().ToString();
        const std::string rendered = profiled->ToString();
        if (expected.empty()) {
          expected = rendered;
        } else {
          EXPECT_EQ(rendered, expected);
        }
      }
    }
  }
}

TEST(SketchAccuracy, DistinctEstimateIsWithinRelativeBound) {
  // KMV-style hash-threshold sampling: with a 16 KiB budget on a
  // 15000-distinct column the sketch must coarsen, and the scaled
  // distinct estimate stays within 30% of the truth on every seed.
  for (uint64_t seed = 10; seed < 15; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Random rng(seed);
    const std::vector<Value> column = TextColumn(rng, 40000, 15000);
    std::set<std::string> distinct;
    for (const Value& value : column) {
      if (!value.is_null()) distinct.insert(value.AsText());
    }

    StatisticsSketch sketch(DataType::kText, SketchOptions(16384));
    ASSERT_TRUE(sketch.AbsorbRange(column, 0, column.size()).ok());
    ASSERT_EQ(sketch.effective_mode(), ApproximationMode::kSketch)
        << "budget did not force coarsening; the bound below is vacuous";
    EXPECT_LE(sketch.MemoryBytes(), 16384u);

    const AttributeStatistics stats = sketch.Finalize();
    const double exact = static_cast<double>(distinct.size());
    const double estimate =
        static_cast<double>(stats.constancy.distinct_count);
    EXPECT_LE(std::abs(estimate - exact) / exact, 0.30)
        << "estimate " << estimate << " vs exact " << exact;
  }
}

TEST(SketchAccuracy, SurvivingTopKFrequenciesAreExact) {
  // Coarsening drops values, never miscounts them: any value the sketch
  // still reports in its top-k carries its true relative frequency.
  Random rng(77);
  std::vector<Value> column;
  for (int hot = 0; hot < 5; ++hot) {
    for (int i = 0; i < 2000; ++i) {
      column.push_back(Value::Text("hot" + std::to_string(hot)));
    }
  }
  for (int i = 0; i < 20000; ++i) {
    column.push_back(
        Value::Text("rare" + std::to_string(rng.UniformUint64(1u << 30))));
  }
  rng.Shuffle(column);

  std::map<std::string, uint64_t> exact_counts;
  for (const Value& value : column) ++exact_counts[value.AsText()];

  StatisticsSketch sketch(DataType::kText, SketchOptions(16384));
  ASSERT_TRUE(sketch.AbsorbRange(column, 0, column.size()).ok());
  ASSERT_EQ(sketch.effective_mode(), ApproximationMode::kSketch);
  const AttributeStatistics stats = sketch.Finalize();
  ASSERT_FALSE(stats.top_k.top_values.empty());
  for (const auto& [value, freq] : stats.top_k.top_values) {
    const auto it = exact_counts.find(value.AsText());
    ASSERT_NE(it, exact_counts.end());
    const double exact_freq =
        static_cast<double>(it->second) / static_cast<double>(column.size());
    EXPECT_NEAR(freq, exact_freq, 1e-9) << value.AsText();
  }
}

TEST(SketchBudget, ExactModeFailsWhereSketchAndAutoDegrade) {
  Random rng(5);
  const std::vector<Value> column = TextColumn(rng, 30000, 20000);

  ProfileOptions exact;
  exact.mode = ApproximationMode::kExact;
  exact.max_memory_bytes = 16384;
  auto failed = ProfileColumn(column, DataType::kText, exact);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kResourceExhausted);

  ProfileOptions sketch = exact;
  sketch.mode = ApproximationMode::kSketch;
  auto degraded = ProfileColumn(column, DataType::kText, sketch);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();

  // kAuto is "exact until the budget bites": under the same pressure it
  // must degrade to byte-identical sketch output, not fail.
  ProfileOptions fallback = exact;
  fallback.mode = ApproximationMode::kAuto;
  auto automatic = ProfileColumn(column, DataType::kText, fallback);
  ASSERT_TRUE(automatic.ok()) << automatic.status().ToString();
  EXPECT_EQ(automatic->ToString(), degraded->ToString());

  // An unlimited exact profile of the same column still succeeds and
  // reports the true distinct count.
  std::set<std::string> distinct;
  for (const Value& value : column) {
    if (!value.is_null()) distinct.insert(value.AsText());
  }
  auto unlimited = ProfileColumn(column, DataType::kText);
  ASSERT_TRUE(unlimited.ok());
  EXPECT_EQ(unlimited->constancy.distinct_count, distinct.size());
}

TEST(ValueBloomTest, SubsetPruningIsSound) {
  // SubsetOf may only prune when the answer is *definitely* no: a true
  // subset must never be pruned, whatever the insertion order.
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Random rng(seed * 31);
    std::vector<Value> small;
    for (int i = 0; i < 300; ++i) {
      small.push_back(Value::Text(rng.Word(4, 10)));
    }
    ValueBloom subset;
    ValueBloom superset;
    for (const Value& value : small) {
      subset.Insert(value);
      superset.Insert(value);
    }
    for (int i = 0; i < 200; ++i) {
      superset.Insert(Value::Text("extra-" + std::to_string(i)));
    }
    EXPECT_TRUE(subset.SubsetOf(superset));
    for (const Value& value : small) {
      EXPECT_TRUE(superset.MightContain(value));
    }

    // A disjoint 500-value set against a 300-value filter: at 4096 bits
    // the all-false-positive event is astronomically unlikely, and with
    // fixed seeds this stays deterministic.
    ValueBloom disjoint;
    for (int i = 0; i < 500; ++i) {
      disjoint.Insert(Value::Text("other-" + std::to_string(i) + "-" +
                                  std::to_string(seed)));
    }
    EXPECT_FALSE(disjoint.SubsetOf(subset));

    // OR-merge equals inserting both value sets into one filter.
    ValueBloom merged = subset;
    merged.MergeFrom(disjoint);
    EXPECT_TRUE(subset.SubsetOf(merged));
    EXPECT_TRUE(disjoint.SubsetOf(merged));
  }
}

TEST(SketchStateTest, ExportImportRoundtripPreservesFinalize) {
  Random rng(99);
  const std::vector<Value> column = TextColumn(rng, 25000, 9000);
  StatisticsSketch sketch(DataType::kText, SketchOptions(16384));
  ASSERT_TRUE(sketch.AbsorbRange(column, 0, column.size()).ok());
  ASSERT_GT(sketch.level(), 0u);

  const SketchState state = sketch.ExportState();
  auto restored = StatisticsSketch::FromState(state);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->Finalize().ToString(), sketch.Finalize().ToString());
  EXPECT_EQ(restored->level(), sketch.level());
  EXPECT_EQ(restored->tracked_count(), sketch.tracked_count());

  // A restored sketch keeps absorbing and merging like the original.
  StatisticsSketch continued = *std::move(restored);
  ASSERT_TRUE(continued.Absorb(Value::Text("v1")).ok());
  StatisticsSketch reference = std::move(sketch);
  ASSERT_TRUE(reference.Absorb(Value::Text("v1")).ok());
  EXPECT_EQ(continued.Finalize().ToString(), reference.Finalize().ToString());
}

TEST(SketchStateTest, MangledStatesDegradeToErrorsNotCorruptSketches) {
  Random rng(123);
  const std::vector<Value> column = TextColumn(rng, 25000, 9000);
  StatisticsSketch sketch(DataType::kText, SketchOptions(16384));
  ASSERT_TRUE(sketch.AbsorbRange(column, 0, column.size()).ok());
  ASSERT_GT(sketch.level(), 0u);
  const SketchState pristine = sketch.ExportState();

  SketchState impossible_level = pristine;
  impossible_level.level = 64;
  EXPECT_FALSE(StatisticsSketch::FromState(impossible_level).ok());

  // Splice in a value whose hash the sketch's level must have dropped:
  // re-validation catches the broken tracking invariant.
  SketchState broken_invariant = pristine;
  const uint32_t level = pristine.level;
  for (int i = 0; i < 100000; ++i) {
    Value candidate = Value::Text("intruder-" + std::to_string(i));
    const uint64_t hash = SketchValueHash(candidate);
    if ((hash >> (64 - level)) != 0) {
      broken_invariant.entries.emplace_back(std::move(candidate), 1);
      break;
    }
  }
  ASSERT_GT(broken_invariant.entries.size(), pristine.entries.size());
  EXPECT_FALSE(StatisticsSketch::FromState(broken_invariant).ok());
}

}  // namespace
}  // namespace efes
