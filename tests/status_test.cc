// Tests for Status and Result<T>.

#include "efes/common/status.h"

#include <gtest/gtest.h>

#include "efes/common/result.h"

namespace efes {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  Status status = Status::NotFound("no such table");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.message(), "no such table");
  EXPECT_EQ(status.ToString(), "not found: no such table");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::TypeMismatch("x").code(), StatusCode::kTypeMismatch);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unsatisfiable("x").code(), StatusCode::kUnsatisfiable);
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
}

TEST(StatusTest, CancellationPredicateCoversBothCodes) {
  EXPECT_TRUE(IsCancellation(StatusCode::kCancelled));
  EXPECT_TRUE(IsCancellation(StatusCode::kDeadlineExceeded));
  EXPECT_FALSE(IsCancellation(StatusCode::kOk));
  EXPECT_FALSE(IsCancellation(StatusCode::kUnavailable));
  EXPECT_FALSE(IsCancellation(StatusCode::kResourceExhausted));
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "ok");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnsatisfiable),
            "unsatisfiable");
  EXPECT_EQ(StatusCodeToString(StatusCode::kCancelled), "cancelled");
  EXPECT_EQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
            "deadline exceeded");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Caller(int x) {
  EFES_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Caller(1).ok());
  EXPECT_EQ(Caller(-1).code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result = Status::NotFound("gone");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<int> result = 7;
  EXPECT_EQ(result.value_or(-1), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result = std::string("payload");
  std::string value = std::move(result).value();
  EXPECT_EQ(value, "payload");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  EFES_ASSIGN_OR_RETURN(int half, Half(x));
  EFES_ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnChains) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);

  Result<int> error = Quarter(6);  // 6/2 = 3 is odd
  EXPECT_FALSE(error.ok());
  EXPECT_EQ(error.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, ArrowOperatorAccessesMembers) {
  Result<std::string> result = std::string("abc");
  EXPECT_EQ(result->size(), 3u);
}

}  // namespace
}  // namespace efes
