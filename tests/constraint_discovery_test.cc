// Tests for constraint discovery by data profiling.

#include "efes/profiling/constraint_discovery.h"

#include <gtest/gtest.h>

namespace efes {
namespace {

/// A parent/child database without *declared* constraints whose data
/// exactly satisfies PK-like and FK-like properties.
Database MakeUndeclaredDatabase(size_t rows = 20) {
  Schema schema("raw");
  (void)schema.AddRelation(RelationDef(
      "parent", {{"id", DataType::kInteger}, {"name", DataType::kText}}));
  (void)schema.AddRelation(RelationDef(
      "child", {{"pid", DataType::kInteger}, {"note", DataType::kText}}));
  auto db = Database::Create(std::move(schema));
  EXPECT_TRUE(db.ok());
  Table* parent = *db->mutable_table("parent");
  for (size_t i = 0; i < rows; ++i) {
    EXPECT_TRUE(parent
                    ->AppendRow({Value::Integer(static_cast<int64_t>(i)),
                                 Value::Text("n" + std::to_string(i % 7))})
                    .ok());
  }
  Table* child = *db->mutable_table("child");
  for (size_t i = 0; i < rows; ++i) {
    EXPECT_TRUE(
        child
            ->AppendRow({Value::Integer(static_cast<int64_t>(i % 10)),
                         i % 4 == 0 ? Value::Null() : Value::Text("x")})
            .ok());
  }
  return std::move(*db);
}

bool Contains(const std::vector<DiscoveredConstraint>& discovered,
              ConstraintKind kind, const std::string& relation,
              const std::string& attribute) {
  for (const DiscoveredConstraint& d : discovered) {
    if (d.constraint.kind == kind && d.constraint.relation == relation &&
        d.constraint.attributes.size() == 1 &&
        d.constraint.attributes[0] == attribute) {
      return true;
    }
  }
  return false;
}

TEST(ConstraintDiscoveryTest, FindsNotNullColumns) {
  Database db = MakeUndeclaredDatabase();
  auto discovered = DiscoverConstraints(db);
  EXPECT_TRUE(
      Contains(discovered, ConstraintKind::kNotNull, "parent", "id"));
  EXPECT_TRUE(
      Contains(discovered, ConstraintKind::kNotNull, "parent", "name"));
  // child.note has nulls.
  EXPECT_FALSE(
      Contains(discovered, ConstraintKind::kNotNull, "child", "note"));
}

TEST(ConstraintDiscoveryTest, FindsUniqueColumns) {
  Database db = MakeUndeclaredDatabase();
  auto discovered = DiscoverConstraints(db);
  EXPECT_TRUE(Contains(discovered, ConstraintKind::kUnique, "parent", "id"));
  // parent.name repeats (i % 7).
  EXPECT_FALSE(
      Contains(discovered, ConstraintKind::kUnique, "parent", "name"));
  // child.pid repeats (i % 10).
  EXPECT_FALSE(
      Contains(discovered, ConstraintKind::kUnique, "child", "pid"));
}

TEST(ConstraintDiscoveryTest, FindsInclusionDependency) {
  Database db = MakeUndeclaredDatabase();
  auto discovered = DiscoverConstraints(db);
  bool found_fk = false;
  for (const DiscoveredConstraint& d : discovered) {
    if (d.constraint.kind == ConstraintKind::kForeignKey &&
        d.constraint.relation == "child" &&
        d.constraint.attributes[0] == "pid" &&
        d.constraint.referenced_relation == "parent" &&
        d.constraint.referenced_attributes[0] == "id") {
      found_fk = true;
    }
  }
  EXPECT_TRUE(found_fk);
}

TEST(ConstraintDiscoveryTest, SkipsTinyTables) {
  Database db = MakeUndeclaredDatabase(/*rows=*/3);
  DiscoveryOptions options;
  options.min_row_count = 10;
  EXPECT_TRUE(DiscoverConstraints(db, options).empty());
}

TEST(ConstraintDiscoveryTest, SkipsDeclaredConstraints) {
  Schema schema("declared");
  (void)schema.AddRelation(RelationDef("r", {{"id", DataType::kInteger}}));
  schema.AddConstraint(Constraint::PrimaryKey("r", {"id"}));
  auto db = Database::Create(std::move(schema));
  Table* table = *db->mutable_table("r");
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(table->AppendRow({Value::Integer(i)}).ok());
  }
  // NOT NULL and UNIQUE on r.id are subsumed by the declared PK.
  auto discovered = DiscoverConstraints(*db);
  EXPECT_TRUE(discovered.empty());
}

TEST(ConstraintDiscoveryTest, ReportsDeclaredWhenAsked) {
  Schema schema("declared");
  (void)schema.AddRelation(RelationDef("r", {{"id", DataType::kInteger}}));
  schema.AddConstraint(Constraint::PrimaryKey("r", {"id"}));
  auto db = Database::Create(std::move(schema));
  Table* table = *db->mutable_table("r");
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(table->AppendRow({Value::Integer(i)}).ok());
  }
  DiscoveryOptions options;
  options.skip_declared = false;
  EXPECT_FALSE(DiscoverConstraints(*db, options).empty());
}

TEST(ConstraintDiscoveryTest, IndRequiresUniqueReferencedByDefault) {
  Schema schema("s");
  (void)schema.AddRelation(RelationDef("a", {{"x", DataType::kInteger}}));
  (void)schema.AddRelation(RelationDef("b", {{"y", DataType::kInteger}}));
  auto db = Database::Create(std::move(schema));
  Table* a = *db->mutable_table("a");
  Table* b = *db->mutable_table("b");
  for (int i = 0; i < 20; ++i) {
    // a.x in {0..4} ⊆ b.y in {0..9}, but b.y has duplicates.
    ASSERT_TRUE(a->AppendRow({Value::Integer(i % 5)}).ok());
    ASSERT_TRUE(b->AppendRow({Value::Integer(i % 10)}).ok());
  }
  auto strict = DiscoverConstraints(*db);
  bool fk_found = false;
  for (const DiscoveredConstraint& d : strict) {
    if (d.constraint.kind == ConstraintKind::kForeignKey) fk_found = true;
  }
  EXPECT_FALSE(fk_found);

  DiscoveryOptions lax;
  lax.require_unique_referenced = false;
  auto relaxed = DiscoverConstraints(*db, lax);
  fk_found = false;
  for (const DiscoveredConstraint& d : relaxed) {
    if (d.constraint.kind == ConstraintKind::kForeignKey) fk_found = true;
  }
  EXPECT_TRUE(fk_found);
}

TEST(ConstraintDiscoveryTest, SchemaWithDiscoveredConstraints) {
  Database db = MakeUndeclaredDatabase();
  Schema completed = SchemaWithDiscoveredConstraints(db);
  EXPECT_GT(completed.constraints().size(), db.schema().constraints().size());
  EXPECT_TRUE(completed.IsNotNullable("parent", "id"));
  EXPECT_TRUE(completed.IsUniqueAttribute("parent", "id"));
}

TEST(ConstraintDiscoveryTest, SupportRecorded) {
  Database db = MakeUndeclaredDatabase(25);
  auto discovered = DiscoverConstraints(db);
  ASSERT_FALSE(discovered.empty());
  for (const DiscoveredConstraint& d : discovered) {
    EXPECT_EQ(d.support, 25u);
    EXPECT_NE(d.ToString().find("support 25"), std::string::npos);
  }
}

}  // namespace
}  // namespace efes
