// Tests for the shared FlagSet parser: typed flag registration, the
// unknown-flag (exit 64) vs malformed-value (exit 2) error taxonomy,
// positional preservation, the kKeep policy for staged parsing, the
// argv variant used by the benches, and usage-text generation.

#include "efes/common/flags.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace efes {
namespace {

std::vector<std::string> Args(std::initializer_list<const char*> items) {
  return std::vector<std::string>(items.begin(), items.end());
}

TEST(FlagSetTest, ParsesEveryFlagKindAndStripsThem) {
  FlagSet flags;
  bool verbose = false;
  std::string out;
  size_t threads = 0;
  std::string format = "text";
  std::vector<std::string> seen;
  flags.AddBool("verbose", "say more", &verbose)
      .AddString("out", "<file>", "output path", &out)
      .AddUint("threads", "<n>", "worker threads", &threads)
      .AddChoice("format", {"text", "json"}, "output format", &format)
      .AddAction("tag", "<t>", "repeatable tag",
                 [&seen](std::string_view value) {
                   seen.emplace_back(value);
                   return Status::OK();
                 });

  std::vector<std::string> args =
      Args({"--verbose", "--out=est.json", "--threads=8", "--format=json",
            "--tag=a", "--tag=b", "positional"});
  ASSERT_TRUE(flags.Parse(&args).ok());
  EXPECT_TRUE(verbose);
  EXPECT_EQ(out, "est.json");
  EXPECT_EQ(threads, 8u);
  EXPECT_EQ(format, "json");
  EXPECT_EQ(seen, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(args, Args({"positional"}));
}

TEST(FlagSetTest, UnknownFlagIsTheExit64Class) {
  FlagSet flags;
  bool verbose = false;
  flags.AddBool("verbose", "say more", &verbose);
  std::vector<std::string> args = Args({"--nope"});
  Status status = flags.Parse(&args);
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(IsUnknownFlagError(status));
}

TEST(FlagSetTest, MalformedValueIsTheExit2Class) {
  FlagSet flags;
  size_t threads = 0;
  std::string format = "text";
  std::string out;
  flags.AddUint("threads", "<n>", "worker threads", &threads)
      .AddChoice("format", {"text", "json"}, "output format", &format)
      .AddString("out", "<file>", "output path", &out);
  for (const char* bad : {"--threads=zero", "--threads=0", "--threads=",
                          "--format=xml", "--out="}) {
    std::vector<std::string> args = Args({bad});
    Status status = flags.Parse(&args);
    ASSERT_FALSE(status.ok()) << "accepted: " << bad;
    EXPECT_FALSE(IsUnknownFlagError(status)) << bad;
  }
}

TEST(FlagSetTest, BoolFlagRejectsAValueAndValueFlagRequiresOne) {
  FlagSet flags;
  bool verbose = false;
  std::string out;
  flags.AddBool("verbose", "say more", &verbose)
      .AddString("out", "<file>", "output path", &out);
  {
    std::vector<std::string> args = Args({"--verbose=yes"});
    Status status = flags.Parse(&args);
    ASSERT_FALSE(status.ok());
    EXPECT_FALSE(IsUnknownFlagError(status));
  }
  {
    std::vector<std::string> args = Args({"--out"});
    Status status = flags.Parse(&args);
    ASSERT_FALSE(status.ok());
    EXPECT_FALSE(IsUnknownFlagError(status));
  }
}

TEST(FlagSetTest, ActionErrorsAreUsageErrors) {
  FlagSet flags;
  flags.AddAction("pick", "<x>", "always refuses", [](std::string_view) {
    return Status::InvalidArgument("no");
  });
  std::vector<std::string> args = Args({"--pick=anything"});
  Status status = flags.Parse(&args);
  ASSERT_FALSE(status.ok());
  EXPECT_FALSE(IsUnknownFlagError(status));
}

TEST(FlagSetTest, KeepPolicyLeavesUnknownFlagsForTheNextStage) {
  FlagSet flags;
  bool verbose = false;
  flags.AddBool("verbose", "say more", &verbose);
  std::vector<std::string> args =
      Args({"--verbose", "--benchmark_filter=prof", "input.csv"});
  ASSERT_TRUE(flags.Parse(&args, FlagSet::UnknownFlags::kKeep).ok());
  EXPECT_TRUE(verbose);
  EXPECT_EQ(args, Args({"--benchmark_filter=prof", "input.csv"}));
}

TEST(FlagSetTest, PositionalsSurviveInOrder) {
  FlagSet flags;
  bool verbose = false;
  flags.AddBool("verbose", "say more", &verbose);
  std::vector<std::string> args =
      Args({"first", "--verbose", "second", "third"});
  ASSERT_TRUE(flags.Parse(&args).ok());
  EXPECT_EQ(args, Args({"first", "second", "third"}));
}

TEST(FlagSetTest, ParseArgvKeepUnknownRewritesArgcArgv) {
  FlagSet flags;
  size_t threads = 0;
  flags.AddUint("threads", "<n>", "worker threads", &threads);
  // Writable argv storage (the function compacts argv in place).
  std::string a0 = "bench";
  std::string a1 = "--threads=4";
  std::string a2 = "--benchmark_filter=x";
  std::string a3 = "--threads=broken";
  char* argv[] = {a0.data(), a1.data(), a2.data(), a3.data(), nullptr};
  int argc = 4;
  flags.ParseArgvKeepUnknown(&argc, argv);
  EXPECT_EQ(threads, 4u);
  // The well-formed registered flag was consumed; the unknown flag and
  // the malformed one stay for the downstream parser to report.
  ASSERT_EQ(argc, 3);
  EXPECT_STREQ(argv[0], "bench");
  EXPECT_STREQ(argv[1], "--benchmark_filter=x");
  EXPECT_STREQ(argv[2], "--threads=broken");
}

TEST(FlagSetTest, UsageTextListsEveryFlagWithItsValueShape) {
  FlagSet flags;
  bool verbose = false;
  std::string format = "text";
  size_t threads = 0;
  flags.AddBool("verbose", "say more", &verbose)
      .AddChoice("format", {"text", "json"}, "output format", &format)
      .AddUint("threads", "<n>", "worker threads", &threads);
  const std::string usage = flags.UsageText();
  EXPECT_NE(usage.find("--verbose"), std::string::npos);
  EXPECT_NE(usage.find("--format=text|json"), std::string::npos);
  EXPECT_NE(usage.find("--threads=<n>"), std::string::npos);
  EXPECT_NE(usage.find("say more"), std::string::npos);
  EXPECT_NE(usage.find("worker threads"), std::string::npos);
}

}  // namespace
}  // namespace efes
