// Per-process-unique scratch paths for tests.
//
// gtest_discover_tests registers every TEST of a binary as its own ctest
// entry, so under `ctest -j` sibling tests of one fixture run as
// concurrent processes. A fixed directory name under TempDir() makes one
// process's SetUp remove_all the files another process is still using —
// an intermittent failure that only shows up in parallel runs. Deriving
// the path from the process id keeps it stable within a test process but
// unique across the concurrently running siblings.

#ifndef EFES_TESTS_TEST_PATHS_H_
#define EFES_TESTS_TEST_PATHS_H_

#include <gtest/gtest.h>
#include <unistd.h>

#include <string>

namespace efes {

/// Returns TempDir()/<name>-<pid>, unique per test process.
inline std::string TestScratchPath(const std::string& name) {
  return testing::TempDir() + "/" + name + "-" + std::to_string(::getpid());
}

}  // namespace efes

#endif  // EFES_TESTS_TEST_PATHS_H_
