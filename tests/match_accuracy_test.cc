// Tests for the Melnik-style match quality measures and the cost-benefit
// analysis.

#include "efes/matching/match_accuracy.h"

#include <limits>

#include <gtest/gtest.h>

#include "efes/experiment/cost_benefit.h"
#include "efes/experiment/default_pipeline.h"
#include "efes/scenario/paper_example.h"

namespace efes {
namespace {

CorrespondenceSet MakeIntended() {
  CorrespondenceSet set;
  set.AddRelation("albums", "records");
  set.AddAttribute("albums", "name", "records", "title");
  set.AddAttribute("songs", "length", "tracks", "duration");
  set.AddAttribute("songs", "name", "tracks", "title");
  return set;
}

TEST(MatchQualityTest, PerfectProposal) {
  MatchQuality quality = EvaluateMatch(MakeIntended(), MakeIntended());
  EXPECT_DOUBLE_EQ(quality.Precision(), 1.0);
  EXPECT_DOUBLE_EQ(quality.Recall(), 1.0);
  EXPECT_DOUBLE_EQ(quality.F1(), 1.0);
  EXPECT_DOUBLE_EQ(quality.Accuracy(), 1.0);
}

TEST(MatchQualityTest, PartialProposal) {
  CorrespondenceSet proposed;
  proposed.AddRelation("albums", "records");            // correct
  proposed.AddAttribute("albums", "name", "records", "title");  // correct
  proposed.AddAttribute("albums", "id", "records", "genre");    // wrong
  MatchQuality quality = EvaluateMatch(proposed, MakeIntended());
  EXPECT_EQ(quality.correct_count, 2u);
  EXPECT_DOUBLE_EQ(quality.Precision(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(quality.Recall(), 0.5);
  // Melnik: 1 - (1 deletion + 2 additions) / 4 intended = 0.25.
  EXPECT_DOUBLE_EQ(quality.Accuracy(), 0.25);
  std::string text = quality.ToString();
  EXPECT_NE(text.find("2 to add"), std::string::npos);
  EXPECT_NE(text.find("1 to delete"), std::string::npos);
}

TEST(MatchQualityTest, AccuracyCanGoNegative) {
  // All proposals wrong: fixing costs more than starting over.
  CorrespondenceSet proposed;
  proposed.AddAttribute("x", "a", "y", "b");
  proposed.AddAttribute("x", "c", "y", "d");
  CorrespondenceSet intended;
  intended.AddAttribute("p", "q", "r", "s");
  MatchQuality quality = EvaluateMatch(proposed, intended);
  EXPECT_LT(quality.Accuracy(), 0.0);
}

TEST(MatchQualityTest, EmptySets) {
  CorrespondenceSet empty;
  MatchQuality both_empty = EvaluateMatch(empty, empty);
  EXPECT_DOUBLE_EQ(both_empty.Precision(), 1.0);
  EXPECT_DOUBLE_EQ(both_empty.Recall(), 1.0);
  EXPECT_DOUBLE_EQ(both_empty.Accuracy(), 1.0);

  MatchQuality nothing_proposed = EvaluateMatch(empty, MakeIntended());
  EXPECT_DOUBLE_EQ(nothing_proposed.Recall(), 0.0);
  EXPECT_DOUBLE_EQ(nothing_proposed.Accuracy(), 0.0);
}

// --- Cost-benefit ------------------------------------------------------------

TEST(CostBenefitTest, MappingFirstThenDensestCleaning) {
  EffortEstimate estimate;
  auto add = [&](TaskType type, TaskCategory category, double repetitions,
                 double minutes) {
    Task task;
    task.type = type;
    task.category = category;
    task.parameters[task_params::kRepetitions] = repetitions;
    estimate.tasks.push_back(TaskEstimate{std::move(task), minutes});
  };
  add(TaskType::kMergeValues, TaskCategory::kCleaningStructure, 500, 15);
  add(TaskType::kWriteMapping, TaskCategory::kMapping, 0, 25);
  add(TaskType::kAddMissingValues, TaskCategory::kCleaningStructure, 100,
      200);
  add(TaskType::kDropDetachedValues, TaskCategory::kCleaningStructure, 10,
      0);

  CostBenefitCurve curve = AnalyzeCostBenefit(estimate);
  ASSERT_EQ(curve.points.size(), 4u);
  // Mapping first even though it resolves no problems.
  EXPECT_NE(curve.points[0].task.find("Write mapping"), std::string::npos);
  EXPECT_DOUBLE_EQ(curve.points[0].cumulative_quality, 0.0);
  // Free cleaning next, then the densest paid cleaning (500/15 > 100/200).
  EXPECT_NE(curve.points[1].task.find("Delete detached values"),
            std::string::npos);
  EXPECT_NE(curve.points[2].task.find("Merge values"), std::string::npos);
  EXPECT_NE(curve.points[3].task.find("Add missing values"),
            std::string::npos);
  // Totals.
  EXPECT_DOUBLE_EQ(curve.total_minutes, 240.0);
  EXPECT_DOUBLE_EQ(curve.total_problems, 610.0);
  EXPECT_DOUBLE_EQ(curve.points.back().cumulative_quality, 1.0);
}

TEST(CostBenefitTest, MinutesToReach) {
  EffortEstimate estimate;
  Task cheap;
  cheap.type = TaskType::kMergeValues;
  cheap.category = TaskCategory::kCleaningStructure;
  cheap.parameters[task_params::kRepetitions] = 90;
  estimate.tasks.push_back(TaskEstimate{cheap, 10});
  Task expensive;
  expensive.type = TaskType::kAddMissingValues;
  expensive.category = TaskCategory::kCleaningStructure;
  expensive.parameters[task_params::kRepetitions] = 10;
  estimate.tasks.push_back(TaskEstimate{expensive, 100});

  CostBenefitCurve curve = AnalyzeCostBenefit(estimate);
  // 90% of problems after 10 minutes; 100% needs all 110.
  EXPECT_DOUBLE_EQ(curve.MinutesToReach(0.9), 10.0);
  EXPECT_DOUBLE_EQ(curve.MinutesToReach(0.95), 110.0);
  EXPECT_DOUBLE_EQ(curve.MinutesToReach(2.0), 110.0);  // unreachable
}

TEST(CostBenefitTest, EmptyEstimate) {
  CostBenefitCurve curve = AnalyzeCostBenefit(EffortEstimate{});
  EXPECT_TRUE(curve.points.empty());
  EXPECT_DOUBLE_EQ(curve.total_minutes, 0.0);
}

TEST(CostBenefitTest, PaperExampleCurveIsMonotone) {
  auto scenario = MakePaperExample();
  ASSERT_TRUE(scenario.ok());
  EfesEngine engine = MakeDefaultEngine();
  auto result = engine.Run(*scenario, ExpectedQuality::kHighQuality);
  ASSERT_TRUE(result.ok());
  CostBenefitCurve curve = AnalyzeCostBenefit(result->estimate);
  ASSERT_FALSE(curve.points.empty());
  double minutes = -1.0;
  double quality = -1.0;
  double density = std::numeric_limits<double>::infinity();
  bool past_mapping = false;
  for (const CostBenefitPoint& point : curve.points) {
    EXPECT_GE(point.cumulative_minutes, minutes);
    EXPECT_GE(point.cumulative_quality, quality);
    minutes = point.cumulative_minutes;
    quality = point.cumulative_quality;
    if (point.problems_resolved > 0.0 && point.task_minutes > 0.0) {
      double d = point.problems_resolved / point.task_minutes;
      if (past_mapping) {
        EXPECT_LE(d, density + 1e-9);
      }
      density = d;
      past_mapping = true;
    }
  }
  EXPECT_NEAR(curve.points.back().cumulative_quality, 1.0, 1e-9);
  EXPECT_NE(curve.ToText().find("Quality"), std::string::npos);
}

}  // namespace
}  // namespace efes
