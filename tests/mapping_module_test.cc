// Tests for the mapping estimation module (Table 2 / Example 3.8).

#include "efes/mapping/mapping_module.h"

#include <gtest/gtest.h>

#include "efes/core/effort_model.h"
#include "efes/scenario/paper_example.h"

namespace efes {
namespace {

const MappingConnection* FindConnection(
    const MappingComplexityReport& report, const std::string& target_table) {
  for (const MappingConnection& connection : report.connections()) {
    if (connection.target_table == target_table) return &connection;
  }
  return nullptr;
}

class MappingModuleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto scenario = MakePaperExample();
    ASSERT_TRUE(scenario.ok());
    scenario_ = std::make_unique<IntegrationScenario>(std::move(*scenario));
    auto report = module_.AssessComplexity(*scenario_);
    ASSERT_TRUE(report.ok());
    report_ = std::move(*report);
  }

  MappingModule module_;
  std::unique_ptr<IntegrationScenario> scenario_;
  std::unique_ptr<ComplexityReport> report_;
};

TEST_F(MappingModuleTest, Table2RecordsConnection) {
  const auto& report =
      static_cast<const MappingComplexityReport&>(*report_);
  const MappingConnection* records = FindConnection(report, "records");
  ASSERT_NE(records, nullptr);
  // "the three source tables albums, artist_lists, and artist_credits
  // have to be combined, two attributes must be copied, and unique id
  // values for the integrated tuples must be generated" (Example 3.4).
  EXPECT_EQ(records->source_tables.size(), 3u);
  EXPECT_EQ(records->attribute_count, 2u);
  EXPECT_TRUE(records->needs_key_generation);
  EXPECT_EQ(records->foreign_key_count, 0u);
}

TEST_F(MappingModuleTest, Table2TracksConnection) {
  const auto& report =
      static_cast<const MappingComplexityReport&>(*report_);
  const MappingConnection* tracks = FindConnection(report, "tracks");
  ASSERT_NE(tracks, nullptr);
  // songs plus the albums anchor needed to resolve the record FK.
  EXPECT_EQ(tracks->source_tables.size(), 2u);
  // record is an FK remap, not an attribute copy: title + duration remain.
  EXPECT_EQ(tracks->attribute_count, 2u);
  EXPECT_FALSE(tracks->needs_key_generation);
  EXPECT_EQ(tracks->foreign_key_count, 1u);
}

TEST_F(MappingModuleTest, Example38TotalIs25Minutes) {
  ExecutionSettings settings;
  auto tasks =
      module_.PlanTasks(*report_, ExpectedQuality::kHighQuality, settings);
  ASSERT_TRUE(tasks.ok());
  ASSERT_EQ(tasks->size(), 2u);
  EffortModel model = EffortModel::PaperDefault();
  double total = 0.0;
  for (const Task& task : *tasks) {
    EXPECT_EQ(task.type, TaskType::kWriteMapping);
    EXPECT_EQ(task.category, TaskCategory::kMapping);
    total += model.EstimateMinutes(task, settings);
  }
  EXPECT_DOUBLE_EQ(total, 25.0);
}

TEST_F(MappingModuleTest, MappingToolReducesTo2MinutesPerConnection) {
  ExecutionSettings settings;
  settings.mapping_tool_available = true;
  auto tasks =
      module_.PlanTasks(*report_, ExpectedQuality::kHighQuality, settings);
  ASSERT_TRUE(tasks.ok());
  EffortModel model = EffortModel::PaperDefault();
  double total = 0.0;
  for (const Task& task : *tasks) {
    total += model.EstimateMinutes(task, settings);
  }
  EXPECT_DOUBLE_EQ(total, 4.0);  // Example 3.8: "four minutes"
}

TEST_F(MappingModuleTest, ReportRendersTable2Columns) {
  std::string text = report_->ToText();
  EXPECT_NE(text.find("Target table"), std::string::npos);
  EXPECT_NE(text.find("Source tables"), std::string::npos);
  EXPECT_NE(text.find("Primary key"), std::string::npos);
  EXPECT_NE(text.find("records"), std::string::npos);
  EXPECT_EQ(report_->ProblemCount(), 2u);
  EXPECT_EQ(report_->module_name(), "mapping");
}

TEST_F(MappingModuleTest, RejectsForeignReport) {
  class OtherReport : public ComplexityReport {
   public:
    std::string module_name() const override { return "other"; }
    std::string ToText() const override { return ""; }
    size_t ProblemCount() const override { return 0; }
  };
  OtherReport other;
  auto tasks =
      module_.PlanTasks(other, ExpectedQuality::kHighQuality, {});
  EXPECT_FALSE(tasks.ok());
}

TEST(MappingModuleStandaloneTest, NoCorrespondencesNoConnections) {
  Schema target_schema("t");
  (void)target_schema.AddRelation(RelationDef("t", {{"a", DataType::kText}}));
  Schema source_schema("s");
  (void)source_schema.AddRelation(RelationDef("s", {{"a", DataType::kText}}));
  IntegrationScenario scenario("empty",
                               std::move(*Database::Create(
                                   std::move(target_schema))));
  scenario.AddSource(std::move(*Database::Create(std::move(source_schema))),
                     CorrespondenceSet());
  MappingModule module;
  auto report = module.AssessComplexity(scenario);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ((*report)->ProblemCount(), 0u);
}

}  // namespace
}  // namespace efes
