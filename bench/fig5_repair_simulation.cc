// Regenerates Figure 5: the virtual CSG instance as cleaning tasks are
// performed on it. The structure repair planner's trace narrates each
// state transition: the initial invalid actual cardinalities, the chosen
// task, and the side effects that break further relationships.

#include <cstdio>

#include "efes/scenario/paper_example.h"
#include "efes/structure/conflict_detector.h"
#include "efes/structure/repair_planner.h"

int main() {
  auto scenario = efes::MakePaperExample();
  if (!scenario.ok()) {
    std::fprintf(stderr, "scenario: %s\n",
                 scenario.status().ToString().c_str());
    return 1;
  }
  efes::CsgGraph target_graph;
  auto assessments =
      efes::DetectStructureConflicts(*scenario, &target_graph);
  if (!assessments.ok()) {
    std::fprintf(stderr, "detector: %s\n",
                 assessments.status().ToString().c_str());
    return 1;
  }

  std::printf(
      "Figure 5: Extract of a virtual CSG instance as cleaning tasks are\n"
      "performed on it (high-quality repair of the running example).\n\n");
  std::vector<std::string> trace;
  auto tasks = efes::PlanStructureRepairs(
      target_graph, (*assessments)[0].conflicts,
      efes::ExpectedQuality::kHighQuality, {}, &trace);
  if (!tasks.ok()) {
    std::fprintf(stderr, "planner: %s\n", tasks.status().ToString().c_str());
    return 1;
  }
  for (const std::string& line : trace) {
    std::printf("%s\n", line.c_str());
  }
  std::printf("\nOrdered repair plan:\n");
  for (size_t i = 0; i < tasks->size(); ++i) {
    std::printf("  %zu. %s\n", i + 1, (*tasks)[i].ToString().c_str());
  }
  return 0;
}
