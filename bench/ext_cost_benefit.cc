// Extension (Section 7 future work): the cost-benefit curve of an
// integration — "the more effort, the better the quality of the result".
// For the running example and one case-study scenario, prints the order
// in which a practitioner should execute the planned tasks to maximize
// result quality per minute, and the quality level reached over time.

#include <cstdio>

#include "efes/experiment/cost_benefit.h"
#include "efes/experiment/default_pipeline.h"
#include "efes/scenario/bibliographic.h"
#include "efes/scenario/paper_example.h"

namespace {

int PrintCurve(const efes::IntegrationScenario& scenario) {
  efes::EfesEngine engine = efes::MakeDefaultEngine();
  auto result =
      engine.Run(scenario, efes::ExpectedQuality::kHighQuality);
  if (!result.ok()) {
    std::fprintf(stderr, "estimation failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  efes::CostBenefitCurve curve =
      efes::AnalyzeCostBenefit(result->estimate);
  std::printf("--- %s ---\n%s", scenario.name.c_str(),
              curve.ToText().c_str());
  std::printf(
      "Reaching 50%% quality takes %.0f min, 90%% takes %.0f min, 100%% "
      "takes %.0f min.\n\n",
      curve.MinutesToReach(0.5), curve.MinutesToReach(0.9),
      curve.total_minutes);
  return 0;
}

}  // namespace

int main() {
  std::printf(
      "Extension: cost-benefit curves (Section 7 future work)\n\n");
  auto example = efes::MakePaperExample();
  if (!example.ok()) return 1;
  if (int rc = PrintCurve(*example); rc != 0) return rc;

  auto biblio = efes::MakeBiblioScenario(efes::BiblioSchemaId::kS1,
                                         efes::BiblioSchemaId::kS2, {});
  if (!biblio.ok()) return 1;
  return PrintCurve(*biblio);
}
