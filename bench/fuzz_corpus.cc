// Dedup calibration over the fuzz corpus: runs the 50 pinned corpus
// seeds (the same list as data/fuzz_corpus.txt) through the default
// engine, simulates the "measured" effort with the ground-truth model,
// and reports per-seed dedup estimates, injected-cluster recall, and
// the relative RMSE of the dedup category. Output is deterministic —
// two invocations byte-diff equal.

#include <cstdio>
#include <string>
#include <vector>

#include "efes/common/string_util.h"
#include "efes/common/text_table.h"
#include "efes/core/task.h"
#include "efes/dedup/dedup_module.h"
#include "efes/experiment/default_pipeline.h"
#include "efes/experiment/metrics.h"
#include "efes/scenario/fuzzer.h"
#include "efes/scenario/ground_truth.h"

namespace {

constexpr uint64_t kFirstSeed = 1;
constexpr uint64_t kLastSeed = 50;

double DedupMinutes(const efes::EstimationResult& result) {
  double minutes = 0.0;
  for (const efes::TaskEstimate& estimate : result.estimate.tasks) {
    if (estimate.task.category == efes::TaskCategory::kDeduplication) {
      minutes += estimate.minutes;
    }
  }
  return minutes;
}

}  // namespace

int main() {
  efes::EfesEngine engine = efes::MakeDefaultEngine();
  efes::TextTable table;
  table.SetHeader({"Seed", "Rows", "Injected", "Recall", "Efes dedup (min)",
                   "Measured dedup (min)", "Total (min)"});

  std::vector<double> measured_series;
  std::vector<double> estimated_series;
  double recall_sum = 0.0;
  size_t recall_seeds = 0;

  for (uint64_t seed = kFirstSeed; seed <= kLastSeed; ++seed) {
    auto fuzzed = efes::FuzzScenario(seed);
    if (!fuzzed.ok()) {
      std::fprintf(stderr, "seed %llu: %s\n",
                   static_cast<unsigned long long>(seed),
                   fuzzed.status().ToString().c_str());
      return 1;
    }
    auto result =
        engine.Run(fuzzed->scenario, efes::ExpectedQuality::kHighQuality);
    if (!result.ok()) {
      std::fprintf(stderr, "seed %llu: %s\n",
                   static_cast<unsigned long long>(seed),
                   result.status().ToString().c_str());
      return 1;
    }
    auto measured = efes::SimulateMeasuredEffort(
        fuzzed->scenario, efes::ExpectedQuality::kHighQuality, seed);
    if (!measured.ok()) {
      std::fprintf(stderr, "seed %llu: %s\n",
                   static_cast<unsigned long long>(seed),
                   measured.status().ToString().c_str());
      return 1;
    }

    double recall = 1.0;
    for (const efes::ModuleRun& run : result->module_runs) {
      if (run.module != "dedup" || run.report == nullptr) continue;
      const auto* report = dynamic_cast<const efes::DedupComplexityReport*>(
          run.report.get());
      if (report == nullptr) continue;
      recall = efes::InjectedClusterRecall(*fuzzed, *report);
    }
    if (!fuzzed->injected_clusters.empty()) {
      recall_sum += recall;
      ++recall_seeds;
    }

    size_t rows = 0;
    for (const efes::SourceBinding& source : fuzzed->scenario.sources) {
      rows += source.database.TotalRowCount();
    }
    double estimated = DedupMinutes(*result);
    measured_series.push_back(measured->dedup_minutes);
    estimated_series.push_back(estimated);
    table.AddRow({std::to_string(seed), std::to_string(rows),
                  std::to_string(fuzzed->injected_clusters.size()),
                  efes::FormatDouble(recall, 2),
                  efes::FormatDouble(estimated, 6),
                  efes::FormatDouble(measured->dedup_minutes, 6),
                  efes::FormatDouble(result->estimate.TotalMinutes(), 6)});
  }

  std::printf(
      "Dedup calibration over the fuzz corpus (seeds %llu..%llu, the\n"
      "data/fuzz_corpus.txt manifest): EFES dedup estimates vs simulated\n"
      "measured dedup effort and injected-cluster recall.\n\n",
      static_cast<unsigned long long>(kFirstSeed),
      static_cast<unsigned long long>(kLastSeed));
  std::printf("%s", table.ToString().c_str());

  double mean_recall =
      recall_seeds == 0
          ? 1.0
          : recall_sum / static_cast<double>(recall_seeds);
  std::printf("\nrmse(Efes dedup)   = %s\n",
              efes::FormatDouble(
                  efes::RelativeRmse(measured_series, estimated_series), 2)
                  .c_str());
  std::printf("mean recall        = %s over %zu seeds with injection\n",
              efes::FormatDouble(mean_recall, 4).c_str(), recall_seeds);
  return 0;
}
