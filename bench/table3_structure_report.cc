// Regenerates Table 3: the complexity report of the structure conflict
// detector on the running example — the paper's 503 / 102 violation
// counts arise from the generated instance.

#include <cstdio>

#include "efes/structure/structure_module.h"
#include "efes/scenario/paper_example.h"

int main() {
  auto scenario = efes::MakePaperExample();
  if (!scenario.ok()) {
    std::fprintf(stderr, "scenario: %s\n",
                 scenario.status().ToString().c_str());
    return 1;
  }
  efes::StructureModule module;
  auto report = module.AssessComplexity(*scenario);
  if (!report.ok()) {
    std::fprintf(stderr, "detector: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "Table 3: Complexity report of the structure conflict detector\n\n");
  std::printf("%s", (*report)->ToText().c_str());

  const auto& structure_report =
      static_cast<const efes::StructureComplexityReport&>(**report);
  std::printf("\nMatched source relationships:\n");
  for (const efes::SourceStructureAssessment& source :
       structure_report.sources()) {
    for (const efes::StructureConflict& conflict : source.conflicts) {
      std::printf("  %s\n    inferred %s via %s\n",
                  conflict.target_constraint.c_str(),
                  conflict.inferred.ToString().c_str(),
                  conflict.source_path.c_str());
    }
  }
  return 0;
}
