// Regenerates Table 5: "High-quality structure repair tasks and their
// estimated effort" for the running example — Add tuples (102, 5 mins),
// Add missing values (102, 204 mins), Merge values (503, 15 mins),
// total 224 minutes.

#include <cstdio>

#include "efes/common/string_util.h"
#include "efes/common/text_table.h"
#include "efes/core/effort_model.h"
#include "efes/scenario/paper_example.h"
#include "efes/structure/structure_module.h"

int main() {
  auto scenario = efes::MakePaperExample();
  if (!scenario.ok()) {
    std::fprintf(stderr, "scenario: %s\n",
                 scenario.status().ToString().c_str());
    return 1;
  }
  efes::StructureModule module;
  auto report = module.AssessComplexity(*scenario);
  if (!report.ok()) {
    std::fprintf(stderr, "detector: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  efes::ExecutionSettings settings;
  auto tasks = module.PlanTasks(**report,
                                efes::ExpectedQuality::kHighQuality,
                                settings);
  if (!tasks.ok()) {
    std::fprintf(stderr, "planner: %s\n", tasks.status().ToString().c_str());
    return 1;
  }

  efes::EffortModel model = efes::EffortModel::PaperDefault();
  std::printf(
      "Table 5: High-quality structure repair tasks and their estimated\n"
      "effort using the effort calculation functions from Table 9\n\n");
  efes::TextTable table;
  table.SetHeader({"Task", "Repetitions", "Effort"});
  double total = 0.0;
  for (const efes::Task& task : *tasks) {
    double minutes = model.EstimateMinutes(task, settings);
    total += minutes;
    table.AddRow(
        {std::string(efes::TaskTypeToString(task.type)) + " (" +
             task.subject + ")",
         efes::FormatDouble(task.Param(efes::task_params::kRepetitions), 8),
         efes::FormatDouble(minutes, 8) + " mins"});
  }
  table.AddSeparator();
  table.AddRow({"Total", "", efes::FormatDouble(total, 8) + " mins"});
  std::printf("%s", table.ToString().c_str());
  return 0;
}
