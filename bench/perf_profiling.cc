// Performance microbenchmarks for the Section 5.1 statistics.

#include <benchmark/benchmark.h>

#include "bench_json.h"
#include "efes/common/random.h"
#include "efes/profiling/statistics.h"

namespace efes {
namespace {

std::vector<Value> RandomTextColumn(size_t n, uint64_t seed = 99) {
  Random rng(seed);
  std::vector<Value> column;
  column.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.05)) {
      column.push_back(Value::Null());
    } else {
      column.push_back(Value::Text(rng.Word(3, 12) + " " +
                                   std::to_string(rng.UniformUint64(1000))));
    }
  }
  return column;
}

std::vector<Value> RandomNumericColumn(size_t n, uint64_t seed = 77) {
  Random rng(seed);
  std::vector<Value> column;
  column.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    column.push_back(Value::Integer(rng.UniformInt(0, 1000000)));
  }
  return column;
}

void BM_TextStatistics(benchmark::State& state) {
  std::vector<Value> column =
      RandomTextColumn(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeStatistics(column, DataType::kText));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TextStatistics)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_NumericStatistics(benchmark::State& state) {
  std::vector<Value> column =
      RandomNumericColumn(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeStatistics(column, DataType::kInteger));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NumericStatistics)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_OverallFit(benchmark::State& state) {
  AttributeStatistics a =
      ComputeStatistics(RandomTextColumn(5000), DataType::kText);
  AttributeStatistics b =
      ComputeStatistics(RandomTextColumn(5000), DataType::kText);
  for (auto _ : state) {
    benchmark::DoNotOptimize(OverallFit(a, b));
  }
}
BENCHMARK(BM_OverallFit);

void BM_GeneralizeToPattern(benchmark::State& state) {
  std::string text = "Sweet Home Alabama 1974 (4:43)";
  for (auto _ : state) {
    benchmark::DoNotOptimize(GeneralizeToPattern(text));
  }
}
BENCHMARK(BM_GeneralizeToPattern);

void BM_StatisticsBatch(benchmark::State& state) {
  std::vector<std::vector<Value>> columns;
  for (size_t i = 0; i < 32; ++i) {
    columns.push_back(i % 2 == 0 ? RandomTextColumn(5000)
                                 : RandomNumericColumn(5000));
  }
  std::vector<ColumnStatisticsRequest> requests;
  for (size_t i = 0; i < columns.size(); ++i) {
    requests.push_back(ColumnStatisticsRequest{
        &columns[i], i % 2 == 0 ? DataType::kText : DataType::kInteger});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeStatisticsBatch(requests));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(columns.size()));
}
BENCHMARK(BM_StatisticsBatch);

/// The workload's input: 32 columns of 20000 values, every column with
/// its own seed so all 32 contents (and therefore cache keys) are
/// distinct. Generated once — the timed section below measures
/// profiling, not data generation.
const std::vector<std::vector<Value>>& WorkloadColumns() {
  static const std::vector<std::vector<Value>> columns = [] {
    std::vector<std::vector<Value>> generated;
    for (size_t i = 0; i < 32; ++i) {
      generated.push_back(i % 2 == 0 ? RandomTextColumn(20000, 99 + i)
                                     : RandomNumericColumn(20000, 777 + i));
    }
    return generated;
  }();
  return columns;
}

/// Representative workload for the telemetry JSON line: a 32-column
/// batch profile (wide enough that --threads scaling shows up in
/// wall_ms) plus one pairwise fit comparison.
void JsonLineWorkload() {
  const std::vector<std::vector<Value>>& columns = WorkloadColumns();
  std::vector<ColumnStatisticsRequest> requests;
  for (size_t i = 0; i < columns.size(); ++i) {
    requests.push_back(ColumnStatisticsRequest{
        &columns[i], i % 2 == 0 ? DataType::kText : DataType::kInteger});
  }
  auto batch = ComputeStatisticsBatch(requests);
  benchmark::DoNotOptimize(batch);
  if (batch.ok() && batch->size() >= 4) {
    benchmark::DoNotOptimize(OverallFit((*batch)[0], (*batch)[2]));
  }
}

}  // namespace
}  // namespace efes

int main(int argc, char** argv) {
  // Generate the workload input before anything is timed, so the
  // cold/warm delta measures profiling work only.
  efes::WorkloadColumns();
  return efes::bench::BenchMain(argc, argv, "perf_profiling",
                                efes::JsonLineWorkload);
}
