// Performance benchmarks for the Section 5.1 statistics through the
// chunked, budgeted profiler (profiling/profiler.h).
//
// Two workload shapes:
//   - default: a 32-column in-memory batch through ProfileColumns, wide
//     enough that --threads scaling and the profile-cache cold/warm
//     delta show up in the JSON lines;
//   - --rows=<n>: an out-of-core sweep — 8 column streams of n rows
//     each, generated chunk-by-chunk and absorbed into budgeted
//     sketches, so the input never exists whole in memory. This is the
//     scale regime (rows=1e6/1e7) the whole-column ComputeStatistics
//     path cannot reach under the same --max-memory budget.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <string>

#include "bench_json.h"
#include "efes/common/clock.h"
#include "efes/common/flags.h"
#include "efes/common/metrics.h"
#include "efes/common/parallel.h"
#include "efes/common/random.h"
#include "efes/profiling/profiler.h"
#include "efes/profiling/sketch.h"
#include "efes/profiling/statistics.h"

namespace efes {
namespace {

std::vector<Value> RandomTextColumn(size_t n, uint64_t seed = 99) {
  Random rng(seed);
  std::vector<Value> column;
  column.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.05)) {
      column.push_back(Value::Null());
    } else {
      column.push_back(Value::Text(rng.Word(3, 12) + " " +
                                   std::to_string(rng.UniformUint64(1000))));
    }
  }
  return column;
}

std::vector<Value> RandomNumericColumn(size_t n, uint64_t seed = 77) {
  Random rng(seed);
  std::vector<Value> column;
  column.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    column.push_back(Value::Integer(rng.UniformInt(0, 1000000)));
  }
  return column;
}

/// Sketch-mode options with a budget an exact whole-column profile of
/// the text columns could not satisfy: 1 MiB per sketch versus tens of
/// MiB of distinct values at the --rows scales below.
ProfileOptions SketchBudgetOptions() {
  ProfileOptions options;
  options.chunk_rows = 65536;
  options.max_memory_bytes = 1 << 20;
  options.mode = ApproximationMode::kSketch;
  return options;
}

void BM_TextStatistics(benchmark::State& state) {
  std::vector<Value> column =
      RandomTextColumn(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ProfileColumn(column, DataType::kText));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TextStatistics)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_NumericStatistics(benchmark::State& state) {
  std::vector<Value> column =
      RandomNumericColumn(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ProfileColumn(column, DataType::kInteger));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NumericStatistics)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_TextStatisticsSketch(benchmark::State& state) {
  std::vector<Value> column =
      RandomTextColumn(static_cast<size_t>(state.range(0)));
  const ProfileOptions options = SketchBudgetOptions();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ProfileColumn(column, DataType::kText, options));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TextStatisticsSketch)->Arg(50000)->Arg(200000);

void BM_OverallFit(benchmark::State& state) {
  AttributeStatistics a =
      ProfileColumn(RandomTextColumn(5000), DataType::kText).value();
  AttributeStatistics b =
      ProfileColumn(RandomTextColumn(5000, 123), DataType::kText).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(OverallFit(a, b));
  }
}
BENCHMARK(BM_OverallFit);

void BM_GeneralizeToPattern(benchmark::State& state) {
  std::string text = "Sweet Home Alabama 1974 (4:43)";
  for (auto _ : state) {
    benchmark::DoNotOptimize(GeneralizeToPattern(text));
  }
}
BENCHMARK(BM_GeneralizeToPattern);

void BM_ProfileColumns(benchmark::State& state) {
  std::vector<std::vector<Value>> columns;
  for (size_t i = 0; i < 32; ++i) {
    columns.push_back(i % 2 == 0 ? RandomTextColumn(5000)
                                 : RandomNumericColumn(5000));
  }
  std::vector<ProfileRequest> requests;
  for (size_t i = 0; i < columns.size(); ++i) {
    requests.push_back(ProfileRequest{
        &columns[i], i % 2 == 0 ? DataType::kText : DataType::kInteger});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ProfileColumns(requests));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(columns.size()));
}
BENCHMARK(BM_ProfileColumns);

/// The default workload's input: 32 columns of 20000 values, every
/// column with its own seed so all 32 contents (and therefore cache
/// keys) are distinct. Generated once — the timed section below
/// measures profiling, not data generation.
const std::vector<std::vector<Value>>& WorkloadColumns() {
  static const std::vector<std::vector<Value>> columns = [] {
    std::vector<std::vector<Value>> generated;
    for (size_t i = 0; i < 32; ++i) {
      generated.push_back(i % 2 == 0 ? RandomTextColumn(20000, 99 + i)
                                     : RandomNumericColumn(20000, 777 + i));
    }
    return generated;
  }();
  return columns;
}

/// Representative workload for the telemetry JSON line: a 32-column
/// batch profile (wide enough that --threads scaling shows up in
/// wall_ms) plus one pairwise fit comparison.
void JsonLineWorkload() {
  const std::vector<std::vector<Value>>& columns = WorkloadColumns();
  std::vector<ProfileRequest> requests;
  for (size_t i = 0; i < columns.size(); ++i) {
    requests.push_back(ProfileRequest{
        &columns[i], i % 2 == 0 ? DataType::kText : DataType::kInteger});
  }
  auto batch = ProfileColumns(requests);
  benchmark::DoNotOptimize(batch);
  if (batch.ok() && batch->size() >= 4) {
    benchmark::DoNotOptimize(OverallFit((*batch)[0], (*batch)[2]));
  }
}

// --- scaled out-of-core workload (--rows=<n>) ------------------------------

constexpr size_t kScaledStreams = 8;
constexpr size_t kScaledChunkRows = 65536;

/// Regenerates chunk `chunk_index` of stream `stream` into `out`. The
/// seed depends only on (stream, chunk_index), so the stream's content
/// is deterministic however the chunks are iterated — the out-of-core
/// analog of WorkloadColumns' fixed seeds.
void GenerateChunk(size_t stream, size_t chunk_index, size_t count,
                   std::vector<Value>* out) {
  out->clear();
  Random rng(0x9e3779b97f4a7c15ull * (stream + 1) + chunk_index);
  if (stream % 2 == 0) {
    for (size_t i = 0; i < count; ++i) {
      if (rng.Bernoulli(0.05)) {
        out->push_back(Value::Null());
      } else {
        out->push_back(Value::Text(
            rng.Word(3, 12) + " " + std::to_string(rng.UniformUint64(1000))));
      }
    }
  } else {
    for (size_t i = 0; i < count; ++i) {
      out->push_back(Value::Integer(rng.UniformInt(0, 1000000)));
    }
  }
}

/// Streams 8 columns of `rows` values each through budgeted sketches:
/// every chunk is generated, absorbed, and discarded, so peak memory is
/// one chunk plus one capped sketch per stream regardless of `rows`.
/// Counters and the profile-time histogram mirror ProfileColumn's
/// instrumentation so the emitted JSON line carries the same fields as
/// the default workload.
void ScaledWorkload(size_t rows) {
  static Counter& columns_profiled =
      MetricsRegistry::Global().GetCounter("profiling.statistics.columns");
  static Counter& cells_scanned =
      MetricsRegistry::Global().GetCounter("profiling.statistics.cells");
  static Counter& chunks_absorbed =
      MetricsRegistry::Global().GetCounter("profiling.statistics.chunks");
  static Histogram& compute_ms =
      MetricsRegistry::Global().GetHistogram("profiling.statistics.ms");

  const ProfileOptions options = SketchBudgetOptions();
  auto finalized = ParallelMap(kScaledStreams, [&](size_t stream) {
        const int64_t start_nanos = Clock::Default()->NowNanos();
        const DataType type =
            stream % 2 == 0 ? DataType::kText : DataType::kInteger;
        StatisticsSketch sketch(type, options);
        std::vector<Value> chunk;
        chunk.reserve(kScaledChunkRows);
        size_t chunk_index = 0;
        for (size_t absorbed = 0; absorbed < rows; ++chunk_index) {
          const size_t count = std::min(kScaledChunkRows, rows - absorbed);
          GenerateChunk(stream, chunk_index, count, &chunk);
          Status status = sketch.AbsorbRange(chunk, 0, chunk.size());
          if (!status.ok()) {
            // Unreachable in sketch mode (only exact-mode budgets fail);
            // a wrong result here would poison the trajectory file.
            std::fprintf(stderr, "perf_profiling: absorb failed: %s\n",
                         status.ToString().c_str());
            std::abort();
          }
          chunks_absorbed.Increment();
          absorbed += count;
        }
        AttributeStatistics stats = sketch.Finalize();
        columns_profiled.Increment();
        cells_scanned.Increment(rows);
        compute_ms.Observe(
            static_cast<double>(Clock::Default()->NowNanos() - start_nanos) /
            1e6);
        return stats;
  });
  if (!finalized.ok()) {
    std::fprintf(stderr, "perf_profiling: scaled workload failed: %s\n",
                 finalized.status().ToString().c_str());
    std::abort();
  }
  benchmark::DoNotOptimize(*finalized);
  if (finalized->size() >= 3) {
    benchmark::DoNotOptimize(OverallFit((*finalized)[0], (*finalized)[2]));
  }
}

/// "1e6"-style label for exact powers of ten, plain digits otherwise.
std::string RowsLabel(size_t rows) {
  size_t power = 0;
  size_t value = rows;
  while (value >= 10 && value % 10 == 0) {
    value /= 10;
    ++power;
  }
  if (value == 1 && power > 0) return "1e" + std::to_string(power);
  return std::to_string(rows);
}

}  // namespace
}  // namespace efes

int main(int argc, char** argv) {
  // --rows=<n> switches to the out-of-core workload; stripped before
  // google-benchmark (which rejects unknown flags) sees the argv.
  static size_t rows = 0;
  {
    efes::FlagSet flags;
    flags.AddUint("rows", "<n>",
                  "rows per stream for the scaled out-of-core workload",
                  &rows);
    flags.ParseArgvKeepUnknown(&argc, argv);
  }
  if (rows > 0) {
    const std::string name =
        "perf_profiling_rows" + efes::RowsLabel(rows);
    return efes::bench::BenchMain(argc, argv, name,
                                  [] { efes::ScaledWorkload(rows); });
  }
  // Generate the workload input before anything is timed, so the
  // cold/warm delta measures profiling work only.
  efes::WorkloadColumns();
  return efes::bench::BenchMain(argc, argv, "perf_profiling",
                                efes::JsonLineWorkload);
}
