// Performance microbenchmarks for the Section 5.1 statistics.

#include <benchmark/benchmark.h>

#include "bench_json.h"
#include "efes/common/random.h"
#include "efes/profiling/statistics.h"

namespace efes {
namespace {

std::vector<Value> RandomTextColumn(size_t n) {
  Random rng(99);
  std::vector<Value> column;
  column.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.05)) {
      column.push_back(Value::Null());
    } else {
      column.push_back(Value::Text(rng.Word(3, 12) + " " +
                                   std::to_string(rng.UniformUint64(1000))));
    }
  }
  return column;
}

std::vector<Value> RandomNumericColumn(size_t n) {
  Random rng(77);
  std::vector<Value> column;
  column.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    column.push_back(Value::Integer(rng.UniformInt(0, 1000000)));
  }
  return column;
}

void BM_TextStatistics(benchmark::State& state) {
  std::vector<Value> column =
      RandomTextColumn(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeStatistics(column, DataType::kText));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TextStatistics)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_NumericStatistics(benchmark::State& state) {
  std::vector<Value> column =
      RandomNumericColumn(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeStatistics(column, DataType::kInteger));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NumericStatistics)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_OverallFit(benchmark::State& state) {
  AttributeStatistics a =
      ComputeStatistics(RandomTextColumn(5000), DataType::kText);
  AttributeStatistics b =
      ComputeStatistics(RandomTextColumn(5000), DataType::kText);
  for (auto _ : state) {
    benchmark::DoNotOptimize(OverallFit(a, b));
  }
}
BENCHMARK(BM_OverallFit);

void BM_GeneralizeToPattern(benchmark::State& state) {
  std::string text = "Sweet Home Alabama 1974 (4:43)";
  for (auto _ : state) {
    benchmark::DoNotOptimize(GeneralizeToPattern(text));
  }
}
BENCHMARK(BM_GeneralizeToPattern);

/// Representative workload for the telemetry JSON line: profile one text
/// and one numeric column and compare two samples.
void JsonLineWorkload() {
  AttributeStatistics text_a =
      ComputeStatistics(RandomTextColumn(20000), DataType::kText);
  AttributeStatistics text_b =
      ComputeStatistics(RandomTextColumn(20000), DataType::kText);
  benchmark::DoNotOptimize(OverallFit(text_a, text_b));
  benchmark::DoNotOptimize(
      ComputeStatistics(RandomNumericColumn(20000), DataType::kInteger));
}

}  // namespace
}  // namespace efes

int main(int argc, char** argv) {
  return efes::bench::BenchMain(argc, argv, "perf_profiling",
                                efes::JsonLineWorkload);
}
