// Regenerates Figure 4: the running example's source and target schemas
// translated into cardinality-constrained schema graphs, rendered as
// text (nodes plus directed relationships with their prescribed κ).

#include <cstdio>

#include "efes/csg/builder.h"
#include "efes/csg/render_dot.h"
#include "efes/scenario/paper_example.h"

int main() {
  auto scenario = efes::MakePaperExample();
  if (!scenario.ok()) {
    std::fprintf(stderr, "scenario: %s\n",
                 scenario.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "Figure 4: The integration scenario translated into cardinality-\n"
      "constrained schema graphs.\n"
      "(-> attribute relationships, ==> equality/FK relationships;\n"
      " [k] is the prescribed cardinality of the printed direction)\n");

  std::printf("\n--- Target CSG ---\n");
  efes::CsgGraph target = efes::BuildCsgGraph(scenario->target);
  std::printf("%s", target.ToText().c_str());

  std::printf("\n--- Source CSG ---\n");
  efes::CsgGraph source =
      efes::BuildCsgGraph(scenario->sources[0].database);
  std::printf("%s", source.ToText().c_str());

  std::printf(
      "\n--- Graphviz form (render with: dot -Tsvg) ---\n%s",
      efes::RenderCsgDot(target, "Target CSG (Figure 4, right)").c_str());
  return 0;
}
