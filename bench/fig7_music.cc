// Regenerates Figure 7: effort estimates of the music scenario, with
// EFES and the counting baseline calibrated on the *bibliographic*
// domain (cross validation), plus the overall eight-scenario RMSE of
// Section 6.2.

#include <cmath>
#include <cstdio>

#include "efes/experiment/study.h"

int main() {
  auto studies = efes::RunCrossValidatedStudies();
  if (!studies.ok()) {
    std::fprintf(stderr, "study: %s\n", studies.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "Figure 7: Effort estimates (Efes), actual effort (Measured), and\n"
      "baseline estimates (Counting) of the Music scenario.\n\n");
  std::printf("%s", studies->music.ToText().c_str());
  std::printf("\n%s", studies->music.ToBarChart().c_str());
  std::printf(
      "\nPaper reference: rmse(Efes) = 1.05, rmse(Counting) = 1.64 — the\n"
      "difference narrows because the music effort is mapping-dominated.\n");
  std::printf(
      "\nOverall (all eight scenarios): rmse(Efes) = %.3f, "
      "rmse(Counting) = %.3f\n"
      "(paper: 0.84 vs 1.70).\n",
      studies->overall_efes_rmse, studies->overall_counting_rmse);

  // Per-scenario winner tally — the paper reports that in the music
  // domain "EFES outperforms the baseline four times, in three cases
  // baseline does a better job, and in one case the estimate is
  // basically the same".
  int efes_wins = 0;
  int counting_wins = 0;
  int ties = 0;
  for (const efes::ScenarioOutcome& outcome : studies->music.outcomes) {
    if (outcome.measured_total == 0.0) continue;
    double efes_error = std::abs(outcome.efes_total -
                                 outcome.measured_total) /
                        outcome.measured_total;
    double counting_error = std::abs(outcome.counting_total -
                                     outcome.measured_total) /
                            outcome.measured_total;
    if (std::abs(efes_error - counting_error) < 0.05) {
      ++ties;
    } else if (efes_error < counting_error) {
      ++efes_wins;
    } else {
      ++counting_wins;
    }
  }
  std::printf(
      "\nMusic per-scenario comparison: Efes better %d times, Counting "
      "better %d times,\nbasically the same %d time(s).\n",
      efes_wins, counting_wins, ties);
  return 0;
}
