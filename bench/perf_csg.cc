// Performance microbenchmarks for the CSG machinery: cardinality algebra,
// relational-to-CSG conversion, and source-path search.

#include <benchmark/benchmark.h>

#include "bench_json.h"
#include "efes/common/random.h"
#include "efes/csg/builder.h"
#include "efes/csg/path_search.h"
#include "efes/scenario/paper_example.h"

namespace efes {
namespace {

void BM_CardinalityCompose(benchmark::State& state) {
  Cardinality a = Cardinality::Between(1, 3);
  Cardinality b = Cardinality::AtLeast(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Cardinality::Compose(a, b));
  }
}
BENCHMARK(BM_CardinalityCompose);

void BM_CardinalitySubsetCheck(benchmark::State& state) {
  Cardinality a = Cardinality::Between(1, 3);
  Cardinality b = Cardinality::Any();
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.IsSubsetOf(b));
  }
}
BENCHMARK(BM_CardinalitySubsetCheck);

/// Builds the paper-example source database scaled by `albums`.
Database ScaledSource(int64_t albums) {
  PaperExampleOptions options;
  options.album_count = static_cast<size_t>(albums);
  options.multi_artist_albums = static_cast<size_t>(albums / 4);
  options.orphan_artists = static_cast<size_t>(albums / 20);
  options.song_count = static_cast<size_t>(albums * 3 / 2);
  auto scenario = MakePaperExample(options);
  return std::move(scenario->sources[0].database);
}

void BM_BuildCsg(benchmark::State& state) {
  Database db = ScaledSource(state.range(0));
  for (auto _ : state) {
    Csg csg = BuildCsg(db);
    benchmark::DoNotOptimize(csg.graph.nodes().size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(db.TotalRowCount()));
}
BENCHMARK(BM_BuildCsg)->Arg(500)->Arg(2000)->Arg(8000);

void BM_PathSearch(benchmark::State& state) {
  Database db = ScaledSource(1000);
  Csg csg = BuildCsg(db);
  NodeId start = *csg.graph.FindTableNode("albums");
  NodeId end = *csg.graph.FindAttributeNode("artist_credits", "artist");
  for (auto _ : state) {
    benchmark::DoNotOptimize(FindBestPath(csg.graph, start, end));
  }
}
BENCHMARK(BM_PathSearch);

void BM_PathViolationCounting(benchmark::State& state) {
  Database db = ScaledSource(state.range(0));
  Csg csg = BuildCsg(db);
  NodeId start = *csg.graph.FindTableNode("albums");
  NodeId end = *csg.graph.FindAttributeNode("artist_credits", "artist");
  auto best = FindBestPath(csg.graph, start, end);
  for (auto _ : state) {
    benchmark::DoNotOptimize(csg.instance.CountPathViolations(
        csg.graph, best->path, Cardinality::Exactly(1)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PathViolationCounting)->Arg(500)->Arg(2000)->Arg(8000);

/// CSG build + path search; the CSG layer is not counter-instrumented,
/// so the workload records its own size gauges and build latency.
void JsonLineWorkload() {
  Database db = ScaledSource(2000);
  MetricsRegistry& metrics = MetricsRegistry::Global();
  const Clock& clock = *Clock::Default();
  const int64_t build_start = clock.NowNanos();
  Csg csg = BuildCsg(db);
  metrics.GetHistogram("csg.build.ms")
      .Observe(static_cast<double>(clock.NowNanos() - build_start) / 1e6);
  metrics.GetGauge("csg.build.nodes")
      .Set(static_cast<double>(csg.graph.nodes().size()));
  NodeId start = *csg.graph.FindTableNode("albums");
  NodeId end = *csg.graph.FindAttributeNode("artist_credits", "artist");
  auto best = FindBestPath(csg.graph, start, end);
  size_t violations = csg.instance.CountPathViolations(
      csg.graph, best->path, Cardinality::Exactly(1));
  metrics.GetCounter("csg.path.violations").Increment(violations);
}

}  // namespace
}  // namespace efes

int main(int argc, char** argv) {
  return efes::bench::BenchMain(argc, argv, "perf_csg",
                                efes::JsonLineWorkload);
}
