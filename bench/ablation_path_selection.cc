// Ablation: most-concise path selection vs. plain shortest-path (the
// Section 4.1 design choice). On a schema where a longer source path
// carries a tighter cardinality, shortest-path matching infers a looser
// bound and either misses conflicts or cannot rule them out statically;
// the paper's conciseness rule picks the path whose inferred κ is a
// proper subset. We also verify both rules agree on the running example
// (where the shortest candidate happens to be the most concise too).

#include <cstdio>

#include "efes/csg/builder.h"
#include "efes/csg/path_search.h"
#include "efes/scenario/paper_example.h"

namespace {

/// A diamond: start has a direct optional link to end (0..*) and a
/// two-hop mandatory route (1 ∘ 1 = 1).
struct Diamond {
  efes::CsgGraph graph;
  efes::NodeId start, mid, end;

  Diamond() {
    start = graph.AddTableNode("orders");
    mid = graph.AddAttributeNode("orders", "customer", efes::DataType::kText);
    end = graph.AddAttributeNode("customers", "name", efes::DataType::kText);
    graph.AddRelationshipPair(start, end, efes::CsgEdgeKind::kAttribute,
                              efes::Cardinality::Any(),
                              efes::Cardinality::Any());
    graph.AddRelationshipPair(start, mid, efes::CsgEdgeKind::kAttribute,
                              efes::Cardinality::Exactly(1),
                              efes::Cardinality::AtLeast(1));
    graph.AddRelationshipPair(mid, end, efes::CsgEdgeKind::kEquality,
                              efes::Cardinality::Exactly(1),
                              efes::Cardinality::Optional());
  }
};

}  // namespace

int main() {
  std::printf(
      "Ablation: path selection rule (Section 4.1 conciseness vs. plain\n"
      "shortest path)\n\n");

  Diamond diamond;
  std::vector<efes::PathMatch> candidates =
      efes::EnumeratePaths(diamond.graph, diamond.start, diamond.end);
  std::printf("Synthetic diamond, %zu candidate source relationships:\n",
              candidates.size());
  for (const efes::PathMatch& candidate : candidates) {
    std::printf("  %-45s inferred k = %s\n",
                efes::DescribePath(diamond.graph, candidate.path).c_str(),
                candidate.inferred.ToString().c_str());
  }
  const efes::PathMatch& shortest = candidates.front();
  auto concise = efes::SelectMostConcise(candidates);
  std::printf(
      "\n  shortest-path rule picks:  %s (k = %s)\n"
      "  conciseness rule picks:    %s (k = %s)\n",
      efes::DescribePath(diamond.graph, shortest.path).c_str(),
      shortest.inferred.ToString().c_str(),
      efes::DescribePath(diamond.graph, concise->path).c_str(),
      concise->inferred.ToString().c_str());
  std::printf(
      "\n  Against a target constraint k = 1, the shortest-path inference\n"
      "  (0..*) forces an instance scan and reports spurious conflict\n"
      "  potential; the concise inference (1) proves the fit statically.\n");

  // Running example: both rules agree (the short path is also concise).
  auto scenario = efes::MakePaperExample();
  if (!scenario.ok()) return 1;
  efes::Csg source = efes::BuildCsg(scenario->sources[0].database);
  efes::NodeId albums = *source.graph.FindTableNode("albums");
  efes::NodeId artist =
      *source.graph.FindAttributeNode("artist_credits", "artist");
  std::vector<efes::PathMatch> example_candidates =
      efes::EnumeratePaths(source.graph, albums, artist);
  auto example_best = efes::SelectMostConcise(example_candidates);
  std::printf(
      "\nRunning example (albums -> artist): %zu candidates; conciseness\n"
      "selects %s\n(matching Section 4.1: both candidate paths infer "
      "0..*, the shorter wins\nby Occam's razor).\n",
      example_candidates.size(),
      efes::DescribePath(source.graph, example_best->path).c_str());
  return 0;
}
