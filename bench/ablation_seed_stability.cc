// Ablation: robustness of the Figure 6/7 outcome to the simulated
// practitioner's noise seed. The headline claim — EFES beats attribute
// counting in both domains — must not hinge on one lucky draw of the
// ±15% per-item human-variance noise. Five seeds, full cross-validated
// protocol each.

#include <cstdio>

#include <cmath>
#include <vector>

#include "efes/common/text_table.h"
#include "efes/experiment/study.h"

int main() {
  const uint64_t kSeeds[] = {1234, 99, 2718, 31415, 777};
  std::printf(
      "Ablation: ground-truth noise-seed stability of the Section 6.2\n"
      "cross-validated comparison (5 independent practitioner "
      "simulations).\n\n");

  efes::TextTable table;
  table.SetHeader({"Seed", "Biblio Efes", "Biblio Counting", "Music Efes",
                   "Music Counting", "Overall Efes", "Overall Counting"});
  int efes_wins = 0;
  std::vector<double> overall_ratios;
  for (uint64_t seed : kSeeds) {
    auto studies = efes::RunCrossValidatedStudies(seed);
    if (!studies.ok()) {
      std::fprintf(stderr, "study failed for seed %llu: %s\n",
                   static_cast<unsigned long long>(seed),
                   studies.status().ToString().c_str());
      return 1;
    }
    auto fmt = [](double v) {
      char buffer[16];
      std::snprintf(buffer, sizeof(buffer), "%.3f", v);
      return std::string(buffer);
    };
    table.AddRow({std::to_string(seed),
                  fmt(studies->bibliographic.efes_rmse),
                  fmt(studies->bibliographic.counting_rmse),
                  fmt(studies->music.efes_rmse),
                  fmt(studies->music.counting_rmse),
                  fmt(studies->overall_efes_rmse),
                  fmt(studies->overall_counting_rmse)});
    if (studies->overall_efes_rmse < studies->overall_counting_rmse) {
      ++efes_wins;
    }
    overall_ratios.push_back(studies->overall_counting_rmse /
                             studies->overall_efes_rmse);
  }
  std::printf("%s", table.ToString().c_str());

  double mean_ratio = 0.0;
  for (double ratio : overall_ratios) mean_ratio += ratio;
  mean_ratio /= static_cast<double>(overall_ratios.size());
  double variance = 0.0;
  for (double ratio : overall_ratios) {
    variance += (ratio - mean_ratio) * (ratio - mean_ratio);
  }
  variance /= static_cast<double>(overall_ratios.size());
  std::printf(
      "\nEFES wins overall in %d of %zu seeds; improvement factor "
      "%.2fx +/- %.2f.\n",
      efes_wins, std::size(kSeeds), mean_ratio, std::sqrt(variance));
  return 0;
}
