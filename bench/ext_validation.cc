// Extension: estimation-vs-execution validation — both sides of the
// paper's Figure 1 in one binary. The estimation side predicts task
// repetition counts without integrating; the production side (the
// integration executor) then actually performs the integration and
// counts the work it did. The two columns must agree.

#include <cstdio>

#include "efes/execute/integration_executor.h"
#include "efes/experiment/default_pipeline.h"
#include "efes/common/text_table.h"
#include "efes/scenario/bibliographic.h"
#include "efes/scenario/paper_example.h"

namespace {

double PlannedRepetitions(const efes::EstimationResult& result,
                          efes::TaskType type) {
  double total = 0.0;
  for (const efes::TaskEstimate& task : result.estimate.tasks) {
    if (task.task.type == type) {
      total += task.task.Param(efes::task_params::kRepetitions, 0.0);
    }
  }
  return total;
}

int Validate(const efes::IntegrationScenario& scenario) {
  efes::EfesEngine engine = efes::MakeDefaultEngine();
  auto estimation =
      engine.Run(scenario, efes::ExpectedQuality::kHighQuality);
  if (!estimation.ok()) {
    std::fprintf(stderr, "estimation: %s\n",
                 estimation.status().ToString().c_str());
    return 1;
  }
  efes::IntegrationExecutor executor;
  efes::ExecutionReport report;
  auto integrated = executor.Execute(scenario, &report);
  if (!integrated.ok()) {
    std::fprintf(stderr, "execution: %s\n",
                 integrated.status().ToString().c_str());
    return 1;
  }

  std::printf("--- %s ---\n", scenario.name.c_str());
  efes::TextTable table;
  table.SetHeader({"Work item", "Estimated (phase 2 plan)",
                   "Executed (production side)"});
  table.AddRow({"Values merged",
                std::to_string(static_cast<long long>(PlannedRepetitions(
                    *estimation, efes::TaskType::kMergeValues))),
                std::to_string(report.values_merged)});
  table.AddRow({"Enclosing tuples created",
                std::to_string(static_cast<long long>(PlannedRepetitions(
                    *estimation, efes::TaskType::kAddTuples))),
                std::to_string(report.tuples_added)});
  table.AddRow({"Mandatory values filled",
                std::to_string(static_cast<long long>(PlannedRepetitions(
                    *estimation, efes::TaskType::kAddMissingValues))),
                std::to_string(report.values_added)});
  std::printf("%s", table.ToString().c_str());
  std::printf("Integrated instance valid: %s\n\n",
              integrated->SatisfiesConstraints() ? "yes" : "NO");
  return 0;
}

}  // namespace

int main() {
  std::printf(
      "Extension: executing the integration to validate the estimate\n"
      "(Figure 1's estimation side vs. production side)\n\n");
  auto example = efes::MakePaperExample();
  if (!example.ok()) return 1;
  if (int rc = Validate(*example); rc != 0) return rc;

  efes::BiblioOptions options;
  options.publication_count = 300;
  auto biblio = efes::MakeBiblioScenario(efes::BiblioSchemaId::kS1,
                                         efes::BiblioSchemaId::kS2,
                                         options);
  if (!biblio.ok()) return 1;
  int rc = Validate(*biblio);
  std::printf(
      "Note on s1-s2: the executor populates entity tables with the\n"
      "INSERT-DISTINCT idiom (deduplicate while inserting, skip entities\n"
      "with no value), so the planner's per-violation repairs for the\n"
      "venues table never arise at execution time. Both are valid\n"
      "strategies; the planner prices the repair-based one. On the\n"
      "running example, where the strategy is forced, estimate and\n"
      "execution agree exactly.\n");
  return rc;
}
