// Regenerates Figure 6: effort estimates (EFES), actual effort
// (Measured), and baseline estimates (Counting) of the bibliographic
// scenario, with the Mapping / Cleaning (Structure) / Cleaning (Values)
// breakdown and the root-mean-square errors of Section 6.2.
//
// EFES and the counting baseline are calibrated on the *music* domain
// (cross validation), exactly as in the paper.

#include <cstdio>

#include "efes/experiment/study.h"

int main() {
  auto studies = efes::RunCrossValidatedStudies();
  if (!studies.ok()) {
    std::fprintf(stderr, "study: %s\n", studies.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "Figure 6: Effort estimates (EFES), actual effort (Measured), and\n"
      "baseline estimates (Counting) of the Bibliographic scenario.\n\n");
  std::printf("%s", studies->bibliographic.ToText().c_str());
  std::printf("\n%s", studies->bibliographic.ToBarChart().c_str());
  std::printf(
      "\nPaper reference: rmse(Efes) = 0.47, rmse(Counting) = 1.90 —\n"
      "\"an improvement in the effort estimation by a factor of four\".\n"
      "Reproduced factor: %.2fx.\n",
      studies->bibliographic.counting_rmse /
          studies->bibliographic.efes_rmse);
  return 0;
}
