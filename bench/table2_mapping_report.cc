// Regenerates Table 2: the mapping complexity report of the running
// example scenario (Figure 2).

#include <cstdio>

#include "efes/mapping/mapping_module.h"
#include "efes/scenario/paper_example.h"

int main() {
  auto scenario = efes::MakePaperExample();
  if (!scenario.ok()) {
    std::fprintf(stderr, "scenario: %s\n",
                 scenario.status().ToString().c_str());
    return 1;
  }
  efes::MappingModule module;
  auto report = module.AssessComplexity(*scenario);
  if (!report.ok()) {
    std::fprintf(stderr, "detector: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "Table 2: Mapping complexity report of the scenario in Figure 2\n\n");
  std::printf("%s", (*report)->ToText().c_str());
  return 0;
}
