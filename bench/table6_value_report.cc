// Regenerates Table 6: the complexity report of the value fit detector on
// the running example (the length -> duration heterogeneity).

#include <cstdio>

#include "efes/scenario/paper_example.h"
#include "efes/values/value_module.h"

int main() {
  auto scenario = efes::MakePaperExample();
  if (!scenario.ok()) {
    std::fprintf(stderr, "scenario: %s\n",
                 scenario.status().ToString().c_str());
    return 1;
  }
  efes::ValueModule module;
  auto report = module.AssessComplexity(*scenario);
  if (!report.ok()) {
    std::fprintf(stderr, "detector: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("Table 6: Complexity report of the value fit detector\n\n");
  std::printf("%s", (*report)->ToText().c_str());
  return 0;
}
