// Regenerates Table 1: "Tasks and effort per attribute from [14]" — the
// configuration of the attribute-counting baseline.

#include <cstdio>

#include "efes/baseline/counting_estimator.h"
#include "efes/common/string_util.h"
#include "efes/common/text_table.h"

int main() {
  std::printf("Table 1: Tasks and effort per attribute from Harden [14]\n\n");
  efes::TextTable table;
  table.SetHeader({"Task", "Hours per attribute"});
  double total = 0.0;
  for (const efes::HardenTaskWeight& weight : efes::HardenTaskWeights()) {
    table.AddRow({weight.task,
                  efes::FormatDouble(weight.hours_per_attribute, 4)});
    total += weight.hours_per_attribute;
  }
  table.AddSeparator();
  table.AddRow({"Total", efes::FormatDouble(total, 4)});
  std::printf("%s\n", table.ToString().c_str());
  std::printf("=> %s minutes of work per source attribute.\n",
              efes::FormatDouble(efes::HardenMinutesPerAttribute(), 6)
                  .c_str());
  return 0;
}
