// Ablation: the value-fit threshold. Section 5.1: "we found 0.9 to be a
// good threshold to separate seamlessly integrating attribute pairs from
// those that had notably different characteristics." This sweep shows
// how the number of detected heterogeneities across both case-study
// domains responds to the threshold: a plateau around 0.9 separates the
// genuinely mismatched pairs from sampling noise.

#include <cstdio>

#include "efes/common/text_table.h"
#include "efes/scenario/bibliographic.h"
#include "efes/scenario/music.h"
#include "efes/values/value_module.h"

namespace {

size_t CountHeterogeneities(
    const std::vector<efes::IntegrationScenario>& scenarios,
    double threshold) {
  efes::ValueFitOptions options;
  options.fit_threshold = threshold;
  efes::ValueModule module(options);
  size_t total = 0;
  for (const efes::IntegrationScenario& scenario : scenarios) {
    auto report = module.AssessComplexity(scenario);
    if (report.ok()) total += (*report)->ProblemCount();
  }
  return total;
}

}  // namespace

int main() {
  auto biblio = efes::MakeAllBiblioScenarios();
  auto music = efes::MakeAllMusicScenarios();
  if (!biblio.ok() || !music.ok()) {
    std::fprintf(stderr, "scenario construction failed\n");
    return 1;
  }

  std::printf(
      "Ablation: value-fit threshold sweep (Section 5.1's 0.9)\n"
      "Detected value heterogeneities across the four scenarios of each\n"
      "domain. Identity scenarios contribute only false positives, so a\n"
      "good threshold keeps the counts stable around the true mismatch\n"
      "count while 0.95+ starts flagging same-population sampling noise.\n\n");

  efes::TextTable table;
  table.SetHeader({"Threshold", "Bibliographic findings", "Music findings"});
  for (double threshold :
       {0.50, 0.60, 0.70, 0.80, 0.85, 0.90, 0.95, 0.99}) {
    table.AddRow({std::to_string(threshold).substr(0, 4),
                  std::to_string(CountHeterogeneities(*biblio, threshold)),
                  std::to_string(CountHeterogeneities(*music, threshold))});
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}
