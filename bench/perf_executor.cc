// Performance benchmarks for the integration executor (the production
// side): materialization + repair throughput over scenario size.

#include <benchmark/benchmark.h>

#include "bench_json.h"
#include "efes/execute/integration_executor.h"
#include "efes/scenario/paper_example.h"

namespace efes {
namespace {

IntegrationScenario ScaledScenario(int64_t albums) {
  PaperExampleOptions options;
  options.album_count = static_cast<size_t>(albums);
  options.multi_artist_albums = static_cast<size_t>(albums / 4);
  options.orphan_artists = static_cast<size_t>(albums / 20);
  options.song_count = static_cast<size_t>(albums * 3 / 2);
  auto scenario = MakePaperExample(options);
  return std::move(*scenario);
}

void BM_ExecuteHighQuality(benchmark::State& state) {
  IntegrationScenario scenario = ScaledScenario(state.range(0));
  IntegrationExecutor executor;
  for (auto _ : state) {
    ExecutionReport report;
    auto result = executor.Execute(scenario, &report);
    benchmark::DoNotOptimize(result->TotalRowCount());
  }
  int64_t tuples = 0;
  for (const SourceBinding& source : scenario.sources) {
    tuples += static_cast<int64_t>(source.database.TotalRowCount());
  }
  state.SetItemsProcessed(state.iterations() * tuples);
}
BENCHMARK(BM_ExecuteHighQuality)->Arg(500)->Arg(2000)->Arg(8000)
    ->Unit(benchmark::kMillisecond);

void BM_ExecuteLowEffort(benchmark::State& state) {
  IntegrationScenario scenario = ScaledScenario(state.range(0));
  IntegrationExecutor::Options options;
  options.quality = ExpectedQuality::kLowEffort;
  IntegrationExecutor executor(options);
  for (auto _ : state) {
    ExecutionReport report;
    auto result = executor.Execute(scenario, &report);
    benchmark::DoNotOptimize(result->TotalRowCount());
  }
}
BENCHMARK(BM_ExecuteLowEffort)->Arg(2000)->Unit(benchmark::kMillisecond);

/// One high-quality integration; the emitted counters are the
/// execute.run.* work counts.
void JsonLineWorkload() {
  IntegrationScenario scenario = ScaledScenario(2000);
  IntegrationExecutor executor;
  ExecutionReport report;
  auto result = executor.Execute(scenario, &report);
  benchmark::DoNotOptimize(result->TotalRowCount());
}

}  // namespace
}  // namespace efes

int main(int argc, char** argv) {
  return efes::bench::BenchMain(argc, argv, "perf_executor",
                                efes::JsonLineWorkload);
}
