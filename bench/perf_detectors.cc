// End-to-end detector benchmarks, backing the Section 6.2 runtime claim:
// "EFES relies on simple SQL queries only for the analysis of the data
// and completes within seconds for databases with thousands of tuples."

#include <benchmark/benchmark.h>

#include "bench_json.h"
#include "efes/experiment/default_pipeline.h"
#include "efes/scenario/paper_example.h"

namespace efes {
namespace {

IntegrationScenario ScaledScenario(int64_t albums) {
  PaperExampleOptions options;
  options.album_count = static_cast<size_t>(albums);
  options.multi_artist_albums = static_cast<size_t>(albums / 4);
  options.orphan_artists = static_cast<size_t>(albums / 20);
  options.song_count = static_cast<size_t>(albums * 3 / 2);
  auto scenario = MakePaperExample(options);
  return std::move(*scenario);
}

void BM_FullEstimation(benchmark::State& state) {
  IntegrationScenario scenario = ScaledScenario(state.range(0));
  EfesEngine engine = MakeDefaultEngine();
  ExecutionSettings settings;
  for (auto _ : state) {
    auto result =
        engine.Run(scenario, ExpectedQuality::kHighQuality, settings);
    benchmark::DoNotOptimize(result->estimate.TotalMinutes());
  }
  int64_t tuples = 0;
  for (const SourceBinding& source : scenario.sources) {
    tuples += static_cast<int64_t>(source.database.TotalRowCount());
  }
  state.SetItemsProcessed(state.iterations() * tuples);
  state.counters["source_tuples"] = static_cast<double>(tuples);
}
BENCHMARK(BM_FullEstimation)->Arg(500)->Arg(2000)->Arg(8000)
    ->Unit(benchmark::kMillisecond);

void BM_ComplexityAssessmentOnly(benchmark::State& state) {
  IntegrationScenario scenario = ScaledScenario(state.range(0));
  EfesEngine engine = MakeDefaultEngine();
  for (auto _ : state) {
    auto reports = engine.AssessComplexity(scenario);
    benchmark::DoNotOptimize(reports->size());
  }
}
BENCHMARK(BM_ComplexityAssessmentOnly)->Arg(2000)
    ->Unit(benchmark::kMillisecond);

/// One full estimation run; the emitted counters cover the engine,
/// profiling, and per-module task planning.
void JsonLineWorkload() {
  IntegrationScenario scenario = ScaledScenario(2000);
  EfesEngine engine = MakeDefaultEngine();
  auto result = engine.Run(scenario, ExpectedQuality::kHighQuality);
  benchmark::DoNotOptimize(result->estimate.TotalMinutes());
}

}  // namespace
}  // namespace efes

int main(int argc, char** argv) {
  return efes::bench::BenchMain(argc, argv, "perf_detectors",
                                efes::JsonLineWorkload);
}
