// Shared main()-harness for the perf_* benches: runs the registered
// google-benchmark suites as before, then runs one representative
// workload against a zeroed telemetry registry and prints a single
// machine-readable line
//
//   {"bench": <name>, "wall_ms": ..., "counters": {...}}
//
// on stdout, so `build/bench/perf_x | tail -1 > BENCH_x.json` yields a
// consumable metrics record.

#ifndef EFES_BENCH_BENCH_JSON_H_
#define EFES_BENCH_BENCH_JSON_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <functional>
#include <string_view>

#include "efes/telemetry/clock.h"
#include "efes/telemetry/metrics.h"
#include "efes/telemetry/report.h"

namespace efes {
namespace bench {

inline int BenchMain(int argc, char** argv, std::string_view name,
                     const std::function<void()>& workload) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();

  MetricsRegistry::Global().Reset();
  const Clock& clock = *Clock::Default();
  const int64_t start_nanos = clock.NowNanos();
  workload();
  const double wall_ms =
      static_cast<double>(clock.NowNanos() - start_nanos) / 1e6;
  std::printf("%s\n", BenchJsonLine(name, wall_ms,
                                    MetricsRegistry::Global().Snapshot())
                          .c_str());
  return 0;
}

}  // namespace bench
}  // namespace efes

#endif  // EFES_BENCH_BENCH_JSON_H_
