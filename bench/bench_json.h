// Shared main()-harness for the perf_* benches: runs the registered
// google-benchmark suites as before, then runs one representative
// workload against a zeroed telemetry registry and prints a single
// machine-readable line
//
//   {"bench": <name>, "wall_ms": ..., "threads": ..., "counters": {...}}
//
// on stdout, so `build/bench/perf_x | tail -1 > BENCH_x.json` yields a
// consumable metrics record. `--threads=<n>` (stripped before
// google-benchmark sees the argv) pins the parallel-phase worker count;
// the emitted `threads` field records what the workload actually used.

#ifndef EFES_BENCH_BENCH_JSON_H_
#define EFES_BENCH_BENCH_JSON_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string_view>

#include "efes/common/parallel.h"
#include "efes/telemetry/clock.h"
#include "efes/telemetry/metrics.h"
#include "efes/telemetry/report.h"

namespace efes {
namespace bench {

/// Removes `--threads=<n>` from argv (google-benchmark rejects unknown
/// flags) and applies it as the pool-size override.
inline void ApplyThreadsFlag(int* argc, char** argv) {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      char* end = nullptr;
      unsigned long threads = std::strtoul(argv[i] + 10, &end, 10);
      if (end != argv[i] + 10 && *end == '\0' && threads > 0) {
        SetThreadCountOverride(static_cast<size_t>(threads));
        continue;
      }
    }
    argv[out++] = argv[i];
  }
  *argc = out;
}

inline int BenchMain(int argc, char** argv, std::string_view name,
                     const std::function<void()>& workload) {
  ApplyThreadsFlag(&argc, argv);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();

  MetricsRegistry::Global().Reset();
  const Clock& clock = *Clock::Default();
  const int64_t start_nanos = clock.NowNanos();
  workload();
  const double wall_ms =
      static_cast<double>(clock.NowNanos() - start_nanos) / 1e6;
  std::printf("%s\n", BenchJsonLine(name, wall_ms, ConfiguredThreadCount(),
                                    MetricsRegistry::Global().Snapshot())
                          .c_str());
  return 0;
}

}  // namespace bench
}  // namespace efes

#endif  // EFES_BENCH_BENCH_JSON_H_
