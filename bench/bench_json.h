// Shared main()-harness for the perf_* benches: runs the registered
// google-benchmark suites as before, then runs one representative
// workload twice — cold (fresh profile cache) and warm (same cache) —
// against a zeroed telemetry registry and prints one machine-readable
// line per run on stdout:
//
//   {"bench": <name>, "wall_ms": ..., "threads": ..., "cache": "cold",
//    "counters": {...}}
//   {"bench": <name>, "wall_ms": ..., "threads": ..., "cache": "warm",
//    "cold_wall_ms": ..., "speedup": ..., "cache_hit_rate": ...,
//    "counters": {...}}
//
// so `build/bench/perf_x | tail -1 > BENCH_x.json` yields the warm-run
// record with the cold baseline and speedup embedded. `--threads=<n>`
// (stripped before google-benchmark sees the argv) pins the
// parallel-phase worker count; the emitted `threads` field records what
// the workload actually used.

#ifndef EFES_BENCH_BENCH_JSON_H_
#define EFES_BENCH_BENCH_JSON_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <functional>
#include <string_view>
#include <vector>

#include "efes/cache/profile_cache.h"
#include "efes/common/flags.h"
#include "efes/common/parallel.h"
#include "efes/common/clock.h"
#include "efes/common/metrics.h"
#include "efes/telemetry/report.h"

namespace efes {
namespace bench {

/// Removes `--threads=<n>` from argv (google-benchmark rejects unknown
/// flags) and applies it as the pool-size override.
inline void ApplyThreadsFlag(int* argc, char** argv) {
  static size_t threads = 0;
  FlagSet flags;
  flags.AddUint("threads", "<n>", "worker threads for parallel phases",
                &threads);
  flags.ParseArgvKeepUnknown(argc, argv);
  if (threads > 0) SetThreadCountOverride(threads);
}

/// Times one `workload()` call against a zeroed registry.
inline double TimeWorkloadMs(const std::function<void()>& workload) {
  MetricsRegistry::Global().Reset();
  const Clock& clock = *Clock::Default();
  const int64_t start_nanos = clock.NowNanos();
  workload();
  return static_cast<double>(clock.NowNanos() - start_nanos) / 1e6;
}

inline int BenchMain(int argc, char** argv, std::string_view name,
                     const std::function<void()>& workload) {
  ApplyThreadsFlag(&argc, argv);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();

  // Cold/warm pair through one profile cache: the cold run populates it,
  // the warm run replays the same deterministic workload against it. The
  // ratio is the bench's incremental re-estimation speedup.
  ProfileCache cache;
  ScopedProfileCache scoped(&cache);

  const double cold_ms = TimeWorkloadMs(workload);
  std::printf("%s\n",
              BenchJsonLine(name, cold_ms, ConfiguredThreadCount(),
                            {BenchJsonField::Text("cache", "cold")},
                            MetricsRegistry::Global().Snapshot())
                  .c_str());

  const double warm_ms = TimeWorkloadMs(workload);
  const MetricsSnapshot warm = MetricsRegistry::Global().Snapshot();
  uint64_t hits = 0;
  uint64_t misses = 0;
  for (const auto& counter : warm.counters) {
    if (counter.name == "cache.hits") hits = counter.value;
    if (counter.name == "cache.misses") misses = counter.value;
  }
  const double hit_rate =
      hits + misses == 0
          ? 0.0
          : static_cast<double>(hits) / static_cast<double>(hits + misses);
  std::vector<BenchJsonField> extras = {
      BenchJsonField::Text("cache", "warm"),
      BenchJsonField::Number("cold_wall_ms", cold_ms),
      BenchJsonField::Number("speedup", warm_ms > 0.0 ? cold_ms / warm_ms
                                                      : 0.0),
      BenchJsonField::Number("cache_hit_rate", hit_rate),
  };
  std::printf("%s\n", BenchJsonLine(name, warm_ms, ConfiguredThreadCount(),
                                    extras, warm)
                          .c_str());
  return 0;
}

}  // namespace bench
}  // namespace efes

#endif  // EFES_BENCH_BENCH_JSON_H_
