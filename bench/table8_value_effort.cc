// Regenerates Table 8: "Value transformation tasks and their estimated
// effort" for the running example.
//
// The paper reports 15 minutes for converting 274,523 values (260,923
// distinct) — evidence that its practitioners priced the ms -> "m:ss"
// conversion as a *script*, although Table 9's literal function
// (0.25 * #dist-vals) would yield tens of thousands of minutes. Our value
// module resolves this by classifying conversions as systematic
// (rule-per-format script) vs irregular (per-distinct-value mapping);
// the length -> duration conversion is systematic, so Table 9's under-120
// branch applies and the estimate lands in the same order of magnitude as
// the paper's.

#include <cstdio>

#include "efes/common/string_util.h"
#include "efes/common/text_table.h"
#include "efes/core/effort_model.h"
#include "efes/scenario/paper_example.h"
#include "efes/values/value_module.h"

int main() {
  auto scenario = efes::MakePaperExample();
  if (!scenario.ok()) {
    std::fprintf(stderr, "scenario: %s\n",
                 scenario.status().ToString().c_str());
    return 1;
  }
  efes::ValueModule module;
  auto report = module.AssessComplexity(*scenario);
  if (!report.ok()) {
    std::fprintf(stderr, "detector: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  efes::ExecutionSettings settings;
  auto tasks = module.PlanTasks(**report,
                                efes::ExpectedQuality::kHighQuality,
                                settings);
  if (!tasks.ok()) {
    std::fprintf(stderr, "planner: %s\n", tasks.status().ToString().c_str());
    return 1;
  }

  const auto& value_report =
      static_cast<const efes::ValueComplexityReport&>(**report);
  efes::EffortModel model = efes::EffortModel::PaperDefault();
  std::printf(
      "Table 8: Value transformation tasks and their estimated effort\n\n");
  efes::TextTable table;
  table.SetHeader({"Task", "Parameters", "Effort"});
  double total = 0.0;
  for (size_t i = 0; i < tasks->size(); ++i) {
    const efes::Task& task = (*tasks)[i];
    double minutes = model.EstimateMinutes(task, settings);
    total += minutes;
    const efes::ValueHeterogeneity& h = value_report.heterogeneities()[i];
    std::string parameters = std::to_string(h.source_values) + " values, " +
                             std::to_string(h.source_distinct_values) +
                             " distinct values" +
                             (h.systematic ? " (systematic, " +
                                                 std::to_string(
                                                     h.source_pattern_count) +
                                                 " format rule(s))"
                                           : " (irregular)");
    table.AddRow({std::string(efes::TaskTypeToString(task.type)) + " (" +
                      task.subject + ")",
                  parameters, efes::FormatDouble(minutes, 8) + " mins"});
  }
  table.AddSeparator();
  table.AddRow({"Total", "", efes::FormatDouble(total, 8) + " mins"});
  std::printf("%s", table.ToString().c_str());
  return 0;
}
