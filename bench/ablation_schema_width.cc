// Ablation: what happens to each estimator when the source schema grows
// wider without the integration getting harder? We extend the normalized
// MusicBrainz-style source with 18 auxiliary lookup relations (54 extra
// attributes) that carry data but no correspondences — realistic schema
// noise. The true effort (simulated practitioner) moves a little (more
// schema to explore); EFES moves a little (same detected problems); the
// attribute-counting baseline scales linearly with the noise. This is the
// paper's core criticism of count-based estimation, isolated.

#include <cstdio>

#include "efes/baseline/counting_estimator.h"
#include "efes/common/string_util.h"
#include "efes/common/text_table.h"
#include "efes/experiment/default_pipeline.h"
#include "efes/scenario/ground_truth.h"
#include "efes/scenario/music.h"

namespace {

struct Row {
  size_t attributes = 0;
  double measured = 0.0;
  double efes = 0.0;
  double counting = 0.0;
};

efes::Result<Row> Measure(bool extended) {
  efes::MusicOptions options;
  options.disc_count = 200;
  options.extended_lookups = extended;
  EFES_ASSIGN_OR_RETURN(efes::IntegrationScenario scenario,
                        efes::MakeMusicScenario(
                            efes::MusicSchemaId::kMusicbrainz,
                            efes::MusicSchemaId::kDiscogs, options));
  Row row;
  row.attributes = scenario.TotalSourceAttributeCount();
  EFES_ASSIGN_OR_RETURN(
      efes::MeasuredEffort measured,
      efes::SimulateMeasuredEffort(scenario,
                                   efes::ExpectedQuality::kHighQuality,
                                   1234));
  row.measured = measured.total();
  efes::EfesEngine engine = efes::MakeDefaultEngine();
  EFES_ASSIGN_OR_RETURN(
      efes::EstimationResult result,
      engine.Run(scenario, efes::ExpectedQuality::kHighQuality));
  row.efes = result.estimate.TotalMinutes();
  // A counting baseline calibrated on the *base* scenario: rate such
  // that it is exact there, to expose the drift in isolation.
  row.counting = 0.0;  // filled by the caller once the base rate is known
  return row;
}

}  // namespace

int main() {
  auto base = Measure(false);
  auto extended = Measure(true);
  if (!base.ok() || !extended.ok()) {
    std::fprintf(stderr, "measurement failed\n");
    return 1;
  }
  double rate = base->measured / static_cast<double>(base->attributes);
  base->counting = rate * static_cast<double>(base->attributes);
  extended->counting = rate * static_cast<double>(extended->attributes);

  std::printf(
      "Ablation: schema width vs. estimator stability (m1-d2, high "
      "quality).\nThe extended source adds 18 lookup relations that do "
      "not participate in\nthe integration. Counting is calibrated to be "
      "exact on the base schema.\n\n");
  efes::TextTable table;
  table.SetHeader({"Source schema", "Source attrs", "Measured [min]",
                   "Efes (uncalibrated) [min]", "Counting [min]"});
  auto add = [&](const char* label, const Row& row) {
    table.AddRow({label, std::to_string(row.attributes),
                  efes::FormatDouble(row.measured, 4),
                  efes::FormatDouble(row.efes, 4),
                  efes::FormatDouble(row.counting, 4)});
  };
  add("base (12 relations)", *base);
  add("extended (30 relations)", *extended);
  std::printf("%s", table.ToString().c_str());

  std::printf(
      "\nDrift from schema noise: measured %+.0f%%, Efes %+.0f%%, "
      "counting %+.0f%%.\n",
      (extended->measured / base->measured - 1.0) * 100.0,
      (extended->efes / base->efes - 1.0) * 100.0,
      (extended->counting / base->counting - 1.0) * 100.0);
  return 0;
}
