// Regenerates Table 9: "Effort calculation functions used for the
// experiments" — the default effort model configuration.

#include <cstdio>

#include "efes/common/text_table.h"
#include "efes/core/effort_model.h"

int main() {
  std::printf(
      "Table 9: Effort calculation functions used for the experiments\n\n");
  efes::TextTable table;
  table.SetHeader({"Task", "Effort function (mins)"});
  const efes::TaskType kTypes[] = {
      efes::TaskType::kAggregateValues,
      efes::TaskType::kConvertValues,
      efes::TaskType::kGeneralizeValues,
      efes::TaskType::kRefineValues,
      efes::TaskType::kDropValues,
      efes::TaskType::kAddValues,
      efes::TaskType::kCreateEnclosingTuples,
      efes::TaskType::kDropDetachedValues,
      efes::TaskType::kRejectTuples,
      efes::TaskType::kKeepAnyValue,
      efes::TaskType::kAddTuples,
      efes::TaskType::kAggregateTuples,
      efes::TaskType::kDeleteDanglingValues,
      efes::TaskType::kAddReferencedValues,
      efes::TaskType::kDeleteDanglingTuples,
      efes::TaskType::kUnlinkAllButOneTuple,
      efes::TaskType::kAddMissingValues,
      efes::TaskType::kMergeValues,
      efes::TaskType::kSetValuesToNull,
      efes::TaskType::kWriteMapping,
  };
  for (efes::TaskType type : kTypes) {
    table.AddRow({std::string(efes::TaskTypeToString(type)),
                  efes::EffortModel::DescribeDefaultFunction(type)});
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}
