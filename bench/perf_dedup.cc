// Performance of the dedup module's blocking scan and of full fuzzed
// estimation runs, scaled over the fuzzer's entity count. The dedup
// detector reads full key columns (not samples) to block records, so
// this suite bounds the cost of that scan as sources grow.

#include <benchmark/benchmark.h>

#include "bench_json.h"
#include "efes/dedup/dedup_module.h"
#include "efes/experiment/default_pipeline.h"
#include "efes/scenario/fuzzer.h"

namespace efes {
namespace {

FuzzedScenario ScaledFuzz(int64_t entities, uint64_t seed = 9) {
  FuzzOptions options;
  options.min_entities = static_cast<size_t>(entities);
  options.max_entities = static_cast<size_t>(entities);
  options.min_sources = 3;
  options.max_sources = 3;
  auto fuzzed = FuzzScenario(seed, options);
  return std::move(*fuzzed);
}

void BM_DedupAssessment(benchmark::State& state) {
  FuzzedScenario fuzzed = ScaledFuzz(state.range(0));
  DedupModule module;
  for (auto _ : state) {
    auto report = module.AssessComplexity(fuzzed.scenario);
    benchmark::DoNotOptimize(report->get());
  }
  int64_t tuples = 0;
  for (const SourceBinding& source : fuzzed.scenario.sources) {
    tuples += static_cast<int64_t>(source.database.TotalRowCount());
  }
  state.SetItemsProcessed(state.iterations() * tuples);
  state.counters["source_tuples"] = static_cast<double>(tuples);
}
BENCHMARK(BM_DedupAssessment)->Arg(100)->Arg(400)->Arg(1600)
    ->Unit(benchmark::kMillisecond);

void BM_FuzzedFullEstimation(benchmark::State& state) {
  FuzzedScenario fuzzed = ScaledFuzz(state.range(0));
  EfesEngine engine = MakeDefaultEngine();
  for (auto _ : state) {
    auto result = engine.Run(fuzzed.scenario, ExpectedQuality::kHighQuality);
    benchmark::DoNotOptimize(result->estimate.TotalMinutes());
  }
}
BENCHMARK(BM_FuzzedFullEstimation)->Arg(100)->Arg(400)
    ->Unit(benchmark::kMillisecond);

void BM_FuzzScenarioGeneration(benchmark::State& state) {
  uint64_t seed = 1;
  for (auto _ : state) {
    FuzzedScenario fuzzed = ScaledFuzz(state.range(0), seed++);
    benchmark::DoNotOptimize(fuzzed.injected_clusters.size());
  }
}
BENCHMARK(BM_FuzzScenarioGeneration)->Arg(400)
    ->Unit(benchmark::kMillisecond);

/// One dedup assessment over a mid-size fuzz; the emitted counters cover
/// profiling and the dedup detector.
void JsonLineWorkload() {
  FuzzedScenario fuzzed = ScaledFuzz(400);
  EfesEngine engine = MakeDefaultEngine();
  auto result = engine.Run(fuzzed.scenario, ExpectedQuality::kHighQuality);
  benchmark::DoNotOptimize(result->estimate.TotalMinutes());
}

}  // namespace
}  // namespace efes

int main(int argc, char** argv) {
  return efes::bench::BenchMain(argc, argv, "perf_dedup",
                                efes::JsonLineWorkload);
}
