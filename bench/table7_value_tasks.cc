// Regenerates Table 7: "Value heterogeneities and corresponding cleaning
// tasks" — the value transformation planner's task matrix.

#include <cstdio>

#include "efes/common/text_table.h"
#include "efes/values/value_module.h"

namespace {

std::string PlanOne(efes::ValueHeterogeneityType type,
                    efes::ExpectedQuality quality) {
  efes::ValueHeterogeneity heterogeneity;
  heterogeneity.type = type;
  heterogeneity.source_values = 100;
  heterogeneity.source_distinct_values = 80;
  heterogeneity.affected_values = 10;
  heterogeneity.source_pattern_count = 2;
  efes::ValueComplexityReport report({heterogeneity});
  efes::ValueModule module;
  auto tasks = module.PlanTasks(report, quality, {});
  if (!tasks.ok() || tasks->empty()) return "-";
  return std::string(efes::TaskTypeToString((*tasks)[0].type));
}

}  // namespace

int main() {
  std::printf(
      "Table 7: Value heterogeneities and corresponding cleaning tasks\n\n");
  efes::TextTable table;
  table.SetHeader({"Value heterogeneity", "Low effort", "High quality"});
  const efes::ValueHeterogeneityType kTypes[] = {
      efes::ValueHeterogeneityType::kTooFewSourceElements,
      efes::ValueHeterogeneityType::kDifferentRepresentationsCritical,
      efes::ValueHeterogeneityType::kDifferentRepresentations,
      efes::ValueHeterogeneityType::kTooFineGrainedSourceValues,
      efes::ValueHeterogeneityType::kTooCoarseGrainedSourceValues,
  };
  for (efes::ValueHeterogeneityType type : kTypes) {
    table.AddRow({std::string(efes::ValueHeterogeneityTypeToString(type)),
                  PlanOne(type, efes::ExpectedQuality::kLowEffort),
                  PlanOne(type, efes::ExpectedQuality::kHighQuality)});
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}
