// Regenerates Table 4: "Structural conflicts and their corresponding
// cleaning tasks" — the repair planner's task matrix.

#include <cstdio>

#include "efes/common/text_table.h"
#include "efes/structure/repair_planner.h"

int main() {
  std::printf(
      "Table 4: Structural conflicts and their corresponding cleaning "
      "tasks\n\n");
  efes::TextTable table;
  table.SetHeader({"Constraint", "Low effort", "High quality"});
  const efes::StructuralConflictKind kKinds[] = {
      efes::StructuralConflictKind::kNotNullViolated,
      efes::StructuralConflictKind::kUniqueViolated,
      efes::StructuralConflictKind::kMultipleAttributeValues,
      efes::StructuralConflictKind::kValueWithoutTuple,
      efes::StructuralConflictKind::kForeignKeyViolated,
  };
  for (efes::StructuralConflictKind kind : kKinds) {
    table.AddRow(
        {std::string(efes::StructuralConflictKindToString(kind)),
         std::string(efes::TaskTypeToString(efes::DefaultRepairTask(
             kind, efes::ExpectedQuality::kLowEffort))),
         std::string(efes::TaskTypeToString(efes::DefaultRepairTask(
             kind, efes::ExpectedQuality::kHighQuality)))});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nNote: the paper's Table 4 names the high-quality repair of a "
      "detached value\n\"Create enclosing tuple\"; the planned task is "
      "Table 5/9's \"Add tuples\" (the\nsame INSERT..SELECT operation).\n");
  return 0;
}
