// The scenario fuzzer driver (scenario/fuzzer.h).
//
//   efes_fuzz run                    fuzz --fuzz-count seeds starting at
//                                    --fuzz-seed through the full engine
//   efes_fuzz corpus <manifest>      fuzz every seed listed in <manifest>
//                                    (one seed per line, '#' comments) —
//                                    the checked-in data/fuzz_corpus.txt
//   efes_fuzz generate <dir>         write the scenario of --fuzz-seed as
//                                    a scenario directory for inspection
//                                    with the main `efes` tool
//
// Output is one deterministic line per seed (every number rendered via
// FormatDouble) plus a summary line, so byte-diffing two runs — across
// thread counts or cache states — is the corpus determinism check used by
// check_build.sh --fuzz-corpus.
//
// Flags: --fuzz-seed=<n> (default 1), --fuzz-count=<n> (default 20),
// --quality=high|low, --modules=<list>, --threads=<n>,
// --cache-dir=<dir>, --no-cache.
//
// Exit codes: 0 success, 1 runtime/property failure, 2 usage error,
// 64 unknown flag.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "efes/cache/profile_cache.h"
#include "efes/common/file_io.h"
#include "efes/common/flags.h"
#include "efes/common/parallel.h"
#include "efes/common/string_util.h"
#include "efes/dedup/dedup_module.h"
#include "efes/experiment/default_pipeline.h"
#include "efes/scenario/fuzzer.h"
#include "efes/scenario/scenario_io.h"

namespace {

constexpr int kExitUsage = 2;
constexpr int kExitUnknownFlag = 64;

struct FuzzFlags {
  uint64_t seed = 1;
  uint64_t count = 20;
  std::string quality = "high";
  std::string modules = efes::kDefaultModules;
  std::string cache_dir;
  bool no_cache = false;
};

int Usage(int exit_code = kExitUsage) {
  std::fprintf(stderr,
               "usage:\n"
               "  efes_fuzz run [flags]\n"
               "  efes_fuzz corpus <manifest> [flags]\n"
               "  efes_fuzz generate <dir> [flags]\n"
               "flags: --fuzz-seed=<n> --fuzz-count=<n> "
               "--quality=high|low\n"
               "       --modules=<list> --threads=<n> --cache-dir=<dir> "
               "--no-cache\n");
  return exit_code;
}

int Fail(const efes::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

efes::Status ParseUint(std::string_view value, uint64_t* out) {
  std::string buffer(value);
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(buffer.c_str(), &end, 10);
  if (buffer.empty() || end != buffer.c_str() + buffer.size()) {
    return efes::Status::InvalidArgument("expected a number, got '" +
                                         buffer + "'");
  }
  *out = parsed;
  return efes::Status::OK();
}

/// One fuzzed seed through the engine; returns the deterministic report
/// line. `recall_out` receives the injected-cluster recall of the seed.
efes::Result<std::string> RunSeed(uint64_t seed, const FuzzFlags& flags,
                                  efes::ProfileCache* cache,
                                  double* recall_out) {
  EFES_ASSIGN_OR_RETURN(efes::FuzzedScenario fuzzed,
                        efes::FuzzScenario(seed));
  EFES_ASSIGN_OR_RETURN(efes::EfesEngine engine,
                        efes::MakeEngineForModules(flags.modules));
  efes::RunOptions options;
  options.quality = flags.quality == "low"
                        ? efes::ExpectedQuality::kLowEffort
                        : efes::ExpectedQuality::kHighQuality;
  options.cache = cache;
  EFES_ASSIGN_OR_RETURN(efes::EstimationResult result,
                        engine.Run(fuzzed.scenario, options));

  size_t rows = 0;
  for (const efes::SourceBinding& source : fuzzed.scenario.sources) {
    rows += source.database.TotalRowCount();
  }
  size_t findings = 0;
  size_t clusters = 0;
  double recall = 1.0;
  for (const efes::ModuleRun& run : result.module_runs) {
    if (run.module != "dedup" || run.report == nullptr) continue;
    const auto* report =
        dynamic_cast<const efes::DedupComplexityReport*>(run.report.get());
    if (report == nullptr) continue;
    findings = report->findings().size();
    for (const efes::DuplicateClusterFinding& f : report->findings()) {
      clusters += f.cluster_count;
    }
    recall = efes::InjectedClusterRecall(fuzzed, *report);
  }
  *recall_out = recall;
  std::string line =
      "seed=" + std::to_string(seed) +
      " sources=" + std::to_string(fuzzed.scenario.sources.size()) +
      " rows=" + std::to_string(rows) +
      " findings=" + std::to_string(findings) +
      " clusters=" + std::to_string(clusters) +
      " injected=" + std::to_string(fuzzed.injected_clusters.size()) +
      " recall=" + efes::FormatDouble(recall, 4) +
      " tasks=" + std::to_string(result.estimate.tasks.size()) +
      " minutes=" + efes::FormatDouble(result.estimate.TotalMinutes(), 4);
  return line;
}

int RunSeeds(const std::vector<uint64_t>& seeds, const FuzzFlags& flags,
             efes::ProfileCache* cache) {
  double recall_sum = 0.0;
  size_t with_injection = 0;
  for (uint64_t seed : seeds) {
    double recall = 1.0;
    auto line = RunSeed(seed, flags, cache, &recall);
    if (!line.ok()) return Fail(line.status());
    std::printf("%s\n", line->c_str());
    recall_sum += recall;
    ++with_injection;
  }
  double mean_recall =
      with_injection == 0 ? 1.0
                          : recall_sum / static_cast<double>(with_injection);
  std::printf("fuzz summary: seeds=%zu mean_recall=%s\n", seeds.size(),
              efes::FormatDouble(mean_recall, 4).c_str());
  return 0;
}

int RunGenerate(const std::string& directory, const FuzzFlags& flags) {
  auto fuzzed = efes::FuzzScenario(flags.seed);
  if (!fuzzed.ok()) return Fail(fuzzed.status());
  efes::Status saved = efes::SaveScenario(fuzzed->scenario, directory);
  if (!saved.ok()) return Fail(saved);
  std::printf(
      "wrote fuzz scenario seed=%llu (%zu sources, %zu injected "
      "clusters) to %s\n",
      static_cast<unsigned long long>(flags.seed),
      fuzzed->scenario.sources.size(), fuzzed->injected_clusters.size(),
      directory.c_str());
  return 0;
}

efes::Result<std::vector<uint64_t>> LoadManifest(const std::string& path) {
  EFES_ASSIGN_OR_RETURN(std::string text, efes::ReadFileToString(path));
  std::vector<uint64_t> seeds;
  size_t line_number = 0;
  for (const std::string& raw_line : efes::Split(text, '\n')) {
    ++line_number;
    std::string_view line = efes::Trim(raw_line);
    size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = efes::Trim(line.substr(0, hash));
    if (line.empty()) continue;
    uint64_t seed = 0;
    efes::Status parsed = ParseUint(line, &seed);
    if (!parsed.ok()) {
      return efes::Status::ParseError(
          path + ":" + std::to_string(line_number) + ": " +
          parsed.message());
    }
    seeds.push_back(seed);
  }
  if (seeds.empty()) {
    return efes::Status::InvalidArgument("manifest " + path +
                                         " lists no seeds");
  }
  return seeds;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  std::vector<std::string> rest(argv + 2, argv + argc);

  FuzzFlags fuzz;
  efes::FlagSet flags;
  flags.AddAction("fuzz-seed", "<n>", "first scenario seed (default 1)",
                  [&fuzz](std::string_view value) {
                    return ParseUint(value, &fuzz.seed);
                  });
  flags.AddAction("fuzz-count", "<n>",
                  "number of consecutive seeds for `run` (default 20)",
                  [&fuzz](std::string_view value) {
                    EFES_RETURN_IF_ERROR(ParseUint(value, &fuzz.count));
                    if (fuzz.count == 0) {
                      return efes::Status::InvalidArgument(
                          "--fuzz-count must be positive");
                    }
                    return efes::Status::OK();
                  });
  flags.AddChoice("quality", {"high", "low"}, "expected result quality",
                  &fuzz.quality);
  flags.AddString("modules", "<list>",
                  "comma-separated module subset (default: all)",
                  &fuzz.modules);
  flags.AddAction("threads", "<n>",
                  "worker threads (results do not depend on this)",
                  [](std::string_view value) {
                    uint64_t threads = 0;
                    EFES_RETURN_IF_ERROR(ParseUint(value, &threads));
                    if (threads == 0) {
                      return efes::Status::InvalidArgument(
                          "--threads must be positive");
                    }
                    efes::SetThreadCountOverride(
                        static_cast<size_t>(threads));
                    return efes::Status::OK();
                  });
  flags.AddString("cache-dir", "<dir>",
                  "persist the profile cache in this directory",
                  &fuzz.cache_dir);
  flags.AddBool("no-cache", "disable the profile cache", &fuzz.no_cache);

  efes::Status parsed = flags.Parse(&rest);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.message().c_str());
    return Usage(efes::IsUnknownFlagError(parsed) ? kExitUnknownFlag
                                                  : kExitUsage);
  }
  if (fuzz.no_cache && !fuzz.cache_dir.empty()) {
    std::fprintf(stderr, "--no-cache and --cache-dir are exclusive\n");
    return Usage(kExitUsage);
  }

  efes::ProfileCache cache;
  efes::ProfileCache* active_cache = fuzz.no_cache ? nullptr : &cache;
  if (active_cache != nullptr && !fuzz.cache_dir.empty()) {
    efes::Status loaded = cache.LoadFromFile(
        efes::ProfileCache::FilePathInDirectory(fuzz.cache_dir));
    if (!loaded.ok()) {
      std::fprintf(stderr, "warning: cache load failed: %s\n",
                   loaded.ToString().c_str());
    }
  }

  int code;
  if (command == "run") {
    if (!rest.empty()) return Usage();
    std::vector<uint64_t> seeds;
    for (uint64_t i = 0; i < fuzz.count; ++i) {
      seeds.push_back(fuzz.seed + i);
    }
    code = RunSeeds(seeds, fuzz, active_cache);
  } else if (command == "corpus") {
    if (rest.size() != 1) return Usage();
    auto seeds = LoadManifest(rest[0]);
    if (!seeds.ok()) return Fail(seeds.status());
    code = RunSeeds(*seeds, fuzz, active_cache);
  } else if (command == "generate") {
    if (rest.size() != 1) return Usage();
    code = RunGenerate(rest[0], fuzz);
  } else {
    return Usage();
  }
  if (code != 0) return code;

  if (active_cache != nullptr && !fuzz.cache_dir.empty()) {
    efes::Status saved = cache.SaveToFile(
        efes::ProfileCache::FilePathInDirectory(fuzz.cache_dir));
    if (!saved.ok()) {
      std::fprintf(stderr, "warning: cache save failed: %s\n",
                   saved.ToString().c_str());
    }
  }
  return 0;
}
