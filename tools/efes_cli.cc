// The EFES command-line interface — the file-based counterpart of the
// original prototype's CLI (Section 6.1).
//
//   efes export-example <dir>      write the Figure 2 scenario to disk
//   efes assess <dir> [--discover] phase 1: complexity reports only
//                                  (--discover profiles the sources first)
//       --modules=<list>           run only these modules (comma-separated
//                                  subset of mapping,structure,values,dedup)
//   efes estimate <dir> [options]  phase 1 + 2: full effort estimate
//       --quality=high|low         expected result quality (default high)
//       --modules=<list>           module subset, as for assess
//       --config=<file>            effort configuration (effort_config.h;
//                                  its [dedup] section configures the
//                                  dedup detector and pair-review costs)
//       --format=text|json         output format
//       --explain[=<task-id>]      record estimate provenance and print
//                                  the evidence tree (or one task's
//                                  subtree); JSON output gains a
//                                  "provenance" section instead
//   efes execute <dir> <out>       actually perform the integration and
//                                  persist the integrated target
//       --quality=high|low         conflict-resolution strategy
//   efes plan <dir>                cost-benefit execution order
//       --quality=high|low         expected result quality (default high)
//   efes match <dir>               propose correspondences with the matcher
//   efes profile <csv>             stream one CSV file through the sketch
//                                  profiler (chunked ingest; the file is
//                                  never materialized whole)
//   efes visualize <dir> [out.dot] Graphviz problem heatmap
//   efes study                     run the Figure 6/7 cross-validated study
//
// Telemetry/execution flags, accepted by every subcommand, are declared
// in GlobalFlags() below — the usage text renders straight from the
// FlagSet (common/flags.h), so help and parser cannot drift apart.
// Highlights: --metrics, --trace=<file>, --log-level=<level>,
// --threads=<n>, --lenient, --inject-fault=<point>[:spec], the
// profile cache pair --cache-dir=<dir> / --no-cache (cache/README in
// DESIGN.md §11), and the streaming-profiling policy
// --approx=exact|sketch|auto / --chunk-rows=<n> / --max-memory=<bytes>
// (DESIGN.md §16): profiling results are cached in memory per run by
// default; --cache-dir persists them across runs, --no-cache disables
// caching entirely. Cached and uncached runs print byte-identical
// output, at any thread count and any chunk size.
//
// Exit codes: 0 success, 1 runtime error, 2 usage error, 64 unknown flag.
// Scenario directories follow the layout of scenario/scenario_io.h.

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "efes/cache/profile_cache.h"
#include "efes/common/deadline.h"
#include "efes/common/fault.h"
#include "efes/common/file_io.h"
#include "efes/common/flags.h"
#include "efes/common/parallel.h"
#include "efes/common/string_util.h"
#include "efes/core/effort_config.h"
#include "efes/execute/integration_executor.h"
#include "efes/experiment/cost_benefit.h"
#include "efes/experiment/default_pipeline.h"
#include "efes/experiment/json_export.h"
#include "efes/experiment/study.h"
#include "efes/experiment/visualization.h"
#include "efes/common/csv.h"
#include "efes/matching/schema_matcher.h"
#include "efes/profiling/constraint_discovery.h"
#include "efes/profiling/profiler.h"
#include "efes/profiling/sketch.h"
#include "efes/provenance/provenance.h"
#include "efes/relational/value.h"
#include "efes/provenance/render.h"
#include "efes/scenario/paper_example.h"
#include "efes/scenario/scenario_io.h"
#include "efes/telemetry/log.h"
#include "efes/common/metrics.h"
#include "efes/telemetry/report.h"
#include "efes/telemetry/trace.h"

namespace {

constexpr int kExitUsage = 2;
/// --timeout-ms expired (kDeadlineExceeded/kCancelled): distinct from the
/// generic failure exit so wrappers can tell "slow" from "broken".
constexpr int kExitDeadline = 3;
constexpr int kExitUnknownFlag = 64;

/// Global tool state set by the telemetry/execution flags.
struct CliFlags {
  bool metrics = false;
  std::string trace_path;
  /// Set when the subcommand already embedded the snapshot in its own
  /// output (estimate --format=json), so main() skips the table.
  bool metrics_emitted_inline = false;
  /// --lenient: load scenarios in recover mode, reporting DataIssues on
  /// stderr instead of aborting on the first defect.
  bool lenient = false;
  /// --cache-dir: persist the profile cache here across invocations.
  std::string cache_dir;
  /// --no-cache: disable profile caching for this run.
  bool no_cache = false;
  /// --timeout-ms: deadline for the whole invocation (0 = none).
  size_t timeout_ms = 0;
  /// --approx / --chunk-rows / --max-memory: the streaming-profiling
  /// policy installed for the whole invocation (profiling/sketch.h).
  efes::ProfileOptions profile;
};

CliFlags g_flags;

/// The profile cache of this invocation (null with --no-cache); threaded
/// into every RunOptions and installed as the ambient cache in main().
efes::ProfileCache* g_cache = nullptr;

/// Parses a base-10 size_t where zero is a legal value (AddUint rejects
/// it), for flags whose zero means "whole column" or "unlimited".
efes::Status ParseNonNegative(std::string_view value, size_t* target) {
  std::string buffer(value);
  char* end = nullptr;
  unsigned long long v = std::strtoull(buffer.c_str(), &end, 10);
  if (buffer.empty() || end != buffer.c_str() + buffer.size()) {
    return efes::Status::InvalidArgument(
        "expected a non-negative integer, got '" + buffer + "'");
  }
  *target = static_cast<size_t>(v);
  return efes::Status::OK();
}

/// The telemetry/execution flags every subcommand accepts. Registered
/// once; Usage() renders this set, Parse strips it off the argv.
efes::FlagSet& GlobalFlags() {
  static efes::FlagSet* flags = [] {
    auto* f = new efes::FlagSet();  // EFES_LINT_ALLOW(banned-function): process-lifetime flag registry, leaked on purpose
    f->AddBool("metrics", "print the metrics table after the run",
               &g_flags.metrics);
    f->AddAction("trace", "<file>",
                 "write Chrome trace-event JSON (chrome://tracing)",
                 [](std::string_view value) {
                   if (value.empty()) {
                     return efes::Status::InvalidArgument(
                         "trace path must not be empty");
                   }
                   g_flags.trace_path = std::string(value);
                   efes::TraceRecorder::Global().set_enabled(true);
                   return efes::Status::OK();
                 });
    f->AddAction("log-level", "<level>",
                 "debug|info|warn|error|off (default off)",
                 [](std::string_view value) {
                   efes::LogLevel level;
                   if (!efes::ParseLogLevel(std::string(value), &level)) {
                     return efes::Status::InvalidArgument(
                         "no such log level: " + std::string(value));
                   }
                   // EFES_LINT_ALLOW(banned-function): process-lifetime log sink, leaked on purpose
                   static efes::StderrSink* sink = new efes::StderrSink();
                   efes::Logger::Global().set_sink(sink);
                   efes::Logger::Global().set_level(level);
                   return efes::Status::OK();
                 });
    f->AddAction("threads", "<n>",
                 "worker threads for parallel phases (default: hardware "
                 "concurrency; results do not depend on the thread count)",
                 [](std::string_view value) {
                   std::string buffer(value);
                   char* end = nullptr;
                   unsigned long long threads =
                       std::strtoull(buffer.c_str(), &end, 10);
                   if (buffer.empty() ||
                       end != buffer.c_str() + buffer.size() ||
                       threads == 0) {
                     return efes::Status::InvalidArgument(
                         "expected a positive thread count, got '" + buffer +
                         "'");
                   }
                   efes::SetThreadCountOverride(
                       static_cast<size_t>(threads));
                   return efes::Status::OK();
                 });
    f->AddBool("lenient",
               "recover-mode scenario loading: skip/repair defects, report "
               "them on stderr",
               &g_flags.lenient);
    f->AddAction("inject-fault", "<point>[:spec]",
                 "arm a deterministic fault point (robustness testing; see "
                 "common/fault.h)",
                 [](std::string_view value) {
                   return efes::FaultRegistry::Global().ArmFromString(
                       std::string(value));
                 });
    f->AddString("cache-dir", "<dir>",
                 "persist the profile cache in this directory (loaded "
                 "before the run, saved after)",
                 &g_flags.cache_dir);
    f->AddBool("no-cache",
               "disable the profile cache (every run recomputes all "
               "profiles)",
               &g_flags.no_cache);
    f->AddUint("timeout-ms", "<ms>",
               "abort the run with exit 3 once this deadline passes "
               "(checked at batch boundaries; no partial output)",
               &g_flags.timeout_ms);
    f->AddAction("approx", "exact|sketch|auto",
                 "statistics approximation mode (default exact; sketch "
                 "caps per-column memory, auto degrades only on overflow)",
                 [](std::string_view value) {
                   EFES_ASSIGN_OR_RETURN(
                       g_flags.profile.mode,
                       efes::ParseApproximationMode(value));
                   return efes::Status::OK();
                 });
    // Unlike AddUint targets, zero is a meaningful value for both of
    // these (whole column / unlimited), so they parse via AddAction.
    f->AddAction("chunk-rows", "<n>",
                 "rows per streaming profiling chunk (0 = whole column; "
                 "results are byte-identical for any chunk size)",
                 [](std::string_view value) {
                   return ParseNonNegative(value,
                                           &g_flags.profile.chunk_rows);
                 });
    f->AddAction("max-memory", "<bytes>",
                 "per-column profiling memory budget; exact mode fails when "
                 "it would overflow, sketch/auto coarsen deterministically",
                 [](std::string_view value) {
                   return ParseNonNegative(
                       value, &g_flags.profile.max_memory_bytes);
                 });
    return f;
  }();
  return *flags;
}

int Usage(int exit_code = kExitUsage) {
  std::fprintf(
      stderr,
      "usage:\n"
      "  efes export-example <dir>\n"
      "  efes assess <dir> [--discover] [--modules=<list>]\n"
      "  efes estimate <dir> [--quality=high|low] [--config=<file>]\n"
      "                     [--modules=<list>] [--format=text|json]\n"
      "                     [--out=<file>] [--explain[=<task-id>]]\n"
      "  efes match <dir>\n"
      "  efes profile <csv-file>\n"
      "  efes execute <dir> <out-dir> [--quality=high|low]\n"
      "  efes plan <dir> [--quality=high|low]\n"
      "  efes visualize <dir> [<out.dot>]\n"
      "  efes study\n"
      "telemetry/execution flags (any subcommand):\n%s",
      GlobalFlags().UsageText().c_str());
  return exit_code;
}

/// Maps a FlagSet parse failure to the tool convention: unknown flags
/// exit 64, malformed values exit 2, both after the usage text.
int FlagError(const efes::Status& status) {
  std::fprintf(stderr, "%s\n", status.message().c_str());
  return Usage(efes::IsUnknownFlagError(status) ? kExitUnknownFlag
                                                : kExitUsage);
}

/// Parses subcommand-local flags; everything left in `options` after the
/// parse is unexpected. Returns -1 to continue, an exit code otherwise.
int ParseSubcommandFlags(const efes::FlagSet& flags,
                         std::vector<std::string>* options) {
  efes::Status parsed = flags.Parse(options);
  if (!parsed.ok()) return FlagError(parsed);
  if (!options->empty()) {
    std::fprintf(stderr, "unexpected argument: %s\n",
                 options->front().c_str());
    return Usage(kExitUsage);
  }
  return -1;
}

int Fail(const efes::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return efes::IsCancellation(status.code()) ? kExitDeadline : 1;
}

efes::ExpectedQuality QualityFromString(const std::string& quality) {
  return quality == "low" ? efes::ExpectedQuality::kLowEffort
                          : efes::ExpectedQuality::kHighQuality;
}

/// RunOptions for this invocation: quality/settings as given, plus the
/// CLI-wide profile cache.
efes::RunOptions MakeRunOptions(
    efes::ExpectedQuality quality = efes::ExpectedQuality::kHighQuality,
    const efes::ExecutionSettings& settings = {}) {
  efes::RunOptions options;
  options.quality = quality;
  options.settings = settings;
  options.cache = g_cache;
  options.profile = g_flags.profile;
  return options;
}

/// Prints the metrics table / writes the trace file after a successful
/// run. Without telemetry flags this is a no-op, leaving the output
/// byte-identical to the untelemetered CLI.
int EmitTelemetry() {
  if (g_flags.metrics && !g_flags.metrics_emitted_inline) {
    std::string report = efes::RenderMetricsReport(
        efes::MetricsRegistry::Global().Snapshot());
    std::printf("=== telemetry ===\n%s", report.c_str());
  }
  if (!g_flags.trace_path.empty()) {
    efes::Status written = efes::WriteFileAtomic(
        g_flags.trace_path,
        efes::TraceRecorder::Global().ToChromeTraceJson());
    if (!written.ok()) return Fail(written);
    std::printf("trace written to %s (open in chrome://tracing)\n",
                g_flags.trace_path.c_str());
  }
  return 0;
}

/// Loads a scenario honoring --lenient. In lenient mode the survived
/// defects are listed on stderr (stdout stays clean for the actual
/// output) and the run proceeds on the salvaged scenario.
efes::Result<efes::IntegrationScenario> LoadScenarioCli(
    const std::string& directory) {
  efes::LoadOptions options;
  if (g_flags.lenient) {
    options.mode = efes::LoadOptions::Mode::kRecover;
  }
  efes::ScenarioLoadReport report;
  auto scenario = efes::LoadScenario(directory, options, &report);
  if (scenario.ok() && report.degraded) {
    std::fprintf(stderr,
                 "lenient load: %zu issue(s) recovered from:\n%s",
                 report.issues.size(),
                 efes::RenderDataIssues(report.issues).c_str());
  }
  return scenario;
}

int RunExportExample(const std::string& directory) {
  auto scenario = efes::MakePaperExample();
  if (!scenario.ok()) return Fail(scenario.status());
  efes::Status status = efes::SaveScenario(*scenario, directory);
  if (!status.ok()) return Fail(status);
  std::printf("wrote the Figure 2 example scenario to %s\n",
              directory.c_str());
  return 0;
}

// Completeness (Section 3.1): profile each source and declare the mined
// constraints on its schema before assessing.
efes::Status DiscoverSourceConstraints(efes::IntegrationScenario* scenario) {
  for (efes::SourceBinding& source : scenario->sources) {
    EFES_ASSIGN_OR_RETURN(
        efes::Database completed,
        efes::DatabaseWithDiscoveredConstraints(source.database));
    std::printf("# %s: %zu constraints after profiling (was %zu)\n",
                source.database.name().c_str(),
                completed.schema().constraints().size(),
                source.database.schema().constraints().size());
    source.database = std::move(completed);
  }
  return efes::Status::OK();
}

int RunAssess(const std::string& directory,
              std::vector<std::string> options) {
  bool discover = false;
  std::string modules = efes::kDefaultModules;
  efes::FlagSet flags;
  flags.AddBool("discover",
                "profile the sources and declare mined constraints first",
                &discover);
  flags.AddString("modules", "<list>",
                  "comma-separated module subset (default: all)", &modules);
  int code = ParseSubcommandFlags(flags, &options);
  if (code >= 0) return code;
  auto scenario = LoadScenarioCli(directory);
  if (!scenario.ok()) return Fail(scenario.status());
  if (discover) {
    efes::Status status = DiscoverSourceConstraints(&*scenario);
    if (!status.ok()) return Fail(status);
  }
  auto engine = efes::MakeEngineForModules(modules);
  if (!engine.ok()) return Fail(engine.status());
  auto reports = engine->AssessComplexity(*scenario, MakeRunOptions());
  if (!reports.ok()) return Fail(reports.status());
  for (const auto& report : *reports) {
    std::printf("=== %s ===\n%s\n", report->module_name().c_str(),
                report->ToText().c_str());
  }
  return 0;
}

int RunEstimate(const std::string& directory,
                std::vector<std::string> options) {
  std::string quality = "high";
  std::string format = "text";
  std::string out_path;
  std::string modules = efes::kDefaultModules;
  efes::EstimationConfig config;
  efes::FlagSet flags;
  flags.AddChoice("quality", {"high", "low"}, "expected result quality",
                  &quality);
  flags.AddChoice("format", {"text", "json"}, "output format", &format);
  flags.AddString("modules", "<list>",
                  "comma-separated module subset (default: all)", &modules);
  flags.AddString("out", "<file>", "write the JSON export here", &out_path);
  flags.AddAction("config", "<file>", "effort configuration file",
                  [&config](std::string_view value) {
                    EFES_ASSIGN_OR_RETURN(
                        config, efes::LoadEffortConfig(std::string(value)));
                    return efes::Status::OK();
                  });
  bool explain = false;
  std::string explain_task;
  flags.AddOptional("explain", "<task-id>",
                    "record estimate provenance; print the evidence tree "
                    "(optionally one task's subtree)",
                    [&explain, &explain_task](std::string_view value) {
                      explain = true;
                      explain_task = std::string(value);
                      return efes::Status::OK();
                    });
  int code = ParseSubcommandFlags(flags, &options);
  if (code >= 0) return code;
  auto scenario = LoadScenarioCli(directory);
  if (!scenario.ok()) return Fail(scenario.status());
  auto engine_result = efes::MakeEngineForModules(
      modules, std::move(config.model), config.dedup);
  if (!engine_result.ok()) return Fail(engine_result.status());
  efes::EfesEngine engine = std::move(*engine_result);
  // Recording is scoped to the engine run: off (the default) leaves the
  // pipeline byte-identical to an unexplained run.
  efes::ProvenanceRecorder recorder;
  std::optional<efes::ScopedProvenanceRecorder> scoped;
  if (explain) scoped.emplace(&recorder);
  auto result = engine.Run(
      *scenario,
      MakeRunOptions(QualityFromString(quality), config.settings));
  scoped.reset();
  if (!result.ok()) return Fail(result.status());
  efes::ProvenanceSnapshot provenance;
  if (explain) provenance = recorder.Snapshot();
  if (!out_path.empty()) {
    // --out writes the JSON export atomically (temp + rename): a reader
    // polling the file never sees a half-written document.
    efes::Status written = efes::WriteEstimationResultJsonFile(
        *result, out_path, nullptr, explain ? &provenance : nullptr);
    if (!written.ok()) return Fail(written);
    std::printf("estimate written to %s\n", out_path.c_str());
    return 0;
  }
  if (format == "json") {
    efes::MetricsSnapshot telemetry;
    if (g_flags.metrics) {
      // Embed the snapshot as the export's `telemetry` section instead
      // of appending a table that would trail the JSON document.
      g_flags.metrics_emitted_inline = true;
      telemetry = efes::MetricsRegistry::Global().Snapshot();
    }
    std::printf("%s\n",
                efes::EstimationResultToJson(
                    *result, g_flags.metrics ? &telemetry : nullptr,
                    explain ? &provenance : nullptr)
                    .c_str());
  } else {
    std::printf("%s", result->ToText().c_str());
    if (explain) {
      auto tree = efes::RenderProvenanceTree(provenance, explain_task);
      if (tree.ok()) {
        std::printf("\n=== provenance ===\n%s", tree->c_str());
      } else if (tree.status().code() == efes::StatusCode::kNotFound) {
        // A bad --explain=<task-id> is a real error (the tree exists,
        // the caller asked for a task that does not).
        return Fail(tree.status());
      } else {
        // Degraded recording/export: the estimate stands, the
        // explanation is just unavailable.
        std::fprintf(stderr, "warning: %s\n",
                     tree.status().ToString().c_str());
      }
    }
  }
  return 0;
}

int RunMatch(const std::string& directory) {
  auto scenario = LoadScenarioCli(directory);
  if (!scenario.ok()) return Fail(scenario.status());
  efes::SchemaMatcher matcher;
  for (const efes::SourceBinding& source : scenario->sources) {
    std::printf("# %s -> target\n", source.database.name().c_str());
    auto discovered = matcher.Match(source.database, scenario->target);
    if (!discovered.ok()) return Fail(discovered.status());
    std::printf("%s",
                efes::WriteCorrespondences(*discovered).c_str());
  }
  return 0;
}

int RunExecute(const std::string& directory,
               const std::string& output_directory,
               std::vector<std::string> options) {
  std::string quality = "high";
  efes::FlagSet flags;
  flags.AddChoice("quality", {"high", "low"},
                  "conflict-resolution strategy", &quality);
  int code = ParseSubcommandFlags(flags, &options);
  if (code >= 0) return code;
  efes::IntegrationExecutor::Options executor_options;
  executor_options.quality = QualityFromString(quality);
  executor_options.cache = g_cache;
  auto scenario = LoadScenarioCli(directory);
  if (!scenario.ok()) return Fail(scenario.status());
  efes::IntegrationExecutor executor(executor_options);
  efes::ExecutionReport report;
  auto integrated = executor.Execute(*scenario, &report);
  if (!integrated.ok()) return Fail(integrated.status());
  // Persist the integrated instance as a target-only scenario directory.
  efes::IntegrationScenario result("integrated", std::move(*integrated));
  efes::Status status = efes::SaveScenario(result, output_directory);
  if (!status.ok()) return Fail(status);
  std::printf("%s\nintegrated database written to %s\n",
              report.ToString().c_str(), output_directory.c_str());
  return 0;
}

int RunPlan(const std::string& directory,
            std::vector<std::string> options) {
  std::string quality = "high";
  efes::FlagSet flags;
  flags.AddChoice("quality", {"high", "low"}, "expected result quality",
                  &quality);
  int code = ParseSubcommandFlags(flags, &options);
  if (code >= 0) return code;
  auto scenario = LoadScenarioCli(directory);
  if (!scenario.ok()) return Fail(scenario.status());
  efes::EfesEngine engine = efes::MakeDefaultEngine();
  auto result =
      engine.Run(*scenario, MakeRunOptions(QualityFromString(quality)));
  if (!result.ok()) return Fail(result.status());
  efes::CostBenefitCurve curve =
      efes::AnalyzeCostBenefit(result->estimate);
  std::printf("%s", curve.ToText().c_str());
  std::printf(
      "\n50%% quality after %.0f min, 90%% after %.0f min, done after "
      "%.0f min.\n",
      curve.MinutesToReach(0.5), curve.MinutesToReach(0.9),
      curve.total_minutes);
  return 0;
}

int RunVisualize(const std::string& directory,
                 const std::string& output_path) {
  auto scenario = LoadScenarioCli(directory);
  if (!scenario.ok()) return Fail(scenario.status());
  efes::EfesEngine engine = efes::MakeDefaultEngine();
  auto result = engine.Run(*scenario, MakeRunOptions());
  if (!result.ok()) return Fail(result.status());
  std::string dot = efes::RenderProblemHeatmapDot(
      *scenario, efes::CollectProblemCounts(*result));
  if (output_path.empty() || output_path == "-") {
    std::printf("%s", dot.c_str());
    return 0;
  }
  efes::Status written = efes::WriteFileAtomic(output_path, dot);
  if (!written.ok()) return Fail(written);
  std::printf("problem heatmap written to %s (render with: dot -Tsvg %s)\n",
              output_path.c_str(), output_path.c_str());
  return 0;
}

int RunStudy() {
  auto studies = efes::RunCrossValidatedStudies();
  if (!studies.ok()) return Fail(studies.status());
  std::printf("%s\n%s\noverall rmse: Efes %.3f vs Counting %.3f\n",
              studies->bibliographic.ToText().c_str(),
              studies->music.ToText().c_str(), studies->overall_efes_rmse,
              studies->overall_counting_rmse);
  return 0;
}

// Streams one CSV file through the sketch profiler: pass 1 infers each
// column's target type, pass 2 absorbs fixed-size row chunks into
// per-column sketches (profiling/sketch.h) under the global
// --approx / --chunk-rows / --max-memory policy. The file is never
// materialized whole, so this handles sources far beyond what the
// scenario loader would hold in memory; output is byte-identical for
// any --threads and any --chunk-rows (the canonical-merge contract).
int RunProfile(const std::string& path, std::vector<std::string> options) {
  efes::FlagSet flags;
  int code = ParseSubcommandFlags(flags, &options);
  if (code >= 0) return code;
  efes::CsvReadOptions csv_options;
  if (g_flags.lenient) {
    csv_options.mode = efes::CsvReadOptions::Mode::kRecover;
  }
  const size_t chunk_rows = g_flags.profile.chunk_rows;

  // Pass 1: streaming type inference. A column where every non-empty
  // cell parses as an integer profiles as integer, likewise real; mixed
  // or non-numeric columns profile as text.
  auto reader = efes::ChunkedCsvReader::Open(path, csv_options, chunk_rows);
  if (!reader.ok()) return Fail(reader.status());
  const std::vector<std::string> header = reader->header();
  std::vector<char> all_integer(header.size(), 1);
  std::vector<char> all_real(header.size(), 1);
  std::vector<char> saw_value(header.size(), 0);
  size_t row_count = 0;
  while (!reader->done()) {
    auto chunk = reader->NextChunk();
    if (!chunk.ok()) return Fail(chunk.status());
    row_count += chunk->size();
    for (const std::vector<std::string>& row : *chunk) {
      for (size_t c = 0; c < row.size(); ++c) {
        const std::string& cell = row[c];
        if (cell.empty()) continue;
        saw_value[c] = 1;
        if (!all_integer[c] && !all_real[c]) continue;
        efes::Value value = efes::Value::Text(cell);
        if (all_integer[c] &&
            !value.CanCastTo(efes::DataType::kInteger)) {
          all_integer[c] = 0;
        }
        if (all_real[c] && !value.CanCastTo(efes::DataType::kReal)) {
          all_real[c] = 0;
        }
      }
    }
  }
  std::vector<efes::DataType> types(header.size(), efes::DataType::kText);
  for (size_t c = 0; c < header.size(); ++c) {
    if (!saw_value[c]) continue;
    if (all_integer[c]) {
      types[c] = efes::DataType::kInteger;
    } else if (all_real[c]) {
      types[c] = efes::DataType::kReal;
    }
  }

  // Pass 2: chunked profiling. Each chunk is absorbed column-parallel
  // into a fresh partial sketch and folded into the column accumulator;
  // per-column state evolves identically at any thread count.
  auto again = efes::ChunkedCsvReader::Open(path, csv_options, chunk_rows);
  if (!again.ok()) return Fail(again.status());
  std::vector<efes::StatisticsSketch> columns;
  columns.reserve(header.size());
  for (size_t c = 0; c < header.size(); ++c) {
    columns.emplace_back(types[c], g_flags.profile);
  }
  while (!again->done()) {
    auto chunk = again->NextChunk();
    if (!chunk.ok()) return Fail(chunk.status());
    if (chunk->empty()) break;
    efes::Status absorbed =
        efes::ParallelFor(header.size(), [&](size_t c) -> efes::Status {
          efes::StatisticsSketch chunk_sketch(types[c], g_flags.profile);
          for (const std::vector<std::string>& row : *chunk) {
            const std::string& cell = row[c];
            EFES_RETURN_IF_ERROR(chunk_sketch.Absorb(
                cell.empty() ? efes::Value::Null()
                             : efes::Value::Text(cell)));
          }
          return columns[c].Merge(chunk_sketch);
        });
    if (!absorbed.ok()) return Fail(absorbed);
  }
  std::printf("# %s: %zu rows, %zu columns\n", path.c_str(), row_count,
              header.size());
  for (size_t c = 0; c < header.size(); ++c) {
    efes::AttributeStatistics stats = columns[c].Finalize();
    std::printf(
        "=== column %s (%s%s) ===\n%s\n", header[c].c_str(),
        std::string(efes::DataTypeToString(types[c])).c_str(),
        columns[c].effective_mode() == efes::ApproximationMode::kSketch
            ? ", sketch"
            : "",
        stats.ToString().c_str());
  }
  return 0;
}

int Dispatch(const std::string& command, std::vector<std::string> rest) {
  if (command == "study") {
    for (const std::string& option : rest) {
      if (efes::StartsWith(option, "--")) {
        std::fprintf(stderr, "unknown flag: %s\n", option.c_str());
        return Usage(kExitUnknownFlag);
      }
    }
    if (!rest.empty()) return Usage();
    return RunStudy();
  }
  if (command == "export-example") {
    if (rest.size() != 1) return Usage();
    return RunExportExample(rest[0]);
  }
  if (command == "assess") {
    if (rest.empty()) return Usage();
    std::string directory = rest[0];
    rest.erase(rest.begin());
    return RunAssess(directory, std::move(rest));
  }
  if (command == "match") {
    if (rest.size() != 1) return Usage();
    return RunMatch(rest[0]);
  }
  if (command == "execute") {
    if (rest.size() < 2) return Usage();
    std::string directory = rest[0];
    std::string output = rest[1];
    rest.erase(rest.begin(), rest.begin() + 2);
    return RunExecute(directory, output, std::move(rest));
  }
  if (command == "plan") {
    if (rest.empty()) return Usage();
    std::string directory = rest[0];
    rest.erase(rest.begin());
    return RunPlan(directory, std::move(rest));
  }
  if (command == "visualize") {
    if (rest.empty() || rest.size() > 2) return Usage();
    return RunVisualize(rest[0], rest.size() == 2 ? rest[1] : "");
  }
  if (command == "estimate") {
    if (rest.empty()) return Usage();
    std::string directory = rest[0];
    rest.erase(rest.begin());
    return RunEstimate(directory, std::move(rest));
  }
  if (command == "profile") {
    if (rest.empty()) return Usage();
    std::string path = rest[0];
    rest.erase(rest.begin());
    return RunProfile(path, std::move(rest));
  }
  return Usage();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  std::vector<std::string> rest(argv + 2, argv + argc);

  // Strip the global flags; subcommand flags stay for Dispatch.
  efes::Status parsed =
      GlobalFlags().Parse(&rest, efes::FlagSet::UnknownFlags::kKeep);
  if (!parsed.ok()) return FlagError(parsed);
  if (g_flags.no_cache && !g_flags.cache_dir.empty()) {
    std::fprintf(stderr, "--no-cache and --cache-dir are exclusive\n");
    return Usage(kExitUsage);
  }

  // The profile cache: in-memory per run by default, persisted with
  // --cache-dir, off with --no-cache. A missing/corrupt snapshot is a
  // cold start, never an error.
  efes::ProfileCache cache;
  if (!g_flags.no_cache) {
    g_cache = &cache;
    if (!g_flags.cache_dir.empty()) {
      efes::Status loaded = cache.LoadFromFile(
          efes::ProfileCache::FilePathInDirectory(g_flags.cache_dir));
      if (!loaded.ok()) {
        std::fprintf(stderr, "warning: cache load failed: %s\n",
                     loaded.ToString().c_str());
      }
    }
  }
  efes::ScopedProfileCache scoped_cache(g_cache);
  // The streaming-profiling policy (--approx/--chunk-rows/--max-memory)
  // is ambient for the whole invocation, like the cache above; engine
  // runs re-install it from RunOptions::profile.
  efes::ScopedProfileOptions scoped_profile(g_flags.profile);

  // --timeout-ms: install a deadline-carrying cancel token for the whole
  // invocation. The engine and the parallel loops check it at batch
  // boundaries, so expiry aborts with kDeadlineExceeded (exit 3 via
  // Fail) instead of producing a torn result.
  efes::CancelToken deadline_token;
  std::optional<efes::ScopedCancelToken> scoped_deadline;
  if (g_flags.timeout_ms > 0) {
    deadline_token.SetDeadline(g_flags.timeout_ms);
    scoped_deadline.emplace(&deadline_token);
  }

  int code = Dispatch(command, std::move(rest));
  if (code != 0) return code;

  if (g_cache != nullptr && !g_flags.cache_dir.empty()) {
    efes::Status saved = cache.SaveToFile(
        efes::ProfileCache::FilePathInDirectory(g_flags.cache_dir));
    if (!saved.ok()) {
      // A failed save degrades the next run to cold; it does not fail
      // this one.
      std::fprintf(stderr, "warning: cache save failed: %s\n",
                   saved.ToString().c_str());
    }
  }
  return EmitTelemetry();
}
