// The EFES command-line interface — the file-based counterpart of the
// original prototype's CLI (Section 6.1).
//
//   efes export-example <dir>      write the Figure 2 scenario to disk
//   efes assess <dir> [--discover] phase 1: complexity reports only
//                                  (--discover profiles the sources first)
//   efes estimate <dir> [options]  phase 1 + 2: full effort estimate
//       --quality=high|low         expected result quality (default high)
//       --config=<file>            effort configuration (effort_config.h)
//       --format=text|json         output format
//   efes execute <dir> <out>       actually perform the integration and
//                                  persist the integrated target
//       --quality=high|low         conflict-resolution strategy
//   efes plan <dir>                cost-benefit execution order
//       --quality=high|low         expected result quality (default high)
//   efes match <dir>               propose correspondences with the matcher
//   efes visualize <dir> [out.dot] Graphviz problem heatmap
//   efes study                     run the Figure 6/7 cross-validated study
//
// Telemetry/execution flags, accepted by every subcommand:
//   --metrics                      print the metrics table after the run
//   --trace=<file>                 write Chrome trace-event JSON spans
//                                  (open in chrome://tracing / Perfetto)
//   --log-level=<level>            debug|info|warn|error|off (default off;
//                                  log lines go to stderr)
//   --threads=<n>                  worker threads for parallel phases
//                                  (default: hardware concurrency; 1 runs
//                                  everything sequentially; output is
//                                  identical either way)
//   --lenient                      load scenario directories in recover
//                                  mode: malformed rows/files are skipped
//                                  or repaired and reported as DataIssue
//                                  diagnostics on stderr instead of
//                                  aborting the run
//   --inject-fault=<point>[:spec]  arm a deterministic fault point
//                                  (common/fault.h grammar; repeatable;
//                                  also via the EFES_FAULTS environment
//                                  variable) — for robustness testing
//
// Exit codes: 0 success, 1 runtime error, 2 usage error, 64 unknown flag.
// Scenario directories follow the layout of scenario/scenario_io.h.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "efes/common/fault.h"
#include "efes/common/file_io.h"
#include "efes/common/parallel.h"
#include "efes/common/string_util.h"
#include "efes/core/effort_config.h"
#include "efes/execute/integration_executor.h"
#include "efes/experiment/cost_benefit.h"
#include "efes/experiment/default_pipeline.h"
#include "efes/experiment/json_export.h"
#include "efes/experiment/study.h"
#include "efes/experiment/visualization.h"
#include "efes/matching/schema_matcher.h"
#include "efes/profiling/constraint_discovery.h"
#include "efes/scenario/paper_example.h"
#include "efes/scenario/scenario_io.h"
#include "efes/telemetry/log.h"
#include "efes/telemetry/metrics.h"
#include "efes/telemetry/report.h"
#include "efes/telemetry/trace.h"

namespace {

constexpr int kExitUsage = 2;
constexpr int kExitUnknownFlag = 64;

int Usage(int exit_code = kExitUsage) {
  std::fprintf(
      stderr,
      "usage:\n"
      "  efes export-example <dir>\n"
      "  efes assess <dir> [--discover]\n"
      "  efes estimate <dir> [--quality=high|low] [--config=<file>]\n"
      "                     [--format=text|json] [--out=<file>]\n"
      "  efes match <dir>\n"
      "  efes execute <dir> <out-dir> [--quality=high|low]\n"
      "  efes plan <dir> [--quality=high|low]\n"
      "  efes visualize <dir> [<out.dot>]\n"
      "  efes study\n"
      "telemetry/execution flags (any subcommand):\n"
      "  --metrics            print the metrics table after the run\n"
      "  --trace=<file>       write Chrome trace-event JSON (chrome://tracing)\n"
      "  --log-level=<level>  debug|info|warn|error|off (default off)\n"
      "  --threads=<n>        worker threads for parallel phases (default:\n"
      "                       hardware concurrency; results do not depend\n"
      "                       on the thread count)\n"
      "  --lenient            recover-mode scenario loading: skip/repair\n"
      "                       defects, report them on stderr\n"
      "  --inject-fault=<point>[:spec]  arm a deterministic fault point\n"
      "                       (robustness testing; see common/fault.h)\n");
  return exit_code;
}

/// Unknown flags fail with their own exit code so scripts can tell a
/// mistyped flag from a misshapen invocation.
int UnknownFlag(const std::string& option) {
  std::fprintf(stderr, "unknown option: %s\n", option.c_str());
  return Usage(kExitUnknownFlag);
}

int Fail(const efes::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// Telemetry flags, parsed off the command line before dispatch so every
/// subcommand accepts them uniformly.
struct TelemetryFlags {
  bool metrics = false;
  std::string trace_path;
  /// Set when the subcommand already embedded the snapshot in its own
  /// output (estimate --format=json), so main() skips the table.
  bool metrics_emitted_inline = false;
  /// --lenient: load scenarios in recover mode, reporting DataIssues on
  /// stderr instead of aborting on the first defect.
  bool lenient = false;
};

TelemetryFlags g_telemetry;

/// Strips the telemetry/execution flags (--metrics / --trace= /
/// --log-level= / --threads= / --lenient / --inject-fault=) out of
/// `args` and applies them. Returns an exit code, or -1 to continue.
int ApplyTelemetryFlags(std::vector<std::string>* args) {
  std::vector<std::string> remaining;
  for (std::string& arg : *args) {
    if (arg == "--metrics") {
      g_telemetry.metrics = true;
    } else if (arg.rfind("--trace=", 0) == 0) {
      g_telemetry.trace_path = arg.substr(8);
      if (g_telemetry.trace_path.empty()) return UnknownFlag(arg);
      efes::TraceRecorder::Global().set_enabled(true);
    } else if (arg.rfind("--log-level=", 0) == 0) {
      efes::LogLevel level;
      if (!efes::ParseLogLevel(arg.substr(12), &level)) {
        return UnknownFlag(arg);
      }
      // EFES_LINT_ALLOW(banned-function): process-lifetime log sink, leaked on purpose
      static efes::StderrSink* sink = new efes::StderrSink();
      efes::Logger::Global().set_sink(sink);
      efes::Logger::Global().set_level(level);
    } else if (arg.rfind("--threads=", 0) == 0) {
      std::string value = arg.substr(10);
      char* end = nullptr;
      unsigned long threads = std::strtoul(value.c_str(), &end, 10);
      if (value.empty() || *end != '\0' || threads == 0) {
        return UnknownFlag(arg);
      }
      efes::SetThreadCountOverride(static_cast<size_t>(threads));
    } else if (arg == "--lenient") {
      g_telemetry.lenient = true;
    } else if (arg.rfind("--inject-fault=", 0) == 0) {
      efes::Status armed =
          efes::FaultRegistry::Global().ArmFromString(arg.substr(15));
      if (!armed.ok()) {
        std::fprintf(stderr, "bad %s: %s\n", arg.c_str(),
                     armed.ToString().c_str());
        return kExitUsage;
      }
    } else {
      remaining.push_back(std::move(arg));
    }
  }
  *args = std::move(remaining);
  return -1;
}

/// Prints the metrics table / writes the trace file after a successful
/// run. Without telemetry flags this is a no-op, leaving the output
/// byte-identical to the untelemetered CLI.
int EmitTelemetry() {
  if (g_telemetry.metrics && !g_telemetry.metrics_emitted_inline) {
    std::string report = efes::RenderMetricsReport(
        efes::MetricsRegistry::Global().Snapshot());
    std::printf("=== telemetry ===\n%s", report.c_str());
  }
  if (!g_telemetry.trace_path.empty()) {
    efes::Status written = efes::WriteFileAtomic(
        g_telemetry.trace_path,
        efes::TraceRecorder::Global().ToChromeTraceJson());
    if (!written.ok()) return Fail(written);
    std::printf("trace written to %s (open in chrome://tracing)\n",
                g_telemetry.trace_path.c_str());
  }
  return 0;
}

/// Loads a scenario honoring --lenient. In lenient mode the survived
/// defects are listed on stderr (stdout stays clean for the actual
/// output) and the run proceeds on the salvaged scenario.
efes::Result<efes::IntegrationScenario> LoadScenarioCli(
    const std::string& directory) {
  efes::LoadOptions options;
  if (g_telemetry.lenient) {
    options.mode = efes::LoadOptions::Mode::kRecover;
  }
  efes::ScenarioLoadReport report;
  auto scenario = efes::LoadScenario(directory, options, &report);
  if (scenario.ok() && report.degraded) {
    std::fprintf(stderr,
                 "lenient load: %zu issue(s) recovered from:\n%s",
                 report.issues.size(),
                 efes::RenderDataIssues(report.issues).c_str());
  }
  return scenario;
}

int RunExportExample(const std::string& directory) {
  auto scenario = efes::MakePaperExample();
  if (!scenario.ok()) return Fail(scenario.status());
  efes::Status status = efes::SaveScenario(*scenario, directory);
  if (!status.ok()) return Fail(status);
  std::printf("wrote the Figure 2 example scenario to %s\n",
              directory.c_str());
  return 0;
}

// Completeness (Section 3.1): profile each source and declare the mined
// constraints on its schema before assessing.
efes::Status DiscoverSourceConstraints(efes::IntegrationScenario* scenario) {
  for (efes::SourceBinding& source : scenario->sources) {
    EFES_ASSIGN_OR_RETURN(
        efes::Database completed,
        efes::DatabaseWithDiscoveredConstraints(source.database));
    std::printf("# %s: %zu constraints after profiling (was %zu)\n",
                source.database.name().c_str(),
                completed.schema().constraints().size(),
                source.database.schema().constraints().size());
    source.database = std::move(completed);
  }
  return efes::Status::OK();
}

int RunAssess(const std::string& directory,
              const std::vector<std::string>& options) {
  bool discover = false;
  for (const std::string& option : options) {
    if (option == "--discover") {
      discover = true;
    } else {
      return UnknownFlag(option);
    }
  }
  auto scenario = LoadScenarioCli(directory);
  if (!scenario.ok()) return Fail(scenario.status());
  if (discover) {
    efes::Status status = DiscoverSourceConstraints(&*scenario);
    if (!status.ok()) return Fail(status);
  }
  efes::EfesEngine engine = efes::MakeDefaultEngine();
  auto reports = engine.AssessComplexity(*scenario);
  if (!reports.ok()) return Fail(reports.status());
  for (const auto& report : *reports) {
    std::printf("=== %s ===\n%s\n", report->module_name().c_str(),
                report->ToText().c_str());
  }
  return 0;
}

int RunEstimate(const std::string& directory,
                const std::vector<std::string>& options) {
  efes::ExpectedQuality quality = efes::ExpectedQuality::kHighQuality;
  efes::EstimationConfig config;
  bool json = false;
  std::string out_path;
  for (const std::string& option : options) {
    if (option == "--format=json") {
      json = true;
    } else if (option == "--format=text") {
      json = false;
    } else if (option == "--quality=high") {
      quality = efes::ExpectedQuality::kHighQuality;
    } else if (option == "--quality=low") {
      quality = efes::ExpectedQuality::kLowEffort;
    } else if (option.rfind("--config=", 0) == 0) {
      auto loaded = efes::LoadEffortConfig(option.substr(9));
      if (!loaded.ok()) return Fail(loaded.status());
      config = std::move(*loaded);
    } else if (option.rfind("--out=", 0) == 0) {
      out_path = option.substr(6);
      if (out_path.empty()) return UnknownFlag(option);
    } else {
      return UnknownFlag(option);
    }
  }
  auto scenario = LoadScenarioCli(directory);
  if (!scenario.ok()) return Fail(scenario.status());
  efes::EfesEngine engine =
      efes::MakeDefaultEngine(std::move(config.model));
  auto result = engine.Run(*scenario, quality, config.settings);
  if (!result.ok()) return Fail(result.status());
  if (!out_path.empty()) {
    // --out writes the JSON export atomically (temp + rename): a reader
    // polling the file never sees a half-written document.
    efes::Status written =
        efes::WriteEstimationResultJsonFile(*result, out_path);
    if (!written.ok()) return Fail(written);
    std::printf("estimate written to %s\n", out_path.c_str());
    return 0;
  }
  if (json) {
    if (g_telemetry.metrics) {
      // Embed the snapshot as the export's `telemetry` section instead
      // of appending a table that would trail the JSON document.
      g_telemetry.metrics_emitted_inline = true;
      std::printf("%s\n",
                  efes::EstimationResultToJson(
                      *result, efes::MetricsRegistry::Global().Snapshot())
                      .c_str());
    } else {
      std::printf("%s\n", efes::EstimationResultToJson(*result).c_str());
    }
  } else {
    std::printf("%s", result->ToText().c_str());
  }
  return 0;
}

int RunMatch(const std::string& directory) {
  auto scenario = LoadScenarioCli(directory);
  if (!scenario.ok()) return Fail(scenario.status());
  efes::SchemaMatcher matcher;
  for (const efes::SourceBinding& source : scenario->sources) {
    std::printf("# %s -> target\n", source.database.name().c_str());
    efes::CorrespondenceSet discovered =
        matcher.Match(source.database, scenario->target);
    std::printf("%s",
                efes::WriteCorrespondences(discovered).c_str());
  }
  return 0;
}

int RunExecute(const std::string& directory,
               const std::string& output_directory,
               const std::vector<std::string>& options) {
  efes::IntegrationExecutor::Options executor_options;
  for (const std::string& option : options) {
    if (option == "--quality=high") {
      executor_options.quality = efes::ExpectedQuality::kHighQuality;
    } else if (option == "--quality=low") {
      executor_options.quality = efes::ExpectedQuality::kLowEffort;
    } else {
      return UnknownFlag(option);
    }
  }
  auto scenario = LoadScenarioCli(directory);
  if (!scenario.ok()) return Fail(scenario.status());
  efes::IntegrationExecutor executor(executor_options);
  efes::ExecutionReport report;
  auto integrated = executor.Execute(*scenario, &report);
  if (!integrated.ok()) return Fail(integrated.status());
  // Persist the integrated instance as a target-only scenario directory.
  efes::IntegrationScenario result("integrated", std::move(*integrated));
  efes::Status status = efes::SaveScenario(result, output_directory);
  if (!status.ok()) return Fail(status);
  std::printf("%s\nintegrated database written to %s\n",
              report.ToString().c_str(), output_directory.c_str());
  return 0;
}

int RunPlan(const std::string& directory,
            const std::vector<std::string>& options) {
  efes::ExpectedQuality quality = efes::ExpectedQuality::kHighQuality;
  for (const std::string& option : options) {
    if (option == "--quality=high") {
      quality = efes::ExpectedQuality::kHighQuality;
    } else if (option == "--quality=low") {
      quality = efes::ExpectedQuality::kLowEffort;
    } else {
      return UnknownFlag(option);
    }
  }
  auto scenario = LoadScenarioCli(directory);
  if (!scenario.ok()) return Fail(scenario.status());
  efes::EfesEngine engine = efes::MakeDefaultEngine();
  auto result = engine.Run(*scenario, quality, {});
  if (!result.ok()) return Fail(result.status());
  efes::CostBenefitCurve curve =
      efes::AnalyzeCostBenefit(result->estimate);
  std::printf("%s", curve.ToText().c_str());
  std::printf(
      "\n50%% quality after %.0f min, 90%% after %.0f min, done after "
      "%.0f min.\n",
      curve.MinutesToReach(0.5), curve.MinutesToReach(0.9),
      curve.total_minutes);
  return 0;
}

int RunVisualize(const std::string& directory,
                 const std::string& output_path) {
  auto scenario = LoadScenarioCli(directory);
  if (!scenario.ok()) return Fail(scenario.status());
  efes::EfesEngine engine = efes::MakeDefaultEngine();
  auto result = engine.Run(*scenario, efes::ExpectedQuality::kHighQuality,
                           {});
  if (!result.ok()) return Fail(result.status());
  std::string dot = efes::RenderProblemHeatmapDot(
      *scenario, efes::CollectProblemCounts(*result));
  if (output_path.empty() || output_path == "-") {
    std::printf("%s", dot.c_str());
    return 0;
  }
  efes::Status written = efes::WriteFileAtomic(output_path, dot);
  if (!written.ok()) return Fail(written);
  std::printf("problem heatmap written to %s (render with: dot -Tsvg %s)\n",
              output_path.c_str(), output_path.c_str());
  return 0;
}

int RunStudy() {
  auto studies = efes::RunCrossValidatedStudies();
  if (!studies.ok()) return Fail(studies.status());
  std::printf("%s\n%s\noverall rmse: Efes %.3f vs Counting %.3f\n",
              studies->bibliographic.ToText().c_str(),
              studies->music.ToText().c_str(), studies->overall_efes_rmse,
              studies->overall_counting_rmse);
  return 0;
}

int Dispatch(const std::string& command, std::vector<std::string> rest) {
  if (command == "study") {
    for (const std::string& option : rest) {
      if (efes::StartsWith(option, "--")) return UnknownFlag(option);
    }
    if (!rest.empty()) return Usage();
    return RunStudy();
  }
  if (command == "export-example") {
    if (rest.size() != 1) return Usage();
    return RunExportExample(rest[0]);
  }
  if (command == "assess") {
    if (rest.empty()) return Usage();
    std::string directory = rest[0];
    rest.erase(rest.begin());
    return RunAssess(directory, rest);
  }
  if (command == "match") {
    if (rest.size() != 1) return Usage();
    return RunMatch(rest[0]);
  }
  if (command == "execute") {
    if (rest.size() < 2) return Usage();
    std::string directory = rest[0];
    std::string output = rest[1];
    rest.erase(rest.begin(), rest.begin() + 2);
    return RunExecute(directory, output, rest);
  }
  if (command == "plan") {
    if (rest.empty()) return Usage();
    std::string directory = rest[0];
    rest.erase(rest.begin());
    return RunPlan(directory, rest);
  }
  if (command == "visualize") {
    if (rest.empty() || rest.size() > 2) return Usage();
    return RunVisualize(rest[0], rest.size() == 2 ? rest[1] : "");
  }
  if (command == "estimate") {
    if (rest.empty()) return Usage();
    std::string directory = rest[0];
    rest.erase(rest.begin());
    return RunEstimate(directory, rest);
  }
  return Usage();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  std::vector<std::string> rest(argv + 2, argv + argc);

  int telemetry_code = ApplyTelemetryFlags(&rest);
  if (telemetry_code >= 0) return telemetry_code;

  int code = Dispatch(command, std::move(rest));
  if (code != 0) return code;
  return EmitTelemetry();
}
