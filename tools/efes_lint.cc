// efes_lint — project-invariant static analyzer for the EFES tree.
//
//   efes_lint [flags] <path>...       lint files / directory trees
//
// Paths may be single files or directories; directories are walked
// recursively for C++ sources (.h .hh .hpp .cc .cpp), visited in sorted
// order so output is byte-stable across filesystems. The check catalog,
// the suppression syntax, and the allowlist policy live in
// src/efes/lint/lint.h (and DESIGN.md §10).
//
// Flags:
//   --format=text|json|sarif  report format (default text)
//   --show-suppressed    include suppressed findings in text output
//   --list-checks        print the check catalog and exit
//
// Exit codes: 0 clean, 1 unsuppressed findings or I/O error, 2 usage
// error, 64 unknown flag — matching the efes CLI convention.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "efes/common/file_io.h"
#include "efes/common/flags.h"
#include "efes/common/result.h"
#include "efes/lint/lint.h"
#include "efes/lint/sarif.h"

namespace {

namespace fs = std::filesystem;

constexpr int kExitFindings = 1;
constexpr int kExitUsage = 2;
constexpr int kExitUnknownFlag = 64;

int Usage(int exit_code = kExitUsage) {
  std::fprintf(stderr,
               "usage: efes_lint [--format=text|json|sarif] "
               "[--show-suppressed]\n"
               "                 [--list-checks] <path>...\n"
               "Paths are C++ files or directories (walked recursively).\n");
  return exit_code;
}

bool HasLintableExtension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".hh" || ext == ".hpp" || ext == ".cc" ||
         ext == ".cpp";
}

/// Expands files/directories into a sorted list of lintable sources.
/// Nonexistent paths are reported and make the run fail.
bool CollectFiles(const std::vector<std::string>& paths,
                  std::vector<std::string>* files) {
  bool ok = true;
  for (const std::string& p : paths) {
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (fs::recursive_directory_iterator it(p, ec), end;
           !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file() && HasLintableExtension(it->path())) {
          files->push_back(it->path().generic_string());
        }
      }
      if (ec) {
        std::fprintf(stderr, "efes_lint: cannot walk %s: %s\n", p.c_str(),
                     ec.message().c_str());
        ok = false;
      }
    } else if (fs::is_regular_file(p, ec)) {
      files->push_back(fs::path(p).generic_string());
    } else {
      std::fprintf(stderr, "efes_lint: no such file or directory: %s\n",
                   p.c_str());
      ok = false;
    }
  }
  std::sort(files->begin(), files->end());
  files->erase(std::unique(files->begin(), files->end()), files->end());
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::string format = "text";
  bool show_suppressed = false;
  bool list_checks = false;
  efes::FlagSet flags;
  flags.AddChoice("format", {"text", "json", "sarif"}, "report format",
                  &format);
  flags.AddBool("show-suppressed",
                "include suppressed findings in text output",
                &show_suppressed);
  flags.AddBool("list-checks", "print the check catalog and exit",
                &list_checks);

  std::vector<std::string> paths(argv + 1, argv + argc);
  efes::Status parsed = flags.Parse(&paths);
  if (!parsed.ok()) {
    std::fprintf(stderr, "efes_lint: %s\n", parsed.message().c_str());
    if (efes::IsUnknownFlagError(parsed)) return kExitUnknownFlag;
    return Usage();
  }
  if (list_checks) {
    for (const std::string& id : efes::lint::AllCheckIds()) {
      std::printf("%s\n", id.c_str());
    }
    return 0;
  }
  if (paths.empty()) return Usage();

  std::vector<std::string> files;
  bool paths_ok = CollectFiles(paths, &files);

  // Load every file up front (Result<T> carries per-file I/O errors), so
  // the index pass sees the full tree before any check runs.
  std::vector<std::pair<std::string, std::string>> sources;
  sources.reserve(files.size());
  bool io_ok = true;
  for (const std::string& file : files) {
    efes::Result<std::string> content = efes::ReadFileToString(file);
    if (!content.ok()) {
      std::fprintf(stderr, "efes_lint: %s: %s\n", file.c_str(),
                   content.status().ToString().c_str());
      io_ok = false;
      continue;
    }
    sources.emplace_back(file, std::move(content).value());
  }

  efes::lint::Linter linter;
  std::vector<efes::lint::Finding> findings = linter.Run(sources);

  if (format == "json") {
    std::printf("%s\n", efes::lint::RenderJson(findings).c_str());
  } else if (format == "sarif") {
    std::printf("%s\n",
                efes::lint::RenderSarif("efes_lint", findings).c_str());
  } else {
    std::fputs(efes::lint::RenderText(findings, show_suppressed).c_str(),
               stdout);
  }
  if (!paths_ok || !io_ok) return kExitFindings;
  return efes::lint::CountUnsuppressed(findings) == 0 ? 0 : kExitFindings;
}
