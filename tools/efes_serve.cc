// efes_serve — the estimation server (DESIGN.md §14).
//
// Speaks the newline-delimited JSON protocol of src/efes/serve/protocol.h
// on stdin/stdout, keeping the profile cache and thread pool warm across
// requests:
//
//   printf '%s\n' '{"id":"1","op":"open","session":"m","dir":"out/ex"}'
//     '{"id":"2","op":"estimate","session":"m"}' | efes_serve
//
// Graceful shutdown: SIGTERM/SIGINT (or a `shutdown` request) stops
// admission — further lines are refused with kUnavailable — drains every
// in-flight request, flushes the cache snapshot atomically, and exits 0.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "efes/cache/profile_cache.h"
#include "efes/common/fault.h"
#include "efes/common/flags.h"
#include "efes/common/parallel.h"
#include "efes/common/status.h"
#include "efes/serve/server.h"

namespace {

constexpr int kExitUsage = 2;
constexpr int kExitUnknownFlag = 64;

struct ServeFlags {
  size_t workers = 4;
  size_t max_queue = 64;
  size_t max_sessions = 32;
  size_t default_deadline_ms = 0;
  size_t watchdog_grace_ms = 200;
  std::string cache_dir;
  bool no_cache = false;
};

ServeFlags g_flags;

// SIGTERM/SIGINT handler target. RequestShutdown is one relaxed atomic
// store, so this is async-signal-safe.
efes::EfesServer* g_server = nullptr;

void HandleSignal(int) {
  if (g_server != nullptr) g_server->RequestShutdown();
}

efes::FlagSet& Flags() {
  static efes::FlagSet* flags = [] {
    auto* f = new efes::FlagSet();  // EFES_LINT_ALLOW(banned-function): process-lifetime flag registry, leaked on purpose
    f->AddUint("workers", "<n>", "request worker threads (default 4)",
               &g_flags.workers);
    f->AddUint("max-queue", "<n>",
               "admitted-but-unstarted requests before overload shedding "
               "(default 64)",
               &g_flags.max_queue);
    f->AddUint("max-sessions", "<n>",
               "open-session cap (default 32)", &g_flags.max_sessions);
    f->AddUint("default-deadline-ms", "<ms>",
               "deadline for requests that carry none (default: none)",
               &g_flags.default_deadline_ms);
    f->AddUint("watchdog-grace-ms", "<ms>",
               "grace past the deadline before the watchdog force-fails "
               "a request (default 200)",
               &g_flags.watchdog_grace_ms);
    f->AddAction("threads", "<n>",
                 "worker threads for parallel phases inside a request "
                 "(default: hardware concurrency; results do not depend "
                 "on the thread count)",
                 [](std::string_view value) {
                   std::string buffer(value);
                   char* end = nullptr;
                   unsigned long long threads =
                       std::strtoull(buffer.c_str(), &end, 10);
                   if (buffer.empty() ||
                       end != buffer.c_str() + buffer.size() ||
                       threads == 0) {
                     return efes::Status::InvalidArgument(
                         "expected a positive thread count, got '" + buffer +
                         "'");
                   }
                   efes::SetThreadCountOverride(
                       static_cast<size_t>(threads));
                   return efes::Status::OK();
                 });
    f->AddAction("inject-fault", "<point>[:spec]",
                 "arm a process-wide deterministic fault point (requests "
                 "can also arm per-request faults via their \"faults\" "
                 "field)",
                 [](std::string_view value) {
                   return efes::FaultRegistry::Global().ArmFromString(
                       std::string(value));
                 });
    f->AddString("cache-dir", "<dir>",
                 "persist the profile cache in this directory (loaded at "
                 "startup, flushed on drain)",
                 &g_flags.cache_dir);
    f->AddBool("no-cache", "disable the profile cache",
               &g_flags.no_cache);
    return f;
  }();
  return *flags;
}

int Usage(int exit_code) {
  std::fprintf(stderr,
               "usage: efes_serve [flags]\n"
               "reads newline-delimited JSON requests on stdin, writes one\n"
               "JSON response line per request on stdout (see README).\n"
               "flags:\n%s",
               Flags().UsageText().c_str());
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  efes::Status parsed = Flags().Parse(&args);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.message().c_str());
    return Usage(efes::IsUnknownFlagError(parsed) ? kExitUnknownFlag
                                                  : kExitUsage);
  }
  if (!args.empty()) {
    std::fprintf(stderr, "unexpected argument: %s\n", args.front().c_str());
    return Usage(kExitUsage);
  }
  if (g_flags.no_cache && !g_flags.cache_dir.empty()) {
    std::fprintf(stderr, "--no-cache and --cache-dir are exclusive\n");
    return Usage(kExitUsage);
  }

  efes::ProfileCache cache;
  efes::ServeOptions options;
  options.workers = g_flags.workers;
  options.max_queue = g_flags.max_queue;
  options.max_sessions = g_flags.max_sessions;
  options.default_deadline_ms = g_flags.default_deadline_ms;
  options.watchdog_grace_ms = g_flags.watchdog_grace_ms;
  if (!g_flags.no_cache) {
    options.cache = &cache;
    if (!g_flags.cache_dir.empty()) {
      std::string path =
          efes::ProfileCache::FilePathInDirectory(g_flags.cache_dir);
      options.cache_save_path = path;
      efes::Status loaded = cache.LoadFromFile(path);
      if (!loaded.ok()) {
        // A missing/corrupt snapshot is a cold start, never an error.
        std::fprintf(stderr, "warning: cache load failed: %s\n",
                     loaded.ToString().c_str());
      }
    }
  }

  efes::EfesServer server(std::move(options));
  g_server = &server;
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);

  efes::Status served = server.ServeFd(/*in_fd=*/0, /*out_fd=*/1);
  g_server = nullptr;
  if (!served.ok()) {
    std::fprintf(stderr, "error: %s\n", served.ToString().c_str());
    return 1;
  }
  return 0;
}
