#!/usr/bin/env bash
# Runs the perf_* benches and appends their machine-readable JSON lines
# (one cold + one warm record per bench, see bench/bench_json.h) to
# BENCH_perf.json, building the trajectory of the repo's performance over
# time. By default the google-benchmark suites are skipped (their filter
# matches nothing) so only the instrumented cold/warm workload pair runs;
# `--full` runs the suites too (human-readable, stdout only). `--scale`
# additionally runs the perf_profiling streaming workload at
# --rows=1000000 and --rows=10000000 (8 columns each, far beyond what a
# whole-column profile would hold in memory), appending cold/warm
# records tagged perf_profiling_rows1e6 / perf_profiling_rows1e7. Usage:
#
#   tools/run_benches.sh [--full] [--scale] [build-dir]   # default: build
#
# The output file can be redirected with BENCH_OUT=<file>.
set -euo pipefail

cd "$(dirname "$0")/.."

FULL=0
SCALE=0
while [[ "${1:-}" == --* ]]; do
  if [[ "$1" == "--full" ]]; then
    FULL=1
  elif [[ "$1" == "--scale" ]]; then
    SCALE=1
  else
    echo "run_benches: unknown option $1" >&2
    exit 2
  fi
  shift
done
BUILD_DIR="${1:-build}"
OUT="${BENCH_OUT:-BENCH_perf.json}"

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j --target \
  perf_csg perf_profiling perf_detectors perf_executor perf_dedup

ARGS=()
if [[ "$FULL" -eq 0 ]]; then
  # A filter no suite matches: google-benchmark runs nothing, the
  # cold/warm workload pair still runs and emits its JSON lines.
  ARGS+=("--benchmark_filter=^$")
fi

APPENDED=0
for bench in "$BUILD_DIR"/bench/perf_*; do
  [[ -x "$bench" ]] || continue
  "$bench" ${ARGS[@]+"${ARGS[@]}"} | grep '^{' >> "$OUT"
  APPENDED=$((APPENDED + 2))
done

if [[ "$SCALE" -eq 1 ]]; then
  for rows in 1000000 10000000; do
    "$BUILD_DIR"/bench/perf_profiling --rows="$rows" \
      ${ARGS[@]+"${ARGS[@]}"} | grep '^{' >> "$OUT"
    APPENDED=$((APPENDED + 2))
  done
fi

echo "run_benches: appended $APPENDED line(s); $OUT now has $(wc -l < "$OUT") line(s)"
