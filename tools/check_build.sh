#!/usr/bin/env bash
# Tier-1 verification with warnings promoted to errors.
#
# Configures a dedicated build tree with -DEFES_WERROR=ON, builds
# everything, and runs the full test suite. Exits nonzero on the first
# failure. Usage:
#
#   tools/check_build.sh [build-dir]     # default: build-werror
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-werror}"

cmake -B "$BUILD_DIR" -S . -DEFES_WERROR=ON
cmake --build "$BUILD_DIR" -j
ctest --test-dir "$BUILD_DIR" --output-on-failure -j

echo "check_build: OK (EFES_WERROR=ON, all tests passed)"
