#!/usr/bin/env bash
# Tier-1 verification with warnings promoted to errors.
#
# Default mode configures a dedicated build tree with -DEFES_WERROR=ON,
# builds everything, and runs the full test suite. `--tsan` adds a second
# configuration with -DEFES_TSAN=ON (-fsanitize=thread) and runs the
# threaded subset (telemetry, parallel, determinism) under the sanitizer.
# `--asan` configures with -DEFES_ASAN=ON (-fsanitize=address,undefined)
# and runs the full suite — the corruption and fault-injection tests are
# most valuable here, where a parser walking off a buffer actually traps.
# `--ubsan` configures with -DEFES_UBSAN=ON (undefined + integer checks,
# -fno-sanitize-recover) and runs the full suite; any UB aborts the test.
# `--lint` builds only the efes_lint tool and runs it over src/, tools/,
# tests/, and bench/ with --format=json, failing on any unsuppressed
# finding.
# `--analyze` builds efes_lint and efes_analyze and runs both: the
# linter over the full tree, the whole-program analyzer (lock
# discipline, cancellation coverage, layering, registry consistency)
# over src/ and tools/ against docs/registry/.
# `--cache-roundtrip` builds only the CLI, exports the paper example, and
# estimates it three times — cold with a fresh --cache-dir, warm against
# the saved snapshot, and once with --no-cache — then diffs the three
# JSON reports byte-for-byte and requires the warm run to have hits.
# `--explain-determinism` builds only the CLI and requires the --explain
# provenance tree (and the JSON provenance section) to be byte-identical
# across --threads=1/4/8 and cold/warm/uncached profile-cache states.
# `--bench-smoke` runs the perf_* benches via tools/run_benches.sh into a
# scratch file and checks each emitted a valid cold and warm JSON record.
# `--fuzz-corpus` builds only efes_fuzz and replays the checked-in
# data/fuzz_corpus.txt manifest across --threads=1/8 and cold/warm/
# disabled profile-cache states; all five reports must byte-diff equal
# and the aggregate recall line must be present.
# `--serve-soak` builds efes_serve + the CLI and soaks the server with
# three interleaved deterministic client streams mixing good, bad,
# fault-injected, and deadline-expired requests; gates on byte-identical
# responses across --threads=1/4/8, zero cross-request contamination
# (good responses unchanged by the hostile mix), file_io.retries staying
# 0 on a clean run, and a clean SIGTERM drain (exit 0).
# `--profile-scale` builds the CLI + efes_fuzz, amplifies a fuzz-
# generated source to 200k rows with a prepended high-distinct uid
# column, and profiles it under a --max-memory budget the exact
# whole-column path cannot satisfy: the sketch report must be
# byte-identical across --threads=1/4/8 and --chunk-rows=4096/16384/0,
# --approx=auto must match it byte-for-byte, and --approx=exact must
# refuse the budget with a nonzero exit.
# Exits nonzero on the first failure. Usage:
#
#   tools/check_build.sh [build-dir]                    # default: build-werror
#   tools/check_build.sh --tsan [build-dir]             # default: build-tsan
#   tools/check_build.sh --asan [build-dir]             # default: build-asan
#   tools/check_build.sh --ubsan [build-dir]            # default: build-ubsan
#   tools/check_build.sh --lint [build-dir]             # default: build-lint
#   tools/check_build.sh --analyze [build-dir]          # default: build-lint
#   tools/check_build.sh --cache-roundtrip [build-dir]  # default: build-cache
#   tools/check_build.sh --explain-determinism [build-dir]  # default: build-cache
#   tools/check_build.sh --bench-smoke [build-dir]      # default: build-bench
#   tools/check_build.sh --fuzz-corpus [build-dir]      # default: build-cache
#   tools/check_build.sh --serve-soak [build-dir]       # default: build-cache
#   tools/check_build.sh --profile-scale [build-dir]    # default: build-cache
set -euo pipefail

cd "$(dirname "$0")/.."

MODE=werror
if [[ "${1:-}" == "--tsan" ]]; then
  MODE=tsan
  shift
elif [[ "${1:-}" == "--asan" ]]; then
  MODE=asan
  shift
elif [[ "${1:-}" == "--ubsan" ]]; then
  MODE=ubsan
  shift
elif [[ "${1:-}" == "--lint" ]]; then
  MODE=lint
  shift
elif [[ "${1:-}" == "--analyze" ]]; then
  MODE=analyze
  shift
elif [[ "${1:-}" == "--cache-roundtrip" ]]; then
  MODE=cache
  shift
elif [[ "${1:-}" == "--explain-determinism" ]]; then
  MODE=explain
  shift
elif [[ "${1:-}" == "--bench-smoke" ]]; then
  MODE=bench
  shift
elif [[ "${1:-}" == "--fuzz-corpus" ]]; then
  MODE=fuzz
  shift
elif [[ "${1:-}" == "--serve-soak" ]]; then
  MODE=serve
  shift
elif [[ "${1:-}" == "--profile-scale" ]]; then
  MODE=scale
  shift
fi

if [[ "$MODE" == "tsan" ]]; then
  BUILD_DIR="${1:-build-tsan}"
  cmake -B "$BUILD_DIR" -S . -DEFES_TSAN=ON
  cmake --build "$BUILD_DIR" -j
  # The threaded tests: the parallel layer itself, the end-to-end
  # determinism harness, and the telemetry registry it reports through.
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j \
    -R '(Parallel|ThreadPool|ThreadCount|Telemetry|Metrics|Report)'
  echo "check_build: OK (EFES_TSAN=ON, threaded tests passed)"
elif [[ "$MODE" == "asan" ]]; then
  BUILD_DIR="${1:-build-asan}"
  cmake -B "$BUILD_DIR" -S . -DEFES_ASAN=ON
  cmake --build "$BUILD_DIR" -j
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j
  echo "check_build: OK (EFES_ASAN=ON, all tests passed)"
elif [[ "$MODE" == "ubsan" ]]; then
  BUILD_DIR="${1:-build-ubsan}"
  cmake -B "$BUILD_DIR" -S . -DEFES_UBSAN=ON
  cmake --build "$BUILD_DIR" -j
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j
  echo "check_build: OK (EFES_UBSAN=ON, all tests passed)"
elif [[ "$MODE" == "lint" ]]; then
  BUILD_DIR="${1:-build-lint}"
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j --target efes_lint
  "$BUILD_DIR/tools/efes_lint" --format=json src tools tests bench
  echo "check_build: OK (efes_lint, tree is lint-clean)"
elif [[ "$MODE" == "analyze" ]]; then
  BUILD_DIR="${1:-build-lint}"
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j --target efes_lint --target efes_analyze
  "$BUILD_DIR/tools/efes_lint" --format=json src tools tests bench
  "$BUILD_DIR/tools/efes_analyze" --format=json --registry=docs/registry \
    src tools
  echo "check_build: OK (efes_lint + efes_analyze, tree is analyze-clean)"
elif [[ "$MODE" == "cache" ]]; then
  BUILD_DIR="${1:-build-cache}"
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j --target efes_cli
  WORK="$(mktemp -d)"
  trap 'rm -rf "$WORK"' EXIT
  "$BUILD_DIR/tools/efes" export-example "$WORK/scenario"
  # Cold run populates the snapshot, warm run must serve from it, and a
  # --no-cache run recomputes everything; all three reports must be
  # byte-identical (the cache may change performance, never bytes).
  "$BUILD_DIR/tools/efes" estimate "$WORK/scenario" --format=json \
    --cache-dir="$WORK/cache" --out="$WORK/cold.json" --metrics \
    > "$WORK/cold.metrics"
  test -f "$WORK/cache/profile_cache.efes"
  "$BUILD_DIR/tools/efes" estimate "$WORK/scenario" --format=json \
    --cache-dir="$WORK/cache" --out="$WORK/warm.json" --metrics \
    > "$WORK/warm.metrics"
  "$BUILD_DIR/tools/efes" estimate "$WORK/scenario" --format=json \
    --no-cache --out="$WORK/uncached.json"
  diff "$WORK/cold.json" "$WORK/warm.json"
  diff "$WORK/cold.json" "$WORK/uncached.json"
  grep -q 'cache\.hits' "$WORK/warm.metrics"
  if grep -q 'cache\.misses' "$WORK/warm.metrics"; then
    echo "check_build: warm run still missed some profiles" >&2
    grep 'cache\.' "$WORK/warm.metrics" >&2
    exit 1
  fi
  echo "check_build: OK (cache roundtrip, cold/warm/uncached byte-identical)"
elif [[ "$MODE" == "explain" ]]; then
  BUILD_DIR="${1:-build-cache}"
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j --target efes_cli
  WORK="$(mktemp -d)"
  trap 'rm -rf "$WORK"' EXIT
  "$BUILD_DIR/tools/efes" export-example "$WORK/scenario"
  # The provenance tree must not depend on how the work was scheduled:
  # any thread count, cold or warm cache, or no cache at all.
  for threads in 1 4 8; do
    "$BUILD_DIR/tools/efes" estimate "$WORK/scenario" --explain \
      --threads="$threads" > "$WORK/explain-t$threads.txt"
    "$BUILD_DIR/tools/efes" estimate "$WORK/scenario" --explain \
      --format=json --threads="$threads" > "$WORK/explain-t$threads.json"
  done
  "$BUILD_DIR/tools/efes" estimate "$WORK/scenario" --explain \
    --cache-dir="$WORK/cache" > "$WORK/explain-cold.txt"
  "$BUILD_DIR/tools/efes" estimate "$WORK/scenario" --explain \
    --cache-dir="$WORK/cache" > "$WORK/explain-warm.txt"
  "$BUILD_DIR/tools/efes" estimate "$WORK/scenario" --explain \
    --no-cache > "$WORK/explain-nocache.txt"
  for variant in t4 t8; do
    diff "$WORK/explain-t1.txt" "$WORK/explain-$variant.txt"
    diff "$WORK/explain-t1.json" "$WORK/explain-$variant.json"
  done
  for variant in cold warm nocache; do
    diff "$WORK/explain-t1.txt" "$WORK/explain-$variant.txt"
  done
  grep -q 'total effort' "$WORK/explain-t1.txt"
  grep -q '"provenance"' "$WORK/explain-t1.json"
  echo "check_build: OK (--explain byte-identical across threads and cache states)"
elif [[ "$MODE" == "fuzz" ]]; then
  BUILD_DIR="${1:-build-cache}"
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j --target efes_fuzz
  WORK="$(mktemp -d)"
  trap 'rm -rf "$WORK"' EXIT
  # The corpus replay must not depend on how the work was scheduled:
  # any thread count, cold or warm cache, or no cache at all.
  for threads in 1 8; do
    "$BUILD_DIR/tools/efes_fuzz" corpus data/fuzz_corpus.txt \
      --threads="$threads" > "$WORK/corpus-t$threads.txt"
  done
  "$BUILD_DIR/tools/efes_fuzz" corpus data/fuzz_corpus.txt \
    --cache-dir="$WORK/cache" > "$WORK/corpus-cold.txt"
  test -f "$WORK/cache/profile_cache.efes"
  "$BUILD_DIR/tools/efes_fuzz" corpus data/fuzz_corpus.txt \
    --cache-dir="$WORK/cache" > "$WORK/corpus-warm.txt"
  "$BUILD_DIR/tools/efes_fuzz" corpus data/fuzz_corpus.txt \
    --no-cache > "$WORK/corpus-nocache.txt"
  for variant in t8 cold warm nocache; do
    diff "$WORK/corpus-t1.txt" "$WORK/corpus-$variant.txt"
  done
  grep -q '^fuzz summary: seeds=50 ' "$WORK/corpus-t1.txt"
  grep -q 'mean_recall=' "$WORK/corpus-t1.txt"
  echo "check_build: OK (fuzz corpus byte-identical across threads and cache states)"
elif [[ "$MODE" == "serve" ]]; then
  BUILD_DIR="${1:-build-cache}"
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j --target efes_serve --target efes_cli
  WORK="$(mktemp -d)"
  trap 'rm -rf "$WORK"' EXIT
  "$BUILD_DIR/tools/efes" export-example "$WORK/scenario"
  mkdir "$WORK/broken"  # an open against this dir must fail cleanly

  # Three interleaved deterministic client streams (sessions s1/s2/s3 run
  # on separate admission strands, so their requests execute concurrently
  # inside the server). `full` mode salts the stream with hostile
  # requests: unknown sessions, a broken open, per-request injected
  # faults, an already-expired deadline, and a malformed line. Good
  # request ids all start with "g" so the contamination gate can compare
  # them across runs.
  emit_requests() {  # $1 = full|good
    local mode="$1" c round
    for c in 1 2 3; do
      echo "{\"id\":\"g$c-open\",\"op\":\"open\",\"session\":\"s$c\",\"dir\":\"$WORK/scenario\"}"
    done
    for round in 1 2 3; do
      for c in 1 2 3; do
        echo "{\"id\":\"g$c-est$round\",\"op\":\"estimate\",\"session\":\"s$c\",\"quality\":\"low\",\"format\":\"json\"}"
        if [[ "$mode" == "full" ]]; then
          echo "{\"id\":\"f$c-est$round\",\"op\":\"estimate\",\"session\":\"s$c\",\"faults\":\"engine.assess:once\"}"
          echo "{\"id\":\"d$c-est$round\",\"op\":\"estimate\",\"session\":\"s$c\",\"deadline_ms\":0}"
        fi
      done
      if [[ "$mode" == "full" ]]; then
        echo "{\"id\":\"b-ghost$round\",\"op\":\"estimate\",\"session\":\"ghost\"}"
      fi
    done
    for c in 1 2 3; do
      echo "{\"id\":\"g$c-assess\",\"op\":\"assess\",\"session\":\"s$c\",\"modules\":\"mapping\"}"
    done
    if [[ "$mode" == "full" ]]; then
      echo "{\"id\":\"b-open\",\"op\":\"open\",\"session\":\"s4\",\"dir\":\"$WORK/broken\"}"
      echo "this line is not json"
      echo "{\"id\":\"b-op\",\"op\":\"frobnicate\",\"session\":\"s1\"}"
    fi
    echo '{"id":"stats","op":"stats"}'
    echo '{"id":"shutdown","op":"shutdown"}'
  }
  emit_requests full > "$WORK/full.req"
  emit_requests good > "$WORK/good.req"

  # The watchdog grace is huge so every expired deadline fails at a
  # cooperative checkpoint with its fixed message — the watchdog's
  # force-fail text would race it and break byte-determinism.
  serve() {  # $1 = threads, stdin = requests, stdout = responses
    "$BUILD_DIR/tools/efes_serve" --workers=4 --threads="$1" \
      --watchdog-grace-ms=600000
  }
  # Responses interleave nondeterministically across strands; per-request
  # bytes must not. Sort by line and drop the stats snapshot (its
  # counters legitimately depend on how much work had finished).
  normalize() { grep -v '^{"id":"stats"' "$1" | LC_ALL=C sort; }

  for threads in 1 4 8; do
    serve "$threads" < "$WORK/full.req" > "$WORK/full-t$threads.out"
    normalize "$WORK/full-t$threads.out" > "$WORK/full-t$threads.sorted"
  done
  for threads in 4 8; do
    diff "$WORK/full-t1.sorted" "$WORK/full-t$threads.sorted"
  done

  # Contamination gate: the hostile mix must not change one byte of any
  # good response — same sessions, same estimates, with and without
  # faulted/deadline/bad siblings sharing the server.
  serve 4 < "$WORK/good.req" > "$WORK/good-t4.out"
  grep '^{"id":"g' "$WORK/good-t4.out" | LC_ALL=C sort > "$WORK/good-only.sorted"
  grep '^{"id":"g' "$WORK/full-t4.out" | LC_ALL=C sort > "$WORK/good-in-mix.sorted"
  diff "$WORK/good-only.sorted" "$WORK/good-in-mix.sorted"

  # A clean soak never retries an atomic write.
  grep '^{"id":"stats"' "$WORK/good-t4.out" | grep -q '"file_io.retries":0'

  # Graceful drain: a server parked on an open pipe must exit 0 on
  # SIGTERM after answering what it already read.
  mkfifo "$WORK/in"
  # Background the binary itself (not the serve() function — that would
  # put a subshell between $! and the server, and SIGTERM would kill the
  # subshell instead).
  "$BUILD_DIR/tools/efes_serve" --workers=4 --threads=4 \
    --watchdog-grace-ms=600000 < "$WORK/in" > "$WORK/sigterm.out" &
  SERVER=$!
  exec 3> "$WORK/in"
  printf '{"id":"p","op":"ping"}\n' >&3
  for _ in $(seq 100); do
    grep -q '"pong"' "$WORK/sigterm.out" 2>/dev/null && break
    sleep 0.1
  done
  grep -q '"pong"' "$WORK/sigterm.out"
  kill -TERM "$SERVER"
  DRAIN_EXIT=0
  wait "$SERVER" || DRAIN_EXIT=$?
  exec 3>&-
  if [[ "$DRAIN_EXIT" -ne 0 ]]; then
    echo "check_build: SIGTERM drain exited $DRAIN_EXIT, want 0" >&2
    exit 1
  fi
  echo "check_build: OK (serve soak: byte-identical across --threads=1/4/8, no contamination, clean drain)"
elif [[ "$MODE" == "bench" ]]; then
  BUILD_DIR="${1:-build-bench}"
  WORK="$(mktemp -d)"
  trap 'rm -rf "$WORK"' EXIT
  BENCH_OUT="$WORK/BENCH_perf.json" tools/run_benches.sh "$BUILD_DIR"
  COLD="$(grep -c '"cache":"cold"' "$WORK/BENCH_perf.json")"
  WARM="$(grep -c '"cache":"warm"' "$WORK/BENCH_perf.json")"
  if [[ "$COLD" -eq 0 || "$COLD" -ne "$WARM" ]]; then
    echo "check_build: expected matching cold/warm records, got $COLD/$WARM" >&2
    exit 1
  fi
  # Every line must be a self-contained JSON record carrying the
  # histogram quantile fields.
  python3 - "$WORK/BENCH_perf.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    for line in f:
        record = json.loads(line)
        assert "bench" in record and "wall_ms" in record, record
        assert any(key.endswith(".p95_ms") for key in record["counters"]), \
            "no histogram quantile fields in " + record["bench"]
EOF
  echo "check_build: OK (bench smoke, $COLD cold + $WARM warm JSON records)"
elif [[ "$MODE" == "scale" ]]; then
  BUILD_DIR="${1:-build-cache}"
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j --target efes_cli --target efes_fuzz
  WORK="$(mktemp -d)"
  trap 'rm -rf "$WORK"' EXIT
  # A fuzz-generated source supplies realistic typed columns; awk
  # amplifies its body to 200k rows and prepends a unique uid column so
  # the exact distinct-value set cannot fit a 64 KiB sketch budget.
  "$BUILD_DIR/tools/efes_fuzz" generate "$WORK/scenario" --fuzz-seed=7
  SRC="$WORK/scenario/sources/fuzz_src2/data/s2_entity.csv"
  test -f "$SRC"
  awk -v target=200000 '
      NR == 1 { print "uid," $0; next }
      { body[++n] = $0 }
      END {
        rows = 0
        while (rows < target) {
          for (i = 1; i <= n && rows < target; i++) {
            rows++
            print "u" rows "_" i "," body[i]
          }
        }
      }' "$SRC" > "$WORK/big.csv"
  BUDGET=65536
  profile() {  # $1 = approx, $2 = chunk-rows, $3 = threads
    "$BUILD_DIR/tools/efes" profile "$WORK/big.csv" --approx="$1" \
      --chunk-rows="$2" --max-memory="$BUDGET" --threads="$3"
  }
  profile sketch 4096 1 > "$WORK/ref.txt"
  grep -q ': 200000 rows' "$WORK/ref.txt"
  grep -q ', sketch)' "$WORK/ref.txt"
  # The report must not depend on how the stream was cut or scheduled.
  for threads in 1 4 8; do
    for chunk in 4096 16384 0; do
      profile sketch "$chunk" "$threads" > "$WORK/out.txt"
      diff "$WORK/ref.txt" "$WORK/out.txt"
    done
  done
  # Auto degrades to the same sketch, byte for byte.
  profile auto 4096 4 > "$WORK/auto.txt"
  diff "$WORK/ref.txt" "$WORK/auto.txt"
  # Exact mode must refuse the budget rather than silently approximate.
  if profile exact 4096 1 > "$WORK/exact.out" 2> "$WORK/exact.err"; then
    echo "check_build: exact mode unexpectedly fit the memory budget" >&2
    exit 1
  fi
  grep -q 'approx=sketch' "$WORK/exact.err"
  echo "check_build: OK (profile scale: 200k rows byte-identical across threads/chunking, exact refused budget)"
else
  BUILD_DIR="${1:-build-werror}"
  cmake -B "$BUILD_DIR" -S . -DEFES_WERROR=ON
  cmake --build "$BUILD_DIR" -j
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j
  echo "check_build: OK (EFES_WERROR=ON, all tests passed)"
fi
