// efes_analyze — whole-program semantic analyzer for the EFES tree.
//
//   efes_analyze [flags] <path>...    analyze files / directory trees
//
// The second analyzer tier above efes_lint: merges per-file summaries
// and checks lock discipline (EFES_GUARDED_BY), cancellation-checkpoint
// coverage, layering (include back-edges and cycles), and registry
// consistency against docs/registry/ manifests. Check catalog and
// suppression syntax: src/efes/analyze/analyze.h and DESIGN.md §15.
//
// Flags:
//   --format=text|json|sarif  report format (default text)
//   --registry=<dir>          docs/registry/ manifest directory; the
//                             registry check is skipped (with a stderr
//                             note) when not given
//   --show-suppressed         include suppressed findings in text output
//   --list-checks             print the check catalog and exit
//
// Exit codes: 0 clean, 1 unsuppressed findings or I/O error, 2 usage
// error, 64 unknown flag — matching the efes CLI convention.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "efes/analyze/analyze.h"
#include "efes/analyze/registry.h"
#include "efes/common/file_io.h"
#include "efes/common/flags.h"
#include "efes/common/result.h"
#include "efes/lint/sarif.h"

namespace {

namespace fs = std::filesystem;

constexpr int kExitFindings = 1;
constexpr int kExitUsage = 2;
constexpr int kExitUnknownFlag = 64;

int Usage(int exit_code = kExitUsage) {
  std::fprintf(
      stderr,
      "usage: efes_analyze [--format=text|json|sarif] [--registry=<dir>]\n"
      "                    [--show-suppressed] [--list-checks] <path>...\n"
      "Paths are C++ files or directories (walked recursively).\n");
  return exit_code;
}

bool HasAnalyzableExtension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".hh" || ext == ".hpp" || ext == ".cc" ||
         ext == ".cpp";
}

bool CollectFiles(const std::vector<std::string>& paths,
                  std::vector<std::string>* files) {
  bool ok = true;
  for (const std::string& p : paths) {
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (fs::recursive_directory_iterator it(p, ec), end;
           !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file() && HasAnalyzableExtension(it->path())) {
          files->push_back(it->path().generic_string());
        }
      }
      if (ec) {
        std::fprintf(stderr, "efes_analyze: cannot walk %s: %s\n",
                     p.c_str(), ec.message().c_str());
        ok = false;
      }
    } else if (fs::is_regular_file(p, ec)) {
      files->push_back(fs::path(p).generic_string());
    } else {
      std::fprintf(stderr, "efes_analyze: no such file or directory: %s\n",
                   p.c_str());
      ok = false;
    }
  }
  std::sort(files->begin(), files->end());
  files->erase(std::unique(files->begin(), files->end()), files->end());
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::string format = "text";
  std::string registry_dir;
  bool show_suppressed = false;
  bool list_checks = false;
  efes::FlagSet flags;
  flags.AddChoice("format", {"text", "json", "sarif"}, "report format",
                  &format);
  flags.AddString("registry", "<dir>",
                  "docs/registry manifest directory (enables the "
                  "registry check)",
                  &registry_dir);
  flags.AddBool("show-suppressed",
                "include suppressed findings in text output",
                &show_suppressed);
  flags.AddBool("list-checks", "print the check catalog and exit",
                &list_checks);

  std::vector<std::string> paths(argv + 1, argv + argc);
  efes::Status parsed = flags.Parse(&paths);
  if (!parsed.ok()) {
    std::fprintf(stderr, "efes_analyze: %s\n", parsed.message().c_str());
    if (efes::IsUnknownFlagError(parsed)) return kExitUnknownFlag;
    return Usage();
  }
  if (list_checks) {
    for (const std::string& id : efes::analyze::AllCheckIds()) {
      std::printf("%s\n", id.c_str());
    }
    return 0;
  }
  if (paths.empty()) return Usage();

  std::vector<std::string> files;
  bool paths_ok = CollectFiles(paths, &files);

  bool io_ok = true;
  efes::analyze::Analyzer analyzer;
  for (const std::string& file : files) {
    efes::Result<std::string> content = efes::ReadFileToString(file);
    if (!content.ok()) {
      std::fprintf(stderr, "efes_analyze: %s: %s\n", file.c_str(),
                   content.status().ToString().c_str());
      io_ok = false;
      continue;
    }
    analyzer.AddFile(file, content.value());
  }

  if (!registry_dir.empty()) {
    efes::Result<efes::analyze::RegistryManifests> manifests =
        efes::analyze::LoadRegistryDir(registry_dir);
    if (!manifests.ok()) {
      std::fprintf(stderr, "efes_analyze: %s\n",
                   manifests.status().ToString().c_str());
      return kExitFindings;
    }
    analyzer.SetRegistry(std::move(manifests).value());
  } else {
    std::fprintf(stderr,
                 "efes_analyze: note: no --registry=<dir>; the registry "
                 "check is skipped\n");
  }

  std::vector<efes::lint::Finding> findings = analyzer.Run();

  if (format == "json") {
    std::printf("%s\n", efes::lint::RenderJson(findings).c_str());
  } else if (format == "sarif") {
    std::printf("%s\n",
                efes::lint::RenderSarif("efes_analyze", findings).c_str());
  } else {
    std::fputs(
        efes::analyze::RenderText(findings, show_suppressed).c_str(),
        stdout);
  }
  if (!paths_ok || !io_ok) return kExitFindings;
  return efes::lint::CountUnsuppressed(findings) == 0 ? 0 : kExitFindings;
}
