
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/integration_test.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/efes/matching/CMakeFiles/efes_matching.dir/DependInfo.cmake"
  "/root/repo/build-review/src/efes/execute/CMakeFiles/efes_execute.dir/DependInfo.cmake"
  "/root/repo/build-review/src/efes/experiment/CMakeFiles/efes_experiment.dir/DependInfo.cmake"
  "/root/repo/build-review/src/efes/baseline/CMakeFiles/efes_baseline.dir/DependInfo.cmake"
  "/root/repo/build-review/src/efes/scenario/CMakeFiles/efes_scenario.dir/DependInfo.cmake"
  "/root/repo/build-review/src/efes/mapping/CMakeFiles/efes_mapping.dir/DependInfo.cmake"
  "/root/repo/build-review/src/efes/structure/CMakeFiles/efes_structure.dir/DependInfo.cmake"
  "/root/repo/build-review/src/efes/csg/CMakeFiles/efes_csg.dir/DependInfo.cmake"
  "/root/repo/build-review/src/efes/values/CMakeFiles/efes_values.dir/DependInfo.cmake"
  "/root/repo/build-review/src/efes/profiling/CMakeFiles/efes_profiling.dir/DependInfo.cmake"
  "/root/repo/build-review/src/efes/core/CMakeFiles/efes_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/efes/relational/CMakeFiles/efes_relational.dir/DependInfo.cmake"
  "/root/repo/build-review/src/efes/common/CMakeFiles/efes_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/efes/telemetry/CMakeFiles/efes_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
