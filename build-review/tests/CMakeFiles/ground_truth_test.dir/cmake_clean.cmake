file(REMOVE_RECURSE
  "CMakeFiles/ground_truth_test.dir/ground_truth_test.cc.o"
  "CMakeFiles/ground_truth_test.dir/ground_truth_test.cc.o.d"
  "ground_truth_test"
  "ground_truth_test.pdb"
  "ground_truth_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ground_truth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
