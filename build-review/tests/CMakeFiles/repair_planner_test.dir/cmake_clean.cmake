file(REMOVE_RECURSE
  "CMakeFiles/repair_planner_test.dir/repair_planner_test.cc.o"
  "CMakeFiles/repair_planner_test.dir/repair_planner_test.cc.o.d"
  "repair_planner_test"
  "repair_planner_test.pdb"
  "repair_planner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repair_planner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
