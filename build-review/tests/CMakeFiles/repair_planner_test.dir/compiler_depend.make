# Empty compiler generated dependencies file for repair_planner_test.
# This may be replaced when dependencies are built.
