# Empty compiler generated dependencies file for constraint_discovery_test.
# This may be replaced when dependencies are built.
