file(REMOVE_RECURSE
  "CMakeFiles/constraint_discovery_test.dir/constraint_discovery_test.cc.o"
  "CMakeFiles/constraint_discovery_test.dir/constraint_discovery_test.cc.o.d"
  "constraint_discovery_test"
  "constraint_discovery_test.pdb"
  "constraint_discovery_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/constraint_discovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
