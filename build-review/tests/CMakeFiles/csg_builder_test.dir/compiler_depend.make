# Empty compiler generated dependencies file for csg_builder_test.
# This may be replaced when dependencies are built.
