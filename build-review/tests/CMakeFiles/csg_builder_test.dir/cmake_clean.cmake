file(REMOVE_RECURSE
  "CMakeFiles/csg_builder_test.dir/csg_builder_test.cc.o"
  "CMakeFiles/csg_builder_test.dir/csg_builder_test.cc.o.d"
  "csg_builder_test"
  "csg_builder_test.pdb"
  "csg_builder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csg_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
