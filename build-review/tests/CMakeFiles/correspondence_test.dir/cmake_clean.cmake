file(REMOVE_RECURSE
  "CMakeFiles/correspondence_test.dir/correspondence_test.cc.o"
  "CMakeFiles/correspondence_test.dir/correspondence_test.cc.o.d"
  "correspondence_test"
  "correspondence_test.pdb"
  "correspondence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/correspondence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
