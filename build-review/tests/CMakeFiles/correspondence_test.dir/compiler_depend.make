# Empty compiler generated dependencies file for correspondence_test.
# This may be replaced when dependencies are built.
