# Empty compiler generated dependencies file for schema_matcher_test.
# This may be replaced when dependencies are built.
