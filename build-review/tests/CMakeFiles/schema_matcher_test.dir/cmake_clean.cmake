file(REMOVE_RECURSE
  "CMakeFiles/schema_matcher_test.dir/schema_matcher_test.cc.o"
  "CMakeFiles/schema_matcher_test.dir/schema_matcher_test.cc.o.d"
  "schema_matcher_test"
  "schema_matcher_test.pdb"
  "schema_matcher_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schema_matcher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
