file(REMOVE_RECURSE
  "CMakeFiles/match_accuracy_test.dir/match_accuracy_test.cc.o"
  "CMakeFiles/match_accuracy_test.dir/match_accuracy_test.cc.o.d"
  "match_accuracy_test"
  "match_accuracy_test.pdb"
  "match_accuracy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/match_accuracy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
