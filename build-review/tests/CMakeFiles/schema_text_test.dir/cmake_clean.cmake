file(REMOVE_RECURSE
  "CMakeFiles/schema_text_test.dir/schema_text_test.cc.o"
  "CMakeFiles/schema_text_test.dir/schema_text_test.cc.o.d"
  "schema_text_test"
  "schema_text_test.pdb"
  "schema_text_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schema_text_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
