# Empty compiler generated dependencies file for schema_text_test.
# This may be replaced when dependencies are built.
