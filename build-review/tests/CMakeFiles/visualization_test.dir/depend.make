# Empty dependencies file for visualization_test.
# This may be replaced when dependencies are built.
