file(REMOVE_RECURSE
  "CMakeFiles/visualization_test.dir/visualization_test.cc.o"
  "CMakeFiles/visualization_test.dir/visualization_test.cc.o.d"
  "visualization_test"
  "visualization_test.pdb"
  "visualization_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/visualization_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
