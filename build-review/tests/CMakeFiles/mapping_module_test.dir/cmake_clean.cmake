file(REMOVE_RECURSE
  "CMakeFiles/mapping_module_test.dir/mapping_module_test.cc.o"
  "CMakeFiles/mapping_module_test.dir/mapping_module_test.cc.o.d"
  "mapping_module_test"
  "mapping_module_test.pdb"
  "mapping_module_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapping_module_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
