# Empty dependencies file for mapping_module_test.
# This may be replaced when dependencies are built.
