file(REMOVE_RECURSE
  "CMakeFiles/csg_graph_test.dir/csg_graph_test.cc.o"
  "CMakeFiles/csg_graph_test.dir/csg_graph_test.cc.o.d"
  "csg_graph_test"
  "csg_graph_test.pdb"
  "csg_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csg_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
