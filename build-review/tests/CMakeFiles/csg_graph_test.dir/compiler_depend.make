# Empty compiler generated dependencies file for csg_graph_test.
# This may be replaced when dependencies are built.
