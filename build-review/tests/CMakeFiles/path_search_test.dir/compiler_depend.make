# Empty compiler generated dependencies file for path_search_test.
# This may be replaced when dependencies are built.
