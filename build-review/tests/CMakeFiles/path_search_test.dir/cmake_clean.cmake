file(REMOVE_RECURSE
  "CMakeFiles/path_search_test.dir/path_search_test.cc.o"
  "CMakeFiles/path_search_test.dir/path_search_test.cc.o.d"
  "path_search_test"
  "path_search_test.pdb"
  "path_search_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/path_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
