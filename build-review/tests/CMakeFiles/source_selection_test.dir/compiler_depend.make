# Empty compiler generated dependencies file for source_selection_test.
# This may be replaced when dependencies are built.
