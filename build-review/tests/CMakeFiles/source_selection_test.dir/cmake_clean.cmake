file(REMOVE_RECURSE
  "CMakeFiles/source_selection_test.dir/source_selection_test.cc.o"
  "CMakeFiles/source_selection_test.dir/source_selection_test.cc.o.d"
  "source_selection_test"
  "source_selection_test.pdb"
  "source_selection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/source_selection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
