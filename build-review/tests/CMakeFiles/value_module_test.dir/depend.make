# Empty dependencies file for value_module_test.
# This may be replaced when dependencies are built.
