file(REMOVE_RECURSE
  "CMakeFiles/value_module_test.dir/value_module_test.cc.o"
  "CMakeFiles/value_module_test.dir/value_module_test.cc.o.d"
  "value_module_test"
  "value_module_test.pdb"
  "value_module_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/value_module_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
