file(REMOVE_RECURSE
  "CMakeFiles/conflict_detector_test.dir/conflict_detector_test.cc.o"
  "CMakeFiles/conflict_detector_test.dir/conflict_detector_test.cc.o.d"
  "conflict_detector_test"
  "conflict_detector_test.pdb"
  "conflict_detector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conflict_detector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
