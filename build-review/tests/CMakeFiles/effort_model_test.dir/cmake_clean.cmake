file(REMOVE_RECURSE
  "CMakeFiles/effort_model_test.dir/effort_model_test.cc.o"
  "CMakeFiles/effort_model_test.dir/effort_model_test.cc.o.d"
  "effort_model_test"
  "effort_model_test.pdb"
  "effort_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/effort_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
