# Empty compiler generated dependencies file for effort_model_test.
# This may be replaced when dependencies are built.
