file(REMOVE_RECURSE
  "CMakeFiles/project_planning.dir/project_planning.cpp.o"
  "CMakeFiles/project_planning.dir/project_planning.cpp.o.d"
  "project_planning"
  "project_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/project_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
