# Empty dependencies file for project_planning.
# This may be replaced when dependencies are built.
