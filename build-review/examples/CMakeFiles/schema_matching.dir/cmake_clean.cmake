file(REMOVE_RECURSE
  "CMakeFiles/schema_matching.dir/schema_matching.cpp.o"
  "CMakeFiles/schema_matching.dir/schema_matching.cpp.o.d"
  "schema_matching"
  "schema_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schema_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
