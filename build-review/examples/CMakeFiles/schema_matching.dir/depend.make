# Empty dependencies file for schema_matching.
# This may be replaced when dependencies are built.
