# Empty compiler generated dependencies file for source_selection.
# This may be replaced when dependencies are built.
