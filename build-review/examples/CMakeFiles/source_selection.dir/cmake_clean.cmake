file(REMOVE_RECURSE
  "CMakeFiles/source_selection.dir/source_selection.cpp.o"
  "CMakeFiles/source_selection.dir/source_selection.cpp.o.d"
  "source_selection"
  "source_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/source_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
