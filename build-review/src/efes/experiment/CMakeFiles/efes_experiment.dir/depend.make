# Empty dependencies file for efes_experiment.
# This may be replaced when dependencies are built.
