file(REMOVE_RECURSE
  "libefes_experiment.a"
)
