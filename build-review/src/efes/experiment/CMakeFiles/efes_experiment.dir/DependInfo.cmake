
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/efes/experiment/cost_benefit.cc" "src/efes/experiment/CMakeFiles/efes_experiment.dir/cost_benefit.cc.o" "gcc" "src/efes/experiment/CMakeFiles/efes_experiment.dir/cost_benefit.cc.o.d"
  "/root/repo/src/efes/experiment/default_pipeline.cc" "src/efes/experiment/CMakeFiles/efes_experiment.dir/default_pipeline.cc.o" "gcc" "src/efes/experiment/CMakeFiles/efes_experiment.dir/default_pipeline.cc.o.d"
  "/root/repo/src/efes/experiment/json_export.cc" "src/efes/experiment/CMakeFiles/efes_experiment.dir/json_export.cc.o" "gcc" "src/efes/experiment/CMakeFiles/efes_experiment.dir/json_export.cc.o.d"
  "/root/repo/src/efes/experiment/metrics.cc" "src/efes/experiment/CMakeFiles/efes_experiment.dir/metrics.cc.o" "gcc" "src/efes/experiment/CMakeFiles/efes_experiment.dir/metrics.cc.o.d"
  "/root/repo/src/efes/experiment/progress.cc" "src/efes/experiment/CMakeFiles/efes_experiment.dir/progress.cc.o" "gcc" "src/efes/experiment/CMakeFiles/efes_experiment.dir/progress.cc.o.d"
  "/root/repo/src/efes/experiment/source_selection.cc" "src/efes/experiment/CMakeFiles/efes_experiment.dir/source_selection.cc.o" "gcc" "src/efes/experiment/CMakeFiles/efes_experiment.dir/source_selection.cc.o.d"
  "/root/repo/src/efes/experiment/study.cc" "src/efes/experiment/CMakeFiles/efes_experiment.dir/study.cc.o" "gcc" "src/efes/experiment/CMakeFiles/efes_experiment.dir/study.cc.o.d"
  "/root/repo/src/efes/experiment/visualization.cc" "src/efes/experiment/CMakeFiles/efes_experiment.dir/visualization.cc.o" "gcc" "src/efes/experiment/CMakeFiles/efes_experiment.dir/visualization.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/efes/baseline/CMakeFiles/efes_baseline.dir/DependInfo.cmake"
  "/root/repo/build-review/src/efes/scenario/CMakeFiles/efes_scenario.dir/DependInfo.cmake"
  "/root/repo/build-review/src/efes/telemetry/CMakeFiles/efes_telemetry.dir/DependInfo.cmake"
  "/root/repo/build-review/src/efes/mapping/CMakeFiles/efes_mapping.dir/DependInfo.cmake"
  "/root/repo/build-review/src/efes/structure/CMakeFiles/efes_structure.dir/DependInfo.cmake"
  "/root/repo/build-review/src/efes/csg/CMakeFiles/efes_csg.dir/DependInfo.cmake"
  "/root/repo/build-review/src/efes/values/CMakeFiles/efes_values.dir/DependInfo.cmake"
  "/root/repo/build-review/src/efes/core/CMakeFiles/efes_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/efes/profiling/CMakeFiles/efes_profiling.dir/DependInfo.cmake"
  "/root/repo/build-review/src/efes/relational/CMakeFiles/efes_relational.dir/DependInfo.cmake"
  "/root/repo/build-review/src/efes/common/CMakeFiles/efes_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
