file(REMOVE_RECURSE
  "CMakeFiles/efes_experiment.dir/cost_benefit.cc.o"
  "CMakeFiles/efes_experiment.dir/cost_benefit.cc.o.d"
  "CMakeFiles/efes_experiment.dir/default_pipeline.cc.o"
  "CMakeFiles/efes_experiment.dir/default_pipeline.cc.o.d"
  "CMakeFiles/efes_experiment.dir/json_export.cc.o"
  "CMakeFiles/efes_experiment.dir/json_export.cc.o.d"
  "CMakeFiles/efes_experiment.dir/metrics.cc.o"
  "CMakeFiles/efes_experiment.dir/metrics.cc.o.d"
  "CMakeFiles/efes_experiment.dir/progress.cc.o"
  "CMakeFiles/efes_experiment.dir/progress.cc.o.d"
  "CMakeFiles/efes_experiment.dir/source_selection.cc.o"
  "CMakeFiles/efes_experiment.dir/source_selection.cc.o.d"
  "CMakeFiles/efes_experiment.dir/study.cc.o"
  "CMakeFiles/efes_experiment.dir/study.cc.o.d"
  "CMakeFiles/efes_experiment.dir/visualization.cc.o"
  "CMakeFiles/efes_experiment.dir/visualization.cc.o.d"
  "libefes_experiment.a"
  "libefes_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/efes_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
