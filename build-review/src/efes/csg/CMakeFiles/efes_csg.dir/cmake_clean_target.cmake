file(REMOVE_RECURSE
  "libefes_csg.a"
)
