# Empty dependencies file for efes_csg.
# This may be replaced when dependencies are built.
