
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/efes/csg/builder.cc" "src/efes/csg/CMakeFiles/efes_csg.dir/builder.cc.o" "gcc" "src/efes/csg/CMakeFiles/efes_csg.dir/builder.cc.o.d"
  "/root/repo/src/efes/csg/cardinality.cc" "src/efes/csg/CMakeFiles/efes_csg.dir/cardinality.cc.o" "gcc" "src/efes/csg/CMakeFiles/efes_csg.dir/cardinality.cc.o.d"
  "/root/repo/src/efes/csg/graph.cc" "src/efes/csg/CMakeFiles/efes_csg.dir/graph.cc.o" "gcc" "src/efes/csg/CMakeFiles/efes_csg.dir/graph.cc.o.d"
  "/root/repo/src/efes/csg/path_search.cc" "src/efes/csg/CMakeFiles/efes_csg.dir/path_search.cc.o" "gcc" "src/efes/csg/CMakeFiles/efes_csg.dir/path_search.cc.o.d"
  "/root/repo/src/efes/csg/render_dot.cc" "src/efes/csg/CMakeFiles/efes_csg.dir/render_dot.cc.o" "gcc" "src/efes/csg/CMakeFiles/efes_csg.dir/render_dot.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/efes/relational/CMakeFiles/efes_relational.dir/DependInfo.cmake"
  "/root/repo/build-review/src/efes/common/CMakeFiles/efes_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/efes/telemetry/CMakeFiles/efes_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
