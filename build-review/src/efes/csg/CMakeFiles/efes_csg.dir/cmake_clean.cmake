file(REMOVE_RECURSE
  "CMakeFiles/efes_csg.dir/builder.cc.o"
  "CMakeFiles/efes_csg.dir/builder.cc.o.d"
  "CMakeFiles/efes_csg.dir/cardinality.cc.o"
  "CMakeFiles/efes_csg.dir/cardinality.cc.o.d"
  "CMakeFiles/efes_csg.dir/graph.cc.o"
  "CMakeFiles/efes_csg.dir/graph.cc.o.d"
  "CMakeFiles/efes_csg.dir/path_search.cc.o"
  "CMakeFiles/efes_csg.dir/path_search.cc.o.d"
  "CMakeFiles/efes_csg.dir/render_dot.cc.o"
  "CMakeFiles/efes_csg.dir/render_dot.cc.o.d"
  "libefes_csg.a"
  "libefes_csg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/efes_csg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
