
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/efes/core/effort_config.cc" "src/efes/core/CMakeFiles/efes_core.dir/effort_config.cc.o" "gcc" "src/efes/core/CMakeFiles/efes_core.dir/effort_config.cc.o.d"
  "/root/repo/src/efes/core/effort_model.cc" "src/efes/core/CMakeFiles/efes_core.dir/effort_model.cc.o" "gcc" "src/efes/core/CMakeFiles/efes_core.dir/effort_model.cc.o.d"
  "/root/repo/src/efes/core/engine.cc" "src/efes/core/CMakeFiles/efes_core.dir/engine.cc.o" "gcc" "src/efes/core/CMakeFiles/efes_core.dir/engine.cc.o.d"
  "/root/repo/src/efes/core/formula.cc" "src/efes/core/CMakeFiles/efes_core.dir/formula.cc.o" "gcc" "src/efes/core/CMakeFiles/efes_core.dir/formula.cc.o.d"
  "/root/repo/src/efes/core/integration_scenario.cc" "src/efes/core/CMakeFiles/efes_core.dir/integration_scenario.cc.o" "gcc" "src/efes/core/CMakeFiles/efes_core.dir/integration_scenario.cc.o.d"
  "/root/repo/src/efes/core/task.cc" "src/efes/core/CMakeFiles/efes_core.dir/task.cc.o" "gcc" "src/efes/core/CMakeFiles/efes_core.dir/task.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/efes/telemetry/CMakeFiles/efes_telemetry.dir/DependInfo.cmake"
  "/root/repo/build-review/src/efes/relational/CMakeFiles/efes_relational.dir/DependInfo.cmake"
  "/root/repo/build-review/src/efes/common/CMakeFiles/efes_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
