file(REMOVE_RECURSE
  "CMakeFiles/efes_core.dir/effort_config.cc.o"
  "CMakeFiles/efes_core.dir/effort_config.cc.o.d"
  "CMakeFiles/efes_core.dir/effort_model.cc.o"
  "CMakeFiles/efes_core.dir/effort_model.cc.o.d"
  "CMakeFiles/efes_core.dir/engine.cc.o"
  "CMakeFiles/efes_core.dir/engine.cc.o.d"
  "CMakeFiles/efes_core.dir/formula.cc.o"
  "CMakeFiles/efes_core.dir/formula.cc.o.d"
  "CMakeFiles/efes_core.dir/integration_scenario.cc.o"
  "CMakeFiles/efes_core.dir/integration_scenario.cc.o.d"
  "CMakeFiles/efes_core.dir/task.cc.o"
  "CMakeFiles/efes_core.dir/task.cc.o.d"
  "libefes_core.a"
  "libefes_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/efes_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
