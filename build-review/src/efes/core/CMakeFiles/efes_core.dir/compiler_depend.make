# Empty compiler generated dependencies file for efes_core.
# This may be replaced when dependencies are built.
