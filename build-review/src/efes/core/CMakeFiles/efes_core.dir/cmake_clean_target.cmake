file(REMOVE_RECURSE
  "libefes_core.a"
)
