file(REMOVE_RECURSE
  "CMakeFiles/efes_execute.dir/integration_executor.cc.o"
  "CMakeFiles/efes_execute.dir/integration_executor.cc.o.d"
  "libefes_execute.a"
  "libefes_execute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/efes_execute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
