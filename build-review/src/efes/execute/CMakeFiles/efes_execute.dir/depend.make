# Empty dependencies file for efes_execute.
# This may be replaced when dependencies are built.
