
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/efes/execute/integration_executor.cc" "src/efes/execute/CMakeFiles/efes_execute.dir/integration_executor.cc.o" "gcc" "src/efes/execute/CMakeFiles/efes_execute.dir/integration_executor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/efes/telemetry/CMakeFiles/efes_telemetry.dir/DependInfo.cmake"
  "/root/repo/build-review/src/efes/core/CMakeFiles/efes_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/efes/csg/CMakeFiles/efes_csg.dir/DependInfo.cmake"
  "/root/repo/build-review/src/efes/relational/CMakeFiles/efes_relational.dir/DependInfo.cmake"
  "/root/repo/build-review/src/efes/common/CMakeFiles/efes_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
