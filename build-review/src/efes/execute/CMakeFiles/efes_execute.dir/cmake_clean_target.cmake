file(REMOVE_RECURSE
  "libefes_execute.a"
)
