file(REMOVE_RECURSE
  "libefes_mapping.a"
)
