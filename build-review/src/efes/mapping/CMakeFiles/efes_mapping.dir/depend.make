# Empty dependencies file for efes_mapping.
# This may be replaced when dependencies are built.
