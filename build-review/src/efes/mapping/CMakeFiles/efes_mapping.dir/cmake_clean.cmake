file(REMOVE_RECURSE
  "CMakeFiles/efes_mapping.dir/mapping_module.cc.o"
  "CMakeFiles/efes_mapping.dir/mapping_module.cc.o.d"
  "libefes_mapping.a"
  "libefes_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/efes_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
