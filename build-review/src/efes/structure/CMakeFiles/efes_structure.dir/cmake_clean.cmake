file(REMOVE_RECURSE
  "CMakeFiles/efes_structure.dir/conflict_detector.cc.o"
  "CMakeFiles/efes_structure.dir/conflict_detector.cc.o.d"
  "CMakeFiles/efes_structure.dir/repair_planner.cc.o"
  "CMakeFiles/efes_structure.dir/repair_planner.cc.o.d"
  "CMakeFiles/efes_structure.dir/structure_module.cc.o"
  "CMakeFiles/efes_structure.dir/structure_module.cc.o.d"
  "libefes_structure.a"
  "libefes_structure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/efes_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
