# Empty compiler generated dependencies file for efes_structure.
# This may be replaced when dependencies are built.
