file(REMOVE_RECURSE
  "libefes_structure.a"
)
