# CMake generated Testfile for 
# Source directory: /root/repo/src/efes/structure
# Build directory: /root/repo/build-review/src/efes/structure
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
