# Empty dependencies file for efes_profiling.
# This may be replaced when dependencies are built.
