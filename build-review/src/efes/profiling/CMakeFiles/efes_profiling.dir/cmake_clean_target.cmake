file(REMOVE_RECURSE
  "libefes_profiling.a"
)
