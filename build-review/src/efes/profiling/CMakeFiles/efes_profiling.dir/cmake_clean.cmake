file(REMOVE_RECURSE
  "CMakeFiles/efes_profiling.dir/constraint_discovery.cc.o"
  "CMakeFiles/efes_profiling.dir/constraint_discovery.cc.o.d"
  "CMakeFiles/efes_profiling.dir/statistics.cc.o"
  "CMakeFiles/efes_profiling.dir/statistics.cc.o.d"
  "libefes_profiling.a"
  "libefes_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/efes_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
