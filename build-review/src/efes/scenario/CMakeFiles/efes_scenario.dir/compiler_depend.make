# Empty compiler generated dependencies file for efes_scenario.
# This may be replaced when dependencies are built.
