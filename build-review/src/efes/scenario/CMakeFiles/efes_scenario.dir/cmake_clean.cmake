file(REMOVE_RECURSE
  "CMakeFiles/efes_scenario.dir/bibliographic.cc.o"
  "CMakeFiles/efes_scenario.dir/bibliographic.cc.o.d"
  "CMakeFiles/efes_scenario.dir/ground_truth.cc.o"
  "CMakeFiles/efes_scenario.dir/ground_truth.cc.o.d"
  "CMakeFiles/efes_scenario.dir/music.cc.o"
  "CMakeFiles/efes_scenario.dir/music.cc.o.d"
  "CMakeFiles/efes_scenario.dir/paper_example.cc.o"
  "CMakeFiles/efes_scenario.dir/paper_example.cc.o.d"
  "CMakeFiles/efes_scenario.dir/scenario_io.cc.o"
  "CMakeFiles/efes_scenario.dir/scenario_io.cc.o.d"
  "libefes_scenario.a"
  "libefes_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/efes_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
