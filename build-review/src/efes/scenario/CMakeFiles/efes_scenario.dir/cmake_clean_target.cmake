file(REMOVE_RECURSE
  "libefes_scenario.a"
)
