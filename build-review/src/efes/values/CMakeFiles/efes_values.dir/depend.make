# Empty dependencies file for efes_values.
# This may be replaced when dependencies are built.
