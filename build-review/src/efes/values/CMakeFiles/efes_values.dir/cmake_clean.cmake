file(REMOVE_RECURSE
  "CMakeFiles/efes_values.dir/value_module.cc.o"
  "CMakeFiles/efes_values.dir/value_module.cc.o.d"
  "libefes_values.a"
  "libefes_values.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/efes_values.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
