file(REMOVE_RECURSE
  "libefes_values.a"
)
