file(REMOVE_RECURSE
  "libefes_telemetry.a"
)
