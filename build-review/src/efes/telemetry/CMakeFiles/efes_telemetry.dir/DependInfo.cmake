
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/efes/telemetry/clock.cc" "src/efes/telemetry/CMakeFiles/efes_telemetry.dir/clock.cc.o" "gcc" "src/efes/telemetry/CMakeFiles/efes_telemetry.dir/clock.cc.o.d"
  "/root/repo/src/efes/telemetry/log.cc" "src/efes/telemetry/CMakeFiles/efes_telemetry.dir/log.cc.o" "gcc" "src/efes/telemetry/CMakeFiles/efes_telemetry.dir/log.cc.o.d"
  "/root/repo/src/efes/telemetry/metrics.cc" "src/efes/telemetry/CMakeFiles/efes_telemetry.dir/metrics.cc.o" "gcc" "src/efes/telemetry/CMakeFiles/efes_telemetry.dir/metrics.cc.o.d"
  "/root/repo/src/efes/telemetry/report.cc" "src/efes/telemetry/CMakeFiles/efes_telemetry.dir/report.cc.o" "gcc" "src/efes/telemetry/CMakeFiles/efes_telemetry.dir/report.cc.o.d"
  "/root/repo/src/efes/telemetry/trace.cc" "src/efes/telemetry/CMakeFiles/efes_telemetry.dir/trace.cc.o" "gcc" "src/efes/telemetry/CMakeFiles/efes_telemetry.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/efes/common/CMakeFiles/efes_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
