# Empty compiler generated dependencies file for efes_telemetry.
# This may be replaced when dependencies are built.
