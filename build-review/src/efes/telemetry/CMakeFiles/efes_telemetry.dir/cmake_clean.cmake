file(REMOVE_RECURSE
  "CMakeFiles/efes_telemetry.dir/clock.cc.o"
  "CMakeFiles/efes_telemetry.dir/clock.cc.o.d"
  "CMakeFiles/efes_telemetry.dir/log.cc.o"
  "CMakeFiles/efes_telemetry.dir/log.cc.o.d"
  "CMakeFiles/efes_telemetry.dir/metrics.cc.o"
  "CMakeFiles/efes_telemetry.dir/metrics.cc.o.d"
  "CMakeFiles/efes_telemetry.dir/report.cc.o"
  "CMakeFiles/efes_telemetry.dir/report.cc.o.d"
  "CMakeFiles/efes_telemetry.dir/trace.cc.o"
  "CMakeFiles/efes_telemetry.dir/trace.cc.o.d"
  "libefes_telemetry.a"
  "libefes_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/efes_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
