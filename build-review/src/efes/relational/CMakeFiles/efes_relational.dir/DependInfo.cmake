
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/efes/relational/correspondence.cc" "src/efes/relational/CMakeFiles/efes_relational.dir/correspondence.cc.o" "gcc" "src/efes/relational/CMakeFiles/efes_relational.dir/correspondence.cc.o.d"
  "/root/repo/src/efes/relational/database.cc" "src/efes/relational/CMakeFiles/efes_relational.dir/database.cc.o" "gcc" "src/efes/relational/CMakeFiles/efes_relational.dir/database.cc.o.d"
  "/root/repo/src/efes/relational/schema.cc" "src/efes/relational/CMakeFiles/efes_relational.dir/schema.cc.o" "gcc" "src/efes/relational/CMakeFiles/efes_relational.dir/schema.cc.o.d"
  "/root/repo/src/efes/relational/schema_text.cc" "src/efes/relational/CMakeFiles/efes_relational.dir/schema_text.cc.o" "gcc" "src/efes/relational/CMakeFiles/efes_relational.dir/schema_text.cc.o.d"
  "/root/repo/src/efes/relational/table.cc" "src/efes/relational/CMakeFiles/efes_relational.dir/table.cc.o" "gcc" "src/efes/relational/CMakeFiles/efes_relational.dir/table.cc.o.d"
  "/root/repo/src/efes/relational/value.cc" "src/efes/relational/CMakeFiles/efes_relational.dir/value.cc.o" "gcc" "src/efes/relational/CMakeFiles/efes_relational.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/efes/common/CMakeFiles/efes_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/efes/telemetry/CMakeFiles/efes_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
