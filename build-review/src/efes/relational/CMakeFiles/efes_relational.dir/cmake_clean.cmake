file(REMOVE_RECURSE
  "CMakeFiles/efes_relational.dir/correspondence.cc.o"
  "CMakeFiles/efes_relational.dir/correspondence.cc.o.d"
  "CMakeFiles/efes_relational.dir/database.cc.o"
  "CMakeFiles/efes_relational.dir/database.cc.o.d"
  "CMakeFiles/efes_relational.dir/schema.cc.o"
  "CMakeFiles/efes_relational.dir/schema.cc.o.d"
  "CMakeFiles/efes_relational.dir/schema_text.cc.o"
  "CMakeFiles/efes_relational.dir/schema_text.cc.o.d"
  "CMakeFiles/efes_relational.dir/table.cc.o"
  "CMakeFiles/efes_relational.dir/table.cc.o.d"
  "CMakeFiles/efes_relational.dir/value.cc.o"
  "CMakeFiles/efes_relational.dir/value.cc.o.d"
  "libefes_relational.a"
  "libefes_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/efes_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
