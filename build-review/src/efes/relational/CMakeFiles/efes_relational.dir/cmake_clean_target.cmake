file(REMOVE_RECURSE
  "libefes_relational.a"
)
