# Empty compiler generated dependencies file for efes_relational.
# This may be replaced when dependencies are built.
