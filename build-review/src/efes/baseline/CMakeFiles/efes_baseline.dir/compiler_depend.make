# Empty compiler generated dependencies file for efes_baseline.
# This may be replaced when dependencies are built.
