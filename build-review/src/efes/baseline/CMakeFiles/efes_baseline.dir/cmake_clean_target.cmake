file(REMOVE_RECURSE
  "libefes_baseline.a"
)
