file(REMOVE_RECURSE
  "CMakeFiles/efes_baseline.dir/counting_estimator.cc.o"
  "CMakeFiles/efes_baseline.dir/counting_estimator.cc.o.d"
  "libefes_baseline.a"
  "libefes_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/efes_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
