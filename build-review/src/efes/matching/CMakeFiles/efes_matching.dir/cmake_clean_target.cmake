file(REMOVE_RECURSE
  "libefes_matching.a"
)
