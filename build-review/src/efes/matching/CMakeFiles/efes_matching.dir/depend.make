# Empty dependencies file for efes_matching.
# This may be replaced when dependencies are built.
