file(REMOVE_RECURSE
  "CMakeFiles/efes_matching.dir/match_accuracy.cc.o"
  "CMakeFiles/efes_matching.dir/match_accuracy.cc.o.d"
  "CMakeFiles/efes_matching.dir/schema_matcher.cc.o"
  "CMakeFiles/efes_matching.dir/schema_matcher.cc.o.d"
  "libefes_matching.a"
  "libefes_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/efes_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
