file(REMOVE_RECURSE
  "libefes_common.a"
)
