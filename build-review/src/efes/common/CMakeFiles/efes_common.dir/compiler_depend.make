# Empty compiler generated dependencies file for efes_common.
# This may be replaced when dependencies are built.
