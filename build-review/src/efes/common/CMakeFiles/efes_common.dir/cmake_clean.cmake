file(REMOVE_RECURSE
  "CMakeFiles/efes_common.dir/csv.cc.o"
  "CMakeFiles/efes_common.dir/csv.cc.o.d"
  "CMakeFiles/efes_common.dir/json_writer.cc.o"
  "CMakeFiles/efes_common.dir/json_writer.cc.o.d"
  "CMakeFiles/efes_common.dir/parallel.cc.o"
  "CMakeFiles/efes_common.dir/parallel.cc.o.d"
  "CMakeFiles/efes_common.dir/random.cc.o"
  "CMakeFiles/efes_common.dir/random.cc.o.d"
  "CMakeFiles/efes_common.dir/status.cc.o"
  "CMakeFiles/efes_common.dir/status.cc.o.d"
  "CMakeFiles/efes_common.dir/string_util.cc.o"
  "CMakeFiles/efes_common.dir/string_util.cc.o.d"
  "CMakeFiles/efes_common.dir/text_table.cc.o"
  "CMakeFiles/efes_common.dir/text_table.cc.o.d"
  "libefes_common.a"
  "libefes_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/efes_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
