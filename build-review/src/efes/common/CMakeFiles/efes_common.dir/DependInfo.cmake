
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/efes/common/csv.cc" "src/efes/common/CMakeFiles/efes_common.dir/csv.cc.o" "gcc" "src/efes/common/CMakeFiles/efes_common.dir/csv.cc.o.d"
  "/root/repo/src/efes/common/json_writer.cc" "src/efes/common/CMakeFiles/efes_common.dir/json_writer.cc.o" "gcc" "src/efes/common/CMakeFiles/efes_common.dir/json_writer.cc.o.d"
  "/root/repo/src/efes/common/parallel.cc" "src/efes/common/CMakeFiles/efes_common.dir/parallel.cc.o" "gcc" "src/efes/common/CMakeFiles/efes_common.dir/parallel.cc.o.d"
  "/root/repo/src/efes/common/random.cc" "src/efes/common/CMakeFiles/efes_common.dir/random.cc.o" "gcc" "src/efes/common/CMakeFiles/efes_common.dir/random.cc.o.d"
  "/root/repo/src/efes/common/status.cc" "src/efes/common/CMakeFiles/efes_common.dir/status.cc.o" "gcc" "src/efes/common/CMakeFiles/efes_common.dir/status.cc.o.d"
  "/root/repo/src/efes/common/string_util.cc" "src/efes/common/CMakeFiles/efes_common.dir/string_util.cc.o" "gcc" "src/efes/common/CMakeFiles/efes_common.dir/string_util.cc.o.d"
  "/root/repo/src/efes/common/text_table.cc" "src/efes/common/CMakeFiles/efes_common.dir/text_table.cc.o" "gcc" "src/efes/common/CMakeFiles/efes_common.dir/text_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/efes/telemetry/CMakeFiles/efes_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
