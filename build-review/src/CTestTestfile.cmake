# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-review/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("efes/common")
subdirs("efes/telemetry")
subdirs("efes/relational")
subdirs("efes/profiling")
subdirs("efes/matching")
subdirs("efes/csg")
subdirs("efes/core")
subdirs("efes/execute")
subdirs("efes/mapping")
subdirs("efes/structure")
subdirs("efes/values")
subdirs("efes/baseline")
subdirs("efes/scenario")
subdirs("efes/experiment")
