# Empty compiler generated dependencies file for efes_cli.
# This may be replaced when dependencies are built.
