file(REMOVE_RECURSE
  "CMakeFiles/efes_cli.dir/efes_cli.cc.o"
  "CMakeFiles/efes_cli.dir/efes_cli.cc.o.d"
  "efes"
  "efes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/efes_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
