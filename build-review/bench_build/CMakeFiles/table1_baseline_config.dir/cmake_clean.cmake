file(REMOVE_RECURSE
  "../bench/table1_baseline_config"
  "../bench/table1_baseline_config.pdb"
  "CMakeFiles/table1_baseline_config.dir/table1_baseline_config.cc.o"
  "CMakeFiles/table1_baseline_config.dir/table1_baseline_config.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_baseline_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
