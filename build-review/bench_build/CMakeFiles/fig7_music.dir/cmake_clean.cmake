file(REMOVE_RECURSE
  "../bench/fig7_music"
  "../bench/fig7_music.pdb"
  "CMakeFiles/fig7_music.dir/fig7_music.cc.o"
  "CMakeFiles/fig7_music.dir/fig7_music.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_music.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
