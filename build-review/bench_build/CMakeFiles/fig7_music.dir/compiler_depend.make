# Empty compiler generated dependencies file for fig7_music.
# This may be replaced when dependencies are built.
