file(REMOVE_RECURSE
  "../bench/ablation_fit_threshold"
  "../bench/ablation_fit_threshold.pdb"
  "CMakeFiles/ablation_fit_threshold.dir/ablation_fit_threshold.cc.o"
  "CMakeFiles/ablation_fit_threshold.dir/ablation_fit_threshold.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fit_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
