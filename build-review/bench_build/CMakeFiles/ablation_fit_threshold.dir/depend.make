# Empty dependencies file for ablation_fit_threshold.
# This may be replaced when dependencies are built.
