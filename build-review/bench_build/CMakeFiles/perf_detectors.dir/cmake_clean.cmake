file(REMOVE_RECURSE
  "../bench/perf_detectors"
  "../bench/perf_detectors.pdb"
  "CMakeFiles/perf_detectors.dir/perf_detectors.cc.o"
  "CMakeFiles/perf_detectors.dir/perf_detectors.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_detectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
