# Empty compiler generated dependencies file for fig4_csg_graphs.
# This may be replaced when dependencies are built.
