file(REMOVE_RECURSE
  "../bench/fig4_csg_graphs"
  "../bench/fig4_csg_graphs.pdb"
  "CMakeFiles/fig4_csg_graphs.dir/fig4_csg_graphs.cc.o"
  "CMakeFiles/fig4_csg_graphs.dir/fig4_csg_graphs.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_csg_graphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
