file(REMOVE_RECURSE
  "../bench/ablation_path_selection"
  "../bench/ablation_path_selection.pdb"
  "CMakeFiles/ablation_path_selection.dir/ablation_path_selection.cc.o"
  "CMakeFiles/ablation_path_selection.dir/ablation_path_selection.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_path_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
