# Empty compiler generated dependencies file for ablation_path_selection.
# This may be replaced when dependencies are built.
