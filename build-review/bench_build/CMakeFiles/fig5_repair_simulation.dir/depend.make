# Empty dependencies file for fig5_repair_simulation.
# This may be replaced when dependencies are built.
