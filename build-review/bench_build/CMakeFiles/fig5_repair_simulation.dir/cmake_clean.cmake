file(REMOVE_RECURSE
  "../bench/fig5_repair_simulation"
  "../bench/fig5_repair_simulation.pdb"
  "CMakeFiles/fig5_repair_simulation.dir/fig5_repair_simulation.cc.o"
  "CMakeFiles/fig5_repair_simulation.dir/fig5_repair_simulation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_repair_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
