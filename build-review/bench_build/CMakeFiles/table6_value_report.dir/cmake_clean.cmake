file(REMOVE_RECURSE
  "../bench/table6_value_report"
  "../bench/table6_value_report.pdb"
  "CMakeFiles/table6_value_report.dir/table6_value_report.cc.o"
  "CMakeFiles/table6_value_report.dir/table6_value_report.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_value_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
