# Empty compiler generated dependencies file for table6_value_report.
# This may be replaced when dependencies are built.
