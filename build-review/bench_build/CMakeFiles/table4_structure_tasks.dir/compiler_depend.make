# Empty compiler generated dependencies file for table4_structure_tasks.
# This may be replaced when dependencies are built.
