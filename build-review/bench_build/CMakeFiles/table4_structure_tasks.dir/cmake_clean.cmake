file(REMOVE_RECURSE
  "../bench/table4_structure_tasks"
  "../bench/table4_structure_tasks.pdb"
  "CMakeFiles/table4_structure_tasks.dir/table4_structure_tasks.cc.o"
  "CMakeFiles/table4_structure_tasks.dir/table4_structure_tasks.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_structure_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
