# Empty dependencies file for table2_mapping_report.
# This may be replaced when dependencies are built.
