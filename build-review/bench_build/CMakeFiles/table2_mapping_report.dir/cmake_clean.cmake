file(REMOVE_RECURSE
  "../bench/table2_mapping_report"
  "../bench/table2_mapping_report.pdb"
  "CMakeFiles/table2_mapping_report.dir/table2_mapping_report.cc.o"
  "CMakeFiles/table2_mapping_report.dir/table2_mapping_report.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_mapping_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
