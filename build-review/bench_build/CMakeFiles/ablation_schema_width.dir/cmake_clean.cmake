file(REMOVE_RECURSE
  "../bench/ablation_schema_width"
  "../bench/ablation_schema_width.pdb"
  "CMakeFiles/ablation_schema_width.dir/ablation_schema_width.cc.o"
  "CMakeFiles/ablation_schema_width.dir/ablation_schema_width.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_schema_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
