# Empty dependencies file for ablation_schema_width.
# This may be replaced when dependencies are built.
