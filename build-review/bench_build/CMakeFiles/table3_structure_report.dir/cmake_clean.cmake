file(REMOVE_RECURSE
  "../bench/table3_structure_report"
  "../bench/table3_structure_report.pdb"
  "CMakeFiles/table3_structure_report.dir/table3_structure_report.cc.o"
  "CMakeFiles/table3_structure_report.dir/table3_structure_report.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_structure_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
