# Empty compiler generated dependencies file for table3_structure_report.
# This may be replaced when dependencies are built.
