# Empty dependencies file for perf_executor.
# This may be replaced when dependencies are built.
