file(REMOVE_RECURSE
  "../bench/perf_executor"
  "../bench/perf_executor.pdb"
  "CMakeFiles/perf_executor.dir/perf_executor.cc.o"
  "CMakeFiles/perf_executor.dir/perf_executor.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_executor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
