file(REMOVE_RECURSE
  "../bench/table7_value_tasks"
  "../bench/table7_value_tasks.pdb"
  "CMakeFiles/table7_value_tasks.dir/table7_value_tasks.cc.o"
  "CMakeFiles/table7_value_tasks.dir/table7_value_tasks.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_value_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
