# Empty dependencies file for table7_value_tasks.
# This may be replaced when dependencies are built.
