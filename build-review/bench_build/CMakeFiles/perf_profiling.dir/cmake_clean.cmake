file(REMOVE_RECURSE
  "../bench/perf_profiling"
  "../bench/perf_profiling.pdb"
  "CMakeFiles/perf_profiling.dir/perf_profiling.cc.o"
  "CMakeFiles/perf_profiling.dir/perf_profiling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
