# Empty compiler generated dependencies file for perf_profiling.
# This may be replaced when dependencies are built.
