file(REMOVE_RECURSE
  "../bench/table8_value_effort"
  "../bench/table8_value_effort.pdb"
  "CMakeFiles/table8_value_effort.dir/table8_value_effort.cc.o"
  "CMakeFiles/table8_value_effort.dir/table8_value_effort.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_value_effort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
