# Empty compiler generated dependencies file for table8_value_effort.
# This may be replaced when dependencies are built.
