# Empty compiler generated dependencies file for ext_cost_benefit.
# This may be replaced when dependencies are built.
