file(REMOVE_RECURSE
  "../bench/ext_cost_benefit"
  "../bench/ext_cost_benefit.pdb"
  "CMakeFiles/ext_cost_benefit.dir/ext_cost_benefit.cc.o"
  "CMakeFiles/ext_cost_benefit.dir/ext_cost_benefit.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_cost_benefit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
