# Empty compiler generated dependencies file for perf_csg.
# This may be replaced when dependencies are built.
