file(REMOVE_RECURSE
  "../bench/perf_csg"
  "../bench/perf_csg.pdb"
  "CMakeFiles/perf_csg.dir/perf_csg.cc.o"
  "CMakeFiles/perf_csg.dir/perf_csg.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_csg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
