file(REMOVE_RECURSE
  "../bench/table9_effort_functions"
  "../bench/table9_effort_functions.pdb"
  "CMakeFiles/table9_effort_functions.dir/table9_effort_functions.cc.o"
  "CMakeFiles/table9_effort_functions.dir/table9_effort_functions.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table9_effort_functions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
