# Empty compiler generated dependencies file for table9_effort_functions.
# This may be replaced when dependencies are built.
