file(REMOVE_RECURSE
  "../bench/ablation_seed_stability"
  "../bench/ablation_seed_stability.pdb"
  "CMakeFiles/ablation_seed_stability.dir/ablation_seed_stability.cc.o"
  "CMakeFiles/ablation_seed_stability.dir/ablation_seed_stability.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_seed_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
