# Empty compiler generated dependencies file for ablation_seed_stability.
# This may be replaced when dependencies are built.
