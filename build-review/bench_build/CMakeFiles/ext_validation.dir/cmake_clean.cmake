file(REMOVE_RECURSE
  "../bench/ext_validation"
  "../bench/ext_validation.pdb"
  "CMakeFiles/ext_validation.dir/ext_validation.cc.o"
  "CMakeFiles/ext_validation.dir/ext_validation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
