# Empty dependencies file for ext_validation.
# This may be replaced when dependencies are built.
