file(REMOVE_RECURSE
  "../bench/fig6_bibliographic"
  "../bench/fig6_bibliographic.pdb"
  "CMakeFiles/fig6_bibliographic.dir/fig6_bibliographic.cc.o"
  "CMakeFiles/fig6_bibliographic.dir/fig6_bibliographic.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_bibliographic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
