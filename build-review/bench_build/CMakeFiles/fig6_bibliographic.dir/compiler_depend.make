# Empty compiler generated dependencies file for fig6_bibliographic.
# This may be replaced when dependencies are built.
