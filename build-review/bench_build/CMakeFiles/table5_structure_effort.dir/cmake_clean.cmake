file(REMOVE_RECURSE
  "../bench/table5_structure_effort"
  "../bench/table5_structure_effort.pdb"
  "CMakeFiles/table5_structure_effort.dir/table5_structure_effort.cc.o"
  "CMakeFiles/table5_structure_effort.dir/table5_structure_effort.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_structure_effort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
