# Empty dependencies file for table5_structure_effort.
# This may be replaced when dependencies are built.
