-- schema music_source
CREATE TABLE albums (
  id INTEGER,
  name TEXT NOT NULL,
  artist_list INTEGER NOT NULL,
  PRIMARY KEY (id),
  FOREIGN KEY (artist_list) REFERENCES artist_lists (id)
);
CREATE TABLE songs (
  album INTEGER,
  name TEXT NOT NULL,
  artist_list INTEGER,
  length INTEGER,
  FOREIGN KEY (album) REFERENCES albums (id),
  FOREIGN KEY (artist_list) REFERENCES artist_lists (id)
);
CREATE TABLE artist_lists (
  id INTEGER,
  PRIMARY KEY (id)
);
CREATE TABLE artist_credits (
  artist_list INTEGER,
  position INTEGER,
  artist TEXT NOT NULL,
  PRIMARY KEY (artist_list, position),
  FOREIGN KEY (artist_list) REFERENCES artist_lists (id)
);
