// Source selection (Sections 1/3.3): "given a set of integration
// candidates, find the source with the best 'fit'".
//
// Three candidate discographic sources shall be integrated into the same
// target; EFES's complexity assessment and effort estimate rank them
// *before* anyone integrates anything:
//   * candidate A — clean: every album has exactly one artist;
//   * candidate B — the paper example: multi-artist albums and orphan
//     artists;
//   * candidate C — messy: mostly multi-artist albums, many orphans.

#include <cstdio>
#include <string>
#include <vector>

#include "efes/experiment/default_pipeline.h"
#include "efes/experiment/source_selection.h"
#include "efes/scenario/paper_example.h"

namespace {

efes::Result<efes::IntegrationScenario> Candidate(const std::string& name,
                                                  size_t multi_artist,
                                                  size_t orphans) {
  efes::PaperExampleOptions options;
  options.album_count = 1000;
  options.song_count = 1500;
  options.multi_artist_albums = multi_artist;
  options.orphan_artists = orphans;
  options.seed = 7 + multi_artist + orphans;  // distinct but deterministic
  EFES_ASSIGN_OR_RETURN(efes::IntegrationScenario scenario,
                        efes::MakePaperExample(options));
  scenario.name = name;
  return scenario;
}

}  // namespace

int main() {
  std::vector<efes::IntegrationScenario> candidates;
  for (auto& [name, multi, orphans] :
       std::vector<std::tuple<std::string, size_t, size_t>>{
           {"candidate-A (clean)", 0, 0},
           {"candidate-B (paper example)", 250, 50},
           {"candidate-C (messy)", 700, 200}}) {
    auto scenario = Candidate(name, multi, orphans);
    if (!scenario.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   scenario.status().ToString().c_str());
      return 1;
    }
    candidates.push_back(std::move(*scenario));
  }

  efes::EfesEngine engine = efes::MakeDefaultEngine();
  std::printf("Ranking candidate sources by integration effort...\n\n");
  auto rankings = efes::RankSources(
      engine, candidates, efes::ExpectedQuality::kHighQuality, {});
  if (!rankings.ok()) {
    std::fprintf(stderr, "ranking failed: %s\n",
                 rankings.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", efes::RenderRanking(*rankings).c_str());
  std::printf(
      "The cheapest-to-integrate source wins; the breakdown per candidate\n"
      "(run the quickstart on it) explains *why* the others cost more.\n");
  return 0;
}
