// The two Section 6 case studies end to end: builds the bibliographic and
// discographic scenario suites, shows one complexity breakdown per
// domain, and runs the full cross-validated comparison of EFES vs. the
// attribute-counting baseline vs. the measured (simulated practitioner)
// ground truth.

#include <cstdio>

#include "efes/experiment/default_pipeline.h"
#include "efes/experiment/study.h"
#include "efes/scenario/bibliographic.h"
#include "efes/scenario/music.h"

int main() {
  // A close look at one scenario per domain.
  auto biblio = efes::MakeBiblioScenario(efes::BiblioSchemaId::kS1,
                                         efes::BiblioSchemaId::kS2, {});
  auto music = efes::MakeMusicScenario(efes::MusicSchemaId::kMusicbrainz,
                                       efes::MusicSchemaId::kDiscogs, {});
  if (!biblio.ok() || !music.ok()) {
    std::fprintf(stderr, "scenario construction failed\n");
    return 1;
  }

  efes::EfesEngine engine = efes::MakeDefaultEngine();
  for (const efes::IntegrationScenario* scenario :
       {&*biblio, &*music}) {
    auto result = engine.Run(*scenario,
                             efes::ExpectedQuality::kHighQuality, {});
    if (!result.ok()) {
      std::fprintf(stderr, "estimation failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("=== Scenario %s ===\n", scenario->name.c_str());
    std::printf("  Mapping:              %7.1f min\n",
                result->estimate.CategoryMinutes(
                    efes::TaskCategory::kMapping));
    std::printf("  Cleaning (Structure): %7.1f min\n",
                result->estimate.CategoryMinutes(
                    efes::TaskCategory::kCleaningStructure));
    std::printf("  Cleaning (Values):    %7.1f min\n",
                result->estimate.CategoryMinutes(
                    efes::TaskCategory::kCleaningValues));
    std::printf("  Total:                %7.1f min\n\n",
                result->estimate.TotalMinutes());
  }

  std::printf(
      "Note the inversion: the bibliographic scenario is dominated by\n"
      "cleaning (sloppy hand-entered values), the music scenario by\n"
      "mapping (a 12-relation normalized schema) — Section 6.2's core\n"
      "observation.\n\n");

  // The full cross-validated study (Figures 6 and 7).
  auto studies = efes::RunCrossValidatedStudies();
  if (!studies.ok()) {
    std::fprintf(stderr, "study failed: %s\n",
                 studies.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", studies->bibliographic.ToText().c_str());
  std::printf("%s\n", studies->music.ToText().c_str());
  std::printf("Overall rmse: Efes %.3f vs Counting %.3f (factor %.1fx)\n",
              studies->overall_efes_rmse, studies->overall_counting_rmse,
              studies->overall_counting_rmse / studies->overall_efes_rmse);
  return 0;
}
