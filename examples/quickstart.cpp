// Quickstart: estimate the integration effort of the paper's running
// example (Figure 2 — a discographic source feeding a music-records
// target) without performing the integration.
//
// Walks the full EFES pipeline:
//   1. build an IntegrationScenario (schemas, instances, correspondences),
//   2. run the complexity assessment (phase 1) — the objective problems,
//   3. run the effort estimation (phase 2) — tasks priced by Table 9,
//   4. compare the low-effort and high-quality strategies.

#include <cstdio>

#include "efes/experiment/default_pipeline.h"
#include "efes/scenario/paper_example.h"

int main() {
  // 1. The scenario. MakePaperExample generates the Figure 2 schemas and
  //    a deterministic synthetic instance (503 multi-artist albums, 102
  //    artists without albums, millisecond song lengths).
  auto scenario = efes::MakePaperExample();
  if (!scenario.ok()) {
    std::fprintf(stderr, "failed to build scenario: %s\n",
                 scenario.status().ToString().c_str());
    return 1;
  }
  std::printf("Scenario '%s': %zu source database(s), target '%s'\n\n",
              scenario->name.c_str(), scenario->sources.size(),
              scenario->target.name().c_str());

  // 2./3. The engine runs the three paper modules (mapping, structure,
  //       values) and prices the planned tasks.
  efes::EfesEngine engine = efes::MakeDefaultEngine();
  efes::ExecutionSettings settings;  // SQL + basic admin tool, Section 6.1

  auto high = engine.Run(*scenario, efes::ExpectedQuality::kHighQuality,
                         settings);
  if (!high.ok()) {
    std::fprintf(stderr, "estimation failed: %s\n",
                 high.status().ToString().c_str());
    return 1;
  }
  std::printf("=== High-quality integration ===\n%s\n",
              high->ToText().c_str());

  // 4. The same scenario under a low-effort strategy (remove offending
  //    tuples instead of repairing them).
  auto low =
      engine.Run(*scenario, efes::ExpectedQuality::kLowEffort, settings);
  if (!low.ok()) {
    std::fprintf(stderr, "estimation failed: %s\n",
                 low.status().ToString().c_str());
    return 1;
  }
  std::printf("=== Low-effort integration (tasks only) ===\n%s\n",
              low->estimate.ToText().c_str());

  std::printf(
      "Summary: high quality needs %.0f minutes, low effort %.0f "
      "minutes.\n",
      high->estimate.TotalMinutes(), low->estimate.TotalMinutes());

  // A second-generation mapping tool (Example 3.6) changes the picture:
  efes::ExecutionSettings with_tool = settings;
  with_tool.mapping_tool_available = true;
  auto tooled = engine.Run(*scenario, efes::ExpectedQuality::kHighQuality,
                           with_tool);
  std::printf(
      "With an automatic mapping tool the high-quality estimate drops to "
      "%.0f minutes.\n",
      tooled->estimate.TotalMinutes());
  return 0;
}
