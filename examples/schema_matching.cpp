// Dropping the correspondences-given assumption (Section 7): "a rather
// technical challenge in our system is to drop the assumption that
// correspondences among schemas are given."
//
// This example bootstraps the correspondences with the built-in schema
// matcher — name similarity, identifier tokens, and instance statistics —
// then runs the estimation on the *discovered* correspondences and
// compares against the curated ones.

#include <cstdio>

#include "efes/experiment/default_pipeline.h"
#include "efes/matching/match_accuracy.h"
#include "efes/matching/schema_matcher.h"
#include "efes/profiling/constraint_discovery.h"
#include "efes/scenario/paper_example.h"

int main() {
  auto curated = efes::MakePaperExample();
  if (!curated.ok()) {
    std::fprintf(stderr, "scenario: %s\n",
                 curated.status().ToString().c_str());
    return 1;
  }

  // 1. Run the matcher source -> target. The two schemas share no
  //    vocabulary (albums/records, name/title), so we lower the default
  //    thresholds and lean on instance evidence.
  efes::MatcherOptions options;
  options.min_relation_confidence = 0.30;
  options.min_attribute_confidence = 0.45;
  efes::SchemaMatcher matcher(options);
  auto matched = matcher.Match(curated->sources[0].database, curated->target);
  if (!matched.ok()) {
    std::fprintf(stderr, "matching: %s\n",
                 matched.status().ToString().c_str());
    return 1;
  }
  efes::CorrespondenceSet discovered = *std::move(matched);
  std::printf("Discovered correspondences (with confidences):\n");
  for (const efes::Correspondence& corr : discovered.all()) {
    std::printf("  %-45s %.2f\n", corr.ToString().c_str(),
                corr.confidence);
  }

  // 2. Also demonstrate profiling-based constraint discovery on the
  //    source — the Completeness ingredient of Section 3.1.
  auto mined = efes::DiscoverConstraints(curated->sources[0].database);
  std::printf("\nConstraints mined from the source instance (top 8):\n");
  for (size_t i = 0; i < mined.size() && i < 8; ++i) {
    std::printf("  %s\n", mined[i].ToString().c_str());
  }
  std::printf("  (%zu total)\n", mined.size());

  // 3. Score the proposal against the curated (intended) correspondences
  //    with Melnik et al.'s accuracy measure, the paper's suggested tool
  //    for quantifying matcher uncertainty (Section 7).
  efes::MatchQuality quality =
      EvaluateMatch(discovered, curated->sources[0].correspondences);
  std::printf("\nMatch quality vs the curated correspondences:\n  %s\n",
              quality.ToString().c_str());

  // 4. Estimate on the matched correspondences and compare with the
  //    curated ones.
  efes::IntegrationScenario matched_scenario = std::move(*curated);
  efes::CorrespondenceSet curated_correspondences =
      matched_scenario.sources[0].correspondences;
  matched_scenario.sources[0].correspondences = std::move(discovered);

  efes::EfesEngine engine = efes::MakeDefaultEngine();
  auto matched_estimate = engine.Run(
      matched_scenario, efes::ExpectedQuality::kHighQuality, {});
  matched_scenario.sources[0].correspondences =
      std::move(curated_correspondences);
  auto curated_estimate = engine.Run(
      matched_scenario, efes::ExpectedQuality::kHighQuality, {});
  if (!matched_estimate.ok() || !curated_estimate.ok()) {
    std::fprintf(stderr, "estimation failed\n");
    return 1;
  }
  std::printf(
      "\nEstimate on matched correspondences: %.0f minutes\n"
      "Estimate on curated correspondences: %.0f minutes\n",
      matched_estimate->estimate.TotalMinutes(),
      curated_estimate->estimate.TotalMinutes());
  std::printf(
      "\nAutomatically matched correspondences are incomplete (e.g. the\n"
      "cross-relation correspondence artist_credits.artist ->\n"
      "records.artist needs a join to surface, and dissimilar names like\n"
      "length/duration weaken attribute scores), so the estimates differ\n"
      "— quantifying the uncertainty the paper attributes to automatic\n"
      "matching (Section 7).\n");
  return 0;
}
