// Multi-source integration (the paper's Section 3.1 allows "a set of
// source databases"; Section 3.1 also warns that "all sources might be
// free of duplicates, but there still might be target duplicates when
// they are combined"). Two discographic catalogs are integrated into a
// target that already holds data; the cross-source detector (Lemma 2's
// overlapping union) surfaces the unique-key collisions none of the
// individual assessments can see.

#include <cstdio>

#include "efes/core/engine.h"
#include "efes/mapping/mapping_module.h"
#include "efes/scenario/music.h"
#include "efes/structure/structure_module.h"
#include "efes/values/value_module.h"

int main() {
  // Build two independently curated catalogs plus the target from the
  // shared discographic domain (disjoint disc samples, shared label and
  // artist vocabulary — as in reality).
  efes::MusicOptions first;
  first.seed = 11;
  first.disc_count = 120;
  efes::MusicOptions second;
  second.seed = 99;
  second.disc_count = 150;

  auto scenario = efes::MakeMusicScenario(efes::MusicSchemaId::kDiscogs,
                                          efes::MusicSchemaId::kDiscogs,
                                          first);
  auto other = efes::MakeMusicScenario(efes::MusicSchemaId::kDiscogs,
                                       efes::MusicSchemaId::kDiscogs,
                                       second);
  if (!scenario.ok() || !other.ok()) {
    std::fprintf(stderr, "scenario construction failed\n");
    return 1;
  }
  scenario->name = "two-catalogs";
  scenario->sources.push_back(std::move(other->sources[0]));

  // Engine with cross-source detection enabled.
  efes::StructureModule::Options structure_options;
  structure_options.detector.detect_cross_source_conflicts = true;
  efes::EfesEngine engine;
  engine.AddModule(std::make_unique<efes::MappingModule>());
  engine.AddModule(
      std::make_unique<efes::StructureModule>(structure_options));
  engine.AddModule(std::make_unique<efes::ValueModule>());

  auto result =
      engine.Run(*scenario, efes::ExpectedQuality::kHighQuality, {});
  if (!result.ok()) {
    std::fprintf(stderr, "estimation failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("%s\n", result->module_runs[1].report->ToText().c_str());
  std::printf(
      "The '(combined)' section lists unique-key collisions that exist in\n"
      "no single source: label and release identities overlap between the\n"
      "two catalogs and the pre-existing target data, so the practitioner\n"
      "must deduplicate after the union (Aggregate tuples).\n\n");
  std::printf("Total estimated effort for both sources: %.0f minutes\n",
              result->estimate.TotalMinutes());
  return 0;
}
