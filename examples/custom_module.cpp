// Extensibility (Section 3.2): "users must be able to extend the range of
// problems covered by the framework" — EFES accepts a dedicated
// estimation module per integration challenge.
//
// This example adds a *duplicate-detection* module, a problem class the
// built-in modules do not cover (the paper cites CrowdER [25] for the
// effort model: the number of pairwise comparisons a human must perform).
// The module plugs into the engine next to the stock modules; its tasks
// get priced by a custom effort function registered on the effort model.

#include <cstdio>
#include <memory>

#include "efes/core/engine.h"
#include "efes/experiment/default_pipeline.h"
#include "efes/scenario/paper_example.h"

namespace {

/// Complexity report: per target table, the number of candidate duplicate
/// pairs after blocking on a cheap key (here: equal first token of the
/// title-like attribute).
class DuplicationReport : public efes::ComplexityReport {
 public:
  struct Entry {
    std::string target_table;
    size_t candidate_pairs = 0;
  };

  explicit DuplicationReport(std::vector<Entry> entries)
      : entries_(std::move(entries)) {}

  const std::vector<Entry>& entries() const { return entries_; }

  std::string module_name() const override { return "duplicates"; }

  std::string ToText() const override {
    std::string out;
    for (const Entry& entry : entries_) {
      out += entry.target_table + ": " +
             std::to_string(entry.candidate_pairs) +
             " candidate duplicate pairs\n";
    }
    return out.empty() ? "(no duplicate candidates)\n" : out;
  }

  size_t ProblemCount() const override {
    size_t problems = 0;
    for (const Entry& entry : entries_) {
      problems += entry.candidate_pairs;
    }
    return problems;
  }

 private:
  std::vector<Entry> entries_;
};

/// "All sources might be free of duplicates, but there still might be
/// target duplicates when they are combined" (Section 3.1): the detector
/// counts cross-source/target candidate pairs per corresponding text
/// attribute via token blocking.
class DuplicationModule : public efes::EstimationModule {
 public:
  std::string name() const override { return "duplicates"; }

  efes::Result<std::unique_ptr<efes::ComplexityReport>> AssessComplexity(
      const efes::IntegrationScenario& scenario) const override {
    std::vector<DuplicationReport::Entry> entries;
    for (const efes::SourceBinding& source : scenario.sources) {
      for (const efes::Correspondence& corr :
           source.correspondences.all()) {
        if (!corr.is_attribute_level()) continue;
        EFES_ASSIGN_OR_RETURN(const efes::Table* source_table,
                              source.database.table(corr.source_relation));
        EFES_ASSIGN_OR_RETURN(const efes::Table* target_table,
                              scenario.target.table(corr.target_relation));
        EFES_ASSIGN_OR_RETURN(
            const std::vector<efes::Value>* source_column,
            source_table->ColumnByName(corr.source_attribute));
        EFES_ASSIGN_OR_RETURN(
            const std::vector<efes::Value>* target_column,
            target_table->ColumnByName(corr.target_attribute));

        // Blocking: bucket by first token; candidate pairs = cross
        // product within each bucket.
        std::map<std::string, std::pair<size_t, size_t>> blocks;
        auto first_token = [](const efes::Value& value) -> std::string {
          if (value.type() != efes::DataType::kText) return "";
          const std::string& text = value.AsText();
          return text.substr(0, text.find(' '));
        };
        for (const efes::Value& value : *source_column) {
          std::string token = first_token(value);
          if (!token.empty()) ++blocks[token].first;
        }
        for (const efes::Value& value : *target_column) {
          std::string token = first_token(value);
          if (!token.empty()) ++blocks[token].second;
        }
        size_t pairs = 0;
        for (const auto& [token, counts] : blocks) {
          pairs += counts.first * counts.second;
        }
        if (pairs > 0) {
          entries.push_back({corr.target_relation, pairs});
        }
      }
    }
    return std::unique_ptr<efes::ComplexityReport>(
        std::make_unique<DuplicationReport>(std::move(entries)));
  }

  efes::Result<std::vector<efes::Task>> PlanTasks(
      const efes::ComplexityReport& report, efes::ExpectedQuality quality,
      const efes::ExecutionSettings&) const override {
    const auto* duplication_report =
        dynamic_cast<const DuplicationReport*>(&report);
    if (duplication_report == nullptr) {
      return efes::Status::InvalidArgument("foreign report");
    }
    std::vector<efes::Task> tasks;
    // Low effort: accept duplicates (no work). High quality: review the
    // candidate pairs.
    if (quality == efes::ExpectedQuality::kHighQuality) {
      for (const DuplicationReport::Entry& entry :
           duplication_report->entries()) {
        efes::Task task;
        // Reuse the aggregate-tuples vocabulary: merging confirmed
        // duplicates is a tuple aggregation.
        task.type = efes::TaskType::kAggregateTuples;
        task.category = efes::TaskCategory::kOther;
        task.quality = quality;
        task.subject = "dedup " + entry.target_table;
        task.parameters["pairs"] =
            static_cast<double>(entry.candidate_pairs);
        tasks.push_back(std::move(task));
      }
    }
    return tasks;
  }
};

}  // namespace

int main() {
  auto scenario = efes::MakePaperExample();
  if (!scenario.ok()) {
    std::fprintf(stderr, "scenario: %s\n",
                 scenario.status().ToString().c_str());
    return 1;
  }

  // Register a custom effort function for the dedup review: following
  // CrowdER's back-of-the-envelope model, reviewing one candidate pair
  // takes ~5 seconds when pairs are grouped sensibly.
  efes::EffortModel model = efes::EffortModel::PaperDefault();
  model.SetFunction(efes::TaskType::kAggregateTuples,
                    [](const efes::Task& task,
                       const efes::ExecutionSettings&) {
                      double pairs = task.Param("pairs");
                      if (pairs > 0.0) return pairs * 5.0 / 60.0;
                      return 5.0;  // stock behavior for structural merges
                    });

  efes::EfesEngine engine = efes::MakeDefaultEngine(std::move(model));
  engine.AddModule(std::make_unique<DuplicationModule>());

  auto result = engine.Run(*scenario, efes::ExpectedQuality::kHighQuality,
                           {});
  if (!result.ok()) {
    std::fprintf(stderr, "estimation: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("EFES with a custom duplicate-detection module:\n\n%s\n",
              result->ToText().c_str());
  return 0;
}
