// Project planning with EFES (the Section 1 use cases): budget the
// integration with a custom effort configuration, highlight the hard
// parts of the schema for a kickoff slide (Graphviz heatmap), decide the
// execution order via the cost-benefit curve, and monitor progress as
// tasks complete.

#include <cstdio>
#include <fstream>
#include <set>

#include "efes/core/effort_config.h"
#include "efes/experiment/cost_benefit.h"
#include "efes/experiment/default_pipeline.h"
#include "efes/experiment/progress.h"
#include "efes/experiment/visualization.h"
#include "efes/scenario/paper_example.h"

int main() {
  auto scenario = efes::MakePaperExample();
  if (!scenario.ok()) {
    std::fprintf(stderr, "scenario: %s\n",
                 scenario.status().ToString().c_str());
    return 1;
  }

  // 1. Budget: our team has a seasoned practitioner (20% faster than the
  //    paper's assumptions) but the project is business-critical, and we
  //    negotiated a different rate for missing-value research.
  auto config = efes::ParseEffortConfig(R"(
[settings]
practitioner_skill = 0.8
criticality       = 1.25

[efforts]
Add missing values = 1.5 * values   # offshore data-research desk
)");
  if (!config.ok()) {
    std::fprintf(stderr, "config: %s\n",
                 config.status().ToString().c_str());
    return 1;
  }
  efes::EfesEngine engine =
      efes::MakeDefaultEngine(std::move(config->model));
  auto result = engine.Run(*scenario, efes::ExpectedQuality::kHighQuality,
                           config->settings);
  if (!result.ok()) {
    std::fprintf(stderr, "estimation: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("Budget under our team configuration: %.0f minutes\n\n",
              result->estimate.TotalMinutes());

  // 2. Kickoff slide: where do the problems live? (Render with
  //    `dot -Tsvg problems.dot -o problems.svg`.)
  efes::ProblemCounts problems = efes::CollectProblemCounts(*result);
  std::printf("Problem hotspots in the target schema:\n");
  for (const auto& [element, count] : problems) {
    std::printf("  %-20s %zu\n", element.c_str(), count);
  }
  std::string dot = efes::RenderProblemHeatmapDot(*scenario, problems);
  const char* dot_path = "problems.dot";
  std::ofstream(dot_path) << dot;
  std::printf("\nGraphviz heatmap written to %s (%zu bytes)\n\n", dot_path,
              dot.size());

  // 3. Execution order: quality per minute.
  efes::CostBenefitCurve curve =
      efes::AnalyzeCostBenefit(result->estimate);
  std::printf("Cost-benefit plan:\n%s\n", curve.ToText().c_str());

  // 4. Friday status call: the first three plan steps are done.
  std::set<size_t> done = {0, 1, 2};
  efes::ProgressReport progress =
      efes::TrackProgress(result->estimate, done);
  std::printf("Status: %s\n", progress.ToString().c_str());
  std::printf("Remaining by category: mapping %.0f, structure %.0f, "
              "values %.0f minutes\n",
              progress.remaining_mapping, progress.remaining_structure,
              progress.remaining_values);
  return 0;
}
