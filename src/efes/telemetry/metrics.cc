#include "efes/telemetry/metrics.h"

#include <algorithm>

namespace efes {

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)),
      bucket_counts_(upper_bounds_.size() + 1) {
  for (auto& bucket : bucket_counts_) {
    bucket.store(0, std::memory_order_relaxed);
  }
}

const std::vector<double>& Histogram::DefaultLatencyBoundsMs() {
  // EFES_LINT_ALLOW(banned-function): paper-constant histogram bounds, leaked on purpose
  static const std::vector<double>* bounds = new std::vector<double>{
      0.01, 0.025, 0.05, 0.1,  0.25,  0.5,   1.0,    2.5,
      5.0,  10.0,  25.0, 50.0, 100.0, 250.0, 1000.0, 10000.0};
  return *bounds;
}

void Histogram::Observe(double value) {
  // Inclusive upper bounds: the first bound >= value owns the observation.
  size_t bucket = std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(),
                                   value) -
                  upper_bounds_.begin();
  bucket_counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + value,
                                     std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::TotalCount() const {
  return count_.load(std::memory_order_relaxed);
}

double Histogram::Sum() const { return sum_.load(std::memory_order_relaxed); }

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> counts;
  counts.reserve(bucket_counts_.size());
  for (const auto& bucket : bucket_counts_) {
    counts.push_back(bucket.load(std::memory_order_relaxed));
  }
  return counts;
}

void Histogram::Reset() {
  for (auto& bucket : bucket_counts_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

uint64_t MetricsSnapshot::CounterValue(std::string_view name) const {
  for (const CounterSample& sample : counters) {
    if (sample.name == name) return sample.value;
  }
  return 0;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(
    std::string_view name, const std::vector<double>& upper_bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(upper_bounds))
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.push_back({name, counter->Value()});
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.push_back({name, gauge->Value()});
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.push_back({name, histogram->TotalCount(),
                                   histogram->Sum(),
                                   histogram->upper_bounds(),
                                   histogram->BucketCounts()});
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) counter->Reset();
  for (const auto& [name, gauge] : gauges_) gauge->Reset();
  for (const auto& [name, histogram] : histograms_) histogram->Reset();
}

MetricsRegistry& MetricsRegistry::Global() {
  // EFES_LINT_ALLOW(banned-function): process-lifetime metrics registry, leaked on purpose
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace efes
