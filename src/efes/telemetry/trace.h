// Scoped tracing: RAII spans with parent/child nesting, recorded into a
// TraceRecorder and exportable as Chrome trace-event JSON (open the file
// in chrome://tracing or https://ui.perfetto.dev).
//
// Recording is off by default; a disabled recorder makes TraceSpan cost
// one branch, so instrumentation can stay unconditionally in place on hot
// paths. A span can additionally feed its duration into a latency
// Histogram, which works even while tracing is disabled — the metrics
// side of telemetry does not depend on the tracing side.

#ifndef EFES_TELEMETRY_TRACE_H_
#define EFES_TELEMETRY_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "efes/common/clock.h"
#include "efes/common/metrics.h"
#include "efes/common/thread_annotations.h"

namespace efes {

/// One completed span. `id`/`parent_id` encode the nesting tree
/// (parent_id == 0 for roots); `depth` is the nesting level at begin.
struct TraceEvent {
  std::string name;
  int64_t start_nanos = 0;
  int64_t duration_nanos = 0;
  int tid = 0;
  int depth = 0;
  int64_t id = 0;
  int64_t parent_id = 0;
  /// Provenance-node id the span produced (0 = none); exported as the
  /// "prov" span arg so traces cross-link into `--explain` output.
  uint64_t provenance = 0;
};

class TraceSpan;

/// Collects completed spans. Thread-safe; spans on different threads
/// nest independently.
class TraceRecorder {
 public:
  TraceRecorder() : clock_(Clock::Default()) {}
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// The clock spans read. Must outlive the recorder. Not synchronized
  /// against concurrent spans; set it before recording.
  void set_clock(const Clock* clock) { clock_ = clock; }
  const Clock* clock() const { return clock_; }

  /// Discards all recorded events.
  void Clear();

  std::vector<TraceEvent> events() const;

  /// Renders every recorded event in Chrome trace-event format:
  /// {"traceEvents": [{"name", "cat", "ph": "X", "ts", "dur", "pid",
  /// "tid", "args": {"depth", "id", "parent"}}, ...],
  /// "displayTimeUnit": "ms"}. Timestamps are microseconds.
  std::string ToChromeTraceJson() const;

  /// Process-wide recorder used by instrumentation sites.
  static TraceRecorder& Global();

 private:
  friend class TraceSpan;

  int64_t NextId() { return next_id_.fetch_add(1, std::memory_order_relaxed) + 1; }
  void Record(TraceEvent event);

  const Clock* clock_;
  std::atomic<bool> enabled_{false};
  std::atomic<int64_t> next_id_{0};
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_ EFES_GUARDED_BY(mutex_);
};

/// RAII span: opens at construction, records at destruction. Nesting is
/// tracked per thread — a span constructed while another span of the
/// same recorder is open on the same thread becomes its child.
class TraceSpan {
 public:
  /// Records into `recorder` (the global recorder when nullptr). When
  /// `latency_ms` is given, the span duration is also Observe()d into it
  /// in milliseconds, regardless of whether tracing is enabled.
  explicit TraceSpan(std::string name, TraceRecorder* recorder = nullptr,
                     Histogram* latency_ms = nullptr);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Tags the span with the provenance node its work produced.
  void set_provenance(uint64_t node_id) { provenance_ = node_id; }

 private:
  TraceRecorder* recorder_;
  Histogram* latency_ms_;
  std::string name_;
  int64_t start_nanos_ = 0;
  int64_t id_ = 0;
  int64_t parent_id_ = 0;
  uint64_t provenance_ = 0;
  int depth_ = 0;
  bool tracing_ = false;
  bool timing_ = false;
  /// Innermost open span of this thread (across recorders; parenthood
  /// only links spans of the same recorder).
  TraceSpan* enclosing_ = nullptr;
};

}  // namespace efes

#endif  // EFES_TELEMETRY_TRACE_H_
