#include "efes/telemetry/trace.h"

#include <utility>

#include "efes/common/json_writer.h"

namespace efes {

namespace {

thread_local TraceSpan* tls_open_span = nullptr;

/// Small dense thread ids (0 = first thread to record a span), so traces
/// stay readable and deterministic in single-threaded runs.
int CurrentTid() {
  static std::atomic<int> next_tid{0};
  thread_local int tid = next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

}  // namespace

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

void TraceRecorder::Record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(event));
}

std::string TraceRecorder::ToChromeTraceJson() const {
  std::vector<TraceEvent> snapshot = events();
  JsonWriter json;
  json.BeginObject().Key("traceEvents").BeginArray();
  for (const TraceEvent& event : snapshot) {
    json.BeginObject()
        .Key("name")
        .String(event.name)
        .Key("cat")
        .String("efes")
        .Key("ph")
        .String("X")
        .Key("ts")
        .Number(static_cast<double>(event.start_nanos) / 1e3)
        .Key("dur")
        .Number(static_cast<double>(event.duration_nanos) / 1e3)
        .Key("pid")
        .Number(static_cast<int64_t>(1))
        .Key("tid")
        .Number(static_cast<int64_t>(event.tid))
        .Key("args")
        .BeginObject()
        .Key("depth")
        .Number(static_cast<int64_t>(event.depth))
        .Key("id")
        .Number(event.id)
        .Key("parent")
        .Number(event.parent_id);
    if (event.provenance != 0) {
      json.Key("prov").Number(static_cast<int64_t>(event.provenance));
    }
    json.EndObject().EndObject();
  }
  json.EndArray().Key("displayTimeUnit").String("ms").EndObject();
  return json.ToString();
}

TraceRecorder& TraceRecorder::Global() {
  // EFES_LINT_ALLOW(banned-function): process-lifetime trace recorder singleton, leaked on purpose
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

TraceSpan::TraceSpan(std::string name, TraceRecorder* recorder,
                     Histogram* latency_ms)
    : recorder_(recorder != nullptr ? recorder : &TraceRecorder::Global()),
      latency_ms_(latency_ms) {
  tracing_ = recorder_->enabled();
  timing_ = tracing_ || latency_ms_ != nullptr;
  if (!timing_) return;  // disabled telemetry: one branch and out
  name_ = std::move(name);
  start_nanos_ = recorder_->clock()->NowNanos();
  if (!tracing_) return;
  id_ = recorder_->NextId();
  enclosing_ = tls_open_span;
  if (enclosing_ != nullptr && enclosing_->recorder_ == recorder_ &&
      enclosing_->tracing_) {
    parent_id_ = enclosing_->id_;
    depth_ = enclosing_->depth_ + 1;
  }
  tls_open_span = this;
}

TraceSpan::~TraceSpan() {
  if (!timing_) return;
  int64_t duration = recorder_->clock()->NowNanos() - start_nanos_;
  if (latency_ms_ != nullptr) {
    latency_ms_->Observe(static_cast<double>(duration) / 1e6);
  }
  if (!tracing_) return;
  tls_open_span = enclosing_;
  TraceEvent event;
  event.name = std::move(name_);
  event.start_nanos = start_nanos_;
  event.duration_nanos = duration;
  event.tid = CurrentTid();
  event.depth = depth_;
  event.id = id_;
  event.parent_id = parent_id_;
  event.provenance = provenance_;
  recorder_->Record(std::move(event));
}

}  // namespace efes
