// Forwarding header: the metrics registry moved to efes/common/metrics.h
// so the lowest layer (parallel pool, fault registry, file IO) can report
// counters without a back-edge into telemetry. Kept so existing includes
// keep working; new code should include the common header directly.

#ifndef EFES_TELEMETRY_METRICS_H_
#define EFES_TELEMETRY_METRICS_H_

#include "efes/common/metrics.h"

#endif  // EFES_TELEMETRY_METRICS_H_
