// Forwarding header: Clock moved to efes/common/clock.h so the lowest
// layer (deadlines, fault registry) can tell time without depending on
// telemetry. Kept so existing includes keep working; new code should
// include the common header directly.

#ifndef EFES_TELEMETRY_CLOCK_H_
#define EFES_TELEMETRY_CLOCK_H_

#include "efes/common/clock.h"

#endif  // EFES_TELEMETRY_CLOCK_H_
