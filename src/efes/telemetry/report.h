// Human- and machine-readable renderings of a MetricsSnapshot: the
// `--metrics` text table, the `telemetry` JSON section of exported
// estimates, and the one-line JSON records the perf benches emit for the
// BENCH_*.json trajectories.

#ifndef EFES_TELEMETRY_REPORT_H_
#define EFES_TELEMETRY_REPORT_H_

#include <string>
#include <string_view>
#include <vector>

#include "efes/common/metrics.h"

namespace efes {

class JsonWriter;

/// Renders the snapshot as a text table (one row per metric; histograms
/// show count, mean, p50/p95 estimates, min/max, and total). Returns ""
/// for an empty snapshot.
std::string RenderMetricsReport(const MetricsSnapshot& snapshot);

/// Writes the snapshot as one JSON object value:
/// {"counters": {name: int, ...}, "gauges": {name: num, ...},
///  "histograms": {name: {"count", "sum", "mean", "p50", "p95", "min",
///  "max"}, ...}}.
/// The caller has positioned `json` where a value is expected.
void WriteMetricsJson(const MetricsSnapshot& snapshot, JsonWriter& json);

/// One self-contained JSON line for benchmark harnesses:
/// {"bench": name, "wall_ms": ..., "threads": ..., "counters": {...}}
/// where counters holds every counter plus gauges and histogram
/// count/sum/p50/p95/min/max entries, flattened by name. `threads`
/// records the worker thread count the workload ran with, so perf
/// trajectories stay comparable across machines and --threads overrides.
std::string BenchJsonLine(std::string_view bench_name, double wall_ms,
                          size_t threads, const MetricsSnapshot& snapshot);

/// One extra top-level field for BenchJsonLine — either a string or a
/// number, keyed by `key`. Used by the cold/warm cache harness to stamp
/// lines with {"cache": "warm", "speedup": ..., ...}.
struct BenchJsonField {
  static BenchJsonField Text(std::string key, std::string value);
  static BenchJsonField Number(std::string key, double value);

  std::string key;
  std::string text;
  double number = 0.0;
  bool numeric = false;
};

/// BenchJsonLine with extra top-level fields, emitted after `threads`
/// and before `counters`, in the given order.
std::string BenchJsonLine(std::string_view bench_name, double wall_ms,
                          size_t threads,
                          const std::vector<BenchJsonField>& extras,
                          const MetricsSnapshot& snapshot);

}  // namespace efes

#endif  // EFES_TELEMETRY_REPORT_H_
