#include "efes/telemetry/log.h"

#include <cstdio>

namespace efes {

std::string_view LogLevelToString(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "unknown";
}

bool ParseLogLevel(std::string_view text, LogLevel* level) {
  if (text == "debug") {
    *level = LogLevel::kDebug;
  } else if (text == "info") {
    *level = LogLevel::kInfo;
  } else if (text == "warn") {
    *level = LogLevel::kWarn;
  } else if (text == "error") {
    *level = LogLevel::kError;
  } else if (text == "off") {
    *level = LogLevel::kOff;
  } else {
    return false;
  }
  return true;
}

void StderrSink::Write(LogLevel level, std::string_view message) {
  std::fprintf(stderr, "[%.*s] %.*s\n",
               static_cast<int>(LogLevelToString(level).size()),
               LogLevelToString(level).data(),
               static_cast<int>(message.size()), message.data());
}

void CaptureSink::Write(LogLevel level, std::string_view message) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.push_back({level, std::string(message)});
}

std::vector<CaptureSink::Entry> CaptureSink::entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_;
}

void Logger::set_sink(LogSink* sink) {
  std::lock_guard<std::mutex> lock(sink_mutex_);
  sink_ = sink;
}

void Logger::Log(LogLevel level, std::string_view message) {
  if (!ShouldLog(level)) return;
  std::lock_guard<std::mutex> lock(sink_mutex_);
  if (sink_ != nullptr) sink_->Write(level, message);
}

Logger& Logger::Global() {
  // EFES_LINT_ALLOW(banned-function): process-lifetime logger singleton, leaked on purpose
  static Logger* logger = new Logger();
  return *logger;
}

}  // namespace efes
