// Leveled logging with pluggable sinks. Disabled logging (the default:
// level kOff into a NullSink) costs exactly one branch at the call site —
// the EFES_LOG macro only evaluates its message expression after
// ShouldLog() passes. Library code logs to the Global() logger; output
// goes to stderr when enabled, so stdout stays byte-identical.

#ifndef EFES_TELEMETRY_LOG_H_
#define EFES_TELEMETRY_LOG_H_

#include <atomic>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "efes/common/thread_annotations.h"

namespace efes {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

std::string_view LogLevelToString(LogLevel level);

/// Parses "debug"/"info"/"warn"/"error"/"off"; returns false on others.
bool ParseLogLevel(std::string_view text, LogLevel* level);

class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void Write(LogLevel level, std::string_view message) = 0;
};

/// Discards everything.
class NullSink : public LogSink {
 public:
  void Write(LogLevel, std::string_view) override {}
};

/// Writes "[level] message\n" lines to stderr.
class StderrSink : public LogSink {
 public:
  void Write(LogLevel level, std::string_view message) override;
};

/// Buffers lines in memory; for tests.
class CaptureSink : public LogSink {
 public:
  struct Entry {
    LogLevel level;
    std::string message;
  };

  void Write(LogLevel level, std::string_view message) override;
  std::vector<Entry> entries() const;

 private:
  mutable std::mutex mutex_;
  std::vector<Entry> entries_ EFES_GUARDED_BY(mutex_);
};

class Logger {
 public:
  Logger() = default;
  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  /// The single branch a disabled call site pays.
  bool ShouldLog(LogLevel level) const {
    return level >= level_.load(std::memory_order_relaxed);
  }

  LogLevel level() const { return level_.load(std::memory_order_relaxed); }
  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }

  /// The sink must outlive the logger; nullptr restores the NullSink.
  void set_sink(LogSink* sink);

  void Log(LogLevel level, std::string_view message);

  static Logger& Global();

 private:
  std::atomic<LogLevel> level_{LogLevel::kOff};
  std::mutex sink_mutex_;
  // nullptr = the shared NullSink.
  LogSink* sink_ EFES_GUARDED_BY(sink_mutex_) = nullptr;
};

/// Logs `message_expr` (any expression convertible to std::string_view)
/// to the global logger; the expression is not evaluated when the level
/// is disabled.
#define EFES_LOG(level, message_expr)                        \
  do {                                                       \
    if (::efes::Logger::Global().ShouldLog(level)) {         \
      ::efes::Logger::Global().Log(level, (message_expr));   \
    }                                                        \
  } while (false)

}  // namespace efes

#endif  // EFES_TELEMETRY_LOG_H_
