#include "efes/telemetry/report.h"

#include "efes/common/json_writer.h"
#include "efes/common/string_util.h"
#include "efes/common/text_table.h"

namespace efes {

std::string RenderMetricsReport(const MetricsSnapshot& snapshot) {
  if (snapshot.empty()) return "";
  TextTable table;
  table.SetHeader({"Metric", "Type", "Value", "Detail"});
  for (const auto& counter : snapshot.counters) {
    table.AddRow({counter.name, "counter", std::to_string(counter.value)});
  }
  for (const auto& gauge : snapshot.gauges) {
    table.AddRow({gauge.name, "gauge", FormatDouble(gauge.value, 6)});
  }
  for (const auto& histogram : snapshot.histograms) {
    table.AddRow({histogram.name, "histogram",
                  std::to_string(histogram.count),
                  "mean " + FormatDouble(histogram.Mean(), 4) + " ms, p50 " +
                      FormatDouble(histogram.Quantile(0.5), 4) + " ms, p95 " +
                      FormatDouble(histogram.Quantile(0.95), 4) +
                      " ms, min " + FormatDouble(histogram.min, 4) +
                      " ms, max " + FormatDouble(histogram.max, 4) +
                      " ms, total " + FormatDouble(histogram.sum, 4) + " ms"});
  }
  return table.ToString();
}

void WriteMetricsJson(const MetricsSnapshot& snapshot, JsonWriter& json) {
  json.BeginObject();
  json.Key("counters").BeginObject();
  for (const auto& counter : snapshot.counters) {
    json.Key(counter.name).Number(static_cast<int64_t>(counter.value));
  }
  json.EndObject();
  json.Key("gauges").BeginObject();
  for (const auto& gauge : snapshot.gauges) {
    json.Key(gauge.name).Number(gauge.value);
  }
  json.EndObject();
  json.Key("histograms").BeginObject();
  for (const auto& histogram : snapshot.histograms) {
    json.Key(histogram.name)
        .BeginObject()
        .Key("count")
        .Number(static_cast<int64_t>(histogram.count))
        .Key("sum")
        .Number(histogram.sum)
        .Key("mean")
        .Number(histogram.Mean())
        .Key("p50")
        .Number(histogram.Quantile(0.5))
        .Key("p95")
        .Number(histogram.Quantile(0.95))
        .Key("min")
        .Number(histogram.min)
        .Key("max")
        .Number(histogram.max)
        .EndObject();
  }
  json.EndObject();
  json.EndObject();
}

std::string BenchJsonLine(std::string_view bench_name, double wall_ms,
                          size_t threads, const MetricsSnapshot& snapshot) {
  return BenchJsonLine(bench_name, wall_ms, threads, {}, snapshot);
}

BenchJsonField BenchJsonField::Text(std::string key, std::string value) {
  BenchJsonField field;
  field.key = std::move(key);
  field.text = std::move(value);
  return field;
}

BenchJsonField BenchJsonField::Number(std::string key, double value) {
  BenchJsonField field;
  field.key = std::move(key);
  field.number = value;
  field.numeric = true;
  return field;
}

std::string BenchJsonLine(std::string_view bench_name, double wall_ms,
                          size_t threads,
                          const std::vector<BenchJsonField>& extras,
                          const MetricsSnapshot& snapshot) {
  JsonWriter json;
  json.BeginObject()
      .Key("bench")
      .String(bench_name)
      .Key("wall_ms")
      .Number(wall_ms)
      .Key("threads")
      .Number(static_cast<int64_t>(threads));
  for (const BenchJsonField& field : extras) {
    json.Key(field.key);
    if (field.numeric) {
      json.Number(field.number);
    } else {
      json.String(field.text);
    }
  }
  json.Key("counters").BeginObject();
  for (const auto& counter : snapshot.counters) {
    json.Key(counter.name).Number(static_cast<int64_t>(counter.value));
  }
  for (const auto& gauge : snapshot.gauges) {
    json.Key(gauge.name).Number(gauge.value);
  }
  for (const auto& histogram : snapshot.histograms) {
    json.Key(histogram.name + ".count")
        .Number(static_cast<int64_t>(histogram.count));
    json.Key(histogram.name + ".sum_ms").Number(histogram.sum);
    json.Key(histogram.name + ".p50_ms").Number(histogram.Quantile(0.5));
    json.Key(histogram.name + ".p95_ms").Number(histogram.Quantile(0.95));
    json.Key(histogram.name + ".min_ms").Number(histogram.min);
    json.Key(histogram.name + ".max_ms").Number(histogram.max);
  }
  json.EndObject().EndObject();
  return json.ToString();
}

}  // namespace efes
