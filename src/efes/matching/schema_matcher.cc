#include "efes/matching/schema_matcher.h"

#include <algorithm>
#include <map>
#include <set>

#include "efes/common/parallel.h"
#include "efes/common/string_util.h"
#include "efes/profiling/profiler.h"
#include "efes/profiling/statistics.h"
#include "efes/provenance/provenance.h"
#include "efes/common/metrics.h"

namespace efes {

namespace {

/// Instance evidence in [0, 1]: castability of source values to the
/// target type blended with the statistics fit of Section 5.1. Returns
/// -1 when either side lacks data; fails only when the ambient
/// ProfileOptions demand an exact profile under an unsatisfiable
/// --max-memory budget.
Result<double> InstanceScore(const Table& source_table, size_t source_column,
                             const Table& target_table, size_t target_column,
                             DataType target_type) {
  if (source_table.row_count() == 0 || target_table.row_count() == 0) {
    return -1.0;
  }
  EFES_ASSIGN_OR_RETURN(
      AttributeStatistics source_stats,
      ProfileColumn(source_table.column(source_column), target_type));
  EFES_ASSIGN_OR_RETURN(
      AttributeStatistics target_stats,
      ProfileColumn(target_table.column(target_column), target_type));
  double castable = source_stats.fill_status.CastableFraction();
  double fit = OverallFit(source_stats, target_stats);
  return 0.5 * castable + 0.5 * fit;
}

}  // namespace

Result<double> SchemaMatcher::ScoreAttributePair(
    const Database& source, const std::string& source_relation,
    const AttributeDef& source_attribute, const Database& target,
    const std::string& target_relation,
    const AttributeDef& target_attribute) const {
  static Counter& pairs_scored =
      MetricsRegistry::Global().GetCounter("matching.score.pairs");
  static Counter& instance_pairs =
      MetricsRegistry::Global().GetCounter("matching.score.instance_pairs");
  pairs_scored.Increment();

  double name = NameSimilarity(source_attribute.name, target_attribute.name);
  double token = TokenJaccard(source_attribute.name, target_attribute.name);

  double instance = -1.0;
  if (options_.use_instances) {
    auto source_table = source.table(source_relation);
    auto target_table = target.table(target_relation);
    if (source_table.ok() && target_table.ok()) {
      auto source_index =
          (*source_table)->def().AttributeIndex(source_attribute.name);
      auto target_index =
          (*target_table)->def().AttributeIndex(target_attribute.name);
      if (source_index.has_value() && target_index.has_value()) {
        instance_pairs.Increment();
        EFES_ASSIGN_OR_RETURN(
            instance,
            InstanceScore(**source_table, *source_index, **target_table,
                          *target_index, target_attribute.type));
      }
    }
  }

  double name_weight = options_.name_weight;
  double token_weight = options_.token_weight;
  double instance_weight = options_.instance_weight;
  if (instance < 0.0) {
    // No instance evidence: redistribute its weight onto the name signals.
    double scale = name_weight + token_weight;
    if (scale > 0.0) {
      name_weight += instance_weight * (name_weight / scale);
      token_weight += instance_weight * (token_weight / scale);
    }
    instance_weight = 0.0;
    instance = 0.0;
  }
  double total = name_weight + token_weight + instance_weight;
  if (total <= 0.0) return 0.0;
  return (name * name_weight + token * token_weight +
          instance * instance_weight) /
         total;
}

Result<std::vector<MatchCandidate>> SchemaMatcher::ScoreRelations(
    const Database& source, const Database& target) const {
  // All (source relation, target relation) pairs in canonical schema
  // order; each pair's score is independent (dominated by the per-pair
  // instance statistics), so scoring fans out over the shared pool and
  // the results merge back by pair index — bit-identical for any thread
  // count.
  std::vector<std::pair<const RelationDef*, const RelationDef*>> pairs;
  for (const RelationDef& source_rel : source.schema().relations()) {
    for (const RelationDef& target_rel : target.schema().relations()) {
      pairs.emplace_back(&source_rel, &target_rel);
    }
  }
  std::vector<MatchCandidate> candidates(pairs.size());
  EFES_RETURN_IF_ERROR(ParallelFor(pairs.size(), [&](size_t i) -> Status {
    const RelationDef& source_rel = *pairs[i].first;
    const RelationDef& target_rel = *pairs[i].second;
    // Relation score: name similarity blended with the mean of each
    // target attribute's best source-attribute score.
    double name = std::max(NameSimilarity(source_rel.name(),
                                          target_rel.name()),
                           TokenJaccard(source_rel.name(),
                                        target_rel.name()));
    double attribute_sum = 0.0;
    size_t attribute_count = 0;
    for (const AttributeDef& target_attr : target_rel.attributes()) {
      double best = 0.0;
      for (const AttributeDef& source_attr : source_rel.attributes()) {
        EFES_ASSIGN_OR_RETURN(
            double score,
            ScoreAttributePair(source, source_rel.name(), source_attr,
                               target, target_rel.name(), target_attr));
        best = std::max(best, score);
      }
      attribute_sum += best;
      ++attribute_count;
    }
    double attribute_mean =
        attribute_count == 0 ? 0.0 : attribute_sum / attribute_count;
    MatchCandidate& candidate = candidates[i];
    candidate.source_relation = source_rel.name();
    candidate.target_relation = target_rel.name();
    // Attribute-level evidence dominates: two relations about the
    // same entities often carry dissimilar names (albums vs records)
    // but similar attribute sets.
    candidate.score = 0.3 * name + 0.7 * attribute_mean;
    return Status::OK();
  }));
  std::sort(candidates.begin(), candidates.end(),
            [](const MatchCandidate& a, const MatchCandidate& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.source_relation != b.source_relation) {
                return a.source_relation < b.source_relation;
              }
              return a.target_relation < b.target_relation;
            });
  return candidates;
}

Result<CorrespondenceSet> SchemaMatcher::Match(const Database& source,
                                               const Database& target) const {
  CorrespondenceSet correspondences;

  // Scoring fans out over the pool; recording stays on this sequential
  // acceptance path, so node ids are independent of the thread count.
  ProvenanceRecorder* prov = ProvenanceRecorder::Active();
  uint64_t relation_threshold_node = 0;
  uint64_t attribute_threshold_node = 0;
  if (prov != nullptr) {
    relation_threshold_node = prov->RecordValue(
        ProvenanceKind::kThreshold, "threshold min_relation_confidence", "",
        options_.min_relation_confidence);
    attribute_threshold_node = prov->RecordValue(
        ProvenanceKind::kThreshold, "threshold min_attribute_confidence", "",
        options_.min_attribute_confidence);
  }

  // Greedy 1:1 relation matching by descending score.
  EFES_ASSIGN_OR_RETURN(std::vector<MatchCandidate> relation_candidates,
                        ScoreRelations(source, target));
  std::set<std::string> used_source;
  std::set<std::string> used_target;
  std::vector<std::pair<std::string, std::string>> relation_pairs;
  for (const MatchCandidate& candidate : relation_candidates) {
    if (candidate.score < options_.min_relation_confidence) break;
    if (used_source.count(candidate.source_relation) > 0 ||
        used_target.count(candidate.target_relation) > 0) {
      continue;
    }
    used_source.insert(candidate.source_relation);
    used_target.insert(candidate.target_relation);
    Correspondence corr;
    corr.source_relation = candidate.source_relation;
    corr.target_relation = candidate.target_relation;
    corr.confidence = candidate.score;
    if (prov != nullptr) {
      prov->RecordValue(ProvenanceKind::kCorrespondence,
                        "relation correspondence",
                        candidate.source_relation + " -> " +
                            candidate.target_relation,
                        candidate.score, {relation_threshold_node});
    }
    correspondences.Add(std::move(corr));
    relation_pairs.emplace_back(candidate.source_relation,
                                candidate.target_relation);
  }

  // Greedy 1:1 attribute matching within each matched relation pair. The
  // pairwise scores are computed in parallel (canonical attribute-pair
  // order), then filtered and ranked sequentially.
  for (const auto& [source_relation, target_relation] : relation_pairs) {
    const RelationDef* source_rel = *source.schema().relation(source_relation);
    const RelationDef* target_rel = *target.schema().relation(target_relation);
    std::vector<std::pair<const AttributeDef*, const AttributeDef*>>
        attribute_pairs;
    for (const AttributeDef& source_attr : source_rel->attributes()) {
      for (const AttributeDef& target_attr : target_rel->attributes()) {
        attribute_pairs.emplace_back(&source_attr, &target_attr);
      }
    }
    std::vector<double> scores(attribute_pairs.size(), 0.0);
    EFES_RETURN_IF_ERROR(
        ParallelFor(attribute_pairs.size(), [&](size_t i) -> Status {
          EFES_ASSIGN_OR_RETURN(
              scores[i],
              ScoreAttributePair(source, source_relation,
                                 *attribute_pairs[i].first, target,
                                 target_relation,
                                 *attribute_pairs[i].second));
          return Status::OK();
        }));
    std::vector<MatchCandidate> attribute_candidates;
    for (size_t i = 0; i < attribute_pairs.size(); ++i) {
      double score = scores[i];
      if (score < options_.min_attribute_confidence) continue;
      MatchCandidate candidate;
      candidate.source_relation = source_relation;
      candidate.source_attribute = attribute_pairs[i].first->name;
      candidate.target_relation = target_relation;
      candidate.target_attribute = attribute_pairs[i].second->name;
      candidate.score = score;
      attribute_candidates.push_back(std::move(candidate));
    }
    std::sort(attribute_candidates.begin(), attribute_candidates.end(),
              [](const MatchCandidate& a, const MatchCandidate& b) {
                if (a.score != b.score) return a.score > b.score;
                if (a.source_attribute != b.source_attribute) {
                  return a.source_attribute < b.source_attribute;
                }
                return a.target_attribute < b.target_attribute;
              });
    std::set<std::string> used_source_attrs;
    std::set<std::string> used_target_attrs;
    for (const MatchCandidate& candidate : attribute_candidates) {
      if (used_source_attrs.count(candidate.source_attribute) > 0 ||
          used_target_attrs.count(candidate.target_attribute) > 0) {
        continue;
      }
      used_source_attrs.insert(candidate.source_attribute);
      used_target_attrs.insert(candidate.target_attribute);
      Correspondence corr;
      corr.source_relation = candidate.source_relation;
      corr.source_attribute = candidate.source_attribute;
      corr.target_relation = candidate.target_relation;
      corr.target_attribute = candidate.target_attribute;
      corr.confidence = candidate.score;
      if (prov != nullptr) {
        prov->RecordValue(ProvenanceKind::kCorrespondence,
                          "attribute correspondence",
                          candidate.source_relation + "." +
                              candidate.source_attribute + " -> " +
                              candidate.target_relation + "." +
                              candidate.target_attribute,
                          candidate.score, {attribute_threshold_node});
      }
      correspondences.Add(std::move(corr));
    }
  }

  return correspondences;
}

}  // namespace efes
