// A schema matcher that bootstraps correspondences when none are given.
//
// The paper assumes correspondences as input ("they can be automatically
// discovered with schema matching tools") and names dropping that
// assumption as future work (Section 7). This module provides the missing
// piece: a hybrid matcher combining name similarity (edit distance),
// identifier-token overlap, and instance evidence (datatype castability
// and statistics fit), producing a CorrespondenceSet with confidences.

#ifndef EFES_MATCHING_SCHEMA_MATCHER_H_
#define EFES_MATCHING_SCHEMA_MATCHER_H_

#include <string>
#include <vector>

#include "efes/common/result.h"
#include "efes/relational/correspondence.h"
#include "efes/relational/database.h"

namespace efes {

struct MatcherOptions {
  /// Minimum blended score for an attribute correspondence.
  double min_attribute_confidence = 0.55;
  /// Minimum blended score for a relation correspondence.
  double min_relation_confidence = 0.40;
  /// Blend weights (normalized internally).
  double name_weight = 0.45;
  double token_weight = 0.30;
  double instance_weight = 0.25;
  /// Instance evidence requires data on both sides; otherwise its weight
  /// is redistributed to the name signals.
  bool use_instances = true;
};

/// One scored candidate pair (diagnostic output).
struct MatchCandidate {
  std::string source_relation;
  std::string source_attribute;  // empty for relation-level
  std::string target_relation;
  std::string target_attribute;
  double score = 0.0;
};

class SchemaMatcher {
 public:
  SchemaMatcher() = default;
  explicit SchemaMatcher(MatcherOptions options) : options_(options) {}

  /// Scores a single attribute pair in [0, 1]. Instance evidence runs
  /// through the chunked profiler (profiling/profiler.h) under the
  /// ambient ProfileOptions; an exact profile that cannot satisfy a
  /// --max-memory budget surfaces as kResourceExhausted rather than
  /// silently degrading the score.
  Result<double> ScoreAttributePair(const Database& source,
                                    const std::string& source_relation,
                                    const AttributeDef& source_attribute,
                                    const Database& target,
                                    const std::string& target_relation,
                                    const AttributeDef& target_attribute) const;

  /// Produces relation- and attribute-level correspondences from source
  /// into target. Relations are matched greedily 1:1 by the average of
  /// their best attribute scores blended with relation-name similarity;
  /// attributes are then matched greedily 1:1 within matched relation
  /// pairs.
  Result<CorrespondenceSet> Match(const Database& source,
                                  const Database& target) const;

  /// All scored relation-level candidates, descending (diagnostics).
  Result<std::vector<MatchCandidate>> ScoreRelations(
      const Database& source, const Database& target) const;

 private:
  MatcherOptions options_;
};

}  // namespace efes

#endif  // EFES_MATCHING_SCHEMA_MATCHER_H_
