#include "efes/matching/match_accuracy.h"

#include <set>
#include <sstream>

namespace efes {

namespace {

std::string Key(const Correspondence& corr) {
  return corr.source_relation + "." + corr.source_attribute + ">" +
         corr.target_relation + "." + corr.target_attribute;
}

}  // namespace

double MatchQuality::Precision() const {
  if (proposed_count == 0) return 1.0;
  return static_cast<double>(correct_count) /
         static_cast<double>(proposed_count);
}

double MatchQuality::Recall() const {
  if (intended_count == 0) return 1.0;
  return static_cast<double>(correct_count) /
         static_cast<double>(intended_count);
}

double MatchQuality::F1() const {
  double p = Precision();
  double r = Recall();
  if (p + r == 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

double MatchQuality::Accuracy() const {
  if (intended_count == 0) return proposed_count == 0 ? 1.0 : 0.0;
  size_t deletions = proposed_count - correct_count;
  size_t additions = intended_count - correct_count;
  return 1.0 - static_cast<double>(deletions + additions) /
                   static_cast<double>(intended_count);
}

std::string MatchQuality::ToString() const {
  std::ostringstream oss;
  oss.precision(3);
  oss << "precision " << Precision() << ", recall " << Recall() << ", f1 "
      << F1() << ", accuracy " << Accuracy() << " ("
      << (intended_count - correct_count) << " to add, "
      << (proposed_count - correct_count) << " to delete)";
  return oss.str();
}

MatchQuality EvaluateMatch(const CorrespondenceSet& proposed,
                           const CorrespondenceSet& intended) {
  std::set<std::string> intended_keys;
  for (const Correspondence& corr : intended.all()) {
    intended_keys.insert(Key(corr));
  }
  std::set<std::string> proposed_keys;
  for (const Correspondence& corr : proposed.all()) {
    proposed_keys.insert(Key(corr));
  }
  MatchQuality quality;
  quality.intended_count = intended_keys.size();
  quality.proposed_count = proposed_keys.size();
  for (const std::string& key : proposed_keys) {
    if (intended_keys.count(key) > 0) ++quality.correct_count;
  }
  return quality;
}

}  // namespace efes
