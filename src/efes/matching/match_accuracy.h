// Match quality measures, after Melnik et al.'s similarity-flooding
// evaluation, which the paper names as the starting point for handling
// matcher uncertainty (Section 7): "a novel measure to estimate how much
// effort it costs the user to modify the proposed match result into the
// intended result in terms of additions and deletions of matching
// attribute pairs".

#ifndef EFES_MATCHING_MATCH_ACCURACY_H_
#define EFES_MATCHING_MATCH_ACCURACY_H_

#include <string>

#include "efes/relational/correspondence.h"

namespace efes {

struct MatchQuality {
  size_t intended_count = 0;
  size_t proposed_count = 0;
  /// Proposed correspondences that are in the intended set.
  size_t correct_count = 0;

  double Precision() const;
  double Recall() const;
  double F1() const;

  /// Melnik et al.'s accuracy: 1 - (deletions + additions) / |intended|,
  /// where deletions = wrong proposals to remove and additions = intended
  /// correspondences the proposal missed. Can be negative when fixing the
  /// proposal costs more than matching from scratch.
  double Accuracy() const;

  /// "precision 0.83, recall 0.71, accuracy 0.57 (5 to add, 2 to delete)".
  std::string ToString() const;
};

/// Compares correspondence sets element-wise (source/target relation and
/// attribute; confidences are ignored).
MatchQuality EvaluateMatch(const CorrespondenceSet& proposed,
                           const CorrespondenceSet& intended);

}  // namespace efes

#endif  // EFES_MATCHING_MATCH_ACCURACY_H_
