// The attribute-counting baseline (Harden [14], Table 1; Section 2).
//
// "For the latter he uses the number of source attributes and assigns for
// each attribute a weighted set of tasks. In sum, he calculates slightly
// more than 8 hours of work for each source attribute." The baseline has
// no concept of the data; its only input is the number of source
// attributes. The per-attribute rate is calibratable, which is how the
// cross-validation experiments of Section 6.2 train it.

#ifndef EFES_BASELINE_COUNTING_ESTIMATOR_H_
#define EFES_BASELINE_COUNTING_ESTIMATOR_H_

#include <string>
#include <vector>

#include "efes/core/integration_scenario.h"

namespace efes {

/// One row of Table 1.
struct HardenTaskWeight {
  std::string task;
  double hours_per_attribute = 0.0;
  /// Whether the task counts towards the mapping share of the estimate
  /// (the baseline "also distinguishes between mapping and cleaning
  /// efforts" but "relates them neither to integration problems nor
  /// actual tasks").
  bool is_mapping = false;
};

/// The 13 task weights of Table 1 (8.05 hours per attribute in total).
const std::vector<HardenTaskWeight>& HardenTaskWeights();

/// Sum of Table 1 in minutes per attribute (= 483).
double HardenMinutesPerAttribute();

class CountingEstimator {
 public:
  struct Estimate {
    double total_minutes = 0.0;
    double mapping_minutes = 0.0;
    double cleaning_minutes = 0.0;
    size_t source_attributes = 0;
  };

  /// `minutes_per_attribute` defaults to Harden's 8.05 h = 483 min; the
  /// calibration protocol replaces it with a trained rate while the
  /// mapping/cleaning proportions of Table 1 are kept.
  explicit CountingEstimator(
      double minutes_per_attribute = -1.0 /* Harden default */);

  double minutes_per_attribute() const { return minutes_per_attribute_; }
  void set_minutes_per_attribute(double minutes) {
    minutes_per_attribute_ = minutes;
  }

  /// total = rate * #source attributes, split into mapping/cleaning by
  /// the Table 1 proportions.
  Estimate EstimateEffort(const IntegrationScenario& scenario) const;

  /// Same, from a raw attribute count.
  Estimate EstimateFromAttributeCount(size_t source_attributes) const;

 private:
  double minutes_per_attribute_;
};

}  // namespace efes

#endif  // EFES_BASELINE_COUNTING_ESTIMATOR_H_
