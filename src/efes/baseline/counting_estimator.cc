#include "efes/baseline/counting_estimator.h"

namespace efes {

const std::vector<HardenTaskWeight>& HardenTaskWeights() {
  // Table 1 of the paper (from Harden [14]).
  static const std::vector<HardenTaskWeight>* const kWeights =
      // EFES_LINT_ALLOW(banned-function): paper-constant table, leaked on purpose
      new std::vector<HardenTaskWeight>{
          {"Requirements and Mapping", 2.0, true},
          {"High Level Design", 0.1, true},
          {"Technical Design", 0.5, true},
          {"Data Modeling", 1.0, true},
          {"Development and Unit Testing", 1.0, false},
          {"System Test", 0.5, false},
          {"User Acceptance Testing", 0.25, false},
          {"Production Support", 0.2, false},
          {"Tech Lead Support", 0.5, false},
          {"Project Management Support", 0.5, false},
          {"Product Owner Support", 0.5, false},
          {"Subject Matter Expert", 0.5, false},
          {"Data Steward Support", 0.5, false},
      };
  return *kWeights;
}

double HardenMinutesPerAttribute() {
  double hours = 0.0;
  for (const HardenTaskWeight& weight : HardenTaskWeights()) {
    hours += weight.hours_per_attribute;
  }
  return hours * 60.0;
}

namespace {

double MappingFraction() {
  double mapping = 0.0;
  double total = 0.0;
  for (const HardenTaskWeight& weight : HardenTaskWeights()) {
    total += weight.hours_per_attribute;
    if (weight.is_mapping) mapping += weight.hours_per_attribute;
  }
  return total == 0.0 ? 0.0 : mapping / total;
}

}  // namespace

CountingEstimator::CountingEstimator(double minutes_per_attribute)
    : minutes_per_attribute_(minutes_per_attribute > 0.0
                                 ? minutes_per_attribute
                                 : HardenMinutesPerAttribute()) {}

CountingEstimator::Estimate CountingEstimator::EstimateFromAttributeCount(
    size_t source_attributes) const {
  Estimate estimate;
  estimate.source_attributes = source_attributes;
  estimate.total_minutes =
      minutes_per_attribute_ * static_cast<double>(source_attributes);
  double mapping_fraction = MappingFraction();
  estimate.mapping_minutes = estimate.total_minutes * mapping_fraction;
  estimate.cleaning_minutes =
      estimate.total_minutes * (1.0 - mapping_fraction);
  return estimate;
}

CountingEstimator::Estimate CountingEstimator::EstimateEffort(
    const IntegrationScenario& scenario) const {
  return EstimateFromAttributeCount(scenario.TotalSourceAttributeCount());
}

}  // namespace efes
