// The value-heterogeneity estimation module (Section 5).
//
// The *value fit detector* aggregates source and target data into the
// statistics of Section 5.1 and runs the decision model (Algorithm 1) on
// every corresponding attribute pair. The *value transformation planner*
// proposes the cleaning tasks of Table 7; unlike structure repairs, value
// tasks have no interdependencies.

#ifndef EFES_VALUES_VALUE_MODULE_H_
#define EFES_VALUES_VALUE_MODULE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "efes/core/module.h"
#include "efes/profiling/statistics.h"

namespace efes {

/// The four heterogeneity classes produced by Algorithm 1.
enum class ValueHeterogeneityType {
  kTooFewSourceElements,
  kDifferentRepresentationsCritical,
  kDifferentRepresentations,
  kTooCoarseGrainedSourceValues,
  kTooFineGrainedSourceValues,
};

std::string_view ValueHeterogeneityTypeToString(ValueHeterogeneityType type);

/// One detected heterogeneity between a corresponding attribute pair,
/// with the "additional parameters" of Table 6.
struct ValueHeterogeneity {
  std::string source_database;
  std::string source_attribute;  // "songs.length"
  std::string target_attribute;  // "tracks.duration"
  ValueHeterogeneityType type =
      ValueHeterogeneityType::kDifferentRepresentations;
  /// Overall importance-weighted fit (1 = perfect; below the threshold
  /// triggers kDifferentRepresentations).
  double overall_fit = 1.0;
  /// Non-null source values / distinct source values — the Table 6
  /// "additional parameters".
  size_t source_values = 0;
  size_t source_distinct_values = 0;
  /// For kTooFewSourceElements: how many values are missing relative to
  /// the target's fill level. For critical representations: how many
  /// values cannot be cast.
  size_t affected_values = 0;
  /// Number of distinct text patterns among the source values — the
  /// number of format rules a conversion script needs.
  size_t source_pattern_count = 0;
  /// True when the representation difference is *systematic*: the source
  /// values follow at most a handful of formats, so one rule-based
  /// transformation script handles them all (the music-domain case,
  /// ms -> "m:ss"). False for irregular, hand-entered values that need a
  /// per-value mapping (the bibliographic case).
  bool systematic = true;
  /// Provenance-node id of this finding (0 = no recorder active).
  uint64_t provenance = 0;
};

struct ValueFitOptions {
  /// "We found 0.9 to be a good threshold to separate seamlessly
  /// integrating attribute pairs from those that had notably different
  /// characteristics."
  double fit_threshold = 0.9;

  /// Fill-fraction gap that makes the source "substantially fewer"
  /// (rule 1 of Algorithm 1).
  double fewer_values_gap = 0.25;

  /// Fraction of uncastable source values tolerated before they count as
  /// incompatible (rule 3).
  double incompatible_tolerance = 0.02;

  /// An attribute is domain-restricted when its values come from a small
  /// discrete domain: constancy above this, or few distinct values.
  double domain_constancy_threshold = 0.6;
  size_t domain_max_distinct = 24;

  /// A conversion counts as systematic (rule-based script) when the
  /// source values follow at most this many distinct text patterns.
  size_t max_format_rules = 6;

  /// When > 0, statistics are computed over at most this many rows per
  /// column (deterministic strided sample). Keeps the detector fast on
  /// very large instances; distinct-value counts then come from the
  /// sample (a lower bound). 0 = use every row.
  size_t sample_limit = 0;
};

class ValueComplexityReport : public ComplexityReport {
 public:
  explicit ValueComplexityReport(
      std::vector<ValueHeterogeneity> heterogeneities)
      : heterogeneities_(std::move(heterogeneities)) {}

  const std::vector<ValueHeterogeneity>& heterogeneities() const {
    return heterogeneities_;
  }

  std::string module_name() const override { return "values"; }
  /// Renders Table 6: heterogeneity | additional parameters.
  std::string ToText() const override;
  size_t ProblemCount() const override { return heterogeneities_.size(); }

 private:
  std::vector<ValueHeterogeneity> heterogeneities_;
};

/// Decides whether an attribute draws from a small discrete domain.
bool IsDomainRestricted(const AttributeStatistics& stats,
                        const ValueFitOptions& options);

/// Algorithm 1 on one attribute pair. `has_target_data` gates the
/// statistics-comparison rules (an empty target column characterizes
/// nothing).
std::vector<ValueHeterogeneityType> DetectValueHeterogeneities(
    const AttributeStatistics& source, const AttributeStatistics& target,
    bool has_target_data, const ValueFitOptions& options,
    double* overall_fit_out = nullptr);

class ValueModule : public EstimationModule {
 public:
  ValueModule() = default;
  explicit ValueModule(ValueFitOptions options) : options_(options) {}

  std::string name() const override { return "values"; }

  Result<std::unique_ptr<ComplexityReport>> AssessComplexity(
      const IntegrationScenario& scenario) const override;

  Result<std::vector<Task>> PlanTasks(
      const ComplexityReport& report, ExpectedQuality quality,
      const ExecutionSettings& settings) const override;

 private:
  ValueFitOptions options_;
};

}  // namespace efes

#endif  // EFES_VALUES_VALUE_MODULE_H_
