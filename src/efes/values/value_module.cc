#include "efes/values/value_module.h"

#include <set>
#include <sstream>

#include "efes/common/parallel.h"
#include "efes/common/string_util.h"
#include "efes/common/text_table.h"
#include "efes/profiling/profiler.h"
#include "efes/provenance/provenance.h"

namespace efes {

std::string_view ValueHeterogeneityTypeToString(
    ValueHeterogeneityType type) {
  switch (type) {
    case ValueHeterogeneityType::kTooFewSourceElements:
      return "Too few source elements";
    case ValueHeterogeneityType::kDifferentRepresentationsCritical:
      return "Different value representations (critical)";
    case ValueHeterogeneityType::kDifferentRepresentations:
      return "Different value representations";
    case ValueHeterogeneityType::kTooCoarseGrainedSourceValues:
      return "Too coarse-grained source values";
    case ValueHeterogeneityType::kTooFineGrainedSourceValues:
      return "Too fine-grained source values";
  }
  return "unknown";
}

std::string ValueComplexityReport::ToText() const {
  if (heterogeneities_.empty()) {
    return "(no value heterogeneities)\n";
  }
  TextTable table;
  table.SetHeader({"Value heterogeneity", "Additional parameters"});
  for (const ValueHeterogeneity& h : heterogeneities_) {
    std::ostringstream name;
    name << ValueHeterogeneityTypeToString(h.type) << " ("
         << h.source_attribute << " -> " << h.target_attribute << ")";
    std::ostringstream params;
    params << h.source_values << " source values, "
           << h.source_distinct_values << " distinct source values";
    if (h.affected_values > 0) {
      params << ", " << h.affected_values << " affected";
    }
    params << ", fit " << FormatDouble(h.overall_fit, 3);
    table.AddRow({name.str(), params.str()});
  }
  return table.ToString();
}

namespace {

/// Deterministic strided sample of at most `limit` values (0 = all).
std::vector<Value> SampleColumn(const std::vector<Value>& column,
                                size_t limit) {
  if (limit == 0 || column.size() <= limit) return column;
  std::vector<Value> sample;
  sample.reserve(limit);
  double stride = static_cast<double>(column.size()) /
                  static_cast<double>(limit);
  for (size_t i = 0; i < limit; ++i) {
    sample.push_back(column[static_cast<size_t>(i * stride)]);
  }
  return sample;
}

}  // namespace

bool IsDomainRestricted(const AttributeStatistics& stats,
                        const ValueFitOptions& options) {
  if (stats.constancy.non_null_count == 0) return false;
  // A small distinct count only indicates a discrete domain when the
  // values actually repeat — a 20-row column with 20 distinct values is
  // merely small, not domain-restricted.
  if (stats.constancy.distinct_count <= options.domain_max_distinct &&
      stats.constancy.distinct_count * 2 <=
          stats.constancy.non_null_count) {
    return true;
  }
  return stats.constancy.constancy >= options.domain_constancy_threshold;
}

std::vector<ValueHeterogeneityType> DetectValueHeterogeneities(
    const AttributeStatistics& source, const AttributeStatistics& target,
    bool has_target_data, const ValueFitOptions& options,
    double* overall_fit_out) {
  std::vector<ValueHeterogeneityType> detected;
  if (overall_fit_out != nullptr) *overall_fit_out = 1.0;

  // Rule 1: substantiallyFewerSourceValues(Ss, St). Compares non-null
  // fractions: an uncastable value is present, merely misrepresented.
  if (has_target_data &&
      source.fill_status.NonNullFraction() + options.fewer_values_gap <
          target.fill_status.NonNullFraction()) {
    detected.push_back(ValueHeterogeneityType::kTooFewSourceElements);
  }

  // Rule 2: hasIncompatibleValues(Ss) — source values that cannot be cast
  // to the target datatype.
  bool critical = source.fill_status.CastableFraction() <
                  1.0 - options.incompatible_tolerance;
  if (critical) {
    detected.push_back(
        ValueHeterogeneityType::kDifferentRepresentationsCritical);
  }

  // Rules 3-5: granularity and domain-specific differences. Without
  // target data there is nothing to characterize against; with a critical
  // representation problem already established, a second (uncritical)
  // representation finding would double-report the same defect.
  if (critical || !has_target_data ||
      source.constancy.non_null_count == 0) {
    return detected;
  }
  bool source_restricted = IsDomainRestricted(source, options);
  bool target_restricted = IsDomainRestricted(target, options);
  if (source_restricted && !target_restricted) {
    detected.push_back(
        ValueHeterogeneityType::kTooCoarseGrainedSourceValues);
  } else if (!source_restricted && target_restricted) {
    detected.push_back(ValueHeterogeneityType::kTooFineGrainedSourceValues);
  } else {
    double fit = OverallFit(source, target);
    if (overall_fit_out != nullptr) *overall_fit_out = fit;
    if (fit < options.fit_threshold) {
      detected.push_back(ValueHeterogeneityType::kDifferentRepresentations);
    }
  }
  return detected;
}

Result<std::unique_ptr<ComplexityReport>> ValueModule::AssessComplexity(
    const IntegrationScenario& scenario) const {
  std::vector<ValueHeterogeneity> heterogeneities;

  // Correspondences into target foreign-key attributes are key
  // remappings: their "values" are surrogate identifiers the mapping
  // regenerates, so representation differences there are mapping work
  // (handled by the mapping module), not value cleaning.
  std::set<std::string> target_fk_attributes;
  for (const Constraint& c : scenario.target.schema().constraints()) {
    if (c.kind != ConstraintKind::kForeignKey) continue;
    for (const std::string& attribute : c.attributes) {
      target_fk_attributes.insert(c.relation + "." + attribute);
    }
  }

  // Pass 1 (sequential): resolve every attribute-level correspondence
  // into a self-contained work item, preserving the scenario's canonical
  // source/correspondence order and its error behaviour.
  struct WorkItem {
    const Correspondence* corr = nullptr;
    std::string source_database;
    std::vector<Value> source_sample;
    std::vector<Value> target_sample;
    AttributeDef target_attribute;
    bool has_target_data = false;
  };
  std::vector<WorkItem> items;
  for (const SourceBinding& source : scenario.sources) {
    for (const Correspondence& corr : source.correspondences.all()) {
      if (!corr.is_attribute_level()) continue;
      if (target_fk_attributes.count(corr.target_relation + "." +
                                     corr.target_attribute) > 0) {
        continue;
      }

      EFES_ASSIGN_OR_RETURN(const Table* source_table,
                            source.database.table(corr.source_relation));
      EFES_ASSIGN_OR_RETURN(const Table* target_table,
                            scenario.target.table(corr.target_relation));
      EFES_ASSIGN_OR_RETURN(
          const std::vector<Value>* source_column,
          source_table->ColumnByName(corr.source_attribute));
      EFES_ASSIGN_OR_RETURN(
          const std::vector<Value>* target_column,
          target_table->ColumnByName(corr.target_attribute));
      EFES_ASSIGN_OR_RETURN(
          AttributeDef target_attribute,
          target_table->def().Attribute(corr.target_attribute));

      WorkItem item;
      item.corr = &corr;
      item.source_database = source.database.name();
      item.source_sample = SampleColumn(*source_column, options_.sample_limit);
      item.target_sample = SampleColumn(*target_column, options_.sample_limit);
      item.target_attribute = std::move(target_attribute);
      item.has_target_data = !target_column->empty();
      items.push_back(std::move(item));
    }
  }

  // Provenance: thresholds are recorded once, up front, on the sequential
  // path; the per-item statistics and findings are buffered into
  // fragments inside the parallel loop and absorbed in item order below —
  // ids stay canonical for any thread count.
  ProvenanceRecorder* prov = ProvenanceRecorder::Active();
  uint64_t fit_threshold_node = 0;
  uint64_t fewer_gap_node = 0;
  uint64_t incompatible_node = 0;
  if (prov != nullptr) {
    fit_threshold_node =
        prov->RecordValue(ProvenanceKind::kThreshold,
                          "threshold fit_threshold", "", options_.fit_threshold);
    fewer_gap_node = prov->RecordValue(ProvenanceKind::kThreshold,
                                       "threshold fewer_values_gap", "",
                                       options_.fewer_values_gap);
    incompatible_node = prov->RecordValue(ProvenanceKind::kThreshold,
                                          "threshold incompatible_tolerance",
                                          "", options_.incompatible_tolerance);
  }

  // Pass 2 (parallel): the statistics and detection work — the dominant
  // cost, every cell of both samples is scanned — fans out per item and
  // merges back in item order, keeping the report deterministic.
  struct ItemResult {
    AttributeStatistics source_stats;
    AttributeStatistics target_stats;
    double overall_fit = 1.0;
    std::vector<ValueHeterogeneityType> types;
    size_t source_pattern_count = 0;
    ProvenanceFragment fragment;
    /// Fragment-local index of the finding node for each entry of `types`.
    std::vector<size_t> finding_locals;
  };
  std::vector<ItemResult> results(items.size());
  EFES_RETURN_IF_ERROR(
      ParallelFor(items.size(), [&](size_t index) -> Status {
        const WorkItem& item = items[index];
        ItemResult& computed = results[index];
        EFES_ASSIGN_OR_RETURN(
            computed.source_stats,
            ProfileColumn(item.source_sample, item.target_attribute.type));
        EFES_ASSIGN_OR_RETURN(
            computed.target_stats,
            ProfileColumn(item.target_sample, item.target_attribute.type));
        computed.types = DetectValueHeterogeneities(
            computed.source_stats, computed.target_stats,
            item.has_target_data, options_, &computed.overall_fit);

        // Count the distinct text patterns of the source values: the
        // number of format rules a conversion script would need.
        std::set<std::string> source_patterns;
        for (const Value& value : item.source_sample) {
          if (value.is_null()) continue;
          source_patterns.insert(GeneralizeToPattern(value.ToString()));
          if (source_patterns.size() > options_.max_format_rules) break;
        }
        computed.source_pattern_count = source_patterns.size();

        if (prov != nullptr && !computed.types.empty()) {
          const Correspondence& corr = *item.corr;
          const std::string subject =
              item.source_database + ":" + corr.source_relation + "." +
              corr.source_attribute + " -> " + corr.target_relation + "." +
              corr.target_attribute;
          ProvenanceFragment& frag = computed.fragment;
          const auto& src = computed.source_stats;
          const auto& tgt = computed.target_stats;
          size_t src_fill = frag.AddValue(
              ProvenanceKind::kStatistic,
              "statistic source.non_null_fraction", subject,
              src.fill_status.NonNullFraction());
          size_t tgt_fill = frag.AddValue(
              ProvenanceKind::kStatistic,
              "statistic target.non_null_fraction", subject,
              tgt.fill_status.NonNullFraction());
          size_t castable = frag.AddValue(
              ProvenanceKind::kStatistic,
              "statistic source.castable_fraction", subject,
              src.fill_status.CastableFraction());
          size_t distinct = frag.AddValue(
              ProvenanceKind::kStatistic, "statistic source.distinct_count",
              subject,
              static_cast<double>(src.constancy.distinct_count));
          size_t non_null = frag.AddValue(
              ProvenanceKind::kStatistic, "statistic source.non_null_count",
              subject,
              static_cast<double>(src.constancy.non_null_count));
          size_t fit =
              frag.AddValue(ProvenanceKind::kStatistic,
                            "statistic overall_fit", subject,
                            computed.overall_fit);
          size_t patterns = frag.AddValue(
              ProvenanceKind::kStatistic, "statistic source.pattern_count",
              subject,
              static_cast<double>(computed.source_pattern_count));
          for (ValueHeterogeneityType type : computed.types) {
            std::vector<uint64_t> global_inputs;
            std::vector<size_t> local_inputs;
            switch (type) {
              case ValueHeterogeneityType::kTooFewSourceElements:
                global_inputs = {fewer_gap_node};
                local_inputs = {src_fill, tgt_fill};
                break;
              case ValueHeterogeneityType::kDifferentRepresentationsCritical:
                global_inputs = {incompatible_node};
                local_inputs = {castable, non_null, patterns};
                break;
              case ValueHeterogeneityType::kDifferentRepresentations:
                global_inputs = {fit_threshold_node};
                local_inputs = {fit, patterns};
                break;
              case ValueHeterogeneityType::kTooCoarseGrainedSourceValues:
              case ValueHeterogeneityType::kTooFineGrainedSourceValues:
                local_inputs = {distinct, non_null};
                break;
            }
            computed.finding_locals.push_back(frag.Add(
                ProvenanceKind::kFinding,
                "value heterogeneity: " +
                    std::string(ValueHeterogeneityTypeToString(type)),
                subject, std::move(global_inputs), std::move(local_inputs)));
          }
        }
        return Status::OK();
      }));

  // Pass 3 (sequential): assemble the heterogeneity list in item order.
  for (size_t index = 0; index < items.size(); ++index) {
    const WorkItem& item = items[index];
    const Correspondence& corr = *item.corr;
    const AttributeStatistics& source_stats = results[index].source_stats;
    const AttributeStatistics& target_stats = results[index].target_stats;
    double overall_fit = results[index].overall_fit;
    // Canonical-order merge: absorbing here, in item order, assigns the
    // fragment's nodes their global ids independent of which worker
    // computed them.
    std::vector<uint64_t> global_ids;
    if (prov != nullptr) global_ids = prov->Absorb(results[index].fragment);
    for (size_t ti = 0; ti < results[index].types.size(); ++ti) {
      ValueHeterogeneityType type = results[index].types[ti];
      uint64_t finding_node = 0;
      if (ti < results[index].finding_locals.size()) {
        size_t local = results[index].finding_locals[ti];
        if (local < global_ids.size()) finding_node = global_ids[local];
      }
      // Missing mandatory values are structural NOT NULL conflicts; the
      // structure module detects and plans them. Reporting them here
      // too would double-count the same repair.
      if (type == ValueHeterogeneityType::kTooFewSourceElements &&
          scenario.target.schema().IsNotNullable(corr.target_relation,
                                                 corr.target_attribute)) {
        continue;
      }
      ValueHeterogeneity h;
      h.source_database = item.source_database;
      h.source_attribute = corr.source_relation + "." + corr.source_attribute;
      h.target_attribute = corr.target_relation + "." + corr.target_attribute;
      h.type = type;
      h.overall_fit = overall_fit;
      h.source_values = source_stats.constancy.non_null_count;
      h.source_distinct_values = source_stats.constancy.distinct_count;
      h.source_pattern_count = results[index].source_pattern_count;
      h.systematic =
          results[index].source_pattern_count <= options_.max_format_rules;
      if (type == ValueHeterogeneityType::kTooFewSourceElements) {
        double gap = target_stats.fill_status.NonNullFraction() -
                     source_stats.fill_status.NonNullFraction();
        h.affected_values = static_cast<size_t>(
            gap * static_cast<double>(source_stats.fill_status.total_count));
      } else if (type ==
                 ValueHeterogeneityType::kDifferentRepresentationsCritical) {
        h.affected_values = source_stats.fill_status.uncastable_count;
      }
      h.provenance = finding_node;
      heterogeneities.push_back(std::move(h));
    }
  }

  auto report =
      std::make_unique<ValueComplexityReport>(std::move(heterogeneities));
  if (prov != nullptr) {
    std::vector<uint64_t> finding_nodes;
    for (const ValueHeterogeneity& h : report->heterogeneities()) {
      finding_nodes.push_back(h.provenance);
    }
    report->set_provenance_node(prov->RecordValue(
        ProvenanceKind::kFinding, "value assessment", "",
        static_cast<double>(report->heterogeneities().size()),
        std::move(finding_nodes)));
  }
  return std::unique_ptr<ComplexityReport>(std::move(report));
}

Result<std::vector<Task>> ValueModule::PlanTasks(
    const ComplexityReport& report, ExpectedQuality quality,
    const ExecutionSettings& settings) const {
  (void)settings;
  const auto* value_report =
      dynamic_cast<const ValueComplexityReport*>(&report);
  if (value_report == nullptr) {
    return Status::InvalidArgument(
        "ValueModule received a foreign complexity report");
  }

  bool high = quality == ExpectedQuality::kHighQuality;
  std::vector<Task> tasks;
  for (const ValueHeterogeneity& h : value_report->heterogeneities()) {
    // Table 7: for a low-effort result, most heterogeneities are simply
    // ignored; only critical representations force an action.
    std::optional<TaskType> type;
    switch (h.type) {
      case ValueHeterogeneityType::kTooFewSourceElements:
        if (high) type = TaskType::kAddValues;
        break;
      case ValueHeterogeneityType::kDifferentRepresentationsCritical:
        type = high ? TaskType::kConvertValues : TaskType::kDropValues;
        break;
      case ValueHeterogeneityType::kDifferentRepresentations:
        if (high) type = TaskType::kConvertValues;
        break;
      case ValueHeterogeneityType::kTooFineGrainedSourceValues:
        if (high) type = TaskType::kGeneralizeValues;
        break;
      case ValueHeterogeneityType::kTooCoarseGrainedSourceValues:
        if (high) type = TaskType::kRefineValues;
        break;
    }
    if (!type.has_value()) continue;

    Task task;
    task.type = *type;
    task.category = TaskCategory::kCleaningValues;
    task.quality = quality;
    task.subject = h.source_attribute + " -> " + h.target_attribute;
    task.parameters[task_params::kValues] =
        static_cast<double>(h.type ==
                                    ValueHeterogeneityType::kTooFewSourceElements
                                ? h.affected_values
                                : h.source_values);
    // For a systematic conversion the practitioner writes one rule per
    // format, so the Table 9 function's #dist-vals is the format count;
    // only irregular values need a per-distinct-value mapping. (This
    // resolves the paper's own Table 8, where converting 260,923 distinct
    // duration values costs 15 minutes: one script.)
    double dist_vals = static_cast<double>(h.source_distinct_values);
    if (*type == TaskType::kConvertValues && h.systematic) {
      dist_vals = static_cast<double>(h.source_pattern_count);
    }
    task.parameters[task_params::kDistinctValues] = dist_vals;
    if (h.provenance != 0) task.provenance.push_back(h.provenance);
    tasks.push_back(std::move(task));
  }
  return tasks;
}

}  // namespace efes
