// Cardinality-constrained schema graphs (CSGs), Definition 1/2 of the
// paper, and their instances.
//
// A CSG is a graph whose nodes represent either the tuples of a relation
// ("table nodes") or the distinct values of an attribute ("attribute
// nodes"), and whose relationships connect them. Prescribed cardinalities
// κ on the directed relationships express unique, not-null and foreign
// key constraints plus the two relational conformity rules ("each tuple
// can have at most one value per attribute, and each attribute value must
// be contained in a tuple"). CSGs are deliberately *more* general than
// the relational model: an integrated instance may violate the prescribed
// cardinalities (e.g. two artist values for one record), which is exactly
// what the structure conflict detector measures.

#ifndef EFES_CSG_GRAPH_H_
#define EFES_CSG_GRAPH_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "efes/common/result.h"
#include "efes/csg/cardinality.h"
#include "efes/relational/value.h"

namespace efes {

using NodeId = size_t;
using RelationshipId = size_t;

enum class CsgNodeKind {
  /// Represents the existence of tuples of a relation.
  kTable,
  /// Holds the set of distinct values of an attribute.
  kAttribute,
};

struct CsgNode {
  NodeId id = 0;
  CsgNodeKind kind = CsgNodeKind::kTable;
  /// Owning relation name; for attribute nodes also `attribute` is set.
  std::string relation;
  std::string attribute;
  /// Datatype for attribute nodes; irrelevant for table nodes.
  DataType type = DataType::kText;

  /// "albums" for table nodes, "albums.name" for attribute nodes.
  std::string QualifiedName() const;
};

enum class CsgEdgeKind {
  /// Connects a table node with one of its attribute nodes (solid edge).
  kAttribute,
  /// Links equal elements of two attribute nodes — the representation of
  /// foreign keys (dashed edge in Figure 4).
  kEquality,
};

/// One *directed* relationship. Every conceptual relationship is stored as
/// two directed halves that reference each other through `inverse`, since
/// the paper prescribes independent cardinalities for both directions
/// (e.g. κ(ρ tracks→record) = 1 but κ(ρ record→tracks) = 1..*).
struct CsgRelationship {
  RelationshipId id = 0;
  NodeId from = 0;
  NodeId to = 0;
  CsgEdgeKind kind = CsgEdgeKind::kAttribute;
  Cardinality prescribed;
  RelationshipId inverse = 0;
};

class CsgGraph {
 public:
  CsgGraph() = default;

  NodeId AddTableNode(std::string relation);
  NodeId AddAttributeNode(std::string relation, std::string attribute,
                          DataType type);

  /// Adds the directed pair (from→to with `forward`, to→from with
  /// `backward`) and returns the id of the forward half.
  RelationshipId AddRelationshipPair(NodeId from, NodeId to,
                                     CsgEdgeKind kind,
                                     const Cardinality& forward,
                                     const Cardinality& backward);

  const std::vector<CsgNode>& nodes() const { return nodes_; }
  const std::vector<CsgRelationship>& relationships() const {
    return relationships_;
  }
  const CsgNode& node(NodeId id) const { return nodes_[id]; }
  const CsgRelationship& relationship(RelationshipId id) const {
    return relationships_[id];
  }

  /// Replaces the prescribed cardinality of one directed relationship.
  void SetPrescribed(RelationshipId id, const Cardinality& cardinality);

  Result<NodeId> FindTableNode(std::string_view relation) const;
  Result<NodeId> FindAttributeNode(std::string_view relation,
                                   std::string_view attribute) const;

  /// Directed relationships leaving `node`.
  const std::vector<RelationshipId>& OutgoingOf(NodeId node) const {
    return adjacency_[node];
  }

  /// Human-readable rendering of every node and directed relationship
  /// with its κ — the textual analogue of Figure 4.
  std::string ToText() const;

  /// One-line description like "albums -> albums.name [0..1]".
  std::string DescribeRelationship(RelationshipId id) const;

 private:
  std::vector<CsgNode> nodes_;
  std::vector<CsgRelationship> relationships_;
  std::vector<std::vector<RelationshipId>> adjacency_;
};

/// A CSG instance (Definition 2): elements per node, links per directed
/// relationship. Instances are stored separately from the graph and are
/// keyed purely by ids, so a graph can have many instances (the structure
/// repair planner simulates on "virtual" copies).
class CsgInstance {
 public:
  explicit CsgInstance(size_t node_count, size_t relationship_count);

  /// Registers an element of `node`. Duplicate registrations are ignored
  /// (node elements are sets).
  void AddElement(NodeId node, const Value& element);

  /// Adds the link (from_element, to_element) to the forward relationship
  /// `forward_id` and its mirror to the inverse relationship. The caller
  /// must pass the id of the forward half created by AddRelationshipPair
  /// together with the owning graph.
  void AddLink(const CsgGraph& graph, RelationshipId forward_id,
               const Value& from_element, const Value& to_element);

  size_t ElementCount(NodeId node) const {
    return elements_[node].size();
  }
  const std::vector<Value>& ElementsOf(NodeId node) const {
    return element_order_[node];
  }
  size_t LinkCount(RelationshipId rel) const;

  /// Number of links leaving each element of the relationship's `from`
  /// node; elements without links appear with degree 0 (this is what
  /// makes missing mandatory links — NOT NULL violations — observable).
  std::unordered_map<Value, size_t, ValueHash> OutDegrees(
      const CsgGraph& graph, RelationshipId rel) const;

  /// The tightest interval containing every element's out-degree; 0..0
  /// for relationships whose from node has no elements.
  Cardinality ActualCardinality(const CsgGraph& graph,
                                RelationshipId rel) const;

  /// Number of `from`-elements whose out-degree is not admitted by
  /// `prescribed` — the per-constraint violation count of Table 3.
  size_t CountViolations(const CsgGraph& graph, RelationshipId rel,
                         const Cardinality& prescribed) const;

  /// Composition over a path of directed relationships: for each element
  /// of the path's start node, the number of *distinct* reachable
  /// elements of the end node.
  std::unordered_map<Value, size_t, ValueHash> PathOutDegrees(
      const CsgGraph& graph, const std::vector<RelationshipId>& path) const;

  /// The distinct end-node elements reachable from `start` along `path`
  /// (deterministically sorted). Empty path yields {start}.
  std::vector<Value> ReachableViaPath(
      const CsgGraph& graph, const std::vector<RelationshipId>& path,
      const Value& start) const;

  Cardinality ActualPathCardinality(
      const CsgGraph& graph, const std::vector<RelationshipId>& path) const;

  size_t CountPathViolations(const CsgGraph& graph,
                             const std::vector<RelationshipId>& path,
                             const Cardinality& prescribed) const;

 private:
  // Per node: element set (for dedup) plus insertion order (for
  // deterministic iteration).
  std::vector<std::unordered_map<Value, bool, ValueHash>> elements_;
  std::vector<std::vector<Value>> element_order_;
  // Per directed relationship: adjacency from element to linked elements.
  std::vector<std::unordered_map<Value, std::vector<Value>, ValueHash>>
      links_;
};

}  // namespace efes

#endif  // EFES_CSG_GRAPH_H_
