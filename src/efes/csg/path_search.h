// Matching target relationships to source relationships (Section 4.1).
//
// "The composition operator particularly allows to treat the matching of
// target relationships to source relationships as a graph search
// problem." Given a target relationship whose endpoints have been mapped
// to source nodes via the correspondences, we enumerate simple paths
// between those source nodes, infer each path's cardinality by composing
// along it (Lemma 1), and select the *most concise* candidate: a
// relationship is more concise when its inferred κ is a proper subset of
// the other's; ties are broken by path length (Occam's razor) and then
// deterministically.

#ifndef EFES_CSG_PATH_SEARCH_H_
#define EFES_CSG_PATH_SEARCH_H_

#include <optional>
#include <string>
#include <vector>

#include "efes/csg/cardinality.h"
#include "efes/csg/graph.h"

namespace efes {

/// One candidate source relationship (a path of directed relationships)
/// for a target relationship.
struct PathMatch {
  std::vector<RelationshipId> path;
  /// Lemma-1 composition of the prescribed cardinalities along the path.
  Cardinality inferred;

  size_t length() const { return path.size(); }
};

struct PathSearchOptions {
  /// Maximum number of hops in a candidate path.
  size_t max_length = 8;
  /// Cap on enumerated candidates (defensive bound for dense graphs).
  size_t max_candidates = 256;
};

/// Enumerates simple paths (no repeated node) from `start` to `end` in
/// `graph`, shortest first, up to the configured bounds. `start == end`
/// yields no paths (a target relationship never maps to an empty path).
std::vector<PathMatch> EnumeratePaths(const CsgGraph& graph, NodeId start,
                                      NodeId end,
                                      const PathSearchOptions& options = {});

/// Strict "is more concise" order used for match selection:
/// a.inferred ⊂ b.inferred, or equal cardinalities and a shorter. Among
/// incomparable cardinalities neither is more concise.
bool IsMoreConcise(const PathMatch& a, const PathMatch& b);

/// Selects the best match: prefers candidates not beaten by any other
/// under IsMoreConcise, then smaller cardinality-interval width, then
/// shorter, then lexicographic path id order (fully deterministic).
/// Returns nullopt for an empty candidate set.
std::optional<PathMatch> SelectMostConcise(std::vector<PathMatch> candidates);

/// Convenience: enumerate + select.
std::optional<PathMatch> FindBestPath(const CsgGraph& graph, NodeId start,
                                      NodeId end,
                                      const PathSearchOptions& options = {});

/// Renders a path as "albums -> albums.artist_list ==> artist_lists.id
/// -> ...", for reports and debugging.
std::string DescribePath(const CsgGraph& graph,
                         const std::vector<RelationshipId>& path);

}  // namespace efes

#endif  // EFES_CSG_PATH_SEARCH_H_
