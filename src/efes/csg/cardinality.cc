#include "efes/csg/cardinality.h"

#include <algorithm>
#include <cassert>

namespace efes {

Cardinality Cardinality::Between(uint64_t lo, uint64_t hi) {
  assert(lo <= hi);
  return Cardinality(lo, hi, false);
}

Cardinality Cardinality::Empty() { return Cardinality(1, 0, true); }

bool Cardinality::Contains(uint64_t n) const {
  if (empty_) return false;
  return n >= min_ && (max_ == kUnbounded || n <= max_);
}

bool Cardinality::IsSubsetOf(const Cardinality& other) const {
  if (empty_) return true;
  if (other.empty_) return false;
  if (min_ < other.min_) return false;
  if (other.max_ == kUnbounded) return true;
  return max_ != kUnbounded && max_ <= other.max_;
}

bool Cardinality::IsProperSubsetOf(const Cardinality& other) const {
  return IsSubsetOf(other) && *this != other;
}

Cardinality Cardinality::Intersect(const Cardinality& other) const {
  if (empty_ || other.empty_) return Empty();
  uint64_t lo = std::max(min_, other.min_);
  uint64_t hi = std::min(max_, other.max_);
  if (lo > hi) return Empty();
  return Between(lo, hi);
}

Cardinality Cardinality::Hull(const Cardinality& other) const {
  if (empty_) return other;
  if (other.empty_) return *this;
  return Between(std::min(min_, other.min_), std::max(max_, other.max_));
}

uint64_t Cardinality::MulSaturating(uint64_t a, uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a == kUnbounded || b == kUnbounded) return kUnbounded;
  if (a > kUnbounded / b) return kUnbounded;  // overflow -> treat as *
  return a * b;
}

uint64_t Cardinality::AddSaturating(uint64_t a, uint64_t b) {
  if (a == kUnbounded || b == kUnbounded) return kUnbounded;
  uint64_t sum = a + b;
  if (sum < a) return kUnbounded;
  return sum;
}

Cardinality Cardinality::Compose(const Cardinality& first,
                                 const Cardinality& second) {
  if (first.empty_ || second.empty_) return Empty();
  // sgn(a1) * a2: if the first hop may have zero links, the composition
  // may too; otherwise at least a2 links are reachable.
  uint64_t lo = first.min_ == 0 ? 0 : second.min_;
  uint64_t hi = MulSaturating(first.max_, second.max_);
  if (lo > hi) lo = hi;  // degenerate (e.g. b1 = 0)
  return Between(lo, hi);
}

Cardinality Cardinality::UnionDisjointDomains(const Cardinality& a,
                                              const Cardinality& b) {
  return a.Hull(b);
}

Cardinality Cardinality::UnionDisjointCodomains(const Cardinality& a,
                                                const Cardinality& b) {
  if (a.empty_ || b.empty_) return Empty();
  return Between(AddSaturating(a.min_, b.min_),
                 AddSaturating(a.max_, b.max_));
}

Cardinality Cardinality::UnionOverlapping(const Cardinality& a,
                                          const Cardinality& b) {
  if (a.empty_ || b.empty_) return Empty();
  return Between(std::max(a.min_, b.min_), AddSaturating(a.max_, b.max_));
}

Cardinality Cardinality::Join(const Cardinality& a, const Cardinality& b) {
  if (a.empty_ || b.empty_) return Empty();
  uint64_t m = std::min(a.max_, b.max_);
  if (m == 0) return Empty();
  return Between(1, m);
}

Cardinality Cardinality::JoinInverse(const Cardinality& a,
                                     const Cardinality& b) {
  if (a.empty_ || b.empty_) return Empty();
  return Between(MulSaturating(a.min_, b.min_),
                 MulSaturating(a.max_, b.max_));
}

Cardinality Cardinality::Collateral(const Cardinality& a,
                                    const Cardinality& b) {
  if (a.empty_ || b.empty_) return Empty();
  return Between(0, MulSaturating(a.max_, b.max_));
}

std::string Cardinality::ToString() const {
  if (empty_) return "empty";
  std::string lo = std::to_string(min_);
  if (min_ == max_) return lo;
  std::string hi = max_ == kUnbounded ? "*" : std::to_string(max_);
  return lo + ".." + hi;
}

bool operator==(const Cardinality& a, const Cardinality& b) {
  if (a.empty_ != b.empty_) return false;
  if (a.empty_) return true;
  return a.min_ == b.min_ && a.max_ == b.max_;
}

}  // namespace efes
