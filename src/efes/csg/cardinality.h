// The cardinality algebra of cardinality-constrained schema graphs.
//
// In the paper, κ maps each relationship to a set of admissible
// cardinalities (Definition 1). All cardinalities that arise from the
// relational translation and from the inference operators (Lemmas 1-4)
// are intervals a..b with b possibly unbounded (written `*`), so we
// represent κ as an integer interval. The empty set arises from Lemma 3
// when a join is unsatisfiable and is represented explicitly.

#ifndef EFES_CSG_CARDINALITY_H_
#define EFES_CSG_CARDINALITY_H_

#include <cstdint>
#include <limits>
#include <optional>
#include <string>

namespace efes {

class Cardinality {
 public:
  /// Sentinel for `*` (no upper bound).
  static constexpr uint64_t kUnbounded =
      std::numeric_limits<uint64_t>::max();

  /// Default: 0..* (no constraint).
  constexpr Cardinality() : min_(0), max_(kUnbounded), empty_(false) {}

  /// The interval lo..hi. Requires lo <= hi.
  static Cardinality Between(uint64_t lo, uint64_t hi);
  /// Exactly n, i.e. n..n.
  static Cardinality Exactly(uint64_t n) { return Between(n, n); }
  /// n..*.
  static Cardinality AtLeast(uint64_t n) { return Between(n, kUnbounded); }
  /// 0..* — the unconstrained cardinality.
  static Cardinality Any() { return Cardinality(); }
  /// 0..1.
  static Cardinality Optional() { return Between(0, 1); }
  /// The empty cardinality set ∅ (unsatisfiable).
  static Cardinality Empty();

  bool is_empty() const { return empty_; }
  /// Lower bound; meaningless when empty.
  uint64_t min() const { return min_; }
  /// Upper bound (kUnbounded for `*`); meaningless when empty.
  uint64_t max() const { return max_; }
  bool is_unbounded() const { return !empty_ && max_ == kUnbounded; }

  /// Is `n` an admissible cardinality?
  bool Contains(uint64_t n) const;

  /// κ₁ ⊆ κ₂. The empty set is a subset of everything.
  bool IsSubsetOf(const Cardinality& other) const;

  /// κ₁ ⊂ κ₂: strictly more specific. This is the paper's conciseness
  /// order for selecting among candidate source relationships.
  bool IsProperSubsetOf(const Cardinality& other) const;

  /// Set intersection (may be empty).
  Cardinality Intersect(const Cardinality& other) const;

  /// Smallest interval containing both (the hull); used for Lemma 2's
  /// disjoint-domain case under the interval representation.
  Cardinality Hull(const Cardinality& other) const;

  // --- The inference lemmas (Section 4.1) ---------------------------------

  /// Lemma 1 — composition ∘:
  /// κ(ρ₁ ∘ ρ₂) = (sgn a₁ · a₂) .. (b₁ · b₂).
  static Cardinality Compose(const Cardinality& first,
                             const Cardinality& second);

  /// Lemma 2, case 1 — union with disjoint domains: each domain element
  /// has links from exactly one operand, so any admissible cardinality of
  /// either operand can occur. Interval hull.
  static Cardinality UnionDisjointDomains(const Cardinality& a,
                                          const Cardinality& b);

  /// Lemma 2, case 2 — equal domains, disjoint codomains:
  /// κ₁ + κ₂ = {x + y}: [a₁+a₂, b₁+b₂].
  static Cardinality UnionDisjointCodomains(const Cardinality& a,
                                            const Cardinality& b);

  /// Lemma 2, case 3 — equal domains, overlapping codomains:
  /// κ₁ +̂ κ₂ = {c : max(x,y) ≤ c ≤ x+y}: [max(a₁,a₂), b₁+b₂].
  static Cardinality UnionOverlapping(const Cardinality& a,
                                      const Cardinality& b);

  /// Lemma 3 — join ⋈ (forward direction):
  /// m = min(max₁, max₂); ∅ if m = 0, else 1..m.
  static Cardinality Join(const Cardinality& a, const Cardinality& b);

  /// Lemma 3 — inverse of the join:
  /// (min₁·min₂) .. (max₁·max₂).
  static Cardinality JoinInverse(const Cardinality& a, const Cardinality& b);

  /// Lemma 4 — collateral ∥: 0 .. (max₁ · max₂).
  static Cardinality Collateral(const Cardinality& a, const Cardinality& b);

  /// Renders "1", "0..1", "1..*", "0..*", "empty", ...
  std::string ToString() const;

  friend bool operator==(const Cardinality& a, const Cardinality& b);
  friend bool operator!=(const Cardinality& a, const Cardinality& b) {
    return !(a == b);
  }

 private:
  Cardinality(uint64_t lo, uint64_t hi, bool empty)
      : min_(lo), max_(hi), empty_(empty) {}

  /// Multiplication with * absorption; 0 · * = 0 (no links means no
  /// composed links regardless of the second factor).
  static uint64_t MulSaturating(uint64_t a, uint64_t b);
  static uint64_t AddSaturating(uint64_t a, uint64_t b);

  uint64_t min_;
  uint64_t max_;
  bool empty_;
};

}  // namespace efes

#endif  // EFES_CSG_CARDINALITY_H_
