// Conversion of relational databases into CSGs (Section 4.1).
//
// "To convert a relational schema, for each of its relations, a
// corresponding table node is created [...] for each attribute, an
// attribute node is created and connected to its respective table node
// via a relationship. [...] any relational database can be turned into a
// CSG without loss of information."
//
// Prescribed cardinalities:
//   table -> attribute : 0..1, tightened to exactly 1 under NOT NULL
//                        (each tuple has at most one value per attribute);
//   attribute -> table : 1..*, tightened to exactly 1 under UNIQUE
//                        (each value must be contained in a tuple);
//   FK child attribute ==> parent attribute (equality relationship):
//                        exactly 1 forward (every child value must have
//                        an equal parent value), 0..1 backward.

#ifndef EFES_CSG_BUILDER_H_
#define EFES_CSG_BUILDER_H_

#include <memory>

#include "efes/csg/graph.h"
#include "efes/relational/database.h"

namespace efes {

/// A schema's CSG together with the instance of its data.
struct Csg {
  CsgGraph graph;
  CsgInstance instance;

  Csg(CsgGraph g, CsgInstance i)
      : graph(std::move(g)), instance(std::move(i)) {}
};

/// Builds the CSG of the database's schema only (no instance elements).
CsgGraph BuildCsgGraph(const Database& database);

/// Builds graph and instance. Table-node elements are abstract tuple ids;
/// attribute-node elements are the distinct attribute values; links
/// connect tuples with their values and equal FK/parent values with each
/// other.
Csg BuildCsg(const Database& database);

}  // namespace efes

#endif  // EFES_CSG_BUILDER_H_
