#include "efes/csg/graph.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

namespace efes {

std::string CsgNode::QualifiedName() const {
  if (kind == CsgNodeKind::kTable) return relation;
  return relation + "." + attribute;
}

NodeId CsgGraph::AddTableNode(std::string relation) {
  CsgNode node;
  node.id = nodes_.size();
  node.kind = CsgNodeKind::kTable;
  node.relation = std::move(relation);
  nodes_.push_back(std::move(node));
  adjacency_.emplace_back();
  return nodes_.back().id;
}

NodeId CsgGraph::AddAttributeNode(std::string relation,
                                  std::string attribute, DataType type) {
  CsgNode node;
  node.id = nodes_.size();
  node.kind = CsgNodeKind::kAttribute;
  node.relation = std::move(relation);
  node.attribute = std::move(attribute);
  node.type = type;
  nodes_.push_back(std::move(node));
  adjacency_.emplace_back();
  return nodes_.back().id;
}

RelationshipId CsgGraph::AddRelationshipPair(NodeId from, NodeId to,
                                             CsgEdgeKind kind,
                                             const Cardinality& forward,
                                             const Cardinality& backward) {
  RelationshipId forward_id = relationships_.size();
  RelationshipId backward_id = forward_id + 1;
  relationships_.push_back(
      CsgRelationship{forward_id, from, to, kind, forward, backward_id});
  relationships_.push_back(
      CsgRelationship{backward_id, to, from, kind, backward, forward_id});
  adjacency_[from].push_back(forward_id);
  adjacency_[to].push_back(backward_id);
  return forward_id;
}

void CsgGraph::SetPrescribed(RelationshipId id,
                             const Cardinality& cardinality) {
  relationships_[id].prescribed = cardinality;
}

Result<NodeId> CsgGraph::FindTableNode(std::string_view relation) const {
  for (const CsgNode& node : nodes_) {
    if (node.kind == CsgNodeKind::kTable && node.relation == relation) {
      return node.id;
    }
  }
  return Status::NotFound("no table node for relation '" +
                          std::string(relation) + "'");
}

Result<NodeId> CsgGraph::FindAttributeNode(
    std::string_view relation, std::string_view attribute) const {
  for (const CsgNode& node : nodes_) {
    if (node.kind == CsgNodeKind::kAttribute && node.relation == relation &&
        node.attribute == attribute) {
      return node.id;
    }
  }
  return Status::NotFound("no attribute node for '" +
                          std::string(relation) + "." +
                          std::string(attribute) + "'");
}

std::string CsgGraph::DescribeRelationship(RelationshipId id) const {
  const CsgRelationship& rel = relationships_[id];
  std::ostringstream oss;
  oss << node(rel.from).QualifiedName()
      << (rel.kind == CsgEdgeKind::kEquality ? " ==> " : " -> ")
      << node(rel.to).QualifiedName() << " [" << rel.prescribed.ToString()
      << "]";
  return oss.str();
}

std::string CsgGraph::ToText() const {
  std::ostringstream oss;
  for (const CsgNode& node : nodes_) {
    oss << (node.kind == CsgNodeKind::kTable ? "[table] " : "(attr)  ")
        << node.QualifiedName();
    if (node.kind == CsgNodeKind::kAttribute) {
      oss << " : " << DataTypeToString(node.type);
    }
    oss << "\n";
    for (RelationshipId rel_id : adjacency_[node.id]) {
      oss << "    " << DescribeRelationship(rel_id) << "\n";
    }
  }
  return oss.str();
}

CsgInstance::CsgInstance(size_t node_count, size_t relationship_count)
    : elements_(node_count),
      element_order_(node_count),
      links_(relationship_count) {}

void CsgInstance::AddElement(NodeId node, const Value& element) {
  auto [it, inserted] = elements_[node].emplace(element, true);
  if (inserted) element_order_[node].push_back(element);
}

void CsgInstance::AddLink(const CsgGraph& graph, RelationshipId forward_id,
                          const Value& from_element,
                          const Value& to_element) {
  const CsgRelationship& rel = graph.relationship(forward_id);
  links_[forward_id][from_element].push_back(to_element);
  links_[rel.inverse][to_element].push_back(from_element);
}

size_t CsgInstance::LinkCount(RelationshipId rel) const {
  size_t count = 0;
  for (const auto& [element, targets] : links_[rel]) {
    count += targets.size();
  }
  return count;
}

std::unordered_map<Value, size_t, ValueHash> CsgInstance::OutDegrees(
    const CsgGraph& graph, RelationshipId rel) const {
  std::unordered_map<Value, size_t, ValueHash> degrees;
  NodeId from = graph.relationship(rel).from;
  const auto& adjacency = links_[rel];
  for (const Value& element : element_order_[from]) {
    auto it = adjacency.find(element);
    degrees[element] = it == adjacency.end() ? 0 : it->second.size();
  }
  return degrees;
}

Cardinality CsgInstance::ActualCardinality(const CsgGraph& graph,
                                           RelationshipId rel) const {
  auto degrees = OutDegrees(graph, rel);
  if (degrees.empty()) return Cardinality::Exactly(0);
  uint64_t lo = Cardinality::kUnbounded;
  uint64_t hi = 0;
  for (const auto& [element, degree] : degrees) {
    lo = std::min<uint64_t>(lo, degree);
    hi = std::max<uint64_t>(hi, degree);
  }
  return Cardinality::Between(lo, hi);
}

size_t CsgInstance::CountViolations(const CsgGraph& graph,
                                    RelationshipId rel,
                                    const Cardinality& prescribed) const {
  size_t violations = 0;
  for (const auto& [element, degree] : OutDegrees(graph, rel)) {
    if (!prescribed.Contains(degree)) ++violations;
  }
  return violations;
}

std::unordered_map<Value, size_t, ValueHash> CsgInstance::PathOutDegrees(
    const CsgGraph& graph, const std::vector<RelationshipId>& path) const {
  std::unordered_map<Value, size_t, ValueHash> degrees;
  if (path.empty()) return degrees;
  NodeId start = graph.relationship(path.front()).from;
  for (const Value& element : element_order_[start]) {
    // Walk the path breadth-first, deduplicating at every hop: the
    // composition of relations relates an element to the *set* of
    // reachable end elements.
    std::unordered_set<Value, ValueHash> frontier = {element};
    for (RelationshipId rel : path) {
      std::unordered_set<Value, ValueHash> next;
      for (const Value& v : frontier) {
        auto it = links_[rel].find(v);
        if (it == links_[rel].end()) continue;
        next.insert(it->second.begin(), it->second.end());
      }
      frontier = std::move(next);
      if (frontier.empty()) break;
    }
    degrees[element] = frontier.size();
  }
  return degrees;
}

std::vector<Value> CsgInstance::ReachableViaPath(
    const CsgGraph& graph, const std::vector<RelationshipId>& path,
    const Value& start) const {
  (void)graph;
  std::unordered_set<Value, ValueHash> frontier = {start};
  for (RelationshipId rel : path) {
    std::unordered_set<Value, ValueHash> next;
    for (const Value& v : frontier) {
      auto it = links_[rel].find(v);
      if (it == links_[rel].end()) continue;
      next.insert(it->second.begin(), it->second.end());
    }
    frontier = std::move(next);
    if (frontier.empty()) break;
  }
  std::vector<Value> result(frontier.begin(), frontier.end());
  std::sort(result.begin(), result.end());
  return result;
}

Cardinality CsgInstance::ActualPathCardinality(
    const CsgGraph& graph, const std::vector<RelationshipId>& path) const {
  auto degrees = PathOutDegrees(graph, path);
  if (degrees.empty()) return Cardinality::Exactly(0);
  uint64_t lo = Cardinality::kUnbounded;
  uint64_t hi = 0;
  for (const auto& [element, degree] : degrees) {
    lo = std::min<uint64_t>(lo, degree);
    hi = std::max<uint64_t>(hi, degree);
  }
  return Cardinality::Between(lo, hi);
}

size_t CsgInstance::CountPathViolations(
    const CsgGraph& graph, const std::vector<RelationshipId>& path,
    const Cardinality& prescribed) const {
  size_t violations = 0;
  for (const auto& [element, degree] : PathOutDegrees(graph, path)) {
    if (!prescribed.Contains(degree)) ++violations;
  }
  return violations;
}

}  // namespace efes
