#include "efes/csg/path_search.h"

#include <algorithm>
#include <sstream>

namespace efes {

namespace {

/// Width of the cardinality interval; unbounded counts as infinite.
uint64_t IntervalWidth(const Cardinality& c) {
  if (c.is_empty()) return 0;
  if (c.is_unbounded()) return Cardinality::kUnbounded;
  return c.max() - c.min();
}

void EnumerateRecursive(const CsgGraph& graph, NodeId current, NodeId end,
                        const PathSearchOptions& options,
                        std::vector<RelationshipId>& path,
                        std::vector<bool>& visited,
                        std::vector<PathMatch>& out) {
  if (out.size() >= options.max_candidates) return;
  if (current == end && !path.empty()) {
    Cardinality inferred = Cardinality::Exactly(1);
    for (RelationshipId rel : path) {
      inferred = Cardinality::Compose(inferred,
                                      graph.relationship(rel).prescribed);
    }
    out.push_back(PathMatch{path, inferred});
    return;
  }
  if (path.size() >= options.max_length) return;
  for (RelationshipId rel_id : graph.OutgoingOf(current)) {
    const CsgRelationship& rel = graph.relationship(rel_id);
    if (visited[rel.to]) continue;
    // Do not immediately traverse a relationship back over its inverse;
    // that is subsumed by the visited check except for start==end loops,
    // which we exclude anyway.
    visited[rel.to] = true;
    path.push_back(rel_id);
    EnumerateRecursive(graph, rel.to, end, options, path, visited, out);
    path.pop_back();
    visited[rel.to] = false;
  }
}

}  // namespace

std::vector<PathMatch> EnumeratePaths(const CsgGraph& graph, NodeId start,
                                      NodeId end,
                                      const PathSearchOptions& options) {
  std::vector<PathMatch> out;
  if (start == end) return out;
  std::vector<RelationshipId> path;
  std::vector<bool> visited(graph.nodes().size(), false);
  visited[start] = true;
  EnumerateRecursive(graph, start, end, options, path, visited, out);
  // Shortest-first, then lexicographic: deterministic downstream behavior.
  std::sort(out.begin(), out.end(), [](const PathMatch& a,
                                       const PathMatch& b) {
    if (a.length() != b.length()) return a.length() < b.length();
    return a.path < b.path;
  });
  return out;
}

bool IsMoreConcise(const PathMatch& a, const PathMatch& b) {
  if (a.inferred.IsProperSubsetOf(b.inferred)) return true;
  if (b.inferred.IsProperSubsetOf(a.inferred)) return false;
  if (a.inferred == b.inferred) return a.length() < b.length();
  return false;
}

std::optional<PathMatch> SelectMostConcise(
    std::vector<PathMatch> candidates) {
  if (candidates.empty()) return std::nullopt;

  // Keep candidates that no other candidate strictly beats.
  std::vector<PathMatch> undominated;
  for (const PathMatch& candidate : candidates) {
    bool beaten = std::any_of(
        candidates.begin(), candidates.end(), [&](const PathMatch& other) {
          return &other != &candidate && IsMoreConcise(other, candidate);
        });
    if (!beaten) undominated.push_back(candidate);
  }
  if (undominated.empty()) {
    // A dominance cycle is impossible (IsMoreConcise is a strict partial
    // order), but stay safe.
    undominated = std::move(candidates);
  }

  // Tie-break incomparable survivors: tighter interval, then shorter,
  // then lexicographic.
  std::sort(undominated.begin(), undominated.end(),
            [](const PathMatch& a, const PathMatch& b) {
              uint64_t wa = IntervalWidth(a.inferred);
              uint64_t wb = IntervalWidth(b.inferred);
              if (wa != wb) return wa < wb;
              if (a.length() != b.length()) return a.length() < b.length();
              return a.path < b.path;
            });
  return undominated.front();
}

std::optional<PathMatch> FindBestPath(const CsgGraph& graph, NodeId start,
                                      NodeId end,
                                      const PathSearchOptions& options) {
  return SelectMostConcise(EnumeratePaths(graph, start, end, options));
}

std::string DescribePath(const CsgGraph& graph,
                         const std::vector<RelationshipId>& path) {
  if (path.empty()) return "(empty path)";
  std::ostringstream oss;
  oss << graph.node(graph.relationship(path.front()).from).QualifiedName();
  for (RelationshipId rel_id : path) {
    const CsgRelationship& rel = graph.relationship(rel_id);
    oss << (rel.kind == CsgEdgeKind::kEquality ? " ==> " : " -> ")
        << graph.node(rel.to).QualifiedName();
  }
  return oss.str();
}

}  // namespace efes
