#include "efes/csg/render_dot.h"

#include <sstream>

namespace efes {

std::string RenderCsgDot(const CsgGraph& graph, const std::string& title) {
  std::ostringstream dot;
  dot << "graph csg {\n"
      << "  label=\"" << title << "\";\n"
      << "  fontname=\"Helvetica\";\n"
      << "  node [fontname=\"Helvetica\"];\n"
      << "  edge [fontname=\"Helvetica\", fontsize=10];\n";
  for (const CsgNode& node : graph.nodes()) {
    dot << "  n" << node.id << " [label=\"" << node.QualifiedName()
        << "\", shape="
        << (node.kind == CsgNodeKind::kTable ? "box" : "ellipse") << "];\n";
  }
  // Each conceptual relationship is two directed halves; render the
  // forward half (lower id of the pair) once with both cardinalities.
  for (const CsgRelationship& rel : graph.relationships()) {
    if (rel.id > rel.inverse) continue;
    const CsgRelationship& backward = graph.relationship(rel.inverse);
    dot << "  n" << rel.from << " -- n" << rel.to << " [label=\""
        << rel.prescribed.ToString() << " / "
        << backward.prescribed.ToString() << "\""
        << (rel.kind == CsgEdgeKind::kEquality ? ", style=dashed" : "")
        << "];\n";
  }
  dot << "}\n";
  return dot.str();
}

}  // namespace efes
