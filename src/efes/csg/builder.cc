#include "efes/csg/builder.h"

#include <unordered_map>
#include <unordered_set>

namespace efes {

namespace {

/// Ids of the forward (table->attribute) relationship per attribute, plus
/// the equality relationships, so the instance builder can attach links.
struct GraphLayout {
  // (relation, attribute index) -> forward relationship id.
  std::unordered_map<std::string, std::vector<RelationshipId>>
      attribute_relationships;
  // One entry per single-column FK: child attr node, parent attr node,
  // forward equality relationship id.
  struct EqualityEdge {
    NodeId child_attribute;
    NodeId parent_attribute;
    RelationshipId relationship;
  };
  std::vector<EqualityEdge> equalities;
};

CsgGraph BuildGraphWithLayout(const Database& database,
                              GraphLayout* layout) {
  const Schema& schema = database.schema();
  CsgGraph graph;

  std::unordered_map<std::string, NodeId> table_nodes;
  // relation -> attribute name -> node id
  std::unordered_map<std::string, std::unordered_map<std::string, NodeId>>
      attribute_nodes;

  for (const RelationDef& rel : schema.relations()) {
    NodeId table = graph.AddTableNode(rel.name());
    table_nodes[rel.name()] = table;
    std::vector<RelationshipId>& rel_ids =
        layout->attribute_relationships[rel.name()];
    for (const AttributeDef& attr : rel.attributes()) {
      NodeId attribute =
          graph.AddAttributeNode(rel.name(), attr.name, attr.type);
      attribute_nodes[rel.name()][attr.name] = attribute;

      Cardinality forward = schema.IsNotNullable(rel.name(), attr.name)
                                ? Cardinality::Exactly(1)
                                : Cardinality::Optional();
      Cardinality backward = schema.IsUniqueAttribute(rel.name(), attr.name)
                                 ? Cardinality::Exactly(1)
                                 : Cardinality::AtLeast(1);
      rel_ids.push_back(graph.AddRelationshipPair(
          table, attribute, CsgEdgeKind::kAttribute, forward, backward));
    }
  }

  // Foreign keys become equality relationships between attribute nodes.
  // Composite FKs are represented column-wise (the collateral operator of
  // the algebra recovers the n-ary semantics).
  for (const Constraint& c : schema.constraints()) {
    if (c.kind != ConstraintKind::kForeignKey) continue;
    for (size_t i = 0; i < c.attributes.size(); ++i) {
      NodeId child = attribute_nodes[c.relation][c.attributes[i]];
      NodeId parent =
          attribute_nodes[c.referenced_relation][c.referenced_attributes[i]];
      RelationshipId rel_id = graph.AddRelationshipPair(
          child, parent, CsgEdgeKind::kEquality, Cardinality::Exactly(1),
          Cardinality::Optional());
      layout->equalities.push_back(
          GraphLayout::EqualityEdge{child, parent, rel_id});
    }
  }

  return graph;
}

}  // namespace

CsgGraph BuildCsgGraph(const Database& database) {
  GraphLayout layout;
  return BuildGraphWithLayout(database, &layout);
}

Csg BuildCsg(const Database& database) {
  GraphLayout layout;
  CsgGraph graph = BuildGraphWithLayout(database, &layout);
  CsgInstance instance(graph.nodes().size(), graph.relationships().size());

  for (const Table& table : database.tables()) {
    auto table_node_result = graph.FindTableNode(table.name());
    if (!table_node_result.ok()) continue;
    NodeId table_node = *table_node_result;
    const std::vector<RelationshipId>& attr_rels =
        layout.attribute_relationships[table.name()];

    for (size_t r = 0; r < table.row_count(); ++r) {
      Value tuple_id = Value::Integer(static_cast<int64_t>(r));
      instance.AddElement(table_node, tuple_id);
      for (size_t c = 0; c < table.column_count(); ++c) {
        const Value& cell = table.at(r, c);
        if (cell.is_null()) continue;
        const CsgRelationship& rel = graph.relationship(attr_rels[c]);
        instance.AddElement(rel.to, cell);
        instance.AddLink(graph, attr_rels[c], tuple_id, cell);
      }
    }
  }

  // Equality links: each child attribute value links to the equal parent
  // value when it exists (dangling FK values simply lack the link, which
  // surfaces as a violation of the prescribed κ = 1).
  for (const GraphLayout::EqualityEdge& eq : layout.equalities) {
    std::unordered_set<Value, ValueHash> parent_values(
        instance.ElementsOf(eq.parent_attribute).begin(),
        instance.ElementsOf(eq.parent_attribute).end());
    for (const Value& child_value :
         instance.ElementsOf(eq.child_attribute)) {
      if (parent_values.count(child_value) > 0) {
        instance.AddLink(graph, eq.relationship, child_value, child_value);
      }
    }
  }

  return Csg(std::move(graph), std::move(instance));
}

}  // namespace efes
