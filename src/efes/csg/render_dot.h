// Graphviz rendering of cardinality-constrained schema graphs — the
// graphical form of the paper's Figure 4. Table nodes render as boxes,
// attribute nodes as ellipses; attribute relationships are solid edges
// and equality (FK) relationships dashed, each labelled with the
// prescribed cardinalities of both directions ("κ→ / κ←").

#ifndef EFES_CSG_RENDER_DOT_H_
#define EFES_CSG_RENDER_DOT_H_

#include <string>

#include "efes/csg/graph.h"

namespace efes {

/// Renders the graph as a DOT document titled `title`.
std::string RenderCsgDot(const CsgGraph& graph, const std::string& title);

}  // namespace efes

#endif  // EFES_CSG_RENDER_DOT_H_
