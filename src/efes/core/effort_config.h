// Text-based configuration of the estimation context — the counterpart of
// the original prototype's XML configuration ("It offers multiple
// configuration options via an XML file and a command-line interface",
// Section 6.1).
//
// Format: INI-style sections with `key = value` lines; `#` starts a
// comment.
//
//   [settings]
//   practitioner_skill   = 0.8
//   data_familiarity     = 1.0
//   criticality          = 1.5
//   mapping_tool_available = true
//   mapping_tool_minutes = 2
//
//   [efforts]
//   global_scale   = 1.1
//   Convert values = if dist_vals < 120 then 30 else 0.25 * dist_vals
//   Write mapping  = 3*fks + 3*pks + attributes + 3*tables
//   Reject tuples  = 5
//
//   [dedup]
//   pair_review_minutes        = 0.75
//   cluster_resolution_minutes = 3
//   max_block_size             = 48
//
// Keys in [efforts] are the Table 9 task names (TaskTypeToString); their
// values are formulas over task parameters (see formula.h). Unlisted
// tasks keep their Table 9 defaults.
//
// The [dedup] section configures the deduplication detector and its
// pair-review cost function (see dedup_options.h for every knob). Setting
// a cost knob immediately re-derives the "Resolve duplicate clusters" and
// "Drop duplicate records" effort functions, so a later [efforts] line
// still wins. Invalid values (negative costs, zero block size,
// out-of-range fractions) are rejected with kInvalidArgument — never
// silently clamped.

#ifndef EFES_CORE_EFFORT_CONFIG_H_
#define EFES_CORE_EFFORT_CONFIG_H_

#include <string>
#include <string_view>

#include "efes/common/result.h"
#include "efes/core/effort_model.h"
#include "efes/dedup/dedup_options.h"

namespace efes {

struct EstimationConfig {
  ExecutionSettings settings;
  EffortModel model = EffortModel::PaperDefault();
  DedupOptions dedup;
};

/// Parses a configuration document. Unknown sections, unknown setting
/// keys, unknown task names, and malformed formulas are errors (typos in
/// an effort configuration must not be silently ignored).
Result<EstimationConfig> ParseEffortConfig(std::string_view text);

/// Reads and parses a configuration file.
Result<EstimationConfig> LoadEffortConfig(const std::string& path);

/// Resolves a Table 9 display name ("Convert values") to its TaskType.
Result<TaskType> TaskTypeFromName(std::string_view name);

}  // namespace efes

#endif  // EFES_CORE_EFFORT_CONFIG_H_
