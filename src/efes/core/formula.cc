#include "efes/core/formula.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <vector>

namespace efes {

/// Expression tree node. Kept simple: a tagged union over the node kinds
/// with up to three children (condition, left/then, right/else).
struct Formula::Node {
  enum class Kind {
    kNumber,
    kParameter,
    kAdd,
    kSubtract,
    kMultiply,
    kDivide,
    kNegate,
    kConditional,  // children: condition, then, else
    kLess,
    kLessEqual,
    kGreater,
    kGreaterEqual,
    kEqual,
  };

  Kind kind = Kind::kNumber;
  double number = 0.0;
  std::string parameter;
  std::shared_ptr<const Node> a;
  std::shared_ptr<const Node> b;
  std::shared_ptr<const Node> c;
};

namespace {

using Node = Formula::Node;
using NodePtr = std::shared_ptr<const Node>;

NodePtr MakeNumber(double value) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kNumber;
  node->number = value;
  return node;
}

NodePtr MakeParameter(std::string name) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kParameter;
  node->parameter = std::move(name);
  return node;
}

NodePtr MakeBinary(Node::Kind kind, NodePtr a, NodePtr b) {
  auto node = std::make_shared<Node>();
  node->kind = kind;
  node->a = std::move(a);
  node->b = std::move(b);
  return node;
}

NodePtr MakeUnary(Node::Kind kind, NodePtr a) {
  auto node = std::make_shared<Node>();
  node->kind = kind;
  node->a = std::move(a);
  return node;
}

NodePtr MakeConditional(NodePtr condition, NodePtr then_branch,
                        NodePtr else_branch) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kConditional;
  node->a = std::move(condition);
  node->b = std::move(then_branch);
  node->c = std::move(else_branch);
  return node;
}

/// Recursive-descent parser over the formula grammar.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<NodePtr> ParseFormula() {
    SkipSpace();
    NodePtr root;
    if (MatchKeyword("if")) {
      EFES_ASSIGN_OR_RETURN(root, ParseConditional());
    } else {
      EFES_ASSIGN_OR_RETURN(root, ParseExpression());
    }
    SkipSpace();
    if (position_ != text_.size()) {
      return Error("unexpected trailing input");
    }
    return root;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::ParseError(message + " at position " +
                              std::to_string(position_) + " in formula '" +
                              std::string(text_) + "'");
  }

  void SkipSpace() {
    while (position_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[position_]))) {
      ++position_;
    }
  }

  bool MatchChar(char c) {
    SkipSpace();
    if (position_ < text_.size() && text_[position_] == c) {
      ++position_;
      return true;
    }
    return false;
  }

  char Peek() {
    SkipSpace();
    return position_ < text_.size() ? text_[position_] : '\0';
  }

  /// Matches a whole-word keyword (not a prefix of an identifier).
  bool MatchKeyword(std::string_view keyword) {
    SkipSpace();
    if (text_.substr(position_, keyword.size()) != keyword) return false;
    size_t end = position_ + keyword.size();
    if (end < text_.size() &&
        (std::isalnum(static_cast<unsigned char>(text_[end])) ||
         text_[end] == '_')) {
      return false;
    }
    position_ = end;
    return true;
  }

  /// Matches a literal operator token (no word-boundary requirement).
  bool MatchToken(std::string_view token) {
    SkipSpace();
    if (text_.substr(position_, token.size()) != token) return false;
    position_ += token.size();
    return true;
  }

  Result<NodePtr> ParseConditional() {
    EFES_ASSIGN_OR_RETURN(NodePtr condition, ParseComparison());
    if (!MatchKeyword("then")) return Error("expected 'then'");
    EFES_ASSIGN_OR_RETURN(NodePtr then_branch, ParseExpression());
    if (!MatchKeyword("else")) return Error("expected 'else'");
    NodePtr else_branch;
    if (MatchKeyword("if")) {  // chained conditionals
      EFES_ASSIGN_OR_RETURN(else_branch, ParseConditional());
    } else {
      EFES_ASSIGN_OR_RETURN(else_branch, ParseExpression());
    }
    return MakeConditional(std::move(condition), std::move(then_branch),
                           std::move(else_branch));
  }

  Result<NodePtr> ParseComparison() {
    EFES_ASSIGN_OR_RETURN(NodePtr left, ParseExpression());
    SkipSpace();
    Node::Kind kind;
    if (MatchToken("<=")) {
      kind = Node::Kind::kLessEqual;
    } else if (MatchToken(">=")) {
      kind = Node::Kind::kGreaterEqual;
    } else if (MatchToken("==")) {
      kind = Node::Kind::kEqual;
    } else if (MatchChar('<')) {
      kind = Node::Kind::kLess;
    } else if (MatchChar('>')) {
      kind = Node::Kind::kGreater;
    } else {
      return Error("expected comparison operator");
    }
    EFES_ASSIGN_OR_RETURN(NodePtr right, ParseExpression());
    return MakeBinary(kind, std::move(left), std::move(right));
  }

  Result<NodePtr> ParseExpression() {
    EFES_ASSIGN_OR_RETURN(NodePtr left, ParseTerm());
    while (true) {
      if (MatchChar('+')) {
        EFES_ASSIGN_OR_RETURN(NodePtr right, ParseTerm());
        left = MakeBinary(Node::Kind::kAdd, std::move(left),
                          std::move(right));
      } else if (MatchChar('-')) {
        EFES_ASSIGN_OR_RETURN(NodePtr right, ParseTerm());
        left = MakeBinary(Node::Kind::kSubtract, std::move(left),
                          std::move(right));
      } else {
        return left;
      }
    }
  }

  Result<NodePtr> ParseTerm() {
    EFES_ASSIGN_OR_RETURN(NodePtr left, ParseFactor());
    while (true) {
      if (MatchChar('*')) {
        EFES_ASSIGN_OR_RETURN(NodePtr right, ParseFactor());
        left = MakeBinary(Node::Kind::kMultiply, std::move(left),
                          std::move(right));
      } else if (MatchChar('/')) {
        EFES_ASSIGN_OR_RETURN(NodePtr right, ParseFactor());
        left = MakeBinary(Node::Kind::kDivide, std::move(left),
                          std::move(right));
      } else {
        return left;
      }
    }
  }

  Result<NodePtr> ParseFactor() {
    SkipSpace();
    if (MatchChar('-')) {
      EFES_ASSIGN_OR_RETURN(NodePtr operand, ParseFactor());
      return MakeUnary(Node::Kind::kNegate, std::move(operand));
    }
    if (MatchChar('(')) {
      EFES_ASSIGN_OR_RETURN(NodePtr inner, ParseExpression());
      if (!MatchChar(')')) return Error("expected ')'");
      return inner;
    }
    char c = Peek();
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
      return ParseNumber();
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
        c == '#') {
      return ParseIdentifier();
    }
    return Error("expected number, identifier, or '('");
  }

  Result<NodePtr> ParseNumber() {
    SkipSpace();
    size_t start = position_;
    while (position_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[position_])) ||
            text_[position_] == '.')) {
      ++position_;
    }
    std::string token(text_.substr(start, position_ - start));
    try {
      size_t consumed = 0;
      double value = std::stod(token, &consumed);
      if (consumed != token.size()) return Error("malformed number");
      return MakeNumber(value);
    } catch (...) {
      return Error("malformed number");
    }
  }

  Result<NodePtr> ParseIdentifier() {
    SkipSpace();
    size_t start = position_;
    // Allow a leading '#', matching the paper's "#dist-vals" notation;
    // '-' inside an identifier is accepted and normalized to '_'.
    if (text_[position_] == '#') ++position_;
    while (position_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[position_])) ||
            text_[position_] == '_' ||
            (text_[position_] == '-' && position_ + 1 < text_.size() &&
             std::isalnum(
                 static_cast<unsigned char>(text_[position_ + 1]))))) {
      ++position_;
    }
    std::string name(text_.substr(start, position_ - start));
    if (!name.empty() && name[0] == '#') name = name.substr(1);
    for (char& ch : name) {
      if (ch == '-') ch = '_';
    }
    if (name.empty()) return Error("empty identifier");
    return MakeParameter(std::move(name));
  }

  std::string_view text_;
  size_t position_ = 0;
};

double EvaluateNode(const Node& node, const Task& task) {
  switch (node.kind) {
    case Node::Kind::kNumber:
      return node.number;
    case Node::Kind::kParameter:
      return task.Param(node.parameter);
    case Node::Kind::kAdd:
      return EvaluateNode(*node.a, task) + EvaluateNode(*node.b, task);
    case Node::Kind::kSubtract:
      return EvaluateNode(*node.a, task) - EvaluateNode(*node.b, task);
    case Node::Kind::kMultiply:
      return EvaluateNode(*node.a, task) * EvaluateNode(*node.b, task);
    case Node::Kind::kDivide: {
      double denominator = EvaluateNode(*node.b, task);
      if (denominator == 0.0) return 0.0;
      return EvaluateNode(*node.a, task) / denominator;
    }
    case Node::Kind::kNegate:
      return -EvaluateNode(*node.a, task);
    case Node::Kind::kConditional:
      return EvaluateNode(*node.a, task) != 0.0
                 ? EvaluateNode(*node.b, task)
                 : EvaluateNode(*node.c, task);
    case Node::Kind::kLess:
      return EvaluateNode(*node.a, task) < EvaluateNode(*node.b, task) ? 1.0
                                                                       : 0.0;
    case Node::Kind::kLessEqual:
      return EvaluateNode(*node.a, task) <= EvaluateNode(*node.b, task)
                 ? 1.0
                 : 0.0;
    case Node::Kind::kGreater:
      return EvaluateNode(*node.a, task) > EvaluateNode(*node.b, task)
                 ? 1.0
                 : 0.0;
    case Node::Kind::kGreaterEqual:
      return EvaluateNode(*node.a, task) >= EvaluateNode(*node.b, task)
                 ? 1.0
                 : 0.0;
    case Node::Kind::kEqual:
      return EvaluateNode(*node.a, task) == EvaluateNode(*node.b, task)
                 ? 1.0
                 : 0.0;
  }
  return 0.0;
}

void CollectParameters(const Node& node, std::vector<std::string>* names) {
  if (node.kind == Node::Kind::kParameter) names->push_back(node.parameter);
  if (node.a != nullptr) CollectParameters(*node.a, names);
  if (node.b != nullptr) CollectParameters(*node.b, names);
  if (node.c != nullptr) CollectParameters(*node.c, names);
}

}  // namespace

Result<Formula> Formula::Parse(std::string_view text) {
  Parser parser(text);
  EFES_ASSIGN_OR_RETURN(std::shared_ptr<const Node> root,
                        parser.ParseFormula());
  return Formula(std::move(root), std::string(text));
}

double Formula::Evaluate(const Task& task) const {
  return EvaluateNode(*root_, task);
}

std::vector<std::string> Formula::ReferencedParameters() const {
  std::vector<std::string> names;
  CollectParameters(*root_, &names);
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

}  // namespace efes
