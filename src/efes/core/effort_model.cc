#include "efes/core/effort_model.h"

namespace efes {

namespace {

double Repetitions(const Task& task) {
  return task.Param(task_params::kRepetitions);
}
double Values(const Task& task) { return task.Param(task_params::kValues); }
double DistinctValues(const Task& task) {
  return task.Param(task_params::kDistinctValues);
}

/// Which task parameters each Table 9 default function reads — the
/// provenance layer links these parameter values into the effort node.
std::vector<std::string> DefaultFunctionParameters(TaskType type) {
  switch (type) {
    case TaskType::kAggregateValues:
      return {std::string(task_params::kRepetitions)};
    case TaskType::kConvertValues:
    case TaskType::kGeneralizeValues:
      return {std::string(task_params::kDistinctValues)};
    case TaskType::kRefineValues:
    case TaskType::kAddValues:
    case TaskType::kAddMissingValues:
      return {std::string(task_params::kValues)};
    case TaskType::kWriteMapping:
      return {std::string(task_params::kForeignKeys),
              std::string(task_params::kPrimaryKeys),
              std::string(task_params::kAttributes),
              std::string(task_params::kTables)};
    case TaskType::kResolveDuplicateClusters:
      return {std::string(task_params::kClusters),
              std::string(task_params::kPairs)};
    default:
      return {};
  }
}

}  // namespace

EffortModel EffortModel::PaperDefault() {
  EffortModel model;
  auto constant = [](double minutes) {
    return [minutes](const Task&, const ExecutionSettings&) {
      return minutes;
    };
  };

  // --- Value transformation tasks (Table 9, top block) ---------------------
  model.SetFunction(TaskType::kAggregateValues,
                    [](const Task& task, const ExecutionSettings&) {
                      return 3.0 * Repetitions(task);
                    });
  model.SetFunction(TaskType::kConvertValues,
                    [](const Task& task, const ExecutionSettings&) {
                      double dist = DistinctValues(task);
                      return dist < 120.0 ? 30.0 : 0.25 * dist;
                    });
  model.SetFunction(TaskType::kGeneralizeValues,
                    [](const Task& task, const ExecutionSettings&) {
                      return 0.5 * DistinctValues(task);
                    });
  model.SetFunction(TaskType::kRefineValues,
                    [](const Task& task, const ExecutionSettings&) {
                      return 0.5 * Values(task);
                    });
  model.SetFunction(TaskType::kDropValues, constant(10.0));
  model.SetFunction(TaskType::kAddValues,
                    [](const Task& task, const ExecutionSettings&) {
                      return 2.0 * Values(task);
                    });

  // --- Structural repair tasks (Table 9, middle block) --------------------
  model.SetFunction(TaskType::kCreateEnclosingTuples, constant(10.0));
  model.SetFunction(TaskType::kDropDetachedValues, constant(0.0));
  model.SetFunction(TaskType::kRejectTuples, constant(5.0));
  model.SetFunction(TaskType::kKeepAnyValue, constant(5.0));
  model.SetFunction(TaskType::kAddTuples, constant(5.0));
  model.SetFunction(TaskType::kAggregateTuples, constant(5.0));
  model.SetFunction(TaskType::kDeleteDanglingValues, constant(5.0));
  model.SetFunction(TaskType::kAddReferencedValues, constant(5.0));
  model.SetFunction(TaskType::kDeleteDanglingTuples, constant(5.0));
  model.SetFunction(TaskType::kUnlinkAllButOneTuple, constant(5.0));
  // "Add missing values" prices like "Add values": the practitioner has to
  // investigate and provide each value (2 minutes per value, Section 6.1).
  model.SetFunction(TaskType::kAddMissingValues,
                    [](const Task& task, const ExecutionSettings&) {
                      return 2.0 * Values(task);
                    });
  // One SQL aggregation script plus validation, independent of the number
  // of affected tuples (this reproduces Table 5's 15 minutes for 503
  // repetitions of Merge values).
  model.SetFunction(TaskType::kMergeValues, constant(15.0));
  // Setting violating values to NULL is a single UPDATE statement.
  model.SetFunction(TaskType::kSetValuesToNull, constant(5.0));

  // --- Deduplication (dedup module) ----------------------------------------
  // Resolving a cluster group is merge work per confirmed cluster plus a
  // human look at every candidate pair (the configurable pair-review cost;
  // see effort_config.h's [dedup] section).
  model.SetFunction(TaskType::kResolveDuplicateClusters,
                    [](const Task& task, const ExecutionSettings&) {
                      return 2.0 * task.Param(task_params::kClusters) +
                             0.5 * task.Param(task_params::kPairs);
                    });
  // Low effort keeps one arbitrary record per cluster: one DELETE script
  // per affected relation, independent of the cluster count.
  model.SetFunction(TaskType::kDropDuplicateRecords, constant(8.0));

  // --- Mapping (Table 9, bottom row; Example 3.8) --------------------------
  model.SetFunction(
      TaskType::kWriteMapping,
      [](const Task& task, const ExecutionSettings& settings) {
        if (settings.mapping_tool_available) {
          return settings.mapping_tool_minutes;
        }
        return 3.0 * task.Param(task_params::kForeignKeys) +
               3.0 * task.Param(task_params::kPrimaryKeys) +
               task.Param(task_params::kAttributes) +
               3.0 * task.Param(task_params::kTables);
      });

  // The defaults are fully described: attach the Table 9 formula text and
  // parameter lists so Explain() can name them.
  for (auto& [type, entry] : model.functions_) {
    entry.description = DescribeDefaultFunction(type);
    entry.parameters = DefaultFunctionParameters(type);
    entry.described = true;
  }

  return model;
}

void EffortModel::SetFunction(TaskType type, EffortFunction function) {
  functions_[type] = FunctionEntry{std::move(function), "", {}, false};
}

void EffortModel::SetFunction(TaskType type, EffortFunction function,
                              std::string description,
                              std::vector<std::string> parameters) {
  functions_[type] = FunctionEntry{std::move(function), std::move(description),
                                   std::move(parameters), true};
}

bool EffortModel::HasFunction(TaskType type) const {
  return functions_.count(type) > 0;
}

double EffortModel::EstimateMinutes(const Task& task,
                                    const ExecutionSettings& settings) const {
  return Explain(task, settings).minutes;
}

EffortExplanation EffortModel::Explain(
    const Task& task, const ExecutionSettings& settings) const {
  EffortExplanation explanation;
  explanation.multiplier = settings.OverallMultiplier();
  explanation.scale = global_scale_;
  auto it = functions_.find(task.type);
  if (it == functions_.end()) {
    explanation.function = "(no effort function)";
    return explanation;
  }
  explanation.known = true;
  explanation.base = it->second.function(task, settings);
  explanation.minutes =
      explanation.base * explanation.multiplier * explanation.scale;
  if (it->second.described) {
    explanation.function = it->second.description;
    explanation.parameters = it->second.parameters;
  } else {
    explanation.function = "(custom function)";
    for (const auto& [name, value] : task.parameters) {
      explanation.parameters.push_back(name);
    }
  }
  return explanation;
}

std::string EffortModel::DescribeDefaultFunction(TaskType type) {
  switch (type) {
    case TaskType::kAggregateValues:
      return "3 * #repetitions";
    case TaskType::kConvertValues:
      return "(if #dist-vals < 120) 30, (else) 0.25 * #dist-vals";
    case TaskType::kGeneralizeValues:
      return "0.5 * #dist-vals";
    case TaskType::kRefineValues:
      return "0.5 * #values";
    case TaskType::kDropValues:
      return "10";
    case TaskType::kAddValues:
    case TaskType::kAddMissingValues:
      return "2 * #values";
    case TaskType::kCreateEnclosingTuples:
      return "10";
    case TaskType::kDropDetachedValues:
      return "0";
    case TaskType::kMergeValues:
      return "15";
    case TaskType::kWriteMapping:
      return "3 * #FKs + 3 * #PKs + #atts + 3 * #tables";
    case TaskType::kResolveDuplicateClusters:
      return "2 * #clusters + 0.5 * #pairs";
    case TaskType::kDropDuplicateRecords:
      return "8";
    case TaskType::kRejectTuples:
    case TaskType::kKeepAnyValue:
    case TaskType::kAddTuples:
    case TaskType::kAggregateTuples:
    case TaskType::kDeleteDanglingValues:
    case TaskType::kAddReferencedValues:
    case TaskType::kDeleteDanglingTuples:
    case TaskType::kUnlinkAllButOneTuple:
    case TaskType::kSetValuesToNull:
      return "5";
  }
  return "0";
}

}  // namespace efes
