#include "efes/core/engine.h"

#include <sstream>

#include "efes/common/parallel.h"
#include "efes/common/string_util.h"
#include "efes/common/text_table.h"
#include "efes/telemetry/log.h"
#include "efes/telemetry/metrics.h"
#include "efes/telemetry/trace.h"

namespace efes {

double EffortEstimate::TotalMinutes() const {
  double total = 0.0;
  for (const TaskEstimate& t : tasks) total += t.minutes;
  return total;
}

double EffortEstimate::CategoryMinutes(TaskCategory category) const {
  double total = 0.0;
  for (const TaskEstimate& t : tasks) {
    if (t.task.category == category) total += t.minutes;
  }
  return total;
}

std::string EffortEstimate::ToText() const {
  TextTable table;
  table.SetHeader({"Task", "Category", "Effort [min]"});
  for (const TaskEstimate& t : tasks) {
    table.AddRow({t.task.ToString(),
                  std::string(TaskCategoryToString(t.task.category)),
                  FormatDouble(t.minutes, 6)});
  }
  table.AddSeparator();
  for (TaskCategory category :
       {TaskCategory::kMapping, TaskCategory::kCleaningStructure,
        TaskCategory::kCleaningValues, TaskCategory::kOther}) {
    double minutes = CategoryMinutes(category);
    if (minutes > 0.0) {
      table.AddRow({"Subtotal", std::string(TaskCategoryToString(category)),
                    FormatDouble(minutes, 6)});
    }
  }
  table.AddRow({"Total", "", FormatDouble(TotalMinutes(), 6)});
  return table.ToString();
}

std::string EstimationResult::ToText() const {
  std::ostringstream oss;
  for (const ModuleRun& run : module_runs) {
    oss << "=== " << run.module << " ===\n";
    oss << run.report->ToText();
    oss << "\n";
  }
  oss << "=== Effort estimate ===\n" << estimate.ToText();
  return oss.str();
}

void EfesEngine::AddModule(std::unique_ptr<EstimationModule> module) {
  modules_.push_back(std::move(module));
}

namespace {

/// Runs phase 1 of one module under a `<module>.assess` span, feeding the
/// shared assessment-latency histogram.
Result<std::unique_ptr<ComplexityReport>> AssessModule(
    const EstimationModule& module, const IntegrationScenario& scenario) {
  MetricsRegistry& metrics = MetricsRegistry::Global();
  static Histogram& assess_ms = metrics.GetHistogram("engine.assess.ms");
  metrics.GetCounter("engine.assess.calls").Increment();
  TraceSpan span(module.name() + ".assess", nullptr, &assess_ms);
  return module.AssessComplexity(scenario);
}

}  // namespace

Result<EstimationResult> EfesEngine::Run(
    const IntegrationScenario& scenario, ExpectedQuality quality,
    const ExecutionSettings& settings) const {
  MetricsRegistry& metrics = MetricsRegistry::Global();
  static Histogram& run_ms = metrics.GetHistogram("engine.run.ms");
  TraceSpan run_span("engine.run", nullptr, &run_ms);
  metrics.GetCounter("engine.run.count").Increment();
  metrics.GetGauge("engine.run.threads").Set(ConfiguredThreadCount());
  EFES_LOG(LogLevel::kInfo,
           "engine: estimating scenario '" + scenario.name + "' with " +
               std::to_string(modules_.size()) + " modules, " +
               std::to_string(ConfiguredThreadCount()) + " threads");
  EFES_RETURN_IF_ERROR(scenario.Validate());
  EstimationResult result;
  for (const auto& module : modules_) {
    EFES_ASSIGN_OR_RETURN(std::unique_ptr<ComplexityReport> report,
                          AssessModule(*module, scenario));
    std::vector<Task> tasks;
    {
      static Histogram& plan_ms = metrics.GetHistogram("engine.plan.ms");
      TraceSpan plan_span(module->name() + ".plan", nullptr, &plan_ms);
      EFES_ASSIGN_OR_RETURN(tasks,
                            module->PlanTasks(*report, quality, settings));
    }
    metrics.GetCounter("engine.plan.tasks").Increment(tasks.size());
    metrics.GetCounter(module->name() + ".plan.tasks")
        .Increment(tasks.size());
    ModuleRun run;
    run.module = module->name();
    run.report = std::move(report);
    for (Task& task : tasks) {
      double minutes = effort_model_.EstimateMinutes(task, settings);
      run.tasks.push_back(TaskEstimate{std::move(task), minutes});
    }
    result.estimate.tasks.insert(result.estimate.tasks.end(),
                                 run.tasks.begin(), run.tasks.end());
    result.module_runs.push_back(std::move(run));
  }
  EFES_LOG(LogLevel::kInfo,
           "engine: planned " +
               std::to_string(result.estimate.tasks.size()) + " tasks, " +
               FormatDouble(result.estimate.TotalMinutes(), 4) +
               " min total");
  return result;
}

Result<std::vector<std::unique_ptr<ComplexityReport>>>
EfesEngine::AssessComplexity(const IntegrationScenario& scenario) const {
  static Histogram& run_ms =
      MetricsRegistry::Global().GetHistogram("engine.run.ms");
  TraceSpan run_span("engine.assess", nullptr, &run_ms);
  MetricsRegistry::Global().GetCounter("engine.assess.runs").Increment();
  MetricsRegistry::Global()
      .GetGauge("engine.run.threads")
      .Set(ConfiguredThreadCount());
  EFES_RETURN_IF_ERROR(scenario.Validate());
  std::vector<std::unique_ptr<ComplexityReport>> reports;
  for (const auto& module : modules_) {
    EFES_ASSIGN_OR_RETURN(std::unique_ptr<ComplexityReport> report,
                          AssessModule(*module, scenario));
    reports.push_back(std::move(report));
  }
  return reports;
}

}  // namespace efes
