#include "efes/core/engine.h"

#include <sstream>

#include "efes/common/string_util.h"
#include "efes/common/text_table.h"

namespace efes {

double EffortEstimate::TotalMinutes() const {
  double total = 0.0;
  for (const TaskEstimate& t : tasks) total += t.minutes;
  return total;
}

double EffortEstimate::CategoryMinutes(TaskCategory category) const {
  double total = 0.0;
  for (const TaskEstimate& t : tasks) {
    if (t.task.category == category) total += t.minutes;
  }
  return total;
}

std::string EffortEstimate::ToText() const {
  TextTable table;
  table.SetHeader({"Task", "Category", "Effort [min]"});
  for (const TaskEstimate& t : tasks) {
    table.AddRow({t.task.ToString(),
                  std::string(TaskCategoryToString(t.task.category)),
                  FormatDouble(t.minutes, 6)});
  }
  table.AddSeparator();
  for (TaskCategory category :
       {TaskCategory::kMapping, TaskCategory::kCleaningStructure,
        TaskCategory::kCleaningValues, TaskCategory::kOther}) {
    double minutes = CategoryMinutes(category);
    if (minutes > 0.0) {
      table.AddRow({"Subtotal", std::string(TaskCategoryToString(category)),
                    FormatDouble(minutes, 6)});
    }
  }
  table.AddRow({"Total", "", FormatDouble(TotalMinutes(), 6)});
  return table.ToString();
}

std::string EstimationResult::ToText() const {
  std::ostringstream oss;
  for (const ModuleRun& run : module_runs) {
    oss << "=== " << run.module << " ===\n";
    oss << run.report->ToText();
    oss << "\n";
  }
  oss << "=== Effort estimate ===\n" << estimate.ToText();
  return oss.str();
}

void EfesEngine::AddModule(std::unique_ptr<EstimationModule> module) {
  modules_.push_back(std::move(module));
}

Result<EstimationResult> EfesEngine::Run(
    const IntegrationScenario& scenario, ExpectedQuality quality,
    const ExecutionSettings& settings) const {
  EFES_RETURN_IF_ERROR(scenario.Validate());
  EstimationResult result;
  for (const auto& module : modules_) {
    EFES_ASSIGN_OR_RETURN(std::unique_ptr<ComplexityReport> report,
                          module->AssessComplexity(scenario));
    EFES_ASSIGN_OR_RETURN(std::vector<Task> tasks,
                          module->PlanTasks(*report, quality, settings));
    ModuleRun run;
    run.module = module->name();
    run.report = std::move(report);
    for (Task& task : tasks) {
      double minutes = effort_model_.EstimateMinutes(task, settings);
      run.tasks.push_back(TaskEstimate{std::move(task), minutes});
    }
    result.estimate.tasks.insert(result.estimate.tasks.end(),
                                 run.tasks.begin(), run.tasks.end());
    result.module_runs.push_back(std::move(run));
  }
  return result;
}

Result<std::vector<std::unique_ptr<ComplexityReport>>>
EfesEngine::AssessComplexity(const IntegrationScenario& scenario) const {
  EFES_RETURN_IF_ERROR(scenario.Validate());
  std::vector<std::unique_ptr<ComplexityReport>> reports;
  for (const auto& module : modules_) {
    EFES_ASSIGN_OR_RETURN(std::unique_ptr<ComplexityReport> report,
                          module->AssessComplexity(scenario));
    reports.push_back(std::move(report));
  }
  return reports;
}

}  // namespace efes
