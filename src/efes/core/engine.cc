#include "efes/core/engine.h"

#include <cmath>
#include <sstream>

#include "efes/cache/profile_cache.h"
#include "efes/common/fault.h"
#include "efes/common/parallel.h"
#include "efes/common/string_util.h"
#include "efes/common/text_table.h"
#include "efes/telemetry/log.h"
#include "efes/telemetry/metrics.h"
#include "efes/telemetry/trace.h"

namespace efes {

double EffortEstimate::TotalMinutes() const {
  double total = 0.0;
  for (const TaskEstimate& t : tasks) total += t.minutes;
  return total;
}

double EffortEstimate::CategoryMinutes(TaskCategory category) const {
  double total = 0.0;
  for (const TaskEstimate& t : tasks) {
    if (t.task.category == category) total += t.minutes;
  }
  return total;
}

std::string EffortEstimate::ToText() const {
  TextTable table;
  table.SetHeader({"Task", "Category", "Effort [min]"});
  for (const TaskEstimate& t : tasks) {
    table.AddRow({t.task.ToString(),
                  std::string(TaskCategoryToString(t.task.category)),
                  FormatDouble(t.minutes, 6)});
  }
  table.AddSeparator();
  for (TaskCategory category :
       {TaskCategory::kMapping, TaskCategory::kCleaningStructure,
        TaskCategory::kCleaningValues, TaskCategory::kOther}) {
    double minutes = CategoryMinutes(category);
    if (minutes > 0.0) {
      table.AddRow({"Subtotal", std::string(TaskCategoryToString(category)),
                    FormatDouble(minutes, 6)});
    }
  }
  table.AddRow({"Total", "", FormatDouble(TotalMinutes(), 6)});
  return table.ToString();
}

std::string EstimationResult::ToText() const {
  std::ostringstream oss;
  for (const ModuleRun& run : module_runs) {
    oss << "=== " << run.module << " ===\n";
    if (run.report != nullptr) oss << run.report->ToText();
    if (!run.status.ok()) {
      oss << "module failed (" << run.status.ToString()
          << "); its problems and tasks are missing from this estimate\n";
    }
    oss << "\n";
  }
  if (degraded) {
    oss << "=== DEGRADED RUN: one or more modules failed; the estimate "
           "below is partial ===\n";
  }
  oss << "=== Effort estimate ===\n" << estimate.ToText();
  return oss.str();
}

void EfesEngine::AddModule(std::unique_ptr<EstimationModule> module) {
  modules_.push_back(std::move(module));
}

namespace {

/// Runs phase 1 of one module under a `<module>.assess` span, feeding the
/// shared assessment-latency histogram. Fault point: `engine.assess`.
Result<std::unique_ptr<ComplexityReport>> AssessModule(
    const EstimationModule& module, const IntegrationScenario& scenario) {
  MetricsRegistry& metrics = MetricsRegistry::Global();
  static Histogram& assess_ms = metrics.GetHistogram("engine.assess.ms");
  metrics.GetCounter("engine.assess.calls").Increment();
  TraceSpan span(module.name() + ".assess", nullptr, &assess_ms);
  EFES_RETURN_IF_ERROR(CheckFaultPoint("engine.assess"));
  return module.AssessComplexity(scenario);
}

/// Runs both phases of one module into `run` (report + planned tasks,
/// unpriced). Exceptions escaping the module — modules are third-party
/// extension code — are converted to kInternal so the engine's
/// containment sees every failure as a Status. Fault point:
/// `engine.plan`.
Status RunModule(const EstimationModule& module,
                 const IntegrationScenario& scenario,
                 ExpectedQuality quality, const ExecutionSettings& settings,
                 ModuleRun* run, std::vector<Task>* tasks) try {
  MetricsRegistry& metrics = MetricsRegistry::Global();
  EFES_ASSIGN_OR_RETURN(run->report, AssessModule(module, scenario));
  static Histogram& plan_ms = metrics.GetHistogram("engine.plan.ms");
  TraceSpan plan_span(module.name() + ".plan", nullptr, &plan_ms);
  EFES_RETURN_IF_ERROR(CheckFaultPoint("engine.plan"));
  EFES_ASSIGN_OR_RETURN(*tasks,
                        module.PlanTasks(*run->report, quality, settings));
  return Status::OK();
} catch (const std::exception& e) {
  return Status::Internal("exception in module '" + module.name() +
                          "': " + e.what());
} catch (...) {
  return Status::Internal("unknown exception in module '" + module.name() +
                          "'");
}

}  // namespace

Status EfesEngine::set_effort_model(EffortModel model) {
  const double scale = model.global_scale();
  if (!std::isfinite(scale) || scale <= 0.0) {
    return Status::InvalidArgument(
        "effort model global scale must be a finite positive number, got " +
        FormatDouble(scale, 6));
  }
  effort_model_ = std::move(model);
  return Status::OK();
}

Result<EstimationResult> EfesEngine::Run(const IntegrationScenario& scenario,
                                         const RunOptions& options) const {
  const ExpectedQuality& quality = options.quality;
  const ExecutionSettings& settings = options.settings;
  // Install the caller's cache for the run; leave an ambient one alone.
  ScopedProfileCache scoped_cache(
      options.cache != nullptr ? options.cache : ProfileCache::Active());
  MetricsRegistry& metrics = MetricsRegistry::Global();
  static Histogram& run_ms = metrics.GetHistogram("engine.run.ms");
  TraceSpan run_span("engine.run", nullptr, &run_ms);
  metrics.GetCounter("engine.run.count").Increment();
  metrics.GetGauge("engine.run.threads").Set(ConfiguredThreadCount());
  EFES_LOG(LogLevel::kInfo,
           "engine: estimating scenario '" + scenario.name + "' with " +
               std::to_string(modules_.size()) + " modules, " +
               std::to_string(ConfiguredThreadCount()) + " threads");
  EFES_RETURN_IF_ERROR(scenario.Validate());
  EstimationResult result;
  for (const auto& module : modules_) {
    ModuleRun run;
    run.module = module->name();
    std::vector<Task> tasks;
    run.status =
        RunModule(*module, scenario, quality, settings, &run, &tasks);
    if (!run.status.ok()) {
      // Containment: one failing detector degrades the estimate, it does
      // not abort the run. The failure stays visible in the module's
      // status, the degraded flag, and the failure counter.
      result.degraded = true;
      metrics.GetCounter("engine.module.failures").Increment();
      EFES_LOG(LogLevel::kWarn,
               "engine: module '" + module->name() +
                   "' failed, continuing degraded: " +
                   run.status.ToString());
      result.module_runs.push_back(std::move(run));
      continue;
    }
    metrics.GetCounter("engine.plan.tasks").Increment(tasks.size());
    metrics.GetCounter(module->name() + ".plan.tasks")
        .Increment(tasks.size());
    for (Task& task : tasks) {
      double minutes = effort_model_.EstimateMinutes(task, settings);
      run.tasks.push_back(TaskEstimate{std::move(task), minutes});
    }
    result.estimate.tasks.insert(result.estimate.tasks.end(),
                                 run.tasks.begin(), run.tasks.end());
    result.module_runs.push_back(std::move(run));
  }
  EFES_LOG(LogLevel::kInfo,
           "engine: planned " +
               std::to_string(result.estimate.tasks.size()) + " tasks, " +
               FormatDouble(result.estimate.TotalMinutes(), 4) +
               " min total" + (result.degraded ? " (degraded)" : ""));
  return result;
}

Result<std::vector<std::unique_ptr<ComplexityReport>>>
EfesEngine::AssessComplexity(const IntegrationScenario& scenario,
                             const RunOptions& options) const {
  ScopedProfileCache scoped_cache(
      options.cache != nullptr ? options.cache : ProfileCache::Active());
  static Histogram& run_ms =
      MetricsRegistry::Global().GetHistogram("engine.run.ms");
  TraceSpan run_span("engine.assess", nullptr, &run_ms);
  MetricsRegistry::Global().GetCounter("engine.assess.runs").Increment();
  MetricsRegistry::Global()
      .GetGauge("engine.run.threads")
      .Set(ConfiguredThreadCount());
  EFES_RETURN_IF_ERROR(scenario.Validate());
  std::vector<std::unique_ptr<ComplexityReport>> reports;
  for (const auto& module : modules_) {
    EFES_ASSIGN_OR_RETURN(std::unique_ptr<ComplexityReport> report,
                          AssessModule(*module, scenario));
    reports.push_back(std::move(report));
  }
  return reports;
}

}  // namespace efes
