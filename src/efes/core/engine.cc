#include "efes/core/engine.h"

#include <cmath>
#include <sstream>

#include "efes/cache/profile_cache.h"
#include "efes/common/deadline.h"
#include "efes/common/fault.h"
#include "efes/common/parallel.h"
#include "efes/common/string_util.h"
#include "efes/common/text_table.h"
#include "efes/profiling/profiler.h"
#include "efes/provenance/provenance.h"
#include "efes/telemetry/log.h"
#include "efes/common/metrics.h"
#include "efes/telemetry/trace.h"

namespace efes {

double EffortEstimate::TotalMinutes() const {
  double total = 0.0;
  for (const TaskEstimate& t : tasks) total += t.minutes;
  return total;
}

double EffortEstimate::CategoryMinutes(TaskCategory category) const {
  double total = 0.0;
  for (const TaskEstimate& t : tasks) {
    if (t.task.category == category) total += t.minutes;
  }
  return total;
}

std::string EffortEstimate::ToText() const {
  TextTable table;
  table.SetHeader({"Task", "Category", "Effort [min]"});
  for (const TaskEstimate& t : tasks) {
    table.AddRow({t.task.ToString(),
                  std::string(TaskCategoryToString(t.task.category)),
                  FormatDouble(t.minutes, 6)});
  }
  table.AddSeparator();
  for (TaskCategory category :
       {TaskCategory::kMapping, TaskCategory::kCleaningStructure,
        TaskCategory::kCleaningValues, TaskCategory::kDeduplication,
        TaskCategory::kOther}) {
    double minutes = CategoryMinutes(category);
    if (minutes > 0.0) {
      table.AddRow({"Subtotal", std::string(TaskCategoryToString(category)),
                    FormatDouble(minutes, 6)});
    }
  }
  table.AddRow({"Total", "", FormatDouble(TotalMinutes(), 6)});
  return table.ToString();
}

std::string EstimationResult::ToText() const {
  std::ostringstream oss;
  for (const ModuleRun& run : module_runs) {
    oss << "=== " << run.module << " ===\n";
    if (run.report != nullptr) oss << run.report->ToText();
    if (!run.status.ok()) {
      oss << "module failed (" << run.status.ToString()
          << "); its problems and tasks are missing from this estimate\n";
    }
    oss << "\n";
  }
  if (degraded) {
    oss << "=== DEGRADED RUN: one or more modules failed; the estimate "
           "below is partial ===\n";
  }
  oss << "=== Effort estimate ===\n" << estimate.ToText();
  return oss.str();
}

void EfesEngine::AddModule(std::unique_ptr<EstimationModule> module) {
  modules_.push_back(std::move(module));
}

namespace {

/// Runs phase 1 of one module under a `<module>.assess` span, feeding the
/// shared assessment-latency histogram. Fault point: `engine.assess`.
Result<std::unique_ptr<ComplexityReport>> AssessModule(
    const EstimationModule& module, const IntegrationScenario& scenario) {
  MetricsRegistry& metrics = MetricsRegistry::Global();
  static Histogram& assess_ms = metrics.GetHistogram("engine.assess.ms");
  metrics.GetCounter("engine.assess.calls").Increment();
  TraceSpan span(module.name() + ".assess", nullptr, &assess_ms);
  EFES_RETURN_IF_ERROR(CheckFaultPoint("engine.assess"));
  Result<std::unique_ptr<ComplexityReport>> report =
      module.AssessComplexity(scenario);
  if (report.ok() && *report != nullptr) {
    // Cross-link the trace: the span that produced this assessment
    // carries the report's provenance node id in the Chrome export.
    span.set_provenance((*report)->provenance_node());
  }
  return report;
}

/// Runs both phases of one module into `run` (report + planned tasks,
/// unpriced). Exceptions escaping the module — modules are third-party
/// extension code — are converted to kInternal so the engine's
/// containment sees every failure as a Status. Fault point:
/// `engine.plan`.
Status RunModule(const EstimationModule& module,
                 const IntegrationScenario& scenario,
                 ExpectedQuality quality, const ExecutionSettings& settings,
                 ModuleRun* run, std::vector<Task>* tasks) try {
  MetricsRegistry& metrics = MetricsRegistry::Global();
  EFES_ASSIGN_OR_RETURN(run->report, AssessModule(module, scenario));
  static Histogram& plan_ms = metrics.GetHistogram("engine.plan.ms");
  TraceSpan plan_span(module.name() + ".plan", nullptr, &plan_ms);
  EFES_RETURN_IF_ERROR(CheckFaultPoint("engine.plan"));
  EFES_ASSIGN_OR_RETURN(*tasks,
                        module.PlanTasks(*run->report, quality, settings));
  return Status::OK();
} catch (const std::exception& e) {
  return Status::Internal("exception in module '" + module.name() +
                          "': " + e.what());
} catch (...) {
  return Status::Internal("unknown exception in module '" + module.name() +
                          "'");
}

}  // namespace

Status EfesEngine::set_effort_model(EffortModel model) {
  const double scale = model.global_scale();
  if (!std::isfinite(scale) || scale <= 0.0) {
    return Status::InvalidArgument(
        "effort model global scale must be a finite positive number, got " +
        FormatDouble(scale, 6));
  }
  effort_model_ = std::move(model);
  return Status::OK();
}

Result<EstimationResult> EfesEngine::Run(const IntegrationScenario& scenario,
                                         const RunOptions& options) const {
  const ExpectedQuality& quality = options.quality;
  const ExecutionSettings& settings = options.settings;
  // Install the caller's cache for the run; leave an ambient one alone.
  ScopedProfileCache scoped_cache(
      options.cache != nullptr ? options.cache : ProfileCache::Active());
  // Every ProfileColumn call under this run streams with the caller's
  // chunking / budget / approximation policy.
  ScopedProfileOptions scoped_profile(options.profile);
  MetricsRegistry& metrics = MetricsRegistry::Global();
  static Histogram& run_ms = metrics.GetHistogram("engine.run.ms");
  TraceSpan run_span("engine.run", nullptr, &run_ms);
  metrics.GetCounter("engine.run.count").Increment();
  metrics.GetGauge("engine.run.threads").Set(ConfiguredThreadCount());
  EFES_LOG(LogLevel::kInfo,
           "engine: estimating scenario '" + scenario.name + "' with " +
               std::to_string(modules_.size()) + " modules, " +
               std::to_string(ConfiguredThreadCount()) + " threads");
  EFES_RETURN_IF_ERROR(scenario.Validate());
  // When someone is listening, record the run-wide pricing factors once;
  // every task-effort node links back to them.
  ProvenanceRecorder* prov = ProvenanceRecorder::Active();
  uint64_t multiplier_node = 0;
  uint64_t scale_node = 0;
  uint64_t profile_mode_node = 0;
  if (prov != nullptr) {
    multiplier_node = prov->RecordValue(
        ProvenanceKind::kParameter, "parameter settings.overall_multiplier",
        "", settings.OverallMultiplier());
    scale_node = prov->RecordValue(ProvenanceKind::kParameter,
                                   "parameter effort_model.global_scale", "",
                                   effort_model_.global_scale());
    // Record how phase-1 statistics were computed: exact, sketch, or
    // auto-degrading. Anyone auditing an estimate produced under an
    // approximation budget can see that from the provenance alone.
    profile_mode_node = prov->RecordValue(
        ProvenanceKind::kParameter,
        "parameter profile.approximation_mode (" +
            std::string(ApproximationModeToString(options.profile.mode)) +
            ")",
        "", static_cast<double>(static_cast<int>(options.profile.mode)));
  }
  std::vector<uint64_t> module_effort_nodes;
  size_t task_counter = 0;
  EstimationResult result;
  for (const auto& module : modules_) {
    // Cancellation checkpoint at the module boundary: a tripped deadline
    // aborts the whole run here, before the module starts, so the caller
    // never sees a half-planned estimate.
    EFES_RETURN_IF_ERROR(CheckCancellation());
    ModuleRun run;
    run.module = module->name();
    std::vector<Task> tasks;
    run.status =
        RunModule(*module, scenario, quality, settings, &run, &tasks);
    if (!run.status.ok()) {
      // Cancellation is *not* contained: degrading a cancelled run would
      // hand back a torn partial estimate, the one thing the deadline
      // machinery promises never happens. Abort the run instead.
      if (IsCancellation(run.status.code())) return run.status;
      // Containment: one failing detector degrades the estimate, it does
      // not abort the run. The failure stays visible in the module's
      // status, the degraded flag, and the failure counter.
      result.degraded = true;
      metrics.GetCounter("engine.module.failures").Increment();
      EFES_LOG(LogLevel::kWarn,
               "engine: module '" + module->name() +
                   "' failed, continuing degraded: " +
                   run.status.ToString());
      result.module_runs.push_back(std::move(run));
      continue;
    }
    metrics.GetCounter("engine.plan.tasks").Increment(tasks.size());
    metrics.GetCounter(module->name() + ".plan.tasks")
        .Increment(tasks.size());
    std::vector<uint64_t> module_effort_inputs;
    for (Task& task : tasks) {
      EffortExplanation explained = effort_model_.Explain(task, settings);
      if (prov != nullptr) {
        const std::string ref = "t" + std::to_string(task_counter);
        uint64_t task_node = prov->Record(
            ProvenanceKind::kTask,
            "task " + ref + ": " + std::string(TaskTypeToString(task.type)),
            task.subject, task.provenance);
        prov->SetRef(task_node, ref);
        // The effort node derives from the task, the parameter values the
        // function read, and the run-wide scaling factors.
        std::vector<uint64_t> effort_inputs = {task_node};
        for (const std::string& name : explained.parameters) {
          auto param = task.parameters.find(name);
          if (param == task.parameters.end()) continue;
          effort_inputs.push_back(prov->RecordValue(
              ProvenanceKind::kParameter, "parameter " + name, task.subject,
              param->second));
        }
        effort_inputs.push_back(multiplier_node);
        effort_inputs.push_back(scale_node);
        effort_inputs.push_back(profile_mode_node);
        module_effort_inputs.push_back(prov->RecordValue(
            ProvenanceKind::kTaskEffort,
            "task effort " + ref + ": " + explained.function, task.subject,
            explained.minutes, std::move(effort_inputs)));
      }
      ++task_counter;
      run.tasks.push_back(TaskEstimate{std::move(task), explained.minutes});
    }
    if (prov != nullptr) {
      if (run.report != nullptr && run.report->provenance_node() != 0) {
        // Keep assessments with zero priced tasks reachable from the
        // total: the module node also derives from the assess summary.
        module_effort_inputs.push_back(run.report->provenance_node());
      }
      double module_minutes = 0.0;
      for (const TaskEstimate& t : run.tasks) module_minutes += t.minutes;
      module_effort_nodes.push_back(prov->RecordValue(
          ProvenanceKind::kModuleEffort, "module effort " + run.module, "",
          module_minutes, std::move(module_effort_inputs)));
    }
    result.estimate.tasks.insert(result.estimate.tasks.end(),
                                 run.tasks.begin(), run.tasks.end());
    result.module_runs.push_back(std::move(run));
  }
  if (prov != nullptr) {
    run_span.set_provenance(prov->RecordValue(
        ProvenanceKind::kTotalEffort, "total effort", scenario.name,
        result.estimate.TotalMinutes(), std::move(module_effort_nodes)));
  }
  EFES_LOG(LogLevel::kInfo,
           "engine: planned " +
               std::to_string(result.estimate.tasks.size()) + " tasks, " +
               FormatDouble(result.estimate.TotalMinutes(), 4) +
               " min total" + (result.degraded ? " (degraded)" : ""));
  return result;
}

Result<std::vector<std::unique_ptr<ComplexityReport>>>
EfesEngine::AssessComplexity(const IntegrationScenario& scenario,
                             const RunOptions& options) const {
  ScopedProfileCache scoped_cache(
      options.cache != nullptr ? options.cache : ProfileCache::Active());
  ScopedProfileOptions scoped_profile(options.profile);
  static Histogram& run_ms =
      MetricsRegistry::Global().GetHistogram("engine.run.ms");
  TraceSpan run_span("engine.assess", nullptr, &run_ms);
  MetricsRegistry::Global().GetCounter("engine.assess.runs").Increment();
  MetricsRegistry::Global()
      .GetGauge("engine.run.threads")
      .Set(ConfiguredThreadCount());
  EFES_RETURN_IF_ERROR(scenario.Validate());
  std::vector<std::unique_ptr<ComplexityReport>> reports;
  for (const auto& module : modules_) {
    EFES_RETURN_IF_ERROR(CheckCancellation());
    EFES_ASSIGN_OR_RETURN(std::unique_ptr<ComplexityReport> report,
                          AssessModule(*module, scenario));
    reports.push_back(std::move(report));
  }
  return reports;
}

}  // namespace efes
