// The estimation-module interface (Section 3.2, Figure 3).
//
// "EFES handles different kinds of integration challenges by accepting a
// dedicated estimation module to cope with each of them independently."
// A module contributes a data complexity detector (AssessComplexity) and
// a task planner (PlanTasks). The engine wires them together with the
// effort calculation functions.

#ifndef EFES_CORE_MODULE_H_
#define EFES_CORE_MODULE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "efes/common/result.h"
#include "efes/core/effort_model.h"
#include "efes/core/integration_scenario.h"
#include "efes/core/task.h"

namespace efes {

/// Base class of all data complexity reports. "There is no formal
/// definition for such a report; rather, it can be tailored to the
/// specific, needed complexity indicators" — each module subclasses this
/// with its own indicators and supplies a textual rendering.
class ComplexityReport {
 public:
  virtual ~ComplexityReport() = default;

  /// Name of the producing module.
  virtual std::string module_name() const = 0;

  /// Rendered report (the paper's Tables 2, 3, 6).
  virtual std::string ToText() const = 0;

  /// A single scalar summarizing how many distinct problems the report
  /// contains (0 = nothing to do). Used by source-selection ranking.
  virtual size_t ProblemCount() const = 0;

  /// Provenance-node id of this report's assessment summary (0 when no
  /// recorder was active). Set by the producing module; the engine links
  /// it into the module-effort node and the assess trace span.
  uint64_t provenance_node() const { return provenance_node_; }
  void set_provenance_node(uint64_t id) { provenance_node_ = id; }

 private:
  uint64_t provenance_node_ = 0;
};

class EstimationModule {
 public:
  virtual ~EstimationModule() = default;

  virtual std::string name() const = 0;

  /// Phase 1 — complexity assessment: analyze schemas and instances and
  /// report objective integration problems. Independent of external
  /// parameters by design.
  virtual Result<std::unique_ptr<ComplexityReport>> AssessComplexity(
      const IntegrationScenario& scenario) const = 0;

  /// Phase 2 — task planning: turn the module's own report into concrete
  /// tasks for the requested result quality. The report must have been
  /// produced by this module's AssessComplexity.
  virtual Result<std::vector<Task>> PlanTasks(
      const ComplexityReport& report, ExpectedQuality quality,
      const ExecutionSettings& settings) const = 0;
};

}  // namespace efes

#endif  // EFES_CORE_MODULE_H_
