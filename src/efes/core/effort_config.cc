#include "efes/core/effort_config.h"

#include "efes/common/file_io.h"
#include "efes/common/string_util.h"
#include "efes/core/formula.h"

namespace efes {

namespace {

const TaskType kAllTaskTypes[] = {
    TaskType::kWriteMapping,        TaskType::kRejectTuples,
    TaskType::kAddMissingValues,    TaskType::kSetValuesToNull,
    TaskType::kAggregateTuples,     TaskType::kKeepAnyValue,
    TaskType::kMergeValues,         TaskType::kDropDetachedValues,
    TaskType::kCreateEnclosingTuples, TaskType::kDeleteDanglingValues,
    TaskType::kAddReferencedValues, TaskType::kAddTuples,
    TaskType::kDeleteDanglingTuples, TaskType::kUnlinkAllButOneTuple,
    TaskType::kAddValues,           TaskType::kDropValues,
    TaskType::kConvertValues,       TaskType::kGeneralizeValues,
    TaskType::kRefineValues,        TaskType::kAggregateValues,
    TaskType::kResolveDuplicateClusters, TaskType::kDropDuplicateRecords,
};

Result<bool> ParseBool(std::string_view value) {
  std::string lower = ToLower(Trim(value));
  if (lower == "true" || lower == "yes" || lower == "1") return true;
  if (lower == "false" || lower == "no" || lower == "0") return false;
  return Status::ParseError("expected a boolean, got '" +
                            std::string(value) + "'");
}

Result<double> ParseNumber(std::string_view value) {
  std::optional<double> parsed = ParseDouble(value);
  if (!parsed.has_value()) {
    return Status::ParseError("expected a number, got '" +
                              std::string(value) + "'");
  }
  return *parsed;
}

Status ApplySetting(ExecutionSettings* settings, std::string_view key,
                    std::string_view value) {
  if (key == "practitioner_skill") {
    EFES_ASSIGN_OR_RETURN(settings->practitioner_skill, ParseNumber(value));
  } else if (key == "data_familiarity") {
    EFES_ASSIGN_OR_RETURN(settings->data_familiarity, ParseNumber(value));
  } else if (key == "criticality") {
    EFES_ASSIGN_OR_RETURN(settings->criticality, ParseNumber(value));
  } else if (key == "mapping_tool_available") {
    EFES_ASSIGN_OR_RETURN(settings->mapping_tool_available,
                          ParseBool(value));
  } else if (key == "mapping_tool_minutes") {
    EFES_ASSIGN_OR_RETURN(settings->mapping_tool_minutes,
                          ParseNumber(value));
  } else {
    return Status::ParseError("unknown setting '" + std::string(key) + "'");
  }
  return Status::OK();
}

/// Re-derives the two deduplication effort functions from the configured
/// costs. Called after every [dedup] cost change, so a later [efforts]
/// formula for the same task still takes precedence (file order wins).
void ApplyDedupCosts(EstimationConfig* config) {
  const double cluster_minutes = config->dedup.cluster_resolution_minutes;
  const double pair_minutes = config->dedup.pair_review_minutes;
  config->model.SetFunction(
      TaskType::kResolveDuplicateClusters,
      [cluster_minutes, pair_minutes](const Task& task,
                                      const ExecutionSettings&) {
        return cluster_minutes * task.Param(task_params::kClusters) +
               pair_minutes * task.Param(task_params::kPairs);
      },
      FormatDouble(cluster_minutes, 6) + " * #clusters + " +
          FormatDouble(pair_minutes, 6) + " * #pairs",
      {task_params::kClusters, task_params::kPairs});
  const double drop_minutes = config->dedup.drop_script_minutes;
  config->model.SetFunction(
      TaskType::kDropDuplicateRecords,
      [drop_minutes](const Task&, const ExecutionSettings&) {
        return drop_minutes;
      },
      FormatDouble(drop_minutes, 6), {});
}

/// One `key = value` line of the [dedup] section. Parse failures are
/// kParseError; values the detector cannot run with are kInvalidArgument
/// (DedupOptions::Validate) — the caller keeps the code and prefixes the
/// line number.
Status ApplyDedupSetting(EstimationConfig* config, std::string_view key,
                         std::string_view value) {
  DedupOptions& dedup = config->dedup;
  bool cost_changed = false;
  if (key == "pair_review_minutes") {
    EFES_ASSIGN_OR_RETURN(dedup.pair_review_minutes, ParseNumber(value));
    cost_changed = true;
  } else if (key == "cluster_resolution_minutes") {
    EFES_ASSIGN_OR_RETURN(dedup.cluster_resolution_minutes,
                          ParseNumber(value));
    cost_changed = true;
  } else if (key == "drop_script_minutes") {
    EFES_ASSIGN_OR_RETURN(dedup.drop_script_minutes, ParseNumber(value));
    cost_changed = true;
  } else if (key == "max_block_size") {
    EFES_ASSIGN_OR_RETURN(double parsed, ParseNumber(value));
    if (parsed < 0.0) {
      return Status::InvalidArgument(
          "dedup max_block_size must not be negative");
    }
    dedup.max_block_size = static_cast<size_t>(parsed);
  } else if (key == "min_key_fill") {
    EFES_ASSIGN_OR_RETURN(dedup.min_key_fill, ParseNumber(value));
  } else if (key == "min_key_uniqueness") {
    EFES_ASSIGN_OR_RETURN(dedup.min_key_uniqueness, ParseNumber(value));
  } else if (key == "min_support_similarity") {
    EFES_ASSIGN_OR_RETURN(dedup.min_support_similarity, ParseNumber(value));
  } else if (key == "sample_limit") {
    EFES_ASSIGN_OR_RETURN(double parsed, ParseNumber(value));
    if (parsed < 0.0) {
      return Status::InvalidArgument(
          "dedup sample_limit must not be negative");
    }
    dedup.sample_limit = static_cast<size_t>(parsed);
  } else {
    return Status::ParseError("unknown dedup setting '" + std::string(key) +
                              "'");
  }
  EFES_RETURN_IF_ERROR(dedup.Validate());
  if (cost_changed) ApplyDedupCosts(config);
  return Status::OK();
}

}  // namespace

Result<TaskType> TaskTypeFromName(std::string_view name) {
  for (TaskType type : kAllTaskTypes) {
    if (TaskTypeToString(type) == name) return type;
  }
  return Status::NotFound("unknown task type '" + std::string(name) + "'");
}

Result<EstimationConfig> ParseEffortConfig(std::string_view text) {
  EstimationConfig config;
  std::string section;
  size_t line_number = 0;

  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_number;
    std::string_view line = Trim(raw_line);
    // Strip comments.
    size_t hash = line.find('#');
    if (hash != std::string_view::npos) {
      line = Trim(line.substr(0, hash));
    }
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line.back() != ']') {
        return Status::ParseError("line " + std::to_string(line_number) +
                                  ": unterminated section header");
      }
      section = std::string(Trim(line.substr(1, line.size() - 2)));
      if (section != "settings" && section != "efforts" &&
          section != "dedup") {
        return Status::ParseError("line " + std::to_string(line_number) +
                                  ": unknown section '" + section + "'");
      }
      continue;
    }

    size_t equals = line.find('=');
    if (equals == std::string_view::npos) {
      return Status::ParseError("line " + std::to_string(line_number) +
                                ": expected 'key = value'");
    }
    std::string key(Trim(line.substr(0, equals)));
    std::string value(Trim(line.substr(equals + 1)));
    if (section.empty()) {
      return Status::ParseError("line " + std::to_string(line_number) +
                                ": key outside of a section");
    }

    if (section == "settings") {
      Status status = ApplySetting(&config.settings, key, value);
      if (!status.ok()) {
        return Status::ParseError("line " + std::to_string(line_number) +
                                  ": " + status.message());
      }
      continue;
    }

    if (section == "dedup") {
      Status status = ApplyDedupSetting(&config, key, value);
      if (!status.ok()) {
        // Keep the code: an unusable value (negative cost, zero block
        // size) stays kInvalidArgument, a malformed one kParseError.
        return Status(status.code(), "line " + std::to_string(line_number) +
                                         ": " + status.message());
      }
      continue;
    }

    // [efforts]
    if (key == "global_scale") {
      EFES_ASSIGN_OR_RETURN(double scale, ParseNumber(value));
      config.model.set_global_scale(scale);
      continue;
    }
    auto task_type = TaskTypeFromName(key);
    if (!task_type.ok()) {
      return Status::ParseError("line " + std::to_string(line_number) +
                                ": " + task_type.status().message());
    }
    auto formula = Formula::Parse(value);
    if (!formula.ok()) {
      return Status::ParseError("line " + std::to_string(line_number) +
                                ": " + formula.status().message());
    }
    std::string formula_text = formula->text();
    std::vector<std::string> formula_params =
        formula->ReferencedParameters();
    config.model.SetFunction(
        *task_type,
        [parsed = std::move(*formula)](const Task& task,
                                       const ExecutionSettings&) {
          return parsed.Evaluate(task);
        },
        std::move(formula_text), std::move(formula_params));
  }
  return config;
}

Result<EstimationConfig> LoadEffortConfig(const std::string& path) {
  Result<std::string> text = ReadFileToString(path);
  if (!text.ok()) {
    return Status(text.status().code(),
                  "cannot open config file: " + path);
  }
  return ParseEffortConfig(*text);
}

}  // namespace efes
