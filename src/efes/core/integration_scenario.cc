#include "efes/core/integration_scenario.h"

namespace efes {

Status IntegrationScenario::Validate() const {
  EFES_RETURN_IF_ERROR(target.schema().Validate());
  for (const SourceBinding& source : sources) {
    EFES_RETURN_IF_ERROR(source.database.schema().Validate());
    EFES_RETURN_IF_ERROR(source.correspondences.Validate(
        source.database.schema(), target.schema()));
  }
  return Status::OK();
}

size_t IntegrationScenario::TotalSourceAttributeCount() const {
  size_t total = 0;
  for (const SourceBinding& source : sources) {
    total += source.database.schema().TotalAttributeCount();
  }
  return total;
}

}  // namespace efes
