// The data integration scenario (Section 3.1): one target database, one
// or more source databases, and correspondences describing how each
// source relates to the target.

#ifndef EFES_CORE_INTEGRATION_SCENARIO_H_
#define EFES_CORE_INTEGRATION_SCENARIO_H_

#include <string>
#include <vector>

#include "efes/relational/correspondence.h"
#include "efes/relational/database.h"

namespace efes {

/// One source database together with its correspondences into the target.
struct SourceBinding {
  Database database;
  CorrespondenceSet correspondences;

  SourceBinding(Database db, CorrespondenceSet cs)
      : database(std::move(db)), correspondences(std::move(cs)) {}
};

struct IntegrationScenario {
  std::string name;
  Database target;
  std::vector<SourceBinding> sources;

  IntegrationScenario(std::string scenario_name, Database target_db)
      : name(std::move(scenario_name)), target(std::move(target_db)) {}

  void AddSource(Database database, CorrespondenceSet correspondences) {
    sources.emplace_back(std::move(database), std::move(correspondences));
  }

  /// Validates every source's schema, the target schema, and every
  /// correspondence set against its schemas.
  Status Validate() const;

  /// Total number of source attributes across all sources — the input of
  /// the attribute-counting baseline.
  size_t TotalSourceAttributeCount() const;
};

}  // namespace efes

#endif  // EFES_CORE_INTEGRATION_SCENARIO_H_
