// The EFES engine: runs every registered estimation module through the
// two phases (complexity assessment, effort estimation) and aggregates a
// single effort estimate with a per-task and per-category breakdown
// (Figure 3).

#ifndef EFES_CORE_ENGINE_H_
#define EFES_CORE_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "efes/core/effort_model.h"
#include "efes/core/integration_scenario.h"
#include "efes/core/module.h"
#include "efes/core/task.h"
#include "efes/profiling/sketch.h"

namespace efes {

class ProfileCache;

/// Everything that parameterizes one estimation run, with usable
/// defaults. Callers set only what they care about:
///
///   RunOptions options;
///   options.quality = ExpectedQuality::FromPercent(95);
///   options.cache = &cache;
///   engine.Run(scenario, options);
///
/// New knobs land here as defaulted fields, so adding one never breaks a
/// call site (the old positional Run(scenario, quality, settings)
/// overload delegates here and is kept for compatibility).
struct RunOptions {
  /// The expected-quality input of the paper's Section 3.2.
  ExpectedQuality quality = ExpectedQuality::kHighQuality;
  /// Execution-context multipliers (practitioner skill, familiarity, ...).
  ExecutionSettings settings;
  /// Optional profile cache consulted by phase-1 profiling. When set, the
  /// engine installs it for the duration of the run (ScopedProfileCache),
  /// so repeated runs over unchanged sources skip recomputation. When
  /// null, an already-active ambient cache (e.g. installed by a bench
  /// harness or the CLI) is left in place.
  ProfileCache* cache = nullptr;
  /// Profiling execution knobs (chunk size, memory budget, approximation
  /// mode — profiling/sketch.h). Installed for the duration of the run
  /// (ScopedProfileOptions) so every ProfileColumn call under the engine
  /// streams under the same policy. The default is the legacy exact,
  /// unbudgeted behavior.
  ProfileOptions profile;
};

/// One planned task with its estimated effort.
struct TaskEstimate {
  Task task;
  double minutes = 0.0;
};

/// The aggregated output of an estimation run.
struct EffortEstimate {
  std::vector<TaskEstimate> tasks;

  double TotalMinutes() const;
  double CategoryMinutes(TaskCategory category) const;

  /// Renders the task list with per-task minutes and category subtotals —
  /// the granular breakdown the paper argues for ("instead of just
  /// delivering a final effort value, our effort estimate is broken down
  /// according to its underlying tasks").
  std::string ToText() const;
};

/// Result of running one module: its report and its estimated tasks.
/// When the module failed (returned an error or threw) and the engine
/// contained it, `status` carries the failure; `report` is null when the
/// assessment phase itself failed, and present without tasks when only
/// the planning phase failed.
struct ModuleRun {
  std::string module;
  Status status;
  std::unique_ptr<ComplexityReport> report;
  std::vector<TaskEstimate> tasks;

  bool ok() const { return status.ok(); }
};

/// Full estimation result. A failing module does not abort the run: its
/// failure is contained into its ModuleRun::status, `degraded` is set,
/// and the estimate aggregates the modules that did succeed — a partial
/// report beats no report (DESIGN.md, "Failure handling & degraded
/// modes").
struct EstimationResult {
  std::vector<ModuleRun> module_runs;
  EffortEstimate estimate;
  bool degraded = false;

  std::string ToText() const;
};

class EfesEngine {
 public:
  explicit EfesEngine(EffortModel model = EffortModel::PaperDefault())
      : effort_model_(std::move(model)) {}

  /// Registers an estimation module; modules run in registration order.
  void AddModule(std::unique_ptr<EstimationModule> module);

  size_t module_count() const { return modules_.size(); }

  const EffortModel& effort_model() const { return effort_model_; }

  /// Replaces the effort model after validating it (the global scale must
  /// be a finite positive number — a zero or NaN scale silently nullifies
  /// every estimate).
  Status set_effort_model(EffortModel model);

  /// Runs phase 1 + 2 of every module and prices the resulting tasks.
  Result<EstimationResult> Run(const IntegrationScenario& scenario,
                               const RunOptions& options = {}) const;

  /// Compatibility shim for the pre-RunOptions positional signature.
  Result<EstimationResult> Run(const IntegrationScenario& scenario,
                               ExpectedQuality quality,
                               const ExecutionSettings& settings = {}) const {
    RunOptions options;
    options.quality = quality;
    options.settings = settings;
    return Run(scenario, options);
  }

  /// Runs phase 1 only — the pure complexity assessment, useful for
  /// source selection and data visualization (Section 3.3). Only
  /// RunOptions::cache is consulted; quality/settings drive phase 2.
  Result<std::vector<std::unique_ptr<ComplexityReport>>> AssessComplexity(
      const IntegrationScenario& scenario,
      const RunOptions& options = {}) const;

 private:
  EffortModel effort_model_;
  std::vector<std::unique_ptr<EstimationModule>> modules_;
};

}  // namespace efes

#endif  // EFES_CORE_ENGINE_H_
