// A small arithmetic formula language for user-defined effort calculation
// functions (the paper's configurability requirement: "the user specifies
// in advance for each task type an effort-calculation function that can
// incorporate task parameters").
//
// Grammar:
//   formula     := conditional | expression
//   conditional := "if" comparison "then" expression "else" expression
//   comparison  := expression ("<" | "<=" | ">" | ">=" | "==") expression
//   expression  := term (("+" | "-") term)*
//   term        := factor (("*" | "/") factor)*
//   factor      := NUMBER | IDENTIFIER | "(" expression ")" | "-" factor
//
// Identifiers resolve to task parameters (missing parameters evaluate to
// 0), so Table 9's entries are written naturally:
//   "if dist_vals < 120 then 30 else 0.25 * dist_vals"
//   "3*fks + 3*pks + attributes + 3*tables"

#ifndef EFES_CORE_FORMULA_H_
#define EFES_CORE_FORMULA_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "efes/common/result.h"
#include "efes/core/task.h"

namespace efes {

class Formula {
 public:
  /// Parses `text`; fails with kParseError on malformed input (with a
  /// position hint in the message).
  static Result<Formula> Parse(std::string_view text);

  Formula(const Formula&) = default;
  Formula& operator=(const Formula&) = default;
  Formula(Formula&&) = default;
  Formula& operator=(Formula&&) = default;

  /// Evaluates against a task's parameters. Division by zero yields 0
  /// (effort functions must not blow up on degenerate inputs).
  double Evaluate(const Task& task) const;

  /// The original source text.
  const std::string& text() const { return text_; }

  /// Names of the task parameters the formula reads, sorted and deduped
  /// (provenance metadata for config-defined effort functions).
  std::vector<std::string> ReferencedParameters() const;

  /// Internal expression node (exposed for testing the tree shape only).
  struct Node;

 private:
  explicit Formula(std::shared_ptr<const Node> root, std::string text)
      : root_(std::move(root)), text_(std::move(text)) {}

  std::shared_ptr<const Node> root_;
  std::string text_;
};

}  // namespace efes

#endif  // EFES_CORE_FORMULA_H_
