#include "efes/core/task.h"

#include <sstream>

#include "efes/common/string_util.h"

namespace efes {

std::string_view ExpectedQualityToString(ExpectedQuality quality) {
  switch (quality) {
    case ExpectedQuality::kLowEffort:
      return "low effort";
    case ExpectedQuality::kHighQuality:
      return "high quality";
  }
  return "unknown";
}

std::string_view TaskCategoryToString(TaskCategory category) {
  switch (category) {
    case TaskCategory::kMapping:
      return "Mapping";
    case TaskCategory::kCleaningStructure:
      return "Cleaning (Structure)";
    case TaskCategory::kCleaningValues:
      return "Cleaning (Values)";
    case TaskCategory::kDeduplication:
      return "Deduplication";
    case TaskCategory::kOther:
      return "Other";
  }
  return "unknown";
}

std::string_view TaskTypeToString(TaskType type) {
  switch (type) {
    case TaskType::kWriteMapping:
      return "Write mapping";
    case TaskType::kRejectTuples:
      return "Reject tuples";
    case TaskType::kAddMissingValues:
      return "Add missing values";
    case TaskType::kSetValuesToNull:
      return "Set values to null";
    case TaskType::kAggregateTuples:
      return "Aggregate tuples";
    case TaskType::kKeepAnyValue:
      return "Keep any value";
    case TaskType::kMergeValues:
      return "Merge values";
    case TaskType::kDropDetachedValues:
      return "Delete detached values";
    case TaskType::kCreateEnclosingTuples:
      return "Create enclosing tuples";
    case TaskType::kDeleteDanglingValues:
      return "Delete dangling values";
    case TaskType::kAddReferencedValues:
      return "Add referenced values";
    case TaskType::kAddTuples:
      return "Add tuples";
    case TaskType::kDeleteDanglingTuples:
      return "Delete dangling tuples";
    case TaskType::kUnlinkAllButOneTuple:
      return "Unlink all but one tuple";
    case TaskType::kAddValues:
      return "Add values";
    case TaskType::kDropValues:
      return "Drop values";
    case TaskType::kConvertValues:
      return "Convert values";
    case TaskType::kGeneralizeValues:
      return "Generalize values";
    case TaskType::kRefineValues:
      return "Refine values";
    case TaskType::kAggregateValues:
      return "Aggregate values";
    case TaskType::kResolveDuplicateClusters:
      return "Resolve duplicate clusters";
    case TaskType::kDropDuplicateRecords:
      return "Drop duplicate records";
  }
  return "unknown";
}

double Task::Param(std::string_view name, double fallback) const {
  auto it = parameters.find(std::string(name));
  return it == parameters.end() ? fallback : it->second;
}

std::string Task::ToString() const {
  std::ostringstream oss;
  oss << TaskTypeToString(type);
  if (!subject.empty()) oss << " (" << subject << ")";
  if (!parameters.empty()) {
    oss << " [";
    bool first = true;
    for (const auto& [name, value] : parameters) {
      if (!first) oss << ", ";
      first = false;
      oss << name << "=" << FormatDouble(value, 10);
    }
    oss << "]";
  }
  return oss.str();
}

}  // namespace efes
