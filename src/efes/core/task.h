// Integration/cleaning tasks — the currency between the task planners and
// the effort calculation functions (Section 3.4).
//
// "Each of these tasks is of a certain type, is expected to deliver a
// certain result quality, and comprises an arbitrary set of parameters,
// such as on how many tuples it has to be executed."

#ifndef EFES_CORE_TASK_H_
#define EFES_CORE_TASK_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace efes {

/// "We defined two instances of expected quality, namely low effort
/// (removal of tuples) and high quality (updates)."
enum class ExpectedQuality {
  kLowEffort,
  kHighQuality,
};

std::string_view ExpectedQualityToString(ExpectedQuality quality);

/// The effort breakdown axes of Figures 6/7, extended with the
/// deduplication dimension (cross-source duplicate entities, which the
/// paper's module set never priced).
enum class TaskCategory {
  kMapping,
  kCleaningStructure,
  kCleaningValues,
  kDeduplication,
  kOther,
};

std::string_view TaskCategoryToString(TaskCategory category);

/// Every task type that appears in Tables 4, 7, and 9 of the paper.
enum class TaskType {
  // Mapping (Example 3.8 / Table 9).
  kWriteMapping,

  // Structural cleaning (Table 4): one low-effort / high-quality pair per
  // violated constraint kind.
  kRejectTuples,           // NOT NULL violated, low effort
  kAddMissingValues,       // NOT NULL violated, high quality
  kSetValuesToNull,        // UNIQUE violated, low effort
  kAggregateTuples,        // UNIQUE violated, high quality
  kKeepAnyValue,           // multiple attribute values, low effort
  kMergeValues,            // multiple attribute values, high quality
  kDropDetachedValues,     // value w/o enclosing tuple, low effort
  kCreateEnclosingTuples,  // value w/o enclosing tuple, high quality
  kDeleteDanglingValues,   // FK violated, low effort
  kAddReferencedValues,    // FK violated, high quality
  // Further structural repairs listed in Table 9.
  kAddTuples,
  kDeleteDanglingTuples,
  kUnlinkAllButOneTuple,

  // Value cleaning (Table 7).
  kAddValues,         // too few elements, high quality
  kDropValues,        // different representations (critical), low effort
  kConvertValues,     // different representations, high quality
  kGeneralizeValues,  // too fine-grained source values, high quality
  kRefineValues,      // too coarse-grained source values, high quality
  kAggregateValues,   // duplicate value consolidation (Table 9)

  // Deduplication (cross-source duplicate entities; dedup module).
  kResolveDuplicateClusters,  // verify candidate pairs + merge, high quality
  kDropDuplicateRecords,      // keep one record per cluster, low effort
};

/// Display name as printed in the paper's tables, e.g. "Convert values".
std::string_view TaskTypeToString(TaskType type);

/// Common parameter names understood by the default effort model
/// (Table 9). Planners attach whichever apply.
namespace task_params {
inline constexpr char kRepetitions[] = "repetitions";
inline constexpr char kValues[] = "values";
inline constexpr char kDistinctValues[] = "dist_vals";
inline constexpr char kTables[] = "tables";
inline constexpr char kAttributes[] = "attributes";
inline constexpr char kPrimaryKeys[] = "pks";
inline constexpr char kForeignKeys[] = "fks";
inline constexpr char kClusters[] = "clusters";
inline constexpr char kPairs[] = "pairs";
}  // namespace task_params

struct Task {
  TaskType type = TaskType::kWriteMapping;
  TaskCategory category = TaskCategory::kOther;
  ExpectedQuality quality = ExpectedQuality::kHighQuality;
  /// What the task applies to, e.g. "records.title" or "m1 -> target".
  std::string subject;
  /// Named numeric parameters, e.g. {"values": 102}.
  std::map<std::string, double> parameters;

  /// Provenance-node ids of the detector findings this task repairs
  /// (empty when no recorder was active; see efes/provenance). Structure
  /// repairs can trace to several conflicts via side-effect propagation.
  std::vector<uint64_t> provenance;

  /// Returns parameters[name], or `fallback` when absent.
  double Param(std::string_view name, double fallback = 0.0) const;

  /// "Add missing values (records.title) [values=102]".
  std::string ToString() const;
};

}  // namespace efes

#endif  // EFES_CORE_TASK_H_
