// Effort calculation functions and execution settings (Section 3.4).
//
// "For each task type [the user specifies] an effort-calculation function
// that can incorporate task parameters. [...] The framework uses these
// functions to estimate the effort for each of the tasks." The default
// model reproduces Table 9 of the paper, which assumes a practitioner
// armed with hand-written SQL and a basic admin tool. Execution settings
// (practitioner expertise, tool automation, criticality) scale the raw
// function values — the paper's configurability requirement.

#ifndef EFES_CORE_EFFORT_MODEL_H_
#define EFES_CORE_EFFORT_MODEL_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "efes/core/task.h"

namespace efes {

/// The circumstances under which the integration will be conducted
/// (Section 3.4, "(ii) Execution settings").
struct ExecutionSettings {
  /// Multiplier for practitioner expertise; < 1 = expert (faster),
  /// > 1 = novice.
  double practitioner_skill = 1.0;

  /// Multiplier for familiarity with the datasets; the experiments assume
  /// "the user has not seen the datasets before" = 1.0.
  double data_familiarity = 1.0;

  /// "Integrating medical prescriptions requires more attention (and
  /// therefore effort) than integrating music tracks": >= 1.
  double criticality = 1.0;

  /// A second-generation mapping tool (e.g. ++Spicy, Example 3.6/3.8) can
  /// generate executable mappings from correspondences.
  bool mapping_tool_available = false;

  /// Constant minutes for a tool-generated mapping (Example 3.8 uses 2).
  double mapping_tool_minutes = 2.0;

  /// Overall scaling applied to every task (combined multiplier).
  double OverallMultiplier() const {
    return practitioner_skill * data_familiarity * criticality;
  }
};

/// One effort-function evaluation, decomposed into the factors the
/// provenance layer records: minutes = base * multiplier * scale.
struct EffortExplanation {
  /// Raw function value before scaling; 0 when the type has no function.
  double base = 0.0;
  /// ExecutionSettings::OverallMultiplier() at evaluation time.
  double multiplier = 1.0;
  /// The model's global calibration scale.
  double scale = 1.0;
  double minutes = 0.0;
  /// False when no function is registered for the task's type.
  bool known = false;
  /// Human-readable formula, e.g. "3 * #FKs + 3 * #PKs + #atts +
  /// 3 * #tables" or the effort-config formula text.
  std::string function;
  /// Names of the task parameters the function reads. Falls back to every
  /// parameter of the task when the function was registered without
  /// metadata (the legacy SetFunction overload).
  std::vector<std::string> parameters;
};

/// Maps task types to effort-calculation functions (minutes).
class EffortModel {
 public:
  using EffortFunction =
      std::function<double(const Task&, const ExecutionSettings&)>;

  /// An empty model: every unknown task estimates 0 minutes.
  EffortModel() = default;

  /// The Table 9 configuration of the paper.
  static EffortModel PaperDefault();

  /// Registers (or replaces) the function for `type`.
  void SetFunction(TaskType type, EffortFunction function);
  /// Same, with explainability metadata: a human-readable `description`
  /// of the formula and the task `parameters` it reads.
  void SetFunction(TaskType type, EffortFunction function,
                   std::string description,
                   std::vector<std::string> parameters);
  bool HasFunction(TaskType type) const;

  /// Calibration knob: every estimate is multiplied by this factor (used
  /// by the cross-validation protocol of Section 6.2).
  void set_global_scale(double scale) { global_scale_ = scale; }
  double global_scale() const { return global_scale_; }

  /// Evaluates the function for the task's type, applies the execution
  /// settings multiplier and the global scale. Unknown types cost 0.
  double EstimateMinutes(const Task& task,
                         const ExecutionSettings& settings) const;

  /// EstimateMinutes with every factor broken out, for the provenance
  /// recorder. EstimateMinutes() is Explain().minutes, so the two can
  /// never drift apart.
  EffortExplanation Explain(const Task& task,
                            const ExecutionSettings& settings) const;

  /// Human-readable formula per task type (for the Table 9 printer).
  static std::string DescribeDefaultFunction(TaskType type);

 private:
  struct FunctionEntry {
    EffortFunction function;
    std::string description;
    std::vector<std::string> parameters;
    /// True when registered through the metadata overload.
    bool described = false;
  };

  std::map<TaskType, FunctionEntry> functions_;
  double global_scale_ = 1.0;
};

}  // namespace efes

#endif  // EFES_CORE_EFFORT_MODEL_H_
