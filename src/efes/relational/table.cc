#include "efes/relational/table.h"

#include <map>
#include <sstream>
#include <unordered_set>

namespace efes {

Table::Table(RelationDef def) : def_(std::move(def)) {
  columns_.resize(def_.attribute_count());
}

Status Table::AppendRow(std::vector<Value> row) {
  if (row.size() != def_.attribute_count()) {
    std::ostringstream oss;
    oss << "row arity " << row.size() << " does not match relation '"
        << def_.name() << "' with " << def_.attribute_count()
        << " attributes";
    return Status::InvalidArgument(oss.str());
  }
  // Validate castability first so a failed append leaves the table
  // unchanged.
  std::vector<Value> canonical;
  canonical.reserve(row.size());
  for (size_t c = 0; c < row.size(); ++c) {
    DataType target = def_.attributes()[c].type;
    EFES_ASSIGN_OR_RETURN(Value cast, row[c].CastTo(target));
    canonical.push_back(std::move(cast));
  }
  for (size_t c = 0; c < canonical.size(); ++c) {
    columns_[c].push_back(std::move(canonical[c]));
  }
  ++row_count_;
  return Status::OK();
}

void Table::RemoveRows(const std::vector<size_t>& rows) {
  if (rows.empty()) return;
  std::vector<bool> remove(row_count_, false);
  for (size_t row : rows) {
    if (row < row_count_) remove[row] = true;
  }
  for (auto& column : columns_) {
    size_t write = 0;
    for (size_t read = 0; read < row_count_; ++read) {
      if (!remove[read]) {
        if (write != read) column[write] = std::move(column[read]);
        ++write;
      }
    }
    column.resize(write);
  }
  size_t removed = 0;
  for (bool flag : remove) {
    if (flag) ++removed;
  }
  row_count_ -= removed;
}

Result<const std::vector<Value>*> Table::ColumnByName(
    std::string_view attribute) const {
  std::optional<size_t> index = def_.AttributeIndex(attribute);
  if (!index.has_value()) {
    return Status::NotFound("no attribute '" + std::string(attribute) +
                            "' in table '" + def_.name() + "'");
  }
  return &columns_[*index];
}

std::vector<Value> Table::Row(size_t row) const {
  std::vector<Value> result;
  result.reserve(columns_.size());
  for (const auto& column : columns_) {
    result.push_back(column[row]);
  }
  return result;
}

size_t Table::NullCount(size_t column) const {
  size_t nulls = 0;
  for (const Value& value : columns_[column]) {
    if (value.is_null()) ++nulls;
  }
  return nulls;
}

size_t Table::DistinctCount(size_t column) const {
  std::unordered_set<Value, ValueHash> distinct;
  for (const Value& value : columns_[column]) {
    if (!value.is_null()) distinct.insert(value);
  }
  return distinct.size();
}

std::vector<Value> Table::DistinctValues(size_t column) const {
  std::unordered_set<Value, ValueHash> distinct;
  for (const Value& value : columns_[column]) {
    if (!value.is_null()) distinct.insert(value);
  }
  return std::vector<Value>(distinct.begin(), distinct.end());
}

size_t Table::CountCastableTo(size_t column, DataType target) const {
  size_t castable = 0;
  for (const Value& value : columns_[column]) {
    if (!value.is_null() && value.CanCastTo(target)) ++castable;
  }
  return castable;
}

std::unordered_map<Value, size_t, ValueHash> Table::ValueFrequencies(
    size_t column) const {
  std::unordered_map<Value, size_t, ValueHash> frequencies;
  for (const Value& value : columns_[column]) {
    if (!value.is_null()) ++frequencies[value];
  }
  return frequencies;
}

size_t Table::CountDuplicateProjections(
    const std::vector<size_t>& columns) const {
  // Serialize each projection into a string key. Values render
  // unambiguously enough for grouping because we separate with '\x1f'
  // and values never contain that byte in our generators; a length-prefix
  // guards against adversarial text.
  std::map<std::string, size_t> groups;
  for (size_t r = 0; r < row_count_; ++r) {
    bool has_null = false;
    std::string key;
    for (size_t c : columns) {
      const Value& value = columns_[c][r];
      if (value.is_null()) {
        has_null = true;
        break;
      }
      std::string repr = value.ToString();
      key += std::to_string(repr.size());
      key += ':';
      key += repr;
      key += '\x1f';
    }
    if (!has_null) ++groups[key];
  }
  size_t duplicates = 0;
  for (const auto& [key, count] : groups) {
    if (count > 1) duplicates += count;  // all members of the group violate
  }
  return duplicates;
}

bool Table::IsUnique(const std::vector<size_t>& columns) const {
  return CountDuplicateProjections(columns) == 0;
}

}  // namespace efes
